package main

import (
	"fmt"
	"math"

	"parhull/internal/circles"
	"parhull/internal/core"
	"parhull/internal/corner"
	"parhull/internal/engine"
	"parhull/internal/geom"
	"parhull/internal/halfspace"
	"parhull/internal/hulld"
	"parhull/internal/pointgen"
	"parhull/internal/stats"
)

// expSupport — E7: brute-force verification that the hull configuration
// space has 2-support (Theorem 5.1).
func expSupport() {
	w := table()
	fmt.Fprintln(w, "d\tn\tinstances\t2-support verified\tmax support used")
	for _, d := range []int{2, 3} {
		n := 8 + d
		verified := 0
		maxSup := 0
		const instances = 3
		for s := 0; s < instances; s++ {
			pts := pointgen.OnSphere(pointgen.NewRNG(int64(100+10*d+s)), n, d)
			sp := hulld.NewSpace(pts)
			y := make([]int, n)
			for i := range y {
				y[i] = i
			}
			if err := core.VerifySupport(sp, y); err != nil {
				fmt.Println("violation:", err)
				continue
			}
			verified++
			g, err := core.Simulate(sp, y)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if k := core.MaxSupportUsed(g); k > maxSup {
				maxSup = k
			}
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d/%d\t%d\n", d, n, instances, verified, instances, maxSup)
	}
	w.Flush()
	fmt.Println("paper: convex hull has 2-support with support sets = facet pairs sharing a ridge (Thm 5.1).")
}

// expCorner — E8: the corner configuration space on degenerate 3D inputs.
func expCorner() {
	// Lemma 6.1: active configurations = hull corners.
	w := table()
	fmt.Fprintln(w, "input\tpoints\t|T(Y)|\texpected\treconstructed skeleton")
	for _, k := range []int{2, 3} {
		pts := pointgen.Grid3D(k)
		sp, err := corner.NewSpace(pts)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		y := make([]int, len(pts))
		for i := range y {
			y[i] = i
		}
		act := core.Active(sp, y)
		faces, err := corner.Faces(sp, act)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		sk := corner.SkeletonOf(faces)
		fmt.Fprintf(w, "grid %dx%dx%d\t%d\t%d\t24 (cube corners)\tV=%d E=%d F=%d\n",
			k, k, k, len(pts), len(act), sk.V, sk.E, sk.F)
	}
	w.Flush()

	// The generic rounds engine (engine.SpaceRounds) vs the brute-force
	// enumeration: same final active set, at a fraction of the conflict
	// tests, plus the recursion depth the simulator cannot report cheaply.
	fmt.Println()
	w = table()
	fmt.Fprintln(w, "input\tpoints\t|T(Y)| engine\t|T(Y)| core\tagree\tcreated\trounds")
	for _, k := range []int{2, 3} {
		pts := pointgen.Grid3D(k)
		if k == 2 {
			pts = append(pts, geom.Point{0.5, 0.5, 0}, geom.Point{0.5, 0, 0.5}, geom.Point{0, 0.5, 0.5})
		}
		sp, err := corner.NewSpace(pts)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		y := make([]int, len(pts))
		for i := range y {
			y[i] = i
		}
		res, err := engine.SpaceRounds(sp, y)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		act := core.Active(sp, y)
		agree := len(res.Alive) == len(act)
		for i := 0; agree && i < len(act); i++ {
			agree = res.Alive[i] == act[i]
		}
		fmt.Fprintf(w, "grid %dx%dx%d%s\t%d\t%d\t%d\t%v\t%d\t%d\n",
			k, k, k, map[bool]string{true: "+extras", false: ""}[k == 2],
			len(pts), len(res.Alive), len(act), agree, res.Created, res.Rounds)
	}
	w.Flush()

	// Lemma 6.2 + depth: incremental simulation on a degenerate input.
	pts := pointgen.Grid3D(2)
	pts = append(pts, geom.Point{0.5, 0.5, 0}, geom.Point{0.5, 0, 0.5}, geom.Point{0, 0.5, 0.5})
	sp, err := corner.NewSpace(pts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rng := pointgen.NewRNG(77)
	var depths []float64
	maxSup := 0
	for s := 0; s < *seeds; s++ {
		var order []int
		for {
			order = rng.Perm(len(pts))
			if geom.Orient3D(pts[order[0]], pts[order[1]], pts[order[2]], pts[order[3]]) != 0 {
				break
			}
		}
		g, err := core.Simulate(sp, order)
		if err != nil {
			fmt.Println("simulate:", err)
			return
		}
		depths = append(depths, float64(g.MaxDepth))
		if k := core.MaxSupportUsed(g); k > maxSup {
			maxSup = k
		}
	}
	sum := stats.Summarize(depths)
	bound := stats.Theorem42MinSigma(3, 4) * stats.Harmonic(len(pts))
	fmt.Printf("degenerate run (%d points, cube + coplanar extras): depth mean %.1f max %.0f, support <= %d, Thm 4.2 line %.0f\n",
		len(pts), sum.Mean, sum.Max, maxSup, bound)
	fmt.Println("paper: corner space has 4-support (Lemma 6.2), actives = hull corners (Lemma 6.1).")
}

// expHalfspace — E9a: half-space intersection depth, direct space (small)
// and dual hull (large).
func expHalfspace() {
	// Direct space at small n.
	normals := append(halfspace.BoundingSimplex(2), genNormals(51, sz(14)-3, 2)...)
	sp, err := halfspace.NewSpace(normals)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	order := []int{0, 1, 2}
	for _, i := range pointgen.NewRNG(52).Perm(len(normals) - 3) {
		order = append(order, i+3)
	}
	g, err := core.Simulate(sp, order)
	if err != nil {
		fmt.Println("simulate:", err)
		return
	}
	fmt.Printf("direct space (d=2, n=%d): depth %d, max support %d (paper: 2-support)\n",
		len(normals), g.MaxDepth, core.MaxSupportUsed(g))

	// Duality route at larger n: the dual hull's depth is the process depth.
	w := table()
	fmt.Fprintln(w, "d\tn\tvertices\tdepth\tdepth/ln n")
	for _, cfg := range []struct{ d, n int }{{2, 10000}, {3, 10000}} {
		n := sz(cfg.n)
		nm := genNormals(int64(60+cfg.d), n, cfg.d)
		res, err := halfspace.IntersectDual(nm, &hulld.Options{NoCounters: true})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.2f\n", cfg.d, n, len(res.Vertices),
			res.HullStats.MaxDepth, float64(res.HullStats.MaxDepth)/math.Log(float64(n)))
	}
	w.Flush()
	fmt.Println("paper: same O(log n) dependence depth as convex hull, by duality (Section 7).")
}

func genNormals(seed int64, n, d int) []geom.Point {
	rng := pointgen.NewRNG(seed)
	normals := pointgen.OnSphere(rng, n, d)
	for _, a := range normals {
		s := 0.8 + 0.4*rng.Float64()
		for i := range a {
			a[i] *= s
		}
	}
	return normals
}

// expCircles — E9b: unit-circle intersection depth via the arc space.
func expCircles() {
	w := table()
	fmt.Fprintln(w, "n circles\t|T| (arcs)\tdepth\tmax support")
	for _, n0 := range []int{8, 12, 16} {
		n := n0
		rng := pointgen.NewRNG(int64(70 + n))
		centers := make([]geom.Point, n)
		for i := range centers {
			a := 2 * math.Pi * rng.Float64()
			r := 0.4 * math.Sqrt(rng.Float64())
			centers[i] = geom.Point{r * math.Cos(a), r * math.Sin(a)}
		}
		sp, err := circles.NewSpace(centers)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		y := make([]int, n)
		for i := range y {
			y[i] = i
		}
		act := core.Active(sp, y)
		g, err := core.Simulate(sp, pointgen.NewRNG(int64(71+n)).Perm(n))
		if err != nil {
			fmt.Println("simulate:", err)
			return
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\n", n, len(act), g.MaxDepth, core.MaxSupportUsed(g))
	}
	w.Flush()
	fmt.Println("paper: circle intersection has 2-support and multiplicity <= 3 (Section 7).")
}
