package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"parhull"
	"parhull/internal/geom"
	"parhull/internal/pointgen"
)

var (
	speedupOut = flag.String("speedup-out", "BENCH_speedup.json",
		"output path for the -exp speedup report")
	speedupProcs = flag.String("procs", "",
		"comma-separated GOMAXPROCS sweep for -exp speedup (default: 1,2,4,... up to NumCPU)")
	speedupReps = flag.Int("reps", 3,
		"timed repetitions per (workload, P) point for -exp speedup; the minimum is reported")
)

// parseProcs expands the -procs flag; with no flag it doubles from 1 and
// always ends at the machine's logical CPU count.
func parseProcs(s string, maxP int) []int {
	if s != "" {
		var ps []int
		for _, f := range strings.Split(s, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || p < 1 {
				log.Fatalf("speedup: bad -procs entry %q", f)
			}
			ps = append(ps, p)
		}
		return ps
	}
	var ps []int
	for p := 1; p < maxP; p *= 2 {
		ps = append(ps, p)
	}
	if len(ps) == 0 || ps[len(ps)-1] != maxP {
		ps = append(ps, maxP)
	}
	return ps
}

// minTime runs f reps times and returns the fastest wall time in ns (the
// usual benchmarking floor: the minimum is the least-perturbed run).
func minTime(reps int, f func() error) (float64, error) {
	best := 0.0
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if el := float64(time.Since(t0).Nanoseconds()); best == 0 || el < best {
			best = el
		}
	}
	return best, nil
}

// expSpeedup — E11: measured multicore scaling of the full pipeline. For
// each workload and each P in the sweep, GOMAXPROCS and Options.Workers are
// pinned to P (so the curve does not depend on the ambient process
// configuration) and the public HullD/Hull2D runs with the pre-hull
// reduction off (pure engine scaling) and forced on (pipeline scaling).
// Speedup is relative to the first P of the sweep (self-speedup when that is
// 1); efficiency is speedup/P. A final ablation pair times 3d-ball-1m with
// and without the pre-hull at full parallelism — the E11 acceptance bar is a
// >= 25% wall-time cut at equal P. Everything lands in BENCH_speedup.json
// (same entry schema as -exp perf, plus the scaling fields).
func expSpeedup() {
	maxP := runtime.NumCPU()
	ps := parseProcs(*speedupProcs, maxP)
	fmt.Printf("machine parallelism: %d logical CPU(s); sweep P=%v, %d rep(s) per point\n",
		maxP, ps, *speedupReps)
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	type workload struct {
		name string
		dim  int
		pts  []geom.Point
	}
	wls := []workload{
		{"3d-ball-100k", 3, pointgen.Shuffled(pointgen.NewRNG(61),
			pointgen.UniformBall(pointgen.NewRNG(61), sz(100000), 3))},
		{"3d-clustered-100k", 3, pointgen.Shuffled(pointgen.NewRNG(62),
			pointgen.Clustered(pointgen.NewRNG(62), sz(100000), 3, 64, 0.01))},
		{"2d-disk-200k", 2, pointgen.Shuffled(pointgen.NewRNG(63),
			pointgen.UniformBall(pointgen.NewRNG(63), sz(200000), 2))},
	}
	report := perfReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: maxP,
		Scale:      *scale,
		Date:       time.Now().UTC().Format(time.RFC3339),
	}

	run := func(wl workload, p int, prehull bool) (float64, int, error) {
		runtime.GOMAXPROCS(p)
		opt := &parhull.Options{Workers: p, NoCounters: true, PreHull: parhull.PreHullOff}
		if prehull {
			opt.PreHull = parhull.PreHullOn
		}
		kept := 0
		ns, err := minTime(*speedupReps, func() error {
			if wl.dim == 2 {
				res, err := parhull.Hull2D(wl.pts, opt)
				if err == nil {
					kept = res.Stats.PreHullKept
				}
				return err
			}
			res, err := parhull.HullD(wl.pts, opt)
			if err == nil {
				kept = res.Stats.PreHullKept
			}
			return err
		})
		return ns, kept, err
	}

	w := table()
	fmt.Fprintln(w, "workload\tprehull\tP\tns/op\tspeedup\tefficiency\tkept")
	for _, wl := range wls {
		for _, prehull := range []bool{false, true} {
			var base float64
			for _, p := range ps {
				ns, kept, err := run(wl, p, prehull)
				if err != nil {
					log.Fatalf("speedup %s P=%d: %v", wl.name, p, err)
				}
				if base == 0 {
					base = ns * float64(ps[0])
				}
				speedup := base / (ns * float64(ps[0]))
				eff := base / (ns * float64(p))
				e := perfEntry{
					Workload:   wl.name,
					N:          len(wl.pts),
					Dim:        wl.dim,
					Sched:      "steal",
					Filter:     "batch",
					Procs:      p,
					PreHull:    prehull,
					NsPerOp:    ns,
					Iterations: *speedupReps,
					Speedup:    speedup,
					Efficiency: eff,
					PreKept:    kept,
				}
				report.Entries = append(report.Entries, e)
				fmt.Fprintf(w, "%s\t%v\t%d\t%.0f\t%.2fx\t%.2f\t%d\n",
					wl.name, prehull, p, ns, speedup, eff, kept)
			}
		}
	}
	w.Flush()

	// Pre-hull ablation at full parallelism on the big interior-heavy cloud.
	pm := ps[len(ps)-1]
	big := workload{"3d-ball-1m", 3, pointgen.Shuffled(pointgen.NewRNG(64),
		pointgen.UniformBall(pointgen.NewRNG(64), sz(1000000), 3))}
	var times [2]float64
	for i, prehull := range []bool{false, true} {
		ns, kept, err := run(big, pm, prehull)
		if err != nil {
			log.Fatalf("speedup %s P=%d: %v", big.name, pm, err)
		}
		times[i] = ns
		report.Entries = append(report.Entries, perfEntry{
			Workload: big.name, N: len(big.pts), Dim: 3, Sched: "steal", Filter: "batch",
			Procs: pm, PreHull: prehull, NsPerOp: ns, Iterations: *speedupReps, PreKept: kept,
		})
	}
	cut := 100 * (1 - times[1]/times[0])
	fmt.Printf("%s at P=%d: direct %.3fs, pre-hull %.3fs — %.1f%% wall-time cut\n",
		big.name, pm, times[0]/1e9, times[1]/1e9, cut)

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		log.Fatalf("speedup: marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*speedupOut, data, 0o644); err != nil {
		log.Fatalf("speedup: write %s: %v", *speedupOut, err)
	}
	fmt.Printf("wrote %s (%d entries)\n", *speedupOut, len(report.Entries))
}
