package main

import (
	"fmt"
	"math"

	"parhull/internal/geom"
	"parhull/internal/hull2d"
	"parhull/internal/hulld"
	"parhull/internal/pointgen"
	"parhull/internal/stats"
)

// workload returns n points of dimension d from the named distribution.
func workload(dist string, seed int64, n, d int) []geom.Point {
	rng := pointgen.NewRNG(seed)
	switch dist {
	case "ball":
		return pointgen.UniformBall(rng, n, d)
	case "sphere":
		return pointgen.OnSphere(rng, n, d)
	default:
		return pointgen.InCube(rng, n, d)
	}
}

// run2D/run3D produce a parallel-engine result on a fresh shuffled workload.
func runPar(dist string, seed int64, n, d int) (int, int, error) {
	pts := workload(dist, seed, n, d)
	if d == 2 {
		res, err := hull2d.Par(pts, &hull2d.Options{NoCounters: true})
		if err != nil {
			return 0, 0, err
		}
		return res.Stats.MaxDepth, res.Stats.HullSize, nil
	}
	res, err := hulld.Par(pts, &hulld.Options{NoCounters: true})
	if err != nil {
		return 0, 0, err
	}
	return res.Stats.MaxDepth, res.Stats.HullSize, nil
}

// expDepth — E1: dependence depth vs n, against sigma*H_n.
func expDepth() {
	w := table()
	fmt.Fprintln(w, "d\tdist\tn\tH_n\tdepth(mean)\tdepth(max)\tdepth/H_n\tsigma_min*H_n")
	type series struct{ lnN, depth []float64 }
	fits := map[string]*series{}
	for _, cfg := range []struct {
		d    int
		dist string
		ns   []int
	}{
		{2, "ball", []int{1000, 10000, 100000, 1000000}},
		{2, "sphere", []int{1000, 10000, 100000, 1000000}},
		{3, "ball", []int{1000, 10000, 100000}},
		{3, "sphere", []int{1000, 10000, 100000}},
	} {
		for _, n0 := range cfg.ns {
			n := sz(n0)
			var ds []float64
			for s := 0; s < *seeds; s++ {
				depth, _, err := runPar(cfg.dist, int64(1000*s+n0), n, cfg.d)
				if err != nil {
					fmt.Fprintf(w, "error: %v\n", err)
					continue
				}
				ds = append(ds, float64(depth))
			}
			sum := stats.Summarize(ds)
			hn := stats.Harmonic(n)
			sigma := stats.Theorem42MinSigma(cfg.d, 2)
			fmt.Fprintf(w, "%d\t%s\t%d\t%.2f\t%.1f\t%.0f\t%.2f\t%.0f\n",
				cfg.d, cfg.dist, n, hn, sum.Mean, sum.Max, sum.Mean/hn, sigma*hn)
			key := fmt.Sprintf("d=%d %s", cfg.d, cfg.dist)
			if fits[key] == nil {
				fits[key] = &series{}
			}
			fits[key].lnN = append(fits[key].lnN, math.Log(float64(n)))
			fits[key].depth = append(fits[key].depth, sum.Mean)
		}
	}
	w.Flush()
	fmt.Println("least-squares fit depth = a + b*ln(n):")
	fw := table()
	fmt.Fprintln(fw, "series\ta\tb\tr^2")
	for _, key := range []string{"d=2 ball", "d=2 sphere", "d=3 ball", "d=3 sphere"} {
		if s := fits[key]; s != nil {
			a, b, r2 := stats.FitLine(s.lnN, s.depth)
			fmt.Fprintf(fw, "%s\t%.2f\t%.2f\t%.4f\n", key, a, b, r2)
		}
	}
	fw.Flush()
	fmt.Println("paper: depth = O(log n) whp (Theorem 1.1); b stable and r^2 ~ 1 confirm the shape.")
}

// expTail — E2: distribution of D(G(S)) over many random orders at fixed n.
func expTail() {
	n := sz(2000)
	trials := sz(300)
	var h stats.Histogram
	for s := 0; s < trials; s++ {
		depth, _, err := runPar("sphere", int64(7000+s), n, 2)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		h.Observe(depth)
	}
	hn := stats.Harmonic(n)
	fmt.Printf("n=%d, %d random orders, H_n=%.2f\n", n, trials, hn)
	w := table()
	fmt.Fprintln(w, "depth D\tcount\tempirical Pr[depth >= D]\tsigma = D/H_n")
	lo, hi := h.Max(), 0
	for d := 0; d <= h.Max(); d++ {
		if h.Count(d) > 0 && d < lo {
			lo = d
		}
		if h.Count(d) > 0 && d > hi {
			hi = d
		}
	}
	for d := lo; d <= hi; d++ {
		fmt.Fprintf(w, "%d\t%d\t%.4f\t%.2f\n", d, h.Count(d), h.TailProb(d), float64(d)/hn)
	}
	w.Flush()
	sigmaMin := stats.Theorem42MinSigma(2, 2)
	fmt.Printf("theorem 4.2 threshold: sigma >= g*k*e^2 = %.1f (depth %.0f); bound there: %.2e\n",
		sigmaMin, sigmaMin*hn, stats.Theorem42Bound(n, 2, 2, sigmaMin))
	fmt.Printf("observed max sigma = %.2f — far below the threshold, so the whp bound holds with huge slack.\n",
		float64(hi)/hn)
}

// expRounds — E3: recursion depth (rounds) of Algorithm 3.
func expRounds() {
	w := table()
	fmt.Fprintln(w, "d\tn\trounds(mean)\trounds(max)\tdepth(mean)\trounds/ln n\tmax width\ttotal tasks")
	for _, cfg := range []struct {
		d  int
		ns []int
	}{
		{2, []int{1000, 10000, 100000}},
		{3, []int{1000, 10000, 50000}},
	} {
		for _, n0 := range cfg.ns {
			n := sz(n0)
			var rs, ds []float64
			maxWidth, totalTasks := 0, 0
			for s := 0; s < *seeds; s++ {
				pts := workload("sphere", int64(31*s+n0), n, cfg.d)
				var rounds, depth int
				var widths []int
				if cfg.d == 2 {
					res, _, err := hull2d.Rounds(pts, &hull2d.Options{NoCounters: true})
					if err != nil {
						fmt.Println("error:", err)
						return
					}
					rounds, depth, widths = res.Stats.Rounds, res.Stats.MaxDepth, res.Stats.RoundWidths
				} else {
					res, err := hulld.Rounds(pts, &hulld.Options{NoCounters: true})
					if err != nil {
						fmt.Println("error:", err)
						return
					}
					rounds, depth, widths = res.Stats.Rounds, res.Stats.MaxDepth, res.Stats.RoundWidths
				}
				rs = append(rs, float64(rounds))
				ds = append(ds, float64(depth))
				maxWidth, totalTasks = 0, 0
				for _, wd := range widths {
					totalTasks += wd
					if wd > maxWidth {
						maxWidth = wd
					}
				}
			}
			r, d := stats.Summarize(rs), stats.Summarize(ds)
			fmt.Fprintf(w, "%d\t%d\t%.1f\t%.0f\t%.1f\t%.2f\t%d\t%d\n",
				cfg.d, n, r.Mean, r.Max, d.Mean, r.Mean/math.Log(float64(n)), maxWidth, totalTasks)
		}
	}
	w.Flush()
	fmt.Println("paper: recursion depth O(log n) whp (Theorem 5.3); rounds/ln n stays bounded.")
	fmt.Println("widths show the available parallelism: ~n tasks spread over O(log n) rounds.")
}
