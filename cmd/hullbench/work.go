package main

import (
	"fmt"

	"parhull"
	"parhull/internal/hull2d"
	"parhull/internal/hulld"
	"parhull/internal/stats"
)

// expWork — E4: Algorithm 3 creates the identical facet multiset and runs
// the identical number of plane-side tests as Algorithm 2 on the same
// insertion order.
func expWork() {
	w := table()
	fmt.Fprintln(w, "d\tdist\tn\tvtests(seq)\tvtests(par)\tequal\tfacets(seq)\tfacets(par)\tsame set")
	for _, cfg := range []struct {
		d    int
		dist string
		n    int
	}{
		{2, "ball", 50000}, {2, "sphere", 50000},
		{3, "ball", 20000}, {3, "sphere", 20000},
	} {
		n := sz(cfg.n)
		pts := workload(cfg.dist, int64(cfg.n), n, cfg.d)
		var vseq, vpar, fseq, fpar int64
		same := true
		if cfg.d == 2 {
			s, err := hull2d.Seq(pts)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			p, err := hull2d.Par(pts, nil)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			vseq, vpar = s.Stats.VisibilityTests, p.Stats.VisibilityTests
			fseq, fpar = s.Stats.FacetsCreated, p.Stats.FacetsCreated
			se, pe := s.EdgeSet(), p.EdgeSet()
			same = len(se) == len(pe)
			for k, c := range se {
				if pe[k] != c {
					same = false
				}
			}
		} else {
			s, err := hulld.Seq(pts)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			p, err := hulld.Par(pts, nil)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			vseq, vpar = s.Stats.VisibilityTests, p.Stats.VisibilityTests
			fseq, fpar = s.Stats.FacetsCreated, p.Stats.FacetsCreated
			se, pe := s.FacetSet(), p.FacetSet()
			same = len(se) == len(pe)
			for k, c := range se {
				if pe[k] != c {
					same = false
				}
			}
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%v\t%d\t%d\t%v\n",
			cfg.d, cfg.dist, n, vseq, vpar, vseq == vpar, fseq, fpar, same)
	}
	w.Flush()
	fmt.Println("paper (Sec 5.2): \"exactly the same set of plane-side tests ... exactly the same facets\".")
}

// expConflicts — E5: measured total conflict size against the Theorem 3.1
// bound n*g^2*sum E[|T_i|]/i^2, with |T_i| measured from the run itself.
func expConflicts() {
	w := table()
	fmt.Fprintln(w, "d\tdist\tn\ttotal conflicts\tThm 3.1 bound\tratio")
	for _, cfg := range []struct {
		d    int
		dist string
		n    int
	}{
		{2, "ball", 20000}, {2, "sphere", 20000},
		{3, "ball", 10000}, {3, "sphere", 10000},
	} {
		n := sz(cfg.n)
		pts := workload(cfg.dist, int64(3*cfg.n+cfg.d), n, cfg.d)
		var total int64
		var sizes []float64
		if cfg.d == 2 {
			res, err := hull2d.Seq(pts)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			for _, f := range res.Created {
				total += int64(len(f.Conf))
			}
			for _, h := range res.HullSizes {
				sizes = append(sizes, float64(h))
			}
		} else {
			res, err := hulld.Seq(pts)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			for _, f := range res.Created {
				total += int64(len(f.Conf))
			}
			for _, h := range res.HullSizes {
				sizes = append(sizes, float64(h))
			}
		}
		bound := stats.Theorem31Bound(cfg.d, sizes)
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%.0f\t%.3f\n",
			cfg.d, cfg.dist, n, total, bound, float64(total)/bound)
	}
	w.Flush()
	fmt.Println("paper: E[total conflicts] <= n*g^2*sum E[|T_i|]/i^2 (Theorem 3.1); ratio must be < 1.")
}

// expFigure1 — E6: the Figure 1 walkthrough.
func expFigure1() {
	pts, base := parhull.Figure1Points()
	res, rounds, err := parhull.Hull2DTrace(pts, base)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	edge := func(e [2]int) string {
		return parhull.Figure1Labels[e[0]] + "-" + parhull.Figure1Labels[e[1]]
	}
	for _, r := range rounds {
		fmt.Printf("round %d:", r.Round)
		for _, ev := range r.Events {
			switch ev.Kind {
			case parhull.TraceCreated:
				fmt.Printf("  +%s(-%s)", edge(ev.A), edge(ev.B))
			case parhull.TraceBuried:
				fmt.Printf("  bury(%s,%s)", edge(ev.A), edge(ev.B))
			default:
				fmt.Printf("  final(%s,%s)", edge(ev.A), edge(ev.B))
			}
		}
		fmt.Println()
	}
	fmt.Print("final hull:")
	for _, v := range res.Vertices {
		fmt.Printf(" %s", parhull.Figure1Labels[v])
	}
	fmt.Printf("  (%d rounds)\n", res.Stats.Rounds)
	fmt.Println("paper (Sec 5.3): v-c,w-b,x-a,a-z in round 1; b-a,c-z in round 2; buries and finals in round 3.")
}
