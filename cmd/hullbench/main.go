// Command hullbench runs the experiments of EXPERIMENTS.md — one per
// theorem/figure of the paper — and prints the measured tables.
//
// Usage:
//
//	hullbench -exp all            # run everything (default sizes)
//	hullbench -exp depth -scale 2 # E1 at 2x the default sizes
//
// Experiments: depth (E1), tail (E2), rounds (E3), work (E4), conflicts
// (E5), figure1 (E6), support (E7), corner (E8), halfspace (E9),
// circles (E9), map (E10), speedup (E11), filter (A1 ablation),
// plane (A2 ablation), sched (A3 ablation), perf (machine-readable
// benchmark export), reuse (Builder steady-state allocation gate),
// delaunay (extension), trapezoid (E13, the Section 4 counterexample),
// spaces (all configuration spaces on the fast engine), scale (large-n
// layout A/B and 1e7+ rows; add -huge for the 1e8 row).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"
)

var (
	scale = flag.Float64("scale", 1, "scale factor on experiment sizes")
	seeds = flag.Int("seeds", 5, "random repetitions per configuration")
)

type experiment struct {
	name string
	desc string
	run  func()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hullbench: ")
	exp := flag.String("exp", "all", "experiment id or 'all'")
	flag.Parse()

	exps := []experiment{
		{"depth", "E1: dependence depth is O(log n) whp (Theorem 1.1/4.2)", expDepth},
		{"tail", "E2: depth tail vs the Theorem 4.2 bound", expTail},
		{"rounds", "E3: recursion depth of Algorithm 3 (Theorem 5.3)", expRounds},
		{"work", "E4: Algorithm 3 does the same facets and plane-side tests as Algorithm 2 (Thm 5.4)", expWork},
		{"conflicts", "E5: total conflict size vs the Clarkson-Shor bound (Theorem 3.1)", expConflicts},
		{"figure1", "E6: the Figure 1 walkthrough (Section 5.3)", expFigure1},
		{"support", "E7: 2-support of the hull configuration space (Theorem 5.1)", expSupport},
		{"corner", "E8: corner configuration space on degenerate 3D inputs (Section 6)", expCorner},
		{"halfspace", "E9a: half-space intersection depth (Section 7)", expHalfspace},
		{"circles", "E9b: unit-circle intersection depth (Section 7)", expCircles},
		{"map", "E10: Algorithm 4 (CAS) vs Algorithm 5 (TAS) ridge maps", expMap},
		{"speedup", "E11: parallel self-speedup of Algorithm 3", expSpeedup},
		{"filter", "A1: ablation — parallel vs serial conflict filtering", expFilter},
		{"plane", "A2: ablation — cached facet hyperplanes vs exact determinants", expPlane},
		{"sched", "A3: ablation — Group fork-join vs the work-stealing executor", expSched},
		{"perf", "PERF: machine-readable ns/op + allocs/op export (BENCH_parhull.json)", expPerf},
		{"reuse", "REUSE: Builder first-build vs steady-state cost + CI allocation gate", expReuse},
		{"delaunay", "EXT: dependence depth of incremental 2D Delaunay", expDelaunay},
		{"trapezoid", "E13: the Section 4 counterexample — no constant support", expTrapezoid},
		{"spaces", "EXT: all configuration spaces on the fast engine (BENCH_parhull.json rows)", expSpaces},
		{"scale", "SCALE: 1e6 layout A/B + 1e7 (1e8 with -huge) large-n rows (BENCH_parhull.json)", expScale},
	}
	if *exp == "all" {
		for _, e := range exps {
			banner(e)
			e.run()
			fmt.Println()
		}
		return
	}
	for _, e := range exps {
		if e.name == *exp {
			banner(e)
			e.run()
			return
		}
	}
	log.Fatalf("unknown experiment %q (try: all, %s)", *exp, names(exps))
}

func names(exps []experiment) string {
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.name
	}
	return strings.Join(out, ", ")
}

func banner(e experiment) {
	fmt.Printf("=== %s — %s\n", e.name, e.desc)
}

// table returns a tabwriter printing to stdout; callers Flush it.
func table() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func sz(base int) int {
	v := int(float64(base) * *scale)
	if v < 8 {
		v = 8
	}
	return v
}
