package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"parhull/internal/geom"
	"parhull/internal/hulld"
	"parhull/internal/pointgen"
)

var hugeScale = flag.Bool("huge", false,
	"include the 3d-ball-100m row in -exp scale (minutes of runtime, several GB of memory)")

// scalePairs is the number of interleaved A/B timing pairs in the layout
// comparison. Interleaving (soa, nosoa, soa, nosoa, ...) instead of running
// each variant's repetitions back to back means slow drift in machine state
// (thermal, cache, background load) lands on both variants equally; the
// median of each variant's samples is reported.
const scalePairs = 3

// scaleWorkloads are the workload names owned by -exp scale; the merge into
// BENCH_parhull.json replaces exactly these rows.
var scaleWorkloads = []string{"3d-ball-1m", "3d-ball-10m", "3d-ball-100m"}

// expScale — the large-n opening of the cache-conscious layout work
// (DESIGN.md §4.7). Two parts:
//
//  1. 3d-ball-1m: a paired, interleaved A/B of the structure-of-arrays plane
//     layout against the NoSoALayout ablation on the steal schedule, after
//     asserting the two layouts produce the identical facet multiset. Both
//     rows land in BENCH_parhull.json, so the layout win is diffable.
//  2. 3d-ball-10m (and 3d-ball-100m behind -huge): one counted run each with
//     counters on, recording ns/op, allocs, and the sampled live-heap peak —
//     the evidence that the grow-only arenas hold at 1e7+.
func expScale() {
	w := table()
	fmt.Fprintln(w, "workload\tsched\tns/op\tallocs/op\tB/op\tfacets\tdepth\tpeakB")
	var entries []perfEntry

	// Part 1: layout A/B at one million points.
	n := sz(1000000)
	pts := pointgen.Shuffled(pointgen.NewRNG(45), pointgen.UniformBall(pointgen.NewRNG(45), n, 3))
	soaRes, err := hulld.Par(pts, &hulld.Options{})
	if err != nil {
		log.Fatalf("scale 3d-ball-1m: %v", err)
	}
	noRes, err := hulld.Par(pts, &hulld.Options{NoSoALayout: true})
	if err != nil {
		log.Fatalf("scale 3d-ball-1m nosoa: %v", err)
	}
	gs, ns := soaRes.FacetSet(), noRes.FacetSet()
	if len(gs) != len(ns) {
		log.Fatalf("scale: layouts disagree: %d distinct facets with SoA, %d without", len(gs), len(ns))
	}
	for k, c := range gs {
		if ns[k] != c {
			log.Fatalf("scale: facet %x multiplicity %d with SoA, %d without", k, c, ns[k])
		}
	}
	var soa, nosoa []scaleSample
	for i := 0; i < scalePairs; i++ {
		soa = append(soa, runScale(pts, false))
		nosoa = append(nosoa, runScale(pts, true))
	}
	for _, row := range []struct {
		sched   string
		samples []scaleSample
		res     *hulld.Result
	}{{"steal", soa, soaRes}, {"steal-nosoa", nosoa, noRes}} {
		s := medianSample(row.samples)
		e := perfEntry{
			Workload:    "3d-ball-1m",
			N:           n,
			Dim:         3,
			Sched:       row.sched,
			Filter:      "batch",
			Procs:       runtime.GOMAXPROCS(0),
			NsPerOp:     float64(s.ns),
			AllocsPerOp: s.allocs,
			BytesPerOp:  s.bytes,
			Iterations:  scalePairs,
			Facets:      len(row.res.Created),
			Depth:       row.res.Stats.MaxDepth,
			PeakBytes:   row.res.Stats.PeakBytes,
		}
		entries = append(entries, e)
		printScaleRow(w, e)
	}
	if a, b := medianSample(soa).ns, medianSample(nosoa).ns; b > 0 {
		fmt.Fprintf(w, "(SoA layout vs ablation: %+.1f%%)\t\t\t\t\t\t\t\n", 100*float64(a-b)/float64(b))
	}
	soaRes, noRes, pts = nil, nil, nil

	// Part 2: counted runs at 1e7 (and 1e8 behind -huge), counters on so the
	// live-heap peak is sampled.
	sizes := []struct {
		name string
		n    int
	}{{"3d-ball-10m", sz(10000000)}}
	if *hugeScale {
		sizes = append(sizes, struct {
			name string
			n    int
		}{"3d-ball-100m", sz(100000000)})
	}
	for _, sp := range sizes {
		runtime.GC()
		big := pointgen.Shuffled(pointgen.NewRNG(46), pointgen.UniformBall(pointgen.NewRNG(46), sp.n, 3))
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		res, err := hulld.Par(big, &hulld.Options{})
		elapsed := time.Since(t0).Nanoseconds()
		if err != nil {
			log.Fatalf("scale %s: %v", sp.name, err)
		}
		runtime.ReadMemStats(&m1)
		e := perfEntry{
			Workload:    sp.name,
			N:           sp.n,
			Dim:         3,
			Sched:       "steal",
			Filter:      "batch",
			Procs:       runtime.GOMAXPROCS(0),
			NsPerOp:     float64(elapsed),
			AllocsPerOp: int64(m1.Mallocs - m0.Mallocs),
			BytesPerOp:  int64(m1.TotalAlloc - m0.TotalAlloc),
			Iterations:  1,
			Facets:      len(res.Created),
			Depth:       res.Stats.MaxDepth,
			PeakBytes:   res.Stats.PeakBytes,
		}
		entries = append(entries, e)
		printScaleRow(w, e)
	}
	w.Flush()
	appendScaleEntries(entries)
}

type scaleSample struct{ ns, allocs, bytes int64 }

// runScale times one counters-off steal-schedule build and reads the
// allocation deltas from runtime.MemStats (Mallocs and TotalAlloc are
// monotonic, so the delta is exact even with the concurrent GC running).
func runScale(pts []geom.Point, noSoA bool) scaleSample {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	if _, err := hulld.Par(pts, &hulld.Options{NoCounters: true, NoSoALayout: noSoA}); err != nil {
		log.Fatalf("scale: %v", err)
	}
	ns := time.Since(t0).Nanoseconds()
	runtime.ReadMemStats(&m1)
	return scaleSample{ns, int64(m1.Mallocs - m0.Mallocs), int64(m1.TotalAlloc - m0.TotalAlloc)}
}

// medianSample takes the per-field median (ns decides the pairing story;
// allocs and bytes are near-constant across runs anyway).
func medianSample(s []scaleSample) scaleSample {
	pick := func(get func(scaleSample) int64) int64 {
		v := make([]int64, len(s))
		for i, x := range s {
			v[i] = get(x)
		}
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		return v[len(v)/2]
	}
	return scaleSample{
		ns:     pick(func(x scaleSample) int64 { return x.ns }),
		allocs: pick(func(x scaleSample) int64 { return x.allocs }),
		bytes:  pick(func(x scaleSample) int64 { return x.bytes }),
	}
}

func printScaleRow(w *tabwriter.Writer, e perfEntry) {
	fmt.Fprintf(w, "%s\t%s\t%.0f\t%d\t%d\t%d\t%d\t%d\n", e.Workload, e.Sched,
		e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, e.Facets, e.Depth, e.PeakBytes)
}

// appendScaleEntries merges the scale rows into the perf report at -out,
// replacing any previous scale rows (and creating the report if the perf
// experiment has not run).
func appendScaleEntries(entries []perfEntry) {
	report := perfReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      *scale,
	}
	owned := map[string]bool{}
	for _, n := range scaleWorkloads {
		owned[n] = true
	}
	if data, err := os.ReadFile(*benchOut); err == nil {
		var old perfReport
		if json.Unmarshal(data, &old) == nil {
			kept := old.Entries[:0]
			for _, e := range old.Entries {
				if !owned[e.Workload] {
					kept = append(kept, e)
				}
			}
			old.Entries = kept
			report = old
		}
	}
	report.Entries = append(report.Entries, entries...)
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		log.Fatalf("scale: marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
		log.Fatalf("scale: write %s: %v", *benchOut, err)
	}
	fmt.Printf("updated %s (%d entries)\n", *benchOut, len(report.Entries))
}
