package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"

	"parhull"
	"parhull/internal/pointgen"
)

var reuseGate = flag.Int64("reuse-gate", 100,
	"fail the reuse experiment if steady-state allocs/op on 3d-ball-100k exceeds this (<= 0 disables)")

var reusePeakGate = flag.Float64("reuse-peak-gate", 10,
	"fail the reuse experiment if the steady-state live-heap peak grows by more than this percentage over the previous BENCH_parhull.json reuse-steady row (<= 0 disables)")

// expReuse — Builder reuse: the first Build on a parhull.Builder pays for the
// worker pool, arenas, ridge table, and output buffers; every later Build
// recycles them. This experiment measures both phases on the headline perf
// workload (3d-ball-100k, counters off, direct path — the same configuration
// as the perf export's steal row), appends the two rows to
// BENCH_parhull.json, and acts as the CI allocation gate: a steady-state
// allocs/op above -reuse-gate fails the run, so a pooling regression (a
// buffer silently dropped from the reuse path) cannot land quietly.
func expReuse() {
	pts := pointgen.Shuffled(pointgen.NewRNG(41), pointgen.UniformBall(pointgen.NewRNG(41), sz(100000), 3))
	opt := &parhull.Options{NoCounters: true, PreHull: parhull.PreHullOff}

	first := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bld := parhull.NewBuilder(opt)
			if _, err := bld.Build(pts); err != nil {
				b.Fatal(err)
			}
			bld.Close()
		}
	})

	bld := parhull.NewBuilder(opt)
	defer bld.Close()
	if _, err := bld.Build(pts); err != nil {
		log.Fatalf("reuse: warm-up build: %v", err)
	}
	steady := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bld.Build(pts); err != nil {
				b.Fatal(err)
			}
		}
	})

	// One counted steady-state Build (counters on, same pooled Builder state)
	// samples the live-heap peak for the memory gate. PeakBytes needs the
	// counter infrastructure, so it cannot come from the timed runs above.
	counted := parhull.NewBuilder(&parhull.Options{PreHull: parhull.PreHullOff})
	defer counted.Close()
	if _, err := counted.Build(pts); err != nil {
		log.Fatalf("reuse: counted warm-up build: %v", err)
	}
	cres, err := counted.Build(pts)
	if err != nil {
		log.Fatalf("reuse: counted steady build: %v", err)
	}
	peak := cres.Stats.PeakBytes

	w := table()
	fmt.Fprintln(w, "phase\tns/op\tallocs/op\tB/op\tpeakB")
	fmt.Fprintf(w, "first-build\t%.0f\t%d\t%d\t\n",
		float64(first.T.Nanoseconds())/float64(first.N), first.AllocsPerOp(), first.AllocedBytesPerOp())
	fmt.Fprintf(w, "steady-state\t%.0f\t%d\t%d\t%d\n",
		float64(steady.T.Nanoseconds())/float64(steady.N), steady.AllocsPerOp(), steady.AllocedBytesPerOp(), peak)
	w.Flush()

	prevPeak := appendReuseEntries(len(pts), first, steady, peak)

	if *reuseGate > 0 && steady.AllocsPerOp() > *reuseGate {
		log.Fatalf("reuse gate: steady-state allocs/op = %d exceeds the gate of %d",
			steady.AllocsPerOp(), *reuseGate)
	}
	// The peak gate is relative: the steady-state live-heap peak may not grow
	// more than -reuse-peak-gate percent over the previous recorded row. A
	// pooling regression that leaks whole arenas (rather than stray small
	// allocations, which the allocs gate catches) shows up here first.
	if *reusePeakGate > 0 && prevPeak > 0 && peak > 0 {
		limit := int64(float64(prevPeak) * (1 + *reusePeakGate/100))
		if peak > limit {
			log.Fatalf("reuse peak gate: steady-state PeakBytes = %d exceeds %d (previous %d + %.0f%%)",
				peak, limit, prevPeak, *reusePeakGate)
		}
	}
}

// appendReuseEntries merges the two reuse rows into the perf report at
// -out (replacing any previous reuse rows; creating the report when the perf
// experiment has not run), so BENCH_parhull.json carries the first-build and
// steady-state numbers alongside the per-substrate rows. It returns the
// PeakBytes of the reuse-steady row being replaced (0 when there is none) —
// the baseline for the relative peak gate.
func appendReuseEntries(n int, first, steady testing.BenchmarkResult, peak int64) int64 {
	var prevPeak int64
	report := perfReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      *scale,
	}
	if data, err := os.ReadFile(*benchOut); err == nil {
		var old perfReport
		if json.Unmarshal(data, &old) == nil {
			kept := old.Entries[:0]
			for _, e := range old.Entries {
				if e.Sched == "reuse-steady" {
					prevPeak = e.PeakBytes
				}
				if e.Sched != "reuse-first" && e.Sched != "reuse-steady" {
					kept = append(kept, e)
				}
			}
			old.Entries = kept
			report = old
		}
	}
	for _, row := range []struct {
		sched string
		r     testing.BenchmarkResult
		peak  int64
	}{{"reuse-first", first, 0}, {"reuse-steady", steady, peak}} {
		report.Entries = append(report.Entries, perfEntry{
			Workload:    "3d-ball-100k",
			N:           n,
			Dim:         3,
			Sched:       row.sched,
			Filter:      "batch",
			Procs:       runtime.GOMAXPROCS(0),
			NsPerOp:     float64(row.r.T.Nanoseconds()) / float64(row.r.N),
			AllocsPerOp: row.r.AllocsPerOp(),
			BytesPerOp:  row.r.AllocedBytesPerOp(),
			Iterations:  row.r.N,
			PeakBytes:   row.peak,
		})
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		log.Fatalf("reuse: marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
		log.Fatalf("reuse: write %s: %v", *benchOut, err)
	}
	fmt.Printf("updated %s (%d entries)\n", *benchOut, len(report.Entries))
	return prevPeak
}
