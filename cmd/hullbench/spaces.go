package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"parhull"
	"parhull/internal/circles"
	"parhull/internal/core"
	"parhull/internal/corner"
	"parhull/internal/delaunay"
	"parhull/internal/engine"
	"parhull/internal/geom"
	"parhull/internal/halfspace"
	"parhull/internal/pointgen"
	"parhull/internal/trapezoid"
)

var spacesGate = flag.Float64("spaces-gate", 0,
	"fail the spaces experiment if the Delaunay engine speedup over the reference triangulator at P=1 falls below this (<= 0 disables)")

// expSpaces — EXT: every configuration space on the fast engine. The headline
// row pits the Delaunay kernel (flat triangle arena, cached lifted-plane
// in-circle filter, fused batch conflict scan) against the seed's map-based
// reference triangulator on 100k uniform-square points at P=1 — the port is
// only worth keeping if the engine wins by a wide margin — plus a full-P row
// for color. The remaining rows measure the public entry points that now run
// on engine.SpaceRounds with batch ConflictScanners (half-space direct,
// circles, trapezoid, corner), and each space is first cross-checked against
// the T(X) oracle (core.Active) on a tiny instance so the table never reports
// a fast wrong answer. Rows are merged into BENCH_parhull.json.
func expSpaces() {
	checkSpaceOracles()

	rng := pointgen.NewRNG(61)
	pts := pointgen.Shuffled(rng, pointgen.InCube(pointgen.NewRNG(61), sz(100000), 2))

	ref, err := delaunay.Triangulate(pts)
	if err != nil {
		log.Fatalf("spaces: reference triangulation: %v", err)
	}
	eng, err := delaunay.Seq(pts, &delaunay.Options{})
	if err != nil {
		log.Fatalf("spaces: engine triangulation: %v", err)
	}
	if len(eng.Triangles) != len(ref.Triangles) {
		log.Fatalf("spaces: engine produced %d triangles, reference %d", len(eng.Triangles), len(ref.Triangles))
	}

	w := table()
	fmt.Fprintln(w, "row\tn\tns/op\tallocs/op\tB/op\tcreated\trounds")
	var entries []perfEntry
	row := func(workload, sched string, n, created, rounds int, r testing.BenchmarkResult) {
		e := perfEntry{
			Workload:    workload,
			N:           n,
			Dim:         2,
			Sched:       sched,
			Filter:      "batch",
			Procs:       runtime.GOMAXPROCS(0),
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
			Facets:      created,
			Rounds:      rounds,
		}
		entries = append(entries, e)
		fmt.Fprintf(w, "%s/%s\t%d\t%.0f\t%d\t%d\t%d\t%d\n",
			workload, sched, e.N, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, created, rounds)
	}

	bref := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := delaunay.Triangulate(pts); err != nil {
				b.Fatal(err)
			}
		}
	})
	row("space-delaunay", "reference", len(pts), len(ref.Created), 0, bref)

	// The P=1 engine row runs the parallel schedule on one worker: same flat
	// arena and fused batch filter, no parallelism — the fair single-core
	// comparison against the purely sequential reference.
	bseq := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := delaunay.Par(pts, &delaunay.Options{NoCounters: true, Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	row("space-delaunay", "engine-p1", len(pts), len(eng.Created), 0, bseq)

	bpar := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := delaunay.Par(pts, &delaunay.Options{NoCounters: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	row("space-delaunay", "engine-par", len(pts), len(eng.Created), 0, bpar)

	speedup := float64(bref.T.Nanoseconds()) / float64(bref.N) /
		(float64(bseq.T.Nanoseconds()) / float64(bseq.N))

	normals := append(halfspace.BoundingSimplex(3),
		pointgen.OnSphere(pointgen.NewRNG(62), sz(40), 3)...)
	hres, err := parhull.HalfspaceIntersectionDirect(normals, nil)
	if err != nil {
		log.Fatalf("spaces: halfspace direct: %v", err)
	}
	bh := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := parhull.HalfspaceIntersectionDirect(normals, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	row("space-halfspace", "rounds", len(normals),
		int(hres.Stats.FacetsCreated), hres.Stats.Rounds, bh)

	crng := pointgen.NewRNG(63)
	centers := make([]geom.Point, sz(200))
	for i := range centers {
		centers[i] = geom.Point{crng.Float64() * 0.8, crng.Float64() * 0.8}
	}
	if _, ok, err := parhull.UnitCircleIntersection(centers, nil); err != nil || !ok {
		log.Fatalf("spaces: circles: ok=%v err=%v", ok, err)
	}
	bc := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := parhull.UnitCircleIntersection(centers, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	row("space-circles", "rounds", len(centers), 0, 0, bc)

	segs, box := spacesSegments(sz(40))
	if _, err := parhull.TrapezoidDecomposition(segs, box, nil); err != nil {
		log.Fatalf("spaces: trapezoid: %v", err)
	}
	bt := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := parhull.TrapezoidDecomposition(segs, box, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	row("space-trapezoid", "rounds", len(segs), 0, 0, bt)

	cpts := pointgen.Grid3D(3)
	if _, err := parhull.Hull3DDegenerate(cpts, nil); err != nil {
		log.Fatalf("spaces: corner: %v", err)
	}
	bk := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := parhull.Hull3DDegenerate(cpts, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	row("space-corner", "rounds", len(cpts), 0, 0, bk)

	w.Flush()
	fmt.Printf("delaunay engine speedup over reference at P=1: %.2fx\n", speedup)

	appendSpaceEntries(entries)

	if *spacesGate > 0 && speedup < *spacesGate {
		log.Fatalf("spaces gate: engine speedup %.2fx is below the gate of %.2fx", speedup, *spacesGate)
	}
}

// checkSpaceOracles cross-checks engine.SpaceRounds against the T(X) oracle
// on one tiny instance of every space before anything is timed.
func checkSpaceOracles() {
	rng := pointgen.NewRNG(64)
	dpts := append([]geom.Point{{0, 8}, {-8, -6}, {8, -6}},
		pointgen.UniformBall(rng, 6, 2)...)
	ds, err := delaunay.NewSpace(dpts)
	if err != nil {
		log.Fatalf("spaces: oracle delaunay: %v", err)
	}
	cs, err := corner.NewSpace(append(pointgen.Grid3D(2), geom.Point{0.5, 0.5, 0.5}))
	if err != nil {
		log.Fatalf("spaces: oracle corner: %v", err)
	}
	centers := make([]geom.Point, 6)
	for i := range centers {
		centers[i] = geom.Point{rng.Float64() * 0.8, rng.Float64() * 0.8}
	}
	us, err := circles.NewSpace(centers)
	if err != nil {
		log.Fatalf("spaces: oracle circles: %v", err)
	}
	hs, err := halfspace.NewSpace(append(halfspace.BoundingSimplex(2),
		pointgen.OnSphere(rng, 4, 2)...))
	if err != nil {
		log.Fatalf("spaces: oracle halfspace: %v", err)
	}
	tsegs, tbox := spacesSegments(5)
	ts, err := trapezoid.NewSpace(tsegs, tbox)
	if err != nil {
		log.Fatalf("spaces: oracle trapezoid: %v", err)
	}
	for _, sp := range []struct {
		name string
		s    core.Space
	}{{"delaunay", ds}, {"corner", cs}, {"circles", us}, {"halfspace", hs}, {"trapezoid", ts}} {
		order := make([]int, sp.s.NumObjects())
		for i := range order {
			order[i] = i
		}
		res, err := engine.SpaceRounds(sp.s, order)
		if err != nil {
			log.Fatalf("spaces: oracle %s: SpaceRounds: %v", sp.name, err)
		}
		want := core.Active(sp.s, order)
		sort.Ints(want)
		if fmt.Sprint(res.Alive) != fmt.Sprint(want) {
			log.Fatalf("spaces: oracle %s: engine alive %v, T(X) %v", sp.name, res.Alive, want)
		}
	}
	fmt.Println("oracle check: engine alive set == T(X) on all five spaces")
}

// spacesSegments builds m non-touching horizontal segments in a 100x100 box.
func spacesSegments(m int) ([]parhull.TrapezoidSegment, parhull.TrapezoidBox) {
	rng := pointgen.NewRNG(65)
	segs := make([]parhull.TrapezoidSegment, m)
	for i := range segs {
		segs[i] = parhull.TrapezoidSegment{
			Y:  100*float64(i+1)/float64(m+1) + rng.Float64()*0.5,
			XL: 1 + rng.Float64()*48,
			XR: 51 + rng.Float64()*48,
		}
	}
	return segs, parhull.TrapezoidBox{XL: 0, XR: 100, YB: 0, YT: 100}
}

// appendSpaceEntries merges the space rows into the perf report at -out,
// replacing any previous space rows (and creating the report if the perf
// experiment has not run).
func appendSpaceEntries(entries []perfEntry) {
	report := perfReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      *scale,
	}
	if data, err := os.ReadFile(*benchOut); err == nil {
		var old perfReport
		if json.Unmarshal(data, &old) == nil {
			kept := old.Entries[:0]
			for _, e := range old.Entries {
				if !strings.HasPrefix(e.Workload, "space-") {
					kept = append(kept, e)
				}
			}
			old.Entries = kept
			report = old
		}
	}
	report.Entries = append(report.Entries, entries...)
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		log.Fatalf("spaces: marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
		log.Fatalf("spaces: write %s: %v", *benchOut, err)
	}
	fmt.Printf("updated %s (%d entries)\n", *benchOut, len(report.Entries))
}
