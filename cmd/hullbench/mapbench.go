package main

import (
	"fmt"
	"sync"
	"time"

	"parhull"
	"parhull/internal/conmap"
	"parhull/internal/hull2d"
	"parhull/internal/pointgen"
)

// expMap — E10: the three ridge-map protocols, microbenchmarked and then
// run inside the full hull engine.
func expMap() {
	n := sz(200000)
	// Microbenchmark: n InsertAndSet pairs (winner + loser) per map.
	w := table()
	fmt.Fprintln(w, "map\tns/op (1 goroutine)\tns/op (4 goroutines)")
	for _, mk := range []struct {
		name string
		make func() conmap.RidgeMap[*int]
	}{
		{"Alg 4 (CAS)", func() conmap.RidgeMap[*int] { return conmap.NewCASMap[*int](n) }},
		{"Alg 5 (TAS)", func() conmap.RidgeMap[*int] { return conmap.NewTASMap[*int](n) }},
		{"sharded", func() conmap.RidgeMap[*int] { return conmap.NewShardedMap[*int](n) }},
	} {
		serial := timeMap(mk.make(), n, 1)
		par := timeMap(mk.make(), n, 4)
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\n", mk.name, serial, par)
	}
	w.Flush()

	// End-to-end: the 2D hull with each map installed.
	pts := pointgen.OnCircle(pointgen.NewRNG(5), sz(100000))
	w2 := table()
	fmt.Fprintln(w2, "map\thull time\tfacets")
	for _, mk := range []struct {
		name string
		mk   parhull.MapKind
	}{
		{"Alg 4 (CAS)", parhull.MapCAS},
		{"Alg 5 (TAS)", parhull.MapTAS},
		{"sharded", parhull.MapSharded},
	} {
		start := time.Now()
		res, err := hull2dWith(pts, mk.mk)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Fprintf(w2, "%s\t%v\t%d\n", mk.name, time.Since(start).Round(time.Microsecond), res)
	}
	w2.Flush()
	fmt.Println("paper: both protocols cost O(log n) whp per op (Sec 5.2, Appendix A); CAS is the simpler, TAS the weaker-primitive variant.")
}

func hull2dWith(pts []parhull.Point, mk parhull.MapKind) (int64, error) {
	var m conmap.RidgeMap[*hull2d.Facet]
	switch mk {
	case parhull.MapCAS:
		m = conmap.NewCASMap[*hull2d.Facet](8 * len(pts))
	case parhull.MapTAS:
		m = conmap.NewTASMap[*hull2d.Facet](8 * len(pts))
	default:
		m = conmap.NewShardedMap[*hull2d.Facet](len(pts))
	}
	res, err := hull2d.Par(pts, &hull2d.Options{Map: m, NoCounters: true})
	if err != nil {
		return 0, err
	}
	return res.Stats.FacetsCreated, nil
}

// timeMap measures the average cost of an InsertAndSet (half winners, half
// losers) plus the losers' GetValue, across g goroutines.
func timeMap(m conmap.RidgeMap[*int], n, g int) float64 {
	vals := make([]*int, 2*n)
	for i := range vals {
		vals[i] = new(int)
	}
	start := time.Now()
	var wg sync.WaitGroup
	per := n / g
	for gi := 0; gi < g; gi++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := base; i < base+per; i++ {
				k := conmap.MakeKey([]int32{int32(i), int32(i + 1)})
				if _, err := m.InsertAndSet(k, vals[2*i]); err != nil {
					panic(err) // tables are sized for n; cannot happen
				}
				first, err := m.InsertAndSet(k, vals[2*i+1])
				if err != nil {
					panic(err)
				}
				if !first {
					m.GetValue(k, vals[2*i+1])
				}
			}
		}(gi * per)
	}
	wg.Wait()
	ops := 2 * per * g
	return float64(time.Since(start).Nanoseconds()) / float64(ops)
}
