package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"parhull/internal/geom"
	"parhull/internal/hull2d"
	"parhull/internal/hulld"
	"parhull/internal/pointgen"
	"parhull/internal/sched"
)

var benchOut = flag.String("out", "BENCH_parhull.json", "output path for the -exp perf report")

// perfEntry is one (workload, substrate) measurement. ns/op, allocs/op and
// B/op come from testing.Benchmark; facets, depth and rounds are structural
// properties of the workload (identical across substrates, Theorem 5.5) from
// one counted run each of Par and Rounds.
type perfEntry struct {
	Workload    string  `json:"workload"`
	N           int     `json:"n"`
	Dim         int     `json:"dim"`
	Sched       string  `json:"sched"`
	Filter      string  `json:"filter"`
	Procs       int     `json:"procs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	Facets      int     `json:"facets"`
	Depth       int     `json:"depth"`
	Rounds      int     `json:"rounds"`
	// PeakBytes is the sampled peak live-heap growth of one counted run of
	// the workload (Stats.PeakBytes; 0 in rows measured with counters off).
	PeakBytes int64 `json:"peak_bytes,omitempty"`
	// Scaling fields, set by the -exp speedup sweep only: GOMAXPROCS and
	// Options.Workers are pinned to Procs for the row; Speedup is relative
	// to the sweep's first P (self-speedup when that is 1), Efficiency is
	// Speedup/Procs, PreKept is Stats.PreHullKept when PreHull is on.
	PreHull    bool    `json:"prehull,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
	Efficiency float64 `json:"efficiency,omitempty"`
	PreKept    int     `json:"prehull_kept,omitempty"`
}

type perfReport struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Scale      float64     `json:"scale"`
	Date       string      `json:"date"`
	Entries    []perfEntry `json:"entries"`
}

// expPerf — machine-readable benchmark export. Runs each workload under both
// fork-join substrates with testing.Benchmark and writes BENCH_parhull.json
// (CI uploads it as an artifact), so regressions in ns/op or allocs/op are
// diffable across commits without scraping table output.
func expPerf() {
	type workload struct {
		name string
		dim  int
		pts  []geom.Point
	}
	wls := []workload{
		{"3d-ball-100k", 3, pointgen.Shuffled(pointgen.NewRNG(41), pointgen.UniformBall(pointgen.NewRNG(41), sz(100000), 3))},
		{"3d-sphere-20k", 3, pointgen.OnSphere(pointgen.NewRNG(42), sz(20000), 3)},
		{"2d-disk-100k", 2, pointgen.Shuffled(pointgen.NewRNG(43), pointgen.UniformBall(pointgen.NewRNG(43), sz(100000), 2))},
		{"2d-circle-100k", 2, pointgen.OnCircle(pointgen.NewRNG(44), sz(100000))},
	}
	report := perfReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      *scale,
		Date:       time.Now().UTC().Format(time.RFC3339),
	}
	w := table()
	fmt.Fprintln(w, "workload\tsched\tfilter\tns/op\tallocs/op\tB/op\tfacets\tdepth\trounds\tpeakB")
	for _, wl := range wls {
		var facets, depth, rounds int
		var peak int64
		if wl.dim == 2 {
			res, err := hull2d.Par(wl.pts, &hull2d.Options{})
			if err != nil {
				log.Fatalf("perf %s: %v", wl.name, err)
			}
			facets, depth, peak = len(res.Created), res.Stats.MaxDepth, res.Stats.PeakBytes
			rres, _, err := hull2d.Rounds(wl.pts, &hull2d.Options{})
			if err != nil {
				log.Fatalf("perf %s rounds: %v", wl.name, err)
			}
			rounds = rres.Stats.Rounds
		} else {
			res, err := hulld.Par(wl.pts, &hulld.Options{})
			if err != nil {
				log.Fatalf("perf %s: %v", wl.name, err)
			}
			facets, depth, peak = len(res.Created), res.Stats.MaxDepth, res.Stats.PeakBytes
			rres, err := hulld.Rounds(wl.pts, &hulld.Options{})
			if err != nil {
				log.Fatalf("perf %s rounds: %v", wl.name, err)
			}
			rounds = rres.Stats.Rounds
		}
		for _, c := range []struct {
			name    string
			kind    sched.Kind
			filter  string
			closure bool
		}{
			{"steal", sched.KindSteal, "batch", false},
			{"group", sched.KindGroup, "batch", false},
			{"steal", sched.KindSteal, "closure", true},
		} {
			kind, closure := c.kind, c.closure
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var err error
					if wl.dim == 2 {
						_, err = hull2d.Par(wl.pts, &hull2d.Options{Sched: kind, NoCounters: true, NoBatchFilter: closure})
					} else {
						_, err = hulld.Par(wl.pts, &hulld.Options{Sched: kind, NoCounters: true, NoBatchFilter: closure})
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			e := perfEntry{
				Workload:    wl.name,
				N:           len(wl.pts),
				Dim:         wl.dim,
				Sched:       c.name,
				Filter:      c.filter,
				Procs:       runtime.GOMAXPROCS(0),
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Iterations:  r.N,
				Facets:      facets,
				Depth:       depth,
				Rounds:      rounds,
				PeakBytes:   peak,
			}
			report.Entries = append(report.Entries, e)
			fmt.Fprintf(w, "%s\t%s\t%s\t%.0f\t%d\t%d\t%d\t%d\t%d\t%d\n", e.Workload, e.Sched,
				e.Filter, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, e.Facets, e.Depth, e.Rounds, e.PeakBytes)
		}
	}
	w.Flush()
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		log.Fatalf("perf: marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
		log.Fatalf("perf: write %s: %v", *benchOut, err)
	}
	fmt.Printf("wrote %s (%d entries)\n", *benchOut, len(report.Entries))
}
