package main

import (
	"fmt"
	"runtime"
	"time"

	"parhull/internal/hull2d"
	"parhull/internal/hulld"
	"parhull/internal/pointgen"
	"parhull/internal/sched"
)

// expSched — A3 (ablation): Group fork-join vs the work-stealing executor.
// Both substrates execute the identical facet creations (Theorem 5.5's
// relaxed-order guarantee, asserted by TestParSchedEquivalence); what the
// ablation measures is the cost of the schedule itself — Group pays a
// contended channel-semaphore operation plus a goroutine spawn per forked
// ridge chain and a heap allocation per facet, while the executor runs a
// fixed worker pool with per-worker deques and arenas. The allocs column
// (heap allocations during the construction) makes the arena effect
// directly visible.
func expSched() {
	w := table()
	fmt.Fprintln(w, "input\tsched\ttime\tallocs\talloc MB\tfacets")
	type cfg struct {
		name string
		kind sched.Kind
	}
	kinds := []cfg{{"steal", sched.KindSteal}, {"group", sched.KindGroup}}

	run := func(name string, f func(k sched.Kind) (int, error)) {
		for _, c := range kinds {
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			start := time.Now()
			facets, err := f(c.kind)
			elapsed := time.Since(start)
			runtime.ReadMemStats(&m1)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			fmt.Fprintf(w, "%s\t%s\t%v\t%d\t%.1f\t%d\n", name, c.name,
				elapsed.Round(time.Microsecond),
				m1.Mallocs-m0.Mallocs, float64(m1.TotalAlloc-m0.TotalAlloc)/(1<<20),
				facets)
		}
	}

	ball3d := pointgen.Shuffled(pointgen.NewRNG(31), pointgen.UniformBall(pointgen.NewRNG(31), sz(100000), 3))
	run("3D ball n=100k", func(k sched.Kind) (int, error) {
		res, err := hulld.Par(ball3d, &hulld.Options{Sched: k, NoCounters: true})
		if err != nil {
			return 0, err
		}
		return len(res.Created), nil
	})
	sphere3d := pointgen.OnSphere(pointgen.NewRNG(32), sz(20000), 3)
	run("3D sphere n=20k", func(k sched.Kind) (int, error) {
		res, err := hulld.Par(sphere3d, &hulld.Options{Sched: k, NoCounters: true})
		if err != nil {
			return 0, err
		}
		return len(res.Created), nil
	})
	circle2d := pointgen.OnCircle(pointgen.NewRNG(33), sz(200000))
	run("2D circle n=200k", func(k sched.Kind) (int, error) {
		res, err := hull2d.Par(circle2d, &hull2d.Options{Sched: k, NoCounters: true})
		if err != nil {
			return 0, err
		}
		return len(res.Created), nil
	})
	w.Flush()
	fmt.Println("identical facet counts across substrates; the delta is pure scheduling + allocation overhead.")
}
