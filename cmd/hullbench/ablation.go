package main

import (
	"fmt"
	"testing"
	"time"

	"parhull/internal/core"
	"parhull/internal/delaunay"
	"parhull/internal/geom"
	"parhull/internal/hull2d"
	"parhull/internal/hulld"
	"parhull/internal/pointgen"
	"parhull/internal/stats"
	"parhull/internal/trapezoid"
)

// expFilter — A1 (ablation): how conflict lists are filtered. Two knobs:
// parallel vs serial chunking (the paper's span bound needs the big
// early-round lists filtered in parallel — approximate compaction in the
// CRCW analysis), and the batched two-phase pipeline vs the per-point
// closure path (the merge/filter split of DESIGN.md §4.3). Outputs and test
// counts are identical by construction on every row.
func expFilter() {
	n := sz(400000)
	pts := pointgen.OnCircle(pointgen.NewRNG(12), n)
	w := table()
	fmt.Fprintln(w, "filter\ttime\tvtests\tfacets")
	for _, cfg := range []struct {
		name  string
		grain int
	}{
		{"parallel (default)", 0},
		{"serial (grain=inf)", 1 << 62},
	} {
		start := time.Now()
		res, err := hull2d.Par(pts, &hull2d.Options{FilterGrain: cfg.grain})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Fprintf(w, "%s\t%v\t%d\t%d\n", cfg.name,
			time.Since(start).Round(time.Microsecond),
			res.Stats.VisibilityTests, res.Stats.FacetsCreated)
	}
	w.Flush()
	fmt.Println("identical counts confirm the ablation only reshapes the schedule, not the work.")
	fmt.Println()

	// Batched pipeline vs pointwise closure, measured with testing.Benchmark
	// so allocation behavior is visible alongside wall clock.
	type workload struct {
		name string
		dim  int
		pts  []geom.Point
	}
	wls := []workload{
		{"2d-circle", 2, pointgen.OnCircle(pointgen.NewRNG(12), sz(200000))},
		{"3d-sphere", 3, pointgen.OnSphere(pointgen.NewRNG(15), sz(20000), 3)},
		{"3d-ball", 3, pointgen.Shuffled(pointgen.NewRNG(16), pointgen.UniformBall(pointgen.NewRNG(16), sz(100000), 3))},
	}
	w = table()
	fmt.Fprintln(w, "workload\tfilter\tns/op\tallocs/op\tB/op")
	for _, wl := range wls {
		for _, mode := range []struct {
			name    string
			closure bool
		}{{"batch", false}, {"closure", true}} {
			closure := mode.closure
			dim := wl.dim
			pts := wl.pts
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var err error
					if dim == 2 {
						_, err = hull2d.Par(pts, &hull2d.Options{NoCounters: true, NoBatchFilter: closure})
					} else {
						_, err = hulld.Par(pts, &hulld.Options{NoCounters: true, NoBatchFilter: closure})
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			fmt.Fprintf(w, "%s\t%s\t%.0f\t%d\t%d\n", wl.name, mode.name,
				float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp(), r.AllocedBytesPerOp())
		}
	}
	w.Flush()
	fmt.Println("batch = predicate-free merge + one filter call per candidate run (default);")
	fmt.Println("closure = per-point predicate dispatch (NoBatchFilter). Same survivor lists.")
}

// expPlane — A2 (ablation): cached facet hyperplanes vs exact determinants
// on the visibility hot path. With the cache on, each plane-side test is a
// strided dot product against the facet's precomputed (normal, offset,
// error bound); only uncertifiable tests fall back to the exact predicate,
// so facet sets and test counts are identical by construction (asserted by
// the planecache tests) and the table reports the hit/fallback split.
func expPlane() {
	w := table()
	fmt.Fprintln(w, "input\tplane cache\ttime\tvtests\tcache hits\texact fallbacks\tfacets")
	run2d := func(name string, pts []geom.Point, noPlane bool) {
		start := time.Now()
		res, err := hull2d.Par(pts, &hull2d.Options{NoPlaneCache: noPlane})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Fprintf(w, "%s\t%v\t%v\t%d\t%d\t%d\t%d\n", name, !noPlane,
			time.Since(start).Round(time.Microsecond), res.Stats.VisibilityTests,
			res.Stats.PlaneCacheHits, res.Stats.ExactFallbacks, res.Stats.FacetsCreated)
	}
	run3d := func(name string, pts []geom.Point, noPlane bool) {
		start := time.Now()
		res, err := hulld.Par(pts, &hulld.Options{NoPlaneCache: noPlane})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Fprintf(w, "%s\t%v\t%v\t%d\t%d\t%d\t%d\n", name, !noPlane,
			time.Since(start).Round(time.Microsecond), res.Stats.VisibilityTests,
			res.Stats.PlaneCacheHits, res.Stats.ExactFallbacks, res.Stats.FacetsCreated)
	}
	circle := pointgen.OnCircle(pointgen.NewRNG(13), sz(200000))
	sphere := pointgen.OnSphere(pointgen.NewRNG(14), sz(20000), 3)
	for _, noPlane := range []bool{false, true} {
		run2d("2D circle", circle, noPlane)
	}
	for _, noPlane := range []bool{false, true} {
		run3d("3D sphere", sphere, noPlane)
	}
	w.Flush()
	fmt.Println("equal vtests/facets across rows: the cache only changes how each test is decided.")
}

// expDelaunay — extension: the same shallow-dependence phenomenon for 2D
// Delaunay triangulation (the prior work [17, 18] the paper builds on).
func expDelaunay() {
	w := table()
	fmt.Fprintln(w, "n\ttriangles\tdepth\tdepth/H_n")
	for _, n0 := range []int{1000, 10000, 50000} {
		n := sz(n0)
		rng := pointgen.NewRNG(int64(90 + n0))
		pts := pointgen.Shuffled(rng, pointgen.UniformBall(rng, n, 2))
		res, err := delaunay.Triangulate(pts)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%.2f\n", n, len(res.Triangles),
			res.Stats.MaxDepth, float64(res.Stats.MaxDepth)/stats.Harmonic(n))
	}
	w.Flush()
	fmt.Println("prior work [17,18]: 2D Delaunay has O(log n) dependence depth; same shape here.")
}

// expTrapezoid — E13: the Section 4 counterexample. Trapezoidal
// decomposition does NOT have constant support: the cell below a long
// segment spanning k "teeth" needs a support set of size >= k.
func expTrapezoid() {
	w := table()
	fmt.Fprintln(w, "teeth k\tobjects\tconfigs\tsupport lower bound\tminimal support found")
	for _, k := range []int{3, 4, 5, 6} {
		segs, box := combFamily(k)
		s, err := trapezoid.NewSpace(segs, box)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		y := make([]int, 0, k+1)
		for i := 0; i <= k; i++ {
			y = append(y, i)
		}
		act := core.Active(s, y)
		pi := -1
		for _, c := range act {
			xl, xr, yb, yt := s.CellRect(c)
			if yb == box.YB && yt == 4 && xl == 1 && xr == box.XR-1 {
				pi = c
			}
		}
		if pi == -1 {
			fmt.Println("error: cell below L not active")
			return
		}
		prev := core.Active(s, y[:k])
		lb := core.SupportLowerBound(s, pi, k, prev)
		found := "-"
		if phi, ok := core.FindSupport(s, pi, k, prev); ok {
			found = fmt.Sprint(len(phi))
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%s\n", k, s.NumObjects(), s.NumConfigs(), lb, found)
	}
	w.Flush()
	fmt.Println("paper (Sec 4): \"adding a line segment can combine Omega(n) trapezoids into one\";")
	fmt.Println("support grows with k, so Theorem 4.2 does not apply — the framework's boundary.")
}

// combFamily builds k teeth, one long segment beneath them, and one witness
// under each tooth (the witnesses are universe-only objects that force the
// support to cover every column).
func combFamily(k int) ([]trapezoid.Segment, trapezoid.Box) {
	w := float64(10*k + 10)
	box := trapezoid.Box{XL: 0, XR: w, YB: 0, YT: 10}
	var segs []trapezoid.Segment
	for i := 0; i < k; i++ {
		segs = append(segs, trapezoid.Segment{Y: 8 + 0.01*float64(i), XL: float64(10*i) + 2, XR: float64(10*i) + 8})
	}
	segs = append(segs, trapezoid.Segment{Y: 4, XL: 1, XR: w - 1})
	for i := 0; i < k; i++ {
		segs = append(segs, trapezoid.Segment{Y: 2 + 0.01*float64(i), XL: float64(10*i) + 4, XR: float64(10*i) + 6})
	}
	return segs, box
}
