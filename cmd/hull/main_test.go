package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadPoints(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.txt")
	content := "0 0\n1.5 -2.25\n\n3e-2 4\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pts, err := readPoints(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("read %d points", len(pts))
	}
	if pts[1][0] != 1.5 || pts[1][1] != -2.25 || pts[2][0] != 0.03 {
		t.Fatalf("bad values: %v", pts)
	}
}

func TestReadPointsErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("1 2\nx y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readPoints(bad); err == nil {
		t.Error("non-numeric accepted")
	}
	mixed := filepath.Join(dir, "mixed.txt")
	if err := os.WriteFile(mixed, []byte("1 2\n1 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readPoints(mixed); err == nil {
		t.Error("mixed dimensions accepted")
	}
	if _, err := readPoints(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
}
