// Command hull computes convex hulls from generated or file-based point
// sets using the engines of the parhull library.
//
// Usage:
//
//	hull -n 100000 -d 2 -dist ball -engine par          # generated input
//	hull -in points.txt -engine seq -facets             # file input
//
// Input files contain one point per line, whitespace-separated coordinates;
// all lines must share a dimension. Output reports the hull size, the
// instrumentation counters, and optionally the hull facets/vertices.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"parhull"
	"parhull/internal/geom"
	"parhull/internal/pointgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hull: ")
	var (
		n       = flag.Int("n", 100000, "number of points to generate")
		d       = flag.Int("d", 2, "dimension of generated points")
		dist    = flag.String("dist", "ball", "distribution: ball | sphere | cube | gauss")
		seed    = flag.Int64("seed", 1, "generator / shuffle seed")
		in      = flag.String("in", "", "read points from file instead of generating")
		engine  = flag.String("engine", "par", "engine: seq | par | rounds")
		schedK  = flag.String("sched", "steal", "par fork-join substrate: steal | group")
		mapKind = flag.String("map", "sharded", "ridge map: sharded | cas | tas")
		shuffle = flag.Bool("shuffle", true, "insert in random order (Theorem 1.1 regime)")
		facets  = flag.Bool("facets", false, "print hull facets")
		verts   = flag.Bool("vertices", false, "print hull vertex indices")
	)
	flag.Parse()

	var pts []parhull.Point
	var err error
	if *in != "" {
		pts, err = readPoints(*in)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		rng := pointgen.NewRNG(*seed)
		switch *dist {
		case "ball":
			pts = pointgen.UniformBall(rng, *n, *d)
		case "sphere":
			pts = pointgen.OnSphere(rng, *n, *d)
		case "cube":
			pts = pointgen.InCube(rng, *n, *d)
		case "gauss":
			pts = pointgen.Gaussian(rng, *n, *d)
		default:
			log.Fatalf("unknown distribution %q", *dist)
		}
	}
	if len(pts) == 0 {
		log.Fatal("no input points")
	}
	dim := len(pts[0])

	opt := &parhull.Options{Shuffle: *shuffle, Seed: *seed}
	switch *engine {
	case "seq":
		opt.Engine = parhull.EngineSequential
	case "par":
		opt.Engine = parhull.EngineParallel
	case "rounds":
		opt.Engine = parhull.EngineRounds
	default:
		log.Fatalf("unknown engine %q", *engine)
	}
	switch *schedK {
	case "steal":
		opt.Sched = parhull.SchedSteal
	case "group":
		opt.Sched = parhull.SchedGroup
	default:
		log.Fatalf("unknown sched %q", *schedK)
	}
	switch *mapKind {
	case "sharded":
		opt.Map = parhull.MapSharded
	case "cas":
		opt.Map = parhull.MapCAS
	case "tas":
		opt.Map = parhull.MapTAS
	default:
		log.Fatalf("unknown map %q", *mapKind)
	}

	start := time.Now()
	var stats parhull.Stats
	var hullVerts []int
	var hullFacets []parhull.Facet
	if dim == 2 {
		res, err := parhull.Hull2D(pts, opt)
		if err != nil {
			log.Fatal(err)
		}
		stats = res.Stats
		hullVerts = res.Vertices
		for i := range res.Vertices {
			j := (i + 1) % len(res.Vertices)
			hullFacets = append(hullFacets, parhull.Facet{Vertices: []int{res.Vertices[i], res.Vertices[j]}})
		}
	} else {
		res, err := parhull.HullD(pts, opt)
		if err != nil {
			log.Fatal(err)
		}
		stats = res.Stats
		hullVerts = res.Vertices
		hullFacets = res.Facets
	}
	elapsed := time.Since(start)

	fmt.Printf("points: %d  dim: %d  engine: %s\n", len(pts), dim, *engine)
	fmt.Printf("hull:   %d facets, %d vertices\n", stats.HullSize, len(hullVerts))
	fmt.Printf("time:   %v\n", elapsed.Round(time.Microsecond))
	fmt.Printf("stats:  vtests=%d created=%d replaced=%d buried=%d depth=%d",
		stats.VisibilityTests, stats.FacetsCreated, stats.Replaced, stats.Buried, stats.MaxDepth)
	if stats.Rounds > 0 {
		fmt.Printf(" rounds=%d", stats.Rounds)
	}
	fmt.Println()
	if *verts {
		fmt.Println("vertices:", hullVerts)
	}
	if *facets {
		for _, f := range hullFacets {
			fmt.Println(f.Vertices)
		}
	}
}

func readPoints(path string) ([]parhull.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pts []geom.Point
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		p := make(geom.Point, len(fields))
		for i, fd := range fields {
			v, err := strconv.ParseFloat(fd, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, line, err)
			}
			p[i] = v
		}
		if len(pts) > 0 && len(p) != len(pts[0]) {
			return nil, fmt.Errorf("%s:%d: dimension %d, want %d", path, line, len(p), len(pts[0]))
		}
		pts = append(pts, p)
	}
	return pts, sc.Err()
}
