// Command hullsoak is the standing reliability harness: a seeded soak
// driver over the full configuration-space x schedule x options x fault
// matrix, with independent exact certification of every successful result
// (internal/certify), typed-error contract checks on every failure, leak
// checking between trials, and self-contained JSON replay files that
// reproduce any violation bit-for-bit and auto-shrink it to a minimal
// failing trial.
//
// One uint64 seed fully determines a trial: the sampled space, engine,
// input generator, sizes, option toggles, fault-injection plan, and
// cancellation deadline are all derived from it by a splitmix64 stream, so
// `hullsoak -replay file.json` (or just re-running with the same seed) is
// exact reproduction, not best-effort.
package main

import (
	"fmt"
	"math"

	"parhull"
	"parhull/internal/faultinject"
	"parhull/internal/pointgen"
)

// FaultPlan arms one deterministic fault (internal/faultinject) for a trial.
type FaultPlan struct {
	// Site is the faultinject.Site ordinal.
	Site int `json:"site"`
	// Mode is "panic", "fail" (forced capacity failure at sites that
	// consult Fail), or "delay" (scheduling jitter).
	Mode string `json:"mode"`
	// Visit is the 1-based visit count at which a panic/fail fires.
	Visit int64 `json:"visit,omitempty"`
	// Every / MaxDelayUS shape delay mode: every Every-th visit sleeps up
	// to MaxDelayUS microseconds.
	Every      int64 `json:"every,omitempty"`
	MaxDelayUS int64 `json:"maxDelayUs,omitempty"`
}

// TrialSpec is one fully-determined soak trial. The JSON form is the
// replay file payload: everything needed to reproduce the trial is here.
type TrialSpec struct {
	Seed          uint64     `json:"seed"`
	Space         string     `json:"space"`
	Engine        string     `json:"engine,omitempty"`
	Reuse         bool       `json:"reuse,omitempty"`
	N             int        `json:"n"`
	D             int        `json:"d,omitempty"`
	Gen           string     `json:"gen"`
	GenSeed       int64      `json:"genSeed"`
	Shuffle       bool       `json:"shuffle,omitempty"`
	ShuffleSeed   int64      `json:"shuffleSeed,omitempty"`
	PreHull       string     `json:"preHull,omitempty"` // "" auto, "on", "off"
	FilterGrain   int        `json:"filterGrain,omitempty"`
	NoSoALayout   bool       `json:"noSoALayout,omitempty"`
	NoBatchFilter bool       `json:"noBatchFilter,omitempty"`
	MapMode       string     `json:"mapMode,omitempty"` // "" sharded, "cas", "tas"
	Workers       int        `json:"workers,omitempty"`
	CancelAfterUS int64      `json:"cancelAfterUs,omitempty"`
	Fault         *FaultPlan `json:"fault,omitempty"`
}

func (sp TrialSpec) String() string {
	s := fmt.Sprintf("seed=%#x space=%s", sp.Seed, sp.Space)
	if sp.D > 0 {
		s += fmt.Sprintf("/%d", sp.D)
	}
	s += fmt.Sprintf(" n=%d gen=%s", sp.N, sp.Gen)
	if sp.Engine != "" {
		s += " engine=" + sp.Engine
	}
	if sp.Reuse {
		s += " reuse"
	}
	if sp.MapMode != "" {
		s += " map=" + sp.MapMode
	}
	if sp.Fault != nil {
		s += fmt.Sprintf(" fault=%s@%s", sp.Fault.Mode, faultinject.Site(sp.Fault.Site))
	}
	if sp.CancelAfterUS > 0 {
		s += fmt.Sprintf(" cancel=%dus", sp.CancelAfterUS)
	}
	return s
}

// trng is the splitmix64 stream that turns one uint64 seed into a trial.
type trng struct{ s uint64 }

func (r *trng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *trng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *trng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

func (r *trng) pct(p int) bool { return r.intn(100) < p }

// pick returns one of choices with the paired cumulative weights.
func (r *trng) pick(choices []string, weights []int) string {
	total := 0
	for _, w := range weights {
		total += w
	}
	x := r.intn(total)
	for i, w := range weights {
		if x < w {
			return choices[i]
		}
		x -= w
	}
	return choices[len(choices)-1]
}

// trialSeed derives the i-th trial seed from the root seed.
func trialSeed(root uint64, i int) uint64 {
	r := trng{s: root ^ (uint64(i)+1)*0xd1342543de82ef95}
	return r.next()
}

// deriveTrial expands one uint64 seed into a full trial specification.
// Same seed, same spec — the replay contract rests on this being pure.
func deriveTrial(seed uint64) TrialSpec {
	r := trng{s: seed}
	sp := TrialSpec{Seed: seed}
	sp.Space = r.pick(
		[]string{"hulld", "hull2d", "delaunay", "halfspace", "circles", "trapezoid", "corner"},
		[]int{28, 22, 14, 12, 8, 10, 6})
	sp.GenSeed = int64(r.next() >> 1)
	sp.ShuffleSeed = int64(r.next() >> 1)
	sp.Shuffle = r.pct(75)

	switch sp.Space {
	case "hulld":
		sp.D = int(r.pick([]string{"3", "4", "5", "6"}, []int{55, 25, 12, 8})[0] - '0')
		switch sp.D {
		case 3:
			sp.N = r.rangeInt(8, 1200)
		case 4:
			sp.N = r.rangeInt(10, 400)
		case 5:
			sp.N = r.rangeInt(12, 160)
		default:
			sp.N = r.rangeInt(14, 80)
		}
		sp.Gen = r.pickPointGen(sp.D)
		sp.Engine = r.pick([]string{"par-steal", "par-group", "seq", "rounds"}, []int{40, 20, 25, 15})
	case "hull2d":
		sp.D = 2
		sp.N = r.rangeInt(4, 4000)
		sp.Gen = r.pickPointGen(2)
		sp.Engine = r.pick([]string{"par-steal", "par-group", "seq", "rounds"}, []int{40, 20, 25, 15})
	case "delaunay":
		sp.D = 2
		sp.N = r.rangeInt(4, 300)
		sp.Gen = r.pickPointGen(2)
		sp.Engine = r.pick([]string{"par-steal", "par-group", "seq", "rounds"}, []int{40, 20, 25, 15})
	case "halfspace":
		sp.D = r.rangeInt(2, 4)
		sp.N = r.rangeInt(sp.D+2, 60)
		sp.Gen = "sphere"
		sp.Engine = "dual"
		if sp.D <= 3 && sp.N <= 14 && r.pct(30) {
			sp.Engine = "direct"
		}
	case "circles":
		sp.D = 2
		sp.N = r.rangeInt(2, 40)
		sp.Gen = r.pick([]string{"near", "far", "dup"}, []int{70, 20, 10})
	case "trapezoid":
		sp.N = r.rangeInt(1, 36)
		sp.Gen = "segments"
	case "corner":
		sp.D = 3
		sp.Gen = r.pick([]string{"gauss", "grid2", "grid3", "lattice"}, []int{40, 15, 15, 30})
		sp.N = r.rangeInt(4, 30)
	}

	if sp.Space == "hulld" || sp.Space == "hull2d" {
		sp.Reuse = r.pct(25)
		sp.PreHull = r.pick([]string{"", "on", "off"}, []int{60, 25, 15})
	}
	if sp.Space == "hulld" || sp.Space == "hull2d" || sp.Space == "delaunay" {
		sp.FilterGrain = []int{0, 0, 1, 8, 1 << 20}[r.intn(5)]
		sp.NoSoALayout = r.pct(20)
		sp.NoBatchFilter = r.pct(20)
		sp.MapMode = r.pick([]string{"", "cas", "tas"}, []int{55, 25, 20})
		sp.Workers = []int{0, 0, 0, 1, 2, 4}[r.intn(6)]
	}

	if r.pct(35) {
		f := &FaultPlan{Site: r.intn(faultinject.NumSites)}
		f.Mode = r.pick([]string{"panic", "fail", "delay"}, []int{40, 30, 30})
		switch f.Mode {
		case "panic", "fail":
			f.Visit = int64(1 + r.intn(256))
		case "delay":
			f.Every = int64(2 + r.intn(15))
			f.MaxDelayUS = int64(1 + r.intn(120))
		}
		sp.Fault = f
	}
	if r.pct(15) {
		sp.CancelAfterUS = int64(1 + r.intn(20000))
	}
	return sp
}

// pickPointGen samples a point-cloud generator, including the adversarial
// family (cospherical / lattice / collinear / coplanar stress the exact
// predicates and the degenerate-input error contract). The expensive exact
// paths are capped by the dimension gates below.
func (r *trng) pickPointGen(d int) string {
	gens := []string{"ball", "sphere", "cube", "gauss", "clustered", "aniso", "dup", "neardeg", "collinear"}
	weights := []int{22, 14, 10, 10, 8, 6, 6, 6, 6}
	if d <= 4 {
		gens = append(gens, "cosph", "lattice")
		weights = append(weights, 6, 6)
	}
	if d >= 3 {
		gens = append(gens, "coplanar")
		weights = append(weights, 6)
	}
	return r.pick(gens, weights)
}

// hullPoints materializes the point cloud of a trial deterministically from
// its generator name and generator seed.
func hullPoints(sp TrialSpec) []parhull.Point {
	rng := pointgen.NewRNG(sp.GenSeed)
	n, d := sp.N, sp.D
	switch sp.Gen {
	case "sphere":
		return pointgen.OnSphere(rng, n, d)
	case "cube":
		return pointgen.InCube(rng, n, d)
	case "gauss":
		return pointgen.Gaussian(rng, n, d)
	case "clustered":
		return pointgen.Clustered(rng, n, d, 1+n/16, 0.05)
	case "aniso":
		return pointgen.Anisotropic(rng, n, d, 100)
	case "dup":
		return pointgen.DuplicateHeavy(rng, n, d, 0.3)
	case "neardeg":
		return pointgen.NearDegenerate(rng, n, d, 1.0/(1<<20))
	case "cosph":
		return pointgen.Cospherical(rng, n, d, 0)
	case "lattice":
		return pointgen.IntegerLattice(rng, n, d, 0)
	case "collinear":
		return pointgen.CollinearHeavy(rng, n, d, 0.4)
	case "coplanar":
		return pointgen.CoplanarHeavy(rng, n, d, 0.4)
	default: // "ball"
		return pointgen.UniformBall(rng, n, d)
	}
}

// cornerPoints materializes a Hull3DDegenerate input: intentionally
// degenerate but duplicate-light 3D clouds.
func cornerPoints(sp TrialSpec) []parhull.Point {
	rng := pointgen.NewRNG(sp.GenSeed)
	switch sp.Gen {
	case "grid2":
		return pointgen.Grid3D(2)
	case "grid3":
		return pointgen.Grid3D(3)
	case "lattice":
		return dedupPoints(pointgen.IntegerLattice(rng, sp.N, 3, 0))
	default: // "gauss"
		return pointgen.Gaussian(rng, sp.N, 3)
	}
}

func dedupPoints(pts []parhull.Point) []parhull.Point {
	seen := make(map[string]bool, len(pts))
	out := pts[:0]
	for _, p := range pts {
		k := fmt.Sprintf("%x/%x/%x", p[0], p[1], p[2])
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out
}

// circleCenters materializes a unit-circle-intersection input. "near"
// keeps all centers within pairwise distance < 2 (non-empty boundary),
// "far" allows empty intersections, "dup" plants exact duplicates (the
// degenerate-error path).
func circleCenters(sp TrialSpec) []parhull.Point {
	rng := pointgen.NewRNG(sp.GenSeed)
	pts := pointgen.UniformBall(rng, sp.N, 2)
	scale := 0.45
	if sp.Gen == "far" {
		scale = 1.6
	}
	for i := range pts {
		pts[i][0] *= scale
		pts[i][1] *= scale
	}
	if sp.Gen == "dup" && len(pts) >= 2 {
		pts[len(pts)-1] = append(parhull.Point(nil), pts[0]...)
	}
	return pts
}

// halfspaceNormals materializes a bounded halfspace-intersection input:
// the bounding simplex plus on-sphere normals.
func halfspaceNormals(sp TrialSpec) []parhull.Point {
	rng := pointgen.NewRNG(sp.GenSeed)
	return append(parhull.HalfspaceBoundingSimplex(sp.D), pointgen.OnSphere(rng, sp.N, sp.D)...)
}

// trapezoidInput materializes non-touching horizontal segments in the unit
// box: distinct y levels with jittered spans.
func trapezoidInput(sp TrialSpec) ([]parhull.TrapezoidSegment, parhull.TrapezoidBox) {
	rng := pointgen.NewRNG(sp.GenSeed)
	box := parhull.TrapezoidBox{XL: 0, XR: 1, YB: 0, YT: 1}
	segs := make([]parhull.TrapezoidSegment, sp.N)
	for i := range segs {
		y := (float64(i) + 0.5 + 0.4*(rng.Float64()-0.5)) / float64(sp.N)
		xl := rng.Float64() * 0.8
		xr := xl + 0.05 + rng.Float64()*(0.95-xl-0.05)
		segs[i] = parhull.TrapezoidSegment{Y: y, XL: xl, XR: math.Min(xr, 0.99)}
	}
	// Insertion order is an engine axis (Options.Shuffle); the y-sorted
	// construction order here is part of the input, not the schedule.
	return segs, box
}
