package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parhull/internal/hulld"
)

const testDeadline = 60 * time.Second

// TestSoakSmoke runs a short derived-trial soak: every trial from the fixed
// root seed must either certify or fail inside the typed-error contract.
func TestSoakSmoke(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 12
	}
	for i := 0; i < trials; i++ {
		sp := deriveTrial(trialSeed(1, i))
		o := RunTrial(sp, testDeadline)
		if o.Violation != "" {
			t.Fatalf("trial %d (%s): %s", i, sp, o.Violation)
		}
	}
}

// TestTrialsDeterministic re-runs derived trials and requires bit-for-bit
// identical outcomes: same error text, same result fingerprint.
func TestTrialsDeterministic(t *testing.T) {
	for i := 0; i < 10; i++ {
		sp := deriveTrial(trialSeed(2, i))
		a := RunTrial(sp, testDeadline)
		b := RunTrial(sp, testDeadline)
		if a.Violation != "" || b.Violation != "" {
			t.Fatalf("trial %d (%s): unexpected violation %q / %q", i, sp, a.Violation, b.Violation)
		}
		if a.Err != b.Err || a.Fingerprint != b.Fingerprint {
			t.Fatalf("trial %d (%s) not deterministic:\n  run 1: err=%q fp=%s\n  run 2: err=%q fp=%s",
				i, sp, a.Err, a.Fingerprint, b.Err, b.Fingerprint)
		}
	}
}

// plantedSpec is a candidate configuration for exercising the planted
// scan-kernel defect: d=3 hulls on a ball cloud, parallel engine, shuffled.
func plantedSpec(seed uint64) TrialSpec {
	return TrialSpec{
		Seed:        seed,
		Space:       "hulld",
		Engine:      "par-steal",
		N:           400,
		D:           3,
		Gen:         "ball",
		GenSeed:     int64(seed),
		Shuffle:     true,
		ShuffleSeed: int64(seed) + 1,
	}
}

// TestPlantedBugCaughtReplayedAndShrunk is the end-to-end acceptance test
// for the rig: with the hidden scan-kernel defect armed, the independent
// certifier must flag the output, the recorded violation must reproduce
// bit-for-bit from its replay file, and the shrinker must cut the input to
// a quarter of its original size or less.
func TestPlantedBugCaughtReplayedAndShrunk(t *testing.T) {
	hulld.PlantSoakBug(true)
	defer hulld.PlantSoakBug(false)

	// Some seeds corrupt the construction badly enough that the engine's own
	// ridge validation aborts the build (also a caught violation, but a less
	// interesting one). Keep scanning until the defect slips past the engine
	// entirely and only the independent certifier flags the output.
	var caught *Outcome
	for seed := uint64(1); seed <= 40; seed++ {
		sp := plantedSpec(seed)
		o := RunTrial(sp, testDeadline)
		if strings.Contains(o.Violation, "certification failed") {
			caught = &o
			break
		}
	}
	if caught == nil {
		t.Fatal("planted drop-candidate defect never reached the certifier in 40 seeds")
	}
	t.Logf("caught: %s", caught.Summary())

	dir := t.TempDir()
	path := filepath.Join(dir, "violation.json")
	if err := writeReplay(path, *caught); err != nil {
		t.Fatal(err)
	}
	rf, err := readReplay(path)
	if err != nil {
		t.Fatal(err)
	}
	re, reproduced := Reproduce(rf, testDeadline)
	if !reproduced {
		t.Fatalf("violation did not reproduce: %s", re.Summary())
	}
	if re.Violation != caught.Violation || re.Fingerprint != caught.Fingerprint {
		t.Fatalf("replay not bit-for-bit:\n  recorded: %q fp=%s\n  replayed: %q fp=%s",
			caught.Violation, caught.Fingerprint, re.Violation, re.Fingerprint)
	}

	min := Shrink(rf.Spec, testDeadline, func(msg string) { t.Log(msg) })
	if min.N > rf.Spec.N/4 {
		t.Fatalf("shrink stalled at n=%d, want <= %d", min.N, rf.Spec.N/4)
	}
	if out := RunTrial(min, testDeadline); out.Violation == "" {
		t.Fatalf("shrunk spec %s no longer fails", min)
	}
	t.Logf("shrunk n %d -> %d", rf.Spec.N, min.N)
}

// TestReplayFileRoundTrip checks the replay file is self-contained JSON.
func TestReplayFileRoundTrip(t *testing.T) {
	sp := deriveTrial(trialSeed(3, 0))
	out := Outcome{Spec: sp, Violation: "synthetic", Fingerprint: "deadbeef", Class: "ok"}
	path := filepath.Join(t.TempDir(), "rt.json")
	if err := writeReplay(path, out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "\"spec\"") {
		t.Fatalf("replay file missing spec: %s", b)
	}
	rf, err := readReplay(path)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Spec != sp || rf.Violation != "synthetic" || rf.Fingerprint != "deadbeef" {
		t.Fatalf("round trip mismatch: %+v", rf)
	}
}
