package main

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"time"

	"parhull"
	"parhull/internal/certify"
	"parhull/internal/faultinject"
	"parhull/internal/sched"
)

// Outcome is the record of one executed trial. A non-empty Violation means
// the rig caught a real failure (bad output, broken error contract, hang,
// or leak) — everything else, including typed engine errors from injected
// faults and degenerate inputs, is a passing trial.
type Outcome struct {
	Spec        TrialSpec
	Err         string // engine error text ("" on success)
	Class       string // contract class: ok, degenerate, bad-coordinate, capacity, canceled, panic
	Fingerprint string // canonical result hash (success only)
	Certified   bool

	SideTests, ExactFallbacks int   // certifier counters
	EngineExactFallbacks      int64 // Stats.ExactFallbacks of the construction
	CapacityRetries           int
	Elapsed                   time.Duration

	Violation string

	errValue error // raw engine error (classification only; not serialized)
}

// Summary is the one-line per-trial report (satellite: exact-fallback and
// capacity-retry drift is surfaced here, not just pass/fail).
func (o Outcome) Summary() string {
	status := "ok(" + o.Class + ")"
	if o.Certified {
		status = "certified"
	}
	if o.Violation != "" {
		status = "VIOLATION"
	}
	s := fmt.Sprintf("%s %s exactFallbacks=%d/%d capRetries=%d in %v",
		o.Spec, status, o.ExactFallbacks, o.EngineExactFallbacks, o.CapacityRetries,
		o.Elapsed.Round(time.Microsecond))
	if o.Violation != "" {
		s += " :: " + o.Violation
	} else if o.Err != "" {
		s += " :: " + o.Err
	}
	return s
}

// buildOptions realizes a TrialSpec as public Options plus the armed
// injector and the cancellation hook.
func buildOptions(sp TrialSpec) (*parhull.Options, context.CancelFunc) {
	o := &parhull.Options{
		Shuffle:       sp.Shuffle,
		Seed:          sp.ShuffleSeed,
		FilterGrain:   sp.FilterGrain,
		NoSoALayout:   sp.NoSoALayout,
		NoBatchFilter: sp.NoBatchFilter,
		Workers:       sp.Workers,
	}
	switch sp.Engine {
	case "seq":
		o.Engine = parhull.EngineSequential
	case "rounds":
		o.Engine = parhull.EngineRounds
	case "par-group":
		o.Sched = parhull.SchedGroup
	}
	switch sp.MapMode {
	case "cas":
		o.Map = parhull.MapCAS
	case "tas":
		o.Map = parhull.MapTAS
	}
	switch sp.PreHull {
	case "on":
		o.PreHull = parhull.PreHullOn
	case "off":
		o.PreHull = parhull.PreHullOff
	}
	if sp.Fault != nil {
		inj := faultinject.New(int64(sp.Seed))
		site := faultinject.Site(sp.Fault.Site)
		switch sp.Fault.Mode {
		case "panic":
			inj.PanicAt(site, sp.Fault.Visit)
		case "fail":
			inj.FailAt(site, sp.Fault.Visit)
		case "delay":
			inj.DelayEvery(site, sp.Fault.Every, time.Duration(sp.Fault.MaxDelayUS)*time.Microsecond)
		}
		o.SetFaultInjector(inj)
	}
	cancel := context.CancelFunc(func() {})
	if sp.CancelAfterUS > 0 {
		var ctx context.Context
		ctx, cancel = context.WithTimeout(context.Background(),
			time.Duration(sp.CancelAfterUS)*time.Microsecond)
		o.Context = ctx
	}
	return o, cancel
}

// RunTrial executes one trial under a watchdog deadline and returns its
// full outcome. It never panics: engine panics that escape containment are
// themselves violations.
func RunTrial(sp TrialSpec, deadline time.Duration) Outcome {
	start := time.Now()
	ch := make(chan Outcome, 1)
	go func() {
		out := Outcome{Spec: sp}
		defer func() {
			if r := recover(); r != nil {
				out.Violation = fmt.Sprintf("panic escaped the public API: %v", r)
			}
			ch <- out
		}()
		runSpace(sp, &out)
		classify(sp, &out)
	}()
	select {
	case out := <-ch:
		out.Elapsed = time.Since(start)
		return out
	case <-time.After(deadline):
		buf := make([]byte, 1<<18)
		n := runtime.Stack(buf, true)
		return Outcome{
			Spec:    sp,
			Elapsed: time.Since(start),
			Violation: fmt.Sprintf("watchdog: trial still running after %v; goroutines:\n%s",
				deadline, buf[:n]),
		}
	}
}

// classify asserts the typed-error contract: every engine error must match
// exactly the sentinel its trial configuration can legitimately produce.
func classify(sp TrialSpec, out *Outcome) {
	if out.Violation != "" {
		return
	}
	if out.Err == "" {
		out.Class = "ok"
		return
	}
	err := out.errValue
	var pe *sched.PanicError
	switch {
	case errors.As(err, &pe):
		out.Class = "panic"
		if sp.Fault == nil || sp.Fault.Mode != "panic" {
			out.Violation = "contained panic without an armed panic plan: " + out.Err
		}
	case errors.Is(err, parhull.ErrCanceled):
		out.Class = "canceled"
		if sp.CancelAfterUS <= 0 {
			out.Violation = "ErrCanceled without an armed cancellation deadline: " + out.Err
		}
	case errors.Is(err, parhull.ErrCapacity):
		out.Class = "capacity"
		if sp.MapMode == "" && (sp.Fault == nil || sp.Fault.Mode != "fail") {
			out.Violation = "ErrCapacity with the growable sharded map and no fail plan: " + out.Err
		}
	case errors.Is(err, parhull.ErrDegenerate):
		out.Class = "degenerate"
	case errors.Is(err, parhull.ErrBadCoordinate):
		out.Class = "bad-coordinate"
	case errors.Is(err, parhull.ErrBadOption):
		out.Violation = "ErrBadOption from a derived spec (the sampler emitted an invalid option): " + out.Err
	default:
		out.Violation = "error matches no public sentinel: " + out.Err
	}
}

// runSpace dispatches the trial to its configuration space, certifies the
// result on success, and fingerprints it for bit-for-bit replay checks.
func runSpace(sp TrialSpec, out *Outcome) {
	opt, cancel := buildOptions(sp)
	defer cancel()
	switch sp.Space {
	case "hull2d":
		pts := hullPoints(sp)
		res, firstVerts, err := buildTwice2D(sp, pts, opt)
		if setErr(out, err) {
			return
		}
		out.EngineExactFallbacks = res.Stats.ExactFallbacks
		out.CapacityRetries = res.Stats.CapacityRetries
		h := fnv.New64a()
		hashInts(h, res.Vertices)
		out.Fingerprint = fmt.Sprintf("%016x", h.Sum64())
		if firstVerts != nil && !sameInts(res.Vertices, firstVerts) {
			out.Violation = "Builder reuse changed the hull vertex cycle"
			return
		}
		st, cerr := certify.Hull2D(pts, res.Vertices)
		certDone(out, st, cerr)
	case "hulld":
		pts := hullPoints(sp)
		res, firstFP, err := buildTwiceD(sp, pts, opt)
		if setErr(out, err) {
			return
		}
		out.EngineExactFallbacks = res.Stats.ExactFallbacks
		out.CapacityRetries = res.Stats.CapacityRetries
		facets := canonFacets(res)
		out.Fingerprint = fingerprintFacets(facets)
		if firstFP != "" && out.Fingerprint != firstFP {
			out.Violation = "Builder reuse changed the facet set"
			return
		}
		st, cerr := certify.Hull(pts, facets, res.Vertices)
		certDone(out, st, cerr)
	case "delaunay":
		pts := hullPoints(sp)
		res, err := parhull.Delaunay(pts, opt)
		if setErr(out, err) {
			return
		}
		out.EngineExactFallbacks = res.Stats.ExactFallbacks
		tris := append([][3]int(nil), res.Triangles...)
		sort.Slice(tris, func(i, j int) bool { return lessTri(tris[i], tris[j]) })
		h := fnv.New64a()
		for _, t := range tris {
			hashInts(h, t[:])
		}
		out.Fingerprint = fmt.Sprintf("%016x", h.Sum64())
		st, cerr := certify.Delaunay(pts, res.Triangles)
		certDone(out, st, cerr)
	case "halfspace":
		normals := halfspaceNormals(sp)
		var res *parhull.HalfspaceResult
		var err error
		if sp.Engine == "direct" {
			res, err = parhull.HalfspaceIntersectionDirect(normals, opt)
		} else {
			res, err = parhull.HalfspaceIntersection(normals, opt)
		}
		if setErr(out, err) {
			return
		}
		out.EngineExactFallbacks = res.Stats.ExactFallbacks
		verts := make([]certify.HSVertex, len(res.Vertices))
		defs := make([][]int, len(res.Vertices))
		for i, v := range res.Vertices {
			verts[i] = certify.HSVertex{Point: v.Point, Defining: v.Halfspaces}
			defs[i] = sortedInts(v.Halfspaces)
		}
		sort.Slice(defs, func(i, j int) bool { return lessInts(defs[i], defs[j]) })
		h := fnv.New64a()
		for _, d := range defs {
			hashInts(h, d)
		}
		out.Fingerprint = fmt.Sprintf("%016x", h.Sum64())
		st, cerr := certify.Halfspace(normals, verts)
		certDone(out, st, cerr)
	case "circles":
		centers := circleCenters(sp)
		arcs, nonEmpty, err := parhull.UnitCircleIntersection(centers, opt)
		if setErr(out, err) {
			return
		}
		h := fnv.New64a()
		for _, a := range arcs {
			hashInts(h, []int{a.Circle})
			hashFloats(h, a.Lo, a.Length)
		}
		out.Fingerprint = fmt.Sprintf("%016x", h.Sum64())
		if !nonEmpty {
			return // empty intersection: nothing to certify
		}
		conv := make([]certify.CircleArc, len(arcs))
		for i, a := range arcs {
			conv[i] = certify.CircleArc{Circle: a.Circle, Lo: a.Lo, Length: a.Length}
		}
		certDone(out, certify.Stats{}, certify.Circles(centers, conv))
	case "trapezoid":
		segs, box := trapezoidInput(sp)
		cells, err := parhull.TrapezoidDecomposition(segs, box, opt)
		if setErr(out, err) {
			return
		}
		conv := make([]certify.TrapCell, len(cells))
		h := fnv.New64a()
		for i, c := range cells {
			conv[i] = certify.TrapCell{XL: c.XL, XR: c.XR, YB: c.YB, YT: c.YT, Segments: c.Segments}
			hashFloats(h, c.XL, c.XR, c.YB, c.YT)
			hashInts(h, sortedInts(c.Segments))
		}
		out.Fingerprint = fmt.Sprintf("%016x", h.Sum64())
		certDone(out, certify.Stats{}, certify.Trapezoids(segs, box, conv))
	case "corner":
		pts := cornerPoints(sp)
		faces, err := parhull.Hull3DDegenerate(pts, opt)
		if setErr(out, err) {
			return
		}
		conv := make([][]int, len(faces))
		h := fnv.New64a()
		for i, f := range faces {
			conv[i] = f.Vertices
			hashInts(h, f.Vertices)
		}
		out.Fingerprint = fmt.Sprintf("%016x", h.Sum64())
		certDone(out, certify.Stats{}, certify.CornerFaces(pts, conv))
	default:
		out.Violation = "derived spec names unknown space " + sp.Space
	}
}

// buildTwice2D runs the 2D construction — twice through one Builder when
// the trial exercises the reuse/rewind path. The first result is
// invalidated by the second build, so its vertex cycle is snapshotted for
// the determinism cross-check.
func buildTwice2D(sp TrialSpec, pts []parhull.Point, opt *parhull.Options) (res *parhull.Hull2DResult, firstVerts []int, err error) {
	if !sp.Reuse {
		res, err = parhull.Hull2D(pts, opt)
		return res, nil, err
	}
	b := parhull.NewBuilder(opt)
	defer b.Close()
	if res, err = b.Build2D(pts); err != nil {
		return nil, nil, err
	}
	firstVerts = append([]int(nil), res.Vertices...)
	res, err = b.Build2D(pts)
	return res, firstVerts, err
}

func buildTwiceD(sp TrialSpec, pts []parhull.Point, opt *parhull.Options) (res *parhull.HullDResult, firstFP string, err error) {
	if !sp.Reuse {
		res, err = parhull.HullD(pts, opt)
		return res, "", err
	}
	b := parhull.NewBuilder(opt)
	defer b.Close()
	if res, err = b.Build(pts); err != nil {
		return nil, "", err
	}
	firstFP = fingerprintFacets(canonFacets(res))
	res, err = b.Build(pts)
	return res, firstFP, err
}

// setErr records an engine error on the outcome (the error value is kept
// off the JSON surface but drives classification).
func setErr(out *Outcome, err error) bool {
	if err == nil {
		return false
	}
	out.Err = err.Error()
	out.errValue = err
	return true
}

// certDone folds a certification verdict into the outcome.
func certDone(out *Outcome, st certify.Stats, err error) {
	out.SideTests = st.SideTests
	out.ExactFallbacks = st.ExactFallbacks
	if err != nil {
		out.Violation = "certification failed: " + err.Error()
		return
	}
	out.Certified = true
}

func canonFacets(res *parhull.HullDResult) [][]int {
	facets := make([][]int, len(res.Facets))
	for i, f := range res.Facets {
		facets[i] = sortedInts(f.Vertices)
	}
	sort.Slice(facets, func(i, j int) bool { return lessInts(facets[i], facets[j]) })
	return facets
}

func fingerprintFacets(facets [][]int) string {
	h := fnv.New64a()
	for _, f := range facets {
		hashInts(h, f)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func sortedInts(s []int) []int {
	c := append([]int(nil), s...)
	sort.Ints(c)
	return c
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessInts(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func lessTri(a, b [3]int) bool { return lessInts(a[:], b[:]) }

// hashInts feeds a canonical little-endian encoding of ints (plus a
// terminator) into the fingerprint hash.
func hashInts(h interface{ Write([]byte) (int, error) }, s []int) {
	var b [8]byte
	for _, v := range s {
		u := uint64(int64(v))
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	h.Write([]byte{0xff})
}

func hashFloats(h interface{ Write([]byte) (int, error) }, vs ...float64) {
	var b [8]byte
	for _, v := range vs {
		u := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	h.Write([]byte{0xfe})
}
