package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// ReplayFile is the self-contained record of a violating trial: the full
// spec (one seed's worth of sampled configuration) plus what went wrong.
// `hullsoak -replay <file>` re-runs the spec, checks the reproduction is
// bit-for-bit (same outcome, same result fingerprint when one exists), and
// then shrinks it.
type ReplayFile struct {
	Spec        TrialSpec `json:"spec"`
	Violation   string    `json:"violation"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	Class       string    `json:"class,omitempty"`
	Wrote       string    `json:"wrote,omitempty"` // RFC3339 timestamp
}

func writeReplay(path string, out Outcome) error {
	rf := ReplayFile{
		Spec:        out.Spec,
		Violation:   out.Violation,
		Fingerprint: out.Fingerprint,
		Class:       out.Class,
		Wrote:       time.Now().UTC().Format(time.RFC3339),
	}
	b, err := json.MarshalIndent(rf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func readReplay(path string) (ReplayFile, error) {
	var rf ReplayFile
	b, err := os.ReadFile(path)
	if err != nil {
		return rf, err
	}
	err = json.Unmarshal(b, &rf)
	return rf, err
}

// Reproduce re-runs a recorded violation and reports whether it reproduced
// bit-for-bit: the trial must fail again, and when both the record and the
// re-run produced a result fingerprint they must be identical.
func Reproduce(rf ReplayFile, deadline time.Duration) (Outcome, bool) {
	out := RunTrial(rf.Spec, deadline)
	if out.Violation == "" {
		return out, false
	}
	if rf.Fingerprint != "" && out.Fingerprint != "" && rf.Fingerprint != out.Fingerprint {
		return out, false
	}
	return out, true
}

// Shrink minimizes a failing spec: drop the fault plan and cancellation,
// strip options back toward defaults, and repeatedly halve n — keeping
// each simplification only if the trial still fails. The result is the
// smallest configuration this greedy pass can reach that still violates.
func Shrink(sp TrialSpec, deadline time.Duration, log func(string)) TrialSpec {
	fails := func(c TrialSpec) bool { return RunTrial(c, deadline).Violation != "" }
	cur := sp
	for _, step := range []struct {
		name  string
		apply func(TrialSpec) TrialSpec
	}{
		{"drop fault plan", func(c TrialSpec) TrialSpec { c.Fault = nil; return c }},
		{"drop cancellation", func(c TrialSpec) TrialSpec { c.CancelAfterUS = 0; return c }},
		{"drop builder reuse", func(c TrialSpec) TrialSpec { c.Reuse = false; return c }},
		{"default map", func(c TrialSpec) TrialSpec { c.MapMode = ""; return c }},
		{"default pre-hull", func(c TrialSpec) TrialSpec { c.PreHull = ""; return c }},
		{"default filter grain", func(c TrialSpec) TrialSpec { c.FilterGrain = 0; return c }},
		{"default SoA layout", func(c TrialSpec) TrialSpec { c.NoSoALayout = false; return c }},
		{"default batch filter", func(c TrialSpec) TrialSpec { c.NoBatchFilter = false; return c }},
		{"default workers", func(c TrialSpec) TrialSpec { c.Workers = 0; return c }},
		{"no shuffle", func(c TrialSpec) TrialSpec { c.Shuffle = false; return c }},
	} {
		cand := step.apply(cur)
		if cand == cur {
			continue
		}
		if fails(cand) {
			cur = cand
			log("shrink: " + step.name)
		}
	}
	for minN := minTrialN(cur); cur.N/2 >= minN; {
		cand := cur
		cand.N = cur.N / 2
		if !fails(cand) {
			break
		}
		cur = cand
		log(fmt.Sprintf("shrink: n -> %d", cur.N))
	}
	return cur
}

// minTrialN is the smallest input size a space can meaningfully run at.
func minTrialN(sp TrialSpec) int {
	switch sp.Space {
	case "hull2d", "delaunay", "circles":
		return 3
	case "hulld":
		return sp.D + 2
	case "halfspace":
		return sp.D + 2
	case "trapezoid":
		return 1
	case "corner":
		return 4
	}
	return 3
}
