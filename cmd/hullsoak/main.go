// Command hullsoak is a deterministic soak driver for the parhull engines.
//
// Every trial is fully determined by a single uint64 seed: the seed picks
// the configuration space, engine schedule, Builder reuse, option set,
// point generator, input size and dimension, fault-injection plan, and
// cancellation deadline. Successful trials are certified by the independent
// exact checkers in internal/certify; failing trials must satisfy the
// public typed-error contract. Any violation is written to a self-contained
// JSON replay file; `hullsoak -replay <file>` reproduces it bit-for-bit and
// then shrinks it to a minimal still-failing configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"parhull/internal/leakcheck"
)

func main() {
	var (
		trials    = flag.Int("trials", 200, "number of soak trials to run")
		seed      = flag.Uint64("seed", 1, "root seed; trial i uses splitmix64(seed, i)")
		deadline  = flag.Duration("deadline", 30*time.Second, "per-trial watchdog deadline")
		replay    = flag.String("replay", "", "replay (and shrink) a recorded violation instead of soaking")
		out       = flag.String("out", "hullsoak-violation.json", "replay file written on the first violation")
		verbose   = flag.Bool("v", false, "print a summary line for every trial")
		keepGoing = flag.Bool("keep-going", false, "continue after a violation (only the first writes a replay file)")
	)
	flag.Parse()

	if *replay != "" {
		os.Exit(runReplay(*replay, *deadline))
	}
	os.Exit(runSoak(*trials, *seed, *deadline, *out, *verbose, *keepGoing))
}

func runSoak(trials int, seed uint64, deadline time.Duration, outPath string, verbose, keepGoing bool) int {
	fmt.Printf("hullsoak: %d trials, seed %d, deadline %v\n", trials, seed, deadline)
	base := leakcheck.Snapshot()
	var (
		ok, failedOK, violations int
		bySpace                  = map[string]int{}
		wroteReplay              bool
	)
	start := time.Now()
	for i := 0; i < trials; i++ {
		sp := deriveTrial(trialSeed(seed, i))
		o := RunTrial(sp, deadline)
		bySpace[sp.Space]++

		if o.Violation == "" {
			if leaked, dump := leakcheck.Settle(base); leaked > 0 {
				if strings.Contains(dump, "parhull") {
					o.Violation = fmt.Sprintf("%d goroutines leaked after trial:\n%s", leaked, dump)
				} else {
					// Runtime/testing goroutines we do not own; move the baseline.
					base = leakcheck.Snapshot()
				}
			}
		}

		switch {
		case o.Violation != "":
			violations++
			fmt.Printf("VIOLATION trial %d: %s\n  spec: %s\n  %s\n", i, o.Violation, sp, o.Summary())
			if !wroteReplay {
				if err := writeReplay(outPath, o); err != nil {
					fmt.Fprintf(os.Stderr, "hullsoak: writing replay file: %v\n", err)
				} else {
					fmt.Printf("  replay file: %s (rerun with: hullsoak -replay %s)\n", outPath, outPath)
					wroteReplay = true
				}
			}
			if !keepGoing {
				return 1
			}
		case o.Err != "":
			failedOK++
			if verbose {
				fmt.Printf("trial %4d %s\n", i, o.Summary())
			}
		default:
			ok++
			if verbose {
				fmt.Printf("trial %4d %s\n", i, o.Summary())
			}
		}
	}
	fmt.Printf("hullsoak: %d trials in %v: %d certified, %d failed-as-contracted, %d violations\n",
		trials, time.Since(start).Round(time.Millisecond), ok, failedOK, violations)
	order := []string{"hulld", "hull2d", "delaunay", "halfspace", "circles", "trapezoid", "corner"}
	var parts []string
	for _, s := range order {
		if bySpace[s] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", s, bySpace[s]))
		}
	}
	fmt.Printf("hullsoak: space mix: %s\n", strings.Join(parts, " "))
	if violations > 0 {
		return 1
	}
	return 0
}

func runReplay(path string, deadline time.Duration) int {
	rf, err := readReplay(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hullsoak: reading replay file: %v\n", err)
		return 2
	}
	fmt.Printf("hullsoak: replaying %s\n  spec: %s\n  recorded: %s\n", path, rf.Spec, rf.Violation)
	o, reproduced := Reproduce(rf, deadline)
	if !reproduced {
		if o.Violation == "" {
			fmt.Printf("NOT REPRODUCED: trial passed on replay (%s)\n", o.Summary())
		} else {
			fmt.Printf("DIVERGED: trial failed differently on replay\n  recorded fingerprint: %s\n  replay fingerprint:   %s\n  replay violation: %s\n",
				rf.Fingerprint, o.Fingerprint, o.Violation)
		}
		return 1
	}
	if o.Violation == rf.Violation && o.Fingerprint == rf.Fingerprint {
		fmt.Printf("reproduced bit-for-bit: %s\n", o.Violation)
	} else {
		// The trial input is seed-determined either way, but a fault that
		// corrupts mid-construction state can surface a schedule-dependent
		// internal error message.
		fmt.Printf("reproduced (same failure, schedule-dependent detail): %s\n", o.Violation)
	}

	min := Shrink(rf.Spec, deadline, func(msg string) { fmt.Println("  " + msg) })
	if min == rf.Spec {
		fmt.Println("hullsoak: spec is already minimal")
		return 0
	}
	minOut := RunTrial(min, deadline)
	minPath := strings.TrimSuffix(path, ".json") + ".min.json"
	if err := writeReplay(minPath, minOut); err != nil {
		fmt.Fprintf(os.Stderr, "hullsoak: writing shrunk replay file: %v\n", err)
		return 2
	}
	fmt.Printf("shrunk: n %d -> %d; minimal spec: %s\n  minimal replay file: %s\n", rf.Spec.N, min.N, min, minPath)
	return 0
}
