package parhull

import (
	"parhull/internal/hull2d"
)

// TraceEventKind classifies an event in a round-by-round trace.
type TraceEventKind int

const (
	// TraceCreated records a new edge replacing an old one.
	TraceCreated TraceEventKind = iota
	// TraceBuried records an equal-pivot ridge burying both edges.
	TraceBuried
	// TraceFinal records a ridge whose edges both have empty conflict sets.
	TraceFinal
)

func (k TraceEventKind) String() string {
	switch k {
	case TraceCreated:
		return "created"
	case TraceBuried:
		return "buried"
	default:
		return "final"
	}
}

// TraceEvent is one ProcessRidge outcome under the round-synchronous
// schedule. For TraceCreated, A is the new edge and B the edge it replaced;
// otherwise A and B are the two edges incident on the ridge. Edges are
// directed vertex-index pairs into the input slice.
type TraceEvent struct {
	Kind TraceEventKind
	A, B [2]int
}

// TraceRound groups the events of one synchronous round.
type TraceRound struct {
	Round  int
	Events []TraceEvent
}

// Hull2DTrace runs the round-synchronous parallel engine (Algorithm 3 under
// the Theorem 5.4 schedule) on 2D points and returns the hull along with a
// round-by-round event log — the machine-readable form of the paper's
// Figure 1 walkthrough.
//
// The first base points must form a strictly convex CCW polygon (base >= 3),
// which seeds the construction; the remaining points are inserted in input
// order. Use base = 3 for ordinary inputs, or Figure1Points' 7-gon to
// reproduce the paper's example.
func Hull2DTrace(pts []Point, base int) (*Hull2DResult, []TraceRound, error) {
	res, tr, err := hull2d.Rounds(pts, &hull2d.Options{Base: base, Trace: true})
	if err != nil {
		return nil, nil, err
	}
	out := &Hull2DResult{Stats: res.Stats}
	for _, v := range res.Vertices {
		out.Vertices = append(out.Vertices, int(v))
	}
	var rounds []TraceRound
	for r := 1; r <= res.Stats.Rounds; r++ {
		evs := tr.ByRound(r)
		tr2 := TraceRound{Round: r}
		for _, ev := range evs {
			var kind TraceEventKind
			switch ev.Kind {
			case hull2d.EventCreated:
				kind = TraceCreated
			case hull2d.EventBuried:
				kind = TraceBuried
			default:
				kind = TraceFinal
			}
			tr2.Events = append(tr2.Events, TraceEvent{
				Kind: kind,
				A:    [2]int{int(ev.A[0]), int(ev.A[1])},
				B:    [2]int{int(ev.B[0]), int(ev.B[1])},
			})
		}
		rounds = append(rounds, tr2)
	}
	return out, rounds, nil
}

// Figure1Points returns the point set of the paper's Figure 1: the convex
// 7-gon u-v-w-x-y-z-t (indices 0..6, counterclockwise) followed by the
// points a, b, c (indices 7, 8, 9) to be inserted in that order. The
// visibility pattern matches the paper exactly: c sees edges v-w, w-x, x-y,
// y-z; b sees w-x, x-y; a sees x-y, y-z. Pass the result to Hull2DTrace
// with base = 7 to replay the figure's three rounds.
//
// Labels: u=0 v=1 w=2 x=3 y=4 z=5 t=6 a=7 b=8 c=9.
func Figure1Points() (pts []Point, base int) {
	return []Point{
		{-3, 0},      // 0: u
		{-2, -1.4},   // 1: v
		{-1, -2.0},   // 2: w
		{0, -2.2},    // 3: x
		{1, -2.0},    // 4: y
		{2, -1.4},    // 5: z
		{3, 0},       // 6: t
		{0.8, -2.3},  // 7: a
		{-0.2, -2.4}, // 8: b
		{0, -4.0},    // 9: c
	}, 7
}

// Figure1Labels maps the indices of Figure1Points to the paper's labels.
var Figure1Labels = []string{"u", "v", "w", "x", "y", "z", "t", "a", "b", "c"}
