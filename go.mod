module parhull

go 1.22
