package parhull

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"parhull/internal/leakcheck"
)

// facetKey is a canonical string form of a facet's sorted vertex set.
func facetKey(f Facet) string {
	vs := append([]int(nil), f.Vertices...)
	sort.Ints(vs)
	return fmt.Sprint(vs)
}

// facetMultiset maps canonical facet keys to multiplicities.
func facetMultiset(fs []Facet) map[string]int {
	m := make(map[string]int, len(fs))
	for _, f := range fs {
		m[facetKey(f)]++
	}
	return m
}

// builderConfigs spans every schedule and both pre-hull settings — the axes
// across which Build-on-a-reused-Builder must reproduce a fresh call exactly.
func builderConfigs() []Options {
	return []Options{
		{Engine: EngineSequential, Shuffle: true, Seed: 3, PreHull: PreHullOff},
		{Engine: EngineParallel, Sched: SchedSteal, Shuffle: true, Seed: 3, PreHull: PreHullOff},
		{Engine: EngineParallel, Sched: SchedGroup, Shuffle: true, Seed: 3, PreHull: PreHullOff},
		{Engine: EngineRounds, Shuffle: true, Seed: 3, PreHull: PreHullOff},
		{Engine: EngineParallel, Sched: SchedSteal, Shuffle: true, Seed: 3, PreHull: PreHullOn},
		{Engine: EngineRounds, Shuffle: true, Seed: 3, PreHull: PreHullOn},
	}
}

// TestBuilderReuseEquivalence runs several consecutive Builds on one Builder
// with varying inputs (different sizes, so every pooled buffer both grows and
// shrinks) and checks each result against a fresh one-shot call: identical
// facet multiset and vertex list, for all schedules and pre-hull modes.
func TestBuilderReuseEquivalence(t *testing.T) {
	leakcheck.Check(t)
	inputs := [][]Point{
		RandomPoints(900, 3, 1),
		RandomPoints(2400, 3, 2),
		RandomPoints(600, 3, 3),
		RandomSpherePoints(800, 3, 4),
		RandomPoints(1200, 4, 5),
	}
	for ci, o := range builderConfigs() {
		o := o
		t.Run(fmt.Sprintf("config%d", ci), func(t *testing.T) {
			b := NewBuilder(&o)
			defer b.Close()
			for round := 0; round < 2; round++ {
				for pi, pts := range inputs {
					got, err := b.Build(pts)
					if err != nil {
						t.Fatalf("round %d input %d: reused Build: %v", round, pi, err)
					}
					fresh, err := HullD(pts, &o)
					if err != nil {
						t.Fatalf("round %d input %d: fresh HullD: %v", round, pi, err)
					}
					if !reflect.DeepEqual(facetMultiset(got.Facets), facetMultiset(fresh.Facets)) {
						t.Fatalf("round %d input %d: facet multiset differs from fresh call", round, pi)
					}
					if !reflect.DeepEqual(got.Vertices, fresh.Vertices) {
						t.Fatalf("round %d input %d: vertices differ: reused %v fresh %v",
							round, pi, got.Vertices, fresh.Vertices)
					}
				}
			}
		})
	}
}

// TestBuilderReuseEquivalence2D is the planar analog.
func TestBuilderReuseEquivalence2D(t *testing.T) {
	leakcheck.Check(t)
	inputs := [][]Point{
		RandomPoints(700, 2, 1),
		RandomPoints(2000, 2, 2),
		RandomPoints(500, 2, 3),
	}
	for ci, o := range builderConfigs() {
		o := o
		t.Run(fmt.Sprintf("config%d", ci), func(t *testing.T) {
			b := NewBuilder(&o)
			defer b.Close()
			for round := 0; round < 2; round++ {
				for pi, pts := range inputs {
					got, err := b.Build2D(pts)
					if err != nil {
						t.Fatalf("round %d input %d: reused Build2D: %v", round, pi, err)
					}
					fresh, err := Hull2D(pts, &o)
					if err != nil {
						t.Fatalf("round %d input %d: fresh Hull2D: %v", round, pi, err)
					}
					if !reflect.DeepEqual(got.Vertices, fresh.Vertices) {
						t.Fatalf("round %d input %d: vertices differ", round, pi)
					}
				}
			}
		})
	}
}

// TestBuilderResultInvalidation pins the recycling contract: the next Build
// overwrites the previous result's backing arrays, and copying is the
// documented way to keep two results alive.
func TestBuilderResultInvalidation(t *testing.T) {
	b := NewBuilder(nil)
	defer b.Close()
	pts1 := RandomPoints(400, 3, 1)
	r1, err := b.Build(pts1)
	if err != nil {
		t.Fatal(err)
	}
	keep := append([]int(nil), r1.Vertices...)
	if _, err := b.Build(RandomPoints(400, 3, 2)); err != nil {
		t.Fatal(err)
	}
	fresh, err := HullD(pts1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keep, fresh.Vertices) {
		t.Fatalf("copied result changed: %v vs %v", keep, fresh.Vertices)
	}
}

// TestBuilderReuseAfterError checks the fault half of the contract: a Build
// aborted mid-flight (canceled context, degenerate input, bad coordinate)
// leaves the Builder fully reusable, with no leaked workers and the next
// Build matching a fresh call.
func TestBuilderReuseAfterError(t *testing.T) {
	leakcheck.Check(t)
	o := &Options{Shuffle: true, Seed: 9}
	b := NewBuilder(o)
	defer b.Close()
	pts := RandomPoints(3000, 3, 7)

	if _, err := b.Build(pts); err != nil {
		t.Fatalf("first Build: %v", err)
	}

	// Canceled context: the engines abort cooperatively.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o.Context = ctx
	if _, err := b.Build(pts); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled Build: got %v, want ErrCanceled", err)
	}
	o.Context = nil

	// Degenerate input: all points coplanar in 3D.
	flat := make([]Point, 50)
	for i := range flat {
		flat[i] = Point{float64(i % 7), float64(i / 7), 0}
	}
	if _, err := b.Build(flat); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("degenerate Build: got %v, want ErrDegenerate", err)
	}

	// Bad coordinate.
	bad := RandomPoints(50, 3, 1)
	bad[17] = Point{0, 1, nan()}
	if _, err := b.Build(bad); !errors.Is(err, ErrBadCoordinate) {
		t.Fatalf("bad-coordinate Build: got %v, want ErrBadCoordinate", err)
	}

	// After every failure mode, the Builder still produces correct output.
	got, err := b.Build(pts)
	if err != nil {
		t.Fatalf("Build after failures: %v", err)
	}
	fresh, err := HullD(pts, &Options{Shuffle: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Vertices, fresh.Vertices) {
		t.Fatal("post-failure Build differs from fresh call")
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// TestBuilderClose pins the Close contract: idempotent, later Builds error,
// the last result stays valid.
func TestBuilderClose(t *testing.T) {
	leakcheck.Check(t)
	b := NewBuilder(nil)
	pts := RandomPoints(300, 3, 5)
	res, err := b.Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	verts := append([]int(nil), res.Vertices...)
	b.Close()
	b.Close() // idempotent
	if _, err := b.Build(pts); !errors.Is(err, ErrBadOption) {
		t.Fatalf("Build after Close: got %v, want ErrBadOption", err)
	}
	if _, err := b.Build2D(RandomPoints(100, 2, 1)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("Build2D after Close: got %v, want ErrBadOption", err)
	}
	if !reflect.DeepEqual(verts, res.Vertices) {
		t.Fatal("last result invalidated by Close")
	}
}

// TestBuilderMapLadderRetained checks that a Builder using a fixed CAS table
// climbs the degradation ladder on an undersized table and still matches a
// fresh call, across repeated Builds (the doubled table is retained).
func TestBuilderMapLadderRetained(t *testing.T) {
	leakcheck.Check(t)
	o := &Options{Map: MapCAS, MapCapacity: 8, Shuffle: true, Seed: 2}
	b := NewBuilder(o)
	defer b.Close()
	pts := RandomPoints(2000, 3, 11)
	for i := 0; i < 3; i++ {
		got, err := b.Build(pts)
		if err != nil {
			t.Fatalf("build %d: %v", i, err)
		}
		fresh, err := HullD(pts, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Vertices, fresh.Vertices) {
			t.Fatalf("build %d: vertices differ from fresh call", i)
		}
	}
}
