package parhull

import (
	"context"
	"errors"
	"math"
	"sort"
	"testing"
	"time"

	"parhull/internal/conmap"
	"parhull/internal/geom"
	"parhull/internal/leakcheck"
)

// sentinels is the complete public error surface; the contract test checks
// every API error matches exactly one of them.
var sentinels = map[string]error{
	"ErrDegenerate":    ErrDegenerate,
	"ErrBadCoordinate": ErrBadCoordinate,
	"ErrCapacity":      ErrCapacity,
	"ErrCanceled":      ErrCanceled,
	"ErrBadOption":     ErrBadOption,
}

// wantExactly asserts err matches the named sentinel and none of the others.
func wantExactly(t *testing.T, label string, err error, want string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: nil error, want %s", label, want)
	}
	for name, s := range sentinels {
		if got := errors.Is(err, s); got != (name == want) {
			t.Errorf("%s: errors.Is(err, %s) = %v (err = %v)", label, name, got, err)
		}
	}
}

// TestTypedErrorContract is the errors.Is matrix of the robustness layer:
// for every engine x map x kernel combination, each rejection class comes
// back wrapped in its one public sentinel — and the internal sentinel stays
// in the chain for callers that look deeper.
func TestTypedErrorContract(t *testing.T) {
	leakcheck.Check(t)
	collinear2 := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}}
	nan2 := []Point{{0, 0}, {1, 0}, {0, 1}, {math.NaN(), 0.5}}
	coplanar3 := []Point{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}, {2, 1, 0}, {1, 2, 0}}
	inf3 := []Point{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {math.Inf(1), 0, 0}}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	for _, e := range []Engine{EngineSequential, EngineParallel, EngineRounds} {
		for _, m := range []MapKind{MapSharded, MapCAS, MapTAS} {
			o := func() *Options { return &Options{Engine: e, Map: m} }

			if _, err := Hull2D(collinear2, o()); true {
				wantExactly(t, "2D collinear", err, "ErrDegenerate")
			}
			if _, err := Hull2D(nan2, o()); true {
				wantExactly(t, "2D NaN", err, "ErrBadCoordinate")
				if !errors.Is(err, geom.ErrBadCoordinate) {
					t.Errorf("2D NaN: internal sentinel lost from chain: %v", err)
				}
			}
			if _, err := HullD(coplanar3, o()); true {
				wantExactly(t, "3D coplanar", err, "ErrDegenerate")
			}
			if _, err := HullD(inf3, o()); true {
				wantExactly(t, "3D Inf", err, "ErrBadCoordinate")
			}

			oc := o()
			oc.Context = canceled
			if _, err := Hull2D(RandomPoints(50, 2, 1), oc); true {
				wantExactly(t, "2D pre-canceled", err, "ErrCanceled")
				if !errors.Is(err, context.Canceled) {
					t.Errorf("2D pre-canceled: context.Canceled lost from chain: %v", err)
				}
			}
			oc2 := o()
			oc2.Context = canceled
			if _, err := HullD(RandomSpherePoints(50, 3, 1), oc2); true {
				wantExactly(t, "3D pre-canceled", err, "ErrCanceled")
			}

			if m != MapSharded && e != EngineSequential {
				ocap := o()
				ocap.MapCapacity = 8
				ocap.NoMapFallback = true
				if _, err := Hull2D(RandomSpherePoints(300, 2, 2), ocap); true {
					wantExactly(t, "2D capacity", err, "ErrCapacity")
					if !errors.Is(err, conmap.ErrCapacity) {
						t.Errorf("2D capacity: internal sentinel lost from chain: %v", err)
					}
				}
				dcap := o()
				dcap.MapCapacity = 8
				dcap.NoMapFallback = true
				if _, err := HullD(RandomSpherePoints(200, 3, 3), dcap); true {
					wantExactly(t, "3D capacity", err, "ErrCapacity")
				}
			}
		}
	}
}

// TestBadOptionValidation pins satellite (c): statically invalid Options come
// back as ErrBadOption from every entry point that takes Options, before any
// work starts.
func TestBadOptionValidation(t *testing.T) {
	bad := &Options{MapCapacity: -1}
	pts2 := RandomPoints(20, 2, 1)
	pts3 := RandomPoints(20, 3, 1)
	if _, err := Hull2D(pts2, bad); !errors.Is(err, ErrBadOption) {
		t.Errorf("Hull2D: %v, want ErrBadOption", err)
	}
	if _, err := HullD(pts3, bad); !errors.Is(err, ErrBadOption) {
		t.Errorf("HullD: %v, want ErrBadOption", err)
	}
	if _, err := HalfspaceIntersection(pts3, bad); !errors.Is(err, ErrBadOption) {
		t.Errorf("HalfspaceIntersection: %v, want ErrBadOption", err)
	}
	if _, err := Delaunay(pts2, bad); !errors.Is(err, ErrBadOption) {
		t.Errorf("Delaunay: %v, want ErrBadOption", err)
	}
	if _, err := Hull2D(pts2, &Options{Engine: Engine(99)}); !errors.Is(err, ErrBadOption) {
		t.Errorf("bad engine: want ErrBadOption")
	}
	if _, err := Hull2D(pts2, &Options{Workers: -1}); !errors.Is(err, ErrBadOption) {
		t.Errorf("negative Workers: want ErrBadOption")
	}
	if _, err := HullD(pts3, &Options{PreHull: PreHullMode(9)}); !errors.Is(err, ErrBadOption) {
		t.Errorf("bad PreHull mode: want ErrBadOption")
	}
	if _, err := Hull3D(pts2, nil); !errors.Is(err, ErrBadOption) {
		t.Errorf("Hull3D on 2D points: want ErrBadOption")
	}
}

// sortedVertices is a comparison helper.
func sortedVertices(v []int) []int {
	out := append([]int(nil), v...)
	sort.Ints(out)
	return out
}

// TestDegradationLadderRetry undersizes the fixed table so that one or two
// doubled-table restarts suffice: the run must succeed without falling back
// to the sharded map, record the retries in Stats, and produce the same hull
// as a clean run.
func TestDegradationLadderRetry(t *testing.T) {
	leakcheck.Check(t)
	pts := RandomSpherePoints(100, 2, 5)
	clean, err := Hull2D(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []MapKind{MapCAS, MapTAS} {
		res, err := Hull2D(pts, &Options{Map: m, MapCapacity: 32})
		if err != nil {
			t.Fatalf("map %d: ladder did not recover: %v", m, err)
		}
		if res.Stats.CapacityRetries < 1 || res.Stats.CapacityRetries > 2 {
			t.Errorf("map %d: CapacityRetries = %d, want 1..2", m, res.Stats.CapacityRetries)
		}
		if res.Stats.MapFallback {
			t.Errorf("map %d: fell back to sharded, doubling should have sufficed", m)
		}
		a, b := sortedVertices(clean.Vertices), sortedVertices(res.Vertices)
		if len(a) != len(b) {
			t.Fatalf("map %d: %d hull vertices vs clean %d", m, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("map %d: hull differs from clean run", m)
			}
		}
	}
}

// TestDegradationLadderFallback undersizes the table beyond what the bounded
// retries can absorb: the ladder must land on the sharded map, record both
// Stats fields, and still produce the clean hull.
func TestDegradationLadderFallback(t *testing.T) {
	leakcheck.Check(t)
	pts := RandomSpherePoints(400, 2, 6)
	clean, err := Hull2D(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{EngineParallel, EngineRounds} {
		res, err := Hull2D(pts, &Options{Engine: e, Map: MapCAS, MapCapacity: 4})
		if err != nil {
			t.Fatalf("engine %d: ladder did not recover: %v", e, err)
		}
		if res.Stats.CapacityRetries != 2 {
			t.Errorf("engine %d: CapacityRetries = %d, want 2 (ladder exhausted)", e, res.Stats.CapacityRetries)
		}
		if !res.Stats.MapFallback {
			t.Errorf("engine %d: MapFallback = false, want sharded fallback", e)
		}
		a, b := sortedVertices(clean.Vertices), sortedVertices(res.Vertices)
		if len(a) != len(b) {
			t.Fatalf("engine %d: %d hull vertices vs clean %d", e, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("engine %d: hull differs from clean run", e)
			}
		}
	}
}

// TestCancellationPromptness is the acceptance bar of the tentpole: on a
// 100k-point 3D ball, a context canceled early into the run must come back
// as ErrCanceled in a fraction of the clean runtime, with the pool quiesced.
func TestCancellationPromptness(t *testing.T) {
	leakcheck.Check(t)
	pts := RandomPoints(100_000, 3, 7)
	start := time.Now()
	if _, err := HullD(pts, nil); err != nil {
		t.Fatal(err)
	}
	cleanDur := time.Since(start)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(cleanDur / 20)
		cancel()
	}()
	start = time.Now()
	_, err := HullD(pts, &Options{Context: ctx})
	gotDur := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// Generous bound (clean/2 + scheduling slack) to stay robust on loaded
	// machines while still catching a cancellation that only fires at the end.
	if limit := cleanDur/2 + 50*time.Millisecond; gotDur > limit {
		t.Errorf("canceled run took %v, want well under clean %v (limit %v)", gotDur, cleanDur, limit)
	}
}

// TestHull3DDegenerateCollinear is satellite (a)'s public regression: the
// all-collinear 3D input that used to escape as an index-out-of-range panic
// in corner.projAxis now comes back as a typed ErrDegenerate.
func TestHull3DDegenerateCollinear(t *testing.T) {
	var pts []Point
	for i := 0; i < 8; i++ {
		f := float64(i)
		pts = append(pts, Point{f, 2 * f, -f})
	}
	_, err := Hull3DDegenerate(pts, nil)
	wantExactly(t, "collinear", err, "ErrDegenerate")

	if _, err := Hull3DDegenerate([]Point{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}, nil); !errors.Is(err, ErrDegenerate) {
		t.Errorf("3 points: %v, want ErrDegenerate", err)
	}
}
