package parhull

import (
	"errors"
	"math"
	"sort"
	"testing"

	"parhull/internal/circles"
	"parhull/internal/core"
	"parhull/internal/corner"
	"parhull/internal/delaunay"
	"parhull/internal/engine"
	"parhull/internal/geom"
	"parhull/internal/halfspace"
	"parhull/internal/pointgen"
	"parhull/internal/trapezoid"
)

// FuzzSpaceEquivalence drives random tiny instances of all five configuration
// spaces (delaunay, corner, circles, halfspace, trapezoid) through
// engine.SpaceRounds and pins the result to the definitional oracles in
// internal/core: the alive set must equal T(X) (core.Active) and the created
// count the number of configurations active after any insertion prefix; the
// 2-supported spaces are additionally compared against the brute-force
// Algorithm 1 process (core.RunGeneric — exponential in MaxSupport, so the
// 4-supported and unbounded-support spaces rely on the T(X) oracle).
//
// With a non-zero mutate parameter the input is corrupted instead — NaN or
// infinite coordinates, duplicated objects, an inverted box — and driven
// through the public API, which must come back with a typed error or valid
// output, never a panic and never an untyped error.
func FuzzSpaceEquivalence(f *testing.F) {
	for s := int64(1); s <= 3; s++ {
		for sp := uint8(0); sp < 5; sp++ {
			f.Add(s, uint8(4+s), sp, uint8(0))
		}
	}
	f.Add(int64(7), uint8(6), uint8(0), uint8(1))  // delaunay, NaN
	f.Add(int64(8), uint8(6), uint8(1), uint8(3))  // corner, duplicate
	f.Add(int64(9), uint8(6), uint8(2), uint8(1))  // circles, NaN
	f.Add(int64(10), uint8(6), uint8(3), uint8(2)) // halfspace, +Inf
	f.Add(int64(11), uint8(6), uint8(4), uint8(2)) // trapezoid, Inf
	f.Fuzz(func(t *testing.T, seed int64, n, space, mutate uint8) {
		rng := pointgen.NewRNG(seed)
		switch space % 5 {
		case 0:
			// Bounding triangle pinned in the base prefix keeps the enumerated
			// Delaunay space 2-supported for every insertion order.
			m := 2 + int(n)%6
			pts := append([]geom.Point{{0, 8}, {-8, -6}, {8, -6}},
				pointgen.UniformBall(rng, m, 2)...)
			if mutate%4 != 0 {
				_, err := Delaunay(mutateCloud(pts, mutate, seed), &Options{Engine: EngineSequential})
				typedOrNil(t, "delaunay", mutate, err)
				return
			}
			s, err := delaunay.NewSpace(pts)
			if rejected(t, "delaunay", err, delaunay.ErrDegenerate) {
				return
			}
			checkSpaceAgainstCore(t, "delaunay", s, seed)
		case 1:
			pts := pointgen.UniformBall(rng, 4+int(n)%4, 3)
			if mutate%4 != 0 {
				_, err := Hull3DDegenerate(mutateCloud(pts, mutate, seed), nil)
				typedOrNil(t, "corner", mutate, err)
				return
			}
			s, err := corner.NewSpace(pts)
			if rejected(t, "corner", err, corner.ErrDegenerate) {
				return
			}
			checkSpaceAgainstCore(t, "corner", s, seed)
		case 2:
			centers := make([]geom.Point, 2+int(n)%4)
			for i := range centers {
				centers[i] = geom.Point{rng.Float64() * 0.8, rng.Float64() * 0.8}
			}
			if mutate%4 != 0 {
				_, _, err := UnitCircleIntersection(mutateCloud(centers, mutate, seed), nil)
				typedOrNil(t, "circles", mutate, err)
				return
			}
			s, err := circles.NewSpace(centers)
			if rejected(t, "circles", err, circles.ErrDegenerate, circles.ErrDisjoint) {
				return
			}
			checkSpaceAgainstCore(t, "circles", s, seed)
		case 3:
			d := 2 + int(seed&1)
			normals := append(halfspace.BoundingSimplex(d),
				pointgen.OnSphere(rng, 2+int(n)%3, d)...)
			if mutate%4 != 0 {
				_, err := HalfspaceIntersectionDirect(mutateCloud(normals, mutate, seed), nil)
				typedOrNil(t, "halfspace", mutate, err)
				return
			}
			s, err := halfspace.NewSpace(normals)
			if rejected(t, "halfspace", err, halfspace.ErrDegenerate) {
				return
			}
			checkSpaceAgainstCore(t, "halfspace", s, seed)
		case 4:
			m := 1 + int(n)%5
			segs := make([]trapezoid.Segment, m)
			for i := range segs {
				segs[i] = trapezoid.Segment{
					Y:  100*float64(i+1)/float64(m+1) + rng.Float64(),
					XL: 1 + rng.Float64()*48,
					XR: 51 + rng.Float64()*48,
				}
			}
			box := trapezoid.Box{XL: 0, XR: 100, YB: 0, YT: 100}
			if mutate%4 != 0 {
				segs, box = mutateSegs(segs, box, mutate, seed)
				_, err := TrapezoidDecomposition(segs, box, nil)
				typedOrNil(t, "trapezoid", mutate, err)
				return
			}
			s, err := trapezoid.NewSpace(segs, box)
			if rejected(t, "trapezoid", err, trapezoid.ErrDegenerate) {
				return
			}
			checkSpaceAgainstCore(t, "trapezoid", s, seed)
		}
	})
}

// checkSpaceAgainstCore compares engine.SpaceRounds against the core oracles
// on a tail-shuffled insertion order.
func checkSpaceAgainstCore(t *testing.T, name string, s core.Space, seed int64) {
	t.Helper()
	n, base := s.NumObjects(), s.BaseSize()
	order := identityOrder(n)
	for i, j := range pointgen.Perm(pointgen.NewRNG(seed), n-base) {
		order[base+i] = base + j
	}
	got, err := engine.SpaceRounds(s, order)
	if err != nil {
		t.Fatalf("%s: SpaceRounds: %v", name, err)
	}
	want := core.Active(s, order)
	sort.Ints(want)
	if !equalInts(got.Alive, want) {
		t.Fatalf("%s: engine alive %v, T(X) %v", name, got.Alive, want)
	}
	ever := map[int]bool{}
	for p := base; p <= n; p++ {
		for _, c := range core.Active(s, order[:p]) {
			ever[c] = true
		}
	}
	if got.Created != len(ever) {
		t.Errorf("%s: engine created %d configurations, prefix sweep says %d",
			name, got.Created, len(ever))
	}
	if s.MaxSupport() == 2 && s.NumConfigs() <= 256 {
		gen, err := core.RunGeneric(s, order)
		if err != nil {
			t.Fatalf("%s: RunGeneric: %v", name, err)
		}
		ga := append([]int(nil), gen.Alive...)
		sort.Ints(ga)
		if !equalInts(got.Alive, ga) {
			t.Fatalf("%s: engine alive %v, Algorithm 1 %v", name, got.Alive, ga)
		}
	}
}

// mutateCloud corrupts one point of a cloud: NaN coordinate (1), infinite
// coordinate (2), or exact duplicate (3).
func mutateCloud(pts []geom.Point, mutate uint8, seed int64) []geom.Point {
	i := int(uint64(seed)>>4) % len(pts)
	switch mutate % 4 {
	case 1:
		pts[i][int(uint64(seed)>>8)%len(pts[i])] = math.NaN()
	case 2:
		pts[i][int(uint64(seed)>>8)%len(pts[i])] = math.Inf(1)
	case 3:
		pts[i] = append(geom.Point(nil), pts[(i+1)%len(pts)]...)
	}
	return pts
}

// mutateSegs corrupts a trapezoid input: NaN coordinate (1), infinite
// endpoint (2), or duplicated y / inverted box (3).
func mutateSegs(segs []trapezoid.Segment, box trapezoid.Box, mutate uint8, seed int64) ([]trapezoid.Segment, trapezoid.Box) {
	i := int(uint64(seed)>>4) % len(segs)
	switch mutate % 4 {
	case 1:
		segs[i].Y = math.NaN()
	case 2:
		segs[i].XR = math.Inf(1)
	case 3:
		if len(segs) > 1 {
			segs[i].Y = segs[(i+1)%len(segs)].Y
		} else {
			box.XL, box.XR = box.XR, box.XL
		}
	}
	return segs, box
}

// typedOrNil asserts the public-API robustness contract on hostile input:
// success or a typed public error, never a panic or an untyped error.
func typedOrNil(t *testing.T, name string, mutate uint8, err error) {
	t.Helper()
	if err == nil {
		return
	}
	if errors.Is(err, ErrDegenerate) || errors.Is(err, ErrBadCoordinate) ||
		errors.Is(err, ErrCapacity) || errors.Is(err, ErrBadOption) {
		return
	}
	t.Fatalf("%s mutate=%d: untyped error %v", name, mutate, err)
}

// rejected handles space construction on clean input: nil means proceed; a
// listed typed rejection means skip the instance; anything else fails.
func rejected(t *testing.T, name string, err error, allowed ...error) bool {
	t.Helper()
	if err == nil {
		return false
	}
	for _, a := range allowed {
		if errors.Is(err, a) {
			return true
		}
	}
	t.Fatalf("%s: NewSpace: %v", name, err)
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
