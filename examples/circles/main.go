// Circles: computes the intersection of unit disks (Section 7) and renders
// the boundary arcs as ASCII art.
package main

import (
	"fmt"
	"log"
	"math"

	"parhull"
)

func main() {
	// Seven unit disks with centers clustered near the origin.
	var centers []parhull.Point
	for i := 0; i < 7; i++ {
		a := 2 * math.Pi * float64(i) / 7
		r := 0.25 + 0.15*math.Sin(3*a)
		centers = append(centers, parhull.Point{r * math.Cos(a), r * math.Sin(a)})
	}
	arcs, nonempty, err := parhull.UnitCircleIntersection(centers, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !nonempty {
		fmt.Println("The disks have empty common intersection.")
		return
	}
	fmt.Printf("Intersection of %d unit disks: %d boundary arcs\n", len(centers), len(arcs))
	for _, a := range arcs {
		fmt.Printf("  circle %d: [%6.1f°, %6.1f°] (%.1f°)\n",
			a.Circle, deg(a.Lo), deg(a.Lo+a.Length), deg(a.Length))
	}

	// ASCII render: '#' inside the intersection, digit on a boundary arc's
	// supporting circle, '.' elsewhere.
	const w, h = 64, 30
	fmt.Println()
	for row := 0; row < h; row++ {
		line := make([]byte, w)
		for col := 0; col < w; col++ {
			x := (float64(col)/float64(w-1) - 0.5) * 3
			y := (0.5 - float64(row)/float64(h-1)) * 3
			inside := true
			onCircle := -1
			for ci, c := range centers {
				d := math.Hypot(x-c[0], y-c[1])
				if d > 1 {
					inside = false
				}
				if math.Abs(d-1) < 0.035 {
					onCircle = ci
				}
			}
			switch {
			case inside && onCircle >= 0:
				line[col] = byte('0' + onCircle%10)
			case inside:
				line[col] = '#'
			case onCircle >= 0:
				line[col] = '\''
			default:
				line[col] = '.'
			}
		}
		fmt.Println(string(line))
	}
}

func deg(r float64) float64 { return r * 180 / math.Pi }
