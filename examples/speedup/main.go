// Speedup: measures the parallel self-speedup of Algorithm 3 over a range
// of GOMAXPROCS values, on the all-points-on-hull 2D workload (experiment
// E11). On a single-core machine this prints a flat curve — the structural
// parallelism (rounds, depth) is still reported and is machine-independent.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"parhull"
)

func main() {
	const n = 200_000
	pts := parhull.RandomSpherePoints(n, 2, 13)
	opt := &parhull.Options{Shuffle: true, Seed: 5, NoCounters: true}

	// Structural parallelism first: rounds and depth do not depend on the
	// machine.
	meta, err := parhull.Hull2D(pts, &parhull.Options{
		Engine: parhull.EngineRounds, Shuffle: true, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n = %d on-circle points: depth %d, rounds %d (both O(log n))\n",
		n, meta.Stats.MaxDepth, meta.Stats.Rounds)

	maxP := runtime.NumCPU()
	fmt.Printf("%-6s %-12s %-8s\n", "P", "time", "speedup")
	var t1 time.Duration
	for p := 1; p <= maxP; p *= 2 {
		runtime.GOMAXPROCS(p)
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			if _, err := parhull.Hull2D(pts, opt); err != nil {
				log.Fatal(err)
			}
			el := time.Since(start)
			if best == 0 || el < best {
				best = el
			}
		}
		if p == 1 {
			t1 = best
		}
		fmt.Printf("%-6d %-12v %.2fx\n", p, best.Round(time.Microsecond), float64(t1)/float64(best))
	}
	runtime.GOMAXPROCS(maxP)
}
