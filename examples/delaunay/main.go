// Delaunay: triangulates random points with the incremental method and
// reports the dependence depth — the same O(log n) phenomenon the paper
// proves for convex hull, here on the Delaunay configuration space the
// paper uses as its introductory example of a configuration space
// (Section 3).
package main

import (
	"fmt"
	"log"
	"math"

	"parhull"
)

func main() {
	for _, n := range []int{1000, 10000, 100000} {
		pts := parhull.RandomPoints(n, 2, int64(n))
		res, err := parhull.Delaunay(pts, &parhull.Options{Shuffle: true, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%7d: %7d triangles, depth %3d (%.2f x ln n), %d in-circle tests\n",
			n, len(res.Triangles), res.Stats.MaxDepth,
			float64(res.Stats.MaxDepth)/math.Log(float64(n)),
			res.Stats.VisibilityTests)
	}

	// A tiny triangulation, printed in full.
	small := parhull.RandomPoints(8, 2, 3)
	res, err := parhull.Delaunay(small, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntriangulation of 8 points:")
	for _, t := range res.Triangles {
		fmt.Printf("  (%d %d %d)\n", t[0], t[1], t[2])
	}
}
