// Figure 1: replays the running example of the paper (Section 5.3) — adding
// points a, b, c to the hull u-v-w-x-y-z-t — and prints the round-by-round
// ProcessRidge outcomes, which match the paper's Figures 1(a) through 1(d).
package main

import (
	"fmt"
	"log"

	"parhull"
)

func edge(e [2]int) string {
	return parhull.Figure1Labels[e[0]] + "-" + parhull.Figure1Labels[e[1]]
}

func main() {
	pts, base := parhull.Figure1Points()
	fmt.Println("Initial hull: u-v-w-x-y-z-t; inserting a, b, c (lexicographic order).")
	res, rounds, err := parhull.Hull2DTrace(pts, base)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rounds {
		fmt.Printf("Round %d (Figure 1(%c) -> 1(%c)):\n", r.Round, 'a'+r.Round-1, 'b'+r.Round-1)
		for _, ev := range r.Events {
			switch ev.Kind {
			case parhull.TraceCreated:
				fmt.Printf("  %-9s %s replaces %s\n", "created:", edge(ev.A), edge(ev.B))
			case parhull.TraceBuried:
				fmt.Printf("  %-9s %s and %s\n", "buried:", edge(ev.A), edge(ev.B))
			default:
				fmt.Printf("  %-9s ridge between %s and %s\n", "final:", edge(ev.A), edge(ev.B))
			}
		}
	}
	fmt.Print("Final hull:")
	for _, v := range res.Vertices {
		fmt.Printf(" %s", parhull.Figure1Labels[v])
	}
	fmt.Printf("\n(%d rounds, max dependence depth %d)\n", res.Stats.Rounds, res.Stats.MaxDepth)
}
