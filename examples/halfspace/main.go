// Halfspace: computes the intersection of random half-spaces in 3D via the
// duality route of Section 7 — the parallel incremental hull of the normal
// vectors — and prints the vertices of the resulting polytope.
package main

import (
	"fmt"
	"log"

	"parhull"
)

func main() {
	// 40 random half-spaces {x : a·x <= 1}, plus a bounding simplex so the
	// intersection is guaranteed bounded.
	normals := append(parhull.HalfspaceBoundingSimplex(3),
		parhull.RandomSpherePoints(40, 3, 11)...)
	res, err := parhull.HalfspaceIntersection(normals, &parhull.Options{Shuffle: true, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Intersection of %d half-spaces: %d vertices\n", len(normals), len(res.Vertices))
	for i, v := range res.Vertices {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(res.Vertices)-8)
			break
		}
		fmt.Printf("  v%-3d at (%7.4f, %7.4f, %7.4f)  on halfspaces %v\n",
			i, v.Point[0], v.Point[1], v.Point[2], v.Halfspaces)
	}
	fmt.Printf("Dual-hull dependence depth: %d (Section 7: same O(log n) bound as hull)\n",
		res.Stats.MaxDepth)
}
