// Quickstart: compute 2D and 3D convex hulls with the parallel randomized
// incremental algorithm and inspect the instrumentation the paper's
// theorems are about.
package main

import (
	"fmt"
	"log"

	"parhull"
)

func main() {
	// 2D: 100k points in the unit disk. Shuffle gives the random insertion
	// order that Theorem 1.1's O(log n) depth guarantee assumes.
	pts := parhull.RandomPoints(100_000, 2, 42)
	res, err := parhull.Hull2D(pts, &parhull.Options{Shuffle: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2D hull of %d points: %d vertices\n", len(pts), len(res.Vertices))
	fmt.Printf("  visibility tests:   %d\n", res.Stats.VisibilityTests)
	fmt.Printf("  facets created:     %d\n", res.Stats.FacetsCreated)
	fmt.Printf("  dependence depth:   %d (Theorem 1.1: O(log n) whp)\n", res.Stats.MaxDepth)

	// The same input through the sequential Algorithm 2: identical facets,
	// identical number of plane-side tests — only the schedule differs.
	seq, err := parhull.Hull2D(pts, &parhull.Options{
		Engine: parhull.EngineSequential, Shuffle: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  sequential tests:   %d (same as parallel: %v)\n",
		seq.Stats.VisibilityTests, seq.Stats.VisibilityTests == res.Stats.VisibilityTests)

	// 3D: every point on the sphere is a hull vertex — the hard case.
	sph := parhull.RandomSpherePoints(20_000, 3, 7)
	res3, err := parhull.Hull3D(sph, &parhull.Options{Shuffle: true, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3D hull of %d sphere points: %d facets, depth %d\n",
		len(sph), len(res3.Facets), res3.Stats.MaxDepth)

	// Round-synchronous engine: Stats.Rounds is the recursion depth of
	// Theorem 5.3.
	rr, err := parhull.Hull3D(sph, &parhull.Options{
		Engine: parhull.EngineRounds, Shuffle: true, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  rounds to completion: %d\n", rr.Stats.Rounds)
}
