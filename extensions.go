package parhull

import (
	"errors"
	"fmt"
	"math"

	"parhull/internal/circles"
	"parhull/internal/corner"
	"parhull/internal/delaunay"
	"parhull/internal/engine"
	"parhull/internal/geom"
	"parhull/internal/halfspace"
	"parhull/internal/hulld"
	"parhull/internal/pointgen"
	"parhull/internal/trapezoid"
)

// HalfspaceVertex is one vertex of a half-space intersection: its location
// and the d half-spaces whose boundaries meet there (indices into the
// normals slice).
type HalfspaceVertex struct {
	Point      Point
	Halfspaces []int
}

// HalfspaceResult is the output of HalfspaceIntersection and
// HalfspaceIntersectionDirect.
type HalfspaceResult struct {
	Vertices []HalfspaceVertex
	// Stats instruments the underlying construction. For the dual-hull route
	// MaxDepth is the dependence depth of the half-space intersection process
	// (Section 7 — the two are isomorphic under duality); for the direct route
	// Rounds/RoundWidths describe the rounds engine and FacetsCreated counts
	// configurations ever activated.
	Stats Stats
}

// HalfspaceIntersection computes the vertices of the intersection of the
// half-spaces {x : normals[i]·x <= 1} by duality: the parallel incremental
// hull of the normal vectors (Section 7). The intersection must be bounded,
// i.e. the normals must positively span R^d — prepend
// HalfspaceBoundingSimplex to guarantee it. Normals are consumed in input
// order unless Options.Shuffle is set. Options.Sched, Workers, and Context
// plumb through to the underlying hull engine.
func HalfspaceIntersection(normals []Point, opt *Options) (out *HalfspaceResult, err error) {
	defer guard(&err)
	o := opt.or()
	if err := o.validate(); err != nil {
		return nil, err
	}
	order := o.perm(len(normals))
	work := applyShuffle(normals, order)
	d := 0
	if len(normals) > 0 {
		d = len(normals[0])
	}
	res, err := halfspace.IntersectDual(work, &hulld.Options{
		Map:           o.ridgeMapD(len(normals), d),
		Sched:         o.schedKind(),
		GroupLimit:    o.GroupLimit,
		Workers:       o.Workers,
		NoCounters:    o.NoCounters,
		FilterGrain:   o.FilterGrain,
		NoPlaneCache:  o.NoPlaneCache,
		NoBatchFilter: o.NoBatchFilter,
		Ctx:           o.Context,
		Inject:        o.inject,
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	out = &HalfspaceResult{Stats: res.HullStats}
	for _, v := range res.Vertices {
		hv := HalfspaceVertex{Point: v.Point}
		for _, h := range v.Halfspaces {
			hv.Halfspaces = append(hv.Halfspaces, mapBack(h, order))
		}
		out.Vertices = append(out.Vertices, hv)
	}
	return out, nil
}

// HalfspaceIntersectionDirect computes the same vertex set as
// HalfspaceIntersection through the direct configuration space of Section 7
// run on the generic rounds engine (engine.SpaceRounds with the space's
// batch ConflictScanner) instead of the dual hull. The space enumerates all
// d-subsets of the normals, so this route is for moderate inputs and for
// validating the duality; the dual route is the fast path.
//
// The first d+1 normals are the base and are never shuffled (every insertion
// prefix must describe a bounded intersection — prepend
// HalfspaceBoundingSimplex); Options.Shuffle permutes the rest.
func HalfspaceIntersectionDirect(normals []Point, opt *Options) (out *HalfspaceResult, err error) {
	defer guard(&err)
	o := opt.or()
	if err := o.validate(); err != nil {
		return nil, err
	}
	s, err := halfspace.NewSpace(normals)
	if err != nil {
		return nil, wrapErr(err)
	}
	if len(normals) < s.BaseSize() {
		return nil, fmt.Errorf("%w: need at least %d halfspaces for a bounded base, got %d",
			ErrDegenerate, s.BaseSize(), len(normals))
	}
	order := tailShuffledOrder(len(normals), s.BaseSize(), o.Shuffle, o.Seed)
	res, err := engine.SpaceRoundsCtxInj(o.Context, o.inject, s, order)
	if err != nil {
		return nil, wrapErr(err)
	}
	out = &HalfspaceResult{}
	fillSpaceStats(&out.Stats, res)
	for _, c := range res.Alive {
		out.Vertices = append(out.Vertices, HalfspaceVertex{
			Point:      s.Vertex(c),
			Halfspaces: append([]int(nil), s.Defining(c)...),
		})
	}
	return out, nil
}

// HalfspaceBoundingSimplex returns d+1 normals whose half-spaces form a
// bounded simplex around the origin; prepending them to any normal set
// makes the intersection (and every prefix of the insertion order) bounded.
func HalfspaceBoundingSimplex(d int) []Point {
	return halfspace.BoundingSimplex(d)
}

// CircleArc is one boundary arc of a unit-circle intersection: the arc of
// circle Circle covering angles [Lo, Lo+Length] (radians, wrapping).
type CircleArc struct {
	Circle     int
	Lo, Length float64
}

// UnitCircleIntersection computes the boundary arcs of the intersection of
// unit disks centered at centers (Section 7), by the incremental arc
// configuration space run on the generic rounds engine. The boolean reports
// whether the intersection region is non-empty; a pair of disks at center
// distance >= 2 makes it empty (not an error). Centers are inserted in input
// order unless Options.Shuffle is set; Options.Context cancels cooperatively.
// Duplicate centers are reported as ErrDegenerate.
func UnitCircleIntersection(centers []Point, opt *Options) (_ []CircleArc, _ bool, err error) {
	defer guard(&err)
	o := opt.or()
	if err := o.validate(); err != nil {
		return nil, false, err
	}
	if len(centers) == 0 {
		return nil, false, nil
	}
	if err := geom.ValidateCloud(centers, 2); err != nil {
		return nil, false, wrapErr(err)
	}
	if len(centers) == 1 {
		return []CircleArc{{Circle: 0, Lo: circles.Full.Lo, Length: circles.Full.Length}}, true, nil
	}
	s, err := circles.NewSpace(centers)
	if errors.Is(err, circles.ErrDisjoint) {
		return nil, false, nil // some pair of disks cannot overlap: empty intersection
	}
	if err != nil {
		return nil, false, wrapErr(err)
	}
	order := o.perm(len(centers))
	if order == nil {
		order = identityOrder(len(centers))
	}
	res, err := engine.SpaceRoundsCtxInj(o.Context, o.inject, s, order)
	if err != nil {
		return nil, false, wrapErr(err)
	}
	arcs := s.Arcs(res.Alive)
	out := make([]CircleArc, len(arcs))
	for i, a := range arcs {
		out[i] = CircleArc{Circle: a.Circle, Lo: a.Iv.Lo, Length: a.Iv.Length}
	}
	return out, len(out) > 0, nil
}

// TrapezoidSegment is a horizontal segment y = Y spanning x in [XL, XR].
type TrapezoidSegment = trapezoid.Segment

// TrapezoidBox is the bounding box of a trapezoidal decomposition.
type TrapezoidBox = trapezoid.Box

// TrapezoidCell is one cell of a trapezoidal decomposition: its rectangle
// and the segments defining its boundary (empty for the whole box).
type TrapezoidCell struct {
	XL, XR, YB, YT float64
	Segments       []int
}

// TrapezoidDecomposition computes the trapezoidal (vertical) decomposition
// of non-touching horizontal segments inside box (the Section 4 companion
// space), run on the generic rounds engine. Segments are inserted in input
// order unless Options.Shuffle is set; Options.Context cancels
// cooperatively. This space lacks constant-size support sets (adding one
// segment can merge Omega(n) cells), so unlike the hull spaces its
// dependence depth — Stats on the result of the internal engine — can be
// linear; the decomposition itself is order-independent and exact.
func TrapezoidDecomposition(segs []TrapezoidSegment, box TrapezoidBox, opt *Options) (_ []TrapezoidCell, err error) {
	defer guard(&err)
	o := opt.or()
	if err := o.validate(); err != nil {
		return nil, err
	}
	for _, v := range []float64{box.XL, box.XR, box.YB, box.YT} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite box coordinate %v", ErrBadCoordinate, v)
		}
	}
	for i, sg := range segs {
		for _, v := range []float64{sg.Y, sg.XL, sg.XR} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: non-finite coordinate %v in segment %d", ErrBadCoordinate, v, i)
			}
		}
	}
	if box.XL >= box.XR || box.YB >= box.YT {
		return nil, fmt.Errorf("%w: empty bounding box", ErrDegenerate)
	}
	if len(segs) == 0 {
		return []TrapezoidCell{{XL: box.XL, XR: box.XR, YB: box.YB, YT: box.YT, Segments: []int{}}}, nil
	}
	s, err := trapezoid.NewSpace(segs, box)
	if err != nil {
		return nil, wrapErr(err)
	}
	order := o.perm(len(segs))
	if order == nil {
		order = identityOrder(len(segs))
	}
	res, err := engine.SpaceRoundsCtxInj(o.Context, o.inject, s, order)
	if err != nil {
		return nil, wrapErr(err)
	}
	out := make([]TrapezoidCell, 0, len(res.Alive))
	for _, c := range res.Alive {
		xl, xr, yb, yt := s.CellRect(c)
		out = append(out, TrapezoidCell{XL: xl, XR: xr, YB: yb, YT: yt,
			Segments: append([]int{}, s.Defining(c)...)})
	}
	return out, nil
}

// DelaunayResult is the output of Delaunay.
type DelaunayResult struct {
	// Triangles lists the Delaunay triangles as counterclockwise vertex
	// index triples into the input slice.
	Triangles [][3]int
	// Stats instruments the construction; MaxDepth is the dependence depth
	// of the incremental process (O(log n) whp for a shuffled order, per
	// the prior work the paper builds on).
	Stats Stats
}

// Delaunay computes the Delaunay triangulation of 2D points by the
// randomized incremental method. Options.Engine selects the schedule —
// EngineParallel (default, Algorithm 3 on the fork-join substrate chosen by
// Options.Sched), EngineSequential (Algorithm 2), or EngineRounds (the
// round-synchronous schedule; Stats.Rounds/RoundWidths report the dependence
// structure). All three produce the identical triangle set; see
// internal/delaunay for the bounding-triangle construction. Points are
// inserted in input order unless Options.Shuffle is set (which the O(log n)
// depth guarantee assumes). Map, Workers, GroupLimit, FilterGrain,
// NoPlaneCache (the in-circle predicate cache), NoCounters, and Context all
// apply; the pre-hull reduction does not (a Delaunay triangulation keeps
// interior points). Unlike the hull routes, a fixed CAS/TAS ridge map that
// fills surfaces ErrCapacity directly — there is no degradation ladder here.
func Delaunay(pts []Point, opt *Options) (out *DelaunayResult, err error) {
	defer guard(&err)
	o := opt.or()
	if err := o.validate(); err != nil {
		return nil, err
	}
	order := o.perm(len(pts))
	work := applyShuffle(pts, order)
	dopt := &delaunay.Options{
		Map:           o.ridgeMapDelaunay(len(pts)),
		Sched:         o.schedKind(),
		GroupLimit:    o.GroupLimit,
		Workers:       o.Workers,
		NoCounters:    o.NoCounters,
		FilterGrain:   o.FilterGrain,
		NoPredCache:   o.NoPlaneCache,
		NoBatchFilter: o.NoBatchFilter,
		Ctx:           o.Context,
		Inject:        o.inject,
	}
	var res *delaunay.Result
	switch o.Engine {
	case EngineParallel:
		res, err = delaunay.Par(work, dopt)
	case EngineSequential:
		res, err = delaunay.Seq(work, dopt)
	case EngineRounds:
		res, err = delaunay.Rounds(work, dopt)
	default:
		return nil, errBadEngine
	}
	if err != nil {
		return nil, wrapErr(err)
	}
	out = &DelaunayResult{Stats: res.Stats}
	for _, t := range res.Triangles {
		out.Triangles = append(out.Triangles, [3]int{
			mapBack(t.Verts[0], order), mapBack(t.Verts[1], order), mapBack(t.Verts[2], order),
		})
	}
	return out, nil
}

// Face3D is one face of a (possibly degenerate) 3D hull: its vertex indices
// in cyclic boundary order. Faces need not be triangles.
type Face3D struct {
	Vertices []int
}

// Hull3DDegenerate computes the convex hull of 3D points that may be
// degenerate (four or more coplanar, three or more collinear), using the
// corner configuration space of Section 6 (a 4-supported space) run through
// the generic rounds engine (engine.SpaceRounds). It returns the hull's
// faces as vertex cycles — squares for a cube, general polygons for planar
// clusters — rather than a simplicial facet list. Points are inserted in
// input order unless Options.Shuffle is set; Options.Context cancels
// cooperatively.
//
// The corner space has O(n^3) configurations, but its PeakEnumerator keeps
// the engine's work proportional to the configurations actually touched; it
// remains intended for moderate inputs (hundreds of points) — for large
// inputs in general position use Hull3D. Exact duplicates must be removed
// first (they are reported as errors). The engine's final active set
// provably equals T(X) — the set the brute-force core simulator computes —
// which is asserted on degenerate fixtures by tests.
func Hull3DDegenerate(pts []Point, opt *Options) (_ []Face3D, err error) {
	defer guard(&err)
	o := opt.or()
	if err := o.validate(); err != nil {
		return nil, err
	}
	if len(pts) < 4 {
		return nil, fmt.Errorf("%w: Hull3DDegenerate needs at least 4 points, got %d", ErrDegenerate, len(pts))
	}
	s, err := corner.NewSpace(pts)
	if err != nil {
		return nil, wrapErr(err)
	}
	order := o.perm(len(pts))
	if order == nil {
		order = identityOrder(len(pts))
	}
	res, err := engine.SpaceRoundsCtxInj(o.Context, o.inject, s, order)
	if err != nil {
		return nil, wrapErr(err)
	}
	faces, err := corner.Faces(s, res.Alive)
	if err != nil {
		return nil, wrapErr(err)
	}
	out := make([]Face3D, len(faces))
	for i, f := range faces {
		out[i] = Face3D{Vertices: f.Vertices}
	}
	return out, nil
}

// identityOrder is the in-order insertion sequence 0..n-1.
func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// tailShuffledOrder is identityOrder with positions base.. shuffled
// (Seed-driven) when shuffle is set: insertion orders whose base prefix is
// pinned (HalfspaceIntersectionDirect's bounded base).
func tailShuffledOrder(n, base int, shuffle bool, seed int64) []int {
	order := identityOrder(n)
	if shuffle && n > base {
		for i, j := range pointgen.Perm(pointgen.NewRNG(seed), n-base) {
			order[base+i] = base + j
		}
	}
	return order
}

// fillSpaceStats maps a SpaceResult's instrumentation onto the public Stats.
func fillSpaceStats(st *Stats, res *engine.SpaceResult) {
	st.FacetsCreated = int64(res.Created)
	st.Rounds = res.Rounds
	st.RoundWidths = res.Widths
	st.HullSize = len(res.Alive)
}
