package parhull

import (
	"fmt"

	"parhull/internal/circles"
	"parhull/internal/corner"
	"parhull/internal/delaunay"
	"parhull/internal/engine"
	"parhull/internal/halfspace"
	"parhull/internal/hulld"
)

// HalfspaceVertex is one vertex of a half-space intersection: its location
// and the d half-spaces whose boundaries meet there (indices into the
// normals slice).
type HalfspaceVertex struct {
	Point      Point
	Halfspaces []int
}

// HalfspaceResult is the output of HalfspaceIntersection.
type HalfspaceResult struct {
	Vertices []HalfspaceVertex
	// Stats instruments the underlying dual hull construction; its MaxDepth
	// is the dependence depth of the half-space intersection process
	// (Section 7 — the two are isomorphic under duality).
	Stats Stats
}

// HalfspaceIntersection computes the vertices of the intersection of the
// half-spaces {x : normals[i]·x <= 1} by duality: the parallel incremental
// hull of the normal vectors (Section 7). The intersection must be bounded,
// i.e. the normals must positively span R^d — prepend
// HalfspaceBoundingSimplex to guarantee it. Normals are consumed in input
// order unless Options.Shuffle is set.
func HalfspaceIntersection(normals []Point, opt *Options) (out *HalfspaceResult, err error) {
	defer guard(&err)
	o := opt.or()
	if err := o.validate(); err != nil {
		return nil, err
	}
	order := o.perm(len(normals))
	work := applyShuffle(normals, order)
	d := 0
	if len(normals) > 0 {
		d = len(normals[0])
	}
	res, err := halfspace.IntersectDual(work, &hulld.Options{
		Map:          o.ridgeMapD(len(normals), d),
		GroupLimit:   o.GroupLimit,
		NoCounters:   o.NoCounters,
		FilterGrain:  o.FilterGrain,
		NoPlaneCache: o.NoPlaneCache,
		Ctx:          o.Context,
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	out = &HalfspaceResult{Stats: res.HullStats}
	for _, v := range res.Vertices {
		hv := HalfspaceVertex{Point: v.Point}
		for _, h := range v.Halfspaces {
			hv.Halfspaces = append(hv.Halfspaces, mapBack(h, order))
		}
		out.Vertices = append(out.Vertices, hv)
	}
	return out, nil
}

// HalfspaceBoundingSimplex returns d+1 normals whose half-spaces form a
// bounded simplex around the origin; prepending them to any normal set
// makes the intersection (and every prefix of the insertion order) bounded.
func HalfspaceBoundingSimplex(d int) []Point {
	return halfspace.BoundingSimplex(d)
}

// CircleArc is one boundary arc of a unit-circle intersection: the arc of
// circle Circle covering angles [Lo, Lo+Length] (radians, wrapping).
type CircleArc struct {
	Circle     int
	Lo, Length float64
}

// UnitCircleIntersection computes the boundary arcs of the intersection of
// unit disks centered at centers (Section 7). The boolean reports whether
// the intersection region is non-empty.
func UnitCircleIntersection(centers []Point) (_ []CircleArc, _ bool, err error) {
	defer guard(&err)
	arcs, nonempty, err := circles.IntersectionBoundary(centers)
	if err != nil {
		return nil, false, wrapErr(err)
	}
	out := make([]CircleArc, len(arcs))
	for i, a := range arcs {
		out[i] = CircleArc{Circle: a.Circle, Lo: a.Iv.Lo, Length: a.Iv.Length}
	}
	return out, nonempty, nil
}

// DelaunayResult is the output of Delaunay.
type DelaunayResult struct {
	// Triangles lists the Delaunay triangles as counterclockwise vertex
	// index triples into the input slice.
	Triangles [][3]int
	// Stats instruments the construction; MaxDepth is the dependence depth
	// of the incremental process (O(log n) whp for a shuffled order, per
	// the prior work the paper builds on).
	Stats Stats
}

// Delaunay computes the Delaunay triangulation of 2D points by the
// randomized incremental method, instrumented with the same dependence
// depth as the hull engines (extension; see internal/delaunay for the
// bounding-triangle caveat near the input hull). Points are inserted in
// input order unless opt.Shuffle is set.
func Delaunay(pts []Point, opt *Options) (out *DelaunayResult, err error) {
	defer guard(&err)
	o := opt.or()
	if err := o.validate(); err != nil {
		return nil, err
	}
	order := o.perm(len(pts))
	work := applyShuffle(pts, order)
	res, err := delaunay.Triangulate(work)
	if err != nil {
		return nil, wrapErr(err)
	}
	out = &DelaunayResult{Stats: res.Stats}
	for _, t := range res.Triangles {
		out.Triangles = append(out.Triangles, [3]int{
			mapBack(t.Verts[0], order), mapBack(t.Verts[1], order), mapBack(t.Verts[2], order),
		})
	}
	return out, nil
}

// Face3D is one face of a (possibly degenerate) 3D hull: its vertex indices
// in cyclic boundary order. Faces need not be triangles.
type Face3D struct {
	Vertices []int
}

// Hull3DDegenerate computes the convex hull of 3D points that may be
// degenerate (four or more coplanar, three or more collinear), using the
// corner configuration space of Section 6 (a 4-supported space) run through
// the generic rounds engine (engine.SpaceRounds). It returns the hull's
// faces as vertex cycles — squares for a cube, general polygons for planar
// clusters — rather than a simplicial facet list.
//
// The corner space is enumerated explicitly (O(n^3) configurations with
// O(n) conflict tests each), so this is intended for moderate inputs
// (hundreds of points); for large inputs in general position use Hull3D.
// Exact duplicates must be removed first (they are reported as errors).
// The engine's final active set provably equals T(X) — the set the
// brute-force core simulator computes — which is asserted on degenerate
// fixtures by tests.
func Hull3DDegenerate(pts []Point) (_ []Face3D, err error) {
	defer guard(&err)
	if len(pts) < 4 {
		return nil, fmt.Errorf("%w: Hull3DDegenerate needs at least 4 points, got %d", ErrDegenerate, len(pts))
	}
	s, err := corner.NewSpace(pts)
	if err != nil {
		return nil, wrapErr(err)
	}
	all := make([]int, len(pts))
	for i := range all {
		all[i] = i
	}
	res, err := engine.SpaceRounds(s, all)
	if err != nil {
		return nil, wrapErr(err)
	}
	faces, err := corner.Faces(s, res.Alive)
	if err != nil {
		return nil, wrapErr(err)
	}
	out := make([]Face3D, len(faces))
	for i, f := range faces {
		out[i] = Face3D{Vertices: f.Vertices}
	}
	return out, nil
}
