// Package parhull is a Go implementation of the parallel randomized
// incremental convex hull algorithm of Blelloch, Gu, Shun, and Sun,
// "Randomized Incremental Convex Hull is Highly Parallel" (SPAA 2020),
// together with the substrates and companion problems the paper describes:
// the sequential incremental baseline (Algorithm 2), the parallel variant
// with its two ridge-map protocols (Algorithms 3-5), the configuration-
// space/support-set framework (Sections 3-4), corner configurations for
// degenerate 3D inputs (Section 6), and half-space and unit-circle
// intersection (Section 7).
//
// The headline guarantee is structural: inserting points in random order,
// the configuration dependence graph — facet t depends only on the two
// facets that support it — has depth O(log n) with high probability
// (Theorem 1.1), so the parallel engine performs exactly the same facet
// creations and plane-side tests as the sequential one, just scheduled
// by dependence rather than by insertion index. Every Result carries the
// instrumentation (visibility tests, dependence depth, rounds) used by the
// experiments in EXPERIMENTS.md.
//
// Quick start:
//
//	pts := parhull.RandomPoints(10000, 2, 42)          // or your own points
//	res, err := parhull.Hull2D(pts, &parhull.Options{Shuffle: true, Seed: 1})
//	// res.Vertices: CCW hull indices; res.Stats.MaxDepth: dependence depth
//
// All coordinates are float64; every branching predicate is evaluated
// exactly (float filter + rational fallback), so results are independent of
// scheduling and of floating-point luck. Inputs to the Section 5 engines
// must be in general position — see the README for what that means and how
// the Section 6 API relaxes it in 3D.
package parhull

import (
	"context"
	"errors"
	"fmt"

	"parhull/internal/conmap"
	"parhull/internal/delaunay"
	"parhull/internal/engine"
	"parhull/internal/faultinject"
	"parhull/internal/geom"
	"parhull/internal/hull2d"
	"parhull/internal/hulld"
	"parhull/internal/hullstats"
	"parhull/internal/pointgen"
	"parhull/internal/sched"
)

// Point is a point in R^d (d = len(p)).
type Point = geom.Point

// Stats carries the instrumentation of one construction: plane-side test
// counts, facet life-cycle counts, dependence depth (Theorem 1.1), and
// rounds (Theorem 5.3, rounds engine only).
type Stats = hullstats.Stats

// Engine selects the construction schedule.
type Engine int

const (
	// EngineParallel is Algorithm 3 under the asynchronous fork-join
	// schedule (the binary-forking model of Theorem 5.5). Default.
	EngineParallel Engine = iota
	// EngineSequential is Algorithm 2, the classic sequential randomized
	// incremental construction.
	EngineSequential
	// EngineRounds is Algorithm 3 under the round-synchronous schedule of
	// Theorem 5.4; Stats.Rounds reports the recursion depth of Theorem 5.3.
	EngineRounds
)

// SchedKind selects the fork-join substrate of the EngineParallel schedule.
type SchedKind int

const (
	// SchedSteal runs ridge chains on a fixed pool of long-lived workers
	// with per-worker LIFO deques, steal-on-empty, and per-worker arenas
	// (Blumofe-Leiserson work stealing — the scheduler the binary-forking
	// model of Theorem 5.5 assumes). Default.
	SchedSteal SchedKind = iota
	// SchedGroup spawns a bounded goroutine per forked chain — the previous
	// substrate, kept for the A3 ablation in cmd/hullbench.
	SchedGroup
)

// MapKind selects the concurrent ridge multimap M of Algorithm 3.
type MapKind int

const (
	// MapSharded is a growable mutex-sharded table (production default).
	MapSharded MapKind = iota
	// MapCAS is the paper's Algorithm 4: linear probing + CompareAndSwap.
	MapCAS
	// MapTAS is the paper's Algorithm 5: the TestAndSet-only protocol.
	MapTAS
)

// PreHullMode controls the divide-and-conquer input reduction that runs
// before the main construction: the input is split into blocks, each block's
// hull is computed serially (blocks in parallel), and only the block-hull
// vertices reach the selected engine. A point interior to its block's hull
// cannot be a hull vertex, so the final facets are exactly those of a direct
// run — the reduction changes the work, never the output (asserted across
// engines by the equivalence tests). See internal/prehull and DESIGN.md §4.4.
type PreHullMode int

const (
	// PreHullAuto (default) enables the reduction for large interior-heavy
	// inputs: a serial hull over a small prefix sample estimates the hull
	// density, and the reduction runs only when the sample is mostly
	// interior (uniform-ball-like). Boundary-heavy inputs (points on a
	// sphere) skip it — there is nothing to discard.
	PreHullAuto PreHullMode = iota
	// PreHullOn always attempts the reduction (inputs too small to block up
	// still run direct).
	PreHullOn
	// PreHullOff never reduces; every point goes straight to the engine.
	// This is the ablation baseline of the E11 experiment.
	PreHullOff
)

// Options configures a construction. The zero value is a good default:
// parallel engine, sharded map, no shuffle, counters on.
type Options struct {
	// Engine selects the schedule (default EngineParallel).
	Engine Engine
	// Map selects the ridge multimap (default MapSharded). The fixed-size
	// CAS/TAS maps are sized automatically from the input unless
	// MapCapacity is set.
	Map MapKind
	// MapCapacity overrides the expected ridge count for MapCAS/MapTAS.
	MapCapacity int
	// Shuffle inserts the points in a uniformly random order derived from
	// Seed instead of the given order. The O(log n) depth guarantee of
	// Theorem 1.1 is over this randomness; leave it off only if the input
	// order is already random. Reported indices always refer to the
	// original slice.
	Shuffle bool
	// Seed drives Shuffle (same seed, same order).
	Seed int64
	// Sched selects the fork-join substrate of EngineParallel (default
	// SchedSteal). The facet output is identical across substrates
	// (Theorem 5.5) — only scheduling and allocation behavior differ.
	Sched SchedKind
	// GroupLimit caps concurrently spawned ridge chains (EngineParallel
	// with SchedGroup only).
	GroupLimit int
	// NoCounters disables visibility-test counting for pure-speed runs.
	NoCounters bool
	// FilterGrain sets the conflict-list size above which conflict filtering
	// runs in parallel chunks (0 = default; a very large value forces the
	// serial path — the A1 ablation). The hull output and the multiset of
	// plane-side tests are identical either way; only the span changes.
	FilterGrain int
	// NoPlaneCache disables the cached-hyperplane visibility fast path so
	// every plane-side test runs the exact determinant predicate (the A2
	// ablation). The combinatorial output is identical either way.
	NoPlaneCache bool
	// NoSoALayout keeps each facet's cached plane inline in the facet
	// record instead of additionally publishing it into the per-worker
	// structure-of-arrays plane rows the batch filter streams (the layout
	// ablation measured by hullbench's scale experiment). The hull output
	// is bit-for-bit identical either way; only memory layout changes.
	NoSoALayout bool
	// Context, when non-nil, cancels the construction cooperatively: the
	// engines check it at ridge-chain granularity and the call returns
	// ErrCanceled (wrapping ctx.Err()) promptly, with every worker
	// goroutine quiesced before the return.
	Context context.Context
	// Workers pins the width of the work-stealing pools: the pre-hull block
	// loop and the EngineParallel steal substrate (<= 0 selects GOMAXPROCS;
	// the Group substrate and the rounds engine size themselves from
	// GOMAXPROCS directly). The hull output is identical for any width
	// (Theorem 5.5) — only the schedule changes. The speedup harness in
	// cmd/hullbench sets it alongside runtime.GOMAXPROCS to measure scaling
	// curves that do not depend on the ambient process configuration.
	Workers int
	// PreHull selects the pre-hull reduction mode (default PreHullAuto).
	PreHull PreHullMode
	// NoPreHullZOrder disables the Morton (Z-order) spatial presort of the
	// pre-hull blocks: blocks become contiguous runs of the insertion order
	// instead of compact spatial regions. The output is identical; this is
	// the pre-hull partitioning ablation in cmd/hullbench.
	NoPreHullZOrder bool
	// NoMapFallback disables the capacity degradation ladder for
	// MapCAS/MapTAS: a fixed table that fills surfaces ErrCapacity instead
	// of retrying with a doubled table and finally falling back to
	// MapSharded. Leave it off in production; tests use it to pin the
	// typed-error contract.
	NoMapFallback bool
	// NoBatchFilter routes conflict filtering through the pointwise closure
	// path instead of the batch filter pipeline (the filter ablation in
	// cmd/hullbench; also a soak-rig axis). The survivor lists — and so the
	// hull — are identical either way.
	NoBatchFilter bool

	// inject arms deterministic fault injection across every instrumented
	// layer (engines, ridge maps, pre-hull, Builder rewind, space rounds).
	// Settable only through SetFaultInjector; nil in production.
	inject *faultinject.Injector
}

// SetFaultInjector arms o with a deterministic fault-injection schedule for
// the robustness test rigs (internal/faultinject; see cmd/hullsoak). The
// injector type lives in an internal package, so outside this module the
// method is only callable with nil — production code cannot arm faults.
func (o *Options) SetFaultInjector(inj *faultinject.Injector) { o.inject = inj }

// schedKind maps the public knob onto the internal scheduler kind.
func (o *Options) schedKind() sched.Kind {
	if o != nil && o.Sched == SchedGroup {
		return sched.KindGroup
	}
	return sched.KindSteal
}

func (o *Options) or() *Options {
	if o == nil {
		return &Options{}
	}
	return o
}

// In 2D a ridge is a single vertex, so the expected distinct ridge count is
// n itself (DefaultMapCapacity with d = 0); the fixed CAS/TAS tables get the
// 4x headroom of FixedMapCapacity. An explicit MapCapacity overrides both.
func (o *Options) ridgeMap2D(n int) conmap.RidgeMap[*hull2d.Facet] {
	switch o.Map {
	case MapCAS:
		return conmap.NewCASMap[*hull2d.Facet](o.capacity(engine.FixedMapCapacity(n, 0)))
	case MapTAS:
		return conmap.NewTASMap[*hull2d.Facet](o.capacity(engine.FixedMapCapacity(n, 0)))
	default:
		return conmap.NewShardedMap[*hull2d.Facet](o.capacity(engine.DefaultMapCapacity(n, 0)))
	}
}

// ridgeMapDelaunay sizes the edge multimap of the Delaunay engines: each of
// the ~2n triangles carries 3 edges, which DefaultMapCapacity(n, 2) covers.
func (o *Options) ridgeMapDelaunay(n int) conmap.RidgeMap[*delaunay.Triangle] {
	switch o.Map {
	case MapCAS:
		return conmap.NewCASMap[*delaunay.Triangle](o.capacity(engine.FixedMapCapacity(n, 2)))
	case MapTAS:
		return conmap.NewTASMap[*delaunay.Triangle](o.capacity(engine.FixedMapCapacity(n, 2)))
	default:
		return conmap.NewShardedMap[*delaunay.Triangle](o.capacity(engine.DefaultMapCapacity(n, 2)))
	}
}

func (o *Options) ridgeMapD(n, d int) conmap.RidgeMap[*hulld.Facet] {
	switch o.Map {
	case MapCAS:
		return conmap.NewCASMap[*hulld.Facet](o.capacity(engine.FixedMapCapacity(n, d)))
	case MapTAS:
		return conmap.NewTASMap[*hulld.Facet](o.capacity(engine.FixedMapCapacity(n, d)))
	default:
		return conmap.NewShardedMap[*hulld.Facet](o.capacity(engine.DefaultMapCapacity(n, d)))
	}
}

// capacity applies the MapCapacity override to a default sizing rule.
func (o *Options) capacity(def int) int {
	if o.MapCapacity != 0 {
		return o.MapCapacity
	}
	return def
}

// ladderRetries is how many doubled-table restarts the degradation ladder
// attempts after a capacity failure before abandoning the fixed table.
const ladderRetries = 2

// ladder is the capacity degradation ladder of the public layer: MapSharded
// runs directly (it grows, it cannot fill); MapCAS/MapTAS run on the fixed
// table, and a conmap.ErrCapacity failure restarts the whole construction —
// the engines abort cleanly, so a restart is the only sound recovery — on a
// table twice the size, up to ladderRetries times, before falling back to
// the sharded map (unless Options.NoMapFallback). Any error other than
// capacity exhaustion surfaces immediately.
func ladder[V comparable, R any](o *Options, fixedCap int,
	mkFixed func(c int) conmap.RidgeMap[V],
	mkSharded func() conmap.RidgeMap[V],
	run func(conmap.RidgeMap[V]) (R, error)) (res R, retries int, fellBack bool, err error) {

	if o.Map != MapCAS && o.Map != MapTAS {
		res, err = run(mkSharded())
		return res, 0, false, err
	}
	c := fixedCap
	for attempt := 0; ; attempt++ {
		res, err = run(mkFixed(c))
		if err == nil || !errors.Is(err, conmap.ErrCapacity) || attempt == ladderRetries {
			break
		}
		retries++
		c *= 2
	}
	if err != nil && errors.Is(err, conmap.ErrCapacity) && !o.NoMapFallback {
		res, err = run(mkSharded())
		return res, retries, true, err
	}
	return res, retries, false, err
}

// perm returns the insertion order under o, or nil when the given order is
// used as-is. Position p of the shuffled input holds original point
// order[p], so order maps engine indices back to caller indices directly
// (see mapBack); no separate inverse permutation is needed.
func (o *Options) perm(n int) []int {
	if !o.Shuffle {
		return nil
	}
	return pointgen.Perm(pointgen.NewRNG(o.Seed), n)
}

// RandomPoints returns n points of dimension d drawn uniformly from the
// unit ball, deterministically from seed — a convenient general-position
// test input.
func RandomPoints(n, d int, seed int64) []Point {
	return pointgen.UniformBall(pointgen.NewRNG(seed), n, d)
}

// RandomSpherePoints returns n points uniformly on the unit (d-1)-sphere —
// the adversarial input where every point is a hull vertex.
func RandomSpherePoints(n, d int, seed int64) []Point {
	return pointgen.OnSphere(pointgen.NewRNG(seed), n, d)
}

func applyShuffle(pts []Point, order []int) []Point {
	if order == nil {
		return pts
	}
	return pointgen.ApplyPerm(pts, order)
}

func mapBack(idx int32, order []int) int {
	if order == nil {
		return int(idx)
	}
	return order[idx]
}

var errBadEngine = fmt.Errorf("%w: unknown engine", ErrBadOption)

// Auto-mode pre-hull thresholds: below preHullMinN the block sub-hulls
// cannot pay for themselves; the probe runs a serial hull over the first
// preHullSample points of the working order and enables the reduction only
// when at most 1/preHullDense of the sample survives (interior-heavy input).
const (
	preHullMinN   = 16384
	preHullSample = 1024
	preHullDense  = 4
)

// preHullWorthIt is the PreHullAuto probe. The sample is a prefix of the
// working order, so with Shuffle on (or an already-random input) it is a
// uniform sample; a sorted unshuffled input can fool it, in which case the
// reduction is merely skipped or wasted — never wrong.
func (o *Options) preHullWorthIt(work []Point, d int) bool {
	if len(work) < preHullMinN {
		return false
	}
	sample := work[:preHullSample]
	var verts int
	if d == 2 {
		res, err := hull2d.SeqCtx(o.Context, nil, sample, o.NoPlaneCache)
		if err != nil {
			return false // degenerate or canceled sample: run direct
		}
		verts = len(res.Vertices)
	} else {
		res, err := hulld.SeqCtx(o.Context, nil, sample, o.NoPlaneCache)
		if err != nil {
			return false
		}
		verts = len(res.Vertices)
	}
	return verts <= preHullSample/preHullDense
}
