package parhull

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"

	"parhull/internal/leakcheck"
)

// TestHalfspaceDirectMatchesDual is the duality acceptance check: the direct
// configuration-space route (engine.SpaceRounds over Section 7's vertex
// space) must produce the same vertex set — same defining halfspace triples,
// same coordinates — as the dual-hull route.
func TestHalfspaceDirectMatchesDual(t *testing.T) {
	normals := append(HalfspaceBoundingSimplex(3), RandomSpherePoints(25, 3, 9)...)

	dual, err := HalfspaceIntersection(normals, nil)
	if err != nil {
		t.Fatalf("dual route: %v", err)
	}
	direct, err := HalfspaceIntersectionDirect(normals, nil)
	if err != nil {
		t.Fatalf("direct route: %v", err)
	}

	key := func(hs []int) string {
		cp := append([]int(nil), hs...)
		sort.Ints(cp)
		return fmt.Sprint(cp)
	}
	dv := map[string]Point{}
	for _, v := range dual.Vertices {
		dv[key(v.Halfspaces)] = v.Point
	}
	if len(dv) != len(dual.Vertices) {
		t.Fatalf("dual route returned %d vertices with %d distinct defining sets",
			len(dual.Vertices), len(dv))
	}
	if len(direct.Vertices) != len(dual.Vertices) {
		t.Fatalf("direct route found %d vertices, dual %d", len(direct.Vertices), len(dual.Vertices))
	}
	for _, v := range direct.Vertices {
		p, ok := dv[key(v.Halfspaces)]
		if !ok {
			t.Fatalf("direct vertex %v (halfspaces %v) missing from the dual route", v.Point, v.Halfspaces)
		}
		for i := range p {
			if math.Abs(p[i]-v.Point[i]) > 1e-9 {
				t.Fatalf("vertex %v: direct %v, dual %v", v.Halfspaces, v.Point, p)
			}
		}
	}
	if direct.Stats.Rounds < 1 || direct.Stats.FacetsCreated < int64(len(direct.Vertices)) {
		t.Errorf("direct stats not filled: rounds=%d created=%d",
			direct.Stats.Rounds, direct.Stats.FacetsCreated)
	}
}

// TestDelaunayEnginesAgreePublic pins the Options.Engine routing: all three
// schedules must produce the identical triangle set through the public API.
func TestDelaunayEnginesAgreePublic(t *testing.T) {
	pts := RandomPoints(300, 2, 21)
	norm := func(tris [][3]int) []string {
		out := make([]string, len(tris))
		for i, tr := range tris {
			v := []int{tr[0], tr[1], tr[2]}
			sort.Ints(v)
			out[i] = fmt.Sprint(v)
		}
		sort.Strings(out)
		return out
	}
	var want []string
	for _, e := range []Engine{EngineSequential, EngineParallel, EngineRounds} {
		res, err := Delaunay(pts, &Options{Engine: e})
		if err != nil {
			t.Fatalf("engine %v: %v", e, err)
		}
		got := norm(res.Triangles)
		if want == nil {
			want = got
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("engine %v triangle set differs from EngineSequential", e)
		}
		if e == EngineRounds && res.Stats.Rounds < 1 {
			t.Errorf("EngineRounds: Stats.Rounds = %d, want >= 1", res.Stats.Rounds)
		}
	}
}

// TestTrapezoidDecompositionPublic checks the decomposition is a genuine
// partition of the box avoiding every segment, is insertion-order
// independent, and that the trivial and hostile inputs behave.
func TestTrapezoidDecompositionPublic(t *testing.T) {
	box := TrapezoidBox{XL: 0, XR: 100, YB: 0, YT: 100}

	cells, err := TrapezoidDecomposition(nil, box, nil)
	if err != nil || len(cells) != 1 || cells[0].XL != 0 || cells[0].YT != 100 {
		t.Fatalf("empty input: cells=%v err=%v, want the box", cells, err)
	}

	segs := []TrapezoidSegment{
		{Y: 50, XL: 10, XR: 90},
		{Y: 70, XL: 20, XR: 30},
		{Y: 75, XL: 40, XR: 55},
		{Y: 30, XL: 15, XR: 80},
	}
	cells, err = TrapezoidDecomposition(segs, box, nil)
	if err != nil {
		t.Fatal(err)
	}
	area := 0.0
	for _, c := range cells {
		if c.XL < box.XL || c.XR > box.XR || c.YB < box.YB || c.YT > box.YT || c.XL >= c.XR || c.YB >= c.YT {
			t.Fatalf("cell %+v escapes the box or is empty", c)
		}
		area += (c.XR - c.XL) * (c.YT - c.YB)
		for i, sg := range segs {
			if sg.Y > c.YB && sg.Y < c.YT && sg.XR > c.XL && sg.XL < c.XR {
				t.Fatalf("segment %d intrudes cell %+v", i, c)
			}
		}
	}
	if want := (box.XR - box.XL) * (box.YT - box.YB); math.Abs(area-want) > 1e-6 {
		t.Fatalf("cells cover area %v, box has %v", area, want)
	}

	cellSet := func(cs []TrapezoidCell) string {
		out := make([]string, len(cs))
		for i, c := range cs {
			out[i] = fmt.Sprintf("%v %v %v %v %v", c.XL, c.XR, c.YB, c.YT, c.Segments)
		}
		sort.Strings(out)
		return fmt.Sprint(out)
	}
	shuffled, err := TrapezoidDecomposition(segs, box, &Options{Shuffle: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cellSet(shuffled) != cellSet(cells) {
		t.Fatal("decomposition depends on insertion order")
	}

	if _, err := TrapezoidDecomposition([]TrapezoidSegment{{Y: 50, XL: 10, XR: 90}, {Y: 50, XL: 91, XR: 95}},
		box, nil); !errors.Is(err, ErrDegenerate) {
		t.Errorf("duplicate y: err = %v, want ErrDegenerate", err)
	}
	if _, err := TrapezoidDecomposition([]TrapezoidSegment{{Y: math.NaN(), XL: 10, XR: 90}},
		box, nil); !errors.Is(err, ErrBadCoordinate) {
		t.Errorf("NaN y: err = %v, want ErrBadCoordinate", err)
	}
	if _, err := TrapezoidDecomposition(nil, TrapezoidBox{XL: 1, XR: 0, YB: 0, YT: 1},
		nil); !errors.Is(err, ErrDegenerate) {
		t.Errorf("inverted box: err = %v, want ErrDegenerate", err)
	}
}

// TestExtensionsCancellation drives every space entry point with a
// pre-canceled context under the goroutine-leak checker: each must come back
// with ErrCanceled (context.Canceled still in the chain) and no stray
// workers.
func TestExtensionsCancellation(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	centers := make([]Point, 20)
	for i := range centers {
		centers[i] = Point{float64(i%5) * 0.15, float64(i/5) * 0.15}
	}
	segs := make([]TrapezoidSegment, 10)
	for i := range segs {
		segs[i] = TrapezoidSegment{Y: float64(i+1) * 9, XL: 1 + float64(i), XR: 99 - float64(i)}
	}
	box := TrapezoidBox{XL: 0, XR: 100, YB: 0, YT: 100}

	runs := []struct {
		name string
		run  func(o *Options) error
	}{
		{"Delaunay/seq", func(o *Options) error {
			o.Engine = EngineSequential
			_, err := Delaunay(RandomPoints(200, 2, 3), o)
			return err
		}},
		{"Delaunay/par", func(o *Options) error {
			o.Engine = EngineParallel
			_, err := Delaunay(RandomPoints(200, 2, 3), o)
			return err
		}},
		{"Delaunay/rounds", func(o *Options) error {
			o.Engine = EngineRounds
			_, err := Delaunay(RandomPoints(200, 2, 3), o)
			return err
		}},
		{"HalfspaceIntersectionDirect", func(o *Options) error {
			_, err := HalfspaceIntersectionDirect(
				append(HalfspaceBoundingSimplex(3), RandomSpherePoints(15, 3, 4)...), o)
			return err
		}},
		{"UnitCircleIntersection", func(o *Options) error {
			_, _, err := UnitCircleIntersection(centers, o)
			return err
		}},
		{"TrapezoidDecomposition", func(o *Options) error {
			_, err := TrapezoidDecomposition(segs, box, o)
			return err
		}},
		{"Hull3DDegenerate", func(o *Options) error {
			_, err := Hull3DDegenerate(RandomSpherePoints(30, 3, 5), o)
			return err
		}},
	}
	for _, r := range runs {
		err := r.run(&Options{Context: ctx})
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", r.name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: context.Canceled lost from the chain: %v", r.name, err)
		}
		if err := r.run(&Options{Workers: -1}); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: Workers=-1: err = %v, want ErrBadOption", r.name, err)
		}
	}
}
