package parhull

import (
	"sort"
	"testing"

	"parhull/internal/baseline"
	"parhull/internal/hull2d"
)

func TestHull2DEnginesAgree(t *testing.T) {
	pts := RandomPoints(500, 2, 1)
	var got [][]int
	for _, eng := range []Engine{EngineSequential, EngineParallel, EngineRounds} {
		res, err := Hull2D(pts, &Options{Engine: eng, Shuffle: true, Seed: 7})
		if err != nil {
			t.Fatalf("engine %d: %v", eng, err)
		}
		vs := append([]int(nil), res.Vertices...)
		sort.Ints(vs)
		got = append(got, vs)
	}
	oracle := baseline.GrahamScan(pts)
	sort.Ints(oracle)
	for i, vs := range got {
		if len(vs) != len(oracle) {
			t.Fatalf("engine %d: %d vertices, oracle %d", i, len(vs), len(oracle))
		}
		for j := range vs {
			if vs[j] != oracle[j] {
				t.Fatalf("engine %d: vertex set differs", i)
			}
		}
	}
}

func TestShuffleMapsBack(t *testing.T) {
	// With and without shuffle, the *set* of hull vertices (as original
	// indices) must be identical.
	pts := RandomSpherePoints(200, 2, 2)
	a, err := Hull2D(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Hull2D(pts, &Options{Shuffle: true, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	as := append([]int(nil), a.Vertices...)
	bs := append([]int(nil), b.Vertices...)
	sort.Ints(as)
	sort.Ints(bs)
	if len(as) != len(bs) {
		t.Fatalf("sizes differ: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatal("vertex sets differ after shuffle mapping")
		}
	}
}

func TestHull3DAndMapKinds(t *testing.T) {
	pts := RandomSpherePoints(150, 3, 3)
	var facets int
	for _, mk := range []MapKind{MapSharded, MapCAS, MapTAS} {
		res, err := Hull3D(pts, &Options{Map: mk, Shuffle: true, Seed: 4})
		if err != nil {
			t.Fatalf("map %d: %v", mk, err)
		}
		if facets == 0 {
			facets = len(res.Facets)
		} else if facets != len(res.Facets) {
			t.Fatalf("map %d: %d facets, want %d", mk, len(res.Facets), facets)
		}
	}
	if _, err := Hull3D(RandomPoints(10, 2, 5), nil); err == nil {
		t.Fatal("Hull3D accepted 2D points")
	}
}

func TestHullD5(t *testing.T) {
	pts := RandomSpherePoints(40, 5, 6)
	res, err := HullD(pts, &Options{Engine: EngineRounds, Shuffle: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds <= 0 || len(res.Facets) == 0 {
		t.Fatalf("bad result: %+v", res.Stats)
	}
	for _, f := range res.Facets {
		if len(f.Vertices) != 5 {
			t.Fatalf("facet with %d vertices in 5D", len(f.Vertices))
		}
	}
}

func TestBadEngine(t *testing.T) {
	if _, err := Hull2D(RandomPoints(10, 2, 1), &Options{Engine: Engine(99)}); err == nil {
		t.Fatal("bad engine accepted")
	}
	if _, err := HullD(RandomPoints(10, 2, 1), &Options{Engine: Engine(99)}); err == nil {
		t.Fatal("bad engine accepted")
	}
}

func TestHalfspaceIntersectionPublic(t *testing.T) {
	normals := append(HalfspaceBoundingSimplex(3), RandomSpherePoints(40, 3, 9)...)
	res, err := HalfspaceIntersection(normals, &Options{Shuffle: true, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) < 4 {
		t.Fatalf("only %d vertices", len(res.Vertices))
	}
	for _, v := range res.Vertices {
		for i, a := range normals {
			dot := 0.0
			for k := range a {
				dot += a[k] * v.Point[k]
			}
			if dot > 1+1e-6 {
				t.Fatalf("vertex %v violates halfspace %d", v.Point, i)
			}
		}
	}
}

func TestUnitCircleIntersectionPublic(t *testing.T) {
	arcs, nonempty, err := UnitCircleIntersection([]Point{{-0.5, 0}, {0.5, 0}}, nil)
	if err != nil || !nonempty || len(arcs) != 2 {
		t.Fatalf("lens: arcs=%d nonempty=%v err=%v", len(arcs), nonempty, err)
	}
	if _, _, err := UnitCircleIntersection([]Point{{0, 0}, {0, 0}}, nil); err == nil {
		t.Fatal("duplicate centers accepted")
	}
}

// label converts a directed edge of the Figure 1 trace to the paper's
// notation, e.g. "v-c".
func label(e [2]int) string {
	return Figure1Labels[e[0]] + "-" + Figure1Labels[e[1]]
}

// TestFigure1Trace replays the paper's Figure 1 example and asserts the
// exact round-by-round behaviour described in Section 5.3 (experiment E6).
func TestFigure1Trace(t *testing.T) {
	pts, base := Figure1Points()
	res, rounds, err := Hull2DTrace(pts, base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 3 || len(rounds) != 3 {
		t.Fatalf("rounds = %d, want 3 (paper: (a)->(b)->(c)->(d))", res.Stats.Rounds)
	}
	// Final hull: u-v, v-c, c-z, z-t, t-u.
	wantHull := []int{0, 1, 9, 5, 6}
	if len(res.Vertices) != len(wantHull) {
		t.Fatalf("hull %v, want %v", res.Vertices, wantHull)
	}
	for i := range wantHull {
		if res.Vertices[i] != wantHull[i] {
			t.Fatalf("hull %v, want %v", res.Vertices, wantHull)
		}
	}

	type ev struct{ kind, a, b string }
	collect := func(r TraceRound) []ev {
		var out []ev
		for _, e := range r.Events {
			out = append(out, ev{e.Kind.String(), label(e.A), label(e.B)})
		}
		return out
	}
	want := [][]ev{
		{ // Round 1 (Figure 1(a) -> 1(b)).
			{"created", "v-c", "v-w"}, // v-c replaces v-w
			{"created", "w-b", "w-x"},
			{"created", "x-a", "x-y"},
			{"created", "a-z", "y-z"},
			{"buried", "x-y", "y-z"}, // corner at y: both see a
			{"final", "z-t", "t-u"},
			{"final", "t-u", "u-v"},
		},
		{ // Round 2 (Figure 1(b) -> 1(c)).
			{"created", "b-a", "x-a"},
			{"created", "c-z", "a-z"},
			{"buried", "w-b", "v-w"},
			{"buried", "x-a", "w-x"},
			{"final", "v-c", "u-v"},
		},
		{ // Round 3 (Figure 1(c) -> 1(d)).
			{"buried", "b-a", "a-z"},
			{"buried", "b-a", "w-b"}, // the corner w-b-a of the paper
			{"final", "c-z", "v-c"},
			{"final", "c-z", "z-t"},
		},
	}
	for r := range want {
		got := collect(rounds[r])
		if len(got) != len(want[r]) {
			t.Fatalf("round %d: %d events %v, want %d %v", r+1, len(got), got, len(want[r]), want[r])
		}
		// Events within a round are canonically sorted by ByRound; compare
		// as sets to stay independent of tie-breaking.
		used := make([]bool, len(want[r]))
		for _, g := range got {
			found := false
			for i, w := range want[r] {
				if !used[i] && g == w {
					used[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("round %d: unexpected event %v (all: %v)", r+1, g, got)
			}
		}
	}
	// The paper's depth observation: every new facet depends on at most two
	// earlier ones, so three rounds suffice for this example.
	if res.Stats.MaxDepth > 3 {
		t.Fatalf("max depth %d", res.Stats.MaxDepth)
	}
}

func TestFigure1VisibilityPattern(t *testing.T) {
	// The generator must match the paper's conflict sets:
	// C(v-w)={c}, C(w-x)={b,c}, C(x-y)={a,b,c}, C(y-z)={a,c}, others empty.
	pts, base := Figure1Points()
	_ = base
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 0}}
	want := map[string][]string{
		"v-w": {"c"}, "w-x": {"b", "c"}, "x-y": {"a", "b", "c"}, "y-z": {"a", "c"},
		"u-v": {}, "z-t": {}, "t-u": {},
	}
	for _, e := range edges {
		var vis []string
		for p := 7; p <= 9; p++ {
			// visible = strictly right of the directed edge.
			ax, ay := pts[e[0]][0], pts[e[0]][1]
			bx, by := pts[e[1]][0], pts[e[1]][1]
			cx, cy := pts[p][0], pts[p][1]
			if (bx-ax)*(cy-ay)-(by-ay)*(cx-ax) < 0 {
				vis = append(vis, Figure1Labels[p])
			}
		}
		key := label(e)
		w := want[key]
		if len(vis) != len(w) {
			t.Fatalf("edge %s: visible %v, want %v", key, vis, w)
		}
		for i := range w {
			if vis[i] != w[i] {
				t.Fatalf("edge %s: visible %v, want %v", key, vis, w)
			}
		}
	}
}

func TestDelaunayPublic(t *testing.T) {
	pts := RandomPoints(200, 2, 11)
	res, err := Delaunay(pts, &Options{Shuffle: true, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triangles) < 200 {
		t.Fatalf("only %d triangles", len(res.Triangles))
	}
	// Shuffle must map indices back: all triangle vertices valid original
	// indices, and the triangulation must match the unshuffled run as a set.
	unshuffled, err := Delaunay(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	canon := func(tr [3]int) [3]int {
		sort.Ints(tr[:])
		return tr
	}
	set := map[[3]int]bool{}
	for _, tr := range unshuffled.Triangles {
		set[canon(tr)] = true
	}
	// The Delaunay triangulation is order-independent (general position),
	// up to the bounding-triangle boundary artifact; require near-total
	// agreement.
	common := 0
	for _, tr := range res.Triangles {
		if set[canon(tr)] {
			common++
		}
	}
	if common*10 < 9*len(res.Triangles) {
		t.Fatalf("only %d/%d triangles agree across insertion orders", common, len(res.Triangles))
	}
	if _, err := Delaunay([]Point{{0, 0}, {0, 0}}, nil); err == nil {
		t.Fatal("duplicates accepted")
	}
}

// TestFigure1AllEngines: the three engines agree on the Figure 1 input when
// seeded with the 7-gon (base > 3 exercises SeqFrom and Options.Base).
func TestFigure1AllEngines(t *testing.T) {
	pts, base := Figure1Points()
	want := []int{0, 1, 9, 5, 6}
	check := func(name string, got []int32) {
		if len(got) != len(want) {
			t.Fatalf("%s: hull %v, want %v", name, got, want)
		}
		for i := range want {
			if int(got[i]) != want[i] {
				t.Fatalf("%s: hull %v, want %v", name, got, want)
			}
		}
	}
	seq, err := hull2d.SeqFrom(pts, base, true)
	if err != nil {
		t.Fatal(err)
	}
	check("seq", seq.Vertices)
	par, err := hull2d.Par(pts, &hull2d.Options{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	check("par", par.Vertices)
	if seq.Stats.VisibilityTests != par.Stats.VisibilityTests {
		t.Fatalf("vtests differ: seq %d par %d", seq.Stats.VisibilityTests, par.Stats.VisibilityTests)
	}
	if seq.Stats.MaxDepth != 2 || par.Stats.MaxDepth != 2 {
		t.Fatalf("depth: seq %d par %d, want 2", seq.Stats.MaxDepth, par.Stats.MaxDepth)
	}
}

func TestMapCapacityOption(t *testing.T) {
	pts := RandomSpherePoints(300, 2, 13)
	res, err := Hull2D(pts, &Options{Map: MapCAS, MapCapacity: 4 * len(pts)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.HullSize == 0 {
		t.Fatal("empty hull")
	}
}

func TestRandomPointsHelpers(t *testing.T) {
	a := RandomPoints(10, 3, 1)
	b := RandomPoints(10, 3, 1)
	for i := range a {
		if !pointsEqual(a[i], b[i]) {
			t.Fatal("RandomPoints not deterministic")
		}
	}
	s := RandomSpherePoints(10, 4, 2)
	for _, p := range s {
		if len(p) != 4 {
			t.Fatal("wrong dimension")
		}
	}
}

func pointsEqual(a, b Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHull3DDegeneratePublic(t *testing.T) {
	// The unit cube with face centers: still 6 square faces.
	var pts []Point
	for x := 0.0; x <= 1; x++ {
		for y := 0.0; y <= 1; y++ {
			for z := 0.0; z <= 1; z++ {
				pts = append(pts, Point{x, y, z})
			}
		}
	}
	pts = append(pts, Point{0.5, 0.5, 0}, Point{0.5, 0.5, 1})
	faces, err := Hull3DDegenerate(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(faces) != 6 {
		t.Fatalf("%d faces, want 6", len(faces))
	}
	for _, f := range faces {
		if len(f.Vertices) != 4 {
			t.Fatalf("face %v not a square", f.Vertices)
		}
	}
	if _, err := Hull3DDegenerate([]Point{{0, 0, 0}, {0, 0, 0}, {1, 0, 0}}, nil); err == nil {
		t.Fatal("duplicates accepted")
	}
}
