package parhull

import (
	"context"
	"errors"
	"fmt"

	"parhull/internal/circles"
	"parhull/internal/conmap"
	"parhull/internal/corner"
	"parhull/internal/delaunay"
	"parhull/internal/geom"
	"parhull/internal/halfspace"
	"parhull/internal/hull2d"
	"parhull/internal/hulld"
	"parhull/internal/sched"
	"parhull/internal/trapezoid"
)

// The public error surface. Every error returned by this package's API
// matches at most one of these sentinels under errors.Is; the wrapped chain
// keeps the engine-level detail (which predicate failed, which table filled,
// which worker panicked). Internal sentinel types never escape unwrapped.
var (
	// ErrDegenerate reports input the selected engine cannot handle: fewer
	// points than the base simplex, collinear/coplanar/affinely-dependent
	// point sets for the general-position engines (Section 5), or inputs
	// beyond even the corner space of Section 6 (all points collinear, all
	// points coplanar).
	ErrDegenerate = errors.New("parhull: degenerate input")
	// ErrBadCoordinate reports a NaN or infinite input coordinate.
	ErrBadCoordinate = errors.New("parhull: bad coordinate")
	// ErrCapacity reports that a fixed-capacity ridge table (MapCAS/MapTAS)
	// ran out of slots and the degradation ladder was disabled
	// (Options.NoMapFallback) or itself exhausted. With the ladder enabled
	// this error is handled internally: the run retries with a doubled table
	// and finally falls back to MapSharded (see Stats.CapacityRetries and
	// Stats.MapFallback).
	ErrCapacity = errors.New("parhull: ridge table capacity exhausted")
	// ErrCanceled reports that Options.Context was canceled or timed out
	// before the construction finished. errors.Is also matches the original
	// context.Canceled / context.DeadlineExceeded, which stay in the chain.
	ErrCanceled = errors.New("parhull: construction canceled")
	// ErrBadOption reports an invalid Options field (e.g. a negative
	// MapCapacity).
	ErrBadOption = errors.New("parhull: invalid option")
)

// wrapErr maps an engine-level error onto the public sentinel it belongs to,
// keeping the original chain intact (errors.Is matches both the public and
// the internal form). Unknown errors pass through unchanged.
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	switch {
	case errors.Is(err, ErrDegenerate), errors.Is(err, ErrBadCoordinate),
		errors.Is(err, ErrCapacity), errors.Is(err, ErrCanceled), errors.Is(err, ErrBadOption):
		return err // already public (a re-wrapped ladder retry, say)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	case errors.Is(err, geom.ErrBadCoordinate):
		return fmt.Errorf("%w: %w", ErrBadCoordinate, err)
	case errors.Is(err, conmap.ErrCapacity):
		return fmt.Errorf("%w: %w", ErrCapacity, err)
	case errors.Is(err, hull2d.ErrDegenerate), errors.Is(err, hulld.ErrDegenerate),
		errors.Is(err, delaunay.ErrDegenerate), errors.Is(err, corner.ErrDegenerate),
		errors.Is(err, circles.ErrDegenerate), errors.Is(err, halfspace.ErrDegenerate),
		errors.Is(err, trapezoid.ErrDegenerate):
		return fmt.Errorf("%w: %w", ErrDegenerate, err)
	}
	return err
}

// guard is deferred by every public entry point: a panic that escapes the
// engines' own containment (or fires on the calling goroutine, outside any
// worker pool) is converted into an error instead of crashing the caller.
// The contained panic's stack survives in the error text.
func guard(errp *error) {
	if r := recover(); r != nil {
		*errp = fmt.Errorf("parhull: contained panic: %w", sched.AsError(r))
	}
}

// validate checks the Options fields that can be statically wrong.
func (o *Options) validate() error {
	if o == nil {
		return nil
	}
	if o.MapCapacity < 0 {
		return fmt.Errorf("%w: MapCapacity %d is negative", ErrBadOption, o.MapCapacity)
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: Workers %d is negative", ErrBadOption, o.Workers)
	}
	if o.PreHull < PreHullAuto || o.PreHull > PreHullOff {
		return fmt.Errorf("%w: unknown PreHull mode %d", ErrBadOption, o.PreHull)
	}
	return nil
}
