package parhull

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
)

// facetKeys canonicalizes a public d-dimensional result to a facet multiset
// over original input indices.
func facetKeys(res *HullDResult) map[string]int {
	m := make(map[string]int, len(res.Facets))
	for _, f := range res.Facets {
		vs := append([]int(nil), f.Vertices...)
		sort.Ints(vs)
		m[fmt.Sprint(vs)]++
	}
	return m
}

// TestPreHullEquivalencePublic is the end-to-end exactness property of the
// pre-hull reduction: with the reduction forced on, every engine must report
// the identical hull — facet for facet, in original input indices — as the
// direct (PreHullOff) run. This is the public-API form of the invariant the
// internal/prehull tests pin per block.
func TestPreHullEquivalencePublic(t *testing.T) {
	pts := RandomPoints(5000, 3, 11)
	base, err := HullD(pts, &Options{Engine: EngineSequential, Shuffle: true, Seed: 3, PreHull: PreHullOff})
	if err != nil {
		t.Fatal(err)
	}
	want := facetKeys(base)
	wantV := sortedVertices(base.Vertices)
	for _, eng := range []Engine{EngineSequential, EngineParallel, EngineRounds} {
		for _, sk := range []SchedKind{SchedSteal, SchedGroup} {
			if eng != EngineParallel && sk == SchedGroup {
				continue // Sched only matters for EngineParallel
			}
			o := &Options{Engine: eng, Sched: sk, Shuffle: true, Seed: 3, PreHull: PreHullOn}
			res, err := HullD(pts, o)
			if err != nil {
				t.Fatalf("engine=%d sched=%d: %v", eng, sk, err)
			}
			if res.Stats.PreHullKept == 0 || res.Stats.PreHullKept >= len(pts) {
				t.Fatalf("engine=%d: PreHullKept = %d, expected a real reduction", eng, res.Stats.PreHullKept)
			}
			if res.Stats.PreHullBlocks < 2 {
				t.Fatalf("engine=%d: PreHullBlocks = %d", eng, res.Stats.PreHullBlocks)
			}
			got := facetKeys(res)
			if len(got) != len(want) {
				t.Fatalf("engine=%d sched=%d: %d facets vs %d direct", eng, sk, len(got), len(want))
			}
			for k, c := range want {
				if got[k] != c {
					t.Fatalf("engine=%d sched=%d: facet %s multiplicity %d vs %d", eng, sk, k, got[k], c)
				}
			}
			gotV := sortedVertices(res.Vertices)
			if fmt.Sprint(gotV) != fmt.Sprint(wantV) {
				t.Fatalf("engine=%d sched=%d: vertex sets differ", eng, sk)
			}
		}
	}
}

// TestPreHull2DEquivalencePublic is the 2D version, including the Z-order
// partitioning ablation: the hull vertex set must be invariant under
// pre-hull on/off and spatial/contiguous blocking.
func TestPreHull2DEquivalencePublic(t *testing.T) {
	pts := RandomPoints(6000, 2, 12)
	base, err := Hull2D(pts, &Options{Shuffle: true, Seed: 5, PreHull: PreHullOff})
	if err != nil {
		t.Fatal(err)
	}
	want := sortedVertices(base.Vertices)
	for _, noZ := range []bool{false, true} {
		res, err := Hull2D(pts, &Options{Shuffle: true, Seed: 5, PreHull: PreHullOn, NoPreHullZOrder: noZ})
		if err != nil {
			t.Fatalf("noZ=%v: %v", noZ, err)
		}
		if res.Stats.PreHullKept == 0 || res.Stats.PreHullKept >= len(pts)/2 {
			t.Fatalf("noZ=%v: PreHullKept = %d of %d, expected a strong reduction", noZ, res.Stats.PreHullKept, len(pts))
		}
		got := sortedVertices(res.Vertices)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("noZ=%v: vertices %v, want %v", noZ, got, want)
		}
	}
}

// TestPreHullAutoHeuristic checks both sides of the Auto probe: a large
// uniform ball (interior-heavy) must trigger the reduction, a same-size
// sphere (every point a hull vertex) must skip it.
func TestPreHullAutoHeuristic(t *testing.T) {
	ball := RandomPoints(20000, 3, 13)
	res, err := HullD(ball, &Options{Engine: EngineSequential, Shuffle: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PreHullKept == 0 {
		t.Fatal("auto mode skipped the reduction on a uniform ball")
	}
	if res.Stats.PreHullKept >= len(ball)/2 {
		t.Fatalf("ball barely reduced: kept %d of %d", res.Stats.PreHullKept, len(ball))
	}

	sphere := RandomSpherePoints(20000, 3, 13)
	res, err = HullD(sphere, &Options{Engine: EngineSequential, Shuffle: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PreHullKept != 0 || res.Stats.PreHullBlocks != 0 {
		t.Fatalf("auto mode ran the reduction on a sphere (kept %d, blocks %d)",
			res.Stats.PreHullKept, res.Stats.PreHullBlocks)
	}
	// Below the size floor the probe never runs, whatever the shape.
	small := RandomPoints(2000, 3, 13)
	res, err = HullD(small, &Options{Engine: EngineSequential})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PreHullKept != 0 {
		t.Fatalf("auto mode reduced a %d-point input below the floor", len(small))
	}
}

// TestPreHullWorkersOption pins the Theorem 5.5 side of Options.Workers: the
// pool width changes the schedule, never the hull.
func TestPreHullWorkersOption(t *testing.T) {
	pts := RandomPoints(4000, 3, 14)
	var want map[string]int
	for _, w := range []int{0, 1, 3, 8} {
		res, err := HullD(pts, &Options{Shuffle: true, Seed: 9, PreHull: PreHullOn, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := facetKeys(res)
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d facets vs %d", w, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("workers=%d: facet multiset differs", w)
			}
		}
	}
}

// TestPreHullCancelPublic checks the typed-error contract through the
// pre-hull path: an already-canceled context surfaces as ErrCanceled before
// any block sub-hull runs.
func TestPreHullCancelPublic(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts := RandomPoints(4000, 3, 15)
	_, err := HullD(pts, &Options{PreHull: PreHullOn, Context: ctx})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

// TestPreHullCullPublic drives an input large enough for the stage-1
// interior cull (the block-stage-only tests above sit below its size floor):
// the reduction must get dramatically stronger — a few percent of the input
// surviving — while the reported hull stays facet-identical to a direct run.
func TestPreHullCullPublic(t *testing.T) {
	pts := RandomPoints(30000, 3, 16)
	base, err := HullD(pts, &Options{Engine: EngineSequential, Shuffle: true, Seed: 2, PreHull: PreHullOff})
	if err != nil {
		t.Fatal(err)
	}
	res, err := HullD(pts, &Options{Shuffle: true, Seed: 2, PreHull: PreHullOn})
	if err != nil {
		t.Fatal(err)
	}
	if kept := res.Stats.PreHullKept; kept == 0 || kept > len(pts)/5 {
		t.Fatalf("PreHullKept = %d of %d, expected the interior cull to engage", kept, len(pts))
	}
	want, got := facetKeys(base), facetKeys(res)
	if len(got) != len(want) {
		t.Fatalf("%d facets vs %d direct", len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("facet %s multiplicity %d vs %d", k, got[k], c)
		}
	}
}
