package parhull

import (
	"fmt"
	"sort"

	"parhull/internal/conmap"
	"parhull/internal/engine"
	"parhull/internal/faultinject"
	"parhull/internal/geom"
	"parhull/internal/hull2d"
	"parhull/internal/hulld"
	"parhull/internal/pointgen"
	"parhull/internal/prehull"
)

// Builder runs repeated hull constructions on retained state. A one-shot call
// (Hull2D, HullD) allocates its worker pool, arenas, ridge table, conflict
// buffers, and output slices per call; a Builder allocates them on the first
// Build and recycles them on every subsequent one, so the steady-state cost
// of a construction is the geometry, not the scaffolding. Inputs may vary in
// size and dimension between calls — every pooled buffer grows to the
// high-water mark and stays there.
//
// The output of a Build on a Builder is identical to a fresh one-shot call
// with the same Options and input — same facets, same vertices, same stats —
// the pooling changes where the bytes live, never what they say. (The
// one-shot entry points are themselves thin NewBuilder/Build/Close wrappers.)
//
// Contract:
//
//   - A Builder is single-goroutine: at most one Build at a time.
//   - Each Build invalidates the previous result obtained from the same
//     Builder — facet slices and vertex slices are recycled in place. Callers
//     that need two results alive at once use two Builders (or copy).
//   - A Build that fails — including a canceled Context or a contained panic —
//     leaves the Builder fully reusable; recycled state is rewound at the
//     start of the next Build, not the end of the failed one.
//   - Close retires the retained worker pools. The last result stays valid;
//     any later Build returns an error.
//
// The Options pointer is retained, not copied: the caller may adjust fields
// (Context, Workers, Shuffle, ...) between builds, never during one.
type Builder struct {
	opt *Options

	ruD *hulld.Reuse
	ru2 *hull2d.Reuse

	mapsD mapCache[*hulld.Facet]
	maps2 mapCache[*hull2d.Facet]

	// shuffle and pre-hull buffers, grow-only.
	order   []int
	work    []Point
	phOrder []int
	phPts   []Point
	ph      prehull.Scratch

	// output buffers: facet headers, one flat backing array carved into
	// per-facet vertex slices, and the hull vertex list.
	facets []Facet
	flat   []int
	vertsD []int
	resD   HullDResult
	verts2 []int
	res2   Hull2DResult

	closed bool
}

// NewBuilder returns a Builder for repeated constructions under opt (nil is
// the zero default, as in the one-shot calls). All pooled state is created
// lazily by the first Build.
func NewBuilder(opt *Options) *Builder {
	return &Builder{opt: opt.or(), ruD: hulld.NewReuse(), ru2: hull2d.NewReuse()}
}

var errBuilderClosed = fmt.Errorf("%w: Builder used after Close", ErrBadOption)

// Reset rewinds the pooled engine state immediately, invalidating the
// previous result while keeping every retained buffer for the next Build.
// Optional — Build rewinds lazily anyway; Reset exists for callers that want
// the previous result's memory recycled eagerly.
func (b *Builder) Reset() {
	b.ruD.Reset()
	b.ru2.Reset()
}

// Close retires the retained worker pools. The Builder must not Build again
// (it returns an error); the last result remains valid. Close is idempotent.
func (b *Builder) Close() {
	if b == nil || b.closed {
		return
	}
	b.closed = true
	b.ruD.Close()
	b.ru2.Close()
}

// perm is Options.perm into the Builder's retained order buffer.
func (b *Builder) perm(n int) []int {
	if !b.opt.Shuffle {
		return nil
	}
	b.order = pointgen.PermInto(pointgen.NewRNG(b.opt.Seed), n, b.order)
	return b.order
}

// shuffled is applyShuffle into the Builder's retained point buffer.
func (b *Builder) shuffled(pts []Point, order []int) []Point {
	if order == nil {
		return pts
	}
	b.work = pointgen.ApplyPermInto(pts, order, b.work)
	return b.work
}

// maybePreHull is Options.maybePreHull on the Builder's retained pre-hull
// scratch and composition buffers.
func (b *Builder) maybePreHull(work []Point, order []int, d int) ([]Point, []int, int, int, error) {
	o := b.opt
	if o.PreHull == PreHullOff || d < 2 || len(work) == 0 {
		return work, order, 0, 0, nil
	}
	if err := geom.ValidateCloud(work, d); err != nil {
		return nil, nil, 0, 0, err
	}
	if o.PreHull == PreHullAuto && !o.preHullWorthIt(work, d) {
		return work, order, 0, 0, nil
	}
	red, err := prehull.Reduce(work, prehull.Config{
		Workers:      o.Workers,
		ZOrder:       !o.NoPreHullZOrder,
		NoPlaneCache: o.NoPlaneCache,
		Ctx:          o.Context,
		Inject:       o.inject,
		Scratch:      &b.ph,
	})
	if err != nil {
		return nil, nil, 0, 0, err
	}
	if red.Keep == nil {
		return work, order, 0, 0, nil // too small to block up: run direct
	}
	if cap(b.phOrder) < len(red.Keep) {
		b.phOrder = make([]int, len(red.Keep))
	}
	newOrder := b.phOrder[:len(red.Keep)]
	b.phOrder = newOrder
	for i, k := range red.Keep {
		newOrder[i] = mapBack(k, order)
	}
	b.phPts = prehull.GatherInto(b.phPts, work, red.Keep)
	return b.phPts, newOrder, red.Blocks, len(red.Keep), nil
}

// Build computes the convex hull in the dimension given by the points — the
// reusable HullD. See HullD for semantics and the error surface; see the
// Builder type for the recycling contract.
func (b *Builder) Build(pts []Point) (out *HullDResult, err error) {
	defer guard(&err)
	if b.closed {
		return nil, errBuilderClosed
	}
	o := b.opt
	if err := o.validate(); err != nil {
		return nil, err
	}
	order := b.perm(len(pts))
	work := b.shuffled(pts, order)
	d := 0
	if len(pts) > 0 {
		d = len(pts[0])
	}
	work, order, phBlocks, phKept, err := b.maybePreHull(work, order, d)
	if err != nil {
		return nil, wrapErr(err)
	}

	var res *hulld.Result
	var retries int
	var fellBack bool
	switch o.Engine {
	case EngineSequential:
		res, err = hulld.SeqCtx(o.Context, o.inject, work, o.NoPlaneCache)
	case EngineParallel, EngineRounds:
		run := func(m conmap.RidgeMap[*hulld.Facet]) (*hulld.Result, error) {
			ho := &hulld.Options{
				Map:           m,
				Sched:         o.schedKind(),
				GroupLimit:    o.GroupLimit,
				Workers:       o.Workers,
				NoCounters:    o.NoCounters,
				FilterGrain:   o.FilterGrain,
				NoPlaneCache:  o.NoPlaneCache,
				NoBatchFilter: o.NoBatchFilter,
				NoSoALayout:   o.NoSoALayout,
				Ctx:           o.Context,
				Inject:        o.inject,
			}
			if o.Engine == EngineRounds {
				return hulld.Rounds(work, ho)
			}
			ho.Reuse = b.ruD
			return hulld.Par(work, ho)
		}
		res, retries, fellBack, err = ladder(o,
			o.capacity(engine.FixedMapCapacity(len(work), d)),
			func(c int) conmap.RidgeMap[*hulld.Facet] { return b.mapsD.fixedFor(o.Map, c, o.inject) },
			func() conmap.RidgeMap[*hulld.Facet] {
				return b.mapsD.shardedFor(o.capacity(engine.DefaultMapCapacity(len(work), d)))
			},
			run)
	default:
		return nil, errBadEngine
	}
	if err != nil {
		return nil, wrapErr(err)
	}
	res.Stats.CapacityRetries = retries
	res.Stats.MapFallback = fellBack
	res.Stats.PreHullBlocks = phBlocks
	res.Stats.PreHullKept = phKept

	// Assemble the public result into the retained buffers: all per-facet
	// vertex slices are carved (capacity-clamped) from one flat backing array,
	// so the whole facet list costs two grow-only buffers instead of one
	// allocation per facet.
	need := 0
	for _, f := range res.Facets {
		need += len(f.Verts)
	}
	if cap(b.flat) < need {
		b.flat = make([]int, 0, need)
	}
	flat := b.flat[:0]
	if cap(b.facets) < len(res.Facets) {
		b.facets = make([]Facet, 0, len(res.Facets))
	}
	facets := b.facets[:0]
	for _, f := range res.Facets {
		start := len(flat)
		for _, v := range f.Verts {
			flat = append(flat, mapBack(v, order))
		}
		facets = append(facets, Facet{Vertices: flat[start:len(flat):len(flat)]})
	}
	b.flat, b.facets = flat, facets
	if cap(b.vertsD) < len(res.Vertices) {
		b.vertsD = make([]int, 0, len(res.Vertices))
	}
	verts := b.vertsD[:0]
	for _, v := range res.Vertices {
		verts = append(verts, mapBack(v, order))
	}
	if order != nil {
		// The engine sorts vertices in its own index space; mapping back
		// through a shuffle or pre-hull permutation breaks that, and the
		// public contract promises sorted caller indices.
		sort.Ints(verts)
	}
	b.vertsD = verts
	b.resD = HullDResult{Facets: facets, Vertices: verts, Stats: res.Stats}
	return &b.resD, nil
}

// Build3D is Build with a dimension check — the reusable Hull3D.
func (b *Builder) Build3D(pts []Point) (*HullDResult, error) {
	if len(pts) > 0 && len(pts[0]) != 3 {
		return nil, fmt.Errorf("%w: Build3D needs 3D points, got dimension %d", ErrBadOption, len(pts[0]))
	}
	return b.Build(pts)
}

// Build2D computes the convex hull of 2D points — the reusable Hull2D. See
// Hull2D for semantics and the error surface; see the Builder type for the
// recycling contract.
func (b *Builder) Build2D(pts []Point) (out *Hull2DResult, err error) {
	defer guard(&err)
	if b.closed {
		return nil, errBuilderClosed
	}
	o := b.opt
	if err := o.validate(); err != nil {
		return nil, err
	}
	order := b.perm(len(pts))
	work := b.shuffled(pts, order)
	work, order, phBlocks, phKept, err := b.maybePreHull(work, order, 2)
	if err != nil {
		return nil, wrapErr(err)
	}

	var res *hull2d.Result
	var retries int
	var fellBack bool
	switch o.Engine {
	case EngineSequential:
		res, err = hull2d.SeqCtx(o.Context, o.inject, work, o.NoPlaneCache)
	case EngineParallel, EngineRounds:
		run := func(m conmap.RidgeMap[*hull2d.Facet]) (*hull2d.Result, error) {
			ho := &hull2d.Options{
				Map:           m,
				Sched:         o.schedKind(),
				GroupLimit:    o.GroupLimit,
				Workers:       o.Workers,
				NoCounters:    o.NoCounters,
				FilterGrain:   o.FilterGrain,
				NoPlaneCache:  o.NoPlaneCache,
				NoBatchFilter: o.NoBatchFilter,
				NoSoALayout:   o.NoSoALayout,
				Ctx:           o.Context,
				Inject:        o.inject,
			}
			if o.Engine == EngineRounds {
				r, _, e := hull2d.Rounds(work, ho)
				return r, e
			}
			ho.Reuse = b.ru2
			return hull2d.Par(work, ho)
		}
		res, retries, fellBack, err = ladder(o,
			o.capacity(engine.FixedMapCapacity(len(work), 0)),
			func(c int) conmap.RidgeMap[*hull2d.Facet] { return b.maps2.fixedFor(o.Map, c, o.inject) },
			func() conmap.RidgeMap[*hull2d.Facet] {
				return b.maps2.shardedFor(o.capacity(engine.DefaultMapCapacity(len(work), 0)))
			},
			run)
	default:
		return nil, errBadEngine
	}
	if err != nil {
		return nil, wrapErr(err)
	}
	res.Stats.CapacityRetries = retries
	res.Stats.MapFallback = fellBack
	res.Stats.PreHullBlocks = phBlocks
	res.Stats.PreHullKept = phKept
	if cap(b.verts2) < len(res.Vertices) {
		b.verts2 = make([]int, 0, len(res.Vertices))
	}
	verts := b.verts2[:0]
	for _, v := range res.Vertices {
		verts = append(verts, mapBack(v, order))
	}
	b.verts2 = verts
	b.res2 = Hull2DResult{Vertices: verts, Stats: res.Stats}
	return &b.res2, nil
}

// mapCache retains the ridge tables of Algorithm 3 across builds: the
// growable sharded map is re-zeroed shard-by-shard (buckets kept), and the
// fixed CAS/TAS tables are kept at their high-water capacity — including a
// table the degradation ladder doubled, so a Builder that once climbed the
// ladder starts every later build on the larger table it ended on.
type mapCache[V comparable] struct {
	sharded *conmap.ShardedMap[V]
	cas     *conmap.CASMap[V]
	casCap  int
	tas     *conmap.TASMap[V]
	tasCap  int
}

func (c *mapCache[V]) shardedFor(expected int) conmap.RidgeMap[V] {
	if c.sharded == nil {
		c.sharded = conmap.NewShardedMap[V](expected)
	} else {
		c.sharded.Reset()
	}
	return c.sharded
}

func (c *mapCache[V]) fixedFor(kind MapKind, expected int, inj *faultinject.Injector) conmap.RidgeMap[V] {
	if kind == MapTAS {
		if c.tas == nil || expected > c.tasCap {
			c.tas = conmap.NewTASMap[V](expected)
			c.tasCap = expected
		} else {
			c.tas.Reset()
		}
		return c.tas.Inject(inj)
	}
	if c.cas == nil || expected > c.casCap {
		c.cas = conmap.NewCASMap[V](expected)
		c.casCap = expected
	} else {
		c.cas.Reset()
	}
	return c.cas.Inject(inj)
}
