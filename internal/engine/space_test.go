package engine_test

import (
	"testing"

	"parhull/internal/core"
	"parhull/internal/corner"
	"parhull/internal/engine"
	"parhull/internal/geom"
	"parhull/internal/pointgen"
)

// spaceFixtures are the corner-space inputs the acceptance tests cover:
// fully degenerate (cube: every face a coplanar square), degenerate with
// extra in-face and interior points, and general position for contrast.
func spaceFixtures(t *testing.T) map[string][]geom.Point {
	t.Helper()
	withExtras := append(pointgen.Grid3D(2), geom.Point{0.5, 0.5, 0}, geom.Point{0.5, 0, 0.5})
	return map[string][]geom.Point{
		"cube":          pointgen.Grid3D(2),
		"cube+faceMids": withExtras,
		"grid3":         pointgen.Grid3D(3)[:14], // coplanar clusters + interior points
		"sphere12":      pointgen.OnSphere(pointgen.NewRNG(7), 12, 3),
	}
}

// TestSpaceRoundsMatchesCore checks the tentpole acceptance criterion: the
// generic rounds engine's final active set over the corner space equals the
// brute-force core path's T(X) on degenerate fixtures, and it creates
// exactly the configurations that ever activate (the simulator's node set).
func TestSpaceRoundsMatchesCore(t *testing.T) {
	for name, pts := range spaceFixtures(t) {
		t.Run(name, func(t *testing.T) {
			s, err := corner.NewSpace(pts)
			if err != nil {
				t.Fatalf("NewSpace: %v", err)
			}
			all := make([]int, len(pts))
			for i := range all {
				all[i] = i
			}
			res, err := engine.SpaceRounds(s, all)
			if err != nil {
				t.Fatalf("SpaceRounds: %v", err)
			}
			want := core.Active(s, all)
			if len(res.Alive) != len(want) {
				t.Fatalf("alive set size = %d, core.Active = %d", len(res.Alive), len(want))
			}
			for i := range want {
				if res.Alive[i] != want[i] {
					t.Fatalf("alive[%d] = %d, want %d", i, res.Alive[i], want[i])
				}
			}
			// SpaceRounds creates exactly the configurations active at some
			// prefix containing the base (unlike core.Simulate's node list,
			// which also counts transient activations inside the base prefix
			// that the engines never build).
			everActive := map[int]bool{}
			for j := s.BaseSize(); j <= len(all); j++ {
				for _, c := range core.Active(s, all[:j]) {
					everActive[c] = true
				}
			}
			if res.Created != len(everActive) {
				t.Errorf("created %d configurations, %d are ever active past the base", res.Created, len(everActive))
			}
			if res.Rounds <= 0 || len(res.Widths) != res.Rounds {
				t.Errorf("rounds = %d with %d widths", res.Rounds, len(res.Widths))
			}
		})
	}
}

// TestSpaceRoundsFaces checks the full degenerate-3D pipeline: the faces
// reconstructed from the engine's active set equal the ones from the core
// path (cube faces are the 6 squares).
func TestSpaceRoundsFaces(t *testing.T) {
	pts := pointgen.Grid3D(2)
	s, err := corner.NewSpace(pts)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, len(pts))
	for i := range all {
		all[i] = i
	}
	res, err := engine.SpaceRounds(s, all)
	if err != nil {
		t.Fatal(err)
	}
	faces, err := corner.Faces(s, res.Alive)
	if err != nil {
		t.Fatal(err)
	}
	if len(faces) != 6 {
		t.Fatalf("cube has %d faces, want 6", len(faces))
	}
	for _, f := range faces {
		if len(f.Vertices) != 4 {
			t.Errorf("cube face %v is not a square", f.Vertices)
		}
	}
}

// TestSpaceRoundsValidatesOrder covers the order validation paths.
func TestSpaceRoundsValidatesOrder(t *testing.T) {
	pts := pointgen.OnSphere(pointgen.NewRNG(3), 8, 3)
	s, err := corner.NewSpace(pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.SpaceRounds(s, []int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := engine.SpaceRounds(s, []int{0, 1, 2, 2, 3}); err == nil {
		t.Error("duplicate object accepted")
	}
	if _, err := engine.SpaceRounds(s, []int{0, 1, 2, 99}); err == nil {
		t.Error("out-of-range object accepted")
	}
}
