package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"parhull/internal/core"
	"parhull/internal/faultinject"
	"parhull/internal/sched"
)

// ConflictScanner is an optional batch extension of core.Space — the
// configuration-space analogue of the kernels' batch visibility filter
// (conflict.Filter). FirstConflict returns the smallest index r in
// [0, len(order)) with InConflict(c, order[r]), or len(order) when no object
// of order conflicts with configuration c. Implementations hoist the
// per-configuration decode (defining-set lookup, coordinate loads) out of
// the per-object loop, which the InConflict signature cannot express.
// SpaceRounds uses it when present and falls back to scanning InConflict
// otherwise, so spaces without a batch scan keep working.
type ConflictScanner interface {
	FirstConflict(c int, order []int) int
}

// PeakEnumerator is an optional extension of core.Space that replaces
// SpaceRounds' upfront O(NumConfigs) peak bucketing with demand-driven
// enumeration. EnumeratePeak(x, below, emit) must call emit(c) exactly once
// for every configuration c such that x is in Defining(c) and below(o) holds
// for every other defining object o of c — the configurations whose defining
// set "peaks" at x when below selects the earlier-inserted objects.
//
// Contract:
//
//   - A configuration with an empty defining set can never be emitted, so a
//     space containing such configurations (e.g. trapezoid's outer box cell)
//     must NOT implement this interface; the eager bucketing handles it.
//   - EnumeratePeak must be safe for concurrent use: SpaceRounds calls it
//     from parallel round tasks with distinct x.
//   - below is pure and cheap (an array lookup); implementations may call it
//     O(NumObjects) times.
type PeakEnumerator interface {
	EnumeratePeak(x int, below func(o int) bool, emit func(c int))
}

// SpaceResult is the outcome of SpaceRounds.
type SpaceResult struct {
	// Alive is the final active set T(order): every configuration whose
	// defining objects all appear in order and whose conflict set avoids it.
	// Sorted ascending by configuration index.
	Alive []int
	// Created counts configurations ever activated (the |Added| analogue of
	// core.RunGeneric, but without the brute-force search's transient extras:
	// this engine creates exactly the configurations that enter T at some
	// prefix).
	Created int
	// Rounds is the number of synchronous rounds executed — the recursion
	// depth of the dependence structure under the Theorem 5.4 schedule.
	Rounds int
	// Widths[r] is the number of ready tasks in round r+1.
	Widths []int
}

// SpaceRounds runs the parallel incremental construction over an arbitrary
// enumerated configuration space under the round-synchronous schedule,
// inserting the objects of order (a duplicate-free subset of the space's
// objects, base prefix first) in index order. It is the generic route onto
// the driver's rounds schedule: a space needs no kernel, only its core.Space
// enumeration — this is how degenerate 3D inputs get a real engine through
// the corner space of Section 6 (see parhull.Hull3DDegenerate).
//
// Unlike core.RunGeneric — the brute-force Algorithm 1 validator, which
// rediscovers support sets by subset search and rescans the full active set
// every round — this engine exploits the structure the paper's analysis
// rests on:
//
//   - A configuration's fate is decided by one number: the first object (in
//     insertion order) of its conflict set. The configuration activates when
//     its last defining object arrives (provided no earlier object conflicts)
//     and dies exactly when that first conflicting object does. One ascending
//     scan with early exit computes both.
//   - When a pending configuration's pivot x is claimed (first claimant per
//     object, the same one-loser discipline as the ridge table), the claimant
//     creates every configuration whose defining set peaks at x. The peak
//     buckets come from a compact two-pass CSR layout, or — when the space
//     implements PeakEnumerator — on demand, with no upfront pass over the
//     configuration universe at all.
//
// Completeness of claiming: if any configuration activates when object x is
// inserted, some configuration active just before x has x at the head of its
// conflict set, so a task with pivot x exists and the activation is not
// missed. For spaces with the support property (Definition 3.3) that
// configuration is a support member; for trapezoids — whose support sets are
// unbounded in size, the paper's Section 3 caveat — it is any cell of the
// decomposition overlapping the new cell's region, which must have been
// destroyed by (first-conflicting with) x for the region to change. Large
// supports cost work and depth, never completeness.
func SpaceRounds(s core.Space, order []int) (*SpaceResult, error) {
	return SpaceRoundsCtx(nil, s, order)
}

// SpaceRoundsCtx is SpaceRounds with cooperative cancellation: a non-nil ctx
// is checked at round-task granularity and the run returns ctx.Err() with all
// round workers joined. Panics escaping the space's callbacks are contained
// into a typed *sched.PanicError instead of unwinding through the caller.
func SpaceRoundsCtx(ctx context.Context, s core.Space, order []int) (*SpaceResult, error) {
	return SpaceRoundsCtxInj(ctx, nil, s, order)
}

// SpaceRoundsCtxInj is SpaceRoundsCtx with deterministic fault injection
// (tests and the soak driver only; production passes SpaceRoundsCtx's nil).
// Two sites are instrumented: SiteScanBatch counts one visit per
// configuration conflict scan, and SiteSpacePeak counts one visit per
// claimed pivot inside the round tasks — a panic armed there is contained by
// the round scheduler into a *sched.PanicError, while one armed on a scan
// reached from the base-candidate loop unwinds to the caller (the public
// layer's guard).
func SpaceRoundsCtxInj(ctx context.Context, inj *faultinject.Injector, s core.Space, order []int) (*SpaceResult, error) {
	n := s.NumObjects()
	nb := s.BaseSize()
	if len(order) < nb {
		return nil, fmt.Errorf("engine: need at least base size %d objects, got %d", nb, len(order))
	}
	// rank[o] is o's insertion position, or -1 for objects not inserted.
	rank := make([]int32, n)
	for i := range rank {
		rank[i] = -1
	}
	for i, o := range order {
		if o < 0 || o >= n {
			return nil, fmt.Errorf("engine: object %d out of range [0,%d)", o, n)
		}
		if rank[o] >= 0 {
			return nil, fmt.Errorf("engine: object %d appears twice in order", o)
		}
		rank[o] = int32(i)
	}

	// firstConflict returns the insertion rank of the earliest inserted
	// object conflicting with configuration c, or NoPivot if none does.
	// Spaces implementing ConflictScanner answer it in one batch scan
	// (per-configuration setup hoisted out of the per-object loop); the
	// closure over InConflict is the shim for spaces without one.
	firstConflict := func(c int) int32 {
		inj.Visit(faultinject.SiteScanBatch)
		for r, o := range order {
			if s.InConflict(c, o) {
				return int32(r)
			}
		}
		return NoPivot
	}
	if sc, ok := s.(ConflictScanner); ok {
		firstConflict = func(c int) int32 {
			inj.Visit(faultinject.SiteScanBatch)
			if r := sc.FirstConflict(c, order); r < len(order) {
				return int32(r)
			}
			return NoPivot
		}
	}

	// forPeak visits every constructible configuration whose defining set
	// completes at insertion rank x, and baseCand holds the ones completing
	// within the base prefix. Two strategies:
	//
	//   - PeakEnumerator spaces answer on demand: nothing proportional to
	//     NumConfigs is ever allocated or scanned.
	//   - Otherwise one pass over the configurations counts bucket sizes and a
	//     second fills a flat CSR array (the peak is recomputed rather than
	//     staged in an O(NumConfigs) temporary; Defining is a cheap decode).
	var forPeak func(x int32, visit func(c int32))
	var baseCand []int32
	if pe, ok := s.(PeakEnumerator); ok {
		forPeak = func(x int32, visit func(c int32)) {
			pe.EnumeratePeak(order[x], func(o int) bool {
				r := rank[o]
				return r >= 0 && r < x
			}, func(c int) { visit(int32(c)) })
		}
		// Base candidates peak at one of the base positions. Each
		// configuration has a single peak, so the collection is duplicate-free.
		for i := int32(0); i < int32(nb); i++ {
			forPeak(i, func(c int32) { baseCand = append(baseCand, c) })
		}
	} else {
		m := s.NumConfigs()
		peakRank := func(c int) (int32, bool) {
			peak := int32(0) // an empty defining set completes within the base
			for _, o := range s.Defining(c) {
				r := rank[o]
				if r < 0 {
					return 0, false // a defining object is never inserted
				}
				if r > peak {
					peak = r
				}
			}
			return peak, true
		}
		off := make([]int32, len(order)+1)
		for c := 0; c < m; c++ {
			if p, ok := peakRank(c); ok {
				off[p+1]++
			}
		}
		for i := 1; i <= len(order); i++ {
			off[i] += off[i-1]
		}
		buf := make([]int32, off[len(order)])
		cur := append([]int32(nil), off[:len(order)]...)
		for c := 0; c < m; c++ {
			if p, ok := peakRank(c); ok {
				buf[cur[p]] = int32(c)
				cur[p]++
			}
		}
		forPeak = func(x int32, visit func(c int32)) {
			for _, c := range buf[off[x]:off[x+1]] {
				visit(c)
			}
		}
		baseCand = buf[:off[nb]]
	}

	claimed := make([]atomic.Bool, len(order))
	var nCreated atomic.Int64
	var aliveMu sync.Mutex
	var alive []int

	// create activates c at activation rank at (its defining peak): c enters
	// T iff no inserted object of rank < at conflicts with it. It returns the
	// pivot rank, or NoPivot for a final configuration, and false if c never
	// activates. Final configurations are collected immediately — no
	// per-configuration state array survives the run.
	create := func(c int32, at int32) (int32, bool) {
		p := firstConflict(int(c))
		if p < at {
			return 0, false // killed before its defining set completes
		}
		nCreated.Add(1)
		if p == NoPivot {
			aliveMu.Lock()
			alive = append(alive, int(c))
			aliveMu.Unlock()
		}
		return p, true
	}

	type task struct {
		c     int32 // pending configuration
		pivot int32 // rank of the first conflicting object
		round int32
	}
	var initial []task
	for _, c := range baseCand {
		p, ok := create(c, int32(nb))
		if !ok {
			continue
		}
		if p != NoPivot {
			initial = append(initial, task{c: c, pivot: p, round: 1})
		}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	var canceled atomic.Bool
	stop := func() {}
	if ctx != nil && ctx.Done() != nil {
		quit := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				canceled.Store(true)
			case <-quit:
			}
		}()
		stop = func() { close(quit) }
	}
	var rounds int
	var widths []int
	perr := sched.Recovered(func() {
		rounds, widths = sched.RunRoundsWidths(initial, func(tk task, emit func(task)) {
			if canceled.Load() {
				return
			}
			// tk.c dies here: its pivot's insertion kills it (one task per
			// configuration, so no double counting). The first task to claim the
			// pivot performs the insertion's creations; each configuration has
			// exactly one peak rank and each rank is claimed once, so every
			// configuration is created at most once.
			x := tk.pivot
			if !claimed[x].CompareAndSwap(false, true) {
				return
			}
			inj.Visit(faultinject.SiteSpacePeak)
			forPeak(x, func(c int32) {
				p, ok := create(c, x)
				if !ok {
					return
				}
				if p != NoPivot {
					emit(task{c: c, pivot: p, round: tk.round + 1})
				}
			})
		})
	})
	stop()
	if perr != nil {
		return nil, perr
	}
	if canceled.Load() {
		return nil, ctx.Err()
	}

	sort.Ints(alive)
	return &SpaceResult{Alive: alive, Created: int(nCreated.Load()), Rounds: rounds, Widths: widths}, nil
}
