package engine

import (
	"context"
	"fmt"
	"sync/atomic"

	"parhull/internal/core"
	"parhull/internal/sched"
)

// ConflictScanner is an optional batch extension of core.Space — the
// configuration-space analogue of the kernels' batch visibility filter
// (conflict.Filter). FirstConflict returns the smallest index r in
// [0, len(order)) with InConflict(c, order[r]), or len(order) when no object
// of order conflicts with configuration c. Implementations hoist the
// per-configuration decode (defining-set lookup, coordinate loads) out of
// the per-object loop, which the InConflict signature cannot express.
// SpaceRounds uses it when present and falls back to scanning InConflict
// otherwise, so spaces without a batch scan keep working.
type ConflictScanner interface {
	FirstConflict(c int, order []int) int
}

// SpaceResult is the outcome of SpaceRounds.
type SpaceResult struct {
	// Alive is the final active set T(order): every configuration whose
	// defining objects all appear in order and whose conflict set avoids it.
	// Sorted ascending by configuration index.
	Alive []int
	// Created counts configurations ever activated (the |Added| analogue of
	// core.RunGeneric, but without the brute-force search's transient extras:
	// this engine creates exactly the configurations that enter T at some
	// prefix).
	Created int
	// Rounds is the number of synchronous rounds executed — the recursion
	// depth of the dependence structure under the Theorem 5.4 schedule.
	Rounds int
	// Widths[r] is the number of ready tasks in round r+1.
	Widths []int
}

// SpaceRounds runs the parallel incremental construction over an arbitrary
// enumerated configuration space under the round-synchronous schedule,
// inserting the objects of order (a duplicate-free subset of the space's
// objects, base prefix first) in index order. It is the generic route onto
// the driver's rounds schedule: a space needs no kernel, only its core.Space
// enumeration — this is how degenerate 3D inputs get a real engine through
// the corner space of Section 6 (see parhull.Hull3DDegenerate).
//
// Unlike core.RunGeneric — the brute-force Algorithm 1 validator, which
// rediscovers support sets by subset search and rescans the full active set
// every round — this engine exploits the structure the paper's analysis
// rests on:
//
//   - A configuration's fate is decided by one number: the first object (in
//     insertion order) of its conflict set. The configuration activates when
//     its last defining object arrives (provided no earlier object conflicts)
//     and dies exactly when that first conflicting object does. One ascending
//     scan with early exit computes both.
//   - When a pending configuration's pivot x is claimed (first claimant per
//     object, the same one-loser discipline as the ridge table), the claimant
//     creates every configuration whose defining set peaks at x — a static,
//     precomputed bucket — and each new configuration with a pivot becomes a
//     task of the next round.
//
// Completeness of claiming follows from the support property (Definition
// 3.3): if anything activates at x, some member of its support set is active
// just before x and has x at the head of its conflict set, so a task with
// pivot x exists. Spaces without the support property (e.g. the trapezoid
// counterexample) may leave activations unclaimed; SpaceRounds requires a
// supported space, which every space in this repository except trapezoid is.
func SpaceRounds(s core.Space, order []int) (*SpaceResult, error) {
	return SpaceRoundsCtx(nil, s, order)
}

// SpaceRoundsCtx is SpaceRounds with cooperative cancellation: a non-nil ctx
// is checked at round-task granularity and the run returns ctx.Err() with all
// round workers joined. Panics escaping the space's callbacks are contained
// into a typed *sched.PanicError instead of unwinding through the caller.
func SpaceRoundsCtx(ctx context.Context, s core.Space, order []int) (*SpaceResult, error) {
	n := s.NumObjects()
	nb := s.BaseSize()
	if len(order) < nb {
		return nil, fmt.Errorf("engine: need at least base size %d objects, got %d", nb, len(order))
	}
	// rank[o] is o's insertion position, or -1 for objects not inserted.
	rank := make([]int32, n)
	for i := range rank {
		rank[i] = -1
	}
	for i, o := range order {
		if o < 0 || o >= n {
			return nil, fmt.Errorf("engine: object %d out of range [0,%d)", o, n)
		}
		if rank[o] >= 0 {
			return nil, fmt.Errorf("engine: object %d appears twice in order", o)
		}
		rank[o] = int32(i)
	}

	// firstConflict returns the insertion rank of the earliest inserted
	// object conflicting with configuration c, or NoPivot if none does.
	// Spaces implementing ConflictScanner answer it in one batch scan
	// (per-configuration setup hoisted out of the per-object loop); the
	// closure over InConflict is the shim for spaces without one.
	firstConflict := func(c int) int32 {
		for r, o := range order {
			if s.InConflict(c, o) {
				return int32(r)
			}
		}
		return NoPivot
	}
	if sc, ok := s.(ConflictScanner); ok {
		firstConflict = func(c int) int32 {
			if r := sc.FirstConflict(c, order); r < len(order) {
				return int32(r)
			}
			return NoPivot
		}
	}

	// Bucket each constructible configuration under the rank at which its
	// defining set completes; configurations completing within the base
	// prefix are base candidates.
	m := s.NumConfigs()
	byPeak := make([][]int32, len(order))
	var baseCand []int32
	for c := 0; c < m; c++ {
		peak := int32(-1)
		ok := true
		for _, o := range s.Defining(c) {
			r := rank[o]
			if r < 0 {
				ok = false // a defining object is never inserted
				break
			}
			if r > peak {
				peak = r
			}
		}
		if !ok {
			continue
		}
		if peak < int32(nb) {
			baseCand = append(baseCand, int32(c))
		} else {
			byPeak[peak] = append(byPeak[peak], int32(c))
		}
	}

	created := make([]bool, m)
	pivotOf := make([]int32, m)
	claimed := make([]atomic.Bool, len(order))
	var nCreated atomic.Int64

	// create activates c at activation rank at (its defining peak): c enters
	// T iff no inserted object of rank < at conflicts with it. It returns the
	// pivot rank, or NoPivot for a final configuration, and false if c never
	// activates.
	create := func(c int32, at int32) (int32, bool) {
		p := firstConflict(int(c))
		if p < at {
			return 0, false // killed before its defining set completes
		}
		created[c] = true
		pivotOf[c] = p
		return p, true
	}

	type task struct {
		c     int32 // pending configuration
		round int32
	}
	var initial []task
	for _, c := range baseCand {
		p, ok := create(c, int32(nb))
		if !ok {
			continue
		}
		nCreated.Add(1)
		if p != NoPivot {
			initial = append(initial, task{c: c, round: 1})
		}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	var canceled atomic.Bool
	stop := func() {}
	if ctx != nil && ctx.Done() != nil {
		quit := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				canceled.Store(true)
			case <-quit:
			}
		}()
		stop = func() { close(quit) }
	}
	var rounds int
	var widths []int
	perr := sched.Recovered(func() {
		rounds, widths = sched.RunRoundsWidths(initial, func(tk task, emit func(task)) {
			if canceled.Load() {
				return
			}
			// tk.c dies here: its pivot's insertion kills it (one task per
			// configuration, so no double counting). The first task to claim the
			// pivot performs the insertion's creations; each configuration sits in
			// exactly one peak bucket and each rank is claimed once, so the
			// created/pivotOf entries have exclusive writers.
			x := pivotOf[tk.c]
			if !claimed[x].CompareAndSwap(false, true) {
				return
			}
			for _, c := range byPeak[x] {
				p, ok := create(c, x)
				if !ok {
					continue
				}
				nCreated.Add(1)
				if p != NoPivot {
					emit(task{c: c, round: tk.round + 1})
				}
			}
		})
	})
	stop()
	if perr != nil {
		return nil, perr
	}
	if canceled.Load() {
		return nil, ctx.Err()
	}

	res := &SpaceResult{Created: int(nCreated.Load()), Rounds: rounds, Widths: widths}
	for c := 0; c < m; c++ {
		if created[c] && pivotOf[c] == NoPivot {
			res.Alive = append(res.Alive, c)
		}
	}
	return res, nil
}
