// Package engine is the generic Algorithm-3 driver: the ridge-chain
// machinery of the paper's parallel randomized incremental construction,
// extracted from the per-geometry packages and parameterized by a compact
// kernel interface. The paper's central claim (Theorems 1.1/4.2) is that the
// algorithm is generic over any configuration space with constant-size
// support sets; this package makes the code reflect that: internal/hull2d
// and internal/hulld are thin geometry kernels, and every schedule — the
// sequential Algorithm 2 loop (Seq), the asynchronous fork-join schedule on
// the work-stealing executor or the goroutine Group (Par), and the
// round-synchronous PRAM schedule (Rounds) — lives here exactly once.
//
// Division of responsibility:
//
//   - The driver owns scheduling (chain loops, forking, the rounds barrier),
//     the ridge-table handshake (InsertAndSet/GetValue — the second facet to
//     arrive at a ridge forks its chain, lines 20-22 of Algorithm 3), facet
//     life-cycle counters, error/abort propagation, and the per-worker
//     arena + scratch-buffer lifetime discipline.
//   - The kernel owns geometry: facet and ridge representation, pivot
//     lookup, facet construction with exact conflict filtering (the
//     float-filter fast path included), and fresh-ridge enumeration.
//
// A schedule or scheduler fix now lands once instead of once per geometry,
// and a new configuration space gets all three schedules by implementing the
// kernel interface (see space.go for the generic route that needs no kernel
// at all, only a core.Space).
package engine

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"parhull/internal/faultinject"
	"parhull/internal/hullstats"
	"parhull/internal/sched"
)

// NoPivot is the conflict pivot of an empty conflict set: later than every
// real point index. Kernels must return it from Pivot for facets with no
// conflicts.
const NoPivot = int32(math.MaxInt32)

// Task is one pending ProcessRidge(t1, r, t2) invocation: ridge R currently
// shared by facets T1 and T2. FV is the kernel's facet value type (facets
// are handled as *FV so they can carry atomic liveness state); R is the
// ridge representation (a single vertex index in 2D, a sorted index slice in
// general dimension).
type Task[FV any, R any] struct {
	T1 *FV
	R  R
	T2 *FV
}

// Kernel is the geometry plug of the driver: everything Algorithm 3 needs
// that depends on the configuration space. Implementations must be safe for
// concurrent calls on distinct facets; the driver guarantees each facet is
// created by exactly one worker and killed through atomic test-and-set.
type Kernel[FV any, R any] interface {
	// Pivot returns min C(f) — the conflict pivot b_t of Section 5.2 — or
	// NoPivot for an empty conflict set.
	Pivot(f *FV) int32
	// NewFacet builds the facet joining ridge r with pivot p, supported by
	// (t1, t2): t1 is the facet being replaced (p visible from it), t2 the
	// surviving neighbor. It filters the conflict list per line 16 of
	// Algorithm 3 and records the facet (creation counter, dependence
	// depth). With a non-nil arena the facet and its published slices come
	// from per-worker blocks. An error reports degenerate input and aborts
	// the construction.
	NewFacet(a *Arena[FV], r R, p int32, t1, t2 *FV, round int32) (*FV, error)
	// FreshRidges appends to buf the ridges of t that contain the pivot —
	// every ridge of t except r itself (line 20) — and returns the extended
	// slice. Ridge values handed out here are published into the ridge table
	// and into forked tasks, so kernels must carve them from the arena (or
	// heap), never from reused scratch.
	FreshRidges(a *Arena[FV], t *FV, r R, buf []R) []R
	// Kill marks f dead, reporting whether this call was the first. (A facet
	// can be condemned twice — replaced through one ridge and buried through
	// the other — so counters fire only on the first kill.)
	Kill(f *FV) bool
}

// Table is the concurrent ridge multimap M of Algorithm 3, keyed by the
// kernel's ridge representation. Of the two InsertAndSet calls on one ridge
// exactly one returns false, and by then the other facet is visible to
// GetValue (the one-loser contract of Theorems A.1/A.2). The general-
// dimension kernels route through conmap (see table.go); the 2D kernel
// substitutes a flat array of CAS slots indexed by vertex.
type Table[FV any, R any] interface {
	// InsertAndSet registers f on ridge r: (true, nil) means f arrived
	// first, (false, nil) that the other facet did (fork the chain). A
	// non-nil error — conmap.ErrCapacity from the fixed tables — aborts the
	// construction; the caller climbs the degradation ladder.
	InsertAndSet(r R, f *FV) (bool, error)
	GetValue(r R, not *FV) *FV
}

// Config assembles one parallel construction: kernel, ridge table, and the
// shared stats recorder (the same Recorder instance the kernel counts
// visibility tests on).
type Config[FV any, R any] struct {
	Kernel Kernel[FV, R]
	Table  Table[FV, R]
	Rec    *hullstats.Recorder
	// Sched selects the fork-join substrate of Par: the work-stealing
	// executor with per-worker arenas (sched.KindSteal, default) or the
	// goroutine-per-chain Group (sched.KindGroup). Ignored by Rounds.
	Sched sched.Kind
	// GroupLimit caps concurrently spawned ridge chains (Group only).
	GroupLimit int
	// Workers is the work-stealing executor's pool width (Steal only;
	// <= 0 selects GOMAXPROCS). The speedup harness pins it per run so
	// scaling curves do not depend on the ambient GOMAXPROCS.
	Workers int
	// Ctx, when non-nil, cancels the construction cooperatively: chains
	// check it at ridge-step granularity and the run returns ctx.Err() with
	// the pool quiesced. nil means no cancellation.
	Ctx context.Context
	// Pool, when non-nil, runs the construction on a retained substrate: the
	// steal schedule reuses the pool's workers, arenas, and scratch instead
	// of building them per call, and the Group/rounds schedules draw chain
	// arenas from the pool so facet slabs are recycled across constructions.
	// The caller owns the pool's lifecycle (Reset between uses, Close at the
	// end); nil keeps the self-contained per-call behavior.
	Pool *Pool[FV, R]
	// Inject arms deterministic fault injection (tests only; nil in
	// production — every hook is nil-safe).
	Inject *faultinject.Injector
}

// driver carries the per-run scheduling state shared by the chain loops.
type driver[FV any, R any] struct {
	k   Kernel[FV, R]
	tbl Table[FV, R]
	rec *hullstats.Recorder
	inj *faultinject.Injector

	errOnce sync.Once
	err     error
	failed  atomic.Bool
}

func newDriver[FV any, R any](cfg Config[FV, R]) *driver[FV, R] {
	return &driver[FV, R]{k: cfg.Kernel, tbl: cfg.Table, rec: cfg.Rec, inj: cfg.Inject}
}

func (d *driver[FV, R]) fail(err error) {
	d.errOnce.Do(func() { d.err = err })
	d.failed.Store(true)
}

// watch flips the driver's failed flag when ctx is canceled, so every chain
// loop's existing poll doubles as the cancellation check — ridge-step
// granularity with no extra atomic on the hot path. The returned stop must
// be called (deferred) to retire the watcher goroutine.
func (d *driver[FV, R]) watch(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	quit := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			d.fail(ctx.Err())
		case <-quit:
		}
	}()
	return func() { close(quit) }
}

// step executes one ProcessRidge iteration of the chain holding tk: it
// either finishes the chain (line 9: both conflict sets empty — the ridge is
// final; line 10: the shared pivot buries the ridge and both facets) and
// reports done=false, or creates the replacement facet (lines 14-17), hands
// the fresh ridges to the table — the second facet to arrive forks its chain
// (lines 20-22) — and returns the continuation task for the ridge shared
// with t2 (line 19). ridges is caller-owned scratch reused across steps
// (nil forces fresh allocation, the Group/rounds behavior).
func (d *driver[FV, R]) step(a *Arena[FV], tk Task[FV, R], ridges []R, round int32, fork func(Task[FV, R])) (Task[FV, R], []R, bool) {
	var zero Task[FV, R]
	d.inj.Visit(faultinject.SiteRidgeStep)
	p1, p2 := d.k.Pivot(tk.T1), d.k.Pivot(tk.T2)
	switch {
	case p1 == NoPivot && p2 == NoPivot:
		d.rec.Finalized()
		return zero, ridges, false
	case p1 == p2:
		d.rec.Buried(d.k.Kill(tk.T1))
		d.rec.Buried(d.k.Kill(tk.T2))
		return zero, ridges, false
	case p2 < p1:
		// Lines 11-12: flip so T1 is the facet to replace.
		tk.T1, tk.T2 = tk.T2, tk.T1
		p1 = p2
	}
	t, err := d.k.NewFacet(a, tk.R, p1, tk.T1, tk.T2, round)
	if err != nil {
		d.fail(err)
		return zero, ridges, false
	}
	d.rec.Replaced(d.k.Kill(tk.T1))
	ridges = d.k.FreshRidges(a, t, tk.R, ridges[:0])
	for _, r2 := range ridges {
		first, ierr := d.tbl.InsertAndSet(r2, t)
		if ierr != nil {
			d.fail(ierr)
			return zero, ridges, false
		}
		if !first {
			fork(Task[FV, R]{T1: t, R: r2, T2: d.tbl.GetValue(r2, t)})
		}
	}
	return Task[FV, R]{T1: t, R: tk.R, T2: tk.T2}, ridges, true
}

// Par runs Algorithm 3 under the asynchronous fork-join schedule (the
// binary-forking model of Theorem 5.5) over the initial ridge tasks. seed is
// called once with the root fork function (one call per ridge of the base
// simplex/polygon). It returns the first failure, in precedence order:
// kernel/table error or ctx cancellation (whichever was recorded first),
// then a contained worker panic as *sched.PanicError. On every return path
// the pool has fully quiesced — no goroutine outlives the call.
func Par[FV any, R any](cfg Config[FV, R], seed func(fork func(Task[FV, R]))) error {
	d := newDriver(cfg)
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return err
		}
	}
	defer d.watch(cfg.Ctx)()
	var perr error
	switch {
	case cfg.Sched == sched.KindGroup:
		perr = d.parGroup(cfg.GroupLimit, chainArenas(cfg.Pool), seed)
	case cfg.Pool != nil:
		perr = cfg.Pool.runSteal(d, cfg.Workers, seed)
	default:
		perr = d.parSteal(cfg.Workers, seed)
	}
	if perr != nil {
		d.fail(perr) // first recorded failure wins; a panic only if nothing else
	}
	return d.err
}

// parGroup runs the chains on the bounded goroutine-per-fork Group — the
// PR-1 substrate, kept as the A3 ablation baseline for the schedule (the
// goroutine-per-chain fork discipline). Allocation, however, now matches the
// steal path: each chain goroutine acquires an arena from ap for its
// lifetime and reuses one fresh-ridge scratch across its steps, closing the
// ~75x allocs/op gap the heap-per-facet discipline used to cost here. Arenas
// are monotone, so handing a recycled arena to a new chain is safe.
func (d *driver[FV, R]) parGroup(limit int, ap *ArenaPool[FV], seed func(fork func(Task[FV, R]))) error {
	g := sched.NewGroup(limit)
	var chain func(tk Task[FV, R])
	chain = func(tk Task[FV, R]) {
		a := ap.Get()
		defer ap.Put(a)
		var ridges []R
		for {
			if d.failed.Load() || g.Failed() {
				return
			}
			next, buf, ok := d.step(a, tk, ridges, 0, func(nt Task[FV, R]) {
				g.Go(func() { chain(nt) })
			})
			ridges = buf
			if !ok {
				return
			}
			tk = next
		}
	}
	seed(func(tk Task[FV, R]) {
		g.Go(func() { chain(tk) })
	})
	g.Wait()
	return g.Err()
}

// parSteal runs the chains on the work-stealing executor: one long-lived
// worker per P, forks pushed to the forking worker's own deque as plain task
// values (no closure, no goroutine spawn), every facet and published slice
// allocated from the executing worker's arena, and the fresh-ridge scratch
// reused per worker so the steady-state step allocates nothing beyond the
// facet's own arena carves.
func (d *driver[FV, R]) parSteal(workers int, seed func(fork func(Task[FV, R]))) error {
	nw := workers
	if nw <= 0 {
		nw = sched.Workers()
	}
	arenas := NewArenas[FV](nw)
	ridgeBufs := make([][]R, nw)
	// Per-worker fork closures are bound once, before any task can run, so
	// the chain hot path allocates nothing to fork.
	forkFns := make([]func(Task[FV, R]), nw)
	var x *sched.Executor[Task[FV, R]]
	x = sched.NewExecutor(nw, func(w int, tk Task[FV, R]) {
		a, fork := &arenas[w], forkFns[w]
		for {
			if d.failed.Load() || x.Failed() {
				return
			}
			next, buf, ok := d.step(a, tk, ridgeBufs[w], 0, fork)
			ridgeBufs[w] = buf
			if !ok {
				return
			}
			tk = next
		}
	})
	for w := range forkFns {
		w := w
		forkFns[w] = func(nt Task[FV, R]) { x.Fork(w, nt) }
	}
	seed(func(tk Task[FV, R]) { x.Fork(sched.External, tk) })
	x.Wait()
	return x.Err()
}

// EventKind classifies an observed ProcessRidge outcome of the rounds
// schedule (the machine-readable form of the paper's Figure 1 narrative).
type EventKind int

const (
	// EventCreated records a new facet replacing an old one (lines 14-17):
	// the observer receives (new facet, replaced facet).
	EventCreated EventKind = iota
	// EventBuried records an equal-pivot ridge burying both facets (line
	// 10): the observer receives the two facets incident on the ridge.
	EventBuried
	// EventFinal records a ridge whose facets both have empty conflict sets
	// (line 9): the observer receives the two facets.
	EventFinal
)

// Rounds runs Algorithm 3 under the round-synchronous schedule of Theorem
// 5.4 over the initial tasks: each ready ProcessRidge call executes one step
// per round with a global barrier between rounds, so the returned round
// count is the recursion depth of Theorem 5.3 and widths[r] the ready-task
// frontier of round r+1. Flips (lines 11-12) run inline and do not consume a
// round. observe, when non-nil, is called for every outcome with the round
// and the two facets of the event (it must be safe for concurrent calls;
// the 2D kernel uses it to build its per-round Trace).
func Rounds[FV any, R any](cfg Config[FV, R], initial []Task[FV, R],
	observe func(kind EventKind, round int32, a, b *FV)) (rounds int, widths []int, err error) {

	d := newDriver(cfg)
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return 0, nil, err
		}
	}
	defer d.watch(cfg.Ctx)()
	type roundTask struct {
		Task[FV, R]
		round int32
	}
	seed := make([]roundTask, len(initial))
	for i, tk := range initial {
		seed[i] = roundTask{Task: tk, round: 1}
	}
	// Each step draws an arena for its facet and ridge carves; the rounds
	// barrier means slabs fill in creation — i.e. round — order, so a pooled
	// replay touches facets in the same cache-friendly sequence.
	ap := chainArenas(cfg.Pool)
	// ParallelFor is panic-transparent: a contained panic in a round body is
	// re-thrown here, on the calling goroutine, after the barrier — Recovered
	// turns it into the typed *sched.PanicError.
	if perr := sched.Recovered(func() {
		rounds, widths = sched.RunRoundsWidths(seed, func(tk roundTask, emit func(roundTask)) {
			d.roundStep(ap, tk.Task, tk.round, observe, func(nt Task[FV, R], round int32) {
				emit(roundTask{Task: nt, round: round})
			})
		})
	}); perr != nil {
		d.fail(perr)
	}
	return rounds, widths, d.err
}

// roundStep is one rounds-schedule ProcessRidge execution (the step logic of
// the asynchronous schedule, with the continuation emitted instead of looped).
func (d *driver[FV, R]) roundStep(ap *ArenaPool[FV], tk Task[FV, R], round int32,
	observe func(kind EventKind, round int32, a, b *FV), emit func(Task[FV, R], int32)) {

	if d.failed.Load() {
		return
	}
	d.inj.Visit(faultinject.SiteRidgeStep)
	{
		t1, t2 := tk.T1, tk.T2
		p1, p2 := d.k.Pivot(t1), d.k.Pivot(t2)
		switch {
		case p1 == NoPivot && p2 == NoPivot:
			d.rec.Finalized()
			if observe != nil {
				observe(EventFinal, round, t1, t2)
			}
			return
		case p1 == p2:
			d.rec.Buried(d.k.Kill(t1))
			d.rec.Buried(d.k.Kill(t2))
			if observe != nil {
				observe(EventBuried, round, t1, t2)
			}
			return
		case p2 < p1:
			t1, t2 = t2, t1
			p1 = p2
		}
		a := ap.Get()
		defer ap.Put(a)
		t, err := d.k.NewFacet(a, tk.R, p1, t1, t2, round)
		if err != nil {
			d.fail(err)
			return
		}
		d.rec.Replaced(d.k.Kill(t1))
		if observe != nil {
			observe(EventCreated, round, t, t1)
		}
		for _, r2 := range d.k.FreshRidges(a, t, tk.R, nil) {
			first, ierr := d.tbl.InsertAndSet(r2, t)
			if ierr != nil {
				d.fail(ierr)
				return
			}
			if !first {
				other := d.tbl.GetValue(r2, t)
				emit(Task[FV, R]{T1: t, R: r2, T2: other}, round+1)
			}
		}
		emit(Task[FV, R]{T1: t, R: tk.R, T2: t2}, round+1)
	}
}
