package engine

import "parhull/internal/sched"

// Pool is the retained parallel substrate of a reusable construction owner
// (the public parhull.Builder): the work-stealing worker pool, the
// per-worker arenas and fresh-ridge scratch of the steal schedule, and the
// shared arena pool the Group and rounds schedules draw from. A Pool amortizes
// across constructions everything parSteal builds per call — worker
// goroutines, deques, arenas, fork closures — so the steady-state cost of a
// parallel construction is the work itself, not the scaffolding.
//
// A Pool is single-owner: at most one construction may run on it at a time,
// and Reset/Close must not overlap a construction. The zero value is not
// ready; use NewPool.
type Pool[FV any, R any] struct {
	workers   int
	arenas    []Arena[FV]
	ridgeBufs [][]R
	forkFns   []func(Task[FV, R])
	x         *sched.Executor[Task[FV, R]]

	// cur is the construction currently mounted on the pool. The worker run
	// closure is bound once (to the pool, not to a driver) and reads cur per
	// task; the write in runSteal is published to workers through the deque
	// mutex of the first Fork.
	cur *driver[FV, R]

	// chain hands arenas to the transient holders of the Group and rounds
	// schedules (see ArenaPool); retained here so a pooled owner can Reset
	// them between cycles.
	chain ArenaPool[FV]
}

// NewPool returns an empty Pool; the worker pool and arenas are created
// lazily on the first steal-schedule construction.
func NewPool[FV any, R any]() *Pool[FV, R] { return &Pool[FV, R]{} }

// ensure (re)builds the executor for the requested width. Reusing the pool at
// the same width re-arms the parked workers; a width change retires the old
// pool and starts a new one (arenas and scratch are per-worker, so they are
// rebuilt with it).
func (p *Pool[FV, R]) ensure(workers int) {
	nw := workers
	if nw <= 0 {
		nw = sched.Workers()
	}
	if p.x != nil {
		if nw == p.workers {
			p.x.Restart()
			return
		}
		p.x.Close()
	}
	p.workers = nw
	p.arenas = NewArenas[FV](nw)
	p.ridgeBufs = make([][]R, nw)
	p.forkFns = make([]func(Task[FV, R]), nw)
	p.x = sched.NewExecutor(nw, func(w int, tk Task[FV, R]) {
		d, x := p.cur, p.x
		a, fork := &p.arenas[w], p.forkFns[w]
		for {
			if d.failed.Load() || x.Failed() {
				return
			}
			next, buf, ok := d.step(a, tk, p.ridgeBufs[w], 0, fork)
			p.ridgeBufs[w] = buf
			if !ok {
				return
			}
			tk = next
		}
	})
	for w := range p.forkFns {
		w := w
		p.forkFns[w] = func(nt Task[FV, R]) { p.x.Fork(w, nt) }
	}
}

// runSteal is parSteal on the retained substrate: mount the driver, arm the
// workers, seed the root tasks, and quiesce — the workers park but stay
// alive for the next construction.
func (p *Pool[FV, R]) runSteal(d *driver[FV, R], workers int, seed func(fork func(Task[FV, R]))) error {
	p.cur = d
	p.ensure(workers)
	seed(func(tk Task[FV, R]) { p.x.Fork(sched.External, tk) })
	p.x.Quiesce()
	p.cur = nil
	return p.x.Err()
}

// Reset rewinds every retained arena for the next construction. Call only
// between constructions, after the previous Result is no longer in use —
// pooled facets and slices are recycled in place.
func (p *Pool[FV, R]) Reset() {
	for i := range p.arenas {
		p.arenas[i].Reset()
	}
	p.chain.Reset()
}

// Chain exposes the retained Group/rounds arena pool, so kernel engines can
// draw an arena for work outside the driver's schedules (the initial hull).
func (p *Pool[FV, R]) Chain() *ArenaPool[FV] { return &p.chain }

// Close retires the worker pool. The Pool must not be used afterwards;
// arenas (and any Result carved from them) remain valid.
func (p *Pool[FV, R]) Close() {
	if p.x != nil {
		p.x.Close()
		p.x = nil
	}
}

// chainArenas returns the arena pool Group/rounds holders should draw from:
// the retained one of a pooled construction, or a construction-local pool.
func chainArenas[FV any, R any](p *Pool[FV, R]) *ArenaPool[FV] {
	if p != nil {
		return &p.chain
	}
	return new(ArenaPool[FV])
}
