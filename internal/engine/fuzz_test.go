package engine_test

import (
	"errors"
	"fmt"
	"testing"

	"parhull/internal/geom"
	"parhull/internal/hull2d"
	"parhull/internal/hulld"
	"parhull/internal/pointgen"
	"parhull/internal/sched"
)

// FuzzEngineEquivalence drives random point sets through all three schedules
// of both kernels — each parallel schedule under both the batched and the
// pointwise-closure visibility filter — and asserts Theorem 5.5's guarantee:
// the schedules create the identical facet multiset and hull vertex set
// (previously pinned only on fixed seeds). Inputs the engines reject as
// degenerate are skipped — rejection must then be unanimous.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(2), false)
	f.Add(int64(2), uint8(40), uint8(3), true)
	f.Add(int64(3), uint8(9), uint8(4), false)
	f.Add(int64(99), uint8(64), uint8(2), true)
	f.Fuzz(func(t *testing.T, seed int64, n, dim uint8, sphere bool) {
		d := 2 + int(dim)%3 // dimensions 2..4
		np := int(n)
		if np < d+2 {
			np = d + 2
		}
		rng := pointgen.NewRNG(seed)
		var pts []geom.Point
		if sphere {
			pts = pointgen.OnSphere(rng, np, d)
		} else {
			pts = pointgen.UniformBall(rng, np, d)
		}
		if d == 2 {
			fuzz2D(t, pts)
		} else {
			fuzzD(t, pts)
		}
	})
}

// degenerate reports whether err is an input-rejection either kernel may
// legitimately raise on fuzzed points (near-collinear base, wrapped visible
// region, coplanar facet).
func degenerate(err error) bool {
	return errors.Is(err, hull2d.ErrDegenerate) || errors.Is(err, hulld.ErrDegenerate)
}

func fuzz2D(t *testing.T, pts []geom.Point) {
	seq, err := hull2d.Seq(pts)
	if degenerate(err) {
		return
	}
	if err != nil {
		t.Fatalf("Seq: %v", err)
	}
	results := map[string]*hull2d.Result{}
	for name, opt := range map[string]*hull2d.Options{
		"par/steal":         {},
		"par/group":         {Sched: sched.KindGroup},
		"par/steal/closure": {NoBatchFilter: true},
		"par/group/closure": {Sched: sched.KindGroup, NoBatchFilter: true},
	} {
		r, err := hull2d.Par(pts, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = r
	}
	rr, _, err := hull2d.Rounds(pts, nil)
	if err != nil {
		t.Fatalf("Rounds: %v", err)
	}
	results["rounds"] = rr
	rc, _, err := hull2d.Rounds(pts, &hull2d.Options{NoBatchFilter: true})
	if err != nil {
		t.Fatalf("Rounds/closure: %v", err)
	}
	results["rounds/closure"] = rc
	want := seq.EdgeSet()
	wantV := fmt.Sprint(seq.Vertices)
	for name, r := range results {
		if gotV := fmt.Sprint(r.Vertices); gotV != wantV {
			t.Errorf("%s vertices = %s, seq = %s", name, gotV, wantV)
		}
		got := r.EdgeSet()
		if len(got) != len(want) {
			t.Fatalf("%s created %d distinct edges, seq %d", name, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Errorf("%s edge %v multiplicity %d, seq %d", name, k, got[k], c)
			}
		}
	}
}

func fuzzD(t *testing.T, pts []geom.Point) {
	seq, err := hulld.Seq(pts)
	if degenerate(err) {
		return
	}
	if err != nil {
		t.Fatalf("Seq: %v", err)
	}
	results := map[string]*hulld.Result{}
	for name, opt := range map[string]*hulld.Options{
		"par/steal":         {},
		"par/group":         {Sched: sched.KindGroup},
		"par/steal/closure": {NoBatchFilter: true},
		"par/group/closure": {Sched: sched.KindGroup, NoBatchFilter: true},
	} {
		r, err := hulld.Par(pts, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = r
	}
	rr, err := hulld.Rounds(pts, nil)
	if err != nil {
		t.Fatalf("Rounds: %v", err)
	}
	results["rounds"] = rr
	rc, err := hulld.Rounds(pts, &hulld.Options{NoBatchFilter: true})
	if err != nil {
		t.Fatalf("Rounds/closure: %v", err)
	}
	results["rounds/closure"] = rc
	want := seq.FacetSet()
	wantV := fmt.Sprint(seq.Vertices)
	for name, r := range results {
		if gotV := fmt.Sprint(r.Vertices); gotV != wantV {
			t.Errorf("%s vertices = %s, seq = %s", name, gotV, wantV)
		}
		got := r.FacetSet()
		if len(got) != len(want) {
			t.Fatalf("%s created %d distinct facets, seq %d", name, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Errorf("%s facet %x multiplicity %d, seq %d", name, k, got[k], c)
			}
		}
	}
}
