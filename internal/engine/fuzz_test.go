package engine_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"parhull"
	"parhull/internal/geom"
	"parhull/internal/hull2d"
	"parhull/internal/hulld"
	"parhull/internal/pointgen"
	"parhull/internal/sched"
)

// FuzzEngineEquivalence drives random point sets through all three schedules
// of both kernels — each parallel schedule under both the batched and the
// pointwise-closure visibility filter — and asserts Theorem 5.5's guarantee:
// the schedules create the identical facet multiset and hull vertex set
// (previously pinned only on fixed seeds). Inputs the engines reject as
// degenerate are skipped — rejection must then be unanimous.
//
// With a non-zero mutate parameter the input is hostile instead — NaN or
// infinite coordinates, duplicated points, a fully collinear cloud, a
// starved fixed ridge table, a duplicate-heavy cloud, or a grid-quantized
// near-degenerate cloud — and the run goes through the public API, which
// must come back with a typed error or a valid hull, never a panic (the
// robustness acceptance bar).
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(2), false, uint8(0))
	f.Add(int64(2), uint8(40), uint8(3), true, uint8(0))
	f.Add(int64(3), uint8(9), uint8(4), false, uint8(0))
	f.Add(int64(99), uint8(64), uint8(2), true, uint8(0))
	f.Add(int64(5), uint8(30), uint8(2), false, uint8(1))   // NaN coordinate
	f.Add(int64(6), uint8(30), uint8(3), true, uint8(2))    // +Inf coordinate
	f.Add(int64(7), uint8(30), uint8(2), false, uint8(3))   // duplicated point
	f.Add(int64(8), uint8(30), uint8(3), false, uint8(4))   // collinear cloud
	f.Add(int64(9), uint8(64), uint8(2), true, uint8(5))    // tiny fixed table
	f.Add(int64(10), uint8(48), uint8(2), false, uint8(6))  // duplicate-heavy cloud
	f.Add(int64(11), uint8(48), uint8(3), false, uint8(7))  // quantized near-degenerate cloud
	f.Add(int64(12), uint8(48), uint8(3), false, uint8(8))  // quantized cospherical cloud
	f.Add(int64(13), uint8(48), uint8(2), false, uint8(9))  // integer lattice (ties everywhere)
	f.Add(int64(14), uint8(48), uint8(3), false, uint8(10)) // exact collinear-heavy cloud
	f.Add(int64(15), uint8(48), uint8(4), false, uint8(11)) // exact coplanar-heavy cloud
	f.Fuzz(func(t *testing.T, seed int64, n, dim uint8, sphere bool, mutate uint8) {
		d := 2 + int(dim)%3 // dimensions 2..4
		np := int(n)
		if np < d+2 {
			np = d + 2
		}
		rng := pointgen.NewRNG(seed)
		var pts []geom.Point
		if sphere {
			pts = pointgen.OnSphere(rng, np, d)
		} else {
			pts = pointgen.UniformBall(rng, np, d)
		}
		if m := mutate % 12; m != 0 {
			switch m {
			case 6:
				pts = pointgen.DuplicateHeavy(pointgen.NewRNG(seed), np, d, 0.5)
			case 7:
				pts = pointgen.NearDegenerate(pointgen.NewRNG(seed), np, d, 0)
			case 8:
				pts = pointgen.Cospherical(pointgen.NewRNG(seed), np, d, 0)
			case 9:
				pts = pointgen.IntegerLattice(pointgen.NewRNG(seed), np, d, 0)
			case 10:
				pts = pointgen.CollinearHeavy(pointgen.NewRNG(seed), np, d, 0.5)
			case 11:
				pts = pointgen.CoplanarHeavy(pointgen.NewRNG(seed), np, d, 0.5)
			default:
				pts = mutatePoints(pts, m, seed)
			}
			fuzzPublic(t, pts, d, m)
			return
		}
		if d == 2 {
			fuzz2D(t, pts)
		} else {
			fuzzD(t, pts)
		}
	})
}

// mutatePoints corrupts a general-position cloud into one of the hostile
// input classes (mutate 5 leaves points intact — the table is starved
// instead).
func mutatePoints(pts []geom.Point, mutate uint8, seed int64) []geom.Point {
	i := int(uint64(seed) % uint64(len(pts)))
	switch mutate {
	case 1:
		pts[i][int((uint64(seed)>>8)%uint64(len(pts[i])))] = math.NaN()
	case 2:
		pts[i][int((uint64(seed)>>8)%uint64(len(pts[i])))] = math.Inf(1 - 2*int(seed&2))
	case 3:
		pts[i] = append(geom.Point(nil), pts[(i+1)%len(pts)]...)
	case 4:
		for j := range pts {
			f := float64(j)
			for k := range pts[j] {
				pts[j][k] = f * float64(k+1)
			}
		}
	}
	return pts
}

// fuzzPublic runs a hostile input through every public engine x map
// combination. The contract: a typed public error or a hull, never a panic
// and never an untyped error. Successful runs must agree on the vertex set.
func fuzzPublic(t *testing.T, pts []geom.Point, d int, mutate uint8) {
	hull := func(o *parhull.Options) ([]int, error) {
		if d == 2 {
			r, err := parhull.Hull2D(pts, o)
			if err != nil {
				return nil, err
			}
			return r.Vertices, nil
		}
		r, err := parhull.HullD(pts, o)
		if err != nil {
			return nil, err
		}
		return r.Vertices, nil
	}
	typed := func(err error) bool {
		return errors.Is(err, parhull.ErrDegenerate) || errors.Is(err, parhull.ErrBadCoordinate) ||
			errors.Is(err, parhull.ErrCapacity)
	}
	var want string
	for _, e := range []parhull.Engine{parhull.EngineSequential, parhull.EngineParallel, parhull.EngineRounds} {
		for _, m := range []parhull.MapKind{parhull.MapSharded, parhull.MapCAS, parhull.MapTAS} {
			o := &parhull.Options{Engine: e, Map: m}
			if mutate == 5 {
				o.MapCapacity = 4
				o.NoMapFallback = true
			}
			v, err := hull(o)
			if err != nil {
				if !typed(err) {
					t.Fatalf("engine=%v map=%v mutate=%d: untyped error %v", e, m, mutate, err)
				}
				continue
			}
			got := fmt.Sprint(v)
			// Table starvation only bites the fixed maps; sharded and
			// sequential runs still succeed, so compare only within a class.
			if mutate != 5 {
				if want == "" {
					want = got
				} else if got != want {
					t.Errorf("engine=%v map=%v mutate=%d: vertices %s, others %s", e, m, mutate, got, want)
				}
			}
		}
	}
}

// degenerate reports whether err is an input-rejection either kernel may
// legitimately raise on fuzzed points (near-collinear base, wrapped visible
// region, coplanar facet).
func degenerate(err error) bool {
	return errors.Is(err, hull2d.ErrDegenerate) || errors.Is(err, hulld.ErrDegenerate)
}

func fuzz2D(t *testing.T, pts []geom.Point) {
	seq, err := hull2d.Seq(pts)
	if degenerate(err) {
		return
	}
	if err != nil {
		t.Fatalf("Seq: %v", err)
	}
	results := map[string]*hull2d.Result{}
	for name, opt := range map[string]*hull2d.Options{
		"par/steal":         {},
		"par/group":         {Sched: sched.KindGroup},
		"par/steal/closure": {NoBatchFilter: true},
		"par/group/closure": {Sched: sched.KindGroup, NoBatchFilter: true},
	} {
		r, err := hull2d.Par(pts, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = r
	}
	rr, _, err := hull2d.Rounds(pts, nil)
	if err != nil {
		t.Fatalf("Rounds: %v", err)
	}
	results["rounds"] = rr
	rc, _, err := hull2d.Rounds(pts, &hull2d.Options{NoBatchFilter: true})
	if err != nil {
		t.Fatalf("Rounds/closure: %v", err)
	}
	results["rounds/closure"] = rc
	want := seq.EdgeSet()
	wantV := fmt.Sprint(seq.Vertices)
	for name, r := range results {
		if gotV := fmt.Sprint(r.Vertices); gotV != wantV {
			t.Errorf("%s vertices = %s, seq = %s", name, gotV, wantV)
		}
		got := r.EdgeSet()
		if len(got) != len(want) {
			t.Fatalf("%s created %d distinct edges, seq %d", name, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Errorf("%s edge %v multiplicity %d, seq %d", name, k, got[k], c)
			}
		}
	}
}

func fuzzD(t *testing.T, pts []geom.Point) {
	seq, err := hulld.Seq(pts)
	if degenerate(err) {
		return
	}
	if err != nil {
		t.Fatalf("Seq: %v", err)
	}
	results := map[string]*hulld.Result{}
	for name, opt := range map[string]*hulld.Options{
		"par/steal":         {},
		"par/group":         {Sched: sched.KindGroup},
		"par/steal/closure": {NoBatchFilter: true},
		"par/group/closure": {Sched: sched.KindGroup, NoBatchFilter: true},
	} {
		r, err := hulld.Par(pts, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = r
	}
	rr, err := hulld.Rounds(pts, nil)
	if err != nil {
		t.Fatalf("Rounds: %v", err)
	}
	results["rounds"] = rr
	rc, err := hulld.Rounds(pts, &hulld.Options{NoBatchFilter: true})
	if err != nil {
		t.Fatalf("Rounds/closure: %v", err)
	}
	results["rounds/closure"] = rc
	want := seq.FacetSet()
	wantV := fmt.Sprint(seq.Vertices)
	for name, r := range results {
		if gotV := fmt.Sprint(r.Vertices); gotV != wantV {
			t.Errorf("%s vertices = %s, seq = %s", name, gotV, wantV)
		}
		got := r.FacetSet()
		if len(got) != len(want) {
			t.Fatalf("%s created %d distinct facets, seq %d", name, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Errorf("%s facet %x multiplicity %d, seq %d", name, k, got[k], c)
			}
		}
	}
}
