package engine

import (
	"context"

	"parhull/internal/faultinject"
	"parhull/internal/hullstats"
)

// SeqGeometry supplies the geometry-specific pieces of the sequential
// Algorithm 2 loop that are not already in the Kernel: the bipartite
// conflict graph is generic (point -> facets it is visible from), but how a
// geometry finds the boundary ridges of a visible region — the linked hull
// cycle in 2D, the ridge-adjacency map in general dimension — is not.
type SeqGeometry[FV any, R any] interface {
	// Conf returns f's conflict list (ascending insertion indices).
	Conf(f *FV) []int32
	// MarkVisible stamps f as visible for insertion step i and reports
	// whether f belongs to the visible set R <- C^-1(v_i) of line 5 (alive,
	// and not already stamped this step). Stamps are how Boundary later
	// distinguishes visible facets from survivors.
	MarkVisible(f *FV, i int32) bool
	// Boundary appends one task per boundary ridge of the visible region
	// (line 6) — ridge r with visible facet T1 and surviving neighbor T2 —
	// and returns the extended slice. It runs after every member of vis has
	// been stamped. An error reports degenerate input.
	Boundary(vis []*FV, i int32, tasks []Task[FV, R]) ([]Task[FV, R], error)
	// Register links a facet into the geometry's adjacency structure (the
	// 2D hull cycle, the d-dimensional ridge map). Called for the base
	// facets and for every created facet, after the step's kills.
	Register(f *FV)
}

// Seq runs the sequential randomized incremental method — Algorithm 2 —
// inserting points base..n-1 in index order over the given base facets. It
// maintains the Clarkson–Shor bipartite conflict graph, so its plane-side
// tests are exactly the conflict filters: the same multiset Algorithm 3
// performs (asserted by the cross-engine tests of both kernels).
//
// baseSizes seeds the per-step hull-size series for the base prefix; the
// returned slice extends it with the facet count after each insertion (the
// |T(Y_i)| of the Theorem 3.1 bound).
//
// ctx, when non-nil, cancels the loop cooperatively at insertion granularity
// (the sequential analogue of the ridge-step checks in Par/Rounds); inj arms
// deterministic fault injection at the same boundary (nil in production).
func Seq[FV any, R any](ctx context.Context, inj *faultinject.Injector,
	k Kernel[FV, R], g SeqGeometry[FV, R], rec *hullstats.Recorder,
	facets []*FV, n int32, baseSizes []int) ([]int, error) {

	// Bipartite conflict graph: point -> facets whose conflict list holds it.
	pf := make([][]*FV, n)
	addPF := func(f *FV) {
		for _, v := range g.Conf(f) {
			pf[v] = append(pf[v], f)
		}
	}
	for _, f := range facets {
		g.Register(f)
		addPF(f)
	}

	hullSizes := append(make([]int, 0, n), baseSizes...)
	alive := len(facets)
	base := int32(len(baseSizes))
	var vis []*FV
	var tasks []Task[FV, R]
	var created []*FV
	for i := base; i < n; i++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		inj.Visit(faultinject.SiteSeqInsert)
		// R <- C^-1(v_i): the facets visible from the new point (line 5).
		vis = vis[:0]
		for _, f := range pf[i] {
			if g.MarkVisible(f, i) {
				vis = append(vis, f)
			}
		}
		if len(vis) == 0 {
			hullSizes = append(hullSizes, alive)
			continue // v_i falls inside the current hull
		}
		// Lines 6-10: one new facet per boundary ridge, with conflict lists
		// filtered from the two incident facets.
		var err error
		tasks, err = g.Boundary(vis, i, tasks[:0])
		if err != nil {
			return nil, err
		}
		created = created[:0]
		for _, tk := range tasks {
			t, err := k.NewFacet(nil, tk.R, i, tk.T1, tk.T2, 0)
			if err != nil {
				return nil, err
			}
			created = append(created, t)
		}
		// Line 11: H <- H \ R.
		for _, f := range vis {
			rec.Replaced(k.Kill(f))
		}
		for _, t := range created {
			g.Register(t)
			addPF(t)
		}
		alive += len(created) - len(vis)
		hullSizes = append(hullSizes, alive)
	}
	return hullSizes, nil
}
