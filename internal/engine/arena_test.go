package engine_test

import (
	"testing"

	"parhull/internal/engine"
)

func TestArenaNilFallsBackToHeap(t *testing.T) {
	var a *engine.Arena[int]
	if f := a.Facet(); f == nil || *f != 0 {
		t.Fatal("nil arena Facet not zeroed heap value")
	}
	s := a.Ints(5)
	if len(s) != 0 || cap(s) != 5 {
		t.Fatalf("nil arena Ints: len=%d cap=%d", len(s), cap(s))
	}
	if l := a.IntsLen(3); len(l) != 3 {
		t.Fatalf("nil arena IntsLen: len=%d", len(l))
	}
}

func TestArenaCarvesAreIsolated(t *testing.T) {
	as := engine.NewArenas[int](1)
	a := &as[0]
	x := a.Ints(2)
	y := a.Ints(2)
	x = append(x, 1, 2)
	y = append(y, 3, 4)
	// Capacity clamping must prevent an overflowing append from touching the
	// neighboring carve.
	x = append(x, 9)
	if y[0] != 3 || y[1] != 4 {
		t.Fatalf("append beyond capacity corrupted neighbor carve: %v", y)
	}
	if x[2] != 9 {
		t.Fatalf("overflow append lost: %v", x)
	}
	if a.Alloc == nil {
		t.Fatal("NewArenas did not bind Alloc")
	}
	if l := a.Alloc(4); len(l) != 4 {
		t.Fatalf("Alloc(4): len=%d", len(l))
	}
	// Distinct facets from the same slab.
	f1, f2 := a.Facet(), a.Facet()
	if f1 == f2 {
		t.Fatal("slab returned the same facet twice")
	}
}
