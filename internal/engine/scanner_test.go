package engine_test

import (
	"sort"
	"testing"

	"parhull/internal/circles"
	"parhull/internal/core"
	"parhull/internal/corner"
	"parhull/internal/delaunay"
	"parhull/internal/engine"
	"parhull/internal/geom"
	"parhull/internal/halfspace"
	"parhull/internal/pointgen"
	"parhull/internal/trapezoid"
)

// scanSpace couples a core.Space with its batch scanner, which every space
// in the repository now implements.
type scanSpace interface {
	core.Space
	engine.ConflictScanner
}

// shimFirstConflict is the semantics FirstConflict must reproduce: the
// closure over InConflict the engine falls back to for scanner-less spaces.
func shimFirstConflict(s core.Space, c int, order []int) int {
	for r, o := range order {
		if s.InConflict(c, o) {
			return r
		}
	}
	return len(order)
}

func checkScanner(t *testing.T, name string, s scanSpace, orders [][]int) {
	t.Helper()
	for oi, order := range orders {
		for c := 0; c < s.NumConfigs(); c++ {
			want := shimFirstConflict(s, c, order)
			if got := s.FirstConflict(c, order); got != want {
				t.Fatalf("%s: config %d order#%d %v: FirstConflict = %d, shim = %d",
					name, c, oi, order, got, want)
			}
		}
	}
}

// orderSet returns insertion orders to exercise: identity, reversed beyond
// the base prefix, and a shuffled tail.
func orderSet(n, base int) [][]int {
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	rev := append([]int(nil), id...)
	for i, j := base, n-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	shuf := append([]int(nil), id...)
	for i, j := range pointgen.Perm(pointgen.NewRNG(99), n-base) {
		shuf[base+i] = base + j
	}
	return [][]int{id, rev, shuf}
}

func delaunaySpace(t *testing.T, n int) *delaunay.Space {
	t.Helper()
	// Bounding triangle first: pinned in the base prefix so cavities stay
	// interior and the space's 2-support holds for every insertion.
	pts := append([]geom.Point{{0, 8}, {-8, -6}, {8, -6}},
		pointgen.UniformBall(pointgen.NewRNG(3), n-3, 2)...)
	s, err := delaunay.NewSpace(pts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func cornerSpace(t *testing.T) *corner.Space {
	t.Helper()
	// A degenerate cloud: cube corners (coplanar faces) plus an interior and
	// an edge-collinear point.
	pts := pointgen.Grid3D(2)
	pts = append(pts, geom.Point{0.5, 0.5, 0.5}, geom.Point{0.5, 0, 0}, geom.Point{2, 0.25, 0.75})
	s, err := corner.NewSpace(pts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func circleSpace(t *testing.T, n int) *circles.Space {
	t.Helper()
	rng := pointgen.NewRNG(5)
	centers := make([]geom.Point, n)
	for i := range centers {
		centers[i] = geom.Point{rng.Float64() * 0.8, rng.Float64() * 0.8}
	}
	s, err := circles.NewSpace(centers)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func halfspaceSpace(t *testing.T, n, d int) *halfspace.Space {
	t.Helper()
	normals := halfspace.BoundingSimplex(d)
	normals = append(normals, pointgen.OnSphere(pointgen.NewRNG(7), n, d)...)
	s, err := halfspace.NewSpace(normals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func trapezoidSpace(t *testing.T) *trapezoid.Space {
	t.Helper()
	box := trapezoid.Box{XL: 0, XR: 100, YB: 0, YT: 100}
	segs := []trapezoid.Segment{
		{Y: 50, XL: 10, XR: 90},
		{Y: 70, XL: 20, XR: 30},
		{Y: 75, XL: 40, XR: 55},
		{Y: 30, XL: 15, XR: 80},
		{Y: 90, XL: 5, XR: 95},
	}
	s, err := trapezoid.NewSpace(segs, box)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestScannersMatchInConflictShim is the batch-scan property test: for every
// space, configuration, and order, FirstConflict must agree with the closure
// over InConflict that scanner-less spaces get.
func TestScannersMatchInConflictShim(t *testing.T) {
	ds := delaunaySpace(t, 9)
	checkScanner(t, "delaunay", ds, orderSet(ds.NumObjects(), ds.BaseSize()))
	cs := cornerSpace(t)
	checkScanner(t, "corner", cs, orderSet(cs.NumObjects(), cs.BaseSize()))
	us := circleSpace(t, 7)
	checkScanner(t, "circles", us, orderSet(us.NumObjects(), us.BaseSize()))
	for _, d := range []int{2, 3} {
		hs := halfspaceSpace(t, 6, d)
		checkScanner(t, "halfspace", hs, orderSet(hs.NumObjects(), hs.BaseSize()))
	}
	ts := trapezoidSpace(t)
	checkScanner(t, "trapezoid", ts, orderSet(ts.NumObjects(), ts.BaseSize()))
}

// TestPeakEnumerators checks the PeakEnumerator contract against brute
// force: for any below-set, EnumeratePeak(x, ...) must emit exactly once
// each configuration containing x in its defining set with all other
// defining objects below.
func TestPeakEnumerators(t *testing.T) {
	spaces := []struct {
		name string
		s    core.Space
	}{
		{"corner", cornerSpace(t)},
		{"delaunay", delaunaySpace(t, 8)},
	}
	for _, sp := range spaces {
		pe, ok := sp.s.(engine.PeakEnumerator)
		if !ok {
			t.Fatalf("%s: space does not implement PeakEnumerator", sp.name)
		}
		n := sp.s.NumObjects()
		order := orderSet(n, 1)[2]
		rank := make([]int, n)
		for i, o := range order {
			rank[o] = i
		}
		for x := 0; x < n; x++ {
			below := func(o int) bool { return rank[o] < rank[x] }
			want := map[int]int{}
			for c := 0; c < sp.s.NumConfigs(); c++ {
				def := sp.s.Defining(c)
				hasX, allBelow := false, true
				for _, o := range def {
					if o == x {
						hasX = true
					} else if !below(o) {
						allBelow = false
					}
				}
				if hasX && allBelow {
					want[c] = 1
				}
			}
			got := map[int]int{}
			pe.EnumeratePeak(x, below, func(c int) { got[c]++ })
			if len(got) != len(want) {
				t.Fatalf("%s: x=%d emitted %d configs, want %d", sp.name, x, len(got), len(want))
			}
			for c, k := range got {
				if k != 1 || want[c] != 1 {
					t.Fatalf("%s: x=%d config %d emitted %d times (want once, expected=%v)",
						sp.name, x, c, k, want[c] == 1)
				}
			}
		}
	}
}

// TestSpaceRoundsMatchesActive pins the engine refactor (CSR buckets, lazy
// peak enumeration, scanner fast path) to the definitional oracle on all
// five spaces and several orders: the final active set must equal T(X)
// (core.Active) regardless of insertion order.
func TestSpaceRoundsMatchesActive(t *testing.T) {
	spaces := []struct {
		name string
		s    core.Space
	}{
		{"delaunay", delaunaySpace(t, 9)},
		{"corner", cornerSpace(t)},
		{"circles", circleSpace(t, 7)},
		{"halfspace2", halfspaceSpace(t, 6, 2)},
		{"halfspace3", halfspaceSpace(t, 5, 3)},
		{"trapezoid", trapezoidSpace(t)},
	}
	for _, sp := range spaces {
		for oi, order := range orderSet(sp.s.NumObjects(), sp.s.BaseSize()) {
			want := core.Active(sp.s, order)
			sort.Ints(want)
			got, err := engine.SpaceRounds(sp.s, order)
			if err != nil {
				t.Fatalf("%s order#%d SpaceRounds: %v", sp.name, oi, err)
			}
			if len(got.Alive) != len(want) {
				t.Fatalf("%s order#%d: engine alive %d configs, T(X) has %d\nengine: %v\nT(X): %v",
					sp.name, oi, len(got.Alive), len(want), got.Alive, want)
			}
			for i := range want {
				if got.Alive[i] != want[i] {
					t.Fatalf("%s order#%d: alive sets differ at %d: engine %d, T(X) %d",
						sp.name, oi, i, got.Alive[i], want[i])
				}
			}
		}
	}
}

// TestSpaceRoundsMatchesRunGeneric compares against the full Algorithm 1
// brute-force process on tiny 2-supported instances (RunGeneric's support
// subset search is exponential in MaxSupport, so high-support spaces are
// covered by the T(X) oracle above instead).
func TestSpaceRoundsMatchesRunGeneric(t *testing.T) {
	spaces := []struct {
		name string
		s    core.Space
	}{
		{"delaunay", delaunaySpace(t, 7)},
		{"circles", circleSpace(t, 5)},
		{"halfspace2", halfspaceSpace(t, 3, 2)},
	}
	for _, sp := range spaces {
		for oi, order := range orderSet(sp.s.NumObjects(), sp.s.BaseSize()) {
			want, err := core.RunGeneric(sp.s, order)
			if err != nil {
				t.Fatalf("%s order#%d RunGeneric: %v", sp.name, oi, err)
			}
			got, err := engine.SpaceRounds(sp.s, order)
			if err != nil {
				t.Fatalf("%s order#%d SpaceRounds: %v", sp.name, oi, err)
			}
			wa := append([]int(nil), want.Alive...)
			sort.Ints(wa)
			if len(got.Alive) != len(wa) {
				t.Fatalf("%s order#%d: engine alive %d configs, Algorithm 1 %d\nengine: %v\noracle: %v",
					sp.name, oi, len(got.Alive), len(wa), got.Alive, wa)
			}
			for i := range wa {
				if got.Alive[i] != wa[i] {
					t.Fatalf("%s order#%d: alive sets differ at %d: engine %d, oracle %d",
						sp.name, oi, i, got.Alive[i], wa[i])
				}
			}
		}
	}
}
