package engine

import (
	"parhull/internal/conflict"
	"parhull/internal/conmap"
)

// shardedPresizeCap bounds the pre-size of the growable sharded map. The
// (d+1)n expectation is only reached by boundary-heavy inputs (points on a
// sphere); interior-heavy inputs create far fewer ridges, and zeroing a
// (d+1)n-entry empty table up front dominated the 3d-ball-1m profile (21%
// of wall time in map memclr at n=1e6, and ~40x that sunk cost at n=1e7).
// A capped pre-size keeps small constructions rehash-free while huge ones
// grow on demand — amortized O(1) per insert, paid only for ridges that
// actually exist.
const shardedPresizeCap = 1 << 18

// DefaultMapCapacity is the sizing rule for growable ridge multimaps: the
// expected number of distinct ridges touched by a construction on n points
// in dimension d — every facet registers at most d ridges and the expected
// number of created facets is O(d·n) for a random order — capped by
// shardedPresizeCap. This is a pre-size, not a limit: the sharded map grows
// past it, so over-sizing only wastes memory and zeroing time (a 4x
// pre-size costs ~90 MB and ~10% wall-clock on the ball-100k benchmark for
// nothing, and the uncapped rule itself was 21% of the ball-1m profile).
// See FixedMapCapacity for the tables that genuinely need full headroom.
func DefaultMapCapacity(n, d int) int {
	c := (d + 1) * n
	if c > shardedPresizeCap {
		c = shardedPresizeCap
	}
	return c
}

// FixedMapCapacity is the sizing rule for the fixed-capacity CAS/TAS tables
// (the paper's Algorithms 4/5): open-addressing with no growth, so they must
// never fill. 4x the expected ridge count keeps the load factor low even on
// adversarial inputs where every point is a hull vertex (sphere workloads);
// unlike DefaultMapCapacity it is never capped — a fixed table sized below
// the ridge count would fail, not slow down.
func FixedMapCapacity(n, d int) int { return 4 * (d + 1) * n }

// ConmapTable adapts a conmap.RidgeMap (MapSharded/MapCAS/MapTAS) to the
// driver's Table over sorted-index-slice ridges. Ridge slices are retained
// as map keys, which is why FreshRidges must publish arena- or
// heap-allocated slices.
type ConmapTable[FV any] struct {
	M conmap.RidgeMap[*FV]
}

// InsertAndSet implements Table.
func (t ConmapTable[FV]) InsertAndSet(r []int32, f *FV) (bool, error) {
	return t.M.InsertAndSet(conmap.MakeKey(r), f)
}

// GetValue implements Table.
func (t ConmapTable[FV]) GetValue(r []int32, not *FV) *FV {
	return t.M.GetValue(conmap.MakeKey(r), not)
}

// MergeFilter implements line 16 of Algorithm 3 (and line 9 of Algorithm 2):
// C(t) = { v in C(t1) ∪ C(t2) : keep(v) }, excluding the new point p, where
// keep is the kernel's exact visibility predicate against the new facet.
// Lists at least grain long (0 selects conflict.DefaultGrain) filter in
// parallel chunks; with a worker arena, shorter lists — the steady state —
// filter through the arena's scratch and compact into arena memory, with no
// pool round-trip and no per-facet allocation. The output and the multiset
// of visibility tests are identical on every path.
func MergeFilter[FV any](a *Arena[FV], c1, c2 []int32, p int32, keep func(int32) bool, grain int) []int32 {
	if a != nil {
		g := grain
		if g <= 0 {
			g = conflict.DefaultGrain
		}
		if len(c1)+len(c2) < g {
			return a.Scratch.MergeFilter(c1, c2, p, keep, a.Alloc)
		}
	}
	return conflict.MergeFilter(c1, c2, p, keep, grain)
}

// MergeFilterBatch is MergeFilter on the batched two-phase pipeline: a
// predicate-free ascending merge into per-worker scratch, then one
// flt.Filter call over the whole candidate run (see conflict.Filter for the
// kernel contract). Dispatch mirrors MergeFilter: arena scratch below the
// grain, pooled chunked-parallel scratch above it. flt is a type parameter
// so kernels pass their concrete filter without interface boxing — the
// steady-state path stays allocation-free. The survivor list and the
// multiset of visibility tests are identical to MergeFilter with the
// pointwise form of flt.
func MergeFilterBatch[FV any, F conflict.Filter](a *Arena[FV], c1, c2 []int32, p int32, flt F, grain int) []int32 {
	if a != nil {
		g := grain
		if g <= 0 {
			g = conflict.DefaultGrain
		}
		if len(c1)+len(c2) < g {
			return conflict.MergeFilterScratch(&a.Scratch, c1, c2, p, flt, a.Alloc)
		}
	}
	return conflict.MergeFilterBatch(c1, c2, p, flt, grain)
}

// MergeFilterFused is MergeFilterBatch with the two phases fused: one
// FilterMerge pass walks both conflict lists and classifies each candidate as
// it is merged, so the candidate run is never written to scratch and re-read.
// Dispatch mirrors MergeFilterBatch — arena scratch below the grain, pooled
// chunked-parallel pieces above it — and the survivor list and counter totals
// are identical to the two-phase pipeline with the same filter.
func MergeFilterFused[FV any, F conflict.FusedFilter](a *Arena[FV], c1, c2 []int32, p int32, flt F, grain int) []int32 {
	if a != nil {
		g := grain
		if g <= 0 {
			g = conflict.DefaultGrain
		}
		if len(c1)+len(c2) < g {
			return conflict.MergeFilterFusedScratch(&a.Scratch, c1, c2, p, flt, a.Alloc)
		}
		return conflict.MergeFilterFused(c1, c2, p, flt, grain, a.Alloc)
	}
	return conflict.MergeFilterFused(c1, c2, p, flt, grain, nil)
}
