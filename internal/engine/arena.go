package engine

import (
	"sync"

	"parhull/internal/conflict"
)

// Arena sizing: facets are slab-allocated in batches and every small int32
// slice a construction publishes (vertex tuples, ridges, conflict lists) is
// carved from per-worker blocks, so the steady-state cost of creating a
// facet is a few pointer bumps instead of 4-6 heap allocations.
const (
	arenaFacetSlab = 256
	arenaIntBlock  = 1 << 14 // 16384 int32 = 64 KiB per block
)

// Arena is one worker's private allocator on the work-stealing path, generic
// over the kernel's facet value type. It is a monotone bump allocator:
// within one construction, memory handed out is never recycled, so every
// published slice stays valid (and immutable) for the lifetime of the Result
// — the same lifetime heap-allocated facets had. Slabs and blocks are
// retained across constructions: Reset rewinds the cursors and re-zeroes the
// used facet prefixes (facets carry liveness state that must start clean),
// while int32 blocks need no zeroing because every carve is fully
// overwritten before it is read. Only the owning worker ever touches an
// arena (indexed by the executor's worker id), so no synchronization is
// needed; a nil *Arena falls back to plain heap allocation, which is what
// the non-pooled Group, rounds, and sequential schedules use.
type Arena[FV any] struct {
	facets    []FV   // remaining slots of the current facet slab
	slabs     [][]FV // every facet slab, in allocation order
	usedSlabs int    // slabs consumed this cycle (current = slabs[usedSlabs-1])

	block      []int32   // remaining space of the current int32 block
	blocks     [][]int32 // every block, in allocation order
	usedBlocks int       // blocks consumed this cycle

	// Planes is the structure-of-arrays plane storage of this worker's
	// facets (see PlaneArena): one row per plane-cached facet, carved in
	// creation order alongside the facet slab.
	Planes PlaneArena

	// Scratch is the worker's reusable merge-filter buffer (see
	// conflict.Scratch): steady-state conflict filtering touches no
	// sync.Pool and stays hot in the worker's cache.
	Scratch conflict.Scratch
	// Alloc is the bound IntsLen method, created once by NewArenas so the
	// hot path does not allocate a fresh method-value closure per facet.
	Alloc func(int) []int32
}

// NewArenas returns one arena per worker, Alloc closures pre-bound.
func NewArenas[FV any](n int) []Arena[FV] {
	as := make([]Arena[FV], n)
	for i := range as {
		as[i].init()
	}
	return as
}

func (a *Arena[FV]) init() { a.Alloc = a.IntsLen }

// Facet returns a zeroed facet from the slab (or the heap when a == nil).
// Whole slabs stay reachable as long as the arena does; Reset re-zeroes the
// used slots, which is why pooled results are only valid until the next
// cycle.
func (a *Arena[FV]) Facet() *FV {
	if a == nil {
		return new(FV)
	}
	if len(a.facets) == 0 {
		a.grabSlab()
	}
	f := &a.facets[0]
	a.facets = a.facets[1:]
	return f
}

// grabSlab advances to the next retained facet slab, allocating one the
// first cycle through.
func (a *Arena[FV]) grabSlab() {
	if a.usedSlabs < len(a.slabs) {
		a.facets = a.slabs[a.usedSlabs]
	} else {
		s := make([]FV, arenaFacetSlab)
		a.slabs = append(a.slabs, s)
		a.facets = s
	}
	a.usedSlabs++
}

// Ints carves a zero-length, capacity-n slice from the worker's block. The
// capacity is clamped to n, so an append beyond n can never write into a
// neighboring carve.
func (a *Arena[FV]) Ints(n int) []int32 {
	if a == nil {
		return make([]int32, 0, n)
	}
	if n > len(a.block) {
		a.grabBlock(n)
	}
	s := a.block[:0:n]
	a.block = a.block[n:]
	return s
}

// IntsLen is Ints with the slice pre-extended to length n, for callers that
// fill every slot (copy-style compaction, direct-index ridge fills). The
// slots are NOT zeroed — a retained block holds stale values from earlier
// cycles — so partial fills would leak old data into published slices.
func (a *Arena[FV]) IntsLen(n int) []int32 {
	return a.Ints(n)[:n]
}

// grabBlock advances to the next retained block that fits an n-int32 carve,
// allocating a fresh block (of at least the standard size) when none does.
// Retained blocks too small for the request are skipped — wasted for this
// cycle only, and rare: almost every block is the standard size, and only
// oversized conflict-list carves exceed it.
func (a *Arena[FV]) grabBlock(n int) {
	for a.usedBlocks < len(a.blocks) {
		b := a.blocks[a.usedBlocks]
		a.usedBlocks++
		if len(b) >= n {
			a.block = b
			return
		}
	}
	want := arenaIntBlock
	if n > want {
		want = n
	}
	b := make([]int32, want)
	a.blocks = append(a.blocks, b)
	a.usedBlocks = len(a.blocks)
	a.block = b
}

// Reset rewinds the arena for the next construction: cursors return to the
// first slab/block and the facet slots used this cycle are re-zeroed (a
// facet must start with clean liveness, plane, and slice fields). Int32
// blocks are rewound without zeroing — every carve is fully overwritten
// before it is read. The caller must guarantee no construction is touching
// the arena and that no previous Result is still in use.
func (a *Arena[FV]) Reset() {
	if a == nil {
		return
	}
	for i := 0; i < a.usedSlabs; i++ {
		s := a.slabs[i]
		if i == a.usedSlabs-1 {
			s = s[:len(s)-len(a.facets)] // only the consumed prefix
		}
		clear(s)
	}
	a.usedSlabs = 0
	a.facets = nil
	a.usedBlocks = 0
	a.block = nil
	a.Planes.Reset()
}

// ArenaPool hands arenas to transient holders — the Group schedule's
// bounded chain goroutines and the rounds schedule's barriered steps — so
// those schedules get slab-allocated facets (in creation, i.e. round, order)
// instead of per-facet heap allocation. Arenas are monotone, so recycling
// one to a new holder is safe: previously carved memory is never reused
// within a cycle. The pool retains every arena it ever created, which is
// what lets a pooled engine Reset them between cycles.
type ArenaPool[FV any] struct {
	mu   sync.Mutex
	free []*Arena[FV]
	all  []*Arena[FV]
}

// Get returns an idle arena, creating one if none is free. The live arena
// count is bounded by the holder concurrency (GroupLimit goroutines, or the
// rounds ParallelFor width).
func (p *ArenaPool[FV]) Get() *Arena[FV] {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return a
	}
	a := new(Arena[FV])
	a.init()
	p.all = append(p.all, a)
	return a
}

// Put returns an arena to the pool.
func (p *ArenaPool[FV]) Put(a *Arena[FV]) {
	p.mu.Lock()
	p.free = append(p.free, a)
	p.mu.Unlock()
}

// Reset rewinds every arena the pool ever handed out. Call only between
// cycles, with every arena returned.
func (p *ArenaPool[FV]) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, a := range p.all {
		a.Reset()
	}
}
