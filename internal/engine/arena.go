package engine

import "parhull/internal/conflict"

// Arena sizing: facets are slab-allocated in batches and every small int32
// slice a construction publishes (vertex tuples, ridges, conflict lists) is
// carved from per-worker blocks, so the steady-state cost of creating a
// facet is a few pointer bumps instead of 4-6 heap allocations.
const (
	arenaFacetSlab = 256
	arenaIntBlock  = 1 << 14 // 16384 int32 = 64 KiB per block
)

// Arena is one worker's private allocator on the work-stealing path, generic
// over the kernel's facet value type. It is a monotone bump allocator:
// memory handed out is never recycled, so every published slice stays valid
// (and immutable) for the lifetime of the Result — the same lifetime
// heap-allocated facets had. Only the owning worker ever touches an arena
// (indexed by the executor's worker id), so no synchronization is needed; a
// nil *Arena falls back to plain heap allocation, which is what the Group,
// rounds, and sequential schedules use.
type Arena[FV any] struct {
	facets []FV    // remaining slots of the current facet slab
	block  []int32 // remaining space of the current int32 block
	// Scratch is the worker's reusable merge-filter buffer (see
	// conflict.Scratch): steady-state conflict filtering touches no
	// sync.Pool and stays hot in the worker's cache.
	Scratch conflict.Scratch
	// Alloc is the bound IntsLen method, created once by NewArenas so the
	// hot path does not allocate a fresh method-value closure per facet.
	Alloc func(int) []int32
}

// NewArenas returns one arena per worker, Alloc closures pre-bound.
func NewArenas[FV any](n int) []Arena[FV] {
	as := make([]Arena[FV], n)
	for i := range as {
		a := &as[i]
		a.Alloc = a.IntsLen
	}
	return as
}

// Facet returns a zeroed facet from the slab (or the heap when a == nil).
// Whole slabs stay reachable as long as any facet in them does, which is
// exactly the facet lifetime: until the Result is dropped.
func (a *Arena[FV]) Facet() *FV {
	if a == nil {
		return new(FV)
	}
	if len(a.facets) == 0 {
		a.facets = make([]FV, arenaFacetSlab)
	}
	f := &a.facets[0]
	a.facets = a.facets[1:]
	return f
}

// Ints carves a zero-length, capacity-n slice from the worker's block. The
// capacity is clamped to n, so an append beyond n can never write into a
// neighboring carve. Oversized requests (longer than a quarter block) get
// their own allocation rather than wasting block space.
func (a *Arena[FV]) Ints(n int) []int32 {
	if a == nil || n > arenaIntBlock/4 {
		return make([]int32, 0, n)
	}
	if n > len(a.block) {
		a.block = make([]int32, arenaIntBlock)
	}
	s := a.block[:0:n]
	a.block = a.block[n:]
	return s
}

// IntsLen is Ints with the slice pre-extended to length n (for copy-style
// fills, e.g. the conflict scratch's compaction allocator).
func (a *Arena[FV]) IntsLen(n int) []int32 {
	return a.Ints(n)[:n]
}
