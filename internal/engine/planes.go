package engine

// Structure-of-arrays plane storage for the conflict-scan hot path. Each
// facet's cached hyperplane — normal, offset, and static certification
// threshold — is split into contiguous per-field arrays indexed by a row id,
// so the fused visibility filter reads plane coefficients as flat streams
// instead of chasing them through ~200-byte facet records scattered across
// facet slabs. Rows are handed out in facet-creation order, which on every
// schedule approximates the order the conflict scan later revisits them.
//
// The layout obeys the same grow-only/rewind discipline as the rest of the
// arena (see Arena): slab arrays are allocated once at a fixed capacity and
// NEVER grown or moved, so a published row reference stays valid for the
// lifetime of the Result; Reset rewinds the cursors and retains the slabs
// for the next construction. Rows need no zeroing on rewind — every field
// of a row is fully written before the owning facet is published, and a
// facet reaches other workers only through the ridge table or the facet
// log, both of which order those writes before any cross-worker read (the
// same happens-before edge the facet struct itself relies on).

// planeSlabRows is the row capacity of one plane slab, matching the facet
// slab size so one plane slab covers one facet slab exactly.
const planeSlabRows = arenaFacetSlab

// PlaneSlab is one fixed-capacity block of plane rows in per-field layout.
// Row i of a slab with stride d occupies Norms[i*d : (i+1)*d], Offs[i], and
// Eps[i]. The arrays are pointer-free, so retained slabs cost the garbage
// collector nothing to scan.
type PlaneSlab struct {
	Norms []float64
	Offs  []float64
	Eps   []float64
}

// PlaneArena is the bump allocator of plane rows, one per worker arena. It
// is single-owner like its enclosing Arena: only the owning worker carves
// rows, so no synchronization is needed. Slabs are retained across
// constructions and rewound by Reset; a construction in a different
// dimension discards them (stride is baked into the row layout).
type PlaneArena struct {
	cur    *PlaneSlab
	row    int // rows used in cur
	slabs  []*PlaneSlab
	used   int // slabs consumed this cycle
	stride int
}

// Row carves the next plane row for a facet in dimension stride, returning
// the slab and the row index within it. The caller must fully write the
// row's Norms/Offs/Eps fields before publishing the facet that references
// them.
func (pa *PlaneArena) Row(stride int) (*PlaneSlab, int32) {
	if pa.cur == nil || pa.row == planeSlabRows {
		pa.grab(stride)
	}
	r := pa.row
	pa.row++
	return pa.cur, int32(r)
}

// grab advances to the next retained slab, discarding every retained slab
// when the construction dimension changed (rare: a reused Builder switching
// dimensions) and allocating a fresh slab when none remains.
func (pa *PlaneArena) grab(stride int) {
	if pa.stride != stride {
		pa.slabs = pa.slabs[:0]
		pa.used = 0
		pa.stride = stride
	}
	if pa.used < len(pa.slabs) {
		pa.cur = pa.slabs[pa.used]
	} else {
		pa.cur = &PlaneSlab{
			Norms: make([]float64, planeSlabRows*stride),
			Offs:  make([]float64, planeSlabRows),
			Eps:   make([]float64, planeSlabRows),
		}
		pa.slabs = append(pa.slabs, pa.cur)
	}
	pa.used++
	pa.row = 0
}

// Reset rewinds the plane arena for the next construction, retaining every
// slab. Rows are not zeroed: stale rows are unreachable once the facet
// slots referencing them are cleared (Arena.Reset), and live rows are fully
// overwritten before publication.
func (pa *PlaneArena) Reset() {
	pa.cur = nil
	pa.row = 0
	pa.used = 0
}
