// Package halfspace implements Section 7's half-space intersection: finding
// the common intersection of half-spaces {x : a·x <= 1} in R^d (all of which
// contain the origin).
//
// Two routes are provided, as in the paper:
//
//   - Duality (IntersectDual): the intersection polytope is the dual of the
//     convex hull of the normal vectors a_i, so the parallel incremental
//     hull engine (internal/hulld) does the work and inherits all of its
//     guarantees — including the O(log n) dependence depth of Theorem 1.1.
//   - The direct configuration space (Space): objects are half-spaces,
//     configurations are vertices defined by d boundary hyperplanes, and a
//     configuration conflicts with every half-space that does not contain
//     its vertex. The paper shows this space has 2-support; the tests verify
//     that by brute force, and core.Simulate measures its dependence depth.
//
// The intersection must be bounded and the origin strictly interior, which
// holds whenever the normals' convex hull strictly contains the origin (the
// generators in pointgen guarantee this by covering the sphere).
package halfspace

import (
	"fmt"
	"math/big"

	"parhull/internal/geom"
	"parhull/internal/hulld"
)

// BoundingSimplex returns d+1 normals whose halfspaces {a·x <= 1} form a
// bounded simplex around the origin (the unit axis directions plus the
// all-minus-one vector, which positively span R^d). Prepending these to the
// insertion order keeps every prefix intersection bounded — the substitution
// this package uses instead of the paper's boundary configurations
// ("configurations with d-1 half-spaces and a direction", Section 7), which
// only matter for unbounded prefixes.
func BoundingSimplex(d int) []geom.Point {
	out := make([]geom.Point, 0, d+1)
	for i := 0; i < d; i++ {
		a := make(geom.Point, d)
		a[i] = 1
		out = append(out, a)
	}
	last := make(geom.Point, d)
	for i := range last {
		last[i] = -1
	}
	return append(out, last)
}

// Vertex is one vertex of the intersection polytope.
type Vertex struct {
	// Point is the vertex location (solved in exact rational arithmetic,
	// rounded to float64 on output).
	Point geom.Point
	// Halfspaces lists the d half-space indices whose boundaries meet here.
	Halfspaces []int32
}

// DualResult carries the intersection computed via duality plus the hull
// statistics of the underlying incremental run.
type DualResult struct {
	Vertices []Vertex
	// HullStats is the instrumentation of the dual hull construction; its
	// MaxDepth is the dependence depth of the halfspace-intersection
	// process (the two are isomorphic under duality).
	HullStats hulld.Stats
}

// IntersectDual computes the vertices of the intersection of the halfspaces
// {x : normals[i]·x <= 1} by running the parallel incremental hull
// (Algorithm 3) on the normal vectors and dualizing each hull facet back to
// a vertex. normals are consumed in the given order (shuffle for the
// randomized bounds).
func IntersectDual(normals []geom.Point, opt *hulld.Options) (*DualResult, error) {
	res, err := hulld.Par(normals, opt)
	if err != nil {
		return nil, fmt.Errorf("halfspace: dual hull failed: %w", err)
	}
	out := &DualResult{HullStats: res.Stats}
	for _, f := range res.Facets {
		v, err := solveVertex(normals, f.Verts)
		if err != nil {
			return nil, err
		}
		out.Vertices = append(out.Vertices, Vertex{Point: v, Halfspaces: append([]int32(nil), f.Verts...)})
	}
	return out, nil
}

// solveVertex solves a_i·x = 1 for the d halfspaces in idx, exactly.
func solveVertex(normals []geom.Point, idx []int32) (geom.Point, error) {
	d := len(normals[0])
	m := make([][]*big.Rat, d)
	for r, id := range idx {
		row := make([]*big.Rat, d+1)
		for c := 0; c < d; c++ {
			row[c] = new(big.Rat).SetFloat64(normals[id][c])
		}
		row[d] = big.NewRat(1, 1)
		m[r] = row
	}
	sol, ok := ratSolve(m, d)
	if !ok {
		return nil, fmt.Errorf("halfspace: halfspaces %v have linearly dependent normals", idx)
	}
	out := make(geom.Point, d)
	for i, r := range sol {
		out[i], _ = r.Float64()
	}
	return out, nil
}

// ratSolve performs exact Gaussian elimination on the augmented d x (d+1)
// system, returning the solution vector or ok=false if singular.
func ratSolve(m [][]*big.Rat, d int) ([]*big.Rat, bool) {
	for col := 0; col < d; col++ {
		piv := -1
		for r := col; r < d; r++ {
			if m[r][col].Sign() != 0 {
				piv = r
				break
			}
		}
		if piv == -1 {
			return nil, false
		}
		m[piv], m[col] = m[col], m[piv]
		for r := 0; r < d; r++ {
			if r == col || m[r][col].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Quo(m[r][col], m[col][col])
			for c := col; c <= d; c++ {
				t := new(big.Rat).Mul(f, m[col][c])
				m[r][c] = new(big.Rat).Sub(m[r][c], t)
			}
		}
	}
	sol := make([]*big.Rat, d)
	for i := 0; i < d; i++ {
		sol[i] = new(big.Rat).Quo(m[i][d], m[i][i])
	}
	return sol, true
}

// Contains reports whether point p satisfies normal·p <= 1, exactly.
func Contains(normal geom.Point, p geom.Point) bool {
	dot := new(big.Rat)
	for i := range normal {
		a := new(big.Rat).SetFloat64(normal[i])
		b := new(big.Rat).SetFloat64(p[i])
		dot.Add(dot, a.Mul(a, b))
	}
	return dot.Cmp(big.NewRat(1, 1)) <= 0
}
