package halfspace

import (
	"sort"
	"testing"

	"parhull/internal/core"
	"parhull/internal/geom"
	"parhull/internal/pointgen"
	"parhull/internal/stats"
)

// genNormals returns n unit-ish normals covering the sphere, so the
// intersection of {a·x <= 1} is bounded with the origin strictly inside.
func genNormals(seed int64, n, d int) []geom.Point {
	rng := pointgen.NewRNG(seed)
	normals := pointgen.OnSphere(rng, n, d)
	for _, a := range normals {
		s := 0.8 + 0.4*rng.Float64()
		for i := range a {
			a[i] *= s
		}
	}
	return normals
}

func subsetKey(ids []int) string {
	cp := append([]int(nil), ids...)
	sort.Ints(cp)
	b := make([]byte, 0, 3*len(cp))
	for _, v := range cp {
		b = append(b, byte(v), byte(v>>8), ',')
	}
	return string(b)
}

func TestDualMatchesDirectSpace(t *testing.T) {
	for _, d := range []int{2, 3} {
		normals := genNormals(int64(10+d), 14, d)
		dual, err := IntersectDual(normals, nil)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		sp, err := NewSpace(normals)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]int, len(normals))
		for i := range all {
			all[i] = i
		}
		act := core.Active(sp, all)
		if len(act) != len(dual.Vertices) {
			t.Fatalf("d=%d: direct space has %d vertices, duality %d", d, len(act), len(dual.Vertices))
		}
		want := map[string]bool{}
		for _, c := range act {
			want[subsetKey(sp.Defining(c))] = true
		}
		for _, v := range dual.Vertices {
			ids := make([]int, len(v.Halfspaces))
			for i, h := range v.Halfspaces {
				ids[i] = int(h)
			}
			if !want[subsetKey(ids)] {
				t.Fatalf("d=%d: dual vertex %v not in direct active set", d, ids)
			}
		}
	}
}

func TestVerticesSatisfyAllConstraints(t *testing.T) {
	normals := genNormals(20, 30, 3)
	dual, err := IntersectDual(normals, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dual.Vertices) < 4 {
		t.Fatalf("only %d vertices", len(dual.Vertices))
	}
	for _, v := range dual.Vertices {
		for i, a := range normals {
			// The vertex is rounded to float64, so allow the defining
			// halfspaces to be met with equality up to rounding.
			dot := 0.0
			for k := range a {
				dot += a[k] * v.Point[k]
			}
			if dot > 1+1e-6 {
				t.Fatalf("vertex %v violates halfspace %d (dot=%v)", v.Point, i, dot)
			}
		}
	}
}

func TestTwoSupportHalfspace(t *testing.T) {
	// E9/Section 7: the direct configuration space has 2-support.
	for _, d := range []int{2, 3} {
		normals := genNormals(int64(30+d), 9, d)
		sp, err := NewSpace(normals)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.CheckDegree(sp); err != nil {
			t.Fatal(err)
		}
		if _, err := core.CheckMultiplicity(sp); err != nil {
			t.Fatal(err)
		}
		all := make([]int, len(normals))
		for i := range all {
			all[i] = i
		}
		if err := core.VerifySupport(sp, all); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestSimulateDepth(t *testing.T) {
	// Seed with a bounding simplex so every prefix intersection is bounded
	// (the package's substitute for the paper's boundary configurations).
	normals := append(BoundingSimplex(2), genNormals(40, 13, 2)...)
	sp, err := NewSpace(normals)
	if err != nil {
		t.Fatal(err)
	}
	order := []int{0, 1, 2}
	for _, i := range pointgen.NewRNG(41).Perm(len(normals) - 3) {
		order = append(order, i+3)
	}
	g, err := core.Simulate(sp, order)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if k := core.MaxSupportUsed(g); k > 2 {
		t.Fatalf("support size %d > 2", k)
	}
	bound := stats.Theorem42MinSigma(2, 2) * stats.Harmonic(len(normals))
	if float64(g.MaxDepth) >= bound {
		t.Fatalf("depth %d >= %f", g.MaxDepth, bound)
	}
}

func TestDegenerateNormals(t *testing.T) {
	// Linearly dependent subsets are excluded, not fatal.
	normals := []geom.Point{{1, 0}, {2, 0}, {0, 1}, {0, -1}, {-1, 0}}
	sp, err := NewSpace(normals)
	if err != nil {
		t.Fatal(err)
	}
	// Parallel and anti-parallel pairs define no vertex: {0,1}, {0,4},
	// {1,4}, {2,3} are singular, so C(5,2) - 4 = 6 configurations remain.
	if sp.NumConfigs() != 6 {
		t.Fatalf("configs = %d, want 6", sp.NumConfigs())
	}
	if _, err := NewSpace(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestContains(t *testing.T) {
	if !Contains(geom.Point{1, 0}, geom.Point{1, 5}) {
		t.Error("boundary point rejected")
	}
	if Contains(geom.Point{1, 0}, geom.Point{1.0000001, 0}) {
		t.Error("violating point accepted")
	}
	if !Contains(geom.Point{1, 0}, geom.Point{-100, 3}) {
		t.Error("interior point rejected")
	}
}
