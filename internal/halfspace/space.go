package halfspace

import (
	"math/big"

	"parhull/internal/geom"
)

// Space is the direct configuration space for half-space intersection
// (Section 7): objects are half-spaces {x : a·x <= 1}, configurations are
// the vertices defined by d of their boundary hyperplanes, and a
// configuration conflicts with every half-space whose constraint its vertex
// violates. It implements core.Space; all conflict tests are exact.
type Space struct {
	normals []geom.Point
	d       int
	subsets [][]int
	verts   [][]*big.Rat // exact vertex per subset
}

// NewSpace enumerates the configuration space of the given halfspace
// normals. Subsets with linearly dependent normals define no vertex and are
// excluded (in general position there are none).
func NewSpace(normals []geom.Point) (*Space, error) {
	if len(normals) == 0 {
		return nil, errEmpty
	}
	d := len(normals[0])
	if err := geom.ValidateCloud(normals, d); err != nil {
		return nil, err
	}
	s := &Space{normals: normals, d: d}
	subset := make([]int, d)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == d {
			m := make([][]*big.Rat, d)
			for r, id := range subset {
				row := make([]*big.Rat, d+1)
				for c := 0; c < d; c++ {
					row[c] = new(big.Rat).SetFloat64(normals[id][c])
				}
				row[d] = big.NewRat(1, 1)
				m[r] = row
			}
			if sol, ok := ratSolve(m, d); ok {
				s.subsets = append(s.subsets, append([]int(nil), subset...))
				s.verts = append(s.verts, sol)
			}
			return
		}
		for i := start; i < len(normals); i++ {
			subset[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return s, nil
}

type constError string

func (e constError) Error() string { return string(e) }

const errEmpty = constError("halfspace: no halfspaces given")

// NumObjects implements core.Space.
func (s *Space) NumObjects() int { return len(s.normals) }

// NumConfigs implements core.Space.
func (s *Space) NumConfigs() int { return len(s.subsets) }

// Defining implements core.Space.
func (s *Space) Defining(c int) []int { return s.subsets[c] }

// InConflict implements core.Space: halfspace x conflicts with vertex c iff
// a_x · v(c) > 1, evaluated exactly.
func (s *Space) InConflict(c, x int) bool {
	for _, o := range s.subsets[c] {
		if o == x {
			return false
		}
	}
	dot := new(big.Rat)
	for i := 0; i < s.d; i++ {
		a := new(big.Rat).SetFloat64(s.normals[x][i])
		dot.Add(dot, a.Mul(a, s.verts[c][i]))
	}
	return dot.Cmp(big.NewRat(1, 1)) > 0
}

// Degree implements core.Space: g = d.
func (s *Space) Degree() int { return s.d }

// Multiplicity implements core.Space: each subset defines one vertex.
func (s *Space) Multiplicity() int { return 1 }

// BaseSize implements core.Space: n_b = d+1 (the smallest bounded
// intersection).
func (s *Space) BaseSize() int { return s.d + 1 }

// MaxSupport implements core.Space: k = 2 (Section 7).
func (s *Space) MaxSupport() int { return 2 }
