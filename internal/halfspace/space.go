package halfspace

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"parhull/internal/geom"
)

// ErrDegenerate reports input the vertex space cannot represent. Returned
// wrapped, with detail; the public layer maps it onto parhull.ErrDegenerate.
var ErrDegenerate = errors.New("halfspace: degenerate input")

// Space is the direct configuration space for half-space intersection
// (Section 7): objects are half-spaces {x : a·x <= 1}, configurations are
// the vertices defined by d of their boundary hyperplanes, and a
// configuration conflicts with every half-space whose constraint its vertex
// violates. It implements core.Space (plus engine.ConflictScanner); every
// conflict answer is exact — the scanner's float screen only decides which
// tests need the rational arithmetic.
type Space struct {
	normals []geom.Point
	d       int
	subsets [][]int
	verts   [][]*big.Rat // exact vertex per subset
	// Static-filter state for FirstConflict: the rounded float vertex per
	// configuration (d-strided), its max coordinate magnitude, and each
	// normal's 1-norm. |float(a·v) - a·v| <= (2d+2)u * |a|_1 * max|v_i| (d
	// rounding steps in the dot, one per rounded vertex coordinate), so a
	// threshold of 4(d+3)u * |a|_1 * max|v_i| certifies the comparison
	// against 1 with slack.
	fverts []float64
	vmax   []float64
	absSum []float64
}

// NewSpace enumerates the configuration space of the given halfspace
// normals. Subsets with linearly dependent normals define no vertex and are
// excluded (in general position there are none).
func NewSpace(normals []geom.Point) (*Space, error) {
	if len(normals) == 0 {
		return nil, errEmpty
	}
	d := len(normals[0])
	if err := geom.ValidateCloud(normals, d); err != nil {
		return nil, err
	}
	s := &Space{normals: normals, d: d}
	subset := make([]int, d)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == d {
			m := make([][]*big.Rat, d)
			for r, id := range subset {
				row := make([]*big.Rat, d+1)
				for c := 0; c < d; c++ {
					row[c] = new(big.Rat).SetFloat64(normals[id][c])
				}
				row[d] = big.NewRat(1, 1)
				m[r] = row
			}
			if sol, ok := ratSolve(m, d); ok {
				s.subsets = append(s.subsets, append([]int(nil), subset...))
				s.verts = append(s.verts, sol)
				vmax := 0.0
				for _, v := range sol {
					f, _ := v.Float64()
					s.fverts = append(s.fverts, f)
					if a := math.Abs(f); a > vmax {
						vmax = a
					}
				}
				s.vmax = append(s.vmax, vmax)
			}
			return
		}
		for i := start; i < len(normals); i++ {
			subset[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	s.absSum = make([]float64, len(normals))
	for i, a := range normals {
		sum := 0.0
		for _, x := range a {
			sum += math.Abs(x)
		}
		s.absSum[i] = sum
	}
	return s, nil
}

var errEmpty = fmt.Errorf("%w: no halfspaces given", ErrDegenerate)

// NumObjects implements core.Space.
func (s *Space) NumObjects() int { return len(s.normals) }

// NumConfigs implements core.Space.
func (s *Space) NumConfigs() int { return len(s.subsets) }

// Defining implements core.Space.
func (s *Space) Defining(c int) []int { return s.subsets[c] }

// InConflict implements core.Space: halfspace x conflicts with vertex c iff
// a_x · v(c) > 1, evaluated exactly.
func (s *Space) InConflict(c, x int) bool {
	for _, o := range s.subsets[c] {
		if o == x {
			return false
		}
	}
	return s.conflictExact(c, x)
}

// conflictExact is the rational comparison a_x · v(c) > 1.
func (s *Space) conflictExact(c, x int) bool {
	dot := new(big.Rat)
	for i := 0; i < s.d; i++ {
		a := new(big.Rat).SetFloat64(s.normals[x][i])
		dot.Add(dot, a.Mul(a, s.verts[c][i]))
	}
	return dot.Cmp(big.NewRat(1, 1)) > 0
}

// FirstConflict implements engine.ConflictScanner: the vertex decode happens
// once, and each object is screened by a float dot product with a static
// error threshold — only comparisons the filter cannot certify fall back to
// the exact big.Rat arithmetic, which for random inputs is almost none of
// them (versus all of them through InConflict).
func (s *Space) FirstConflict(c int, order []int) int {
	def := s.subsets[c]
	vf := s.fverts[c*s.d : (c+1)*s.d]
	const u = 0x1p-53
	k := 4 * float64(s.d+3) * u * s.vmax[c]
	for r, x := range order {
		skip := false
		for _, o := range def {
			if o == x {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		a := s.normals[x]
		dot := 0.0
		for i := 0; i < s.d; i++ {
			dot += a[i] * vf[i]
		}
		eps := k * s.absSum[x]
		if dot > 1+eps {
			return r
		}
		if dot >= 1-eps && s.conflictExact(c, x) {
			return r
		}
	}
	return len(order)
}

// Vertex returns configuration c's vertex rounded to float64 coordinates.
func (s *Space) Vertex(c int) geom.Point {
	return geom.Point(append([]float64(nil), s.fverts[c*s.d:(c+1)*s.d]...))
}

// Degree implements core.Space: g = d.
func (s *Space) Degree() int { return s.d }

// Multiplicity implements core.Space: each subset defines one vertex.
func (s *Space) Multiplicity() int { return 1 }

// BaseSize implements core.Space: n_b = d+1 (the smallest bounded
// intersection).
func (s *Space) BaseSize() int { return s.d + 1 }

// MaxSupport implements core.Space: k = 2 (Section 7).
func (s *Space) MaxSupport() int { return 2 }
