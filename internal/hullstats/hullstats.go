// Package hullstats holds the instrumentation shared by the incremental
// hull engines (2D, d-dimensional, and the Section 7 extensions): work
// counters (plane-side tests), facet life-cycle counters, and the
// dependence-depth accounting that realizes Definition 4.1 measurements.
package hullstats

import (
	"runtime"
	"sync"
	"sync/atomic"

	"parhull/internal/stats"
)

// Stats aggregates the instrumentation of one incremental construction.
type Stats struct {
	// VisibilityTests counts plane-side (orientation) predicate evaluations
	// attributable to the algorithm: initial conflict-list construction and
	// conflict-list filtering.
	VisibilityTests int64
	// PlaneCacheHits counts visibility tests decided by the cached facet
	// hyperplane (the strided-dot-product fast path); ExactFallbacks counts
	// tests where the cached filter could not certify the sign and the exact
	// orientation predicate decided instead. Their sum equals the tests
	// performed through facets that carry a plane cache; on well-separated
	// random inputs ExactFallbacks is 0.
	PlaneCacheHits, ExactFallbacks int64
	// FacetsCreated counts every facet ever added, including the initial
	// simplex.
	FacetsCreated int64
	// Replaced / Buried count facet deaths by cause; Finalized counts ridge
	// chains ending in the all-empty case. A facet can be condemned through
	// more than one of its ridges (replaced through one, buried through
	// another); the first kill wins, so the Replaced/Buried split depends
	// on the schedule while their sum is deterministic.
	Replaced, Buried, Finalized int64
	// MaxDepth is the depth of the configuration dependence graph over the
	// created facets (the D(G(S)) of Theorem 1.1).
	MaxDepth int
	// Rounds is the number of synchronous rounds executed (rounds engines
	// only; the recursion depth of Theorem 5.3).
	Rounds int
	// HullSize is the number of facets of the final hull.
	HullSize int
	// DepthHist[d] counts created facets at dependence depth d.
	DepthHist []int
	// RoundWidths[r] is the number of ready ProcessRidge tasks in round r+1
	// (rounds engines only) — the available parallelism per round.
	RoundWidths []int
	// CapacityRetries counts whole-construction restarts after a fixed
	// CAS/TAS ridge table reported capacity exhaustion: each retry doubles
	// the table (the public layer's degradation ladder). 0 on clean runs.
	CapacityRetries int
	// MapFallback reports that the fixed table was abandoned for the
	// growable sharded map after the retries were exhausted; the reported
	// Stats are then those of the sharded run.
	MapFallback bool
	// PreHullBlocks and PreHullKept describe the pre-hull reduction when it
	// ran: the number of block sub-hulls and the surviving point count fed
	// to the main construction (both 0 when the reduction was skipped).
	// All other counters describe the main construction only — the block
	// sub-hulls' visibility tests and facets are not included.
	PreHullBlocks, PreHullKept int
	// PeakBytes is the peak live-heap growth observed during the
	// construction, in bytes: the maximum of (heap in use - heap in use at
	// construction start) over the recorder's sample points (construction
	// start, after the initial hull, and at result collection). It is a
	// sampled watermark, not an exact accounting — allocations freed between
	// samples are invisible — but it tracks the dominant contributors (point
	// store, conflict lists, ridge table) closely, which is what the
	// n=1e7-1e8 memory-budget planning needs. 0 when counters are disabled.
	PeakBytes int64
}

// fastDepths is the span of dependence depths tracked with lock-free atomic
// bins. Depth is O(log n) whp (Theorem 1.1), so in practice every facet
// lands here; deeper facets spill to a mutex-guarded overflow list.
const fastDepths = 1024

// Recorder accumulates Stats concurrently. The zero value is NOT ready;
// use NewRecorder. A Recorder with nil VTests still counts facets but not
// visibility tests.
type Recorder struct {
	// VTests counts plane-side tests; nil disables counting. Fallbacks
	// counts the subset the cached-plane filter could not certify (decided
	// by the exact predicate instead); it is nil exactly when VTests is.
	// The filter-certified count is not tracked on the hot path: the plane
	// cache is all-or-nothing per engine (a single static threshold covers
	// the whole point cloud), so Snapshot derives PlaneCacheHits as
	// VisibilityTests - ExactFallbacks when SetPlaneCache(true) was called.
	VTests    *stats.ShardedCounter
	Fallbacks *stats.ShardedCounter

	planeOn bool

	created, repl, buried, final atomic.Int64
	maxD                         stats.MaxTracker

	depthBins []atomic.Int64

	mu       sync.Mutex
	overflow []int32

	// Heap watermark sampling (see Stats.PeakBytes). Written only by the
	// construction's driving goroutine at quiescent points, so plain fields
	// suffice. Sampling is skipped entirely when counters are off —
	// runtime.ReadMemStats stops the world briefly.
	baseHeap  uint64
	peakBytes int64
}

// NewRecorder returns a Recorder; counters enables visibility-test counting.
func NewRecorder(counters bool) *Recorder {
	r := &Recorder{depthBins: make([]atomic.Int64, fastDepths)}
	if counters {
		r.VTests = stats.NewShardedCounter(64)
		r.Fallbacks = stats.NewShardedCounter(64)
	}
	return r
}

// SetPlaneCache records whether the engine runs with the cached-plane fast
// path enabled; call once before construction starts (not thread-safe).
func (r *Recorder) SetPlaneCache(on bool) { r.planeOn = on }

// Counting reports whether visibility-test counting (and heap sampling) is
// enabled.
func (r *Recorder) Counting() bool { return r.VTests != nil }

// MarkHeapBase samples the current live heap as the construction's
// baseline. Call once at construction start, from the driving goroutine.
// No-op when counters are disabled.
func (r *Recorder) MarkHeapBase() {
	if r.VTests == nil {
		return
	}
	r.baseHeap = heapInUse()
	r.peakBytes = 0
}

// SampleHeap raises the peak watermark to the current live-heap growth over
// the baseline. Call from the driving goroutine at quiescent points. No-op
// when counters are disabled.
func (r *Recorder) SampleHeap() {
	if r.VTests == nil {
		return
	}
	if h := heapInUse(); h > r.baseHeap {
		if d := int64(h - r.baseHeap); d > r.peakBytes {
			r.peakBytes = d
		}
	}
}

func heapInUse() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// Reset rewinds the recorder for the next construction, keeping the counter
// shards and depth bins allocated. counters re-selects whether visibility
// tests are counted (the sharded counters are created or dropped only when
// the setting changes). Not thread-safe; call between constructions.
func (r *Recorder) Reset(counters bool) {
	if counters != (r.VTests != nil) {
		if counters {
			r.VTests = stats.NewShardedCounter(64)
			r.Fallbacks = stats.NewShardedCounter(64)
		} else {
			r.VTests, r.Fallbacks = nil, nil
		}
	} else {
		r.VTests.Reset()
		r.Fallbacks.Reset()
	}
	r.planeOn = false
	r.created.Store(0)
	r.repl.Store(0)
	r.buried.Store(0)
	r.final.Store(0)
	r.maxD.Reset()
	for i := range r.depthBins {
		r.depthBins[i].Store(0)
	}
	r.overflow = r.overflow[:0]
	r.baseHeap = 0
	r.peakBytes = 0
}

// Created records a facet creation at the given dependence depth.
func (r *Recorder) Created(depth int32) {
	r.created.Add(1)
	r.maxD.Observe(int64(depth))
	if depth >= 0 && depth < fastDepths {
		r.depthBins[depth].Add(1)
		return
	}
	r.mu.Lock()
	r.overflow = append(r.overflow, depth)
	r.mu.Unlock()
}

// Replaced records a facet death by replacement (first kill only: callers
// pass the result of their facet's kill()).
func (r *Recorder) Replaced(first bool) {
	if first {
		r.repl.Add(1)
	}
}

// Buried records a facet death by burial.
func (r *Recorder) Buried(first bool) {
	if first {
		r.buried.Add(1)
	}
}

// Finalized records a ridge chain ending with both conflict sets empty.
func (r *Recorder) Finalized() { r.final.Add(1) }

// Snapshot assembles the Stats.
func (r *Recorder) Snapshot(rounds, hullSize int) Stats {
	s := Stats{
		VisibilityTests: r.VTests.Load(),
		ExactFallbacks:  r.Fallbacks.Load(),
		FacetsCreated:   r.created.Load(),
		Replaced:        r.repl.Load(),
		Buried:          r.buried.Load(),
		Finalized:       r.final.Load(),
		MaxDepth:        int(r.maxD.Load()),
		Rounds:          rounds,
		HullSize:        hullSize,
		PeakBytes:       r.peakBytes,
	}
	if r.planeOn {
		s.PlaneCacheHits = s.VisibilityTests - s.ExactFallbacks
	}
	s.DepthHist = make([]int, s.MaxDepth+1)
	for d := 0; d <= s.MaxDepth && d < fastDepths; d++ {
		s.DepthHist[d] = int(r.depthBins[d].Load())
	}
	r.mu.Lock()
	for _, d := range r.overflow {
		s.DepthHist[d]++
	}
	r.mu.Unlock()
	return s
}
