// Package hullstats holds the instrumentation shared by the incremental
// hull engines (2D, d-dimensional, and the Section 7 extensions): work
// counters (plane-side tests), facet life-cycle counters, and the
// dependence-depth accounting that realizes Definition 4.1 measurements.
package hullstats

import (
	"sync"
	"sync/atomic"

	"parhull/internal/stats"
)

// Stats aggregates the instrumentation of one incremental construction.
type Stats struct {
	// VisibilityTests counts plane-side (orientation) predicate evaluations
	// attributable to the algorithm: initial conflict-list construction and
	// conflict-list filtering.
	VisibilityTests int64
	// FacetsCreated counts every facet ever added, including the initial
	// simplex.
	FacetsCreated int64
	// Replaced / Buried count facet deaths by cause; Finalized counts ridge
	// chains ending in the all-empty case. A facet can be condemned through
	// more than one of its ridges (replaced through one, buried through
	// another); the first kill wins, so the Replaced/Buried split depends
	// on the schedule while their sum is deterministic.
	Replaced, Buried, Finalized int64
	// MaxDepth is the depth of the configuration dependence graph over the
	// created facets (the D(G(S)) of Theorem 1.1).
	MaxDepth int
	// Rounds is the number of synchronous rounds executed (rounds engines
	// only; the recursion depth of Theorem 5.3).
	Rounds int
	// HullSize is the number of facets of the final hull.
	HullSize int
	// DepthHist[d] counts created facets at dependence depth d.
	DepthHist []int
	// RoundWidths[r] is the number of ready ProcessRidge tasks in round r+1
	// (rounds engines only) — the available parallelism per round.
	RoundWidths []int
}

// Recorder accumulates Stats concurrently. The zero value is NOT ready;
// use NewRecorder. A Recorder with nil VTests still counts facets but not
// visibility tests.
type Recorder struct {
	// VTests counts plane-side tests; nil disables counting.
	VTests *stats.ShardedCounter

	created, repl, buried, final atomic.Int64
	maxD                         stats.MaxTracker

	mu     sync.Mutex
	depths []int32
}

// NewRecorder returns a Recorder; counters enables visibility-test counting.
func NewRecorder(counters bool) *Recorder {
	r := &Recorder{}
	if counters {
		r.VTests = stats.NewShardedCounter(64)
	}
	return r
}

// Created records a facet creation at the given dependence depth.
func (r *Recorder) Created(depth int32) {
	r.created.Add(1)
	r.maxD.Observe(int64(depth))
	r.mu.Lock()
	r.depths = append(r.depths, depth)
	r.mu.Unlock()
}

// Replaced records a facet death by replacement (first kill only: callers
// pass the result of their facet's kill()).
func (r *Recorder) Replaced(first bool) {
	if first {
		r.repl.Add(1)
	}
}

// Buried records a facet death by burial.
func (r *Recorder) Buried(first bool) {
	if first {
		r.buried.Add(1)
	}
}

// Finalized records a ridge chain ending with both conflict sets empty.
func (r *Recorder) Finalized() { r.final.Add(1) }

// Snapshot assembles the Stats.
func (r *Recorder) Snapshot(rounds, hullSize int) Stats {
	s := Stats{
		VisibilityTests: r.VTests.Load(),
		FacetsCreated:   r.created.Load(),
		Replaced:        r.repl.Load(),
		Buried:          r.buried.Load(),
		Finalized:       r.final.Load(),
		MaxDepth:        int(r.maxD.Load()),
		Rounds:          rounds,
		HullSize:        hullSize,
	}
	s.DepthHist = make([]int, s.MaxDepth+1)
	r.mu.Lock()
	for _, d := range r.depths {
		s.DepthHist[d]++
	}
	r.mu.Unlock()
	return s
}
