package hullstats

import (
	"sync"
	"testing"
)

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Created(int32(i % 5))
				r.VTests.Inc(uint64(id))
				r.Replaced(i%2 == 0)
				r.Buried(i%4 == 0)
				r.Finalized()
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot(7, 42)
	if s.FacetsCreated != 800 || s.VisibilityTests != 800 {
		t.Fatalf("created=%d vtests=%d", s.FacetsCreated, s.VisibilityTests)
	}
	if s.Replaced != 400 || s.Buried != 200 || s.Finalized != 800 {
		t.Fatalf("replaced=%d buried=%d finalized=%d", s.Replaced, s.Buried, s.Finalized)
	}
	if s.Rounds != 7 || s.HullSize != 42 || s.MaxDepth != 4 {
		t.Fatalf("rounds=%d hull=%d depth=%d", s.Rounds, s.HullSize, s.MaxDepth)
	}
	total := 0
	for d, c := range s.DepthHist {
		if d < 5 && c != 160 {
			t.Fatalf("hist[%d]=%d", d, c)
		}
		total += c
	}
	if total != 800 {
		t.Fatalf("hist total %d", total)
	}
}

func TestRecorderNoCounters(t *testing.T) {
	r := NewRecorder(false)
	r.Created(3)
	r.VTests.Inc(1) // nil-safe no-op
	s := r.Snapshot(0, 0)
	if s.VisibilityTests != 0 || s.FacetsCreated != 1 || s.MaxDepth != 3 {
		t.Fatalf("%+v", s)
	}
	if len(s.DepthHist) != 4 || s.DepthHist[3] != 1 {
		t.Fatalf("hist: %v", s.DepthHist)
	}
}

func TestRecorderFirstKillSemantics(t *testing.T) {
	r := NewRecorder(false)
	r.Replaced(false) // second kill: not counted
	r.Buried(false)
	s := r.Snapshot(0, 0)
	if s.Replaced != 0 || s.Buried != 0 {
		t.Fatalf("%+v", s)
	}
}
