// Package baseline provides non-incremental comparators used as correctness
// oracles and performance baselines: an exact Graham scan and a quickhull
// implementation for 2D, plus brute-force hull checks that work in any
// dimension. None of this is on the paper's critical path — it exists so the
// incremental engines can be validated against independent code.
package baseline

import (
	"sort"
	"strconv"

	"parhull/internal/geom"
)

// GrahamScan returns the indices of the convex hull vertices of pts in
// counterclockwise order. Collinear boundary points are excluded (strict
// turns only), matching the strict-visibility convention of the incremental
// engines. It handles degenerate inputs (all collinear) by returning the
// extreme pair.
func GrahamScan(pts []geom.Point) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa[0] != pb[0] {
			return pa[0] < pb[0]
		}
		return pa[1] < pb[1]
	})
	// Drop exact duplicates.
	uniq := idx[:1]
	for _, i := range idx[1:] {
		if !pts[i].Equal(pts[uniq[len(uniq)-1]]) {
			uniq = append(uniq, i)
		}
	}
	idx = uniq
	if len(idx) == 1 {
		return []int{idx[0]}
	}
	// Andrew's monotone chain with strict turns.
	build := func(seq []int) []int {
		var h []int
		for _, i := range seq {
			for len(h) >= 2 && geom.Orient2D(pts[h[len(h)-2]], pts[h[len(h)-1]], pts[i]) <= 0 {
				h = h[:len(h)-1]
			}
			h = append(h, i)
		}
		return h
	}
	lower := build(idx)
	rev := make([]int, len(idx))
	for i := range idx {
		rev[i] = idx[len(idx)-1-i]
	}
	upper := build(rev)
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) < 2 { // all collinear: extreme pair
		return []int{idx[0], idx[len(idx)-1]}
	}
	return hull
}

// QuickHull2D returns hull vertex indices in CCW order using the quickhull
// divide-and-conquer method — the non-incremental baseline for the
// performance comparisons.
func QuickHull2D(pts []geom.Point) []int {
	n := len(pts)
	if n < 3 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	lo, hi := 0, 0
	for i := 1; i < n; i++ {
		if pts[i][0] < pts[lo][0] || (pts[i][0] == pts[lo][0] && pts[i][1] < pts[lo][1]) {
			lo = i
		}
		if pts[i][0] > pts[hi][0] || (pts[i][0] == pts[hi][0] && pts[i][1] > pts[hi][1]) {
			hi = i
		}
	}
	if lo == hi {
		return []int{lo}
	}
	var above, below []int
	for i := 0; i < n; i++ {
		if i == lo || i == hi {
			continue
		}
		switch geom.Orient2D(pts[lo], pts[hi], pts[i]) {
		case 1:
			above = append(above, i)
		case -1:
			below = append(below, i)
		}
	}
	var out []int
	out = append(out, lo)
	out = qhRec(pts, lo, hi, below, out) // right side of lo->hi: lower chain
	out = append(out, hi)
	out = qhRec(pts, hi, lo, above, out)
	return out
}

// qhRec appends, between a and b (walking CCW along the outside), the hull
// vertices among cand, all of which lie strictly right of the line a->b.
func qhRec(pts []geom.Point, a, b int, cand []int, out []int) []int {
	if len(cand) == 0 {
		return out
	}
	// Farthest point from line a-b (by twice-area magnitude).
	far, best := -1, 0.0
	for _, i := range cand {
		d := cross(pts[a], pts[b], pts[i])
		if d < 0 {
			d = -d
		}
		if far == -1 || d > best {
			far, best = i, d
		}
	}
	var left, right []int
	for _, i := range cand {
		if i == far {
			continue
		}
		if geom.Orient2D(pts[a], pts[far], pts[i]) == -1 {
			left = append(left, i)
		} else if geom.Orient2D(pts[far], pts[b], pts[i]) == -1 {
			right = append(right, i)
		}
	}
	out = qhRec(pts, a, far, left, out)
	out = append(out, far)
	out = qhRec(pts, far, b, right, out)
	return out
}

func cross(a, b, c geom.Point) float64 {
	return (b[0]-a[0])*(c[1]-a[1]) - (b[1]-a[1])*(c[0]-a[0])
}

// CheckHull2D verifies that hull (vertex indices, CCW) is the convex hull of
// pts: consecutive triples turn strictly left, and no input point lies
// strictly outside any edge. It returns a non-nil error description slice
// (empty means valid).
func CheckHull2D(pts []geom.Point, hull []int32) []string {
	var errs []string
	h := len(hull)
	if h < 3 {
		return []string{"hull has fewer than 3 vertices"}
	}
	for i := 0; i < h; i++ {
		a, b, c := hull[i], hull[(i+1)%h], hull[(i+2)%h]
		if geom.Orient2D(pts[a], pts[b], pts[c]) <= 0 {
			errs = append(errs, "hull not strictly convex CCW at "+strconv.Itoa(int(b)))
		}
	}
	for i := 0; i < h; i++ {
		a, b := hull[i], hull[(i+1)%h]
		for j := range pts {
			if geom.Orient2D(pts[a], pts[b], pts[j]) < 0 {
				errs = append(errs, "point "+strconv.Itoa(j)+" outside edge "+strconv.Itoa(int(a))+"-"+strconv.Itoa(int(b)))
			}
		}
	}
	return errs
}
