package baseline

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"parhull/internal/geom"
	"parhull/internal/pointgen"
)

func sortedCopy(a []int) []int {
	b := append([]int(nil), a...)
	sort.Ints(b)
	return b
}

func TestGrahamVsQuickhull(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := pointgen.NewRNG(seed)
		var pts []geom.Point
		if seed%2 == 0 {
			pts = pointgen.UniformBall(rng, 200, 2)
		} else {
			pts = pointgen.OnCircle(rng, 200)
		}
		g := sortedCopy(GrahamScan(pts))
		q := sortedCopy(QuickHull2D(pts))
		if len(g) != len(q) {
			t.Fatalf("seed %d: graham %d vs quickhull %d vertices", seed, len(g), len(q))
		}
		for i := range g {
			if g[i] != q[i] {
				t.Fatalf("seed %d: vertex sets differ", seed)
			}
		}
	}
}

func TestGrahamKnownSquare(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.25, 0.75}}
	h := sortedCopy(GrahamScan(pts))
	if len(h) != 4 || h[0] != 0 || h[1] != 1 || h[2] != 2 || h[3] != 3 {
		t.Fatalf("hull = %v", h)
	}
}

func TestGrahamDegenerate(t *testing.T) {
	if h := GrahamScan(nil); h != nil {
		t.Errorf("empty: %v", h)
	}
	if h := GrahamScan([]geom.Point{{1, 2}}); len(h) != 1 {
		t.Errorf("single: %v", h)
	}
	// Duplicates collapse.
	if h := GrahamScan([]geom.Point{{1, 2}, {1, 2}, {1, 2}}); len(h) != 1 {
		t.Errorf("duplicates: %v", h)
	}
	// All collinear: the extreme pair.
	line := pointgen.Collinear2D(geom.Point{0, 0}, geom.Point{4, 4}, 5)
	h := GrahamScan(line)
	if len(h) != 2 {
		t.Fatalf("collinear: %v", h)
	}
	// Collinear boundary points are excluded (strict turns).
	sq := []geom.Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 0}}
	if h := GrahamScan(sq); len(h) != 4 {
		t.Fatalf("collinear-on-edge kept: %v", h)
	}
}

func TestQuickHullTiny(t *testing.T) {
	if h := QuickHull2D([]geom.Point{{0, 0}, {1, 1}}); len(h) != 2 {
		t.Errorf("two points: %v", h)
	}
	if h := QuickHull2D([]geom.Point{{3, 3}}); len(h) != 1 {
		t.Errorf("one point: %v", h)
	}
}

func TestCheckHull2D(t *testing.T) {
	pts := []geom.Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}}
	good := []int32{0, 1, 2, 3}
	if errs := CheckHull2D(pts, good); len(errs) != 0 {
		t.Fatalf("good hull rejected: %v", errs)
	}
	// Clockwise order: convexity errors.
	if errs := CheckHull2D(pts, []int32{3, 2, 1, 0}); len(errs) == 0 {
		t.Fatal("clockwise hull accepted")
	}
	// Missing a vertex: point-outside errors.
	if errs := CheckHull2D(pts, []int32{0, 1, 3}); len(errs) == 0 {
		t.Fatal("hull missing vertex accepted")
	}
	if errs := CheckHull2D(pts, []int32{0, 1}); len(errs) == 0 {
		t.Fatal("2-vertex hull accepted")
	}
}

// TestQuickProperty: for random clouds, Graham output is convex and
// contains all points (via CheckHull2D).
func TestQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := pointgen.Gaussian(rng, 30+rng.Intn(100), 2)
		h := GrahamScan(pts)
		if len(h) < 3 {
			return false
		}
		hh := make([]int32, len(h))
		for i, v := range h {
			hh[i] = int32(v)
		}
		return len(CheckHull2D(pts, hh)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
