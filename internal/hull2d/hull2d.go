// Package hull2d implements randomized incremental convex hull in the plane:
// the sequential Algorithm 2 of the paper and the parallel Algorithm 3 in
// two flavors — an asynchronous fork-join engine (the binary-forking model
// of Theorem 5.5) and a round-synchronous engine (the PRAM schedule of
// Theorem 5.4) that exposes the recursion depth of Theorem 5.3 directly.
//
// In 2D a facet is a directed hull edge A->B with the interior on its left;
// a ridge is a shared endpoint of two adjacent edges; and the conflict set
// of an edge is the set of not-yet-inserted points strictly to its right.
// All engines insert points in the order given (callers shuffle for the
// randomized bounds), perform identical plane-side tests through exact
// predicates, and create the identical set of facets (asserted by tests) —
// only the schedule differs, exactly as Section 5.2 describes.
//
// Visibility hot path: each facet caches its line (normal and offset, three
// subtractions and a dot product at creation), point coordinates live in a
// flat geom.PointStore, and a single static certification threshold for the
// whole cloud (geom.StaticFilterEps over the store's per-dimension maxima)
// is computed once per construction. A plane-side test is then a 2-term dot
// product over contiguous memory plus one comparison; only when the result
// lands inside the threshold does the engine fall back to the exact Orient2D
// predicate, so the combinatorial output is bit-identical to the pure
// determinant path (Options.NoPlaneCache, kept for ablation).
//
// The engines require the input to be in general position (no 3 collinear
// points among those that interact with the hull boundary; see README).
package hull2d

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"parhull/internal/conflict"
	"parhull/internal/conmap"
	eng "parhull/internal/engine"
	"parhull/internal/facetlog"
	"parhull/internal/faultinject"
	"parhull/internal/geom"
	"parhull/internal/hullstats"
	"parhull/internal/sched"
)

// ErrDegenerate is returned when the input violates the general-position
// requirement in a way the engines detect (fewer than 3 points, or a
// collinear/duplicate base triangle).
var ErrDegenerate = errors.New("hull2d: degenerate input (need 3 non-collinear initial points)")

// noPivot is the conflict pivot of an empty conflict set: later than every
// real point index (the driver's sentinel).
const noPivot = eng.NoPivot

// arena is this kernel's per-worker allocator: the generic bump arena
// instantiated at the 2D facet type. A 2D facet stores its endpoints inline,
// so the only published slices are conflict lists.
type arena = eng.Arena[Facet]

// kernel adapts the 2D geometry to the generic Algorithm-3 driver in
// internal/engine: facets are directed edges, a ridge is a single shared
// endpoint, and the fresh ridge of a new edge is the pivot it just absorbed.
type kernel struct{ e *engine }

// Pivot implements engine.Kernel.
func (k kernel) Pivot(f *Facet) int32 { return f.pivot() }

// NewFacet implements engine.Kernel (2D facet construction cannot fail: the
// base triangle fixed the orientation and conflict filtering is total).
func (k kernel) NewFacet(a *arena, r int32, p int32, t1, t2 *Facet, round int32) (*Facet, error) {
	return k.e.newFacet(a, r, p, t1, t2, round), nil
}

// FreshRidges implements engine.Kernel: the one fresh ridge of the new edge
// is its endpoint other than r — the pivot just inserted.
func (k kernel) FreshRidges(a *arena, t *Facet, r int32, buf []int32) []int32 {
	if t.A == r {
		return append(buf, t.B)
	}
	return append(buf, t.A)
}

// Kill implements engine.Kernel.
func (k kernel) Kill(f *Facet) bool { return f.kill() }

// Facet is a directed hull edge A->B (indices into the insertion order).
// Facets are immutable after creation except for the liveness flag: the
// defining endpoints, conflict list, depth and cached plane never change,
// which is what makes the relaxed schedule of Algorithm 3 safe.
type Facet struct {
	A, B  int32
	Conf  []int32 // conflict set: visible points, ascending insertion index
	Depth int32   // configuration-dependence-graph depth (Definition 4.1)
	Round int32   // round of creation (rounds engine; 0 for initial facets)

	// Cached line of the edge, stored folded (visible-positive):
	// sign(nx*x + ny*y - off) = -Orient2D(A, B, p) whenever
	// |nx*x + ny*y - off| exceeds the engine's static threshold, so a
	// positive evaluation certifies visible with no per-test negation.
	// Zero (unused) when the engine runs with the cache disabled.
	nx, ny, off float64

	// ps/pi locate this edge's line row in the worker arena's
	// structure-of-arrays plane storage (engine.PlaneArena); the batch
	// filter streams coefficients from there when ps != nil. nil on the
	// heap paths and under the Options.NoSoALayout ablation.
	ps *eng.PlaneSlab
	pi int32

	// mark is scratch for the sequential engine's per-insertion visible-set
	// membership (holds the insertion index; never touched concurrently).
	mark int32

	dead atomic.Bool
}

// pivot returns min(C(t)) — the conflict pivot b_t of Section 5.2 — or
// noPivot for an empty conflict set.
func (f *Facet) pivot() int32 {
	if len(f.Conf) == 0 {
		return noPivot
	}
	return f.Conf[0]
}

// Alive reports whether the facet is still part of the hull H.
func (f *Facet) Alive() bool { return !f.dead.Load() }

// kill marks the facet dead, reporting whether this call was the first.
// (An edge can be condemned twice — replaced through one ridge and buried
// through the other — so counters only fire on the first kill.)
func (f *Facet) kill() bool { return !f.dead.Swap(true) }

// String formats the edge as "A->B".
func (f *Facet) String() string { return fmt.Sprintf("%d->%d", f.A, f.B) }

// Stats aggregates the instrumentation of one hull construction; see
// hullstats.Stats for field semantics.
type Stats = hullstats.Stats

// Result is the output of a hull construction.
type Result struct {
	// Vertices lists the hull vertex indices in counterclockwise order,
	// starting from the smallest index.
	Vertices []int32
	// Facets holds the surviving (alive) edges, in the same cyclic order.
	Facets []*Facet
	// Created holds every facet ever created, in creation order (sequential
	// engine) or an arbitrary order (parallel engines). Used to compare the
	// facet sets across engines and to export the dependence graph.
	Created []*Facet
	// HullSizes (sequential engine only) records |T(Y_i)| — the hull size
	// after each insertion step — used to evaluate the Theorem 3.1 bound.
	HullSizes []int
	Stats     Stats
}

// EdgeSet returns the multiset of created edges as canonical [2]int32 pairs
// (A, B as created, which is deterministic) mapped to multiplicity.
func (r *Result) EdgeSet() map[[2]int32]int {
	m := make(map[[2]int32]int, len(r.Created))
	for _, f := range r.Created {
		m[[2]int32{f.A, f.B}]++
	}
	return m
}

// engine carries the state shared by all three schedules.
type engine struct {
	pts      []geom.Point     // original points (exact-predicate path)
	store    *geom.PointStore // flat coordinates (plane-cache fast path)
	base     int              // number of initial hull points (>= 3)
	grain    int              // conflict-filter parallel grain (0 = default)
	planeEps float64          // static certification threshold; 0 = cache off
	batch    bool             // batch visibility filter (filter.go) vs pointwise closure
	soa      bool             // publish line rows into the arena SoA storage
	rec      *hullstats.Recorder
	inj      *faultinject.Injector // batch-scan fault site (nil in production)

	log *facetlog.Log[*Facet] // every facet ever created

	// ridgeIDs backs allocation-free conmap keys for the concurrent
	// engines: ridgeIDs[v:v+1] is the canonical id slice of ridge {v}.
	// Initialized by initRidgeIDs; nil in the sequential engine.
	ridgeIDs []int32

	trace   *Trace // optional (rounds engine)
	traceMu sync.Mutex

	// ru is the retained-state bundle when this engine is owned by a Reuse
	// (nil on the one-shot paths); initialHull and collectResult draw their
	// buffers from it.
	ru *Reuse
}

// initRidgeIDs prepares the backing array for key1 (concurrent engines).
func (e *engine) initRidgeIDs() {
	e.ridgeIDs = make([]int32, len(e.pts))
	for i := range e.ridgeIDs {
		e.ridgeIDs[i] = int32(i)
	}
}

// key1 returns the conmap key of ridge {v} without allocating.
func (e *engine) key1(v int32) conmap.Key {
	return conmap.MakeKey(e.ridgeIDs[v : v+1 : v+1])
}

// initPlane caches f's line folded: N = (b_y - a_y, a_x - b_x), the exact
// negation of the Orient2D cofactor normal, so sign(N·p - off) =
// -Orient2D(A, B, p) outside the static threshold — positive certifies
// visible. IEEE negation is exact (b-a == -(a-b) bit for bit, and the
// offset's negated products sum to the negated offset), so folding changes
// no classification relative to evaluating the unfolded line and flipping.
// With the SoA layout on and a worker arena supplied, the folded line is
// additionally published as a row of the arena's PlaneArena, fully written
// before the facet escapes this worker.
func (e *engine) initPlane(a *arena, f *Facet) {
	if e.planeEps <= 0 {
		return
	}
	pa, pb := e.store.Row(f.A), e.store.Row(f.B)
	f.nx = pb[1] - pa[1]
	f.ny = pa[0] - pb[0]
	f.off = f.nx*pa[0] + f.ny*pa[1]
	if e.soa && a != nil {
		ps, pi := a.Planes.Row(2)
		o := int(pi) * 2
		ps.Norms[o] = f.nx
		ps.Norms[o+1] = f.ny
		ps.Offs[pi] = f.off
		ps.Eps[pi] = e.planeEps
		f.ps, f.pi = ps, pi
	}
}

// visible reports whether point v lies strictly outside edge f (strictly to
// the right of the directed line A->B), counting the test. The cached-plane
// filter decides almost every call; the exact Orient2D predicate is the
// fallback, so the answer is always the exact one.
func (e *engine) visible(v int32, f *Facet) bool {
	e.rec.VTests.Inc(uint64(v))
	if eps := e.planeEps; eps > 0 {
		row := e.store.Row(v)
		s := f.nx*row[0] + f.ny*row[1] - f.off
		if s > eps {
			return true // folded line: positive certifies strictly right, visible
		}
		if s < -eps {
			return false // certified strictly left: not visible
		}
		e.rec.Fallbacks.Inc(uint64(v))
	}
	return e.exactVisible(v, f)
}

func (e *engine) record(f *Facet) {
	e.rec.Created(f.Depth)
	e.log.Append(uint32(f.A), f)
}

// newFacet builds the facet joining ridge r (a vertex index) with pivot p,
// supported by the pair (t1, t2): t1 is the facet being replaced (p visible
// from it), t2 the surviving neighbor. Orientation follows the CCW hull:
// if r is t1's tail the new edge is r->p, otherwise p->r. With a worker
// arena (work-stealing path) the facet and its conflict list come from
// per-worker blocks; nil a = heap (the other schedules).
func (e *engine) newFacet(a *arena, r, p int32, t1, t2 *Facet, round int32) *Facet {
	f := a.Facet()
	if r == t1.A {
		f.A, f.B = r, p
	} else {
		f.A, f.B = p, r
	}
	f.Depth = 1 + max32(t1.Depth, t2.Depth)
	f.Round = round
	e.initPlane(a, f)
	f.Conf = e.mergeFilter(a, t1.Conf, t2.Conf, p, f)
	e.record(f)
	return f
}

// mergeFilter implements line 16 of Algorithm 3 (and line 9 of Algorithm 2)
// through the driver's shared grain/arena discipline (engine.MergeFilter),
// with this kernel's exact visibility predicate as the filter. The batch
// path runs fused (merge and classification in one pass).
func (e *engine) mergeFilter(a *arena, c1, c2 []int32, p int32, f *Facet) []int32 {
	if e.batch {
		return eng.MergeFilterFused(a, c1, c2, p, facetFilter{e: e, f: f}, e.grain)
	}
	keep := func(v int32) bool { return e.visible(v, f) }
	return eng.MergeFilter(a, c1, c2, p, keep, e.grain)
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// initialHull validates the base polygon (the first e.base points, which
// must be in convex position) and returns its CCW edges with conflict lists
// over the remaining points. For base == 3 any non-degenerate triangle is
// reoriented to CCW; for larger bases (used by the Figure 1 driver) the
// points must already be listed in CCW convex position.
func (e *engine) initialHull() ([]*Facet, error) {
	n := len(e.pts)
	if n < 3 || e.base < 3 || e.base > n {
		return nil, ErrDegenerate
	}
	// Base-polygon scratch, edges, and conflict lists come from the retained
	// bundle / a pooled arena when the engine is owned by a Reuse — the
	// initial conflict lists are the largest slices of the whole run.
	var (
		a     *arena
		alloc func(int) []int32
		order []int32
	)
	if ru := e.ru; ru != nil {
		ap := ru.pool.Chain()
		a = ap.Get()
		defer ap.Put(a)
		alloc = a.Alloc
		if cap(ru.order) < e.base {
			ru.order = make([]int32, e.base)
		}
		order = ru.order[:e.base]
	} else {
		order = make([]int32, e.base)
	}
	for i := range order {
		order[i] = int32(i)
	}
	if e.base == 3 {
		switch geom.Orient2D(e.pts[0], e.pts[1], e.pts[2]) {
		case 0:
			return nil, ErrDegenerate
		case -1:
			order[1], order[2] = order[2], order[1]
		}
	} else {
		// Validate convex CCW position.
		for i := 0; i < e.base; i++ {
			a := e.pts[order[i]]
			b := e.pts[order[(i+1)%e.base]]
			c := e.pts[order[(i+2)%e.base]]
			if geom.Orient2D(a, b, c) <= 0 {
				return nil, fmt.Errorf("%w: initial polygon not strictly convex CCW at vertex %d", ErrDegenerate, (i+1)%e.base)
			}
		}
	}
	var facets []*Facet
	if e.ru != nil {
		facets = e.ru.inits[:0]
	} else {
		facets = make([]*Facet, 0, e.base)
	}
	for i := 0; i < e.base; i++ {
		f := a.Facet()
		f.A, f.B = order[i], order[(i+1)%e.base]
		e.initPlane(a, f)
		facets = append(facets, f)
	}
	if e.ru != nil {
		e.ru.inits = facets
	}
	// Conflict lists over the remaining points, one pass per facet so each
	// list comes out in ascending index order (parallel chunks for large n).
	for _, f := range facets {
		f := f
		if e.batch {
			f.Conf = conflict.BuildFilterInto(int32(e.base), int32(n), facetFilter{e: e, f: f}, e.grain, alloc)
		} else {
			f.Conf = conflict.Build(int32(e.base), int32(n),
				func(v int32) bool { return e.visible(v, f) }, e.grain)
		}
		e.record(f)
	}
	return facets, nil
}

// collectResult walks the alive facets into a closed CCW cycle.
func (e *engine) collectResult(rounds int) (*Result, error) {
	e.rec.SampleHeap()
	ru := e.ru
	var all []*Facet
	var next []*Facet
	if ru != nil {
		ru.created = e.log.SnapshotInto(ru.created[:0])
		all = ru.created
		if cap(ru.next) < len(e.pts) {
			ru.next = make([]*Facet, len(e.pts))
		}
		next = ru.next[:len(e.pts)]
		ru.next = next
		clear(next)
	} else {
		all = e.log.Snapshot()
		next = make([]*Facet, len(e.pts))
	}
	var start int32 = math.MaxInt32
	alive := 0
	for _, f := range all {
		if !f.Alive() {
			continue
		}
		alive++
		if next[f.A] != nil {
			return nil, fmt.Errorf("hull2d: two alive edges leave vertex %d", f.A)
		}
		next[f.A] = f
		if f.A < start {
			start = f.A
		}
	}
	if alive < 3 {
		return nil, fmt.Errorf("hull2d: only %d alive edges", alive)
	}
	var res *Result
	if ru != nil {
		ru.res = Result{Created: all, Facets: ru.facets[:0], Vertices: ru.vertices[:0]}
		res = &ru.res
	} else {
		res = &Result{Created: all}
	}
	at := start
	for steps := 0; steps < alive; steps++ {
		f := next[at]
		if f == nil {
			return nil, fmt.Errorf("hull2d: alive edges do not form a cycle (stuck at %d)", at)
		}
		next[at] = nil // consume, so a revisit is caught as a hole
		res.Vertices = append(res.Vertices, f.A)
		res.Facets = append(res.Facets, f)
		at = f.B
	}
	if at != start {
		return nil, fmt.Errorf("hull2d: alive edges form a path or multiple cycles, not one cycle")
	}
	res.Stats = e.rec.Snapshot(rounds, alive)
	if ru != nil {
		// Capture the (possibly regrown) backings so the next construction
		// reuses them at full capacity.
		ru.facets = res.Facets
		ru.vertices = res.Vertices
	}
	return res, nil
}

// newEngine assembles engine state. stripes sizes the facet log: the
// sequential engine passes 1 to keep Result.Created in creation order; the
// parallel engines stripe by worker count so record() does not serialize.
func newEngine(pts []geom.Point, base int, counters bool, grain, stripes int, noPlane, batch, soa bool) *engine {
	e := &engine{
		pts:   pts,
		store: geom.NewPointStore(pts),
		base:  base,
		grain: grain,
		batch: batch,
		soa:   soa,
		rec:   hullstats.NewRecorder(counters),
		log:   facetlog.New[*Facet](stripes),
	}
	if !noPlane {
		e.planeEps = geom.StaticFilterEps(e.store.MaxAbs())
	}
	e.rec.SetPlaneCache(e.planeEps > 0)
	e.rec.MarkHeapBase()
	return e
}

// parStripes is the facet-log stripe count for the concurrent engines.
func parStripes() int { return 4 * sched.Workers() }
