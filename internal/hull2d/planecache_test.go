package hull2d

import (
	"fmt"
	"testing"

	"parhull/internal/geom"
	"parhull/internal/pointgen"
)

// Cross-engine identity with the cached-line fast path on (default) and off
// (ablation): identical edge multiset, hull vertices, and visibility-test
// count — the filter only accelerates tests it can certify and defers the
// rest to the exact Orient2D predicate.

func sameResult2D(t *testing.T, label string, want, got *Result) {
	t.Helper()
	ws, gs := want.EdgeSet(), got.EdgeSet()
	if len(ws) != len(gs) {
		t.Fatalf("%s: %d distinct edges, want %d", label, len(gs), len(ws))
	}
	for k, c := range ws {
		if gs[k] != c {
			t.Fatalf("%s: edge %v multiplicity %d, want %d", label, k, gs[k], c)
		}
	}
	if len(want.Vertices) != len(got.Vertices) {
		t.Fatalf("%s: %d hull vertices, want %d", label, len(got.Vertices), len(want.Vertices))
	}
	for i := range want.Vertices {
		if want.Vertices[i] != got.Vertices[i] {
			t.Fatalf("%s: vertex cycles differ at %d", label, i)
		}
	}
	if want.Stats.VisibilityTests != got.Stats.VisibilityTests {
		t.Fatalf("%s: vtests %d, want %d", label, got.Stats.VisibilityTests, want.Stats.VisibilityTests)
	}
}

func TestPlaneCacheIdenticalOutput2D(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := pointgen.NewRNG(seed)
		for name, pts := range map[string][]geom.Point{
			"disk":   pointgen.UniformBall(rng, 400, 2),
			"circle": pointgen.OnCircle(rng, 400),
		} {
			label := func(eng string) string { return fmt.Sprintf("seed=%d %s %s", seed, name, eng) }
			exact, err := SeqNoPlaneCache(pts)
			if err != nil {
				t.Fatalf("%s: %v", label("seq-noplane"), err)
			}
			if exact.Stats.PlaneCacheHits != 0 || exact.Stats.ExactFallbacks != 0 {
				t.Fatalf("%s: plane counters nonzero with cache off", label("seq-noplane"))
			}
			cached, err := Seq(pts)
			if err != nil {
				t.Fatalf("%s: %v", label("seq"), err)
			}
			sameResult2D(t, label("seq"), exact, cached)
			if cached.Stats.ExactFallbacks != 0 {
				t.Errorf("%s: %d exact fallbacks on random input", label("seq"), cached.Stats.ExactFallbacks)
			}
			if cached.Stats.PlaneCacheHits != cached.Stats.VisibilityTests {
				t.Errorf("%s: %d plane hits, %d tests", label("seq"),
					cached.Stats.PlaneCacheHits, cached.Stats.VisibilityTests)
			}
			par, err := Par(pts, nil)
			if err != nil {
				t.Fatalf("%s: %v", label("par"), err)
			}
			sameResult2D(t, label("par"), exact, par)
			parOff, err := Par(pts, &Options{NoPlaneCache: true})
			if err != nil {
				t.Fatalf("%s: %v", label("par-noplane"), err)
			}
			sameResult2D(t, label("par-noplane"), exact, parOff)
			rr, _, err := Rounds(pts, nil)
			if err != nil {
				t.Fatalf("%s: %v", label("rounds"), err)
			}
			sameResult2D(t, label("rounds"), exact, rr)
		}
	}
}

// TestPlaneCacheNearDegenerate2D: a point within ~1e-16 of a hull edge's
// line cannot be certified by the static filter, so the exact predicate
// must decide it — with output identical to the determinant-only path.
func TestPlaneCacheNearDegenerate2D(t *testing.T) {
	pts := []geom.Point{
		{0, 0}, {4, 0}, {2, 3},
		{2, 1e-16},  // a hair above the bottom edge: inside, uncertifiable
		{2, -1e-16}, // a hair below: a hull vertex, uncertifiable
		{1, 1},
	}
	cached, err := Seq(pts)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Stats.ExactFallbacks == 0 {
		t.Error("no exact fallbacks on near-collinear input")
	}
	exact, err := SeqNoPlaneCache(pts)
	if err != nil {
		t.Fatal(err)
	}
	sameResult2D(t, "near-degenerate", exact, cached)
}
