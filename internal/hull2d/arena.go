package hull2d

import "parhull/internal/conflict"

// Arena sizing: facets slab-allocate in batches; conflict lists carve from
// per-worker int32 blocks. See internal/hulld/arena.go for the discipline —
// this is the 2D instance (a 2D facet stores its endpoints inline, so the
// only published slices are conflict lists).
const (
	arenaFacetSlab = 256
	arenaIntBlock  = 1 << 14 // 16384 int32 = 64 KiB per block
)

// arena is one worker's private bump allocator on the work-stealing path.
// Memory handed out is never recycled, so published facets and conflict
// lists live exactly as long as heap-allocated ones: until the Result is
// dropped. Only the owning worker (executor worker id) touches an arena;
// nil falls back to plain heap allocation (Group/rounds/sequential paths).
type arena struct {
	facets []Facet          // remaining slots of the current facet slab
	block  []int32          // remaining space of the current int32 block
	sc     conflict.Scratch // reusable merge-filter scratch for this worker
	alloc  func(int) []int32
}

// newArenas returns one arena per worker, alloc closures pre-bound so the
// hot path does not allocate method-value closures.
func newArenas(n int) []arena {
	as := make([]arena, n)
	for i := range as {
		a := &as[i]
		a.alloc = a.intsLen
	}
	return as
}

// facet returns a zeroed facet from the slab (heap when a == nil).
func (a *arena) facet() *Facet {
	if a == nil {
		return &Facet{}
	}
	if len(a.facets) == 0 {
		a.facets = make([]Facet, arenaFacetSlab)
	}
	f := &a.facets[0]
	a.facets = a.facets[1:]
	return f
}

// intsLen carves a length-n slice (capacity clamped to n) from the block;
// oversized requests get their own allocation.
func (a *arena) intsLen(n int) []int32 {
	if a == nil || n > arenaIntBlock/4 {
		return make([]int32, n)
	}
	if n > len(a.block) {
		a.block = make([]int32, arenaIntBlock)
	}
	s := a.block[:n:n]
	a.block = a.block[n:]
	return s
}
