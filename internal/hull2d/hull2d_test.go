package hull2d

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"parhull/internal/baseline"
	"parhull/internal/conmap"
	"parhull/internal/geom"
	"parhull/internal/pointgen"
	"parhull/internal/stats"
)

// hullVertexSet returns the hull vertices as a sorted index slice.
func hullVertexSet(vs []int32) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = int(v)
	}
	sort.Ints(out)
	return out
}

func sameIntSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func oracleSet(pts []geom.Point) []int {
	h := baseline.GrahamScan(pts)
	out := append([]int(nil), h...)
	sort.Ints(out)
	return out
}

func workloads(seed int64, n int) map[string][]geom.Point {
	rng := pointgen.NewRNG(seed)
	return map[string][]geom.Point{
		"disk":     pointgen.UniformBall(rng, n, 2),
		"circle":   pointgen.OnCircle(rng, n),
		"square":   pointgen.InCube(rng, n, 2),
		"gaussian": pointgen.Gaussian(rng, n, 2),
	}
}

func TestSeqMatchesOracle(t *testing.T) {
	for name, pts := range workloads(1, 400) {
		res, err := Seq(pts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sameIntSet(hullVertexSet(res.Vertices), oracleSet(pts)) {
			t.Fatalf("%s: hull vertex set differs from Graham scan", name)
		}
		if errs := baseline.CheckHull2D(pts, res.Vertices); len(errs) > 0 {
			t.Fatalf("%s: %v", name, errs[0])
		}
	}
}

func TestParMatchesSeqExactly(t *testing.T) {
	for name, pts := range workloads(2, 300) {
		seq, err := Seq(pts)
		if err != nil {
			t.Fatalf("%s seq: %v", name, err)
		}
		par, err := Par(pts, nil)
		if err != nil {
			t.Fatalf("%s par: %v", name, err)
		}
		// Same hull.
		if !sameIntSet(hullVertexSet(par.Vertices), hullVertexSet(seq.Vertices)) {
			t.Fatalf("%s: hulls differ", name)
		}
		// Theorem 5.4's "exact same facets along the way": identical
		// multiset of created edges.
		se, pe := seq.EdgeSet(), par.EdgeSet()
		if len(se) != len(pe) {
			t.Fatalf("%s: created %d distinct edges seq vs %d par", name, len(se), len(pe))
		}
		for e, c := range se {
			if pe[e] != c {
				t.Fatalf("%s: edge %v created %d times seq, %d par", name, e, c, pe[e])
			}
		}
		// "Exact same set of plane-side tests": equal counts.
		if seq.Stats.VisibilityTests != par.Stats.VisibilityTests {
			t.Fatalf("%s: visibility tests seq=%d par=%d", name,
				seq.Stats.VisibilityTests, par.Stats.VisibilityTests)
		}
		// Identical dependence graph: same max depth and histogram.
		if seq.Stats.MaxDepth != par.Stats.MaxDepth {
			t.Fatalf("%s: depth seq=%d par=%d", name, seq.Stats.MaxDepth, par.Stats.MaxDepth)
		}
		for d := range seq.Stats.DepthHist {
			if seq.Stats.DepthHist[d] != par.Stats.DepthHist[d] {
				t.Fatalf("%s: depth hist differs at %d", name, d)
			}
		}
	}
}

func TestRoundsMatchesSeq(t *testing.T) {
	for name, pts := range workloads(3, 250) {
		seq, err := Seq(pts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rr, _, err := Rounds(pts, nil)
		if err != nil {
			t.Fatalf("%s rounds: %v", name, err)
		}
		if !sameIntSet(hullVertexSet(rr.Vertices), hullVertexSet(seq.Vertices)) {
			t.Fatalf("%s: hulls differ", name)
		}
		if rr.Stats.VisibilityTests != seq.Stats.VisibilityTests {
			t.Fatalf("%s: vtests rounds=%d seq=%d", name, rr.Stats.VisibilityTests, seq.Stats.VisibilityTests)
		}
		if rr.Stats.Rounds <= 0 {
			t.Fatalf("%s: rounds = %d", name, rr.Stats.Rounds)
		}
		// The recursion depth upper-bounds the facet dependence depth
		// (every facet is created one round after its latest parent).
		if rr.Stats.Rounds < rr.Stats.MaxDepth {
			t.Fatalf("%s: rounds %d < max depth %d", name, rr.Stats.Rounds, rr.Stats.MaxDepth)
		}
	}
}

func TestMapVariantsAgree(t *testing.T) {
	pts := pointgen.OnCircle(pointgen.NewRNG(4), 500)
	want, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []struct {
		name string
		m    conmap.RidgeMap[*Facet]
	}{
		{"CAS", conmap.NewCASMap[*Facet](8 * len(pts))},
		{"TAS", conmap.NewTASMap[*Facet](8 * len(pts))},
	} {
		got, err := Par(pts, &Options{Map: mk.m})
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		if !sameIntSet(hullVertexSet(got.Vertices), hullVertexSet(want.Vertices)) {
			t.Fatalf("%s: hull differs", mk.name)
		}
		if got.Stats.FacetsCreated != want.Stats.FacetsCreated {
			t.Fatalf("%s: facets %d vs %d", mk.name, got.Stats.FacetsCreated, want.Stats.FacetsCreated)
		}
	}
}

func TestParDeterministic(t *testing.T) {
	pts := pointgen.UniformBall(pointgen.NewRNG(5), 2000, 2)
	a, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The Replaced/Buried split is schedule-dependent (see Stats docs);
	// everything else, including their sum, must be deterministic.
	if a.Stats.FacetsCreated != b.Stats.FacetsCreated ||
		a.Stats.VisibilityTests != b.Stats.VisibilityTests ||
		a.Stats.MaxDepth != b.Stats.MaxDepth ||
		a.Stats.Replaced+a.Stats.Buried != b.Stats.Replaced+b.Stats.Buried {
		t.Fatalf("nondeterministic stats: %+v vs %+v", a.Stats, b.Stats)
	}
	for d := range a.Stats.DepthHist {
		if a.Stats.DepthHist[d] != b.Stats.DepthHist[d] {
			t.Fatalf("nondeterministic depth histogram at %d", d)
		}
	}
}

// TestAliveIffEmptyConflicts checks the output invariant: a facet survives
// iff its conflict set is empty.
func TestAliveIffEmptyConflicts(t *testing.T) {
	pts := pointgen.InCube(pointgen.NewRNG(6), 600, 2)
	res, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Created {
		if f.Alive() != (len(f.Conf) == 0) {
			t.Fatalf("facet %v: alive=%v |C|=%d", f, f.Alive(), len(f.Conf))
		}
	}
}

// TestPivotExcluded checks that a facet's own defining points never appear
// in its conflict list and that conflict lists are strictly ascending.
func TestConflictListInvariants(t *testing.T) {
	pts := pointgen.OnCircle(pointgen.NewRNG(7), 300)
	res, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Created {
		for i, v := range f.Conf {
			if v == f.A || v == f.B {
				t.Fatalf("facet %v conflicts with its own endpoint", f)
			}
			if i > 0 && f.Conf[i-1] >= v {
				t.Fatalf("facet %v conflict list not strictly ascending", f)
			}
		}
	}
}

func TestErrorCases(t *testing.T) {
	if _, err := Seq([]geom.Point{{0, 0}, {1, 1}}); err == nil {
		t.Error("2 points accepted")
	}
	collinear := pointgen.Collinear2D(geom.Point{0, 0}, geom.Point{1, 1}, 5)
	if _, err := Seq(collinear); err == nil {
		t.Error("collinear base accepted")
	}
	if _, err := Par(collinear, nil); err == nil {
		t.Error("collinear base accepted by Par")
	}
	if _, err := Seq([]geom.Point{{0, 0}, {1, 0}, {math.NaN(), 1}}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := Seq([]geom.Point{{0, 0}, {1, 0}, {0, 1, 5}}); err == nil {
		t.Error("mixed dimensions accepted")
	}
	// Base polygon that is not convex CCW.
	bad := []geom.Point{{0, 0}, {1, 0}, {1, 1}, {0.9, 0.1}}
	if _, err := Par(bad, &Options{Base: 4}); err == nil {
		t.Error("non-convex base polygon accepted")
	}
}

func TestTriangleOnly(t *testing.T) {
	pts := []geom.Point{{0, 0}, {2, 0}, {0, 2}}
	for _, run := range []func() (*Result, error){
		func() (*Result, error) { return Seq(pts) },
		func() (*Result, error) { return Par(pts, nil) },
		func() (*Result, error) { r, _, err := Rounds(pts, nil); return r, err },
	} {
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.HullSize != 3 || len(res.Vertices) != 3 {
			t.Fatalf("triangle hull size %d", res.Stats.HullSize)
		}
	}
}

func TestClockwiseBaseTriangleReoriented(t *testing.T) {
	// First three points clockwise; engine must flip them.
	pts := []geom.Point{{0, 0}, {0, 2}, {2, 0}, {3, 3}, {0.5, 0.5}}
	res, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIntSet(hullVertexSet(res.Vertices), oracleSet(pts)) {
		t.Fatal("hull wrong after reorientation")
	}
}

// TestInteriorPointsNeverCreateFacets: points inside the base triangle
// should never appear as facet endpoints.
func TestInteriorPointsIgnored(t *testing.T) {
	pts := []geom.Point{{-10, -10}, {10, -10}, {0, 10}}
	rng := pointgen.NewRNG(8)
	for i := 0; i < 200; i++ {
		pts = append(pts, geom.Point{4*rng.Float64() - 2, 4*rng.Float64() - 2})
	}
	res, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FacetsCreated != 3 || res.Stats.HullSize != 3 {
		t.Fatalf("interior points created facets: %+v", res.Stats)
	}
}

// TestQuick runs the full cross-engine agreement property under
// testing/quick seeds.
func TestQuickCrossEngine(t *testing.T) {
	f := func(seed int64) bool {
		rng := pointgen.NewRNG(seed)
		n := 20 + rng.Intn(180)
		var pts []geom.Point
		if seed%2 == 0 {
			pts = pointgen.UniformBall(rng, n, 2)
		} else {
			pts = pointgen.OnCircle(rng, n)
		}
		seq, err := Seq(pts)
		if err != nil {
			return false
		}
		par, err := Par(pts, nil)
		if err != nil {
			return false
		}
		rr, _, err := Rounds(pts, nil)
		if err != nil {
			return false
		}
		if !sameIntSet(hullVertexSet(seq.Vertices), oracleSet(pts)) {
			return false
		}
		return sameIntSet(hullVertexSet(par.Vertices), hullVertexSet(seq.Vertices)) &&
			sameIntSet(hullVertexSet(rr.Vertices), hullVertexSet(seq.Vertices)) &&
			par.Stats.VisibilityTests == seq.Stats.VisibilityTests &&
			rr.Stats.MaxDepth == seq.Stats.MaxDepth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDepthLogarithmic reproduces the Theorem 1.1 shape at package level:
// the dependence depth stays under sigma*H_n for sigma at the theorem's
// threshold, and grows roughly linearly in log n.
func TestDepthLogarithmic(t *testing.T) {
	rng := pointgen.NewRNG(9)
	sigma := stats.Theorem42MinSigma(2, 2) // g=d=2, k=2
	for _, n := range []int{100, 1000, 10000} {
		pts := pointgen.OnCircle(rng, n)
		res, err := Par(pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		bound := sigma * stats.Harmonic(n)
		if float64(res.Stats.MaxDepth) >= bound {
			t.Fatalf("n=%d: depth %d >= bound %.1f", n, res.Stats.MaxDepth, bound)
		}
	}
}

// TestKillAccounting: every created facet is eventually replaced, buried, or
// alive, and the counters agree with the facet states.
func TestKillAccounting(t *testing.T) {
	pts := pointgen.OnCircle(pointgen.NewRNG(10), 400)
	res, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	dead := int64(0)
	for _, f := range res.Created {
		if !f.Alive() {
			dead++
		}
	}
	if got := res.Stats.Replaced + res.Stats.Buried; got != dead {
		t.Fatalf("replaced+buried = %d, dead facets = %d", got, dead)
	}
	if res.Stats.FacetsCreated != int64(len(res.Created)) {
		t.Fatalf("created counter %d vs slice %d", res.Stats.FacetsCreated, len(res.Created))
	}
}
