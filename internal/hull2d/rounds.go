package hull2d

import (
	"sort"

	eng "parhull/internal/engine"
	"parhull/internal/geom"
)

// EventKind classifies a trace event of the rounds engine.
type EventKind int

const (
	// EventCreated records a new facet replacing an old one (lines 14-17).
	EventCreated EventKind = iota
	// EventBuried records an equal-pivot ridge burying both facets (line 10).
	EventBuried
	// EventFinal records a ridge whose facets both have empty conflict sets
	// (line 9).
	EventFinal
)

func (k EventKind) String() string {
	switch k {
	case EventCreated:
		return "created"
	case EventBuried:
		return "buried"
	default:
		return "final"
	}
}

// Event is one ProcessRidge outcome in the round-synchronous schedule.
// For EventCreated, A is the new edge and B the edge it replaced; for the
// other kinds A and B are the two facets incident on the ridge.
type Event struct {
	Round int
	Kind  EventKind
	A, B  [2]int32
}

// Trace is the per-round event log (the machine-readable form of the
// paper's Figure 1 narrative).
type Trace struct {
	Events []Event
}

// ByRound returns the events of one round, sorted canonically.
func (tr *Trace) ByRound(round int) []Event {
	var out []Event
	for _, ev := range tr.Events {
		if ev.Round == round {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.A != b.A {
			return less2(a.A, b.A)
		}
		return less2(a.B, b.B)
	})
	return out
}

func less2(a, b [2]int32) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

func (e *engine) traceEvent(ev Event) {
	if e.trace == nil {
		return
	}
	e.traceMu.Lock()
	e.trace.Events = append(e.trace.Events, ev)
	e.traceMu.Unlock()
}

// observe maps the driver's rounds events onto the 2D Trace.
func (e *engine) observe(kind eng.EventKind, round int32, a, b *Facet) {
	var k EventKind
	switch kind {
	case eng.EventCreated:
		k = EventCreated
	case eng.EventBuried:
		k = EventBuried
	default:
		k = EventFinal
	}
	e.traceEvent(Event{Round: int(round), Kind: k,
		A: [2]int32{a.A, a.B}, B: [2]int32{b.A, b.B}})
}

// Rounds computes the convex hull with Algorithm 3 under the
// round-synchronous PRAM-style schedule of Theorem 5.4: every ready
// ProcessRidge call executes exactly one step per round, with a barrier
// between rounds (engine.Rounds). Stats.Rounds is then the recursion depth of
// Theorem 5.3. The flip of lines 11-12 is performed inline (it does not
// consume a round), matching the Figure 1 narrative.
//
// The returned Result additionally carries a Trace when opt.Trace is set.
func Rounds(pts []geom.Point, opt *Options) (*Result, *Trace, error) {
	if err := geom.ValidateCloud(pts, 2); err != nil {
		return nil, nil, err
	}
	e := newEngine(pts, opt.base(), opt == nil || !opt.NoCounters, opt.filterGrain(), parStripes(), opt.noPlaneCache(), opt.batchFilter(), opt.soaLayout())
	if opt != nil {
		e.inj = opt.Inject
	}
	if opt != nil && opt.Trace {
		e.trace = &Trace{}
	}
	facets, err := e.initialHull()
	if err != nil {
		return nil, nil, err
	}

	var initial []eng.Task[Facet, int32]
	initialTasks(facets, func(tk eng.Task[Facet, int32]) { initial = append(initial, tk) })
	var observe func(eng.EventKind, int32, *Facet, *Facet)
	if e.trace != nil {
		observe = e.observe
	}
	rounds, widths, err := eng.Rounds(opt.config(e), initial, observe)
	if err != nil {
		return nil, nil, err
	}
	res, err := e.collectResult(rounds)
	if err != nil {
		return nil, nil, err
	}
	res.Stats.RoundWidths = widths
	return res, e.trace, nil
}
