package hull2d

import (
	"runtime"
	"testing"

	"parhull/internal/pointgen"
)

func TestTraceMachinery(t *testing.T) {
	pts := pointgen.OnCircle(pointgen.NewRNG(20), 40)
	res, tr, err := Rounds(pts, &Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || len(tr.Events) == 0 {
		t.Fatal("no trace recorded")
	}
	total := 0
	for r := 1; r <= res.Stats.Rounds; r++ {
		evs := tr.ByRound(r)
		total += len(evs)
		// Canonical order: kinds ascending, then edges.
		for i := 1; i < len(evs); i++ {
			a, b := evs[i-1], evs[i]
			if a.Kind > b.Kind {
				t.Fatalf("round %d: events not sorted by kind", r)
			}
			if a.Kind == b.Kind && less2(b.A, a.A) {
				t.Fatalf("round %d: events not sorted by edge", r)
			}
		}
	}
	if total != len(tr.Events) {
		t.Fatalf("ByRound covered %d of %d events", total, len(tr.Events))
	}
	if EventCreated.String() != "created" || EventBuried.String() != "buried" || EventFinal.String() != "final" {
		t.Fatal("EventKind strings")
	}
	f := &Facet{A: 3, B: 7}
	if f.String() != "3->7" {
		t.Fatalf("Facet.String: %q", f.String())
	}
	// RoundWidths must sum to the number of executed tasks and start with
	// the initial corner count.
	if len(res.Stats.RoundWidths) != res.Stats.Rounds {
		t.Fatalf("widths %d, rounds %d", len(res.Stats.RoundWidths), res.Stats.Rounds)
	}
	if res.Stats.RoundWidths[0] != 3 {
		t.Fatalf("first round width %d, want 3 (initial triangle corners)", res.Stats.RoundWidths[0])
	}
}

// TestParallelFilterPathEquivalence forces the chunked parallel conflict
// filter inside the real engine (tiny grain, multiple workers) and requires
// results identical to the serial path.
func TestParallelFilterPathEquivalence(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	if old < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(old)
	}
	pts := pointgen.OnCircle(pointgen.NewRNG(21), 3000)
	serial, err := Par(pts, &Options{FilterGrain: 1 << 62})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Par(pts, &Options{FilterGrain: 64})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Stats.VisibilityTests != par.Stats.VisibilityTests ||
		serial.Stats.FacetsCreated != par.Stats.FacetsCreated ||
		serial.Stats.MaxDepth != par.Stats.MaxDepth ||
		serial.Stats.HullSize != par.Stats.HullSize {
		t.Fatalf("parallel filter changed results: %+v vs %+v", serial.Stats, par.Stats)
	}
	se, pe := serial.EdgeSet(), par.EdgeSet()
	for k, c := range se {
		if pe[k] != c {
			t.Fatalf("edge multiset differs at %v", k)
		}
	}
}
