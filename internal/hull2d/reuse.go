package hull2d

import (
	eng "parhull/internal/engine"
	"parhull/internal/geom"
)

// Reuse retains the heavy per-construction state of the 2D parallel engine
// across Par calls — the work-stealing substrate (see engine.Pool), the
// engine struct with its point store, recorder, and facet log, and the
// result-collection buffers — mirroring hulld.Reuse for the planar kernel.
//
// Contract: a Reuse serializes constructions (one Par at a time), and each
// Par invalidates the previous Result obtained through it. Close retires the
// worker pool; the last Result stays valid.
type Reuse struct {
	e    *engine
	pool *eng.Pool[Facet, int32]

	// initial-hull and collection buffers, grow-only.
	order    []int32
	inits    []*Facet
	next     []*Facet
	created  []*Facet
	facets   []*Facet
	vertices []int32
	res      Result
}

// NewReuse returns an empty Reuse; all pooled state is created lazily by the
// first construction.
func NewReuse() *Reuse { return &Reuse{pool: eng.NewPool[Facet, int32]()} }

// Close retires the retained worker pool. The Reuse must not be used again;
// the last Result remains valid (arenas are not scribbled).
func (ru *Reuse) Close() {
	if ru != nil {
		ru.pool.Close()
	}
}

// Reset rewinds the pooled arenas immediately, invalidating the previous
// Result obtained through this Reuse while keeping every retained buffer for
// the next construction. Optional — the next Par rewinds lazily anyway.
func (ru *Reuse) Reset() {
	if ru != nil {
		ru.pool.Reset()
	}
}

// engineFor returns the engine for this construction: a fresh one when ru is
// nil (the one-shot path), otherwise ru's retained engine rewound and
// reloaded. The rewind happens at the start of the next construction, so an
// aborted or panicked construction needs no cleanup to keep the Reuse usable
// and the previous Result stays valid until the next call.
func engineFor(ru *Reuse, pts []geom.Point, base int, counters bool, grain, stripes int, noPlane, batch, soa bool) *engine {
	if ru == nil {
		return newEngine(pts, base, counters, grain, stripes, noPlane, batch, soa)
	}
	ru.pool.Reset()
	if ru.e == nil {
		e := newEngine(pts, base, counters, grain, stripes, noPlane, batch, soa)
		e.ru = ru
		ru.e = e
		return e
	}
	e := ru.e
	e.pts = pts
	e.store.Load(pts)
	e.base = base
	e.grain = grain
	e.batch = batch
	e.soa = soa
	e.ridgeIDs = nil
	e.trace = nil
	e.planeEps = 0
	if !noPlane {
		e.planeEps = geom.StaticFilterEps(e.store.MaxAbs())
	}
	e.rec.Reset(counters)
	e.rec.SetPlaneCache(e.planeEps > 0)
	e.rec.MarkHeapBase()
	e.log.Reset()
	return e
}
