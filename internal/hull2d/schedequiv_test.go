package hull2d

import (
	"testing"

	"parhull/internal/sched"
)

// TestParSchedEquivalence is the cross-schedule contract of Theorem 5.5 in
// 2D: the work-stealing executor and the Group substrate must create the
// identical edge multiset (and test count) on fixed seeds — the schedule
// and the arena backing the memory are the only differences.
func TestParSchedEquivalence(t *testing.T) {
	for name, pts := range workloads(17, 400) {
		group, err := Par(pts, &Options{Sched: sched.KindGroup})
		if err != nil {
			t.Fatalf("%s group: %v", name, err)
		}
		steal, err := Par(pts, &Options{Sched: sched.KindSteal})
		if err != nil {
			t.Fatalf("%s steal: %v", name, err)
		}
		ge, se := group.EdgeSet(), steal.EdgeSet()
		if len(ge) != len(se) {
			t.Fatalf("%s: %d distinct edges under group vs %d under steal", name, len(ge), len(se))
		}
		for e, c := range ge {
			if se[e] != c {
				t.Fatalf("%s: edge %v created %d times under group, %d under steal", name, e, c, se[e])
			}
		}
		if group.Stats.VisibilityTests != steal.Stats.VisibilityTests {
			t.Fatalf("%s: vtests group=%d steal=%d", name,
				group.Stats.VisibilityTests, steal.Stats.VisibilityTests)
		}
		if !sameIntSet(hullVertexSet(group.Vertices), hullVertexSet(steal.Vertices)) {
			t.Fatalf("%s: hulls differ between schedules", name)
		}
	}
}
