package hull2d

import (
	"sync/atomic"

	"parhull/internal/conmap"
	"parhull/internal/geom"
	"parhull/internal/sched"
)

// Options configures the parallel engines.
type Options struct {
	// Base is the size of the pre-built initial hull (default 3). With
	// Base > 3 the first Base points must be a strictly convex CCW polygon;
	// this is how the Figure 1 example seeds the paper's 7-gon.
	Base int
	// Map is the ridge multimap M of Algorithm 3. Nil selects the growable
	// sharded map; tests and the E10 ablation install the paper's
	// Algorithm 4 (CAS) and Algorithm 5 (TAS) tables instead.
	Map conmap.RidgeMap[*Facet]
	// GroupLimit caps concurrently spawned ridge chains in the async engine
	// (<= 0 selects the sched default).
	GroupLimit int
	// NoCounters disables visibility-test counting (for pure-speed runs).
	NoCounters bool
	// FilterGrain sets the list size above which conflict filtering runs in
	// parallel chunks (0 = default; very large forces the serial path).
	// The output and the multiset of plane-side tests are identical either
	// way — this only reshapes the span (the A1 ablation in cmd/hullbench).
	FilterGrain int
	// NoPlaneCache disables the cached-hyperplane visibility fast path so
	// every test runs the exact determinant predicate (the A2 ablation in
	// cmd/hullbench). The combinatorial output is identical either way.
	NoPlaneCache bool
	// Trace records per-round events (rounds engine only).
	Trace bool
}

func (o *Options) base() int {
	if o == nil || o.Base == 0 {
		return 3
	}
	return o.Base
}

func (o *Options) filterGrain() int {
	if o == nil {
		return 0
	}
	return o.FilterGrain
}

func (o *Options) noPlaneCache() bool { return o != nil && o.NoPlaneCache }

// ridgeSlots abstracts the ridge multimap over plain vertex ids: in 2D a
// ridge IS a single vertex, so the default map is a flat array of CAS slots
// indexed by vertex — a perfect-hash instance of the Algorithm 4 table with
// no locks, no hashing, and no collisions. An explicit Options.Map routes
// through the generic conmap implementations instead (the E10 ablation).
type ridgeSlots interface {
	insertAndSet(v int32, f *Facet) bool
	getValue(v int32, not *Facet) *Facet
}

func (o *Options) ridgeSlots(e *engine) ridgeSlots {
	if o != nil && o.Map != nil {
		e.initRidgeIDs()
		return conmapSlots{m: o.Map, e: e}
	}
	return &vertexSlots{slots: make([]atomic.Pointer[Facet], len(e.pts))}
}

type vertexSlots struct{ slots []atomic.Pointer[Facet] }

func (m *vertexSlots) insertAndSet(v int32, f *Facet) bool {
	return m.slots[v].CompareAndSwap(nil, f)
}

func (m *vertexSlots) getValue(v int32, not *Facet) *Facet { return m.slots[v].Load() }

// conmapSlots adapts a generic conmap.RidgeMap to the vertex-id interface.
type conmapSlots struct {
	m conmap.RidgeMap[*Facet]
	e *engine
}

func (s conmapSlots) insertAndSet(v int32, f *Facet) bool {
	return s.m.InsertAndSet(s.e.key1(v), f)
}

func (s conmapSlots) getValue(v int32, not *Facet) *Facet {
	return s.m.GetValue(s.e.key1(v), not)
}

// task is one pending ProcessRidge(t1, r, t2) invocation: ridge r (a vertex
// index) currently shared by facets t1 and t2.
type task struct {
	t1 *Facet
	r  int32
	t2 *Facet
}

// Par computes the convex hull with the parallel incremental Algorithm 3,
// scheduled asynchronously: every ridge chain runs as soon as its facets
// exist, with fork-join spawns for newly ready ridges. This is the
// binary-forking-model execution of Theorem 5.5.
func Par(pts []geom.Point, opt *Options) (*Result, error) {
	if err := geom.ValidateCloud(pts, 2); err != nil {
		return nil, err
	}
	e := newEngine(pts, opt.base(), opt == nil || !opt.NoCounters, opt.filterGrain(), parStripes(), opt.noPlaneCache())
	facets, err := e.initialHull()
	if err != nil {
		return nil, err
	}
	m := opt.ridgeSlots(e)
	limit := 0
	if opt != nil {
		limit = opt.GroupLimit
	}
	g := sched.NewGroup(limit)

	// chain runs one ProcessRidge call chain to completion: the tail
	// recursion of line 19 is a loop, and the second-arrival recursion of
	// line 22 forks a fresh chain.
	var chain func(tk task)
	chain = func(tk task) {
		for {
			p1, p2 := tk.t1.pivot(), tk.t2.pivot()
			switch {
			case p1 == noPivot && p2 == noPivot:
				// Line 9: both conflict sets empty — the ridge is final.
				e.rec.Finalized()
				return
			case p1 == p2:
				// Line 10: the pivot buries the ridge and both facets.
				e.bury(tk.t1, tk.t2)
				return
			case p2 < p1:
				// Lines 11-12: flip so t1 is the facet to replace.
				tk.t1, tk.t2 = tk.t2, tk.t1
				p1 = p2
			}
			// Lines 14-17: p = min C(t1); t = join(r, p) replaces t1.
			t := e.newFacet(tk.r, p1, tk.t1, tk.t2, 0)
			e.replace(tk.t1)
			// Lines 18-22: the ridge shared with t2 continues this chain;
			// the fresh ridge {p} is handed to the map, and the second
			// facet to arrive forks its chain.
			if !m.insertAndSet(p1, t) {
				other := m.getValue(p1, t)
				g.Go(func() { chain(task{t1: t, r: p1, t2: other}) })
			}
			tk = task{t1: t, r: tk.r, t2: tk.t2}
		}
	}

	for i, f := range facets {
		f2 := facets[(i+1)%len(facets)]
		tk := task{t1: f, r: f.B, t2: f2}
		g.Go(func() { chain(tk) })
	}
	g.Wait()
	return e.collectResult(0)
}
