package hull2d

import (
	"context"
	"sync/atomic"

	"parhull/internal/conmap"
	eng "parhull/internal/engine"
	"parhull/internal/faultinject"
	"parhull/internal/geom"
	"parhull/internal/sched"
)

// Options configures the parallel engines.
type Options struct {
	// Base is the size of the pre-built initial hull (default 3). With
	// Base > 3 the first Base points must be a strictly convex CCW polygon;
	// this is how the Figure 1 example seeds the paper's 7-gon.
	Base int
	// Map is the ridge multimap M of Algorithm 3. Nil selects the growable
	// sharded map; tests and the E10 ablation install the paper's
	// Algorithm 4 (CAS) and Algorithm 5 (TAS) tables instead.
	Map conmap.RidgeMap[*Facet]
	// Sched selects the fork-join substrate of Par: the work-stealing
	// executor with per-worker arenas (sched.KindSteal, the default) or the
	// goroutine-per-chain Group (sched.KindGroup — the A3 ablation in
	// cmd/hullbench). The created-edge multiset is identical either way
	// (Theorem 5.5; asserted by TestParSchedEquivalence).
	Sched sched.Kind
	// GroupLimit caps concurrently spawned ridge chains in the async engine
	// (<= 0 selects the sched default; Group substrate only).
	GroupLimit int
	// Workers pins the work-stealing executor's pool width (Steal substrate
	// only; <= 0 selects GOMAXPROCS). The facet output is identical for any
	// width (Theorem 5.5) — only the schedule changes.
	Workers int
	// NoCounters disables visibility-test counting (for pure-speed runs).
	NoCounters bool
	// FilterGrain sets the list size above which conflict filtering runs in
	// parallel chunks (0 = default; very large forces the serial path).
	// The output and the multiset of plane-side tests are identical either
	// way — this only reshapes the span (the A1 ablation in cmd/hullbench).
	FilterGrain int
	// NoPlaneCache disables the cached-hyperplane visibility fast path so
	// every test runs the exact determinant predicate (the A2 ablation in
	// cmd/hullbench). The combinatorial output is identical either way.
	NoPlaneCache bool
	// NoBatchFilter routes conflict filtering through the pointwise closure
	// path instead of the batch filter pipeline (the filter ablation in
	// cmd/hullbench). The survivor lists are identical either way.
	NoBatchFilter bool
	// NoSoALayout keeps each edge's cached line inline in the facet record
	// instead of additionally publishing it into the worker arena's
	// structure-of-arrays plane rows (the layout ablation in cmd/hullbench's
	// scale experiment). Folded values are identical in both layouts, so the
	// edge output is bit-for-bit the same either way.
	NoSoALayout bool
	// Trace records per-round events (rounds engine only).
	Trace bool
	// Ctx, when non-nil, cancels the construction cooperatively at
	// ridge-step granularity; the run returns ctx.Err() with all workers
	// quiesced.
	Ctx context.Context
	// Inject arms deterministic fault injection (tests only; nil in
	// production).
	Inject *faultinject.Injector
	// Reuse, when non-nil, runs the construction on retained state (worker
	// pool, arenas, engine buffers) recycled across Par calls; each call
	// invalidates the previous Result obtained through the same Reuse. The
	// public parhull.Builder is the intended owner.
	Reuse *Reuse
}

func (o *Options) base() int {
	if o == nil || o.Base == 0 {
		return 3
	}
	return o.Base
}

func (o *Options) filterGrain() int {
	if o == nil {
		return 0
	}
	return o.FilterGrain
}

func (o *Options) noPlaneCache() bool { return o != nil && o.NoPlaneCache }

func (o *Options) batchFilter() bool { return o == nil || !o.NoBatchFilter }

func (o *Options) soaLayout() bool { return o == nil || !o.NoSoALayout }

func (o *Options) schedKind() sched.Kind {
	if o == nil {
		return sched.KindSteal
	}
	return o.Sched
}

// ridgeSlots builds the driver's ridge table over plain vertex ids: in 2D a
// ridge IS a single vertex, so the default table is a flat array of CAS slots
// indexed by vertex — a perfect-hash instance of the Algorithm 4 table with
// no locks, no hashing, and no collisions. An explicit Options.Map routes
// through the generic conmap implementations instead (the E10 ablation).
func (o *Options) ridgeSlots(e *engine) eng.Table[Facet, int32] {
	if o != nil && o.Map != nil {
		e.initRidgeIDs()
		return conmapSlots{m: o.Map, e: e}
	}
	return &vertexSlots{slots: make([]atomic.Pointer[Facet], len(e.pts))}
}

type vertexSlots struct{ slots []atomic.Pointer[Facet] }

// InsertAndSet implements engine.Table. The slot array is indexed by vertex
// (a perfect hash), so it cannot run out of capacity; the error is always nil.
func (m *vertexSlots) InsertAndSet(v int32, f *Facet) (bool, error) {
	return m.slots[v].CompareAndSwap(nil, f), nil
}

// GetValue implements engine.Table.
func (m *vertexSlots) GetValue(v int32, not *Facet) *Facet { return m.slots[v].Load() }

// conmapSlots adapts a generic conmap.RidgeMap to the vertex-id table.
type conmapSlots struct {
	m conmap.RidgeMap[*Facet]
	e *engine
}

// InsertAndSet implements engine.Table.
func (s conmapSlots) InsertAndSet(v int32, f *Facet) (bool, error) {
	return s.m.InsertAndSet(s.e.key1(v), f)
}

// GetValue implements engine.Table.
func (s conmapSlots) GetValue(v int32, not *Facet) *Facet {
	return s.m.GetValue(s.e.key1(v), not)
}

// config assembles the driver configuration for this construction.
func (o *Options) config(e *engine) eng.Config[Facet, int32] {
	limit := 0
	if o != nil {
		limit = o.GroupLimit
	}
	cfg := eng.Config[Facet, int32]{
		Kernel:     kernel{e: e},
		Table:      o.ridgeSlots(e),
		Rec:        e.rec,
		Sched:      o.schedKind(),
		GroupLimit: limit,
	}
	if o != nil {
		cfg.Workers = o.Workers
		cfg.Ctx = o.Ctx
		cfg.Inject = o.Inject
		if o.Reuse != nil {
			cfg.Pool = o.Reuse.pool
		}
	}
	return cfg
}

// initialTasks yields one task per ridge (shared endpoint) of the base
// polygon.
func initialTasks(facets []*Facet, fork func(eng.Task[Facet, int32])) {
	for i, f := range facets {
		fork(eng.Task[Facet, int32]{T1: f, R: f.B, T2: facets[(i+1)%len(facets)]})
	}
}

// Par computes the convex hull with the parallel incremental Algorithm 3,
// scheduled asynchronously: every ridge chain runs as soon as its facets
// exist, with fork-join spawns for newly ready ridges. This is the
// binary-forking-model execution of Theorem 5.5, run by the generic driver in
// internal/engine. Options.Sched picks the substrate: work-stealing executor
// (default) or goroutine-per-chain Group.
func Par(pts []geom.Point, opt *Options) (*Result, error) {
	if err := geom.ValidateCloud(pts, 2); err != nil {
		return nil, err
	}
	var ru *Reuse
	var inj *faultinject.Injector
	if opt != nil {
		ru = opt.Reuse
		inj = opt.Inject
	}
	if ru != nil {
		// The rewind of the retained pool happens inside engineFor; a panic
		// armed here fires on the calling goroutine, before any worker runs.
		inj.Visit(faultinject.SiteBuilderRewind)
	}
	e := engineFor(ru, pts, opt.base(), opt == nil || !opt.NoCounters, opt.filterGrain(), parStripes(), opt.noPlaneCache(), opt.batchFilter(), opt.soaLayout())
	e.inj = inj
	facets, err := e.initialHull()
	if err != nil {
		return nil, err
	}
	e.rec.SampleHeap()
	if err := eng.Par(opt.config(e), func(fork func(eng.Task[Facet, int32])) {
		initialTasks(facets, fork)
	}); err != nil {
		return nil, err
	}
	return e.collectResult(0)
}
