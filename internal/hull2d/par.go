package hull2d

import (
	"sync/atomic"

	"parhull/internal/conmap"
	"parhull/internal/geom"
	"parhull/internal/sched"
)

// Options configures the parallel engines.
type Options struct {
	// Base is the size of the pre-built initial hull (default 3). With
	// Base > 3 the first Base points must be a strictly convex CCW polygon;
	// this is how the Figure 1 example seeds the paper's 7-gon.
	Base int
	// Map is the ridge multimap M of Algorithm 3. Nil selects the growable
	// sharded map; tests and the E10 ablation install the paper's
	// Algorithm 4 (CAS) and Algorithm 5 (TAS) tables instead.
	Map conmap.RidgeMap[*Facet]
	// Sched selects the fork-join substrate of Par: the work-stealing
	// executor with per-worker arenas (sched.KindSteal, the default) or the
	// goroutine-per-chain Group (sched.KindGroup — the A3 ablation in
	// cmd/hullbench). The created-edge multiset is identical either way
	// (Theorem 5.5; asserted by TestParSchedEquivalence).
	Sched sched.Kind
	// GroupLimit caps concurrently spawned ridge chains in the async engine
	// (<= 0 selects the sched default; Group substrate only).
	GroupLimit int
	// NoCounters disables visibility-test counting (for pure-speed runs).
	NoCounters bool
	// FilterGrain sets the list size above which conflict filtering runs in
	// parallel chunks (0 = default; very large forces the serial path).
	// The output and the multiset of plane-side tests are identical either
	// way — this only reshapes the span (the A1 ablation in cmd/hullbench).
	FilterGrain int
	// NoPlaneCache disables the cached-hyperplane visibility fast path so
	// every test runs the exact determinant predicate (the A2 ablation in
	// cmd/hullbench). The combinatorial output is identical either way.
	NoPlaneCache bool
	// Trace records per-round events (rounds engine only).
	Trace bool
}

func (o *Options) base() int {
	if o == nil || o.Base == 0 {
		return 3
	}
	return o.Base
}

func (o *Options) filterGrain() int {
	if o == nil {
		return 0
	}
	return o.FilterGrain
}

func (o *Options) noPlaneCache() bool { return o != nil && o.NoPlaneCache }

func (o *Options) schedKind() sched.Kind {
	if o == nil {
		return sched.KindSteal
	}
	return o.Sched
}

// ridgeSlots abstracts the ridge multimap over plain vertex ids: in 2D a
// ridge IS a single vertex, so the default map is a flat array of CAS slots
// indexed by vertex — a perfect-hash instance of the Algorithm 4 table with
// no locks, no hashing, and no collisions. An explicit Options.Map routes
// through the generic conmap implementations instead (the E10 ablation).
type ridgeSlots interface {
	insertAndSet(v int32, f *Facet) bool
	getValue(v int32, not *Facet) *Facet
}

func (o *Options) ridgeSlots(e *engine) ridgeSlots {
	if o != nil && o.Map != nil {
		e.initRidgeIDs()
		return conmapSlots{m: o.Map, e: e}
	}
	return &vertexSlots{slots: make([]atomic.Pointer[Facet], len(e.pts))}
}

type vertexSlots struct{ slots []atomic.Pointer[Facet] }

func (m *vertexSlots) insertAndSet(v int32, f *Facet) bool {
	return m.slots[v].CompareAndSwap(nil, f)
}

func (m *vertexSlots) getValue(v int32, not *Facet) *Facet { return m.slots[v].Load() }

// conmapSlots adapts a generic conmap.RidgeMap to the vertex-id interface.
type conmapSlots struct {
	m conmap.RidgeMap[*Facet]
	e *engine
}

func (s conmapSlots) insertAndSet(v int32, f *Facet) bool {
	return s.m.InsertAndSet(s.e.key1(v), f)
}

func (s conmapSlots) getValue(v int32, not *Facet) *Facet {
	return s.m.GetValue(s.e.key1(v), not)
}

// task is one pending ProcessRidge(t1, r, t2) invocation: ridge r (a vertex
// index) currently shared by facets t1 and t2.
type task struct {
	t1 *Facet
	r  int32
	t2 *Facet
}

// Par computes the convex hull with the parallel incremental Algorithm 3,
// scheduled asynchronously: every ridge chain runs as soon as its facets
// exist, with fork-join spawns for newly ready ridges. This is the
// binary-forking-model execution of Theorem 5.5. Options.Sched picks the
// substrate: work-stealing executor (default) or goroutine-per-chain Group.
func Par(pts []geom.Point, opt *Options) (*Result, error) {
	if err := geom.ValidateCloud(pts, 2); err != nil {
		return nil, err
	}
	e := newEngine(pts, opt.base(), opt == nil || !opt.NoCounters, opt.filterGrain(), parStripes(), opt.noPlaneCache())
	facets, err := e.initialHull()
	if err != nil {
		return nil, err
	}
	m := opt.ridgeSlots(e)
	if opt.schedKind() == sched.KindGroup {
		limit := 0
		if opt != nil {
			limit = opt.GroupLimit
		}
		parGroup(e, facets, m, limit)
	} else {
		parSteal(e, facets, m)
	}
	return e.collectResult(0)
}

// step executes one ProcessRidge iteration of the chain holding tk.
// It either finishes the chain (line 9: both conflict sets empty — the
// ridge is final; line 10: the shared pivot buries the ridge and both
// facets) and reports done=false, or creates the replacement facet
// (lines 14-17: p = min C(t1); t = join(r, p) replaces t1), hands the
// fresh ridge {p} to the map — the second facet to arrive forks its
// chain (line 22) — and returns the continuation task for the ridge
// shared with t2 (line 19).
func (e *engine) step(a *arena, tk task, m ridgeSlots, fork func(task)) (task, bool) {
	p1, p2 := tk.t1.pivot(), tk.t2.pivot()
	switch {
	case p1 == noPivot && p2 == noPivot:
		e.rec.Finalized()
		return task{}, false
	case p1 == p2:
		e.bury(tk.t1, tk.t2)
		return task{}, false
	case p2 < p1:
		// Lines 11-12: flip so t1 is the facet to replace.
		tk.t1, tk.t2 = tk.t2, tk.t1
		p1 = p2
	}
	t := e.newFacet(a, tk.r, p1, tk.t1, tk.t2, 0)
	e.replace(tk.t1)
	if !m.insertAndSet(p1, t) {
		fork(task{t1: t, r: p1, t2: m.getValue(p1, t)})
	}
	return task{t1: t, r: tk.r, t2: tk.t2}, true
}

// initialTasks seeds one chain per ridge (shared endpoint) of the base
// polygon.
func initialTasks(facets []*Facet, fork func(task)) {
	for i, f := range facets {
		fork(task{t1: f, r: f.B, t2: facets[(i+1)%len(facets)]})
	}
}

// parGroup runs the chains on the bounded goroutine-per-fork Group — the
// PR-1 substrate, kept as the A3 ablation baseline.
func parGroup(e *engine, facets []*Facet, m ridgeSlots, limit int) {
	g := sched.NewGroup(limit)
	var chain func(tk task)
	chain = func(tk task) {
		for {
			next, ok := e.step(nil, tk, m, func(nt task) {
				g.Go(func() { chain(nt) })
			})
			if !ok {
				return
			}
			tk = next
		}
	}
	initialTasks(facets, func(tk task) {
		g.Go(func() { chain(tk) })
	})
	g.Wait()
}

// parSteal runs the chains on the work-stealing executor: a fixed pool of
// long-lived workers, forks pushed to the forking worker's own deque as
// plain task values (no closure, no goroutine spawn), and every facet and
// conflict list allocated from the executing worker's arena.
func parSteal(e *engine, facets []*Facet, m ridgeSlots) {
	nw := sched.Workers()
	arenas := newArenas(nw)
	// Per-worker fork closures are bound once, before any task can run, so
	// the chain hot path allocates nothing to fork.
	forkFns := make([]func(task), nw)
	var x *sched.Executor[task]
	x = sched.NewExecutor(nw, func(w int, tk task) {
		a, fork := &arenas[w], forkFns[w]
		for {
			next, ok := e.step(a, tk, m, fork)
			if !ok {
				return
			}
			tk = next
		}
	})
	for w := range forkFns {
		w := w
		forkFns[w] = func(nt task) { x.Fork(w, nt) }
	}
	initialTasks(facets, func(tk task) { x.Fork(sched.External, tk) })
	x.Wait()
}
