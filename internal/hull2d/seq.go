package hull2d

import (
	"fmt"

	"parhull/internal/geom"
)

// Seq computes the convex hull by the sequential randomized incremental
// method — Algorithm 2 of the paper — inserting points in the order given.
// It uses the Clarkson–Shor bipartite conflict graph, so its plane-side
// tests are exactly the conflict-list constructions, the same multiset of
// tests Algorithm 3 performs (this equality is asserted by tests).
//
// The facets it creates carry the same dependence depths as the parallel
// engines: the depth of a facet built on boundary ridge r between visible
// facet t1 and surviving facet t2 is 1 + max(depth(t1), depth(t2)), which is
// precisely the configuration dependence graph of Definition 4.1.
func Seq(pts []geom.Point) (*Result, error) { return seqFrom(pts, 3, true, false) }

// SeqFrom is Seq starting from a pre-built convex CCW polygon on the first
// base points (used by the Figure 1 driver and cross-engine tests).
func SeqFrom(pts []geom.Point, base int, counters bool) (*Result, error) {
	return seqFrom(pts, base, counters, false)
}

// SeqNoPlaneCache is Seq with the cached-hyperplane fast path disabled, so
// every visibility test runs the exact determinant predicate (ablation and
// cross-engine identity tests).
func SeqNoPlaneCache(pts []geom.Point) (*Result, error) { return seqFrom(pts, 3, true, true) }

func seqFrom(pts []geom.Point, base int, counters, noPlane bool) (*Result, error) {
	if err := geom.ValidateCloud(pts, 2); err != nil {
		return nil, err
	}
	e := newEngine(pts, base, counters, 0, 1, noPlane)
	facets, err := e.initialHull()
	if err != nil {
		return nil, err
	}
	n := int32(len(pts))

	// Doubly linked hull, indexed by vertex: next[v] is the edge leaving v,
	// prev[v] the edge entering it (a vertex has at most one of each).
	next := make([]*Facet, len(pts))
	prev := make([]*Facet, len(pts))
	for _, f := range facets {
		next[f.A] = f
		prev[f.B] = f
	}
	succ := func(f *Facet) *Facet { return next[f.B] }
	pred := func(f *Facet) *Facet { return prev[f.A] }

	// Bipartite conflict graph: point -> facets whose conflict list holds it.
	pf := make([][]*Facet, n)
	for _, f := range facets {
		for _, v := range f.Conf {
			pf[v] = append(pf[v], f)
		}
	}

	hullSizes := make([]int, 0, n)
	alive := e.base
	for i := 0; i < e.base; i++ {
		hullSizes = append(hullSizes, min(i+1, e.base))
	}
	// hullSizes[i] approximates |T(Y_{i+1})| for the base prefix (the base
	// polygon is given, not built incrementally); exact from here on.
	for i := int32(e.base); i < n; i++ {
		// R <- C^-1(v_i): the facets visible from the new point (line 5).
		// Membership is tracked by stamping each facet's scratch mark with
		// the insertion index (facets are born with mark 0 and i >= 3).
		var r []*Facet
		for _, f := range pf[i] {
			if f.Alive() {
				f.mark = i
				r = append(r, f)
			}
		}
		if len(r) == 0 {
			hullSizes = append(hullSizes, alive)
			continue // v_i falls inside the current hull
		}
		// The visible region is a contiguous arc; find its boundary ridges
		// (line 6): the unique start (predecessor not visible) and end
		// (successor not visible).
		var eStart, eEnd *Facet
		for _, f := range r {
			if g := pred(f); g == nil || g.mark != i {
				eStart = f
			}
			if g := succ(f); g == nil || g.mark != i {
				eEnd = f
			}
		}
		if eStart == nil || eEnd == nil {
			return nil, fmt.Errorf("hull2d: visible region of point %d wraps the whole hull (degenerate input?)", i)
		}
		t2L, t2R := pred(eStart), succ(eEnd)

		// Lines 7-10: one new facet per boundary ridge, with conflict lists
		// filtered from the two incident facets.
		left := e.newFacet(nil, eStart.A, i, eStart, t2L, 0)
		right := e.newFacet(nil, eEnd.B, i, eEnd, t2R, 0)

		// Line 11: H <- H \ R.
		for _, f := range r {
			e.rec.Replaced(f.kill())
		}
		// Relink: ... t2L, left, right, t2R ...
		next[left.A] = left
		prev[left.B] = left
		next[right.A] = right
		prev[right.B] = right
		for _, f := range []*Facet{left, right} {
			for _, v := range f.Conf {
				pf[v] = append(pf[v], f)
			}
		}
		alive += 2 - len(r)
		hullSizes = append(hullSizes, alive)
	}
	res, err := e.collectResult(0)
	if err == nil {
		res.HullSizes = hullSizes
	}
	return res, err
}
