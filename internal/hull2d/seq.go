package hull2d

import (
	"context"
	"fmt"

	eng "parhull/internal/engine"
	"parhull/internal/faultinject"
	"parhull/internal/geom"
)

// Seq computes the convex hull by the sequential randomized incremental
// method — Algorithm 2 of the paper — inserting points in the order given.
// It uses the Clarkson–Shor bipartite conflict graph, so its plane-side
// tests are exactly the conflict-list constructions, the same multiset of
// tests Algorithm 3 performs (this equality is asserted by tests).
//
// The facets it creates carry the same dependence depths as the parallel
// engines: the depth of a facet built on boundary ridge r between visible
// facet t1 and surviving facet t2 is 1 + max(depth(t1), depth(t2)), which is
// precisely the configuration dependence graph of Definition 4.1.
func Seq(pts []geom.Point) (*Result, error) { return seqFrom(nil, nil, pts, 3, true, false) }

// SeqCtx is Seq with cooperative cancellation (checked at insertion
// granularity), optional fault injection (nil in production), and the
// plane-cache ablation switch — the fully-plumbed entry the public layer
// calls.
func SeqCtx(ctx context.Context, inj *faultinject.Injector, pts []geom.Point, noPlane bool) (*Result, error) {
	return seqFrom(ctx, inj, pts, 3, true, noPlane)
}

// SeqFrom is Seq starting from a pre-built convex CCW polygon on the first
// base points (used by the Figure 1 driver and cross-engine tests).
func SeqFrom(pts []geom.Point, base int, counters bool) (*Result, error) {
	return seqFrom(nil, nil, pts, base, counters, false)
}

// SeqNoPlaneCache is Seq with the cached-hyperplane fast path disabled, so
// every visibility test runs the exact determinant predicate (ablation and
// cross-engine identity tests).
func SeqNoPlaneCache(pts []geom.Point) (*Result, error) { return seqFrom(nil, nil, pts, 3, true, true) }

// seqGeom supplies the 2D geometry of the generic Algorithm 2 loop
// (engine.Seq): the hull is a doubly linked cycle of directed edges indexed
// by vertex, and the visible region of a point is a contiguous arc whose two
// boundary ridges are found from the arc's endpoints.
type seqGeom struct {
	// next[v] is the alive edge leaving vertex v, prev[v] the edge entering
	// it (a vertex has at most one of each; replaced entries are simply
	// overwritten by Register).
	next, prev []*Facet
}

// Conf implements engine.SeqGeometry.
func (g *seqGeom) Conf(f *Facet) []int32 { return f.Conf }

// MarkVisible implements engine.SeqGeometry: membership in the visible set is
// tracked by stamping the facet's scratch mark with the insertion index
// (facets are born with mark 0 and i >= 3; a facet appears at most once in a
// point's conflict-graph bucket, so no dedup check is needed).
func (g *seqGeom) MarkVisible(f *Facet, i int32) bool {
	if !f.Alive() {
		return false
	}
	f.mark = i
	return true
}

// Boundary implements engine.SeqGeometry: the visible region is a contiguous
// arc; its boundary ridges (line 6) are the unique start (predecessor not
// visible) and end (successor not visible) of the arc.
func (g *seqGeom) Boundary(vis []*Facet, i int32, tasks []eng.Task[Facet, int32]) ([]eng.Task[Facet, int32], error) {
	var eStart, eEnd *Facet
	for _, f := range vis {
		if p := g.prev[f.A]; p == nil || p.mark != i {
			eStart = f
		}
		if s := g.next[f.B]; s == nil || s.mark != i {
			eEnd = f
		}
	}
	if eStart == nil || eEnd == nil {
		return nil, fmt.Errorf("%w: visible region of point %d wraps the whole hull", ErrDegenerate, i)
	}
	tasks = append(tasks,
		eng.Task[Facet, int32]{T1: eStart, R: eStart.A, T2: g.prev[eStart.A]},
		eng.Task[Facet, int32]{T1: eEnd, R: eEnd.B, T2: g.next[eEnd.B]})
	return tasks, nil
}

// Register implements engine.SeqGeometry.
func (g *seqGeom) Register(f *Facet) {
	g.next[f.A] = f
	g.prev[f.B] = f
}

func seqFrom(ctx context.Context, inj *faultinject.Injector, pts []geom.Point, base int, counters, noPlane bool) (*Result, error) {
	if err := geom.ValidateCloud(pts, 2); err != nil {
		return nil, err
	}
	e := newEngine(pts, base, counters, 0, 1, noPlane, true, false)
	e.inj = inj
	facets, err := e.initialHull()
	if err != nil {
		return nil, err
	}
	g := &seqGeom{next: make([]*Facet, len(pts)), prev: make([]*Facet, len(pts))}
	// baseSizes[i] approximates |T(Y_{i+1})| for the base prefix (the base
	// polygon is given, not built incrementally); exact from here on.
	baseSizes := make([]int, e.base)
	for i := range baseSizes {
		baseSizes[i] = min(i+1, e.base)
	}
	hullSizes, err := eng.Seq[Facet, int32](ctx, inj, kernel{e: e}, g, e.rec, facets, int32(len(pts)), baseSizes)
	if err != nil {
		return nil, err
	}
	res, err := e.collectResult(0)
	if err == nil {
		res.HullSizes = hullSizes
	}
	return res, err
}
