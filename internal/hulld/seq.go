package hulld

import (
	"fmt"

	"parhull/internal/geom"
)

// Seq computes the d-dimensional convex hull by the sequential randomized
// incremental method (Algorithm 2), inserting points in the order given.
// As in hull2d, it maintains the Clarkson–Shor bipartite conflict graph and
// a ridge-to-facets adjacency, so its plane-side tests are exactly the
// conflict filters — the same multiset Algorithm 3 performs.
func Seq(pts []geom.Point) (*Result, error) { return seq(pts, true, false) }

// SeqCounted is Seq with visibility-test counting switchable.
func SeqCounted(pts []geom.Point, counters bool) (*Result, error) { return seq(pts, counters, false) }

// SeqNoPlaneCache is Seq with the cached-hyperplane fast path disabled, so
// every visibility test runs the exact determinant predicate (ablation and
// cross-engine identity tests).
func SeqNoPlaneCache(pts []geom.Point) (*Result, error) { return seq(pts, true, true) }

func seq(pts []geom.Point, counters, noPlane bool) (*Result, error) {
	d, err := validate(pts)
	if err != nil {
		return nil, err
	}
	e := newEngine(pts, d, counters, 0, 1, noPlane)
	facets, err := e.initialHull()
	if err != nil {
		return nil, err
	}
	n := int32(len(pts))

	// adj registers every facet under each of its ridges; the live neighbor
	// across a ridge is the alive registered facet other than the querying
	// one. Dead facets are pruned lazily.
	adj := map[ridgeMapKey][]*Facet{}
	register := func(f *Facet) {
		for omit := range f.Verts {
			k := ridgeKeyOmit(f.Verts, omit)
			adj[k] = append(adj[k], f)
		}
	}
	for _, f := range facets {
		register(f)
	}

	// Bipartite conflict graph: point -> facets it is visible from.
	pf := make([][]*Facet, n)
	for _, f := range facets {
		for _, v := range f.Conf {
			pf[v] = append(pf[v], f)
		}
	}

	hullSizes := make([]int, 0, n)
	alive := d + 1
	for i := 0; i <= d; i++ {
		hullSizes = append(hullSizes, min(i+2, d+1))
	}
	for i := int32(d + 1); i < n; i++ {
		// R <- C^-1(v_i). Membership is tracked by stamping each facet's
		// scratch mark with the insertion index (facets are born with mark 0
		// and i >= d+1 > 0, so stale marks never collide).
		var r []*Facet
		for _, f := range pf[i] {
			if f.Alive() && f.mark != i {
				f.mark = i
				r = append(r, f)
			}
		}
		if len(r) == 0 {
			hullSizes = append(hullSizes, alive)
			continue
		}
		// For each boundary ridge (one incident facet visible, the other
		// not), build the new facet from the pair (lines 6-10).
		var created []*Facet
		for _, f := range r {
			for qi := range f.Verts {
				k := ridgeKeyOmit(f.Verts, qi)
				var g *Facet
				list := adj[k]
				aliveList := list[:0]
				for _, h := range list {
					if h.Alive() {
						aliveList = append(aliveList, h)
						if h != f {
							g = h
						}
					}
				}
				adj[k] = aliveList
				if g == nil {
					return nil, fmt.Errorf("hulld: ridge of %v has no live neighbor (degenerate input?)", f)
				}
				if g.mark == i {
					continue // interior ridge of the visible region
				}
				t, err := e.newFacet(nil, ridgeWithout(f, f.Verts[qi]), i, f, g, 0)
				if err != nil {
					return nil, err
				}
				created = append(created, t)
			}
		}
		for _, f := range r {
			e.rec.Replaced(f.kill())
		}
		for _, t := range created {
			register(t)
			for _, v := range t.Conf {
				pf[v] = append(pf[v], t)
			}
		}
		alive += len(created) - len(r)
		hullSizes = append(hullSizes, alive)
	}
	res, err := e.collectResult(0)
	if err == nil {
		res.HullSizes = hullSizes
	}
	return res, err
}
