package hulld

import (
	"context"
	"fmt"

	eng "parhull/internal/engine"
	"parhull/internal/faultinject"
	"parhull/internal/geom"
)

// Seq computes the d-dimensional convex hull by the sequential randomized
// incremental method — Algorithm 2, run by the generic loop in
// internal/engine — inserting points in the order given. As in hull2d, it
// maintains the Clarkson–Shor bipartite conflict graph and a ridge-to-facets
// adjacency, so its plane-side tests are exactly the conflict filters — the
// same multiset Algorithm 3 performs.
func Seq(pts []geom.Point) (*Result, error) { return seq(nil, nil, pts, true, false) }

// SeqCtx is Seq with cooperative cancellation (checked at insertion
// granularity), optional fault injection (nil in production), and the
// plane-cache ablation switch — the fully-plumbed entry the public layer
// calls.
func SeqCtx(ctx context.Context, inj *faultinject.Injector, pts []geom.Point, noPlane bool) (*Result, error) {
	return seq(ctx, inj, pts, true, noPlane)
}

// SeqCounted is Seq with visibility-test counting switchable.
func SeqCounted(pts []geom.Point, counters bool) (*Result, error) {
	return seq(nil, nil, pts, counters, false)
}

// SeqNoPlaneCache is Seq with the cached-hyperplane fast path disabled, so
// every visibility test runs the exact determinant predicate (ablation and
// cross-engine identity tests).
func SeqNoPlaneCache(pts []geom.Point) (*Result, error) { return seq(nil, nil, pts, true, true) }

// seqGeom supplies the d-dimensional geometry of the generic Algorithm 2 loop
// (engine.Seq): a ridge-to-facets adjacency map, pruned lazily, locates the
// live neighbor across each ridge of a visible facet.
type seqGeom struct {
	adj map[ridgeMapKey][]*Facet
}

// Conf implements engine.SeqGeometry.
func (g *seqGeom) Conf(f *Facet) []int32 { return f.Conf }

// MarkVisible implements engine.SeqGeometry: membership is tracked by
// stamping the facet's scratch mark with the insertion index (facets are born
// with mark 0 and i >= d+1 > 0, so stale marks never collide).
func (g *seqGeom) MarkVisible(f *Facet, i int32) bool {
	if !f.Alive() || f.mark == i {
		return false
	}
	f.mark = i
	return true
}

// Boundary implements engine.SeqGeometry: a boundary ridge has one incident
// facet visible and its live neighbor not (an interior ridge of the visible
// region has both marked, and is skipped).
func (g *seqGeom) Boundary(vis []*Facet, i int32, tasks []eng.Task[Facet, []int32]) ([]eng.Task[Facet, []int32], error) {
	for _, f := range vis {
		for qi := range f.Verts {
			k := ridgeKeyOmit(f.Verts, qi)
			var nb *Facet
			list := g.adj[k]
			aliveList := list[:0]
			for _, h := range list {
				if h.Alive() {
					aliveList = append(aliveList, h)
					if h != f {
						nb = h
					}
				}
			}
			g.adj[k] = aliveList
			if nb == nil {
				return nil, fmt.Errorf("%w: ridge of %v has no live neighbor", ErrDegenerate, f)
			}
			if nb.mark == i {
				continue // interior ridge of the visible region
			}
			tasks = append(tasks, eng.Task[Facet, []int32]{T1: f, R: ridgeWithout(f, f.Verts[qi]), T2: nb})
		}
	}
	return tasks, nil
}

// Register implements engine.SeqGeometry.
func (g *seqGeom) Register(f *Facet) {
	for omit := range f.Verts {
		k := ridgeKeyOmit(f.Verts, omit)
		g.adj[k] = append(g.adj[k], f)
	}
}

func seq(ctx context.Context, inj *faultinject.Injector, pts []geom.Point, counters, noPlane bool) (*Result, error) {
	d, err := validate(pts)
	if err != nil {
		return nil, err
	}
	// The sequential engine allocates facets on the heap (nil arenas), so no
	// SoA rows are ever published; folded inline planes keep its
	// classifications bit-identical to the parallel engines in either layout.
	e := newEngine(pts, d, counters, 0, 1, noPlane, true, false)
	e.inj = inj
	facets, err := e.initialHull()
	if err != nil {
		return nil, err
	}
	g := &seqGeom{adj: map[ridgeMapKey][]*Facet{}}
	// baseSizes[i] approximates the hull size over the base prefix (the base
	// simplex is given, not built incrementally); exact from here on.
	baseSizes := make([]int, d+1)
	for i := range baseSizes {
		baseSizes[i] = min(i+2, d+1)
	}
	hullSizes, err := eng.Seq[Facet, []int32](ctx, inj, kernel{e: e}, g, e.rec, facets, int32(len(pts)), baseSizes)
	if err != nil {
		return nil, err
	}
	res, err := e.collectResult(0)
	if err == nil {
		res.HullSizes = hullSizes
	}
	return res, err
}
