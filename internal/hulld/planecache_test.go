package hulld

import (
	"testing"

	"parhull/internal/geom"
	"parhull/internal/pointgen"
)

// These tests pin the contract of the cached-hyperplane fast path: it is an
// accelerator only. With the cache on (default) or off (ablation), every
// engine must produce the identical facet multiset, hull vertices, and
// visibility-test count, because the filter falls back to the exact
// predicate whenever it cannot certify a sign.

func sameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	ws, gs := want.FacetSet(), got.FacetSet()
	if len(ws) != len(gs) {
		t.Fatalf("%s: %d distinct facets, want %d", label, len(gs), len(ws))
	}
	for k, c := range ws {
		if gs[k] != c {
			t.Fatalf("%s: facet multiplicity differs", label)
		}
	}
	if len(want.Vertices) != len(got.Vertices) {
		t.Fatalf("%s: %d hull vertices, want %d", label, len(got.Vertices), len(want.Vertices))
	}
	for i := range want.Vertices {
		if want.Vertices[i] != got.Vertices[i] {
			t.Fatalf("%s: vertex sets differ at %d", label, i)
		}
	}
	if want.Stats.VisibilityTests != got.Stats.VisibilityTests {
		t.Fatalf("%s: vtests %d, want %d", label, got.Stats.VisibilityTests, want.Stats.VisibilityTests)
	}
}

func TestPlaneCacheIdenticalOutput(t *testing.T) {
	for _, d := range []int{2, 3, 4, 5} {
		n := 150
		if d >= 4 {
			n = 60
		}
		for _, seed := range []int64{1, 2, 3} {
			rng := pointgen.NewRNG(seed)
			for name, pts := range map[string][]geom.Point{
				"ball":   pointgen.UniformBall(rng, n, d),
				"sphere": pointgen.OnSphere(rng, n, d),
			} {
				label := func(eng string) string {
					return "d=" + string(rune('0'+d)) + " " + name + " " + eng
				}
				exact, err := SeqNoPlaneCache(pts)
				if err != nil {
					t.Fatalf("%s: %v", label("seq-noplane"), err)
				}
				if exact.Stats.PlaneCacheHits != 0 || exact.Stats.ExactFallbacks != 0 {
					t.Fatalf("%s: plane counters nonzero with cache off: %+v", label("seq-noplane"), exact.Stats)
				}
				cached, err := Seq(pts)
				if err != nil {
					t.Fatalf("%s: %v", label("seq"), err)
				}
				sameResult(t, label("seq"), exact, cached)
				// On well-separated random inputs the filter decides every
				// test (the ISSUE acceptance criterion).
				if cached.Stats.ExactFallbacks != 0 {
					t.Errorf("%s: %d exact fallbacks on random input", label("seq"), cached.Stats.ExactFallbacks)
				}
				if cached.Stats.PlaneCacheHits != cached.Stats.VisibilityTests {
					t.Errorf("%s: %d plane hits, %d tests", label("seq"),
						cached.Stats.PlaneCacheHits, cached.Stats.VisibilityTests)
				}
				par, err := Par(pts, nil)
				if err != nil {
					t.Fatalf("%s: %v", label("par"), err)
				}
				sameResult(t, label("par"), exact, par)
				parOff, err := Par(pts, &Options{NoPlaneCache: true})
				if err != nil {
					t.Fatalf("%s: %v", label("par-noplane"), err)
				}
				sameResult(t, label("par-noplane"), exact, parOff)
				rr, err := Rounds(pts, nil)
				if err != nil {
					t.Fatalf("%s: %v", label("rounds"), err)
				}
				sameResult(t, label("rounds"), exact, rr)
			}
		}
	}
}

// TestPlaneCacheDegenerateFallback drives inputs with points exactly on
// facet hyperplanes: the filter cannot certify those tests, the exact
// predicate must decide them, and the output must still match the
// determinant-only path.
func TestPlaneCacheDegenerateFallback(t *testing.T) {
	// {1,1,0} lies exactly on the plane of facet {0,1,2} (z = 0).
	pts := []geom.Point{{0, 0, 0}, {4, 0, 0}, {0, 4, 0}, {0, 0, 4}, {1, 1, 0}, {0.5, 0.5, 0.5}}
	cached, err := Seq(pts)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Stats.ExactFallbacks == 0 {
		t.Error("no exact fallbacks on a point lying on a facet plane")
	}
	exact, err := SeqNoPlaneCache(pts)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "degenerate", exact, cached)

	// Near-degenerate: a point off a facet plane by ~1e-16 — representable,
	// nonzero exact sign, but below the filter threshold at this scale.
	pts2 := []geom.Point{{0, 0, 0}, {4, 0, 0}, {0, 4, 0}, {0, 0, 4}, {1, 1, 1e-16}, {2, 2, -3}}
	c2, err := Seq(pts2)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := SeqNoPlaneCache(pts2)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "near-degenerate", e2, c2)
	if c2.Stats.ExactFallbacks == 0 {
		t.Error("no exact fallbacks on a near-coplanar point")
	}
}

// TestPlaneCacheHighDim: above geom's plane-cache dimension cap the engines
// must silently run the exact path (zero plane counters), not fail.
func TestPlaneCacheHighDim(t *testing.T) {
	pts := pointgen.OnSphere(pointgen.NewRNG(9), 25, 9)
	res, err := Seq(pts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlaneCacheHits != 0 || res.Stats.ExactFallbacks != 0 {
		t.Fatalf("plane counters nonzero in d=9: %+v", res.Stats)
	}
	exact, err := SeqNoPlaneCache(pts)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "d=9", exact, res)
}
