package hulld

import (
	"parhull/internal/conmap"
	"parhull/internal/geom"
	"parhull/internal/sched"
)

// Options configures the parallel engines.
type Options struct {
	// Map is the ridge multimap M of Algorithm 3 (nil selects the growable
	// sharded map; install conmap.NewCASMap/NewTASMap for the paper's
	// Algorithm 4/5 tables).
	Map conmap.RidgeMap[*Facet]
	// GroupLimit caps concurrently spawned ridge chains (async engine).
	GroupLimit int
	// NoCounters disables visibility-test counting.
	NoCounters bool
	// FilterGrain sets the list size above which conflict filtering runs in
	// parallel chunks (0 = default; very large forces the serial path).
	FilterGrain int
	// NoPlaneCache disables the cached-hyperplane visibility fast path so
	// every test runs the exact determinant predicate (the A2 ablation in
	// cmd/hullbench). The combinatorial output is identical either way.
	NoPlaneCache bool
}

func (o *Options) filterGrain() int {
	if o == nil {
		return 0
	}
	return o.FilterGrain
}

func (o *Options) noPlaneCache() bool { return o != nil && o.NoPlaneCache }

func (o *Options) ridgeMap(n, d int) conmap.RidgeMap[*Facet] {
	if o != nil && o.Map != nil {
		return o.Map
	}
	return conmap.NewShardedMap[*Facet]((d + 1) * n)
}

type task struct {
	t1 *Facet
	r  []int32
	t2 *Facet
}

// Par computes the d-dimensional convex hull with the parallel incremental
// Algorithm 3 under the asynchronous fork-join schedule (Theorem 5.5).
func Par(pts []geom.Point, opt *Options) (*Result, error) {
	d, err := validate(pts)
	if err != nil {
		return nil, err
	}
	e := newEngine(pts, d, opt == nil || !opt.NoCounters, opt.filterGrain(), parStripes(), opt.noPlaneCache())
	facets, err := e.initialHull()
	if err != nil {
		return nil, err
	}
	m := opt.ridgeMap(len(pts), d)
	limit := 0
	if opt != nil {
		limit = opt.GroupLimit
	}
	g := sched.NewGroup(limit)

	var chain func(tk task)
	chain = func(tk task) {
		for {
			if e.failed.Load() {
				return
			}
			p1, p2 := tk.t1.pivot(), tk.t2.pivot()
			switch {
			case p1 == noPivot && p2 == noPivot:
				e.rec.Finalized()
				return
			case p1 == p2:
				e.bury(tk.t1, tk.t2)
				return
			case p2 < p1:
				tk.t1, tk.t2 = tk.t2, tk.t1
				p1 = p2
			}
			t, err := e.newFacet(tk.r, p1, tk.t1, tk.t2, 0)
			if err != nil {
				e.fail(err)
				return
			}
			e.replace(tk.t1)
			// Hand the d-1 fresh ridges (those containing the pivot) to the
			// map; the second facet to arrive forks the chain (lines 20-22).
			for _, q := range tk.r {
				r2 := ridgeWithout(t, q)
				k := ridgeKey(r2)
				if !m.InsertAndSet(k, t) {
					other := m.GetValue(k, t)
					nt := task{t1: t, r: r2, t2: other}
					g.Go(func() { chain(nt) })
				}
			}
			// The ridge shared with t2 continues this chain (line 19).
			tk = task{t1: t, r: tk.r, t2: tk.t2}
		}
	}

	// One chain per ridge of the initial simplex: the ridge omitting
	// vertices {i, j} is shared by the facets omitting i and omitting j.
	for i := 0; i <= d; i++ {
		for j := i + 1; j <= d; j++ {
			r := make([]int32, 0, d-1)
			for v := 0; v <= d; v++ {
				if v != i && v != j {
					r = append(r, int32(v))
				}
			}
			tk := task{t1: facets[i], r: r, t2: facets[j]}
			g.Go(func() { chain(tk) })
		}
	}
	g.Wait()
	return e.collectResult(0)
}
