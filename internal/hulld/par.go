package hulld

import (
	"context"

	"parhull/internal/conmap"
	eng "parhull/internal/engine"
	"parhull/internal/faultinject"
	"parhull/internal/geom"
	"parhull/internal/sched"
)

// Options configures the parallel engines.
type Options struct {
	// Map is the ridge multimap M of Algorithm 3 (nil selects the growable
	// sharded map; install conmap.NewCASMap/NewTASMap for the paper's
	// Algorithm 4/5 tables).
	Map conmap.RidgeMap[*Facet]
	// Sched selects the fork-join substrate of Par: the work-stealing
	// executor with per-worker arenas (sched.KindSteal, the default) or the
	// goroutine-per-chain Group (sched.KindGroup — the A3 ablation in
	// cmd/hullbench). The facet multiset is identical either way
	// (Theorem 5.5; asserted by TestParSchedEquivalence).
	Sched sched.Kind
	// GroupLimit caps concurrently spawned ridge chains (Group substrate
	// only).
	GroupLimit int
	// Workers pins the work-stealing executor's pool width (Steal substrate
	// only; <= 0 selects GOMAXPROCS). The facet output is identical for any
	// width (Theorem 5.5) — only the schedule changes.
	Workers int
	// NoCounters disables visibility-test counting.
	NoCounters bool
	// FilterGrain sets the list size above which conflict filtering runs in
	// parallel chunks (0 = default; very large forces the serial path).
	FilterGrain int
	// NoPlaneCache disables the cached-hyperplane visibility fast path so
	// every test runs the exact determinant predicate (the A2 ablation in
	// cmd/hullbench). The combinatorial output is identical either way.
	NoPlaneCache bool
	// NoBatchFilter routes conflict filtering through the pointwise closure
	// path instead of the batch filter pipeline (the filter ablation in
	// cmd/hullbench). The survivor lists are identical either way.
	NoBatchFilter bool
	// NoSoALayout keeps each facet's cached plane inline in the facet record
	// instead of additionally publishing it into the worker arena's
	// structure-of-arrays plane rows (the layout ablation in cmd/hullbench's
	// scale experiment). Folded values are identical in both layouts, so the
	// facet output is bit-for-bit the same either way — only the memory the
	// batch filter streams changes.
	NoSoALayout bool
	// Ctx, when non-nil, cancels the construction cooperatively at
	// ridge-step granularity; the run returns ctx.Err() with all workers
	// quiesced.
	Ctx context.Context
	// Inject arms deterministic fault injection (tests only; nil in
	// production).
	Inject *faultinject.Injector
	// Reuse, when non-nil, runs the construction on retained state (worker
	// pool, arenas, engine buffers) recycled across Par calls; each call
	// invalidates the previous Result obtained through the same Reuse. The
	// public parhull.Builder is the intended owner.
	Reuse *Reuse
}

func (o *Options) filterGrain() int {
	if o == nil {
		return 0
	}
	return o.FilterGrain
}

func (o *Options) noPlaneCache() bool { return o != nil && o.NoPlaneCache }

func (o *Options) batchFilter() bool { return o == nil || !o.NoBatchFilter }

func (o *Options) soaLayout() bool { return o == nil || !o.NoSoALayout }

func (o *Options) schedKind() sched.Kind {
	if o == nil {
		return sched.KindSteal
	}
	return o.Sched
}

func (o *Options) ridgeMap(n, d int) conmap.RidgeMap[*Facet] {
	if o != nil && o.Map != nil {
		return o.Map
	}
	return conmap.NewShardedMap[*Facet](eng.DefaultMapCapacity(n, d))
}

// config assembles the driver configuration for this construction.
func (o *Options) config(e *engine, n int) eng.Config[Facet, []int32] {
	limit := 0
	if o != nil {
		limit = o.GroupLimit
	}
	cfg := eng.Config[Facet, []int32]{
		Kernel:     kernel{e: e},
		Table:      eng.ConmapTable[Facet]{M: o.ridgeMap(n, e.d)},
		Rec:        e.rec,
		Sched:      o.schedKind(),
		GroupLimit: limit,
	}
	if o != nil {
		cfg.Workers = o.Workers
		cfg.Ctx = o.Ctx
		cfg.Inject = o.Inject
		if o.Reuse != nil {
			cfg.Pool = o.Reuse.pool
		}
	}
	return cfg
}

// initialTasks yields one task per ridge of the initial simplex: the ridge
// omitting vertices {i, j} is shared by the facets omitting i and omitting j.
func initialTasks(d int, facets []*Facet, fork func(eng.Task[Facet, []int32])) {
	for i := 0; i <= d; i++ {
		for j := i + 1; j <= d; j++ {
			r := make([]int32, 0, d-1)
			for v := 0; v <= d; v++ {
				if v != i && v != j {
					r = append(r, int32(v))
				}
			}
			fork(eng.Task[Facet, []int32]{T1: facets[i], R: r, T2: facets[j]})
		}
	}
}

// Par computes the d-dimensional convex hull with the parallel incremental
// Algorithm 3 under the asynchronous fork-join schedule (Theorem 5.5), run by
// the generic driver in internal/engine. Options.Sched picks the substrate:
// work-stealing executor (default) or goroutine-per-chain Group.
func Par(pts []geom.Point, opt *Options) (*Result, error) {
	d, err := validate(pts)
	if err != nil {
		return nil, err
	}
	var ru *Reuse
	var inj *faultinject.Injector
	if opt != nil {
		ru = opt.Reuse
		inj = opt.Inject
	}
	if ru != nil {
		// The rewind of the retained pool happens inside engineFor; a panic
		// armed here fires on the calling goroutine, before any worker runs.
		inj.Visit(faultinject.SiteBuilderRewind)
	}
	e := engineFor(ru, pts, d, opt == nil || !opt.NoCounters, opt.filterGrain(), parStripes(), opt.noPlaneCache(), opt.batchFilter(), opt.soaLayout())
	e.inj = inj
	facets, err := e.initialHull()
	if err != nil {
		return nil, err
	}
	e.rec.SampleHeap()
	if err := eng.Par(opt.config(e, len(pts)), func(fork func(eng.Task[Facet, []int32])) {
		initialTasks(d, facets, fork)
	}); err != nil {
		return nil, err
	}
	return e.collectResult(0)
}
