package hulld

import (
	"parhull/internal/conmap"
	"parhull/internal/geom"
	"parhull/internal/sched"
)

// Options configures the parallel engines.
type Options struct {
	// Map is the ridge multimap M of Algorithm 3 (nil selects the growable
	// sharded map; install conmap.NewCASMap/NewTASMap for the paper's
	// Algorithm 4/5 tables).
	Map conmap.RidgeMap[*Facet]
	// Sched selects the fork-join substrate of Par: the work-stealing
	// executor with per-worker arenas (sched.KindSteal, the default) or the
	// goroutine-per-chain Group (sched.KindGroup — the A3 ablation in
	// cmd/hullbench). The facet multiset is identical either way
	// (Theorem 5.5; asserted by TestParSchedEquivalence).
	Sched sched.Kind
	// GroupLimit caps concurrently spawned ridge chains (Group substrate
	// only; the work-stealing pool is fixed at GOMAXPROCS workers).
	GroupLimit int
	// NoCounters disables visibility-test counting.
	NoCounters bool
	// FilterGrain sets the list size above which conflict filtering runs in
	// parallel chunks (0 = default; very large forces the serial path).
	FilterGrain int
	// NoPlaneCache disables the cached-hyperplane visibility fast path so
	// every test runs the exact determinant predicate (the A2 ablation in
	// cmd/hullbench). The combinatorial output is identical either way.
	NoPlaneCache bool
}

func (o *Options) filterGrain() int {
	if o == nil {
		return 0
	}
	return o.FilterGrain
}

func (o *Options) noPlaneCache() bool { return o != nil && o.NoPlaneCache }

func (o *Options) schedKind() sched.Kind {
	if o == nil {
		return sched.KindSteal
	}
	return o.Sched
}

func (o *Options) ridgeMap(n, d int) conmap.RidgeMap[*Facet] {
	if o != nil && o.Map != nil {
		return o.Map
	}
	return conmap.NewShardedMap[*Facet]((d + 1) * n)
}

type task struct {
	t1 *Facet
	r  []int32
	t2 *Facet
}

// Par computes the d-dimensional convex hull with the parallel incremental
// Algorithm 3 under the asynchronous fork-join schedule (Theorem 5.5).
// Options.Sched picks the substrate: work-stealing executor (default) or
// goroutine-per-chain Group.
func Par(pts []geom.Point, opt *Options) (*Result, error) {
	d, err := validate(pts)
	if err != nil {
		return nil, err
	}
	e := newEngine(pts, d, opt == nil || !opt.NoCounters, opt.filterGrain(), parStripes(), opt.noPlaneCache())
	facets, err := e.initialHull()
	if err != nil {
		return nil, err
	}
	m := opt.ridgeMap(len(pts), d)
	if opt.schedKind() == sched.KindGroup {
		limit := 0
		if opt != nil {
			limit = opt.GroupLimit
		}
		parGroup(e, facets, m, limit)
	} else {
		parSteal(e, facets, m)
	}
	return e.collectResult(0)
}

// initialTasks forks one chain per ridge of the initial simplex: the ridge
// omitting vertices {i, j} is shared by the facets omitting i and omitting j.
func initialTasks(d int, facets []*Facet, fork func(task)) {
	for i := 0; i <= d; i++ {
		for j := i + 1; j <= d; j++ {
			r := make([]int32, 0, d-1)
			for v := 0; v <= d; v++ {
				if v != i && v != j {
					r = append(r, int32(v))
				}
			}
			fork(task{t1: facets[i], r: r, t2: facets[j]})
		}
	}
}

// step executes one ProcessRidge iteration of the chain holding tk: it
// either finishes the chain (both pivots empty, or equal pivots bury the
// ridge) and reports done=false, or creates the replacement facet, hands the
// fresh ridges to the map (forking the second-arrival chains), and returns
// the continuation task for the surviving ridge (line 19).
func (e *engine) step(a *arena, tk task, m conmap.RidgeMap[*Facet], fork func(task)) (task, bool) {
	p1, p2 := tk.t1.pivot(), tk.t2.pivot()
	switch {
	case p1 == noPivot && p2 == noPivot:
		e.rec.Finalized()
		return task{}, false
	case p1 == p2:
		e.bury(tk.t1, tk.t2)
		return task{}, false
	case p2 < p1:
		tk.t1, tk.t2 = tk.t2, tk.t1
		p1 = p2
	}
	t, err := e.newFacet(a, tk.r, p1, tk.t1, tk.t2, 0)
	if err != nil {
		e.fail(err)
		return task{}, false
	}
	e.replace(tk.t1)
	// Hand the d-1 fresh ridges (those containing the pivot) to the map;
	// the second facet to arrive forks the chain (lines 20-22).
	for _, q := range tk.r {
		r2 := ridgeWithoutIn(a, t, q)
		k := ridgeKey(r2)
		if !m.InsertAndSet(k, t) {
			fork(task{t1: t, r: r2, t2: m.GetValue(k, t)})
		}
	}
	// The ridge shared with t2 continues this chain (line 19).
	return task{t1: t, r: tk.r, t2: tk.t2}, true
}

// parGroup runs the chains on the bounded goroutine-per-fork Group — the
// PR-1 substrate, kept as the A3 ablation baseline.
func parGroup(e *engine, facets []*Facet, m conmap.RidgeMap[*Facet], limit int) {
	g := sched.NewGroup(limit)
	var chain func(tk task)
	chain = func(tk task) {
		for {
			if e.failed.Load() {
				return
			}
			next, ok := e.step(nil, tk, m, func(nt task) {
				g.Go(func() { chain(nt) })
			})
			if !ok {
				return
			}
			tk = next
		}
	}
	initialTasks(e.d, facets, func(tk task) {
		g.Go(func() { chain(tk) })
	})
	g.Wait()
}

// parSteal runs the chains on the work-stealing executor: one long-lived
// worker per P, forks pushed to the forking worker's own deque as plain
// task values (no closure, no goroutine spawn), and every facet allocated
// from the executing worker's arena.
func parSteal(e *engine, facets []*Facet, m conmap.RidgeMap[*Facet]) {
	nw := sched.Workers()
	arenas := newArenas(nw)
	// Per-worker fork closures are bound once, before any task can run, so
	// the chain hot path allocates nothing to fork (task values ride the
	// deques directly).
	forkFns := make([]func(task), nw)
	var x *sched.Executor[task]
	x = sched.NewExecutor(nw, func(w int, tk task) {
		a, fork := &arenas[w], forkFns[w]
		for {
			if e.failed.Load() {
				return
			}
			next, ok := e.step(a, tk, m, fork)
			if !ok {
				return
			}
			tk = next
		}
	})
	for w := range forkFns {
		w := w
		forkFns[w] = func(nt task) { x.Fork(w, nt) }
	}
	initialTasks(e.d, facets, func(tk task) { x.Fork(sched.External, tk) })
	x.Wait()
}
