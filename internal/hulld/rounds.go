package hulld

import (
	eng "parhull/internal/engine"
	"parhull/internal/geom"
)

// Rounds computes the d-dimensional hull with Algorithm 3 under the
// round-synchronous schedule of Theorem 5.4 (engine.Rounds): each ready
// ProcessRidge call executes one step per round with a global barrier between
// rounds, so Stats.Rounds is the recursion depth of Theorem 5.3. Flips (lines
// 11-12) run inline and do not consume a round.
func Rounds(pts []geom.Point, opt *Options) (*Result, error) {
	d, err := validate(pts)
	if err != nil {
		return nil, err
	}
	e := newEngine(pts, d, opt == nil || !opt.NoCounters, opt.filterGrain(), parStripes(), opt.noPlaneCache(), opt.batchFilter(), opt.soaLayout())
	if opt != nil {
		e.inj = opt.Inject
	}
	facets, err := e.initialHull()
	if err != nil {
		return nil, err
	}
	var initial []eng.Task[Facet, []int32]
	initialTasks(d, facets, func(tk eng.Task[Facet, []int32]) { initial = append(initial, tk) })
	rounds, widths, err := eng.Rounds(opt.config(e, len(pts)), initial, nil)
	if err != nil {
		return nil, err
	}
	res, err := e.collectResult(rounds)
	if err != nil {
		return nil, err
	}
	res.Stats.RoundWidths = widths
	return res, nil
}
