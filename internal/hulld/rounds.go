package hulld

import (
	"parhull/internal/geom"
	"parhull/internal/sched"
)

type roundTask struct {
	task
	round int32
}

// Rounds computes the d-dimensional hull with Algorithm 3 under the
// round-synchronous schedule of Theorem 5.4: each ready ProcessRidge call
// executes one step per round with a global barrier between rounds, so
// Stats.Rounds is the recursion depth of Theorem 5.3. Flips (lines 11-12)
// run inline and do not consume a round.
func Rounds(pts []geom.Point, opt *Options) (*Result, error) {
	d, err := validate(pts)
	if err != nil {
		return nil, err
	}
	e := newEngine(pts, d, opt == nil || !opt.NoCounters, opt.filterGrain(), parStripes(), opt.noPlaneCache())
	facets, err := e.initialHull()
	if err != nil {
		return nil, err
	}
	m := opt.ridgeMap(len(pts), d)

	var initial []roundTask
	for i := 0; i <= d; i++ {
		for j := i + 1; j <= d; j++ {
			r := make([]int32, 0, d-1)
			for v := 0; v <= d; v++ {
				if v != i && v != j {
					r = append(r, int32(v))
				}
			}
			initial = append(initial, roundTask{task: task{t1: facets[i], r: r, t2: facets[j]}, round: 1})
		}
	}
	rounds, widths := sched.RunRoundsWidths(initial, func(tk roundTask, emit func(roundTask)) {
		if e.failed.Load() {
			return
		}
		t1, t2 := tk.t1, tk.t2
		p1, p2 := t1.pivot(), t2.pivot()
		switch {
		case p1 == noPivot && p2 == noPivot:
			e.rec.Finalized()
			return
		case p1 == p2:
			e.bury(t1, t2)
			return
		case p2 < p1:
			t1, t2 = t2, t1
			p1 = p2
		}
		t, err := e.newFacet(nil, tk.r, p1, t1, t2, tk.round)
		if err != nil {
			e.fail(err)
			return
		}
		e.replace(t1)
		for _, q := range tk.r {
			r2 := ridgeWithout(t, q)
			k := ridgeKey(r2)
			if !m.InsertAndSet(k, t) {
				other := m.GetValue(k, t)
				emit(roundTask{task: task{t1: t, r: r2, t2: other}, round: tk.round + 1})
			}
		}
		emit(roundTask{task: task{t1: t, r: tk.r, t2: t2}, round: tk.round + 1})
	})
	res, err := e.collectResult(rounds)
	if err != nil {
		return nil, err
	}
	res.Stats.RoundWidths = widths
	return res, err
}
