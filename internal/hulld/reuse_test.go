package hulld

import (
	"errors"
	"reflect"
	"testing"

	"parhull/internal/faultinject"
	"parhull/internal/leakcheck"
	"parhull/internal/pointgen"
	"parhull/internal/sched"
)

// TestReuseMatchesFresh runs consecutive Par calls on one Reuse with varying
// inputs and checks each against a fresh Par: identical facet output.
func TestReuseMatchesFresh(t *testing.T) {
	leakcheck.Check(t)
	ru := NewReuse()
	defer ru.Close()
	inputs := [][]int{{800, 3}, {2000, 3}, {500, 4}, {1200, 3}}
	for round := 0; round < 2; round++ {
		for i, in := range inputs {
			pts := pointgen.UniformBall(pointgen.NewRNG(int64(i+1)), in[0], in[1])
			got, err := Par(pts, &Options{Reuse: ru})
			if err != nil {
				t.Fatalf("round %d input %d: reused Par: %v", round, i, err)
			}
			fresh, err := Par(pts, nil)
			if err != nil {
				t.Fatalf("round %d input %d: fresh Par: %v", round, i, err)
			}
			if !reflect.DeepEqual(got.Vertices, fresh.Vertices) {
				t.Fatalf("round %d input %d: vertices differ", round, i)
			}
			if len(got.Facets) != len(fresh.Facets) {
				t.Fatalf("round %d input %d: facet count %d vs %d",
					round, i, len(got.Facets), len(fresh.Facets))
			}
		}
	}
}

// TestReusePanicRecovery injects a worker panic mid-construction on a pooled
// Reuse and checks the fault half of the contract: the error arrives typed,
// no goroutine leaks, and the same Reuse runs a correct construction next.
func TestReusePanicRecovery(t *testing.T) {
	leakcheck.Check(t)
	pts := pointgen.UniformBall(pointgen.NewRNG(7), 600, 3)
	ru := NewReuse()
	defer ru.Close()
	if _, err := Par(pts, &Options{Reuse: ru}); err != nil {
		t.Fatalf("warm-up Par: %v", err)
	}
	for _, visit := range []int64{1, 25, 200} {
		inj := faultinject.New(1).PanicAt(faultinject.SiteRidgeStep, visit)
		_, err := Par(pts, &Options{Reuse: ru, Inject: inj})
		var pe *sched.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("visit=%d: error is %T, want *sched.PanicError: %v", visit, err, err)
		}
		got, err := Par(pts, &Options{Reuse: ru})
		if err != nil {
			t.Fatalf("visit=%d: Par after contained panic: %v", visit, err)
		}
		fresh, err := Par(pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Vertices, fresh.Vertices) {
			t.Fatalf("visit=%d: post-panic construction differs from fresh", visit)
		}
	}
}

// TestReuseWidthChange exercises the pool-rebuild path: the same Reuse run at
// different Workers widths produces identical output each time.
func TestReuseWidthChange(t *testing.T) {
	leakcheck.Check(t)
	pts := pointgen.UniformBall(pointgen.NewRNG(3), 1500, 3)
	ru := NewReuse()
	defer ru.Close()
	fresh, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4, 2, 4, 1} {
		got, err := Par(pts, &Options{Reuse: ru, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got.Vertices, fresh.Vertices) {
			t.Fatalf("workers=%d: vertices differ", w)
		}
	}
}
