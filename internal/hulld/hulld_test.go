package hulld

import (
	"sort"
	"testing"

	"parhull/internal/baseline"
	"parhull/internal/conmap"
	"parhull/internal/core"
	"parhull/internal/geom"
	"parhull/internal/pointgen"
	"parhull/internal/stats"
)

func workloads(seed int64, n, d int) map[string][]geom.Point {
	rng := pointgen.NewRNG(seed)
	return map[string][]geom.Point{
		"ball":   pointgen.UniformBall(rng, n, d),
		"sphere": pointgen.OnSphere(rng, n, d),
		"cube":   pointgen.InCube(rng, n, d),
	}
}

// verifyHull checks the fundamental hull property against all points:
// no point strictly outside any alive facet, and every point either a hull
// vertex or strictly inside.
func verifyHull(t *testing.T, pts []geom.Point, res *Result) {
	t.Helper()
	for _, f := range res.Facets {
		vp := make([]geom.Point, len(f.Verts))
		for i, u := range f.Verts {
			vp[i] = pts[u]
		}
		for v := range pts {
			if geom.OrientSimplex(vp, pts[v]) == f.outSign {
				t.Fatalf("point %d strictly outside alive facet %v", v, f)
			}
		}
	}
}

func TestSeq3DAgainstBruteForce(t *testing.T) {
	for name, pts := range workloads(1, 60, 3) {
		res, err := Seq(pts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		verifyHull(t, pts, res)
		// Brute-force facet count via the configuration space.
		sp := NewSpace(pts)
		all := make([]int, len(pts))
		for i := range all {
			all[i] = i
		}
		if want, got := len(core.Active(sp, all)), len(res.Facets); want != got {
			t.Fatalf("%s: %d facets, brute force %d", name, got, want)
		}
		// Euler check for simplicial 3-polytopes: V - E + F = 2, E = 3F/2.
		f := len(res.Facets)
		v := len(res.Vertices)
		if f%2 != 0 || v-(3*f/2)+f != 2 {
			t.Fatalf("%s: Euler violated: V=%d F=%d", name, v, f)
		}
	}
}

func TestSeq2DMatchesGraham(t *testing.T) {
	pts := pointgen.UniformBall(pointgen.NewRNG(2), 200, 2)
	res, err := Seq(pts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := baseline.GrahamScan(pts)
	sort.Ints(oracle)
	got := make([]int, len(res.Vertices))
	for i, v := range res.Vertices {
		got[i] = int(v)
	}
	if len(got) != len(oracle) {
		t.Fatalf("hull size %d vs %d", len(got), len(oracle))
	}
	for i := range got {
		if got[i] != oracle[i] {
			t.Fatalf("vertex sets differ at %d", i)
		}
	}
}

func TestParMatchesSeqAllDims(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		n := 120
		if d == 4 {
			n = 60
		}
		for name, pts := range workloads(3, n, d) {
			seq, err := Seq(pts)
			if err != nil {
				t.Fatalf("d=%d %s seq: %v", d, name, err)
			}
			par, err := Par(pts, nil)
			if err != nil {
				t.Fatalf("d=%d %s par: %v", d, name, err)
			}
			rr, err := Rounds(pts, nil)
			if err != nil {
				t.Fatalf("d=%d %s rounds: %v", d, name, err)
			}
			for engName, got := range map[string]*Result{"par": par, "rounds": rr} {
				ss, gs := seq.FacetSet(), got.FacetSet()
				if len(ss) != len(gs) {
					t.Fatalf("d=%d %s %s: %d distinct facets vs %d seq", d, name, engName, len(gs), len(ss))
				}
				for k, c := range ss {
					if gs[k] != c {
						t.Fatalf("d=%d %s %s: facet multiplicity differs", d, name, engName)
					}
				}
				if got.Stats.VisibilityTests != seq.Stats.VisibilityTests {
					t.Fatalf("d=%d %s %s: vtests %d vs %d seq", d, name, engName,
						got.Stats.VisibilityTests, seq.Stats.VisibilityTests)
				}
				if got.Stats.MaxDepth != seq.Stats.MaxDepth {
					t.Fatalf("d=%d %s %s: depth %d vs %d seq", d, name, engName,
						got.Stats.MaxDepth, seq.Stats.MaxDepth)
				}
			}
			if rr.Stats.Rounds < rr.Stats.MaxDepth {
				t.Fatalf("d=%d %s: rounds %d < depth %d", d, name, rr.Stats.Rounds, rr.Stats.MaxDepth)
			}
			verifyHull(t, pts, par)
		}
	}
}

func TestAliveIffEmptyConflicts(t *testing.T) {
	pts := pointgen.OnSphere(pointgen.NewRNG(4), 200, 3)
	res, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Created {
		if f.Alive() != (len(f.Conf) == 0) {
			t.Fatalf("facet %v: alive=%v |C|=%d", f, f.Alive(), len(f.Conf))
		}
	}
}

func TestMapVariantsAgree3D(t *testing.T) {
	pts := pointgen.OnSphere(pointgen.NewRNG(5), 150, 3)
	want, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []conmap.RidgeMap[*Facet]{
		conmap.NewCASMap[*Facet](64 * len(pts)),
		conmap.NewTASMap[*Facet](64 * len(pts)),
	} {
		got, err := Par(pts, &Options{Map: m})
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.FacetsCreated != want.Stats.FacetsCreated ||
			got.Stats.HullSize != want.Stats.HullSize {
			t.Fatalf("map variant differs: %+v vs %+v", got.Stats, want.Stats)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	// Base simplex affinely dependent (4 coplanar points in 3D).
	flat := []geom.Point{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}, {0, 0, 1}}
	if _, err := Seq(flat); err == nil {
		t.Error("coplanar base accepted by Seq")
	}
	if _, err := Par(flat, nil); err == nil {
		t.Error("coplanar base accepted by Par")
	}
	if _, err := Seq([]geom.Point{{0, 0, 0}, {1, 0, 0}}); err == nil {
		t.Error("too few points accepted")
	}
	if _, err := Seq(nil); err == nil {
		t.Error("empty input accepted")
	}
	// A later degenerate point (on a facet plane) must not crash; it is
	// either never visible (strict) or handled as an error. Just run it.
	pts := []geom.Point{{0, 0, 0}, {4, 0, 0}, {0, 4, 0}, {0, 0, 4}, {1, 1, 0}}
	if _, err := Par(pts, nil); err != nil {
		t.Logf("degenerate later point: %v (acceptable)", err)
	}
}

func TestTheorem51SupportBruteForce(t *testing.T) {
	// E7: the convex hull configuration space has 2-support (Theorem 5.1),
	// verified by exhaustive search on random instances in d = 2 and 3.
	for _, d := range []int{2, 3} {
		pts := pointgen.OnSphere(pointgen.NewRNG(int64(6+d)), 9, d)
		sp := NewSpace(pts)
		if _, err := core.CheckDegree(sp); err != nil {
			t.Fatal(err)
		}
		if _, err := core.CheckMultiplicity(sp); err != nil {
			t.Fatal(err)
		}
		y := make([]int, len(pts))
		for i := range y {
			y[i] = i
		}
		if err := core.VerifySupport(sp, y); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestSimulateMatchesEngineDepthOrder(t *testing.T) {
	// The framework simulator must run the hull space with support sets of
	// size <= 2 and produce a valid dependence graph.
	pts := pointgen.UniformBall(pointgen.NewRNG(8), 12, 2)
	sp := NewSpace(pts)
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	g, err := core.Simulate(sp, order)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if k := core.MaxSupportUsed(g); k > 2 {
		t.Fatalf("support size %d > 2", k)
	}
	// The engine's depth and the simulator's depth may differ (support sets
	// are not unique) but both obey the Theorem 4.2 bound.
	res, err := Seq(pts)
	if err != nil {
		t.Fatal(err)
	}
	bound := stats.Theorem42MinSigma(2, 2) * stats.Harmonic(len(pts))
	if float64(g.MaxDepth) >= bound || float64(res.Stats.MaxDepth) >= bound {
		t.Fatalf("depths %d / %d exceed bound %.1f", g.MaxDepth, res.Stats.MaxDepth, bound)
	}
}

func TestDepthLogarithmic3D(t *testing.T) {
	rng := pointgen.NewRNG(9)
	sigma := stats.Theorem42MinSigma(3, 2) // g=d=3, k=2
	for _, n := range []int{100, 1000} {
		pts := pointgen.OnSphere(rng, n, 3)
		res, err := Par(pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if bound := sigma * stats.Harmonic(n); float64(res.Stats.MaxDepth) >= bound {
			t.Fatalf("n=%d: depth %d >= bound %.1f", n, res.Stats.MaxDepth, bound)
		}
	}
}

func TestParDeterministic(t *testing.T) {
	pts := pointgen.OnSphere(pointgen.NewRNG(10), 300, 3)
	a, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.FacetsCreated != b.Stats.FacetsCreated ||
		a.Stats.VisibilityTests != b.Stats.VisibilityTests ||
		a.Stats.MaxDepth != b.Stats.MaxDepth {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestInteriorPointsIgnored(t *testing.T) {
	pts := []geom.Point{{-9, -9, -9}, {9, -9, -9}, {0, 9, -9}, {0, 0, 9}}
	rng := pointgen.NewRNG(11)
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Point{rng.Float64() - 0.5, rng.Float64() - 0.5, rng.Float64() - 0.5})
	}
	res, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FacetsCreated != 4 || res.Stats.HullSize != 4 {
		t.Fatalf("interior points created facets: %+v", res.Stats)
	}
}

// TestRunGenericMatchesEngine: the paper's generic Algorithm 1, run on the
// hull configuration space, activates exactly the facets the specialized
// engines create and terminates with exactly the hull.
func TestRunGenericMatchesEngine(t *testing.T) {
	for _, d := range []int{2, 3} {
		pts := pointgen.OnSphere(pointgen.NewRNG(int64(40+d)), 9, d)
		sp := NewSpace(pts)
		order := make([]int, len(pts))
		for i := range order {
			order[i] = i
		}
		gen, err := core.RunGeneric(sp, order)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Seq(pts)
		if err != nil {
			t.Fatal(err)
		}
		if len(gen.Alive) != len(res.Facets) {
			t.Fatalf("d=%d: Algorithm 1 finished with %d configs, engine hull has %d facets",
				d, len(gen.Alive), len(res.Facets))
		}
		// The brute-force support search may activate a few transient
		// configurations the canonical engine never builds (Algorithm 1 is
		// under-specified about which support set to use); it must still
		// cover everything the engine created, and not by much more.
		if len(gen.Added) < len(res.Created) || len(gen.Added) > 2*len(res.Created) {
			t.Fatalf("d=%d: Algorithm 1 added %d configs, engine created %d facets",
				d, len(gen.Added), len(res.Created))
		}
		// The alive configurations must be exactly the hull facets.
		hull := res.FacetSet()
		for _, c := range gen.Alive {
			verts := make([]int32, 0, d)
			for _, o := range sp.Defining(c) {
				verts = append(verts, int32(o))
			}
			if hull[ridgeString(verts)] == 0 {
				t.Fatalf("d=%d: Algorithm 1 kept non-hull config %v", d, sp.Defining(c))
			}
		}
	}
}
