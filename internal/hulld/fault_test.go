package hulld

import (
	"context"
	"errors"
	"testing"
	"time"

	"parhull/internal/conmap"
	eng "parhull/internal/engine"
	"parhull/internal/faultinject"
	"parhull/internal/leakcheck"
	"parhull/internal/pointgen"
	"parhull/internal/sched"
)

// sameFacets asserts two results hold the identical facet multiset — the
// Theorem 5.5 schedule-independence invariant the fault tests lean on.
func sameFacets(t *testing.T, label string, a, b *Result) {
	t.Helper()
	as, bs := a.FacetSet(), b.FacetSet()
	if len(as) != len(bs) {
		t.Fatalf("%s: %d distinct facets vs %d", label, len(as), len(bs))
	}
	for k, c := range as {
		if bs[k] != c {
			t.Fatalf("%s: facet multiplicity differs", label)
		}
	}
}

// TestFaultInjectedPanic schedules a panic at a ridge-step boundary on both
// fork-join substrates and checks the containment contract end to end: the
// run returns a typed *sched.PanicError carrying the injected Panic value
// (never a crash), the pool quiesces, and no goroutine leaks.
func TestFaultInjectedPanic(t *testing.T) {
	leakcheck.Check(t)
	pts := pointgen.UniformBall(pointgen.NewRNG(7), 400, 3)
	for _, kind := range []sched.Kind{sched.KindSteal, sched.KindGroup} {
		for _, visit := range []int64{1, 25, 200} {
			inj := faultinject.New(1).PanicAt(faultinject.SiteRidgeStep, visit)
			_, err := Par(pts, &Options{Sched: kind, Inject: inj})
			if err == nil {
				t.Fatalf("kind=%v visit=%d: injected panic did not surface", kind, visit)
			}
			var pe *sched.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("kind=%v visit=%d: error is %T, want *sched.PanicError: %v", kind, visit, err, err)
			}
			fp, ok := pe.Value.(faultinject.Panic)
			if !ok || fp.Site != faultinject.SiteRidgeStep || fp.Visit != visit {
				t.Fatalf("kind=%v visit=%d: contained value = %#v", kind, visit, pe.Value)
			}
			if got := inj.Fired(faultinject.SiteRidgeStep); got != 1 {
				t.Fatalf("kind=%v visit=%d: fired %d panics, want exactly 1", kind, visit, got)
			}
		}
	}
}

// TestFaultInjectedPanicRounds is the round-synchronous version: the panic
// crosses the ParallelFor barrier and must still arrive typed.
func TestFaultInjectedPanicRounds(t *testing.T) {
	leakcheck.Check(t)
	pts := pointgen.UniformBall(pointgen.NewRNG(7), 300, 3)
	inj := faultinject.New(1).PanicAt(faultinject.SiteRidgeStep, 40)
	_, err := Rounds(pts, &Options{Inject: inj})
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("rounds: error is %T, want *sched.PanicError: %v", err, err)
	}
	if fp, ok := pe.Value.(faultinject.Panic); !ok || fp.Visit != 40 {
		t.Fatalf("rounds: contained value = %#v", pe.Value)
	}
}

// TestFaultDelayEquivalence is the Theorem 5.5 stress: seed-derived delays at
// ridge-step boundaries maximally perturb the steal/fork schedule, yet the
// facet multiset, visibility-test count, and depth profile must equal a clean
// run's exactly.
func TestFaultDelayEquivalence(t *testing.T) {
	leakcheck.Check(t)
	pts := pointgen.OnSphere(pointgen.NewRNG(3), 250, 3)
	clean, err := Par(pts, nil)
	if err != nil {
		t.Fatalf("clean: %v", err)
	}
	for _, kind := range []sched.Kind{sched.KindSteal, sched.KindGroup} {
		for seed := int64(1); seed <= 3; seed++ {
			inj := faultinject.New(seed).DelayEvery(faultinject.SiteRidgeStep, 7, 200*time.Microsecond)
			perturbed, err := Par(pts, &Options{Sched: kind, Inject: inj})
			if err != nil {
				t.Fatalf("kind=%v seed=%d: %v", kind, seed, err)
			}
			sameFacets(t, "delayed vs clean", clean, perturbed)
			if clean.Stats.VisibilityTests != perturbed.Stats.VisibilityTests {
				t.Fatalf("kind=%v seed=%d: vtests %d vs %d", kind, seed,
					clean.Stats.VisibilityTests, perturbed.Stats.VisibilityTests)
			}
			if clean.Stats.MaxDepth != perturbed.Stats.MaxDepth {
				t.Fatalf("kind=%v seed=%d: depth %d vs %d", kind, seed,
					clean.Stats.MaxDepth, perturbed.Stats.MaxDepth)
			}
			if inj.Visits(faultinject.SiteRidgeStep) == 0 {
				t.Fatalf("kind=%v seed=%d: injector never visited — hook unplugged?", kind, seed)
			}
		}
	}
}

// TestFaultInjectedCapacity forces a capacity failure in the fixed ridge
// tables mid-run and checks it surfaces as a typed conmap.ErrCapacity (the
// first rung of the degradation ladder), pool quiesced, no goroutine leaked.
func TestFaultInjectedCapacity(t *testing.T) {
	leakcheck.Check(t)
	pts := pointgen.UniformBall(pointgen.NewRNG(9), 300, 3)
	mk := func(inj *faultinject.Injector, tas bool) conmap.RidgeMap[*Facet] {
		if tas {
			return conmap.NewTASMap[*Facet](eng.FixedMapCapacity(len(pts), 3)).Inject(inj)
		}
		return conmap.NewCASMap[*Facet](eng.FixedMapCapacity(len(pts), 3)).Inject(inj)
	}
	for _, tas := range []bool{false, true} {
		inj := faultinject.New(5).FailAt(faultinject.SiteMapInsert, 100)
		_, err := Par(pts, &Options{Map: mk(inj, tas)})
		if !errors.Is(err, conmap.ErrCapacity) {
			t.Fatalf("tas=%v: err = %v, want ErrCapacity", tas, err)
		}
		var pe *sched.PanicError
		if errors.As(err, &pe) {
			t.Fatalf("tas=%v: capacity failure surfaced as a panic: %v", tas, err)
		}
	}
}

// TestFaultRealCapacity drives a genuinely undersized fixed table (no
// injection) and checks the old "table full" panic is now a typed error.
func TestFaultRealCapacity(t *testing.T) {
	leakcheck.Check(t)
	pts := pointgen.OnSphere(pointgen.NewRNG(2), 500, 3) // every point on hull
	for _, tas := range []bool{false, true} {
		var m conmap.RidgeMap[*Facet]
		if tas {
			m = conmap.NewTASMap[*Facet](64)
		} else {
			m = conmap.NewCASMap[*Facet](64)
		}
		_, err := Par(pts, &Options{Map: m})
		if !errors.Is(err, conmap.ErrCapacity) {
			t.Fatalf("tas=%v: err = %v, want ErrCapacity", tas, err)
		}
	}
}

// TestFaultCancellation cancels a construction mid-flight and checks the
// cooperative contract: ctx.Err() comes back (typed, not a panic), the pool
// quiesces, and no goroutine leaks. Injected delays hold chains at ridge
// steps long enough that the run cannot finish before the cancel lands.
func TestFaultCancellation(t *testing.T) {
	leakcheck.Check(t)
	pts := pointgen.OnSphere(pointgen.NewRNG(4), 2000, 3)
	for _, kind := range []sched.Kind{sched.KindSteal, sched.KindGroup} {
		ctx, cancel := context.WithCancel(context.Background())
		inj := faultinject.New(1).DelayEvery(faultinject.SiteRidgeStep, 1, time.Millisecond)
		done := make(chan error, 1)
		go func() {
			_, err := Par(pts, &Options{Sched: kind, Ctx: ctx, Inject: inj})
			done <- err
		}()
		time.Sleep(5 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("kind=%v: err = %v, want context.Canceled", kind, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("kind=%v: cancellation did not propagate", kind)
		}
	}
}

// TestFaultCancelBeforeStart checks the upfront path: an already-canceled
// context returns immediately on every engine without spinning up a pool.
func TestFaultCancelBeforeStart(t *testing.T) {
	leakcheck.Check(t)
	pts := pointgen.UniformBall(pointgen.NewRNG(6), 100, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Par(pts, &Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Par: err = %v, want context.Canceled", err)
	}
	if _, err := Rounds(pts, &Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Rounds: err = %v, want context.Canceled", err)
	}
	if _, err := SeqCtx(ctx, nil, pts, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("SeqCtx: err = %v, want context.Canceled", err)
	}
}

// TestFaultSeqCancelMidRun cancels the sequential engine partway: the
// per-insertion check must stop the loop with ctx.Err().
func TestFaultSeqCancelMidRun(t *testing.T) {
	leakcheck.Check(t)
	pts := pointgen.UniformBall(pointgen.NewRNG(8), 5000, 3)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	_, err := SeqCtx(ctx, nil, pts, false)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil (finished first) or context.Canceled", err)
	}
}

// TestFaultRecoveryRerunIdentical pins graceful degradation end to end: a
// run killed by an injected panic leaves nothing behind that affects a
// subsequent clean run on the same inputs (fresh state per construction), so
// retrying after containment yields the exact clean facet multiset.
func TestFaultRecoveryRerunIdentical(t *testing.T) {
	leakcheck.Check(t)
	pts := pointgen.UniformBall(pointgen.NewRNG(11), 350, 3)
	clean, err := Par(pts, nil)
	if err != nil {
		t.Fatalf("clean: %v", err)
	}
	inj := faultinject.New(2).PanicAt(faultinject.SiteRidgeStep, 60)
	if _, err := Par(pts, &Options{Inject: inj}); err == nil {
		t.Fatal("injected panic did not surface")
	}
	retry, err := Par(pts, nil)
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	sameFacets(t, "retry after contained panic vs clean", clean, retry)
}
