package hulld

import "parhull/internal/conflict"

// Arena sizing: facets are slab-allocated in batches and every small int32
// slice the construction publishes (Verts, ridges, conflict lists) is carved
// from per-worker blocks, so the steady-state cost of creating a facet is a
// few pointer bumps instead of 4-6 heap allocations.
const (
	arenaFacetSlab = 256
	arenaIntBlock  = 1 << 14 // 16384 int32 = 64 KiB per block
)

// arena is one worker's private allocator on the work-stealing path. It is
// a monotone bump allocator: memory handed out is never recycled, so every
// published slice stays valid (and immutable) for the lifetime of the
// Result — the same lifetime heap-allocated facets had. Only the owning
// worker ever touches an arena (indexed by the executor's worker id), so no
// synchronization is needed; a nil *arena falls back to plain heap
// allocation, which is what the Group, rounds, and sequential schedules use.
type arena struct {
	facets []Facet          // remaining slots of the current facet slab
	block  []int32          // remaining space of the current int32 block
	sc     conflict.Scratch // reusable merge-filter scratch for this worker
	// alloc is the bound intsLen method, created once so the hot path does
	// not allocate a fresh method-value closure per facet.
	alloc func(int) []int32
}

// newArenas returns one arena per worker, alloc closures pre-bound.
func newArenas(n int) []arena {
	as := make([]arena, n)
	for i := range as {
		a := &as[i]
		a.alloc = a.intsLen
	}
	return as
}

// facet returns a zeroed facet from the slab (or the heap when a == nil).
// Whole slabs stay reachable as long as any facet in them does, which is
// exactly the facet lifetime: until the Result is dropped.
func (a *arena) facet() *Facet {
	if a == nil {
		return &Facet{}
	}
	if len(a.facets) == 0 {
		a.facets = make([]Facet, arenaFacetSlab)
	}
	f := &a.facets[0]
	a.facets = a.facets[1:]
	return f
}

// ints carves a zero-length, capacity-n slice from the worker's block. The
// capacity is clamped to n, so an append beyond n can never write into a
// neighboring carve. Oversized requests (longer than a quarter block) get
// their own allocation rather than wasting block space.
func (a *arena) ints(n int) []int32 {
	if a == nil || n > arenaIntBlock/4 {
		return make([]int32, 0, n)
	}
	if n > len(a.block) {
		a.block = make([]int32, arenaIntBlock)
	}
	s := a.block[:0:n]
	a.block = a.block[n:]
	return s
}

// intsLen is ints with the slice pre-extended to length n (for copy-style
// fills, e.g. the conflict scratch's compaction allocator).
func (a *arena) intsLen(n int) []int32 {
	return a.ints(n)[:n]
}
