package hulld

import (
	"testing"

	"parhull/internal/core"
	"parhull/internal/pointgen"
	"parhull/internal/stats"
)

func TestRidgeSpaceChecks(t *testing.T) {
	pts := pointgen.OnSphere(pointgen.NewRNG(21), 8, 2)
	s := NewRidgeSpace(pts)
	if _, err := core.CheckDegree(s); err != nil {
		t.Fatal(err)
	}
	if _, err := core.CheckMultiplicity(s); err != nil {
		t.Fatal(err)
	}
}

// TestRidgeSpaceActives: T(Y) has one configuration per hull ridge, i.e.
// d * facets / 2 for a simplicial hull.
func TestRidgeSpaceActives(t *testing.T) {
	for _, d := range []int{2, 3} {
		pts := pointgen.OnSphere(pointgen.NewRNG(int64(22+d)), 9, d)
		s := NewRidgeSpace(pts)
		all := make([]int, len(pts))
		for i := range all {
			all[i] = i
		}
		act := core.Active(s, all)
		res, err := Seq(pts)
		if err != nil {
			t.Fatal(err)
		}
		want := d * len(res.Facets) / 2
		if len(act) != want {
			t.Fatalf("d=%d: |T| = %d, want #ridges = %d", d, len(act), want)
		}
		// Each active configuration's two facets must be hull facets.
		hull := res.FacetSet()
		for _, c := range act {
			cfg := s.cfgs[c]
			for _, apex := range []int{cfg.u, cfg.v} {
				verts := make([]int32, 0, d)
				for _, o := range cfg.ridge {
					verts = append(verts, int32(o))
				}
				verts = append(verts, int32(apex))
				sortInt32(verts)
				if hull[ridgeString(verts)] == 0 {
					t.Fatalf("d=%d: active ridge config uses non-hull facet %v", d, verts)
				}
			}
		}
	}
}

func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestRidgeSpaceTwoSupport verifies the Section 7 claim: the ridge
// formulation has 2-support (apex removals have singleton supports, ridge
// removals supports of size two).
func TestRidgeSpaceTwoSupport(t *testing.T) {
	for _, d := range []int{2, 3} {
		pts := pointgen.OnSphere(pointgen.NewRNG(int64(30+d)), 7+d, d)
		s := NewRidgeSpace(pts)
		all := make([]int, len(pts))
		for i := range all {
			all[i] = i
		}
		if err := core.VerifySupport(s, all); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestRidgeSpaceSimulate(t *testing.T) {
	pts := pointgen.OnSphere(pointgen.NewRNG(33), 12, 2)
	s := NewRidgeSpace(pts)
	order := pointgen.NewRNG(34).Perm(len(pts))
	g, err := core.Simulate(s, order)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if k := core.MaxSupportUsed(g); k > 2 {
		t.Fatalf("support size %d > 2", k)
	}
	bound := stats.Theorem42MinSigma(3, 2) * stats.Harmonic(len(pts))
	if float64(g.MaxDepth) >= bound {
		t.Fatalf("depth %d >= %.1f", g.MaxDepth, bound)
	}
}
