package hulld

import (
	"fmt"
	"testing"

	"parhull/internal/sched"
)

// TestLayoutScheduleEquivalence is the memory-layout half of the Theorem 5.5
// contract: the structure-of-arrays plane rows (DESIGN.md §4.7) are purely a
// storage choice, so every schedule must produce the identical facet
// multiset and vertex order with the layout on and off. The sequential
// engine — which never publishes SoA rows — is the reference, and each
// Par/Rounds schedule runs under both NoSoALayout settings against it, so a
// kernel whose folded-plane evaluation diverged by even one ulp between the
// inline and the SoA read path would flip a classification and fail here.
func TestLayoutScheduleEquivalence(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		n := 150
		if d == 4 {
			n = 60
		}
		for name, pts := range workloads(23, n, d) {
			ref, err := Seq(pts)
			if err != nil {
				t.Fatalf("d=%d %s seq: %v", d, name, err)
			}
			want := ref.FacetSet()
			wantV := fmt.Sprint(ref.Vertices)
			for _, noSoA := range []bool{false, true} {
				results := map[string]*Result{}
				for sname, kind := range map[string]sched.Kind{"steal": sched.KindSteal, "group": sched.KindGroup} {
					r, err := Par(pts, &Options{Sched: kind, NoSoALayout: noSoA})
					if err != nil {
						t.Fatalf("d=%d %s %s noSoA=%v: %v", d, name, sname, noSoA, err)
					}
					results[sname] = r
				}
				rr, err := Rounds(pts, &Options{NoSoALayout: noSoA})
				if err != nil {
					t.Fatalf("d=%d %s rounds noSoA=%v: %v", d, name, noSoA, err)
				}
				results["rounds"] = rr
				for cname, r := range results {
					if gotV := fmt.Sprint(r.Vertices); gotV != wantV {
						t.Errorf("d=%d %s %s noSoA=%v: vertices %s, seq %s", d, name, cname, noSoA, gotV, wantV)
					}
					got := r.FacetSet()
					if len(got) != len(want) {
						t.Fatalf("d=%d %s %s noSoA=%v: %d distinct facets, seq %d", d, name, cname, noSoA, len(got), len(want))
					}
					for k, c := range want {
						if got[k] != c {
							t.Errorf("d=%d %s %s noSoA=%v: facet %x multiplicity %d, seq %d", d, name, cname, noSoA, k, got[k], c)
						}
					}
				}
			}
		}
	}
}
