package hulld

import "parhull/internal/geom"

// This file implements the kernel's batch visibility filter — the
// conflict.Filter side of the two-phase merge/filter pipeline (DESIGN.md
// §4.3). Where visible() decides one point per indirect call, filterVisible
// streams a whole candidate run through the cached-plane dot product in one
// tight loop over the flat point store: the plane coefficients sit in
// registers, bounds checks amortize to one slice operation per point, and
// the float-filter branch costs two predictable comparisons. Candidates the
// static filter cannot certify are collected into a small sidecar and
// resolved by the exact predicate only after the loop, then value-merged
// back into position, so the survivor list is byte-identical to the
// pointwise path (asserted by TestBatchFilterMatchesClosure).

// uncertainCap is the stack capacity of the per-batch uncertain sidecar. On
// random inputs the static filter certifies essentially every test, so the
// sidecar almost never spills; adversarially flat inputs overflow into a
// heap append, which is correct and merely slower.
const uncertainCap = 24

// facetFilter binds the engine and one facet as the batch filter of that
// facet's visibility predicate. It is passed by value through the generic
// merge-filter entry points, so the hot path performs no interface boxing.
type facetFilter struct {
	e *engine
	f *Facet
}

// Filter implements conflict.Filter.
func (ff facetFilter) Filter(cands []int32, dst []int32) []int32 {
	return ff.e.filterVisible(ff.f, cands, dst)
}

// FilterRange implements conflict.Filter.
func (ff facetFilter) FilterRange(from, to int32, dst []int32) []int32 {
	return ff.e.filterVisibleRange(ff.f, from, to, dst)
}

// FilterMerge implements conflict.FusedFilter.
func (ff facetFilter) FilterMerge(c1, c2 []int32, drop int32, dst []int32) []int32 {
	return ff.e.filterVisibleMerge(ff.f, c1, c2, drop, dst)
}

// normalizedPlane returns f's cached plane with the normal and offset
// negated when the outward sign is negative, so that a point is visible from
// f exactly when N·x - off > eps and certifiably invisible when < -eps.
// Negation is exact in IEEE arithmetic (rounding is sign-symmetric), so
// every classification — including which candidates land in the uncertain
// band — matches visible() bit for bit.
func normalizedPlane(f *Facet) (n [geom.MaxPlaneDim]float64, off float64) {
	n, off = f.plane.N, f.plane.Off
	if f.outSign < 0 {
		for j := range n {
			n[j] = -n[j]
		}
		off = -off
	}
	return n, off
}

// filterVisible appends to dst the candidates visible from f, in order —
// the batch equivalent of appending every v with visible(v, f), with
// identical counter totals (tests counted per batch, fallbacks per sidecar
// entry).
func (e *engine) filterVisible(f *Facet, cands []int32, dst []int32) []int32 {
	if len(cands) == 0 {
		return dst
	}
	e.rec.VTests.Add(uint64(cands[0]), int64(len(cands)))
	if !f.plane.Valid() {
		for _, v := range cands {
			if e.exactVisible(v, f) {
				dst = append(dst, v)
			}
		}
		return dst
	}
	base := len(dst)
	var ubuf [uncertainCap]int32
	uncertain := ubuf[:0]
	n, off := normalizedPlane(f)
	eps := f.plane.Eps
	if f.plane.Dim() == 3 {
		c := e.store.Coords()
		n0, n1, n2 := n[0], n[1], n[2]
		for _, v := range cands {
			o := int(v) * 3
			x := c[o : o+3 : o+3]
			s := n0*x[0] + n1*x[1] + n2*x[2] - off
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	} else {
		sgn := float64(f.outSign)
		for _, v := range cands {
			s := sgn * f.plane.Eval(e.store.Row(v))
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	}
	if len(uncertain) == 0 {
		return dst
	}
	return e.resolveUncertain(f, dst, base, uncertain)
}

// filterVisibleRange is filterVisible over the contiguous candidates
// [from, to): the store rows stream sequentially, so the offset advances by
// the stride instead of being recomputed per point.
func (e *engine) filterVisibleRange(f *Facet, from, to int32, dst []int32) []int32 {
	if to <= from {
		return dst
	}
	e.rec.VTests.Add(uint64(from), int64(to-from))
	if !f.plane.Valid() {
		for v := from; v < to; v++ {
			if e.exactVisible(v, f) {
				dst = append(dst, v)
			}
		}
		return dst
	}
	base := len(dst)
	var ubuf [uncertainCap]int32
	uncertain := ubuf[:0]
	n, off := normalizedPlane(f)
	eps := f.plane.Eps
	if f.plane.Dim() == 3 {
		c := e.store.Coords()
		n0, n1, n2 := n[0], n[1], n[2]
		o := int(from) * 3
		for v := from; v < to; v++ {
			x := c[o : o+3 : o+3]
			o += 3
			s := n0*x[0] + n1*x[1] + n2*x[2] - off
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	} else {
		sgn := float64(f.outSign)
		for v := from; v < to; v++ {
			s := sgn * f.plane.Eval(e.store.Row(v))
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	}
	if len(uncertain) == 0 {
		return dst
	}
	return e.resolveUncertain(f, dst, base, uncertain)
}

// filterVisibleMerge fuses the ascending merge of two conflict lists with
// the visibility classification: each candidate is tested the moment the
// two-pointer merge produces it, so the merged run is never written to a
// scratch buffer and re-read. Survivors, order, and counter totals are
// identical to filterVisible over MergeInto(nil, c1, c2, drop) — the merge
// produces the same ascending deduplicated sequence, each element funnels
// through the same plane test, and the uncertain sidecar resolves the same
// way.
func (e *engine) filterVisibleMerge(f *Facet, c1, c2 []int32, drop int32, dst []int32) []int32 {
	if len(c1)+len(c2) == 0 {
		return dst
	}
	// Any shard key works for the per-batch counter adds: the key only
	// selects a stripe and Load sums all stripes, so totals match the
	// two-phase path's cands[0] keying exactly.
	var key uint64
	if len(c1) > 0 {
		key = uint64(c1[0])
	} else {
		key = uint64(c2[0])
	}
	var tested int64
	if !f.plane.Valid() {
		i, j := 0, 0
		for i < len(c1) && j < len(c2) {
			v := c1[i]
			if v < c2[j] {
				i++
			} else if v > c2[j] {
				v = c2[j]
				j++
			} else {
				i++
				j++
			}
			if v == drop {
				continue
			}
			tested++
			if e.exactVisible(v, f) {
				dst = append(dst, v)
			}
		}
		tail := c1[i:]
		if j < len(c2) {
			tail = c2[j:]
		}
		for _, v := range tail {
			if v == drop {
				continue
			}
			tested++
			if e.exactVisible(v, f) {
				dst = append(dst, v)
			}
		}
		if tested > 0 {
			e.rec.VTests.Add(key, tested)
		}
		return dst
	}
	base := len(dst)
	var ubuf [uncertainCap]int32
	uncertain := ubuf[:0]
	n, off := normalizedPlane(f)
	eps := f.plane.Eps
	if f.plane.Dim() == 3 {
		c := e.store.Coords()
		n0, n1, n2 := n[0], n[1], n[2]
		i, j := 0, 0
		for i < len(c1) && j < len(c2) {
			v := c1[i]
			if v < c2[j] {
				i++
			} else if v > c2[j] {
				v = c2[j]
				j++
			} else {
				i++
				j++
			}
			if v == drop {
				continue
			}
			tested++
			o := int(v) * 3
			x := c[o : o+3 : o+3]
			s := n0*x[0] + n1*x[1] + n2*x[2] - off
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
		tail := c1[i:]
		if j < len(c2) {
			tail = c2[j:]
		}
		for _, v := range tail {
			if v == drop {
				continue
			}
			tested++
			o := int(v) * 3
			x := c[o : o+3 : o+3]
			s := n0*x[0] + n1*x[1] + n2*x[2] - off
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	} else {
		sgn := float64(f.outSign)
		i, j := 0, 0
		for i < len(c1) && j < len(c2) {
			v := c1[i]
			if v < c2[j] {
				i++
			} else if v > c2[j] {
				v = c2[j]
				j++
			} else {
				i++
				j++
			}
			if v == drop {
				continue
			}
			tested++
			s := sgn * f.plane.Eval(e.store.Row(v))
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
		tail := c1[i:]
		if j < len(c2) {
			tail = c2[j:]
		}
		for _, v := range tail {
			if v == drop {
				continue
			}
			tested++
			s := sgn * f.plane.Eval(e.store.Row(v))
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	}
	if tested > 0 {
		e.rec.VTests.Add(key, tested)
	}
	if len(uncertain) == 0 {
		return dst
	}
	return e.resolveUncertain(f, dst, base, uncertain)
}

// resolveUncertain decides a batch's plane-uncertain candidates with the
// exact predicate and splices the survivors back into dst[base:]. The
// certain survivors and the uncertain survivors are disjoint ascending
// subsequences of the same candidate run, so a backward merge by value
// restores the ascending order in place.
func (e *engine) resolveUncertain(f *Facet, dst []int32, base int, uncertain []int32) []int32 {
	e.rec.Fallbacks.Add(uint64(uncertain[0]), int64(len(uncertain)))
	kept := uncertain[:0]
	for _, v := range uncertain {
		if e.exactVisible(v, f) {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		return dst
	}
	i := len(dst) - 1
	dst = append(dst, kept...)
	w := len(dst) - 1
	for j := len(kept) - 1; j >= 0; {
		if i >= base && dst[i] > kept[j] {
			dst[w] = dst[i]
			i--
		} else {
			dst[w] = kept[j]
			j--
		}
		w--
	}
	return dst
}
