package hulld

import (
	"os"
	"sync/atomic"

	"parhull/internal/conflict"
	"parhull/internal/faultinject"
)

// This file implements the kernel's batch visibility filter — the
// conflict.Filter side of the two-phase merge/filter pipeline (DESIGN.md
// §4.3) and its fused merge form. Where visible() decides one point per
// indirect call, the filters stream a whole candidate run through the
// cached-plane dot product in tight loops over the flat point store, using
// the dimension-specialized kernels in internal/conflict (DESIGN.md §4.7):
// the 3D path unrolls four inlined conflict.Eval3 calls per step, so four
// independent coordinate gathers are in flight at once with no call
// overhead — on large inputs the scan is bound by those loads. Planes are
// stored folded (makeFacet), read from the arena's structure-of-arrays rows
// when published (planeRow), and every kernel reproduces geom.Plane.Eval's
// summation order exactly, so classification — including which candidates
// land in the uncertain band — is bit-identical to the pointwise path.
// Candidates the static filter cannot certify are collected into a small
// sidecar and resolved by the exact predicate only after the loop, then
// value-merged back into position, so the survivor list is byte-identical
// to the pointwise path (asserted by TestBatchFilterMatchesClosure).
//
// Escape discipline: the sidecar and the merge chunk live in fixed-size
// stack buffers. The conflict kernels are pure evaluation (they never
// retain or return their slice arguments), and classification appends stay
// in this file, so neither buffer escapes — steady-state filtering performs
// zero heap allocations, which the reuse allocs gate enforces.

// uncertainCap is the stack capacity of the per-batch uncertain sidecar. On
// random inputs the static filter certifies essentially every test, so the
// sidecar almost never spills; adversarially flat inputs overflow into a
// heap append, which is correct and merely slower.
const uncertainCap = 24

// mergeChunk is the stack capacity of the fused merge's candidate chunk:
// the two-pointer merge deposits up to this many surviving candidates, then
// one four-wide classification pass consumes them. Chunking is what lets
// EVERY merged candidate — not just list tails — go through the four-wide
// kernel while the merge itself stays a simple scalar loop.
const mergeChunk = 64

// facetFilter binds the engine and one facet as the batch filter of that
// facet's visibility predicate. It is passed by value through the generic
// merge-filter entry points, so the hot path performs no interface boxing.
type facetFilter struct {
	e *engine
	f *Facet
}

// Filter implements conflict.Filter.
func (ff facetFilter) Filter(cands []int32, dst []int32) []int32 {
	return ff.e.filterVisible(ff.f, cands, dst)
}

// FilterRange implements conflict.Filter.
func (ff facetFilter) FilterRange(from, to int32, dst []int32) []int32 {
	return ff.e.filterVisibleRange(ff.f, from, to, dst)
}

// FilterMerge implements conflict.FusedFilter.
func (ff facetFilter) FilterMerge(c1, c2 []int32, drop int32, dst []int32) []int32 {
	return ff.e.filterVisibleMerge(ff.f, c1, c2, drop, dst)
}

// planeRow returns f's folded plane for the batch scan: the coefficients of
// its structure-of-arrays row when one was published (work-stealing path
// with the SoA layout on), otherwise the inline copy. Both hold identical
// bits — makeFacet writes the same folded values to both — so the choice
// affects only memory layout, never classification. ok=false means no
// plane cache: the caller must run the exact predicate.
func (e *engine) planeRow(f *Facet) (n []float64, off, eps float64, ok bool) {
	if ps := f.ps; ps != nil {
		d := e.d
		o := int(f.pi) * d
		return ps.Norms[o : o+d : o+d], ps.Offs[f.pi], ps.Eps[f.pi], true
	}
	if !f.plane.Valid() {
		return nil, 0, 0, false
	}
	d := f.plane.Dim()
	return f.plane.N[:d:d], f.plane.Off, f.plane.Eps, true
}

// filterVisible appends to dst the candidates visible from f, in order —
// the batch equivalent of appending every v with visible(v, f), with
// identical counter totals (tests counted per batch, fallbacks per sidecar
// entry).
func (e *engine) filterVisible(f *Facet, cands []int32, dst []int32) []int32 {
	if len(cands) == 0 {
		return dst
	}
	e.inj.Visit(faultinject.SiteScanBatch)
	e.rec.VTests.Add(uint64(cands[0]), int64(len(cands)))
	n, off, eps, ok := e.planeRow(f)
	if !ok {
		for _, v := range cands {
			if e.exactVisible(v, f) {
				dst = append(dst, v)
			}
		}
		return dst
	}
	base := len(dst)
	var ubuf [uncertainCap]int32
	uncertain := ubuf[:0]
	c := e.store.Coords()
	switch len(n) {
	case 3:
		n0, n1, n2 := n[0], n[1], n[2]
		k := 0
		for ; k+4 <= len(cands); k += 4 {
			g := cands[k : k+4 : k+4]
			s0 := conflict.Eval3(c, g[0], n0, n1, n2, off)
			s1 := conflict.Eval3(c, g[1], n0, n1, n2, off)
			s2 := conflict.Eval3(c, g[2], n0, n1, n2, off)
			s3 := conflict.Eval3(c, g[3], n0, n1, n2, off)
			if s0 > eps {
				dst = append(dst, g[0])
			} else if s0 >= -eps {
				uncertain = append(uncertain, g[0])
			}
			if s1 > eps {
				dst = append(dst, g[1])
			} else if s1 >= -eps {
				uncertain = append(uncertain, g[1])
			}
			if s2 > eps {
				dst = append(dst, g[2])
			} else if s2 >= -eps {
				uncertain = append(uncertain, g[2])
			}
			if s3 > eps {
				dst = append(dst, g[3])
			} else if s3 >= -eps {
				uncertain = append(uncertain, g[3])
			}
		}
		for _, v := range cands[k:] {
			s := conflict.Eval3(c, v, n0, n1, n2, off)
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	case 2:
		n0, n1 := n[0], n[1]
		for _, v := range cands {
			s := conflict.Eval2(c, v, n0, n1, off)
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	default:
		for _, v := range cands {
			s := conflict.EvalD(c, n, v, off)
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	}
	if len(uncertain) == 0 {
		return dst
	}
	return e.resolveUncertain(f, dst, base, uncertain)
}

// filterVisibleRange is filterVisible over the contiguous candidates
// [from, to): the store rows stream sequentially, so the offset advances by
// the stride instead of being recomputed per point, and the hardware
// prefetcher — not gather parallelism — hides the latency.
func (e *engine) filterVisibleRange(f *Facet, from, to int32, dst []int32) []int32 {
	if to <= from {
		return dst
	}
	e.inj.Visit(faultinject.SiteScanBatch)
	e.rec.VTests.Add(uint64(from), int64(to-from))
	n, off, eps, ok := e.planeRow(f)
	if !ok {
		for v := from; v < to; v++ {
			if e.exactVisible(v, f) {
				dst = append(dst, v)
			}
		}
		return dst
	}
	base := len(dst)
	var ubuf [uncertainCap]int32
	uncertain := ubuf[:0]
	c := e.store.Coords()
	if len(n) == 3 {
		n0, n1, n2 := n[0], n[1], n[2]
		o := int(from) * 3
		for v := from; v < to; v++ {
			x := c[o : o+3 : o+3]
			o += 3
			s := n0*x[0] + n1*x[1] + n2*x[2] - off
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	} else if len(n) == 2 {
		n0, n1 := n[0], n[1]
		for v := from; v < to; v++ {
			s := conflict.Eval2(c, v, n0, n1, off)
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	} else {
		for v := from; v < to; v++ {
			s := conflict.EvalD(c, n, v, off)
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	}
	if len(uncertain) == 0 {
		return dst
	}
	return e.resolveUncertain(f, dst, base, uncertain)
}

// filterVisibleMerge fuses the ascending merge of two conflict lists with
// the visibility classification. The 3D path runs in chunks: the scalar
// two-pointer merge deposits surviving candidates into a stack buffer, and
// each full (or final) chunk is consumed by the four-wide kernel — so the
// merged run is never written to allocated scratch and re-read, yet every
// candidate still gets the four-wide treatment. Survivors, order, and
// counter totals are identical to filterVisible over
// MergeInto(nil, c1, c2, drop): the merge produces the same ascending
// deduplicated sequence, each element funnels through the same plane test,
// and the uncertain sidecar resolves the same way.
func (e *engine) filterVisibleMerge(f *Facet, c1, c2 []int32, drop int32, dst []int32) []int32 {
	if len(c1)+len(c2) == 0 {
		return dst
	}
	e.inj.Visit(faultinject.SiteScanBatch)
	// Any shard key works for the per-batch counter adds: the key only
	// selects a stripe and Load sums all stripes, so totals match the
	// two-phase path's cands[0] keying exactly.
	var key uint64
	if len(c1) > 0 {
		key = uint64(c1[0])
	} else {
		key = uint64(c2[0])
	}
	var tested int64
	n, off, eps, ok := e.planeRow(f)
	if !ok {
		i, j := 0, 0
		for i < len(c1) && j < len(c2) {
			v := c1[i]
			if v < c2[j] {
				i++
			} else if v > c2[j] {
				v = c2[j]
				j++
			} else {
				i++
				j++
			}
			if v == drop {
				continue
			}
			tested++
			if e.exactVisible(v, f) {
				dst = append(dst, v)
			}
		}
		tail := c1[i:]
		if j < len(c2) {
			tail = c2[j:]
		}
		for _, v := range tail {
			if v == drop {
				continue
			}
			tested++
			if e.exactVisible(v, f) {
				dst = append(dst, v)
			}
		}
		if tested > 0 {
			e.rec.VTests.Add(key, tested)
		}
		return dst
	}
	base := len(dst)
	var ubuf [uncertainCap]int32
	uncertain := ubuf[:0]
	c := e.store.Coords()
	if len(n) == 3 {
		n0, n1, n2 := n[0], n[1], n[2]
		var buf [mergeChunk]int32
		i, j := 0, 0
		for {
			// Fill the chunk: merge head while both lists remain, then
			// drain whichever tail is left. Only non-drop candidates are
			// deposited, so tested advances by exactly the chunk fill.
			m := 0
			for m < mergeChunk && i < len(c1) && j < len(c2) {
				v := c1[i]
				if v < c2[j] {
					i++
				} else if v > c2[j] {
					v = c2[j]
					j++
				} else {
					i++
					j++
				}
				if v == drop {
					continue
				}
				buf[m] = v
				m++
			}
			if m < mergeChunk {
				for m < mergeChunk && i < len(c1) {
					if v := c1[i]; v != drop {
						buf[m] = v
						m++
					}
					i++
				}
				for m < mergeChunk && j < len(c2) {
					if v := c2[j]; v != drop {
						buf[m] = v
						m++
					}
					j++
				}
			}
			if m == 0 {
				break
			}
			tested += int64(m)
			q := buf[:m]
			k := 0
			for ; k+4 <= m; k += 4 {
				g := q[k : k+4 : k+4]
				s0 := conflict.Eval3(c, g[0], n0, n1, n2, off)
				s1 := conflict.Eval3(c, g[1], n0, n1, n2, off)
				s2 := conflict.Eval3(c, g[2], n0, n1, n2, off)
				s3 := conflict.Eval3(c, g[3], n0, n1, n2, off)
				if s0 > eps {
					dst = append(dst, g[0])
				} else if s0 >= -eps {
					uncertain = append(uncertain, g[0])
				}
				if s1 > eps {
					dst = append(dst, g[1])
				} else if s1 >= -eps {
					uncertain = append(uncertain, g[1])
				}
				if s2 > eps {
					dst = append(dst, g[2])
				} else if s2 >= -eps {
					uncertain = append(uncertain, g[2])
				}
				if s3 > eps {
					dst = append(dst, g[3])
				} else if s3 >= -eps {
					uncertain = append(uncertain, g[3])
				}
			}
			for _, v := range q[k:] {
				s := conflict.Eval3(c, v, n0, n1, n2, off)
				if s > eps {
					dst = append(dst, v)
				} else if s >= -eps {
					uncertain = append(uncertain, v)
				}
			}
			if m < mergeChunk {
				break
			}
		}
	} else {
		i, j := 0, 0
		for i < len(c1) && j < len(c2) {
			v := c1[i]
			if v < c2[j] {
				i++
			} else if v > c2[j] {
				v = c2[j]
				j++
			} else {
				i++
				j++
			}
			if v == drop {
				continue
			}
			tested++
			s := evalGen(c, n, v, off)
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
		tail := c1[i:]
		if j < len(c2) {
			tail = c2[j:]
		}
		for _, v := range tail {
			if v == drop {
				continue
			}
			tested++
			s := evalGen(c, n, v, off)
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	}
	if tested > 0 {
		e.rec.VTests.Add(key, tested)
	}
	if len(uncertain) != 0 {
		dst = e.resolveUncertain(f, dst, base, uncertain)
	}
	return plantDrop(dst, base)
}

// soakPlant, when set, makes the fused merge filter silently drop the last
// surviving candidate of every batch — a deliberately planted scan-kernel
// defect used to prove the independent output certifier catches real bugs
// end to end (soak violation, bit-for-bit replay, shrink). Armed only by the
// hidden PARHULL_SOAK_PLANT environment flag or, in-process, by PlantSoakBug
// (cmd/hullsoak tests). Atomic so workers retained by a Builder observe
// toggles without a data race.
var soakPlant atomic.Bool

func init() {
	if os.Getenv("PARHULL_SOAK_PLANT") == "drop-candidate" {
		soakPlant.Store(true)
	}
}

// PlantSoakBug toggles the planted scan defect (soak-rig tests only).
func PlantSoakBug(on bool) { soakPlant.Store(on) }

// plantDrop applies the planted defect to a finished batch: the survivors
// dst[base:] lose their last element.
func plantDrop(dst []int32, base int) []int32 {
	if soakPlant.Load() && len(dst) > base {
		return dst[:len(dst)-1]
	}
	return dst
}

// evalGen evaluates the folded plane at point v for the non-3D fused merge:
// the 2D specialization or the generic strided product, each matching
// geom.Plane.Eval's summation order for its dimension.
func evalGen(c, n []float64, v int32, off float64) float64 {
	if len(n) == 2 {
		return conflict.Eval2(c, v, n[0], n[1], off)
	}
	return conflict.EvalD(c, n, v, off)
}

// resolveUncertain decides a batch's plane-uncertain candidates with the
// exact predicate and splices the survivors back into dst[base:]. The
// certain survivors and the uncertain survivors are disjoint ascending
// subsequences of the same candidate run, so a backward merge by value
// restores the ascending order in place.
func (e *engine) resolveUncertain(f *Facet, dst []int32, base int, uncertain []int32) []int32 {
	e.rec.Fallbacks.Add(uint64(uncertain[0]), int64(len(uncertain)))
	kept := uncertain[:0]
	for _, v := range uncertain {
		if e.exactVisible(v, f) {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		return dst
	}
	i := len(dst) - 1
	dst = append(dst, kept...)
	w := len(dst) - 1
	for j := len(kept) - 1; j >= 0; {
		if i >= base && dst[i] > kept[j] {
			dst[w] = dst[i]
			i--
		} else {
			dst[w] = kept[j]
			j--
		}
		w--
	}
	return dst
}
