package hulld

import "parhull/internal/geom"

// This file implements the kernel's batch visibility filter — the
// conflict.Filter side of the two-phase merge/filter pipeline (DESIGN.md
// §4.3). Where visible() decides one point per indirect call, filterVisible
// streams a whole candidate run through the cached-plane dot product in one
// tight loop over the flat point store: the plane coefficients sit in
// registers, bounds checks amortize to one slice operation per point, and
// the float-filter branch costs two predictable comparisons. Candidates the
// static filter cannot certify are collected into a small sidecar and
// resolved by the exact predicate only after the loop, then value-merged
// back into position, so the survivor list is byte-identical to the
// pointwise path (asserted by TestBatchFilterMatchesClosure).

// uncertainCap is the stack capacity of the per-batch uncertain sidecar. On
// random inputs the static filter certifies essentially every test, so the
// sidecar almost never spills; adversarially flat inputs overflow into a
// heap append, which is correct and merely slower.
const uncertainCap = 24

// facetFilter binds the engine and one facet as the batch filter of that
// facet's visibility predicate. It is passed by value through the generic
// merge-filter entry points, so the hot path performs no interface boxing.
type facetFilter struct {
	e *engine
	f *Facet
}

// Filter implements conflict.Filter.
func (ff facetFilter) Filter(cands []int32, dst []int32) []int32 {
	return ff.e.filterVisible(ff.f, cands, dst)
}

// FilterRange implements conflict.Filter.
func (ff facetFilter) FilterRange(from, to int32, dst []int32) []int32 {
	return ff.e.filterVisibleRange(ff.f, from, to, dst)
}

// normalizedPlane returns f's cached plane with the normal and offset
// negated when the outward sign is negative, so that a point is visible from
// f exactly when N·x - off > eps and certifiably invisible when < -eps.
// Negation is exact in IEEE arithmetic (rounding is sign-symmetric), so
// every classification — including which candidates land in the uncertain
// band — matches visible() bit for bit.
func normalizedPlane(f *Facet) (n [geom.MaxPlaneDim]float64, off float64) {
	n, off = f.plane.N, f.plane.Off
	if f.outSign < 0 {
		for j := range n {
			n[j] = -n[j]
		}
		off = -off
	}
	return n, off
}

// filterVisible appends to dst the candidates visible from f, in order —
// the batch equivalent of appending every v with visible(v, f), with
// identical counter totals (tests counted per batch, fallbacks per sidecar
// entry).
func (e *engine) filterVisible(f *Facet, cands []int32, dst []int32) []int32 {
	if len(cands) == 0 {
		return dst
	}
	e.rec.VTests.Add(uint64(cands[0]), int64(len(cands)))
	if !f.plane.Valid() {
		for _, v := range cands {
			if e.exactVisible(v, f) {
				dst = append(dst, v)
			}
		}
		return dst
	}
	base := len(dst)
	var ubuf [uncertainCap]int32
	uncertain := ubuf[:0]
	n, off := normalizedPlane(f)
	eps := f.plane.Eps
	if f.plane.Dim() == 3 {
		c := e.store.Coords()
		n0, n1, n2 := n[0], n[1], n[2]
		for _, v := range cands {
			o := int(v) * 3
			x := c[o : o+3 : o+3]
			s := n0*x[0] + n1*x[1] + n2*x[2] - off
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	} else {
		sgn := float64(f.outSign)
		for _, v := range cands {
			s := sgn * f.plane.Eval(e.store.Row(v))
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	}
	if len(uncertain) == 0 {
		return dst
	}
	return e.resolveUncertain(f, dst, base, uncertain)
}

// filterVisibleRange is filterVisible over the contiguous candidates
// [from, to): the store rows stream sequentially, so the offset advances by
// the stride instead of being recomputed per point.
func (e *engine) filterVisibleRange(f *Facet, from, to int32, dst []int32) []int32 {
	if to <= from {
		return dst
	}
	e.rec.VTests.Add(uint64(from), int64(to-from))
	if !f.plane.Valid() {
		for v := from; v < to; v++ {
			if e.exactVisible(v, f) {
				dst = append(dst, v)
			}
		}
		return dst
	}
	base := len(dst)
	var ubuf [uncertainCap]int32
	uncertain := ubuf[:0]
	n, off := normalizedPlane(f)
	eps := f.plane.Eps
	if f.plane.Dim() == 3 {
		c := e.store.Coords()
		n0, n1, n2 := n[0], n[1], n[2]
		o := int(from) * 3
		for v := from; v < to; v++ {
			x := c[o : o+3 : o+3]
			o += 3
			s := n0*x[0] + n1*x[1] + n2*x[2] - off
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	} else {
		sgn := float64(f.outSign)
		for v := from; v < to; v++ {
			s := sgn * f.plane.Eval(e.store.Row(v))
			if s > eps {
				dst = append(dst, v)
			} else if s >= -eps {
				uncertain = append(uncertain, v)
			}
		}
	}
	if len(uncertain) == 0 {
		return dst
	}
	return e.resolveUncertain(f, dst, base, uncertain)
}

// resolveUncertain decides a batch's plane-uncertain candidates with the
// exact predicate and splices the survivors back into dst[base:]. The
// certain survivors and the uncertain survivors are disjoint ascending
// subsequences of the same candidate run, so a backward merge by value
// restores the ascending order in place.
func (e *engine) resolveUncertain(f *Facet, dst []int32, base int, uncertain []int32) []int32 {
	e.rec.Fallbacks.Add(uint64(uncertain[0]), int64(len(uncertain)))
	kept := uncertain[:0]
	for _, v := range uncertain {
		if e.exactVisible(v, f) {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		return dst
	}
	i := len(dst) - 1
	dst = append(dst, kept...)
	w := len(dst) - 1
	for j := len(kept) - 1; j >= 0; {
		if i >= base && dst[i] > kept[j] {
			dst[w] = dst[i]
			i--
		} else {
			dst[w] = kept[j]
			j--
		}
		w--
	}
	return dst
}
