// Package hulld implements randomized incremental convex hull in arbitrary
// constant dimension d >= 2: the sequential Algorithm 2 and the parallel
// Algorithm 3 of the paper, with the same two schedules as package hull2d
// (asynchronous fork-join, and round-synchronous for Theorem 5.3/5.4
// measurements).
//
// A facet is an oriented d-simplex identified by its d defining point
// indices (sorted); a ridge is a (d-1)-subset of a facet shared with exactly
// one neighbor; visibility is decided against an interior reference point
// (the centroid of the initial simplex, which remains strictly inside every
// prefix hull). Points must be in general position: no d+1 points on a
// common hyperplane among those touching the hull (Section 6's corner
// configuration space, in package corner, lifts this restriction for 3D).
//
// Visibility hot path: each facet caches its hyperplane (a plain-float
// cofactor normal and offset; see geom.NewFacetPlane), coordinates live in
// a flat geom.PointStore, and one static certification threshold for the
// whole cloud (geom.StaticFilterEps) is computed per construction, so a
// test is a d-term strided dot product plus a comparison. Only when the
// cached filter cannot certify the sign does the engine fall back to the
// exact OrientSimplex predicate — the combinatorial output is bit-identical
// to the pure determinant path (Options.NoPlaneCache, kept for ablation;
// also used automatically for d > geom.MaxPlaneDim where cofactor expansion
// stops paying off).
package hulld

import (
	"errors"
	"fmt"
	"sync/atomic"

	"parhull/internal/conflict"
	eng "parhull/internal/engine"
	"parhull/internal/facetlog"
	"parhull/internal/faultinject"
	"parhull/internal/geom"
	"parhull/internal/hullstats"
	"parhull/internal/sched"
)

// ErrDegenerate is returned when the input violates general position in a
// way the engine detects (affinely dependent base simplex, or a created
// facet whose plane passes through the interior reference point).
var ErrDegenerate = errors.New("hulld: degenerate input (points not in general position)")

// noPivot is the driver's empty-conflict-set sentinel.
const noPivot = eng.NoPivot

// arena is this kernel's per-worker allocator: the generic bump arena
// instantiated at the d-dimensional facet type. Verts, ridges, and conflict
// lists all carve from its int32 blocks on the work-stealing path.
type arena = eng.Arena[Facet]

// kernel adapts the d-dimensional geometry to the generic Algorithm-3 driver
// in internal/engine: facets are oriented d-simplices, a ridge is a sorted
// (d-1)-subset, and a new facet has d-1 fresh ridges — those containing the
// pivot.
type kernel struct{ e *engine }

// Pivot implements engine.Kernel.
func (k kernel) Pivot(f *Facet) int32 { return f.pivot() }

// NewFacet implements engine.Kernel.
func (k kernel) NewFacet(a *arena, r []int32, p int32, t1, t2 *Facet, round int32) (*Facet, error) {
	return k.e.newFacet(a, r, p, t1, t2, round)
}

// FreshRidges implements engine.Kernel: the fresh ridges of t are the d-1
// ridges omitting one vertex of r each — exactly the ridges containing the
// pivot. The ridge slices are published into the table, so they carve from
// the arena (heap when a is nil). The d == 3 case carves both 2-vertex
// ridges from one block reservation and fills them by direct index — the
// ridge slices are immutable once published, so sharing a backing array is
// safe.
func (k kernel) FreshRidges(a *arena, t *Facet, r []int32, buf [][]int32) [][]int32 {
	if len(r) == 2 {
		s := a.IntsLen(4)
		v0, v1, v2 := t.Verts[0], t.Verts[1], t.Verts[2]
		r0, r1 := s[0:2:2], s[2:4:4]
		fillRidge3(r0, v0, v1, v2, r[0])
		fillRidge3(r1, v0, v1, v2, r[1])
		return append(buf, r0, r1)
	}
	for _, q := range r {
		buf = append(buf, ridgeWithoutIn(a, t, q))
	}
	return buf
}

// fillRidge3 writes the two of (v0, v1, v2) that are not q into dst, in
// order — the d == 3 ridge omitting q.
func fillRidge3(dst []int32, v0, v1, v2, q int32) {
	switch q {
	case v0:
		dst[0], dst[1] = v1, v2
	case v1:
		dst[0], dst[1] = v0, v2
	default:
		dst[0], dst[1] = v0, v1
	}
}

// Kill implements engine.Kernel.
func (k kernel) Kill(f *Facet) bool { return f.kill() }

// Facet is an oriented d-simplex of the hull. Immutable after creation
// except for the liveness flag.
type Facet struct {
	// Verts holds the d defining point indices, sorted ascending.
	Verts []int32
	// Conf is the conflict set: indices of points strictly outside, in
	// ascending insertion order.
	Conf []int32
	// Depth is the configuration-dependence-graph depth (Definition 4.1).
	Depth int32
	// Round is the creation round (rounds engine only; 0 for the base).
	Round int32

	// plane caches the facet hyperplane for the filtered fast path, stored
	// folded: normal and offset are negated at creation when the outward
	// sign is negative, so Eval > Eps certifies visible and Eval < -Eps
	// certifies invisible with no per-test sign fixup. vp caches the vertex
	// coordinates only when the plane cache is absent (ablation mode,
	// d > geom.MaxPlaneDim, or a degenerate threshold) — with a valid
	// plane, exact fallbacks reconstruct them on demand. outSign is the
	// OrientSimplex sign that classifies a point as strictly outside (the
	// exact path is unaffected by folding).
	plane   geom.Plane
	vp      []geom.Point
	outSign int
	// ps/pi locate this facet's plane row in the worker arena's
	// structure-of-arrays plane storage (engine.PlaneArena): the batch
	// filter reads the folded plane from ps at row pi when ps != nil, so
	// scans stream flat per-field arrays laid out in creation order instead
	// of pulling whole facet records through the cache. nil on the heap
	// paths (sequential engine, base facets of a one-shot construction) and
	// under the Options.NoSoALayout ablation.
	ps *eng.PlaneSlab
	pi int32
	// mark is scratch for the sequential engine's per-insertion visible-set
	// membership (holds the insertion index; never touched concurrently).
	mark int32
	dead atomic.Bool
}

func (f *Facet) pivot() int32 {
	if len(f.Conf) == 0 {
		return noPivot
	}
	return f.Conf[0]
}

// Alive reports whether the facet is still part of the hull.
func (f *Facet) Alive() bool { return !f.dead.Load() }

func (f *Facet) kill() bool { return !f.dead.Swap(true) }

// String formats the facet's vertex indices.
func (f *Facet) String() string { return fmt.Sprint(f.Verts) }

// Key returns the canonical identity of the facet (its sorted vertex tuple)
// for cross-engine comparisons.
func (f *Facet) Key() string { return ridgeString(f.Verts) }

// Stats aggregates instrumentation; see hullstats.Stats.
type Stats = hullstats.Stats

// Result is the output of a hull construction.
type Result struct {
	// Facets holds the surviving facets of the hull.
	Facets []*Facet
	// Vertices holds the sorted indices of points on the hull.
	Vertices []int32
	// Created holds every facet ever created.
	Created []*Facet
	// HullSizes (sequential engine only) records the facet count of the
	// hull after each insertion step, for the Theorem 3.1 bound.
	HullSizes []int
	Stats     Stats
}

// FacetSet returns the multiset of created facets keyed by sorted vertex
// tuple.
func (r *Result) FacetSet() map[string]int {
	m := make(map[string]int, len(r.Created))
	for _, f := range r.Created {
		m[f.Key()]++
	}
	return m
}

// ridgeMapKey is a comparable ridge key for the sequential engine's
// adjacency map and the result validator. Ridges of up to 8 indices pack
// into a fixed array (padded with -1, which no point index can collide
// with) so key construction allocates nothing and hashing is a flat memory
// compare; longer ridges fall back to the string encoding.
type ridgeMapKey struct {
	arr [8]int32
	str string
}

// ridgeKeyOmit builds the map key of the ridge verts-minus-verts[omit].
func ridgeKeyOmit(verts []int32, omit int) ridgeMapKey {
	var k ridgeMapKey
	if len(verts)-1 <= len(k.arr) {
		i := 0
		for j, v := range verts {
			if j != omit {
				k.arr[i] = v
				i++
			}
		}
		for ; i < len(k.arr); i++ {
			k.arr[i] = -1
		}
		return k
	}
	r := make([]int32, 0, len(verts)-1)
	for j, v := range verts {
		if j != omit {
			r = append(r, v)
		}
	}
	k.str = ridgeString(r)
	return k
}

// ridgeString encodes sorted indices as a compact map key.
func ridgeString(ids []int32) string {
	b := make([]byte, 4*len(ids))
	for i, v := range ids {
		u := uint32(v)
		b[4*i] = byte(u)
		b[4*i+1] = byte(u >> 8)
		b[4*i+2] = byte(u >> 16)
		b[4*i+3] = byte(u >> 24)
	}
	return string(b)
}

type engine struct {
	pts      []geom.Point     // original points (exact-predicate path)
	store    *geom.PointStore // flat coordinates (plane-cache fast path)
	d        int
	grain    int     // conflict-filter parallel grain (0 = default)
	planeEps float64 // static certification threshold; 0 = cache off
	batch    bool    // batch visibility filter (filter.go) vs pointwise closure
	soa      bool    // publish plane rows into the arena SoA storage
	interior geom.Point
	rec      *hullstats.Recorder
	inj      *faultinject.Injector // batch-scan fault site (nil in production)

	log *facetlog.Log[*Facet] // every facet ever created

	// ru is the retained-state bundle when this engine is owned by a Reuse
	// (nil on the one-shot paths); initialHull and collectResult draw their
	// buffers from it.
	ru *Reuse
}

// newEngine assembles engine state. stripes sizes the facet log (1 keeps
// Result.Created in creation order; the parallel engines stripe by worker
// count so record() does not serialize).
func newEngine(pts []geom.Point, d int, counters bool, grain, stripes int, noPlane, batch, soa bool) *engine {
	e := &engine{
		pts:   pts,
		store: geom.NewPointStore(pts),
		d:     d,
		grain: grain,
		batch: batch,
		soa:   soa,
		rec:   hullstats.NewRecorder(counters),
		log:   facetlog.New[*Facet](stripes),
	}
	if !noPlane {
		e.planeEps = geom.StaticFilterEps(e.store.MaxAbs())
	}
	e.rec.SetPlaneCache(e.planeEps > 0)
	e.rec.MarkHeapBase()
	return e
}

// facetPoints returns the vertex coordinates of f, using the cached slice
// when present (no plane cache) and reconstructing otherwise (rare exact
// fallbacks through a plane-cached facet).
func (e *engine) facetPoints(f *Facet) []geom.Point {
	if f.vp != nil {
		return f.vp
	}
	vp := make([]geom.Point, len(f.Verts))
	for i, v := range f.Verts {
		vp[i] = e.pts[v]
	}
	return vp
}

// visible reports whether point v is strictly outside facet f, counting the
// test. The cached-plane filter decides almost every call; the exact
// OrientSimplex predicate is the fallback, so the answer is always exact.
// Planes are stored folded (makeFacet), so a positive evaluation certifies
// visible directly.
func (e *engine) visible(v int32, f *Facet) bool {
	e.rec.VTests.Inc(uint64(v))
	if f.plane.Valid() {
		s := f.plane.Eval(e.store.Row(v))
		if s > f.plane.Eps {
			return true
		}
		if s < -f.plane.Eps {
			return false
		}
		e.rec.Fallbacks.Inc(uint64(v))
	}
	return e.exactVisible(v, f)
}

// exactVisible is the exact visibility predicate with no counting — the
// shared tail of visible() and the batch filter's uncertain-sidecar
// resolution (both count before calling it, on different granularities).
func (e *engine) exactVisible(v int32, f *Facet) bool {
	return geom.OrientSimplex(e.facetPoints(f), e.pts[v]) == f.outSign
}

func (e *engine) record(f *Facet) {
	e.rec.Created(f.Depth)
	k := uint32(0)
	for _, v := range f.Verts {
		k = k*31 + uint32(v)
	}
	e.log.Append(k, f)
}

// makeFacet assembles a facet from sorted vertex indices, computing its
// cached hyperplane and its outward sign from the interior reference point.
// A zero sign means the simplex is degenerate or its plane passes through
// the reference point — both general-position violations. The facet struct
// comes from the worker arena when one is supplied (work-stealing path).
//
// The cached plane is stored folded — negated when the outward OrientSimplex
// sign is negative, so that Eval > Eps means visible on every read path.
// IEEE negation is exact, so every downstream classification (including
// which candidates fall in the uncertain band) is bit-identical to
// evaluating the unfolded plane and comparing against outSign; this is what
// keeps the sequential, parallel, and SoA/no-SoA engines facet-identical.
// With the SoA layout on, the folded plane is additionally published as a
// row of the worker arena's PlaneArena; the row is fully written here,
// before the facet escapes this worker, so readers that reach the facet
// through the ridge table or facet log see a complete row.
func (e *engine) makeFacet(a *arena, verts []int32) (*Facet, error) {
	f := a.Facet()
	f.Verts = verts
	var s int
	if e.planeEps > 0 {
		// planeEps > 0 implies d <= geom.MaxPlaneDim, so the vertex slice
		// fits a stack buffer; neither NewFacetPlane nor OrientSimplex
		// retains it, keeping facet creation allocation-free beyond the
		// facet itself. The interior point is a convex combination of input
		// points, so its coordinates are bounded by the store's per-dimension
		// maxima and the static certificate applies to it as well.
		var buf [geom.MaxPlaneDim]geom.Point
		vp := buf[:len(verts)]
		for i, v := range verts {
			vp[i] = e.pts[v]
		}
		f.plane = geom.NewFacetPlane(vp, e.planeEps)
		cs, ok := f.plane.CertifiedSign(e.interior)
		if !ok {
			cs = geom.OrientSimplex(vp, e.interior)
		}
		s = cs
	} else {
		vp := make([]geom.Point, len(verts))
		for i, v := range verts {
			vp[i] = e.pts[v]
		}
		s = geom.OrientSimplex(vp, e.interior)
		f.vp = vp
	}
	if s == 0 {
		return nil, fmt.Errorf("%w: facet %v is coplanar with the interior point", ErrDegenerate, verts)
	}
	f.outSign = -s
	if f.plane.Valid() {
		if f.outSign < 0 {
			for j := range f.plane.N {
				f.plane.N[j] = -f.plane.N[j]
			}
			f.plane.Off = -f.plane.Off
		}
		if e.soa && a != nil {
			d := e.d
			ps, pi := a.Planes.Row(d)
			o := int(pi) * d
			copy(ps.Norms[o:o+d], f.plane.N[:d])
			ps.Offs[pi] = f.plane.Off
			ps.Eps[pi] = f.plane.Eps
			f.ps, f.pi = ps, pi
		}
	}
	return f, nil
}

// newFacet builds the facet joining ridge r with pivot p, supported by
// (t1, t2), filtering the conflict list per line 16 of Algorithm 3. With a
// worker arena the facet, its Verts, and its conflict list all come from
// per-worker blocks (nil a = heap, used by the other schedules).
func (e *engine) newFacet(a *arena, r []int32, p int32, t1, t2 *Facet, round int32) (*Facet, error) {
	var verts []int32
	if len(r) == 2 {
		// d == 3: place the pivot into the sorted 2-vertex ridge by direct
		// index instead of the general insertion loop.
		verts = a.IntsLen(3)
		switch {
		case p < r[0]:
			verts[0], verts[1], verts[2] = p, r[0], r[1]
		case p < r[1]:
			verts[0], verts[1], verts[2] = r[0], p, r[1]
		default:
			verts[0], verts[1], verts[2] = r[0], r[1], p
		}
	} else {
		verts = a.Ints(len(r) + 1)
		ins := false
		for _, v := range r {
			if !ins && p < v {
				verts = append(verts, p)
				ins = true
			}
			verts = append(verts, v)
		}
		if !ins {
			verts = append(verts, p)
		}
	}
	f, err := e.makeFacet(a, verts)
	if err != nil {
		return nil, err
	}
	f.Depth = 1 + max32(t1.Depth, t2.Depth)
	f.Round = round
	f.Conf = e.mergeFilter(a, t1.Conf, t2.Conf, p, f)
	e.record(f)
	return f, nil
}

// mergeFilter merges the two ascending conflict lists, drops p, and keeps
// the points visible from f, through the driver's shared grain/arena
// discipline (engine.MergeFilter). The batch path runs fused: merge and
// classification in one pass, never materializing the candidate run.
func (e *engine) mergeFilter(a *arena, c1, c2 []int32, p int32, f *Facet) []int32 {
	if e.batch {
		return eng.MergeFilterFused(a, c1, c2, p, facetFilter{e: e, f: f}, e.grain)
	}
	keep := func(v int32) bool { return e.visible(v, f) }
	return eng.MergeFilter(a, c1, c2, p, keep, e.grain)
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// initialHull builds the simplex on the first d+1 points and the conflict
// lists of its d+1 facets over the remaining points.
func (e *engine) initialHull() ([]*Facet, error) {
	n := len(e.pts)
	d := e.d
	if n < d+1 {
		return nil, fmt.Errorf("%w: need at least d+1 = %d points, got %d", ErrDegenerate, d+1, n)
	}
	// The base-simplex facets, their vertex tuples, and their conflict lists
	// come from a pooled arena when the engine is owned by a Reuse — the
	// initial conflict lists are the largest slices of the whole run, so
	// recycling them matters as much as the per-facet arena discipline.
	var (
		a      *arena
		alloc  func(int) []int32
		base   []geom.Point
		facets []*Facet
	)
	if ru := e.ru; ru != nil {
		ap := ru.pool.Chain()
		a = ap.Get()
		defer ap.Put(a)
		alloc = a.Alloc
		if cap(ru.base) < d+1 {
			ru.base = make([]geom.Point, d+1)
		}
		base = ru.base[:d+1]
		facets = ru.inits[:0]
	} else {
		base = make([]geom.Point, d+1)
		facets = make([]*Facet, 0, d+1)
	}
	for i := range base {
		base[i] = e.pts[i]
	}
	if geom.OrientSimplex(base[:d], base[d]) == 0 {
		return nil, fmt.Errorf("%w: first %d points are affinely dependent", ErrDegenerate, d+1)
	}
	e.interior = geom.Centroid(base)

	for omit := 0; omit <= d; omit++ {
		verts := a.Ints(d)
		for i := 0; i <= d; i++ {
			if i != omit {
				verts = append(verts, int32(i))
			}
		}
		f, err := e.makeFacet(a, verts)
		if err != nil {
			return nil, err
		}
		facets = append(facets, f)
	}
	if e.ru != nil {
		e.ru.inits = facets
	}
	for _, f := range facets {
		f := f
		if e.batch {
			f.Conf = conflict.BuildFilterInto(int32(d+1), int32(n), facetFilter{e: e, f: f}, e.grain, alloc)
		} else {
			f.Conf = conflict.Build(int32(d+1), int32(n),
				func(v int32) bool { return e.visible(v, f) }, e.grain)
		}
		e.record(f)
	}
	return facets, nil
}

// ridgeWithout returns the ridge of f that omits vertex q.
func ridgeWithout(f *Facet, q int32) []int32 { return ridgeWithoutIn(nil, f, q) }

// ridgeWithoutIn is ridgeWithout carving the ridge slice from the worker
// arena when one is supplied.
func ridgeWithoutIn(a *arena, f *Facet, q int32) []int32 {
	r := a.Ints(len(f.Verts) - 1)
	for _, v := range f.Verts {
		if v != q {
			r = append(r, v)
		}
	}
	return r
}

// collectResult gathers alive facets and validates the closed-pseudomanifold
// property: every ridge of an alive facet is shared by exactly one other
// alive facet.
func (e *engine) collectResult(rounds int) (*Result, error) {
	e.rec.SampleHeap()
	ru := e.ru
	var res *Result
	if ru != nil {
		ru.created = e.log.SnapshotInto(ru.created[:0])
		ru.res = Result{Created: ru.created, Facets: ru.facets[:0], Vertices: ru.vertices[:0]}
		res = &ru.res
	} else {
		res = &Result{Created: e.log.Snapshot()}
	}
	for _, f := range res.Created {
		if f.Alive() {
			res.Facets = append(res.Facets, f)
		}
	}
	if len(res.Facets) < e.d+1 {
		return nil, fmt.Errorf("hulld: only %d alive facets (want >= %d)", len(res.Facets), e.d+1)
	}
	// Each ridge of a closed pseudomanifold is shared by exactly two alive
	// facets, so the count map ends at alive*d/2 entries — preallocate (or,
	// pooled, refill the retained map: clear keeps its buckets).
	var ridgeCount map[ridgeMapKey]int32
	if ru != nil && ru.ridges != nil {
		ridgeCount = ru.ridges
		clear(ridgeCount)
	} else {
		ridgeCount = make(map[ridgeMapKey]int32, len(res.Facets)*e.d/2+1)
		if ru != nil {
			ru.ridges = ridgeCount
		}
	}
	var inHull []bool
	if ru != nil {
		if cap(ru.inHull) < len(e.pts) {
			ru.inHull = make([]bool, len(e.pts))
		}
		inHull = ru.inHull[:len(e.pts)]
		ru.inHull = inHull
		clear(inHull)
	} else {
		inHull = make([]bool, len(e.pts))
	}
	for _, f := range res.Facets {
		for _, v := range f.Verts {
			inHull[v] = true
		}
		for omit := range f.Verts {
			ridgeCount[ridgeKeyOmit(f.Verts, omit)]++
		}
	}
	for k, c := range ridgeCount {
		if c != 2 {
			return nil, fmt.Errorf("hulld: ridge %v shared by %d alive facets, want 2", k.arr, c)
		}
	}
	for v, on := range inHull {
		if on {
			res.Vertices = append(res.Vertices, int32(v))
		}
	}
	res.Stats = e.rec.Snapshot(rounds, len(res.Facets))
	if ru != nil {
		// Capture the (possibly regrown) backings so the next construction
		// reuses them at full capacity.
		ru.facets = res.Facets
		ru.vertices = res.Vertices
	}
	return res, nil
}

// parStripes is the facet-log stripe count for the concurrent engines.
func parStripes() int { return 4 * sched.Workers() }

func validate(pts []geom.Point) (int, error) {
	if len(pts) == 0 {
		return 0, fmt.Errorf("hulld: empty input")
	}
	d := len(pts[0])
	if err := geom.ValidateCloud(pts, d); err != nil {
		return 0, err
	}
	return d, nil
}
