// Package hulld implements randomized incremental convex hull in arbitrary
// constant dimension d >= 2: the sequential Algorithm 2 and the parallel
// Algorithm 3 of the paper, with the same two schedules as package hull2d
// (asynchronous fork-join, and round-synchronous for Theorem 5.3/5.4
// measurements).
//
// A facet is an oriented d-simplex identified by its d defining point
// indices (sorted); a ridge is a (d-1)-subset of a facet shared with exactly
// one neighbor; visibility is decided by the exact orientation predicate
// against an interior reference point (the centroid of the initial simplex,
// which remains strictly inside every prefix hull). Points must be in
// general position: no d+1 points on a common hyperplane among those
// touching the hull (Section 6's corner configuration space, in package
// corner, lifts this restriction for 3D).
package hulld

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"parhull/internal/conflict"
	"parhull/internal/conmap"
	"parhull/internal/geom"
	"parhull/internal/hullstats"
)

// ErrDegenerate is returned when the input violates general position in a
// way the engine detects (affinely dependent base simplex, or a created
// facet whose plane passes through the interior reference point).
var ErrDegenerate = errors.New("hulld: degenerate input (points not in general position)")

const noPivot = int32(math.MaxInt32)

// Facet is an oriented d-simplex of the hull. Immutable after creation
// except for the liveness flag.
type Facet struct {
	// Verts holds the d defining point indices, sorted ascending.
	Verts []int32
	// Conf is the conflict set: indices of points strictly outside, in
	// ascending insertion order.
	Conf []int32
	// Depth is the configuration-dependence-graph depth (Definition 4.1).
	Depth int32
	// Round is the creation round (rounds engine only; 0 for the base).
	Round int32

	// vp caches the vertex coordinates, outSign the orientation sign that
	// classifies a point as strictly outside.
	vp      []geom.Point
	outSign int
	dead    atomic.Bool
}

func (f *Facet) pivot() int32 {
	if len(f.Conf) == 0 {
		return noPivot
	}
	return f.Conf[0]
}

// Alive reports whether the facet is still part of the hull.
func (f *Facet) Alive() bool { return !f.dead.Load() }

func (f *Facet) kill() bool { return !f.dead.Swap(true) }

// String formats the facet's vertex indices.
func (f *Facet) String() string { return fmt.Sprint(f.Verts) }

// Key returns the canonical identity of the facet (its sorted vertex tuple)
// for cross-engine comparisons.
func (f *Facet) Key() string { return ridgeString(f.Verts) }

// Stats aggregates instrumentation; see hullstats.Stats.
type Stats = hullstats.Stats

// Result is the output of a hull construction.
type Result struct {
	// Facets holds the surviving facets of the hull.
	Facets []*Facet
	// Vertices holds the sorted indices of points on the hull.
	Vertices []int32
	// Created holds every facet ever created.
	Created []*Facet
	// HullSizes (sequential engine only) records the facet count of the
	// hull after each insertion step, for the Theorem 3.1 bound.
	HullSizes []int
	Stats     Stats
}

// FacetSet returns the multiset of created facets keyed by sorted vertex
// tuple.
func (r *Result) FacetSet() map[string]int {
	m := make(map[string]int, len(r.Created))
	for _, f := range r.Created {
		m[f.Key()]++
	}
	return m
}

// ridgeString encodes sorted indices as a compact map key.
func ridgeString(ids []int32) string {
	b := make([]byte, 4*len(ids))
	for i, v := range ids {
		u := uint32(v)
		b[4*i] = byte(u)
		b[4*i+1] = byte(u >> 8)
		b[4*i+2] = byte(u >> 16)
		b[4*i+3] = byte(u >> 24)
	}
	return string(b)
}

type engine struct {
	pts      []geom.Point
	d        int
	grain    int // conflict-filter parallel grain (0 = default)
	interior geom.Point
	rec      *hullstats.Recorder

	mu  sync.Mutex
	all []*Facet

	errOnce sync.Once
	err     error
	failed  atomic.Bool
}

func newEngine(pts []geom.Point, d int, counters bool, grain int) *engine {
	return &engine{pts: pts, d: d, grain: grain, rec: hullstats.NewRecorder(counters)}
}

// fail records the first error and flips the abort flag checked by chains.
func (e *engine) fail(err error) {
	e.errOnce.Do(func() { e.err = err })
	e.failed.Store(true)
}

// visible reports whether point v is strictly outside facet f.
func (e *engine) visible(v int32, f *Facet) bool {
	e.rec.VTests.Inc(uint64(v))
	return geom.OrientSimplex(f.vp, e.pts[v]) == f.outSign
}

func (e *engine) record(f *Facet) {
	e.rec.Created(f.Depth)
	e.mu.Lock()
	e.all = append(e.all, f)
	e.mu.Unlock()
}

// makeFacet assembles a facet from sorted vertex indices, computing its
// outward sign from the interior reference point. A zero sign means the
// simplex is degenerate or its plane passes through the reference point —
// both general-position violations.
func (e *engine) makeFacet(verts []int32) (*Facet, error) {
	f := &Facet{Verts: verts}
	f.vp = make([]geom.Point, len(verts))
	for i, v := range verts {
		f.vp[i] = e.pts[v]
	}
	s := geom.OrientSimplex(f.vp, e.interior)
	if s == 0 {
		return nil, fmt.Errorf("%w: facet %v is coplanar with the interior point", ErrDegenerate, verts)
	}
	f.outSign = -s
	return f, nil
}

// newFacet builds the facet joining ridge r with pivot p, supported by
// (t1, t2), filtering the conflict list per line 16 of Algorithm 3.
func (e *engine) newFacet(r []int32, p int32, t1, t2 *Facet, round int32) (*Facet, error) {
	verts := make([]int32, 0, len(r)+1)
	ins := false
	for _, v := range r {
		if !ins && p < v {
			verts = append(verts, p)
			ins = true
		}
		verts = append(verts, v)
	}
	if !ins {
		verts = append(verts, p)
	}
	f, err := e.makeFacet(verts)
	if err != nil {
		return nil, err
	}
	f.Depth = 1 + max32(t1.Depth, t2.Depth)
	f.Round = round
	f.Conf = e.mergeFilter(t1.Conf, t2.Conf, p, f)
	e.record(f)
	return f, nil
}

// mergeFilter merges the two ascending conflict lists, drops p, and keeps
// the points visible from f (parallel for long lists; identical output).
func (e *engine) mergeFilter(c1, c2 []int32, p int32, f *Facet) []int32 {
	return conflict.MergeFilter(c1, c2, p, func(v int32) bool { return e.visible(v, f) }, e.grain)
}

func (e *engine) bury(t1, t2 *Facet) {
	e.rec.Buried(t1.kill())
	e.rec.Buried(t2.kill())
}

func (e *engine) replace(t1 *Facet) {
	e.rec.Replaced(t1.kill())
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// initialHull builds the simplex on the first d+1 points and the conflict
// lists of its d+1 facets over the remaining points.
func (e *engine) initialHull() ([]*Facet, error) {
	n := len(e.pts)
	d := e.d
	if n < d+1 {
		return nil, fmt.Errorf("%w: need at least d+1 = %d points, got %d", ErrDegenerate, d+1, n)
	}
	base := make([]geom.Point, d+1)
	for i := range base {
		base[i] = e.pts[i]
	}
	if geom.OrientSimplex(base[:d], base[d]) == 0 {
		return nil, fmt.Errorf("%w: first %d points are affinely dependent", ErrDegenerate, d+1)
	}
	e.interior = geom.Centroid(base)

	facets := make([]*Facet, 0, d+1)
	for omit := 0; omit <= d; omit++ {
		verts := make([]int32, 0, d)
		for i := 0; i <= d; i++ {
			if i != omit {
				verts = append(verts, int32(i))
			}
		}
		f, err := e.makeFacet(verts)
		if err != nil {
			return nil, err
		}
		facets = append(facets, f)
	}
	for _, f := range facets {
		f := f
		f.Conf = conflict.Build(int32(d+1), int32(n),
			func(v int32) bool { return e.visible(v, f) }, e.grain)
		e.record(f)
	}
	return facets, nil
}

// ridges returns the d ridges of a facet: Verts minus each vertex in turn.
// Each returned slice is freshly allocated and sorted.
func ridges(f *Facet) [][]int32 {
	d := len(f.Verts)
	out := make([][]int32, d)
	for omit := 0; omit < d; omit++ {
		r := make([]int32, 0, d-1)
		for i, v := range f.Verts {
			if i != omit {
				r = append(r, v)
			}
		}
		out[omit] = r
	}
	return out
}

// ridgeWithout returns the ridge of f that omits vertex q.
func ridgeWithout(f *Facet, q int32) []int32 {
	r := make([]int32, 0, len(f.Verts)-1)
	for _, v := range f.Verts {
		if v != q {
			r = append(r, v)
		}
	}
	return r
}

// collectResult gathers alive facets and validates the closed-pseudomanifold
// property: every ridge of an alive facet is shared by exactly one other
// alive facet.
func (e *engine) collectResult(rounds int) (*Result, error) {
	if e.failed.Load() {
		return nil, e.err
	}
	res := &Result{Created: e.all}
	ridgeCount := map[string]int{}
	vset := map[int32]bool{}
	for _, f := range e.all {
		if !f.Alive() {
			continue
		}
		res.Facets = append(res.Facets, f)
		for _, v := range f.Verts {
			vset[v] = true
		}
		for _, r := range ridges(f) {
			ridgeCount[ridgeString(r)]++
		}
	}
	if len(res.Facets) < e.d+1 {
		return nil, fmt.Errorf("hulld: only %d alive facets (want >= %d)", len(res.Facets), e.d+1)
	}
	for k, c := range ridgeCount {
		if c != 2 {
			return nil, fmt.Errorf("hulld: ridge shared by %d alive facets, want 2 (key len %d)", c, len(k)/4)
		}
	}
	for v := range vset {
		res.Vertices = append(res.Vertices, v)
	}
	sort.Slice(res.Vertices, func(i, j int) bool { return res.Vertices[i] < res.Vertices[j] })
	res.Stats = e.rec.Snapshot(rounds, len(res.Facets))
	return res, nil
}

// ridgeKey builds the conmap key for a ridge.
func ridgeKey(r []int32) conmap.Key { return conmap.MakeKey(r) }

func validate(pts []geom.Point) (int, error) {
	if len(pts) == 0 {
		return 0, fmt.Errorf("hulld: empty input")
	}
	d := len(pts[0])
	if err := geom.ValidateCloud(pts, d); err != nil {
		return 0, err
	}
	return d, nil
}
