package hulld

import (
	"testing"

	"parhull/internal/sched"
)

// TestParSchedEquivalence is the cross-schedule contract of Theorem 5.5:
// Algorithm 3 performs the same facet creations under any legal schedule,
// so the work-stealing executor and the Group substrate must produce the
// identical facet multiset, test count, and dependence-depth profile on
// fixed seeds — only the order (and the arena backing the memory) differs.
func TestParSchedEquivalence(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		n := 150
		if d == 4 {
			n = 60
		}
		for name, pts := range workloads(11, n, d) {
			group, err := Par(pts, &Options{Sched: sched.KindGroup})
			if err != nil {
				t.Fatalf("d=%d %s group: %v", d, name, err)
			}
			steal, err := Par(pts, &Options{Sched: sched.KindSteal})
			if err != nil {
				t.Fatalf("d=%d %s steal: %v", d, name, err)
			}
			gs, ss := group.FacetSet(), steal.FacetSet()
			if len(gs) != len(ss) {
				t.Fatalf("d=%d %s: %d distinct facets under group vs %d under steal", d, name, len(gs), len(ss))
			}
			for k, c := range gs {
				if ss[k] != c {
					t.Fatalf("d=%d %s: facet multiplicity differs between schedules", d, name)
				}
			}
			if group.Stats.VisibilityTests != steal.Stats.VisibilityTests {
				t.Fatalf("d=%d %s: vtests group=%d steal=%d", d, name,
					group.Stats.VisibilityTests, steal.Stats.VisibilityTests)
			}
			if group.Stats.MaxDepth != steal.Stats.MaxDepth {
				t.Fatalf("d=%d %s: depth group=%d steal=%d", d, name,
					group.Stats.MaxDepth, steal.Stats.MaxDepth)
			}
			verifyHull(t, pts, steal)
		}
	}
}
