package hulld

import (
	"testing"

	"parhull/internal/geom"
)

// filterTestPoints builds a 3D cloud designed to stress every branch of the
// batch filter: a base tetrahedron, clearly-inside and clearly-outside
// points, more on-plane points than the uncertain sidecar's stack capacity
// (forcing a heap spill), and points a hair off a facet plane — inside the
// static filter's uncertain band but exactly visible, so the sidecar's
// survivors must be value-merged back between certain survivors.
func filterTestPoints() []geom.Point {
	pts := []geom.Point{
		{0, 0, 0}, {4, 0, 0}, {0, 4, 0}, {0, 0, 4}, // base simplex
	}
	for i := 0; i < uncertainCap+6; i++ {
		// On the z=0 facet plane, inside the triangle: uncertain for that
		// facet, exactly invisible (Orient == 0).
		pts = append(pts, geom.Point{0.05 + 0.1*float64(i), 0.05, 0})
	}
	pts = append(pts,
		geom.Point{1, 1, -1e-15}, // a hair below z=0: uncertain but exactly visible
		geom.Point{5, 5, 5},      // clearly outside the far facet
		geom.Point{1, 1, 1},      // clearly inside
		geom.Point{2, 1, -3},     // clearly below z=0
		geom.Point{0.5, 0.5, -1e-15},
		geom.Point{-1, -2, -1},
		geom.Point{0.25, 0.25, 0.25},
	)
	return pts
}

// TestBatchFilterMatchesClosure asserts the tentpole contract at the kernel
// level: the batched filter's survivor lists are byte-identical to the
// pointwise closure path, including candidates inside the float-filter's
// uncertain band, and the exact fallback actually fires (so the sidecar path
// is exercised, not bypassed).
func TestBatchFilterMatchesClosure(t *testing.T) {
	pts := filterTestPoints()
	eb := newEngine(pts, 3, true, 0, 1, false, true, false)
	ec := newEngine(pts, 3, true, 0, 1, false, false, false)
	fb, err := eb.initialHull()
	if err != nil {
		t.Fatal(err)
	}
	fc, err := ec.initialHull()
	if err != nil {
		t.Fatal(err)
	}
	if len(fb) != len(fc) {
		t.Fatalf("facet counts differ: %d vs %d", len(fb), len(fc))
	}
	for i := range fb {
		b, c := fb[i].Conf, fc[i].Conf
		if len(b) != len(c) {
			t.Fatalf("facet %d: conflict lengths %d vs %d", i, len(b), len(c))
		}
		for j := range b {
			if b[j] != c[j] {
				t.Fatalf("facet %d: conflict %d: %d vs %d", i, j, b[j], c[j])
			}
		}
	}
	if eb.rec.Fallbacks.Load() == 0 {
		t.Fatal("no exact fallback fired: the uncertain sidecar was never exercised")
	}

	// Direct batch-vs-pointwise on explicit candidate lists (the merge-path
	// entry), including the full range and a sparse subset.
	n := int32(len(pts))
	full := make([]int32, 0, n-4)
	for v := int32(4); v < n; v++ {
		full = append(full, v)
	}
	sparse := full[:0:0]
	for i, v := range full {
		if i%3 != 1 {
			sparse = append(sparse, v)
		}
	}
	for _, f := range fb {
		for _, cands := range [][]int32{full, sparse, nil} {
			got := eb.filterVisible(f, cands, nil)
			var want []int32
			for _, v := range cands {
				if eb.visible(v, f) {
					want = append(want, v)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("facet %v: lengths %d vs %d", f.Verts, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("facet %v: element %d: %d vs %d", f.Verts, j, got[j], want[j])
				}
			}
		}
	}
}

// TestBatchFilterNoPlaneCache pins the exact-only route: with the plane
// cache disabled the batch filter must fall through to the exact predicate
// per candidate and still match the closure path.
func TestBatchFilterNoPlaneCache(t *testing.T) {
	pts := filterTestPoints()
	eb := newEngine(pts, 3, true, 0, 1, true, true, false)
	ec := newEngine(pts, 3, true, 0, 1, true, false, false)
	fb, err := eb.initialHull()
	if err != nil {
		t.Fatal(err)
	}
	fc, err := ec.initialHull()
	if err != nil {
		t.Fatal(err)
	}
	for i := range fb {
		b, c := fb[i].Conf, fc[i].Conf
		if len(b) != len(c) {
			t.Fatalf("facet %d: conflict lengths %d vs %d", i, len(b), len(c))
		}
		for j := range b {
			if b[j] != c[j] {
				t.Fatalf("facet %d: conflict %d differs", i, j)
			}
		}
	}
}
