package hulld

import (
	"parhull/internal/geom"
)

// RidgeSpace is the paper's alternative formulation of convex hull
// (Section 7, first paragraph): configurations correspond to ridges of the
// hull together with their two neighboring facets. A configuration is
// defined by d+1 points — the d-1 ridge points plus the two apex points —
// and conflicts with every point visible from either facet. Each defining
// set of d+1 points yields up to C(d+1, d-1) configurations (one per choice
// of ridge), giving constant multiplicity; the space has 2-support.
//
// A point x is "visible from facet R∪{u} (away from v)" when x lies
// strictly on the opposite side of the facet's hyperplane from the other
// apex v; a configuration is active exactly when both its facets are hull
// facets, with no orientation bookkeeping needed. This space is used for
// brute-force validation only (experiment E7b).
type RidgeSpace struct {
	pts  []geom.Point
	d    int
	cfgs []ridgeCfg
}

type ridgeCfg struct {
	def   []int // sorted defining set, d+1 points
	ridge []int // the d-1 ridge points (subset of def)
	u, v  int   // the two apexes
}

// NewRidgeSpace enumerates the ridge configuration space of pts. It is
// exponential in d and meant for small instances. Configurations whose
// facet simplices are degenerate with respect to the instance are excluded
// (none exist in general position).
func NewRidgeSpace(pts []geom.Point) *RidgeSpace {
	d := len(pts[0])
	s := &RidgeSpace{pts: pts, d: d}
	n := len(pts)
	subset := make([]int, d+1)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == d+1 {
			// Choose the two apexes among the d+1 points.
			for a := 0; a <= d; a++ {
				for b := a + 1; b <= d; b++ {
					cfg := ridgeCfg{u: subset[a], v: subset[b]}
					cfg.def = append([]int(nil), subset...)
					for i, o := range subset {
						if i != a && i != b {
							cfg.ridge = append(cfg.ridge, o)
						}
					}
					if s.liveCfg(cfg) {
						s.cfgs = append(s.cfgs, cfg)
					}
				}
			}
			return
		}
		for i := start; i < n; i++ {
			subset[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return s
}

// facetSide returns the orientation sign of x against the hyperplane
// through ridge ∪ {apex}; visibility is "opposite side from the other
// apex".
func (s *RidgeSpace) facetSide(ridge []int, apex int, x int) int {
	verts := make([]geom.Point, 0, s.d)
	for _, o := range ridge {
		verts = append(verts, s.pts[o])
	}
	verts = append(verts, s.pts[apex])
	return geom.OrientSimplex(verts, s.pts[x])
}

// liveCfg reports whether both facet simplices are non-degenerate for this
// instance: each other apex lies strictly off the facet's hyperplane.
func (s *RidgeSpace) liveCfg(c ridgeCfg) bool {
	return s.facetSide(c.ridge, c.u, c.v) != 0 && s.facetSide(c.ridge, c.v, c.u) != 0
}

// NumObjects implements core.Space.
func (s *RidgeSpace) NumObjects() int { return len(s.pts) }

// NumConfigs implements core.Space.
func (s *RidgeSpace) NumConfigs() int { return len(s.cfgs) }

// Defining implements core.Space.
func (s *RidgeSpace) Defining(c int) []int { return s.cfgs[c].def }

// InConflict implements core.Space: x conflicts when visible from either
// facet, i.e. strictly on the far side of facet(ridge, u) from v or of
// facet(ridge, v) from u.
func (s *RidgeSpace) InConflict(c, x int) bool {
	cfg := s.cfgs[c]
	for _, o := range cfg.def {
		if o == x {
			return false
		}
	}
	// Far side of facet (ridge, u) means opposite sign from v's side.
	sv := s.facetSide(cfg.ridge, cfg.u, cfg.v)
	if sx := s.facetSide(cfg.ridge, cfg.u, x); sx != 0 && sx != sv {
		return true
	}
	su := s.facetSide(cfg.ridge, cfg.v, cfg.u)
	if sx := s.facetSide(cfg.ridge, cfg.v, x); sx != 0 && sx != su {
		return true
	}
	return false
}

// Degree implements core.Space: g = d+1.
func (s *RidgeSpace) Degree() int { return s.d + 1 }

// Multiplicity implements core.Space: C(d+1, d-1) = d(d+1)/2 ridge choices
// per defining set.
func (s *RidgeSpace) Multiplicity() int { return s.d * (s.d + 1) / 2 }

// BaseSize implements core.Space: a simplex (d+1 points) activates its
// ridge configurations.
func (s *RidgeSpace) BaseSize() int { return s.d + 1 }

// MaxSupport implements core.Space: k = 2 (Section 7).
func (s *RidgeSpace) MaxSupport() int { return 2 }
