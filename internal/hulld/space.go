package hulld

import (
	"parhull/internal/geom"
)

// Space adapts a d-dimensional point set to the core.Space interface of the
// paper's framework (Section 5.1): the objects are the points, and every
// d-subset defines two configurations — one per orientation ("facing up and
// down", multiplicity 2). A configuration conflicts with the points strictly
// on its oriented side. It is meant for brute-force validation (Theorem 5.1,
// experiment E7) on small instances.
type Space struct {
	pts     []geom.Point
	d       int
	subsets [][]int
}

// NewSpace enumerates the configuration space for pts (all of dimension d).
// Subsets that are degenerate with respect to the instance (no point of the
// instance on either side) are excluded; in general position there are none.
func NewSpace(pts []geom.Point) *Space {
	d := len(pts[0])
	s := &Space{pts: pts, d: d}
	n := len(pts)
	subset := make([]int, d)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == d {
			if s.liveSubset(subset) {
				s.subsets = append(s.subsets, append([]int(nil), subset...))
			}
			return
		}
		for i := start; i < n; i++ {
			subset[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return s
}

// liveSubset reports whether some instance point lies strictly off the
// subset's hyperplane (a degenerate subset would make phantom always-active
// configurations).
func (s *Space) liveSubset(subset []int) bool {
	verts := make([]geom.Point, s.d)
	for i, o := range subset {
		verts[i] = s.pts[o]
	}
	in := make(map[int]bool, s.d)
	for _, o := range subset {
		in[o] = true
	}
	for x := range s.pts {
		if !in[x] && geom.OrientSimplex(verts, s.pts[x]) != 0 {
			return true
		}
	}
	return false
}

// NumObjects implements core.Space.
func (s *Space) NumObjects() int { return len(s.pts) }

// NumConfigs implements core.Space: two orientations per live subset.
func (s *Space) NumConfigs() int { return 2 * len(s.subsets) }

// Defining implements core.Space.
func (s *Space) Defining(c int) []int { return s.subsets[c/2] }

// decode resolves configuration c into its defining subset, vertex
// coordinates, and conflict side — the per-configuration setup shared by
// InConflict and FirstConflict.
func (s *Space) decode(c int, verts []geom.Point) (subset []int, side int) {
	subset = s.subsets[c/2]
	for i, o := range subset {
		verts[i] = s.pts[o]
	}
	side = 1
	if c%2 == 1 {
		side = -1
	}
	return subset, side
}

// conflictAt reports whether object x conflicts with the decoded
// configuration (defined objects never conflict with it).
func (s *Space) conflictAt(subset []int, verts []geom.Point, side, x int) bool {
	for _, o := range subset {
		if o == x {
			return false
		}
	}
	return geom.OrientSimplex(verts, s.pts[x]) == side
}

// InConflict implements core.Space: configuration 2*i+side conflicts with
// the points whose orientation sign matches the side.
func (s *Space) InConflict(c, x int) bool {
	verts := make([]geom.Point, s.d)
	subset, side := s.decode(c, verts)
	return s.conflictAt(subset, verts, side, x)
}

// FirstConflict implements engine.ConflictScanner: one decode of c, then a
// tight scan over order, instead of re-slicing the vertex array per object
// as the InConflict signature forces.
func (s *Space) FirstConflict(c int, order []int) int {
	verts := make([]geom.Point, s.d)
	subset, side := s.decode(c, verts)
	for r, o := range order {
		if s.conflictAt(subset, verts, side, o) {
			return r
		}
	}
	return len(order)
}

// Degree implements core.Space: g = d.
func (s *Space) Degree() int { return s.d }

// Multiplicity implements core.Space: c = 2 (up and down).
func (s *Space) Multiplicity() int { return 2 }

// BaseSize implements core.Space: n_b = d+1.
func (s *Space) BaseSize() int { return s.d + 1 }

// MaxSupport implements core.Space: k = 2 (Theorem 5.1).
func (s *Space) MaxSupport() int { return 2 }
