package trapezoid

import (
	"testing"

	"parhull/internal/core"
)

var box = Box{XL: 0, XR: 100, YB: 0, YT: 10}

func active(t *testing.T, s *Space, y []int) []int {
	t.Helper()
	return core.Active(s, y)
}

func TestSingleSegmentFourCells(t *testing.T) {
	s, err := NewSpace([]Segment{{Y: 5, XL: 20, XR: 60}}, box)
	if err != nil {
		t.Fatal(err)
	}
	act := active(t, s, []int{0})
	if len(act) != 4 {
		for _, c := range act {
			t.Logf("cell: %v", cellRectString(s, c))
		}
		t.Fatalf("|T| = %d, want 4 (left slab, right slab, above, below)", len(act))
	}
}

func cellRectString(s *Space, c int) [4]float64 {
	xl, xr, yb, yt := s.CellRect(c)
	return [4]float64{xl, xr, yb, yt}
}

func TestTwoStackedSegments(t *testing.T) {
	// A=[20,60]@3 below B=[10,80]@7: the decomposition has 8 cells:
	// below A, between A and B (3 cells: left of A under B, above A,
	// right of A under B), above B, and the four... let's count:
	// vertical walls at 10, 20, 60, 80 with varying extents. Cells:
	//  1. [0,10]  x (0,10)   left slab
	//  2. [80,100] x (0,10)  right slab
	//  3. [10,80] x (7,10)   above B
	//  4. [20,60] x (3,7)    between A and B
	//  5. [20,60] x (0,3)    below A
	//  6. [10,20] x (0,7)    under B, left of A
	//  7. [60,80] x (0,7)    under B, right of A
	s, err := NewSpace([]Segment{{Y: 3, XL: 20, XR: 60}, {Y: 7, XL: 10, XR: 80}}, box)
	if err != nil {
		t.Fatal(err)
	}
	act := active(t, s, []int{0, 1})
	if len(act) != 7 {
		for _, c := range act {
			t.Logf("cell: %v", cellRectString(s, c))
		}
		t.Fatalf("|T| = %d, want 7", len(act))
	}
}

func TestDegreeAndValidation(t *testing.T) {
	s, err := NewSpace([]Segment{{Y: 3, XL: 20, XR: 60}, {Y: 7, XL: 10, XR: 80}}, box)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.CheckDegree(s); err != nil {
		t.Fatal(err)
	}
	// Invalid inputs.
	if _, err := NewSpace([]Segment{{Y: 5, XL: 60, XR: 20}}, box); err == nil {
		t.Error("reversed segment accepted")
	}
	if _, err := NewSpace([]Segment{{Y: 5, XL: 20, XR: 60}, {Y: 5, XL: 70, XR: 80}}, box); err == nil {
		t.Error("duplicate y accepted")
	}
	if _, err := NewSpace([]Segment{{Y: 5, XL: 20, XR: 60}, {Y: 6, XL: 20, XR: 80}}, box); err == nil {
		t.Error("duplicate endpoint x accepted")
	}
	if _, err := NewSpace([]Segment{{Y: 15, XL: 20, XR: 60}}, box); err == nil {
		t.Error("segment above box accepted")
	}
}

// comb builds the paper's bad family: k "teeth" high up, one long segment L
// beneath them, and one witness segment under each tooth. Objects:
// 0..k-1 teeth, k = L, k+1..2k witnesses.
func comb(k int) ([]Segment, Box) {
	w := float64(10*k + 10)
	b := Box{XL: 0, XR: w, YB: 0, YT: 10}
	var segs []Segment
	for i := 0; i < k; i++ {
		segs = append(segs, Segment{Y: 8 + 0.01*float64(i), XL: float64(10*i) + 2, XR: float64(10*i) + 8})
	}
	segs = append(segs, Segment{Y: 4, XL: 1, XR: w - 1})
	for i := 0; i < k; i++ {
		segs = append(segs, Segment{Y: 2 + 0.01*float64(i), XL: float64(10*i) + 4, XR: float64(10*i) + 6})
	}
	return segs, b
}

// TestNoConstantSupport reproduces the Section 4 counterexample: the
// trapezoid below the long segment L needs a support set whose size grows
// linearly with the number of teeth, so the space has no constant support
// and Theorem 4.2 does not apply.
func TestNoConstantSupport(t *testing.T) {
	for _, k := range []int{3, 4, 5} {
		segs, b := comb(k)
		s, err := NewSpace(segs, b)
		if err != nil {
			t.Fatal(err)
		}
		l := k // index of the long segment
		// Y = teeth + L (witnesses stay in the universe only).
		y := make([]int, 0, k+1)
		for i := 0; i <= k; i++ {
			y = append(y, i)
		}
		// Find pi: the active cell with top = L reaching the floor.
		var pi = -1
		for _, c := range active(t, s, y) {
			xl, xr, yb, yt := s.CellRect(c)
			if yb == b.YB && yt == 4 && xl == 1 && xr == b.XR-1 {
				pi = c
			}
		}
		if pi == -1 {
			t.Fatalf("k=%d: cell below L not active", k)
		}
		// Support must come from the decomposition without L.
		prev := active(t, s, y[:k])
		// Every support set needs at least one distinct cell per witness
		// column, so the minimal support size is at least k — it grows
		// linearly with the input, which is exactly why Theorem 4.2 does
		// not apply to trapezoidal decomposition.
		lb := core.SupportLowerBound(s, pi, l, prev)
		if lb < k {
			t.Fatalf("k=%d: support lower bound %d, want >= k", k, lb)
		}
		// The smallest support the exhaustive search finds matches: size k
		// (one cell per witness column), never a constant.
		if phi, ok := core.FindSupport(s, pi, l, prev); ok && len(phi) < k {
			t.Fatalf("k=%d: found support of size %d < k, contradicting bound %d", k, len(phi), lb)
		}
	}
}

// TestSupportLowerBoundSanity: on a 2-supported space the bound must not
// exceed the true support size.
func TestSupportLowerBoundSanity(t *testing.T) {
	// Single segment + one above it: supports in this space are small for
	// ordinary cells; the bound must never exceed the minimal support found.
	s, err := NewSpace([]Segment{{Y: 3, XL: 20, XR: 60}, {Y: 7, XL: 10, XR: 80}}, box)
	if err != nil {
		t.Fatal(err)
	}
	y := []int{0, 1}
	for _, pi := range active(t, s, y) {
		for _, x := range s.Defining(pi) {
			rest := make([]int, 0, 1)
			for _, o := range y {
				if o != x {
					rest = append(rest, o)
				}
			}
			prev := active(t, s, rest)
			phi, ok := core.FindSupport(s, pi, x, prev)
			if !ok {
				continue
			}
			if lb := core.SupportLowerBound(s, pi, x, prev); lb > len(phi) {
				t.Fatalf("lower bound %d exceeds actual support size %d", lb, len(phi))
			}
		}
	}
}
