// Package trapezoid implements the configuration space of trapezoidal
// (vertical) decomposition for horizontal segments in a bounding box — the
// paper's counterexample (Section 4, "Relationship to History Graphs"):
// this space does NOT have constant support, because adding a segment can
// merge Omega(n) trapezoids into one, and the merged trapezoid depends on
// all of them. The tests construct the paper's bad family (a comb of teeth
// over a long segment) and measure a support-size lower bound that grows
// linearly with n, confirming why Theorem 4.2 does not apply here.
//
// The restriction to horizontal segments keeps every predicate an exact
// float64 coordinate comparison while preserving the phenomenon: cells are
// genuine trapezoids (rectangles), walls descend/ascend from segment
// endpoints, and one long segment still fuses arbitrarily many cells.
//
// Objects are non-touching horizontal segments with pairwise distinct
// y-coordinates and endpoint x-coordinates, strictly inside the box.
package trapezoid

import (
	"errors"
	"fmt"
	"sort"
)

// ErrDegenerate reports input outside the space's preconditions: empty or
// out-of-box segments, or coinciding y/endpoint coordinates. Returned
// wrapped, with detail; the public layer maps it onto parhull.ErrDegenerate.
var ErrDegenerate = errors.New("trapezoid: degenerate input")

// Segment is a horizontal segment y = Y for X in [XL, XR].
type Segment struct {
	Y, XL, XR float64
}

// Box is the bounding box of the decomposition.
type Box struct {
	XL, XR, YB, YT float64
}

// cell is a candidate trapezoid: a rectangle [xl, xr] x [yb, yt] whose top
// and bottom are a segment or the box boundary, and whose side walls arise
// from segment endpoints (or the box sides). top/bot are object indices or
// -1 for the box; lsrc/rsrc are the endpoint-owning object indices or -1.
type cell struct {
	top, bot       int // -1 = box
	lsrc, rsrc     int // -1 = box side
	xl, xr, yb, yt float64
	def            []int // sorted distinct defining objects
}

// Space implements core.Space for the trapezoidal decomposition of a fixed
// segment set.
type Space struct {
	segs  []Segment
	box   Box
	cells []cell
}

// NewSpace enumerates the configuration space. Candidate cells combine
// every possible top, bottom, and wall source; geometric validity (walls
// must emanate from an endpoint lying on the cell's boundary span, tops
// must cover the cell's x-range) prunes the rest.
func NewSpace(segs []Segment, box Box) (*Space, error) {
	ys := map[float64]bool{}
	xs := map[float64]bool{}
	for i, s := range segs {
		if s.XL >= s.XR || s.Y <= box.YB || s.Y >= box.YT || s.XL <= box.XL || s.XR >= box.XR {
			return nil, fmt.Errorf("%w: segment %d out of box or empty", ErrDegenerate, i)
		}
		if ys[s.Y] {
			return nil, fmt.Errorf("%w: duplicate y %v", ErrDegenerate, s.Y)
		}
		ys[s.Y] = true
		for _, x := range []float64{s.XL, s.XR} {
			if xs[x] {
				return nil, fmt.Errorf("%w: duplicate endpoint x %v", ErrDegenerate, x)
			}
			xs[x] = true
		}
	}
	s := &Space{segs: segs, box: box}
	s.enumerate()
	return s, nil
}

// span returns the horizontal extent and height of boundary index i
// (-1 = box top/bottom depending on isTop).
func (s *Space) bound(i int, isTop bool) (xl, xr, y float64) {
	if i < 0 {
		if isTop {
			return s.box.XL, s.box.XR, s.box.YT
		}
		return s.box.XL, s.box.XR, s.box.YB
	}
	sg := s.segs[i]
	return sg.XL, sg.XR, sg.Y
}

// wallXs returns the candidate wall x-positions contributed by object i:
// its two endpoints.
func (s *Space) enumerate() {
	n := len(s.segs)
	type wall struct {
		src int // -1 = box side
		x   float64
	}
	var lefts, rights []wall
	lefts = append(lefts, wall{-1, s.box.XL})
	rights = append(rights, wall{-1, s.box.XR})
	for i, sg := range s.segs {
		// A wall can descend/ascend from either endpoint of a segment.
		lefts = append(lefts, wall{i, sg.XL}, wall{i, sg.XR})
		rights = append(rights, wall{i, sg.XL}, wall{i, sg.XR})
	}
	for top := -1; top < n; top++ {
		txl, txr, ty := s.bound(top, true)
		for bot := -1; bot < n; bot++ {
			bxl, bxr, by := s.bound(bot, false)
			if by >= ty || (top >= 0 && bot >= 0 && top == bot) {
				continue
			}
			for _, lw := range lefts {
				for _, rw := range rights {
					if lw.x >= rw.x {
						continue
					}
					// Top and bottom must span the cell.
					if lw.x < txl || rw.x > txr || lw.x < bxl || rw.x > bxr {
						continue
					}
					// Wall sources must be distinct from top/bottom side
					// sources appropriately: a wall from segment i is valid
					// if one of i's endpoints is at that x with i's y
					// strictly between by and ty, or i is the top/bottom
					// itself ending at that x.
					if !s.validWall(lw.src, lw.x, top, bot, by, ty) ||
						!s.validWall(rw.src, rw.x, top, bot, by, ty) {
						continue
					}
					c := cell{top: top, bot: bot, lsrc: lw.src, rsrc: rw.src,
						xl: lw.x, xr: rw.x, yb: by, yt: ty}
					set := map[int]bool{}
					for _, o := range []int{top, bot, lw.src, rw.src} {
						if o >= 0 {
							set[o] = true
						}
					}
					// A defining segment must not intrude the open cell
					// (defining and conflict sets are disjoint by
					// definition, so such candidates are geometric
					// nonsense — e.g. a wall source crossing the cell).
					bad := false
					for o := range set {
						if s.intrudes(o, c) {
							bad = true
							break
						}
					}
					if bad {
						continue
					}
					for o := range set {
						c.def = append(c.def, o)
					}
					sort.Ints(c.def)
					if len(c.def) == 0 {
						c.def = []int{} // the whole box (before any segment)
					}
					s.cells = append(s.cells, c)
				}
			}
		}
	}
}

// validWall reports whether a wall at x sourced by object src can bound a
// cell spanning heights (by, ty): the source endpoint must lie at x and
// its segment's y within [by, ty] (touching the top or bottom counts: the
// wall is the vertical extension through the slab).
func (s *Space) validWall(src int, x float64, top, bot int, by, ty float64) bool {
	if src < 0 {
		return x == s.box.XL || x == s.box.XR
	}
	sg := s.segs[src]
	if sg.XL != x && sg.XR != x {
		return false
	}
	// The wall extends from the endpoint; for it to bound this slab the
	// endpoint's segment must touch the slab's closed vertical range.
	return sg.Y >= by && sg.Y <= ty
}

// NumObjects implements core.Space.
func (s *Space) NumObjects() int { return len(s.segs) }

// NumConfigs implements core.Space.
func (s *Space) NumConfigs() int { return len(s.cells) }

// Defining implements core.Space.
func (s *Space) Defining(c int) []int { return s.cells[c].def }

// InConflict implements core.Space: segment x conflicts with cell c when it
// intrudes into the open rectangle — crossing it, or poking an endpoint
// strictly inside (which would spawn a wall splitting the cell).
func (s *Space) InConflict(c, x int) bool {
	cl := s.cells[c]
	for _, o := range cl.def {
		if o == x {
			return false
		}
	}
	return s.intrudes(x, cl)
}

// FirstConflict implements engine.ConflictScanner: the cell's rectangle and
// defining set load once and the intrusion test runs inline on registers —
// per object, four coordinate comparisons instead of a cell decode.
func (s *Space) FirstConflict(c int, order []int) int {
	cl := s.cells[c]
	def := cl.def
	xl, xr, yb, yt := cl.xl, cl.xr, cl.yb, cl.yt
	for r, x := range order {
		skip := false
		for _, o := range def {
			if o == x {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		sg := s.segs[x]
		if sg.Y > yb && sg.Y < yt && sg.XR > xl && sg.XL < xr {
			return r
		}
	}
	return len(order)
}

// intrudes reports whether segment x enters the open rectangle of cl.
func (s *Space) intrudes(x int, cl cell) bool {
	sg := s.segs[x]
	if sg.Y <= cl.yb || sg.Y >= cl.yt {
		return false // outside the slab
	}
	// Inside the slab: intrudes unless entirely left or right of the cell.
	return sg.XR > cl.xl && sg.XL < cl.xr
}

// Degree implements core.Space: up to 4 defining segments.
func (s *Space) Degree() int { return 4 }

// Multiplicity implements core.Space: a defining set of 4 segments can
// bound several cells (each can serve as top/bottom/either wall); a safe
// constant bound is all role assignments.
func (s *Space) Multiplicity() int { return 48 }

// BaseSize implements core.Space.
func (s *Space) BaseSize() int { return 1 }

// MaxSupport implements core.Space. The whole point of this space is that
// no constant k works; we declare the trivial bound n so core's helpers can
// still run, and measure the real requirement in the tests.
func (s *Space) MaxSupport() int { return len(s.segs) }

// CellRect exposes cell c's rectangle for tests.
func (s *Space) CellRect(c int) (xl, xr, yb, yt float64) {
	cl := s.cells[c]
	return cl.xl, cl.xr, cl.yb, cl.yt
}
