package faultinject

import (
	"sync"
	"testing"
	"time"
)

// TestNilSafety checks every hook on a nil injector: the production
// configuration must be a no-op, never a nil dereference.
func TestNilSafety(t *testing.T) {
	var in *Injector
	in.Visit(SiteRidgeStep)
	if in.Fail(SiteMapInsert) {
		t.Fatal("nil injector reported a failure")
	}
	if in.Visits(SiteRidgeStep) != 0 || in.Fired(SiteMapInsert) != 0 {
		t.Fatal("nil injector reported nonzero counters")
	}
}

// TestPanicExactlyOnce arms a panic at a fixed visit and drives the site
// concurrently: exactly one goroutine must observe the Panic value, at the
// armed visit number, no matter how the visits interleave.
func TestPanicExactlyOnce(t *testing.T) {
	const workers, perWorker, at = 8, 50, 123
	in := New(7).PanicAt(SiteRidgeStep, at)
	var mu sync.Mutex
	var caught []Panic
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							caught = append(caught, r.(Panic))
							mu.Unlock()
						}
					}()
					in.Visit(SiteRidgeStep)
				}()
			}
		}()
	}
	wg.Wait()
	if len(caught) != 1 {
		t.Fatalf("caught %d panics, want exactly 1", len(caught))
	}
	if caught[0] != (Panic{Site: SiteRidgeStep, Visit: at}) {
		t.Fatalf("panic value = %v", caught[0])
	}
	if got := in.Visits(SiteRidgeStep); got != workers*perWorker {
		t.Fatalf("visits = %d, want %d", got, workers*perWorker)
	}
	if in.Fired(SiteRidgeStep) != 1 {
		t.Fatalf("fired = %d, want 1", in.Fired(SiteRidgeStep))
	}
}

// TestFailExactlyOnce drives an armed one-shot failure from many goroutines:
// Fail must return true exactly once even when the armed visit races.
func TestFailExactlyOnce(t *testing.T) {
	const workers, perWorker = 8, 50
	in := New(3).FailAt(SiteMapInsert, 17)
	var fails sync.Map
	var n sync.WaitGroup
	var count int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		n.Add(1)
		go func(w int) {
			defer n.Done()
			for i := 0; i < perWorker; i++ {
				if in.Fail(SiteMapInsert) {
					mu.Lock()
					count++
					mu.Unlock()
					fails.Store(w, i)
				}
			}
		}(w)
	}
	n.Wait()
	if count != 1 {
		t.Fatalf("Fail returned true %d times, want 1", count)
	}
	if in.Fired(SiteMapInsert) != 1 {
		t.Fatalf("fired = %d, want 1", in.Fired(SiteMapInsert))
	}
}

// TestSitesIndependent checks arming one site does not leak into another.
func TestSitesIndependent(t *testing.T) {
	in := New(1).PanicAt(SiteRidgeStep, 1)
	in.Visit(SiteSeqInsert) // must not panic
	if in.Fail(SiteMapInsert) {
		t.Fatal("unarmed site failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("armed site did not panic")
		}
	}()
	in.Visit(SiteRidgeStep)
}

// TestDelayDeterministic checks the delay durations depend only on seed and
// visit number (splitmix), not on wall clock or shared RNG state: two
// injectors with the same seed must sleep the same total.
func TestDelayDeterministic(t *testing.T) {
	total := func(seed int64) time.Duration {
		in := New(seed).DelayEvery(SiteRidgeStep, 1, time.Millisecond)
		var sum time.Duration
		for n := uint64(1); n <= 32; n++ {
			sum += time.Duration(splitmix(in.seed^n) % uint64(time.Millisecond))
		}
		return sum
	}
	if total(42) != total(42) {
		t.Fatal("same seed produced different delay schedules")
	}
	if total(42) == total(43) {
		t.Fatal("different seeds produced identical delay schedules (suspicious)")
	}
}

// TestZeroMaxDelayYieldsNotSleeps: a DelayEvery with max <= 0 must still be
// cheap (Gosched, not Sleep) — guard against a zero-modulus panic too.
func TestZeroMaxDelayYieldsNotSleeps(t *testing.T) {
	in := New(9).DelayEvery(SiteRidgeStep, 1, 0)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		in.Visit(SiteRidgeStep)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("1000 zero-delay visits took %v", d)
	}
	if in.Visits(SiteRidgeStep) != 1000 {
		t.Fatalf("visits = %d", in.Visits(SiteRidgeStep))
	}
}

// TestStringNames pins the site and panic renderings used in error messages.
func TestStringNames(t *testing.T) {
	if s := SiteMapInsert.String(); s != "map-insert" {
		t.Errorf("SiteMapInsert = %q", s)
	}
	if s := Site(99).String(); s != "site(99)" {
		t.Errorf("unknown site = %q", s)
	}
	p := Panic{Site: SiteRidgeStep, Visit: 5}
	if s := p.String(); s != "faultinject: scheduled panic at ridge-step visit 5" {
		t.Errorf("panic string = %q", s)
	}
}
