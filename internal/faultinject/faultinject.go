// Package faultinject provides seeded, deterministic fault-injection hooks
// for the parallel hull engines: scheduled panics at ridge-processing
// boundaries, forced capacity failures in the fixed-size ridge tables, and
// artificial delays that perturb the work-stealing schedule.
//
// The hooks exist to drive the fault-containment stress tests: Theorem 5.5
// guarantees the facet output is schedule-independent, so a run perturbed by
// injected delays must produce the exact facet multiset of a clean run, and
// a run hit by an injected panic or capacity failure must surface a typed
// error with the worker pool fully quiesced — never a crash.
//
// Production builds pass a nil *Injector everywhere: every hook is nil-safe
// and reduces to a single pointer comparison, so the instrumented hot paths
// pay (almost) nothing when injection is off. Determinism: each site carries
// an atomic visit counter, and every armed fault names the exact visit at
// which it fires, so for a fixed arming exactly one fault fires per site
// regardless of how the scheduler interleaves the visits. Delay durations are
// derived from the seed and the visit number (splitmix64), not from a shared
// RNG, so they too are schedule-independent.
package faultinject

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// Site names an instrumented location in the engine.
type Site uint8

const (
	// SiteRidgeStep is the ProcessRidge boundary of the parallel and
	// round-synchronous schedules: one visit per chain step.
	SiteRidgeStep Site = iota
	// SiteMapInsert is the fixed-capacity ridge-table InsertAndSet
	// (Algorithms 4/5): one visit per insertion attempt.
	SiteMapInsert
	// SiteSeqInsert is the sequential engine's per-point insertion loop.
	SiteSeqInsert
	// SitePreHullStage is the pre-hull reduction's stage boundary: one visit
	// before the interior cull and one before the block sub-hull loop.
	SitePreHullStage
	// SitePreHullBlock is the pre-hull block loop: one visit per block body.
	SitePreHullBlock
	// SiteScanBatch is a batch conflict scan: one visit per batch filter call
	// (the kernels' filterVisible* entry points) or per FirstConflict scan of
	// a configuration space.
	SiteScanBatch
	// SiteBuilderRewind is the Builder's retained-state rewind at the start
	// of the next construction: one visit per reused build.
	SiteBuilderRewind
	// SiteSpacePeak is SpaceRounds' peak processing: one visit per claimed
	// pivot, inside the round task, before its creations run.
	SiteSpacePeak
	numSites
)

// NumSites is the number of instrumented sites — the exclusive upper bound
// of the Site enum, for callers (the soak driver) that sample sites.
const NumSites = int(numSites)

// String names the site for error messages.
func (s Site) String() string {
	switch s {
	case SiteRidgeStep:
		return "ridge-step"
	case SiteMapInsert:
		return "map-insert"
	case SiteSeqInsert:
		return "seq-insert"
	case SitePreHullStage:
		return "prehull-stage"
	case SitePreHullBlock:
		return "prehull-block"
	case SiteScanBatch:
		return "scan-batch"
	case SiteBuilderRewind:
		return "builder-rewind"
	case SiteSpacePeak:
		return "space-peak"
	default:
		return fmt.Sprintf("site(%d)", uint8(s))
	}
}

// Panic is the value thrown by a Visit whose site is armed with PanicAt.
// The scheduler's containment layer recovers it into a typed error; stress
// tests assert it round-trips intact.
type Panic struct {
	Site  Site
	Visit int64
}

func (p Panic) String() string {
	return fmt.Sprintf("faultinject: scheduled panic at %v visit %d", p.Site, p.Visit)
}

// arm is the per-site fault schedule. The visit counter is the only field
// mutated after arming, so concurrent Visit/Fail calls race only on it.
type arm struct {
	visits     atomic.Int64
	fired      atomic.Int64 // injected panics delivered (observability)
	failed     atomic.Bool  // the one-shot Fail already delivered
	panicAt    int64        // 1-based visit that panics; 0 = off
	failAt     int64        // 1-based visit that reports failure; 0 = off
	delayEvery int64        // every k-th visit sleeps; 0 = off
	maxDelay   time.Duration
}

// Injector is one deterministic fault schedule. Arm it before handing it to
// an engine; arming is not synchronized with visits.
type Injector struct {
	seed uint64
	arms [numSites]arm
}

// New returns an Injector with no faults armed. seed drives the
// pseudo-random (but schedule-independent) delay durations.
func New(seed int64) *Injector {
	return &Injector{seed: uint64(seed)*0x9e3779b97f4a7c15 + 0x1}
}

// PanicAt arms site s to panic (with a Panic value) on its n-th visit
// (1-based). Exactly one visit fires regardless of scheduling.
func (in *Injector) PanicAt(s Site, n int64) *Injector {
	in.arms[s].panicAt = n
	return in
}

// FailAt arms site s to report one injected failure on its n-th visit
// (1-based): the visit's Fail call returns true exactly once.
func (in *Injector) FailAt(s Site, n int64) *Injector {
	in.arms[s].failAt = n
	return in
}

// DelayEvery arms site s to stall every k-th visit for a seed-derived
// duration in (0, max] (a max <= 0 yields runtime.Gosched instead of a
// sleep). Delays perturb the steal schedule without changing any outcome.
func (in *Injector) DelayEvery(s Site, k int64, max time.Duration) *Injector {
	in.arms[s].delayEvery = k
	in.arms[s].maxDelay = max
	return in
}

// Visit is the generic hook: it counts the visit, applies any armed delay,
// and throws the armed Panic when this is the named visit. Nil-safe.
func (in *Injector) Visit(s Site) {
	if in == nil {
		return
	}
	a := &in.arms[s]
	n := a.visits.Add(1)
	if a.delayEvery > 0 && n%a.delayEvery == 0 {
		if a.maxDelay <= 0 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Duration(splitmix(in.seed^uint64(n))%uint64(a.maxDelay)) + 1)
		}
	}
	if a.panicAt != 0 && n == a.panicAt {
		a.fired.Add(1)
		panic(Panic{Site: s, Visit: n})
	}
}

// Fail reports whether this visit is the armed failure of site s (true
// exactly once per arming); it also counts the visit and applies delays, so
// a site needs only one hook call. Nil-safe.
func (in *Injector) Fail(s Site) bool {
	if in == nil {
		return false
	}
	a := &in.arms[s]
	// Visit counts, delays, and may panic if the site is also panic-armed.
	in.Visit(s)
	if a.failAt != 0 && a.visits.Load() >= a.failAt && a.failed.CompareAndSwap(false, true) {
		return true
	}
	return false
}

// Visits reports how many times site s was visited (tests).
func (in *Injector) Visits(s Site) int64 {
	if in == nil {
		return 0
	}
	return in.arms[s].visits.Load()
}

// Fired reports how many injected faults (panics or one-shot failures) site
// s delivered (tests).
func (in *Injector) Fired(s Site) int64 {
	if in == nil {
		return 0
	}
	n := in.arms[s].fired.Load()
	if in.arms[s].failed.Load() {
		n++
	}
	return n
}

// splitmix is the splitmix64 finalizer: a stateless mix of seed and visit
// number into a uniform-ish 64-bit word.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
