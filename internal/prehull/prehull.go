// Package prehull implements the divide-and-conquer input reduction used by
// the public layer before a full hull construction. It runs in two stages,
// both of which only ever discard points that provably cannot be hull
// vertices, so the construction that follows produces the exact same final
// facets as a direct run — the pre-hull changes how much work reaches the
// engine, never what it outputs.
//
// Stage 1 (interior cull): build the hull of a small prefix sample with the
// existing sequential kernel, orient each sample facet's cached hyperplane
// (geom.NewFacetPlane) against the sample centroid, and drop every point the
// static float filter certifies strictly inside ALL sample facets. The
// sample hull is a subset of the true hull, so a point strictly interior to
// it is strictly interior to the full hull. Certification uses the
// worst-case threshold of geom.StaticFilterEps: an uncertified comparison
// keeps the point, so float rounding can only make the cull less effective,
// never wrong. For a uniform ball the cull drops the vast majority of the
// input for h·n fused multiply-adds (h = sample hull size).
//
// Stage 2 (block sub-hulls): split the survivors into contiguous blocks,
// compute each block's hull with the sequential kernel — blocks in parallel
// on the work-stealing executor — and keep only the block-hull vertices
// (a point interior to its block's hull is interior to the full hull). This
// is ParGeo's concurrent-hull recipe (~8 blocks per worker, serial
// sub-hulls, flatten the survivors) and is where the block loop's multicore
// scaling comes from.
//
// For boundary-heavy inputs (on-sphere: every point a vertex) both stages
// would keep everything; stage 1 detects that from the sample hull density
// and disables itself, and the public layer's auto heuristic skips the
// pre-hull entirely.
//
// Failure discipline matches the engines (DESIGN.md §5): a degenerate block
// — a sub-hull that cannot be built because the block violates general
// position — is kept whole instead of failing the run (a safe
// over-approximation); cancellation is checked at stage boundaries and
// block boundaries and the first ctx error wins; a panic inside a sample or
// block sub-hull is contained (sched.Recovered / the executor) and surfaces
// as *sched.PanicError, never a crash.
package prehull

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"parhull/internal/faultinject"
	"parhull/internal/geom"
	"parhull/internal/hull2d"
	"parhull/internal/hulld"
	"parhull/internal/sched"
)

const (
	// DefaultMinBlock is the serial-fallback threshold: Reduce never makes
	// blocks smaller than this (a sub-hull over a handful of points keeps
	// nearly all of them — pure overhead).
	DefaultMinBlock = 100
	// blockTarget caps the block size the auto rule aims for. 8 blocks per
	// worker is the ParGeo ratio, but at low worker counts it would make
	// enormous blocks whose serial sub-hulls dominate the run; ~32k-point
	// blocks measured fastest for the sequential kernel, so the auto rule
	// takes whichever of the two rules makes more blocks.
	blockTarget = 1 << 15
	// blocksPerWorker is the oversubscription factor of the block loop, so
	// uneven blocks load-balance across the executor's deques.
	blocksPerWorker = 8

	// cullSample is the prefix length hulled by the stage-1 interior cull;
	// the sample hull's facet count h sets the worst-case per-point filter
	// cost, and the uncovered shell (the survivors) shrinks as the sample
	// grows. The inscribed-sphere fast path makes deep-interior points
	// nearly free, so a larger sample mostly buys fewer survivors.
	cullSample = 2048
	// cullMinN disables the cull below this input size — with few points
	// per sample-hull facet the h·n scan cannot pay for itself.
	cullMinN = 8 * cullSample
	// cullDense disables the cull when the sample hull keeps more than
	// 1/cullDense of the sample (boundary-heavy input: nothing inside).
	cullDense = 4
)

// Config parameterizes one reduction.
type Config struct {
	// Workers is the executor pool width for the block loop (<= 0 selects
	// GOMAXPROCS). The stage-1 point scan parallelizes via sched.ParallelFor,
	// which sizes itself from GOMAXPROCS.
	Workers int
	// Blocks overrides the automatic block count (<= 0 = auto: the max of
	// 8 per worker and survivors/32768, clamped so no block drops below
	// MinBlock).
	Blocks int
	// MinBlock overrides the smallest allowed block size (<= 0 selects
	// DefaultMinBlock).
	MinBlock int
	// ZOrder partitions the block stage spatially: survivors are presorted
	// along the Morton curve of their bounding box so each block is a
	// compact region (small sub-hulls, cache-coherent conflict scans)
	// instead of a random sample. Within a block, points keep their
	// relative input order, so the randomized-insertion guarantees of the
	// sub-hulls are preserved when the caller shuffled.
	ZOrder bool
	// NoCull disables the stage-1 interior cull (ablation; the block stage
	// alone is still exact).
	NoCull bool
	// NoPlaneCache disables the cached-hyperplane fast path inside the
	// sample and block sub-hulls (the A2 ablation; the survivors are
	// identical either way). The stage-1 point scan always uses the static
	// filter — with certification-or-keep semantics it needs no exact
	// fallback to stay sound.
	NoPlaneCache bool
	// Ctx, when non-nil, cancels the reduction cooperatively: checked at
	// stage and block boundaries here and at insertion granularity inside
	// the sub-hulls.
	Ctx context.Context
	// Inject arms deterministic fault injection inside the sample and block
	// sub-hulls (tests only; nil in production).
	Inject *faultinject.Injector
	// Scratch, when non-nil, recycles the reduction's large transient buffers
	// (cull mask, candidate/keep index lists, gathered survivor cloud) across
	// Reduce calls. Each call invalidates the Reduction (and gathered cloud)
	// of the previous call that used the same Scratch.
	Scratch *Scratch
}

// Scratch holds the pooled buffers of Config.Scratch. All slices are
// grow-only; the zero value is ready to use.
type Scratch struct {
	keepMask []bool
	cand     []int32
	keep     []int32
	work     []geom.Point
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return sched.Workers()
}

func (c Config) minBlock() int {
	if c.MinBlock > 0 {
		return c.MinBlock
	}
	return DefaultMinBlock
}

func (c Config) ctxErr() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// BlockCount returns the number of blocks the block stage will use for n
// points: the configured override, or the auto rule described on
// Config.Blocks. A return below 2 means the input is too small to block up
// (the serial fallback).
func BlockCount(n int, cfg Config) int {
	b := cfg.Blocks
	if b <= 0 {
		b = blocksPerWorker * cfg.workers()
		if t := (n + blockTarget - 1) / blockTarget; t > b {
			b = t
		}
	}
	if cap := n / cfg.minBlock(); b > cap {
		b = cap
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Reduction is the outcome of one pre-hull pass.
type Reduction struct {
	// Keep holds the indices of the surviving points, ascending — a
	// subsequence of the input order, so a shuffled input stays shuffled.
	// Nil when no reduction was performed (input too small; run directly).
	Keep []int32
	// Culled counts points dropped by the stage-1 interior filter.
	Culled int
	// Blocks is the number of block sub-hulls run.
	Blocks int
	// DegenerateBlocks counts blocks kept whole because their sub-hull
	// reported degenerate input (the safe over-approximation).
	DegenerateBlocks int
}

// Reduce runs the two-stage reduction over pts (dimension d = len(pts[0])
// >= 2) and returns the surviving index set. The caller is responsible for
// validating the cloud first (NaN/Inf coordinates); degenerate geometry
// needs no pre-validation — a degenerate sample skips the cull and
// degenerate blocks are kept whole.
//
// Error surface: ctx cancellation returns the ctx error; a contained panic
// in a sample or block sub-hull returns a *sched.PanicError, so the public
// layer's containment contract sees exactly what a direct run would
// surface; sub-hull errors other than degeneracy (e.g. a bad coordinate)
// propagate as-is.
func Reduce(pts []geom.Point, cfg Config) (*Reduction, error) {
	n := len(pts)
	d := 0
	if n > 0 {
		d = len(pts[0])
	}
	if d < 2 {
		return &Reduction{Blocks: 1}, nil
	}
	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}

	// Stage 1: certified-interior cull. cand == nil means "all points".
	cfg.Inject.Visit(faultinject.SitePreHullStage)
	var cand []int32
	if !cfg.NoCull {
		var err error
		cand, err = cullInterior(pts, d, cfg)
		if err != nil {
			return nil, err
		}
		if err := cfg.ctxErr(); err != nil {
			return nil, err
		}
	}
	culled := 0
	work := pts
	if cand != nil {
		culled = n - len(cand)
		if s := cfg.Scratch; s != nil {
			s.work = GatherInto(s.work, pts, cand)
			work = s.work
		} else {
			work = Gather(pts, cand)
		}
	}

	// Stage 2: block sub-hulls over the survivors.
	cfg.Inject.Visit(faultinject.SitePreHullStage)
	blockKeep, nb, degen, err := blockReduce(work, d, cfg)
	if err != nil {
		return nil, err
	}

	red := &Reduction{Culled: culled, Blocks: nb, DegenerateBlocks: degen}
	switch {
	case cand == nil && blockKeep == nil:
		// Neither stage reduced anything; run directly.
	case blockKeep == nil:
		red.Keep = cand
	case cand == nil:
		red.Keep = blockKeep
	default:
		var keep []int32
		if s := cfg.Scratch; s != nil {
			if cap(s.keep) < len(blockKeep) {
				s.keep = make([]int32, len(blockKeep))
			}
			keep = s.keep[:len(blockKeep)]
			s.keep = keep
		} else {
			keep = make([]int32, len(blockKeep))
		}
		for i, v := range blockKeep {
			keep[i] = cand[v]
		}
		red.Keep = keep
	}
	return red, nil
}

// cullInterior is stage 1: it returns the ascending index list of points
// that survive the sample-hull interior filter, or nil when the cull is
// skipped (input too small, dimension uncached, degenerate or dense sample,
// uncertifiable planes, or nothing culled). Only errors that must abort the
// whole reduction (cancellation, injected panics, bad coordinates) are
// returned.
func cullInterior(pts []geom.Point, d int, cfg Config) ([]int32, error) {
	n := len(pts)
	if n < cullMinN || d > geom.MaxPlaneDim {
		return nil, nil
	}
	sample := pts[:cullSample]
	var facets [][]int32
	var verts int
	var herr error
	if perr := sched.Recovered(func() {
		facets, verts, herr = subHullFacets(cfg, d, sample)
	}); perr != nil {
		return nil, perr
	}
	if herr != nil {
		if errors.Is(herr, hull2d.ErrDegenerate) || errors.Is(herr, hulld.ErrDegenerate) {
			return nil, nil // flat sample: nothing certifiable, skip the cull
		}
		return nil, herr
	}
	if verts > cullSample/cullDense {
		return nil, nil // boundary-heavy input: the cull would keep everything
	}

	// Static certification threshold over the whole cloud (the planes are
	// evaluated against every point, so the bound must cover all of them).
	maxAbs := make([]float64, d)
	for _, p := range pts {
		for j := 0; j < d; j++ {
			if a := p[j]; a > maxAbs[j] {
				maxAbs[j] = a
			} else if -a > maxAbs[j] {
				maxAbs[j] = -a
			}
		}
	}
	eps := geom.StaticFilterEps(maxAbs)
	if eps <= 0 {
		return nil, nil
	}

	// Orient every sample facet so the sample interior is strictly negative,
	// using the sample centroid as the interior witness. Any facet the
	// filter cannot certify against the centroid disables the whole cull —
	// dropping single facets would be unsound.
	centroid := make([]float64, d)
	for _, p := range sample {
		for j := 0; j < d; j++ {
			centroid[j] += p[j]
		}
	}
	for j := range centroid {
		centroid[j] /= float64(len(sample))
	}
	// While orienting, accumulate the inscribed-sphere radius around the
	// centroid: r = min over facets of (certified clearance / ||N||). Any
	// point within 0.999·r of the centroid satisfies Eval < -Eps on every
	// plane (Cauchy-Schwarz on the exact linear form, with the Eps margin
	// absorbing the evaluation error and the 0.1% shrink absorbing the
	// rounding of the distance and norm computations themselves), so the
	// common deep-interior case costs one squared distance instead of h
	// plane evaluations.
	planes := make([]geom.Plane, 0, len(facets))
	vp := make([]geom.Point, d)
	rIn := math.Inf(1)
	for _, fv := range facets {
		for i, v := range fv {
			vp[i] = sample[v]
		}
		pl := geom.NewFacetPlane(vp, eps)
		if !pl.Valid() {
			return nil, nil
		}
		s, ok := pl.CertifiedSign(centroid)
		if !ok {
			return nil, nil
		}
		if s > 0 {
			for j := 0; j < d; j++ {
				pl.N[j] = -pl.N[j]
			}
			pl.Off = -pl.Off
		}
		norm := 0.0
		for j := 0; j < d; j++ {
			norm += pl.N[j] * pl.N[j]
		}
		norm = math.Sqrt(norm)
		if clear := -pl.Eval(centroid) - eps; norm > 0 && clear/norm < rIn {
			rIn = clear / norm
		}
		planes = append(planes, pl)
	}
	r2 := 0.0
	if rIn > 0 && !math.IsInf(rIn, 1) {
		r2 = 0.999 * rIn * 0.999 * rIn
	}

	// Scan: a point is dropped only when every plane certifies it strictly
	// interior (Eval < -Eps) — or, cheaper, when it lies inside the
	// certified inscribed sphere. The plane loop exits on the first plane
	// that fails to certify, so shell points are cheap; mid-shell points
	// pay at most h evals.
	var keepMask []bool
	if s := cfg.Scratch; s != nil {
		if cap(s.keepMask) < n {
			s.keepMask = make([]bool, n)
		}
		keepMask = s.keepMask[:n]
		s.keepMask = keepMask
		clear(keepMask)
	} else {
		keepMask = make([]bool, n)
	}
	var kept atomic.Int64
	sched.ParallelFor(n, 4096, func(lo, hi int) {
		if cfg.ctxErr() != nil {
			return // the post-stage ctx check in Reduce reports it
		}
		local := int64(0)
		for i := lo; i < hi; i++ {
			x := pts[i]
			dist2 := 0.0
			for j := 0; j < d; j++ {
				dx := x[j] - centroid[j]
				dist2 += dx * dx
			}
			if dist2 < r2 {
				continue // certified deep interior
			}
			inside := true
			for pi := range planes {
				if planes[pi].Eval(x) >= -eps {
					inside = false
					break
				}
			}
			if !inside {
				keepMask[i] = true
				local++
			}
		}
		kept.Add(local)
	})
	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}
	k := int(kept.Load())
	if k == n {
		return nil, nil
	}
	var cand []int32
	if s := cfg.Scratch; s != nil {
		if cap(s.cand) < k {
			s.cand = make([]int32, 0, k)
		}
		cand = s.cand[:0]
	} else {
		cand = make([]int32, 0, k)
	}
	for i, m := range keepMask {
		if m {
			cand = append(cand, int32(i))
		}
	}
	if s := cfg.Scratch; s != nil {
		s.cand = cand
	}
	return cand, nil
}

// blockReduce is stage 2: the parallel block sub-hull loop over work,
// returning the ascending block-survivor indices (into work), the block
// count, and the degenerate-block count. A nil keep with a nil error means
// the input was too small to block up (run it whole).
func blockReduce(work []geom.Point, d int, cfg Config) ([]int32, int, int, error) {
	n := len(work)
	nb := BlockCount(n, cfg)
	if nb < 2 {
		return nil, 1, 0, nil
	}

	// Partition: block b owns positions [b*n/nb, (b+1)*n/nb) of the input
	// order, or of the Z-order when spatial partitioning is on. Z blocks
	// re-sort their members ascending so each sub-hull inserts in the
	// caller's (random) relative order, and survivors merge back into a
	// subsequence of the input.
	var zperm []int32
	if cfg.ZOrder {
		zperm = geom.ZOrderPerm(work)
	}

	var (
		out     = make([][]int32, nb)
		degen   atomic.Int64
		errOnce sync.Once
		firstEr atomic.Pointer[error]
		failed  atomic.Bool
	)
	fail := func(err error) {
		errOnce.Do(func() { firstEr.Store(&err) })
		failed.Store(true)
	}

	body := func(_ int, b int) {
		if failed.Load() {
			return
		}
		// One visit per block, inside the executor: an armed panic here is
		// contained into a *sched.PanicError like any block sub-hull panic.
		cfg.Inject.Visit(faultinject.SitePreHullBlock)
		if err := cfg.ctxErr(); err != nil {
			fail(err)
			return
		}
		lo, hi := b*n/nb, (b+1)*n/nb
		var members []int32 // indices into work; nil when the block is contiguous
		var blockPts []geom.Point
		if zperm != nil {
			members = append([]int32(nil), zperm[lo:hi]...)
			sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
			blockPts = make([]geom.Point, len(members))
			for i, m := range members {
				blockPts[i] = work[m]
			}
		} else {
			blockPts = work[lo:hi]
		}
		verts, err := subHull(cfg, d, blockPts)
		switch {
		case err == nil:
			keep := make([]int32, len(verts))
			for i, v := range verts {
				if members != nil {
					keep[i] = members[v]
				} else {
					keep[i] = int32(lo) + v
				}
			}
			out[b] = keep
		case errors.Is(err, hull2d.ErrDegenerate) || errors.Is(err, hulld.ErrDegenerate):
			// The block cannot support a sub-hull (collinear, coplanar, too
			// small): keep every point. Correctness never depends on a block
			// actually reducing.
			degen.Add(1)
			if members != nil {
				out[b] = members
			} else {
				keep := make([]int32, hi-lo)
				for i := range keep {
					keep[i] = int32(lo + i)
				}
				out[b] = keep
			}
		default:
			fail(err)
		}
	}

	x := sched.NewExecutor(cfg.workers(), body)
	for b := 0; b < nb; b++ {
		x.Fork(sched.External, b)
	}
	x.Wait()
	if ep := firstEr.Load(); ep != nil {
		return nil, nb, int(degen.Load()), *ep
	}
	if err := x.Err(); err != nil {
		return nil, nb, int(degen.Load()), err // a contained *sched.PanicError
	}

	total := 0
	for _, part := range out {
		total += len(part)
	}
	keep := make([]int32, 0, total)
	for _, part := range out {
		keep = append(keep, part...)
	}
	if zperm != nil {
		// Blocks were spatial, so their survivor runs interleave in input
		// order; restore the global subsequence.
		sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
	}
	return keep, nb, int(degen.Load()), nil
}

// subHull runs the sequential kernel over one block and returns the
// block-local indices of its hull vertices (ascending).
func subHull(cfg Config, d int, pts []geom.Point) ([]int32, error) {
	if d == 2 {
		res, err := hull2d.SeqCtx(cfg.Ctx, cfg.Inject, pts, cfg.NoPlaneCache)
		if err != nil {
			return nil, err
		}
		// 2D vertices come back in CCW hull order; the caller wants the
		// ascending index subsequence.
		verts := append([]int32(nil), res.Vertices...)
		sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
		return verts, nil
	}
	res, err := hulld.SeqCtx(cfg.Ctx, cfg.Inject, pts, cfg.NoPlaneCache)
	if err != nil {
		return nil, err
	}
	return res.Vertices, nil
}

// subHullFacets runs the sequential kernel over the cull sample and returns
// each alive facet's sample-local vertex list plus the hull vertex count.
func subHullFacets(cfg Config, d int, pts []geom.Point) ([][]int32, int, error) {
	if d == 2 {
		res, err := hull2d.SeqCtx(cfg.Ctx, cfg.Inject, pts, cfg.NoPlaneCache)
		if err != nil {
			return nil, 0, err
		}
		facets := make([][]int32, len(res.Facets))
		for i, f := range res.Facets {
			facets[i] = []int32{f.A, f.B}
		}
		return facets, len(res.Vertices), nil
	}
	res, err := hulld.SeqCtx(cfg.Ctx, cfg.Inject, pts, cfg.NoPlaneCache)
	if err != nil {
		return nil, 0, err
	}
	facets := make([][]int32, len(res.Facets))
	for i, f := range res.Facets {
		facets[i] = f.Verts
	}
	return facets, len(res.Vertices), nil
}

// Gather materializes the reduced cloud: out[i] = pts[keep[i]]. The point
// headers are shared with the input (coordinates are not copied); the
// engines copy coordinates into their own PointStore anyway.
func Gather(pts []geom.Point, keep []int32) []geom.Point {
	return GatherInto(nil, pts, keep)
}

// GatherInto is Gather writing into buf (reused when its capacity allows).
func GatherInto(buf []geom.Point, pts []geom.Point, keep []int32) []geom.Point {
	if cap(buf) < len(keep) {
		buf = make([]geom.Point, len(keep))
	}
	out := buf[:len(keep)]
	for i, k := range keep {
		out[i] = pts[k]
	}
	return out
}
