package prehull

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"parhull/internal/faultinject"
	"parhull/internal/geom"
	"parhull/internal/hull2d"
	"parhull/internal/hulld"
	"parhull/internal/leakcheck"
	"parhull/internal/pointgen"
	"parhull/internal/sched"
)

// shuffledBall builds the canonical prehull-friendly workload: a uniform
// ball (interior-heavy: hull size O(n^((d-1)/(d+1)))) in random insertion
// order.
func shuffledBall(seed int64, n, d int) []geom.Point {
	rng := pointgen.NewRNG(seed)
	return pointgen.Shuffled(rng, pointgen.UniformBall(rng, n, d))
}

// remap translates a reduced-set index to an original index (identity when
// keep is nil).
func remap(keep []int32, v int32) int32 {
	if keep == nil {
		return v
	}
	return keep[v]
}

// aliveEdges2D returns the alive-edge multiset of a 2D result with indices
// translated back to the original cloud through keep.
func aliveEdges2D(res *hull2d.Result, keep []int32) map[[2]int32]int {
	m := make(map[[2]int32]int, len(res.Facets))
	for _, f := range res.Facets {
		m[[2]int32{remap(keep, f.A), remap(keep, f.B)}]++
	}
	return m
}

// aliveFacetsD returns the alive-facet multiset of a d-dimensional result
// with indices translated back to the original cloud through keep.
func aliveFacetsD(res *hulld.Result, keep []int32) map[string]int {
	m := make(map[string]int, len(res.Facets))
	for _, f := range res.Facets {
		verts := make([]int32, len(f.Verts))
		for i, v := range f.Verts {
			verts[i] = remap(keep, v)
		}
		sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
		m[fmt.Sprint(verts)]++
	}
	return m
}

func sameMultiset[K comparable](t *testing.T, label string, a, b map[K]int) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d distinct facets vs %d", label, len(a), len(b))
	}
	for k, c := range a {
		if b[k] != c {
			t.Fatalf("%s: facet %v multiplicity %d vs %d", label, k, c, b[k])
		}
	}
}

// checkKeep asserts the structural invariants of a survivor set: strictly
// ascending (hence duplicate-free), in range, and a superset of the given
// true hull vertices.
func checkKeep(t *testing.T, keep []int32, n int, hullVerts []int32) {
	t.Helper()
	for i, k := range keep {
		if k < 0 || int(k) >= n {
			t.Fatalf("keep[%d] = %d out of range [0,%d)", i, k, n)
		}
		if i > 0 && keep[i-1] >= k {
			t.Fatalf("keep not strictly ascending at %d: %d >= %d", i, keep[i-1], k)
		}
	}
	in := make(map[int32]bool, len(keep))
	for _, k := range keep {
		in[k] = true
	}
	for _, v := range hullVerts {
		if !in[v] {
			t.Fatalf("hull vertex %d dropped by the reduction", v)
		}
	}
}

func TestBlockCountRules(t *testing.T) {
	// Tiny inputs fall back to a single block (serial path).
	if b := BlockCount(150, Config{}); b != 1 {
		t.Fatalf("n=150: blocks = %d, want 1", b)
	}
	// The explicit override wins but still respects MinBlock.
	if b := BlockCount(1000, Config{Blocks: 4}); b != 4 {
		t.Fatalf("override: blocks = %d, want 4", b)
	}
	if b := BlockCount(1000, Config{Blocks: 100}); b != 10 {
		t.Fatalf("override clamp: blocks = %d, want 10 (MinBlock=100)", b)
	}
	// The auto rule never lets blocks exceed ~blockTarget points.
	n := 1 << 20
	b := BlockCount(n, Config{Workers: 1})
	if per := n / b; per > blockTarget {
		t.Fatalf("auto: %d blocks of ~%d points each, want <= %d", b, per, blockTarget)
	}
	// More workers never means fewer blocks.
	if b16 := BlockCount(n, Config{Workers: 16}); b16 < b {
		t.Fatalf("blocks shrank with workers: %d < %d", b16, b)
	}
}

func TestReduceSmallInputSerialFallback(t *testing.T) {
	pts := shuffledBall(1, 150, 2)
	red, err := Reduce(pts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if red.Keep != nil || red.Blocks != 1 {
		t.Fatalf("small input: Keep=%v Blocks=%d, want nil/1", red.Keep, red.Blocks)
	}
}

// TestReduceExactHull2D checks the tentpole invariant in 2D: the reduction
// keeps every true hull vertex and the hull of the reduced set is, facet for
// facet, the hull of the full set — with and without Z-order partitioning.
func TestReduceExactHull2D(t *testing.T) {
	pts := shuffledBall(2, 4000, 2)
	direct, err := hull2d.SeqCtx(nil, nil, pts, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range []bool{false, true} {
		t.Run(fmt.Sprintf("zorder=%v", z), func(t *testing.T) {
			red, err := Reduce(pts, Config{ZOrder: z, Blocks: 16})
			if err != nil {
				t.Fatal(err)
			}
			checkKeep(t, red.Keep, len(pts), direct.Vertices)
			if len(red.Keep) >= len(pts)/2 {
				t.Fatalf("ball input barely reduced: kept %d of %d", len(red.Keep), len(pts))
			}
			reduced, err := hull2d.SeqCtx(nil, nil, Gather(pts, red.Keep), false)
			if err != nil {
				t.Fatal(err)
			}
			sameMultiset(t, "alive edges", aliveEdges2D(reduced, red.Keep), aliveEdges2D(direct, nil))
		})
	}
}

// TestReduceExactHullD is the d-dimensional version, over the engines' main
// 3D workload.
func TestReduceExactHullD(t *testing.T) {
	pts := shuffledBall(3, 3000, 3)
	direct, err := hulld.SeqCtx(nil, nil, pts, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range []bool{false, true} {
		t.Run(fmt.Sprintf("zorder=%v", z), func(t *testing.T) {
			red, err := Reduce(pts, Config{ZOrder: z, Blocks: 12})
			if err != nil {
				t.Fatal(err)
			}
			checkKeep(t, red.Keep, len(pts), direct.Vertices)
			if len(red.Keep) >= len(pts) {
				t.Fatalf("ball input not reduced: kept %d of %d", len(red.Keep), len(pts))
			}
			reduced, err := hulld.SeqCtx(nil, nil, Gather(pts, red.Keep), false)
			if err != nil {
				t.Fatal(err)
			}
			sameMultiset(t, "alive facets", aliveFacetsD(reduced, red.Keep), aliveFacetsD(direct, nil))
		})
	}
}

// TestReduceFinalEngineEquivalence feeds one reduction to every final-stage
// schedule — sequential, work-stealing, goroutine-group — and checks all
// three reproduce the direct run's alive facets (the ISSUE's cross-engine
// equivalence property; Theorem 5.5 for the parallel pair).
func TestReduceFinalEngineEquivalence(t *testing.T) {
	pts := shuffledBall(4, 2500, 3)
	direct, err := hulld.SeqCtx(nil, nil, pts, false)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Reduce(pts, Config{ZOrder: true, Blocks: 10})
	if err != nil {
		t.Fatal(err)
	}
	sub := Gather(pts, red.Keep)
	want := aliveFacetsD(direct, nil)

	seq, err := hulld.SeqCtx(nil, nil, sub, false)
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, "seq", aliveFacetsD(seq, red.Keep), want)
	for _, kind := range []sched.Kind{sched.KindSteal, sched.KindGroup} {
		par, err := hulld.Par(sub, &hulld.Options{Sched: kind})
		if err != nil {
			t.Fatal(err)
		}
		sameMultiset(t, fmt.Sprintf("par kind=%v", kind), aliveFacetsD(par, red.Keep), want)
	}
}

// TestReduceSkewedInputs runs the reduction over the adversarial generators
// (tight clusters, anisotropic pancake): blocks may degenerate, the result
// must still be exact.
func TestReduceSkewedInputs(t *testing.T) {
	rng := pointgen.NewRNG(5)
	clouds := map[string][]geom.Point{
		"clustered":   pointgen.Shuffled(rng, pointgen.Clustered(rng, 3000, 3, 12, 0.01)),
		"anisotropic": pointgen.Shuffled(rng, pointgen.Anisotropic(rng, 3000, 3, 0.02)),
	}
	for name, pts := range clouds {
		for _, z := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/zorder=%v", name, z), func(t *testing.T) {
				direct, err := hulld.SeqCtx(nil, nil, pts, false)
				if err != nil {
					t.Skipf("direct hull degenerate for %s: %v", name, err)
				}
				red, err := Reduce(pts, Config{ZOrder: z})
				if err != nil {
					t.Fatal(err)
				}
				checkKeep(t, red.Keep, len(pts), direct.Vertices)
				reduced, err := hulld.SeqCtx(nil, nil, Gather(pts, red.Keep), false)
				if err != nil {
					t.Fatal(err)
				}
				sameMultiset(t, name, aliveFacetsD(reduced, red.Keep), aliveFacetsD(direct, nil))
			})
		}
	}
}

// TestReduceDegenerateBlocksKeptWhole feeds a fully collinear cloud: every
// block sub-hull must report ErrDegenerate and be kept whole, so the
// reduction returns all n points and no error — the final hull then fails
// with exactly the error a direct run would produce.
func TestReduceDegenerateBlocksKeptWhole(t *testing.T) {
	pts := pointgen.Collinear2D(geom.Point{0, 0}, geom.Point{1, 1}, 1200)
	red, err := Reduce(pts, Config{Blocks: 6})
	if err != nil {
		t.Fatal(err)
	}
	if red.DegenerateBlocks != red.Blocks || red.Blocks != 6 {
		t.Fatalf("degenerate blocks = %d of %d, want all 6", red.DegenerateBlocks, red.Blocks)
	}
	if len(red.Keep) != len(pts) {
		t.Fatalf("collinear cloud reduced to %d of %d points", len(red.Keep), len(pts))
	}
	for i, k := range red.Keep {
		if int(k) != i {
			t.Fatalf("keep[%d] = %d, want identity", i, k)
		}
	}
	if _, err := hull2d.SeqCtx(nil, nil, Gather(pts, red.Keep), false); !errors.Is(err, hull2d.ErrDegenerate) {
		t.Fatalf("final hull err = %v, want ErrDegenerate", err)
	}
}

// TestReduceCancelBeforeStart checks the upfront path: an already-canceled
// ctx fails fast without spawning the pool.
func TestReduceCancelBeforeStart(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts := shuffledBall(6, 2000, 2)
	if _, err := Reduce(pts, Config{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestReduceCancelMidRun cancels while block sub-hulls are in flight:
// injected delays at the sequential insertion sites hold the blocks long
// enough that the cancel lands mid-reduction; ctx.Err() must surface typed,
// with the pool quiesced and no goroutine leaked.
func TestReduceCancelMidRun(t *testing.T) {
	leakcheck.Check(t)
	pts := shuffledBall(7, 6000, 2)
	ctx, cancel := context.WithCancel(context.Background())
	inj := faultinject.New(1).DelayEvery(faultinject.SiteSeqInsert, 1, time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, err := Reduce(pts, Config{Blocks: 30, Ctx: ctx, Inject: inj})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not propagate out of the block loop")
	}
}

// TestReducePanicContainment arms a deterministic panic inside a block
// sub-hull: it must surface as the executor's typed *sched.PanicError
// carrying the injected value — never a crash — with no goroutine leaked.
func TestReducePanicContainment(t *testing.T) {
	leakcheck.Check(t)
	pts := shuffledBall(8, 3000, 3)
	for _, visit := range []int64{1, 50, 400} {
		inj := faultinject.New(1).PanicAt(faultinject.SiteSeqInsert, visit)
		_, err := Reduce(pts, Config{Blocks: 8, Inject: inj})
		if err == nil {
			t.Fatalf("visit=%d: injected panic did not surface", visit)
		}
		var pe *sched.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("visit=%d: error is %T, want *sched.PanicError: %v", visit, err, err)
		}
		fp, ok := pe.Value.(faultinject.Panic)
		if !ok || fp.Site != faultinject.SiteSeqInsert || fp.Visit != visit {
			t.Fatalf("visit=%d: contained value = %#v", visit, pe.Value)
		}
		if got := inj.Fired(faultinject.SiteSeqInsert); got != 1 {
			t.Fatalf("visit=%d: fired %d panics, want exactly 1", visit, got)
		}
	}
}

// FuzzPreHullEquivalence fuzzes the whole pre-hull contract in 2D: for an
// arbitrary seeded cloud, block count, and partitioning mode, hull(reduce(P))
// must equal hull(P) alive edge for alive edge.
func FuzzPreHullEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(500), uint8(0), false)
	f.Add(int64(2), uint16(1500), uint8(7), true)
	f.Add(int64(3), uint16(233), uint8(2), true)
	f.Add(int64(4), uint16(4000), uint8(40), false)
	f.Fuzz(func(t *testing.T, seed int64, rawN uint16, rawBlocks uint8, z bool) {
		n := 100 + int(rawN)%4000
		pts := shuffledBall(seed, n, 2)
		direct, err := hull2d.SeqCtx(nil, nil, pts, false)
		if err != nil {
			t.Skip("degenerate draw")
		}
		red, err := Reduce(pts, Config{Blocks: int(rawBlocks), ZOrder: z})
		if err != nil {
			t.Fatal(err)
		}
		if red.Keep == nil {
			return // serial fallback: nothing to compare
		}
		checkKeep(t, red.Keep, n, direct.Vertices)
		reduced, err := hull2d.SeqCtx(nil, nil, Gather(pts, red.Keep), false)
		if err != nil {
			t.Fatalf("reduced hull failed where direct succeeded: %v", err)
		}
		sameMultiset(t, "fuzz", aliveEdges2D(reduced, red.Keep), aliveEdges2D(direct, nil))
	})
}

// TestCullInteriorExact exercises the stage-1 interior cull (input above
// cullMinN): a large ball must cull a substantial fraction before blocking,
// keep every true hull vertex, and reproduce the direct alive facets — in
// both dimensions and with the cull ablated off.
func TestCullInteriorExact(t *testing.T) {
	leakcheck.Check(t)
	for _, tc := range []struct{ d, n int }{{2, 20000}, {3, 24000}} {
		pts := shuffledBall(int64(10+tc.d), tc.n, tc.d)
		for _, noCull := range []bool{false, true} {
			t.Run(fmt.Sprintf("d=%d/nocull=%v", tc.d, noCull), func(t *testing.T) {
				red, err := Reduce(pts, Config{ZOrder: true, NoCull: noCull})
				if err != nil {
					t.Fatal(err)
				}
				if noCull {
					if red.Culled != 0 {
						t.Fatalf("NoCull: Culled = %d, want 0", red.Culled)
					}
				} else if red.Culled < tc.n/2 {
					t.Fatalf("cull dropped only %d of %d ball points", red.Culled, tc.n)
				}
				if tc.d == 2 {
					direct, err := hull2d.SeqCtx(nil, nil, pts, false)
					if err != nil {
						t.Fatal(err)
					}
					checkKeep(t, red.Keep, tc.n, direct.Vertices)
					reduced, err := hull2d.SeqCtx(nil, nil, Gather(pts, red.Keep), false)
					if err != nil {
						t.Fatal(err)
					}
					sameMultiset(t, "alive edges", aliveEdges2D(reduced, red.Keep), aliveEdges2D(direct, nil))
					return
				}
				direct, err := hulld.SeqCtx(nil, nil, pts, false)
				if err != nil {
					t.Fatal(err)
				}
				checkKeep(t, red.Keep, tc.n, direct.Vertices)
				reduced, err := hulld.SeqCtx(nil, nil, Gather(pts, red.Keep), false)
				if err != nil {
					t.Fatal(err)
				}
				sameMultiset(t, "alive facets", aliveFacetsD(reduced, red.Keep), aliveFacetsD(direct, nil))
			})
		}
	}
}

// TestCullSkipsDenseSample feeds a boundary-only cloud above the cull
// threshold: the sample hull keeps nearly the whole sample, so the density
// gate must disable the cull (Culled == 0) and the block stage alone must
// still keep every vertex.
func TestCullSkipsDenseSample(t *testing.T) {
	rng := pointgen.NewRNG(17)
	pts := pointgen.Shuffled(rng, pointgen.OnSphere(rng, cullMinN+4000, 3))
	direct, err := hulld.SeqCtx(nil, nil, pts, false)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Reduce(pts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if red.Culled != 0 {
		t.Fatalf("on-sphere cloud culled %d points; the density gate should have disabled the cull", red.Culled)
	}
	if red.Keep != nil {
		checkKeep(t, red.Keep, len(pts), direct.Vertices)
	}
}

// TestCullPanicContainment arms an injected panic that fires inside the
// stage-1 sample sub-hull (visit 1 is hit while hulling the sample prefix):
// Reduce must surface it as a contained *sched.PanicError, same as a block
// panic.
func TestCullPanicContainment(t *testing.T) {
	leakcheck.Check(t)
	pts := shuffledBall(18, cullMinN, 3)
	inj := faultinject.New(1)
	inj.PanicAt(faultinject.SiteSeqInsert, 1)
	_, err := Reduce(pts, Config{Inject: inj})
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sched.PanicError from the sample sub-hull", err)
	}
	fp, ok := pe.Value.(faultinject.Panic)
	if !ok || fp.Site != faultinject.SiteSeqInsert {
		t.Fatalf("contained value = %#v", pe.Value)
	}
}
