// Package circles implements Section 7's intersection of unit circles:
// given unit disks D_i centered at points c_i, the incremental process
// maintains the boundary arcs of their common intersection.
//
// Configurations are arcs (Section 7): a pair of intersecting circles
// defines two arcs (each circle's arc inside the other), and a triple
// defines up to three (one per support circle), so the multiplicity is 3.
// An arc conflicts with every circle that does not fully contain it — adding
// such a circle either cuts the arc or removes it from the boundary.
// The space has 2-support, which the tests verify by brute force, and
// core.Simulate measures its dependence depth (experiment E9).
//
// Substitution note (recorded in DESIGN.md): circle-circle intersections are
// algebraic, not rational, so unlike the hull engines this package evaluates
// predicates in float64 with a small tolerance rather than exactly. The
// generators keep inputs far from degeneracy, which preserves the
// combinatorial behaviour the paper analyzes.
package circles

import (
	"errors"
	"fmt"
	"math"

	"parhull/internal/geom"
)

// ErrDegenerate reports input the arc space cannot represent (duplicate
// centers). Returned wrapped, with detail; the public layer maps it onto
// parhull.ErrDegenerate.
var ErrDegenerate = errors.New("circles: degenerate input")

// ErrDisjoint reports a pair of circles at distance >= 2, outside the
// all-pairs-intersecting regime the incremental space assumes. The public
// layer turns it into an empty intersection rather than an error.
var ErrDisjoint = errors.New("circles: non-intersecting pair")

const (
	twoPi = 2 * math.Pi
	// eps is the angular tolerance for containment/equality decisions.
	eps = 1e-9
)

// Interval is an angular interval on a circle: the angles s with
// norm(s - Lo) <= Length, i.e. [Lo, Lo+Length] wrapping modulo 2*pi.
// Length == 2*pi denotes the full circle.
type Interval struct {
	Lo, Length float64
}

// Full is the whole circle.
var Full = Interval{0, twoPi}

func norm(a float64) float64 {
	a = math.Mod(a, twoPi)
	if a < 0 {
		a += twoPi
	}
	return a
}

// Contains reports whether angle t lies in iv (inclusive within eps).
func (iv Interval) Contains(t float64) bool {
	return norm(t-iv.Lo) <= iv.Length+eps
}

// ContainsInterval reports whether jv lies entirely inside iv.
func (iv Interval) ContainsInterval(jv Interval) bool {
	if iv.Length >= twoPi-eps {
		return true
	}
	if jv.Length > iv.Length+eps {
		return false
	}
	d := norm(jv.Lo - iv.Lo)
	return d <= iv.Length+eps && d+jv.Length <= iv.Length+eps
}

// Intersect returns the (0, 1, or 2) intervals forming iv ∩ jv.
func (iv Interval) Intersect(jv Interval) []Interval {
	if iv.Length >= twoPi-eps {
		return []Interval{jv}
	}
	if jv.Length >= twoPi-eps {
		return []Interval{iv}
	}
	var out []Interval
	if d := norm(jv.Lo - iv.Lo); d < iv.Length-eps {
		out = append(out, Interval{jv.Lo, math.Min(jv.Length, iv.Length-d)})
	}
	if d := norm(iv.Lo - jv.Lo); d < jv.Length-eps {
		seg := Interval{iv.Lo, math.Min(iv.Length, jv.Length-d)}
		dup := false
		for _, o := range out {
			if math.Abs(norm(o.Lo-seg.Lo)) < eps && math.Abs(o.Length-seg.Length) < eps {
				dup = true
			}
		}
		if !dup {
			out = append(out, seg)
		}
	}
	return out
}

// chordInterval returns the angular interval of circle a's boundary lying
// inside the unit disk centered at x, and whether it is non-empty. Both
// circles have radius 1; centers must be distinct.
func chordInterval(a, x geom.Point) (Interval, bool) {
	dx, dy := x[0]-a[0], x[1]-a[1]
	t := math.Hypot(dx, dy)
	if t >= 2 {
		return Interval{}, false
	}
	if t == 0 {
		return Full, true // identical circles: boundary fully inside
	}
	phi := math.Atan2(dy, dx)
	alpha := math.Acos(t / 2)
	return Interval{norm(phi - alpha), 2 * alpha}, true
}

// Arc is one boundary arc of the intersection region.
type Arc struct {
	Circle int // index of the supporting circle
	Iv     Interval
}

// IntersectionBoundary computes the boundary arcs of the intersection of
// unit disks centered at centers, by direct interval intersection (the
// oracle the incremental configuration space is tested against). The second
// return reports whether the intersection region is non-empty.
func IntersectionBoundary(centers []geom.Point) ([]Arc, bool, error) {
	if err := geom.ValidateCloud(centers, 2); err != nil {
		return nil, false, err
	}
	for i := range centers {
		for j := i + 1; j < len(centers); j++ {
			if centers[i].Equal(centers[j]) {
				return nil, false, fmt.Errorf("%w: duplicate centers %d and %d", ErrDegenerate, i, j)
			}
		}
	}
	var arcs []Arc
	for a := range centers {
		ivs := []Interval{Full}
		for x := range centers {
			if x == a {
				continue
			}
			cx, ok := chordInterval(centers[a], centers[x])
			if !ok {
				ivs = nil
				break
			}
			var next []Interval
			for _, iv := range ivs {
				next = append(next, iv.Intersect(cx)...)
			}
			ivs = next
		}
		for _, iv := range ivs {
			if iv.Length > eps {
				arcs = append(arcs, Arc{Circle: a, Iv: iv})
			}
		}
	}
	if len(centers) == 1 {
		return []Arc{{0, Full}}, true, nil
	}
	return arcs, len(arcs) > 0, nil
}
