package circles

import (
	"math"
	"testing"

	"parhull/internal/core"
	"parhull/internal/geom"
	"parhull/internal/pointgen"
	"parhull/internal/stats"
)

// clusteredCenters returns n distinct centers within a small disk, so every
// pair of unit circles intersects and the common intersection is non-empty.
func clusteredCenters(seed int64, n int) []geom.Point {
	rng := pointgen.NewRNG(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		a := twoPi * rng.Float64()
		r := 0.4 * math.Sqrt(rng.Float64())
		pts[i] = geom.Point{r * math.Cos(a), r * math.Sin(a)}
	}
	return pts
}

func TestIntervalOps(t *testing.T) {
	iv := Interval{0, math.Pi}
	if !iv.Contains(1) || iv.Contains(4) {
		t.Error("Contains misclassifies")
	}
	if !iv.ContainsInterval(Interval{0.5, 1}) {
		t.Error("nested interval rejected")
	}
	if iv.ContainsInterval(Interval{3, 1}) {
		t.Error("outside interval accepted")
	}
	if !Full.ContainsInterval(Interval{5, 2}) {
		t.Error("full circle rejects")
	}
	// Wrapping containment.
	w := Interval{5.5, 2}
	if !w.ContainsInterval(Interval{6, 1}) {
		t.Error("wrapping containment failed")
	}
	// Simple overlap.
	got := Interval{0, 2}.Intersect(Interval{1, 2})
	if len(got) != 1 || math.Abs(got[0].Lo-1) > eps || math.Abs(got[0].Length-1) > eps {
		t.Fatalf("intersect: %+v", got)
	}
	// Nested.
	got = Interval{0, 3}.Intersect(Interval{1, 1})
	if len(got) != 1 || math.Abs(got[0].Lo-1) > eps || math.Abs(got[0].Length-1) > eps {
		t.Fatalf("nested intersect: %+v", got)
	}
	// Disjoint.
	got = Interval{0, 1}.Intersect(Interval{2, 1})
	if len(got) != 0 {
		t.Fatalf("disjoint intersect: %+v", got)
	}
	// Double overlap (two long intervals covering most of the circle).
	got = Interval{0, 5.9}.Intersect(Interval{3, 5.9})
	if len(got) != 2 {
		t.Fatalf("double overlap: %+v", got)
	}
}

func TestChordInterval(t *testing.T) {
	// Centers at distance 1: half-angle acos(1/2) = pi/3 about direction 0.
	iv, ok := chordInterval(geom.Point{-0.5, 0}, geom.Point{0.5, 0})
	if !ok {
		t.Fatal("intersecting circles reported disjoint")
	}
	if math.Abs(iv.Length-2*math.Pi/3) > 1e-12 {
		t.Fatalf("length = %v, want 2pi/3", iv.Length)
	}
	if math.Abs(norm(iv.Lo)-(twoPi-math.Pi/3)) > 1e-12 {
		t.Fatalf("lo = %v", iv.Lo)
	}
	if _, ok := chordInterval(geom.Point{0, 0}, geom.Point{2.5, 0}); ok {
		t.Fatal("distant circles reported intersecting")
	}
}

func TestTwoCircleLens(t *testing.T) {
	centers := []geom.Point{{-0.5, 0}, {0.5, 0}}
	arcs, nonempty, err := IntersectionBoundary(centers)
	if err != nil || !nonempty {
		t.Fatalf("lens: %v %v", nonempty, err)
	}
	if len(arcs) != 2 {
		t.Fatalf("lens has %d arcs, want 2", len(arcs))
	}
	sp, err := NewSpace(centers)
	if err != nil {
		t.Fatal(err)
	}
	act := core.Active(sp, []int{0, 1})
	if len(act) != 2 {
		t.Fatalf("|T| = %d, want 2", len(act))
	}
}

func TestReuleauxTriple(t *testing.T) {
	// Three symmetric circles: the intersection is a Reuleaux-like region
	// with exactly 3 boundary arcs.
	var centers []geom.Point
	for i := 0; i < 3; i++ {
		a := math.Pi/2 + float64(i)*twoPi/3
		centers = append(centers, geom.Point{0.6 * math.Cos(a), 0.6 * math.Sin(a)})
	}
	arcs, nonempty, err := IntersectionBoundary(centers)
	if err != nil || !nonempty {
		t.Fatalf("%v %v", nonempty, err)
	}
	if len(arcs) != 3 {
		t.Fatalf("%d arcs, want 3", len(arcs))
	}
	sp, err := NewSpace(centers)
	if err != nil {
		t.Fatal(err)
	}
	act := core.Active(sp, []int{0, 1, 2})
	if len(act) != 3 {
		t.Fatalf("|T| = %d, want 3", len(act))
	}
}

// TestActiveMatchesOracle: the active configurations of the space equal the
// boundary arcs computed by direct interval intersection.
func TestActiveMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		centers := clusteredCenters(seed, 8)
		arcs, nonempty, err := IntersectionBoundary(centers)
		if err != nil || !nonempty {
			t.Fatalf("seed %d: %v %v", seed, nonempty, err)
		}
		sp, err := NewSpace(centers)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]int, len(centers))
		for i := range all {
			all[i] = i
		}
		act := core.Active(sp, all)
		if len(act) != len(arcs) {
			t.Fatalf("seed %d: |T| = %d, oracle %d arcs", seed, len(act), len(arcs))
		}
		// Each active configuration matches an oracle arc.
		for _, c := range act {
			sup, iv := sp.Cfg(c)
			found := false
			for _, a := range arcs {
				if a.Circle == sup && sameIv(a.Iv, iv) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("seed %d: active arc (circle %d, %+v) not in oracle", seed, sup, iv)
			}
		}
	}
}

// TestTwoSupportCircles verifies Section 7's claim that the circle space has
// 2-support, by exhaustive search.
func TestTwoSupportCircles(t *testing.T) {
	centers := clusteredCenters(7, 7)
	sp, err := NewSpace(centers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.CheckDegree(sp); err != nil {
		t.Fatal(err)
	}
	if _, err := core.CheckMultiplicity(sp); err != nil {
		t.Fatal(err)
	}
	all := make([]int, len(centers))
	for i := range all {
		all[i] = i
	}
	if err := core.VerifySupport(sp, all); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateDepthCircles(t *testing.T) {
	centers := clusteredCenters(8, 14)
	sp, err := NewSpace(centers)
	if err != nil {
		t.Fatal(err)
	}
	order := pointgen.NewRNG(9).Perm(len(centers))
	g, err := core.Simulate(sp, order)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if k := core.MaxSupportUsed(g); k > 2 {
		t.Fatalf("support size %d > 2", k)
	}
	bound := stats.Theorem42MinSigma(3, 2) * stats.Harmonic(len(centers))
	if float64(g.MaxDepth) >= bound {
		t.Fatalf("depth %d >= %f", g.MaxDepth, bound)
	}
}

func TestErrorCases(t *testing.T) {
	if _, _, err := IntersectionBoundary([]geom.Point{{0, 0}, {0, 0}}); err == nil {
		t.Error("duplicate centers accepted")
	}
	if _, err := NewSpace([]geom.Point{{0, 0}, {3, 0}}); err == nil {
		t.Error("non-intersecting circles accepted by NewSpace")
	}
	if _, err := NewSpace([]geom.Point{{0, 0, 0}}); err == nil {
		t.Error("3D centers accepted")
	}
	// Disjoint circles in the oracle: empty intersection, no error.
	arcs, nonempty, err := IntersectionBoundary([]geom.Point{{0, 0}, {5, 0}})
	if err != nil || nonempty || len(arcs) != 0 {
		t.Errorf("disjoint: arcs=%v nonempty=%v err=%v", arcs, nonempty, err)
	}
	// Single circle: full boundary.
	arcs, nonempty, _ = IntersectionBoundary([]geom.Point{{0, 0}})
	if !nonempty || len(arcs) != 1 || arcs[0].Iv.Length != twoPi {
		t.Errorf("single circle: %+v", arcs)
	}
}
