package circles

import (
	"fmt"
	"math"

	"parhull/internal/geom"
)

// arcCfg is one configuration: an arc of the support circle bounded by one
// or two other circles.
type arcCfg struct {
	sup int
	def []int // sorted defining set (2 or 3 circle indices, incl sup)
	iv  Interval
}

// Space is the configuration space of unit-circle intersection (Section 7).
// It implements core.Space (plus engine.ConflictScanner) for the engine
// route, brute-force validation, and dependence-depth simulation.
type Space struct {
	centers []geom.Point
	cfgs    []arcCfg
	// pairIv[a][b] is the chord interval of circle a inside disk b — the one
	// quantity every conflict test needs. Retained from enumeration so
	// FirstConflict replaces chordInterval's trig per object with a lookup.
	pairIv [][]Interval
}

// NewSpace enumerates the arc configurations of the given unit-disk centers
// (distinct, pairwise distance < 2 so every pair of circles intersects —
// the regime the paper's incremental process assumes).
func NewSpace(centers []geom.Point) (*Space, error) {
	if err := geom.ValidateCloud(centers, 2); err != nil {
		return nil, err
	}
	n := len(centers)
	s := &Space{centers: centers}
	pairIv := make([][]Interval, n)
	for i := range pairIv {
		pairIv[i] = make([]Interval, n)
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			if centers[a].Equal(centers[b]) {
				return nil, fmt.Errorf("%w: duplicate centers %d and %d", ErrDegenerate, a, b)
			}
			iv, ok := chordInterval(centers[a], centers[b])
			if !ok {
				return nil, fmt.Errorf("%w: circles %d and %d (distance >= 2)", ErrDisjoint, a, b)
			}
			pairIv[a][b] = iv
		}
	}
	// Pair configurations: the arc of a inside b, for each ordered pair.
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			s.cfgs = append(s.cfgs, arcCfg{sup: a, def: []int{lo, hi}, iv: pairIv[a][b]})
		}
	}
	// Triple configurations: for support a and bounding circles {b, c}, the
	// arc of a inside both, when it is genuinely bounded by both (otherwise
	// it coincides with a pair configuration).
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if b == a {
				continue
			}
			for c := b + 1; c < n; c++ {
				if c == a {
					continue
				}
				segs := pairIv[a][b].Intersect(pairIv[a][c])
				for _, seg := range segs {
					if seg.Length <= eps || sameIv(seg, pairIv[a][b]) || sameIv(seg, pairIv[a][c]) {
						continue
					}
					def := []int{a, b, c}
					sortInts(def)
					s.cfgs = append(s.cfgs, arcCfg{sup: a, def: def, iv: seg})
				}
			}
		}
	}
	s.pairIv = pairIv
	return s, nil
}

func sameIv(a, b Interval) bool {
	return math.Abs(norm(a.Lo-b.Lo)) < eps && math.Abs(a.Length-b.Length) < eps
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Cfg exposes configuration c for tests: support circle and interval.
func (s *Space) Cfg(c int) (sup int, iv Interval) { return s.cfgs[c].sup, s.cfgs[c].iv }

// NumObjects implements core.Space.
func (s *Space) NumObjects() int { return len(s.centers) }

// NumConfigs implements core.Space.
func (s *Space) NumConfigs() int { return len(s.cfgs) }

// Defining implements core.Space.
func (s *Space) Defining(c int) []int { return s.cfgs[c].def }

// InConflict implements core.Space: circle x conflicts with arc c unless the
// arc lies entirely inside disk x.
func (s *Space) InConflict(c, x int) bool {
	cfg := s.cfgs[c]
	for _, o := range cfg.def {
		if o == x {
			return false
		}
	}
	iv, ok := chordInterval(s.centers[cfg.sup], s.centers[x])
	if !ok {
		return true // disjoint circles: the arc cannot be inside x
	}
	return !iv.ContainsInterval(cfg.iv)
}

// FirstConflict implements engine.ConflictScanner: the configuration decode
// (defining set, support row, arc interval) happens once; each object then
// costs one interval-containment check against the retained pairIv row
// instead of recomputing chordInterval's trigonometry.
func (s *Space) FirstConflict(c int, order []int) int {
	cfg := s.cfgs[c]
	row := s.pairIv[cfg.sup]
	d0 := cfg.def[0]
	d1 := cfg.def[1] // defining sets have 2 or 3 members
	d2 := -1
	if len(cfg.def) > 2 {
		d2 = cfg.def[2]
	}
	for r, o := range order {
		if o == d0 || o == d1 || o == d2 {
			continue
		}
		if !row[o].ContainsInterval(cfg.iv) {
			return r
		}
	}
	return len(order)
}

// Arcs converts alive configuration indices (engine.SpaceResult.Alive) into
// boundary arcs.
func (s *Space) Arcs(alive []int) []Arc {
	arcs := make([]Arc, 0, len(alive))
	for _, c := range alive {
		cfg := s.cfgs[c]
		arcs = append(arcs, Arc{Circle: cfg.sup, Iv: cfg.iv})
	}
	return arcs
}

// Degree implements core.Space: g = 3 (triples).
func (s *Space) Degree() int { return 3 }

// Multiplicity implements core.Space: at most 3 arcs share a defining set.
func (s *Space) Multiplicity() int { return 3 }

// BaseSize implements core.Space: two circles form the first lens.
func (s *Space) BaseSize() int { return 2 }

// MaxSupport implements core.Space: k = 2 (Section 7).
func (s *Space) MaxSupport() int { return 2 }
