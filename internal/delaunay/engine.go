package delaunay

// This file adapts 2D Delaunay triangulation to the generic Algorithm-3
// driver in internal/engine, mirroring the hulld kernel layout: triangles
// are the facets, a ridge is a sorted 2-vertex edge, and a new triangle has
// two fresh edges — those containing the pivot. The in-circle predicate
// rides the same filtered-fast-path discipline as the hull kernels, via the
// classic lifting map: L(q) = (q_x, q_y, q_x^2 + q_y^2) sends circles to
// planes, so "q strictly inside the circumcircle of CCW (a, b, c)" becomes
// "L(q) strictly below the plane through L(a), L(b), L(c)" — one cached
// 3-term dot product per test, with the exact geom.InCircle predicate as
// the fallback whenever the static certificate cannot decide the sign.
//
// The certification threshold cannot be one global constant here: the
// bounding-triangle vertices sit at ~4096x the input radius and the lift
// squares coordinates, so a cloud-wide bound would be inflated by ~4096^4
// and never certify anything. Instead each triangle carries a per-facet
// threshold eps_f = 2 * StaticFilterEps({1,1,1}) * X*Y*Z, where X, Y, Z are
// per-axis maxima over the triangle's own lifted vertices and the lifted
// input points (conflict candidates are always input points). The extra
// factor 2 absorbs the lift's own rounding (z = x^2+y^2 is evaluated in
// float, perturbing the plane and the test point by O(u * X*Y*Z), far below
// the static formula's 912u * X*Y*Z).
//
// Two structural deviations from the hull kernels:
//
//   - The three edges of the bounding triangle have only one incident
//     triangle each. Three static sentinel triangles {a, b, -1} with empty
//     conflict sets stand in for the missing neighbors, restoring the
//     driver's two-facets-per-ridge invariant. A sentinel's pivot is NoPivot,
//     so it is never the replaced facet and never killed (the equal-pivot
//     branch requires both pivots NoPivot, which finalizes instead), and it
//     is never recorded, so it cannot leak into results.
//   - Conflict containment across a bounding edge, C(new) ⊆ C(t1) ∪ ∅,
//     holds because every input point is strictly inside the bounding
//     triangle (guaranteed by the 4096x margin): circles through a common
//     chord form a pencil whose inner caps nest, and no input point lies on
//     the outer side of a bounding edge. This is the same containment the
//     seed Triangulate already relies on for boundary cavity edges.

import (
	"fmt"
	"math"
	"sort"

	"parhull/internal/conflict"
	eng "parhull/internal/engine"
	"parhull/internal/facetlog"
	"parhull/internal/geom"
	"parhull/internal/hullstats"
	"parhull/internal/sched"
)

// arena is this kernel's per-worker allocator: the generic bump arena
// instantiated at the triangle type.
type arena = eng.Arena[Triangle]

// kernel adapts the Delaunay geometry to the generic Algorithm-3 driver.
type kernel struct{ e *dEngine }

// Pivot implements engine.Kernel.
func (k kernel) Pivot(t *Triangle) int32 {
	if len(t.Conf) == 0 {
		return eng.NoPivot
	}
	return t.Conf[0]
}

// NewFacet implements engine.Kernel.
func (k kernel) NewFacet(a *arena, r []int32, p int32, t1, t2 *Triangle, round int32) (*Triangle, error) {
	return k.e.newTriangle(a, r, p, t1, t2, round)
}

// FreshRidges implements engine.Kernel: the fresh edges of the new triangle
// t (built on ridge r with pivot p) are the two edges containing p. Both
// 2-vertex edges carve from one arena block reservation; the slices are
// immutable once published, so sharing a backing array is safe.
func (k kernel) FreshRidges(a *arena, t *Triangle, r []int32, buf [][]int32) [][]int32 {
	p := t.Verts[0] + t.Verts[1] + t.Verts[2] - r[0] - r[1]
	s := a.IntsLen(4)
	r0, r1 := s[0:2:2], s[2:4:4]
	fillEdge(r0, r[0], p)
	fillEdge(r1, r[1], p)
	return append(buf, r0, r1)
}

// Kill implements engine.Kernel.
func (k kernel) Kill(t *Triangle) bool { return t.kill() }

// fillEdge writes the sorted edge (a, b) into dst.
func fillEdge(dst []int32, a, b int32) {
	if a < b {
		dst[0], dst[1] = a, b
	} else {
		dst[0], dst[1] = b, a
	}
}

// dEngine carries the per-construction state of the engine paths: the point
// set extended with the bounding vertices, the flat lifted coordinates of
// the in-circle fast path, and the recording plumbing.
type dEngine struct {
	all  []geom.Point // input points plus the three bounding vertices
	n    int          // input count
	lift []float64    // lifted coordinates (x, y, x^2+y^2), stride 3
	pred bool         // lifted-plane predicate cache enabled
	// inMax is the per-axis maximum absolute lifted coordinate over the
	// input points — the conflict candidates every plane is evaluated on.
	inMax [3]float64
	// eps3 is 2 * StaticFilterEps({1,1,1}): the scale-free coefficient of
	// the per-facet certification threshold.
	eps3  float64
	grain int
	batch bool
	rec   *hullstats.Recorder

	log *facetlog.Log[*Triangle] // every triangle ever created
}

// newDEngine validates pts (same checks, same typed errors as Triangulate)
// and assembles the engine state.
func newDEngine(pts []geom.Point, counters bool, grain, stripes int, noPred, batch bool) (*dEngine, error) {
	all, err := validateAndBound(pts)
	if err != nil {
		return nil, err
	}
	e := &dEngine{
		all:   all,
		n:     len(pts),
		grain: grain,
		batch: batch,
		rec:   hullstats.NewRecorder(counters),
		log:   facetlog.New[*Triangle](stripes),
	}
	if !noPred {
		e.lift = make([]float64, 3*len(all))
		ok := true
		for i, p := range all {
			z := p[0]*p[0] + p[1]*p[1]
			e.lift[3*i] = p[0]
			e.lift[3*i+1] = p[1]
			e.lift[3*i+2] = z
			if math.IsInf(z, 0) {
				ok = false // the squared bounding radius overflowed
			}
			if i < len(pts) {
				e.inMax[0] = math.Max(e.inMax[0], math.Abs(p[0]))
				e.inMax[1] = math.Max(e.inMax[1], math.Abs(p[1]))
				e.inMax[2] = math.Max(e.inMax[2], z)
			}
		}
		e.pred = ok
		e.eps3 = 2 * geom.StaticFilterEps([]float64{1, 1, 1})
	}
	e.rec.SetPlaneCache(e.pred)
	e.rec.MarkHeapBase()
	return e, nil
}

// liftRow returns the lifted coordinates of vertex v.
func (e *dEngine) liftRow(v int32) []float64 {
	o := 3 * int(v)
	return e.lift[o : o+3 : o+3]
}

// makeTri assembles a triangle on (va, vb, vc), normalized to CCW order
// with the smallest vertex first (so the vertex tuple is deterministic
// across schedules), and caches its negated lifted plane: after negation,
// conflict ⇔ Eval(L(q)) > 0, certified when |Eval| clears the per-facet
// threshold. Negating N and Off is exact in IEEE arithmetic, so the
// uncertain band is bit-identical to the un-negated plane's.
func (e *dEngine) makeTri(a *arena, va, vb, vc int32) (*Triangle, error) {
	o := geom.Orient2D(e.all[va], e.all[vb], e.all[vc])
	if o == 0 {
		return nil, fmt.Errorf("%w: collinear triangle (%d %d %d)", ErrDegenerate, va, vb, vc)
	}
	if o < 0 {
		vb, vc = vc, vb
	}
	// Rotate the CCW cycle so the smallest index leads.
	switch {
	case vb < va && vb < vc:
		va, vb, vc = vb, vc, va
	case vc < va && vc < vb:
		va, vb, vc = vc, va, vb
	}
	t := a.Facet()
	t.Verts = [3]int32{va, vb, vc}
	if e.pred {
		la, lb, lc := e.liftRow(va), e.liftRow(vb), e.liftRow(vc)
		var buf [3]geom.Point
		buf[0], buf[1], buf[2] = geom.Point(la), geom.Point(lb), geom.Point(lc)
		var epsf float64 = e.eps3
		for j := 0; j < 3; j++ {
			m := math.Max(e.inMax[j], math.Max(math.Abs(la[j]), math.Max(math.Abs(lb[j]), math.Abs(lc[j]))))
			epsf *= m
		}
		if !math.IsInf(epsf, 0) {
			p := geom.NewFacetPlane(buf[:], epsf)
			// For CCW (va, vb, vc) the lifted normal points up (its z
			// component is twice the signed area), so inside-circumcircle is
			// Eval < 0; negate so the filter loops test Eval > Eps.
			p.N[0], p.N[1], p.N[2] = -p.N[0], -p.N[1], -p.N[2]
			p.Off = -p.Off
			t.plane = p
		}
	}
	return t, nil
}

// conflict reports whether input point v is strictly inside t's
// circumcircle, counting the test. The cached lifted plane decides almost
// every call; geom.InCircle is the exact fallback, so the answer is exact.
func (e *dEngine) conflict(v int32, t *Triangle) bool {
	e.rec.VTests.Inc(uint64(v))
	if t.plane.Valid() {
		s := t.plane.Eval(e.liftRow(v))
		if s > t.plane.Eps {
			return true
		}
		if s < -t.plane.Eps {
			return false
		}
		e.rec.Fallbacks.Inc(uint64(v))
	}
	return e.exactConflict(v, t)
}

// exactConflict is the exact in-circle predicate with no counting — the
// shared tail of conflict() and the batch filter's uncertain-sidecar
// resolution. Verts are CCW, so InCircle is +1 strictly inside.
func (e *dEngine) exactConflict(v int32, t *Triangle) bool {
	return geom.InCircle(e.all[t.Verts[0]], e.all[t.Verts[1]], e.all[t.Verts[2]], e.all[v]) > 0
}

func (e *dEngine) record(t *Triangle) {
	e.rec.Created(t.Depth)
	k := (uint32(t.Verts[0])*31+uint32(t.Verts[1]))*31 + uint32(t.Verts[2])
	e.log.Append(k, t)
}

// newTriangle builds the triangle joining edge r with pivot p, supported by
// (t1, t2), filtering the conflict list per line 16 of Algorithm 3 (t2 may
// be an outer sentinel, whose conflict list is empty).
func (e *dEngine) newTriangle(a *arena, r []int32, p int32, t1, t2 *Triangle, round int32) (*Triangle, error) {
	t, err := e.makeTri(a, r[0], r[1], p)
	if err != nil {
		return nil, err
	}
	t.Depth = 1 + max(t1.Depth, t2.Depth)
	t.Round = round
	t.Conf = e.mergeFilter(a, t1.Conf, t2.Conf, p, t)
	e.record(t)
	return t, nil
}

// mergeFilter merges the two ascending conflict lists, drops p, and keeps
// the points inside t's circumcircle, through the driver's shared
// grain/arena discipline. The batch path runs fused: merge and
// classification in one pass over the flat lifted coordinates.
func (e *dEngine) mergeFilter(a *arena, c1, c2 []int32, p int32, t *Triangle) []int32 {
	if e.batch {
		return eng.MergeFilterFused(a, c1, c2, p, triFilter{e: e, t: t}, e.grain)
	}
	keep := func(v int32) bool { return e.conflict(v, t) }
	return eng.MergeFilter(a, c1, c2, p, keep, e.grain)
}

// initial builds the bounding-triangle root with its conflict list over
// every input point, the three outer sentinels, and the three root edges
// (the initial ridge tasks pair the root with one sentinel per edge).
func (e *dEngine) initial() (root *Triangle, outers [3]*Triangle, edges [3][]int32, err error) {
	n := e.n
	root, err = e.makeTri(nil, int32(n), int32(n+1), int32(n+2))
	if err != nil {
		return nil, outers, edges, err
	}
	if e.batch {
		root.Conf = conflict.BuildFilterInto(0, int32(n), triFilter{e: e, t: root}, e.grain, nil)
	} else {
		root.Conf = conflict.Build(0, int32(n), func(v int32) bool { return e.conflict(v, root) }, e.grain)
	}
	if len(root.Conf) != n {
		// Ascending subset of [0, n): the first index where Conf[i] != i is
		// the first point outside the root circumcircle (same error as the
		// seed; unreachable for finite inputs given the 4096x margin).
		esc := int32(len(root.Conf))
		for i, v := range root.Conf {
			if v != int32(i) {
				esc = int32(i)
				break
			}
		}
		return nil, outers, edges, fmt.Errorf("delaunay: point %d escapes the bounding triangle", esc)
	}
	e.record(root)
	for k := 0; k < 3; k++ {
		a, b := root.Verts[k], root.Verts[(k+1)%3]
		edge := make([]int32, 2)
		fillEdge(edge, a, b)
		edges[k] = edge
		outers[k] = &Triangle{Verts: [3]int32{a, b, -1}}
	}
	return root, outers, edges, nil
}

// collectResult gathers alive triangles and validates the tiling of the
// bounding triangle: every edge of an alive triangle is shared by exactly
// two alive triangles, except the three bounding edges (one each).
func (e *dEngine) collectResult(rounds int) (*Result, error) {
	e.rec.SampleHeap()
	res := &Result{Created: e.log.Snapshot()}
	n := e.n
	edgeCount := make(map[[2]int32]int32, 2*len(res.Created))
	for _, t := range res.Created {
		if !t.Alive() {
			continue
		}
		if !t.Synthetic(n) {
			res.Triangles = append(res.Triangles, t)
		}
		for k := 0; k < 3; k++ {
			a, b := t.Verts[k], t.Verts[(k+1)%3]
			if a > b {
				a, b = b, a
			}
			edgeCount[[2]int32{a, b}]++
		}
	}
	for k, c := range edgeCount {
		want := int32(2)
		if int(k[0]) >= n && int(k[1]) >= n {
			want = 1 // bounding-triangle edge: the sentinel is not counted
		}
		if c != want {
			return nil, fmt.Errorf("delaunay: edge %v shared by %d alive triangles, want %d", k, c, want)
		}
	}
	sort.Slice(res.Triangles, func(i, j int) bool {
		a, b := res.Triangles[i].Verts, res.Triangles[j].Verts
		for k := 0; k < 3; k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	res.Stats = e.rec.Snapshot(rounds, len(res.Triangles))
	return res, nil
}

// parStripes is the facet-log stripe count for the concurrent engines.
func parStripes() int { return 4 * sched.Workers() }
