package delaunay

import (
	"context"
	"errors"
	"testing"

	"parhull/internal/geom"
	"parhull/internal/leakcheck"
	"parhull/internal/pointgen"
	"parhull/internal/sched"
)

// triKey is the canonical identity of a triangle: its sorted vertex triple.
func triKey(t *Triangle) [3]int32 {
	k := t.Verts
	if k[0] > k[1] {
		k[0], k[1] = k[1], k[0]
	}
	if k[1] > k[2] {
		k[1], k[2] = k[2], k[1]
	}
	if k[0] > k[1] {
		k[0], k[1] = k[1], k[0]
	}
	return k
}

func createdSet(created []*Triangle) map[[3]int32]int {
	m := make(map[[3]int32]int, len(created))
	for _, t := range created {
		m[triKey(t)]++
	}
	return m
}

func aliveSet(res *Result) map[[3]int32]bool {
	m := make(map[[3]int32]bool, len(res.Triangles))
	for _, t := range res.Triangles {
		m[triKey(t)] = true
	}
	return m
}

func sameMultiset(t *testing.T, name string, got, want map[[3]int32]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d distinct created triangles, want %d", name, len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("%s: triangle %v created %d times, want %d", name, k, got[k], c)
		}
	}
}

// TestEngineMatchesTriangulate checks the tentpole identity: every engine
// schedule (Seq, Par on both substrates, Rounds) creates exactly the seed
// Triangulate's triangle multiset and ends with the same alive set — and
// the ablations (no predicate cache, no batch filter) change nothing.
func TestEngineMatchesTriangulate(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 400} {
		pts := pointgen.InCube(pointgen.NewRNG(int64(7+n)), n, 2)
		ref, err := Triangulate(pts)
		if err != nil {
			t.Fatalf("n=%d Triangulate: %v", n, err)
		}
		want := createdSet(ref.Created)
		wantAlive := aliveSet(ref)
		runs := []struct {
			name string
			run  func() (*Result, error)
		}{
			{"seq", func() (*Result, error) { return Seq(pts, nil) }},
			{"seq-exact", func() (*Result, error) { return Seq(pts, &Options{NoPredCache: true}) }},
			{"seq-closure", func() (*Result, error) { return Seq(pts, &Options{NoBatchFilter: true}) }},
			{"par-steal", func() (*Result, error) { return Par(pts, nil) }},
			{"par-steal-w1", func() (*Result, error) { return Par(pts, &Options{Workers: 1}) }},
			{"par-group", func() (*Result, error) { return Par(pts, &Options{Sched: sched.KindGroup}) }},
			{"par-exact", func() (*Result, error) { return Par(pts, &Options{NoPredCache: true}) }},
			{"rounds", func() (*Result, error) { return Rounds(pts, nil) }},
		}
		for _, r := range runs {
			res, err := r.run()
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, r.name, err)
			}
			sameMultiset(t, r.name, createdSet(res.Created), want)
			got := aliveSet(res)
			if len(got) != len(wantAlive) {
				t.Fatalf("n=%d %s: %d alive triangles, want %d", n, r.name, len(got), len(wantAlive))
			}
			for k := range wantAlive {
				if !got[k] {
					t.Fatalf("n=%d %s: alive triangle %v missing", n, r.name, k)
				}
			}
		}
	}
}

// TestEngineEmptyCircumcircle checks the engine output satisfies the
// defining Delaunay property against the exact predicate.
func TestEngineEmptyCircumcircle(t *testing.T) {
	pts := pointgen.UniformBall(pointgen.NewRNG(11), 250, 2)
	res, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triangles) == 0 {
		t.Fatal("no triangles")
	}
	for _, tr := range res.Triangles {
		a, b, c := pts[tr.Verts[0]], pts[tr.Verts[1]], pts[tr.Verts[2]]
		if geom.Orient2D(a, b, c) <= 0 {
			t.Fatalf("triangle %v not CCW", tr)
		}
		if len(tr.Conf) != 0 {
			t.Fatalf("alive triangle %v has conflicts", tr)
		}
		for p := range pts {
			if geom.InCircle(a, b, c, pts[p]) > 0 {
				t.Fatalf("point %d strictly inside circumcircle of %v", p, tr)
			}
		}
	}
}

// TestLiftedFilterMatchesExactInCircle is the predicate property test: on
// every created triangle of a run, the cached lifted-plane classification
// (where it certifies) must agree with the exact InCircle sign, and the
// pointwise conflict() answer must equal the exact answer everywhere.
func TestLiftedFilterMatchesExactInCircle(t *testing.T) {
	pts := pointgen.Clustered(pointgen.NewRNG(13), 300, 2, 5, 1e-3)
	e, err := newDEngine(pts, false, 0, 1, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if !e.pred {
		t.Fatal("predicate cache unexpectedly off")
	}
	res, err := Par(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	certified, fallbacks := 0, 0
	for _, tr := range res.Created {
		probe, terr := e.makeTri(nil, tr.Verts[0], tr.Verts[1], tr.Verts[2])
		if terr != nil {
			t.Fatalf("makeTri(%v): %v", tr.Verts, terr)
		}
		if !probe.plane.Valid() {
			t.Fatalf("triangle %v has no cached plane", tr.Verts)
		}
		for v := int32(0); v < int32(len(pts)); v++ {
			exact := e.exactConflict(v, probe)
			s := probe.plane.Eval(e.liftRow(v))
			switch {
			case s > probe.plane.Eps:
				if !exact {
					t.Fatalf("triangle %v point %d: filter certifies conflict, exact says no", tr.Verts, v)
				}
				certified++
			case s < -probe.plane.Eps:
				if exact {
					t.Fatalf("triangle %v point %d: filter certifies no conflict, exact says yes", tr.Verts, v)
				}
				certified++
			default:
				fallbacks++
			}
			if e.conflict(v, probe) != exact {
				t.Fatalf("triangle %v point %d: conflict() != exact", tr.Verts, v)
			}
		}
	}
	if certified == 0 {
		t.Fatal("the static filter certified nothing — the per-facet threshold is broken")
	}
	if fallbacks > certified/10 {
		t.Fatalf("filter fell back %d of %d tests — threshold far too pessimistic", fallbacks, certified+fallbacks)
	}
}

// TestEngineDegenerate checks the typed-error contract of the engine paths.
func TestEngineDegenerate(t *testing.T) {
	dup := []geom.Point{{0, 0}, {1, 0}, {0, 0}}
	for _, run := range []func() (*Result, error){
		func() (*Result, error) { return Seq(dup, nil) },
		func() (*Result, error) { return Par(dup, nil) },
		func() (*Result, error) { return Rounds(dup, nil) },
	} {
		if _, err := run(); !errors.Is(err, ErrDegenerate) {
			t.Fatalf("duplicate points: err = %v, want ErrDegenerate", err)
		}
	}
	if _, err := Par(nil, nil); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("empty input: err = %v, want ErrDegenerate", err)
	}
}

// TestEngineCancellation cancels mid-flight and up front; all pools must
// quiesce (leakcheck) and the typed context error must surface.
func TestEngineCancellation(t *testing.T) {
	leakcheck.Check(t)
	pts := pointgen.UniformBall(pointgen.NewRNG(17), 4000, 2)
	for _, kind := range []sched.Kind{sched.KindSteal, sched.KindGroup} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := Par(pts, &Options{Ctx: ctx, Sched: kind}); !errors.Is(err, context.Canceled) {
			t.Fatalf("kind=%v pre-canceled Par: err = %v, want context.Canceled", kind, err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Rounds(pts, &Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Rounds: err = %v, want context.Canceled", err)
	}
	if _, err := Seq(pts, &Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Seq: err = %v, want context.Canceled", err)
	}
}
