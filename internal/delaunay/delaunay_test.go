package delaunay

import (
	"math"
	"testing"

	"parhull/internal/core"
	"parhull/internal/geom"
	"parhull/internal/pointgen"
	"parhull/internal/stats"
)

func TestDelaunayProperty(t *testing.T) {
	pts := pointgen.UniformBall(pointgen.NewRNG(1), 300, 2)
	res, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triangles) == 0 {
		t.Fatal("no triangles")
	}
	for _, tr := range res.Triangles {
		a, b, c := pts[tr.Verts[0]], pts[tr.Verts[1]], pts[tr.Verts[2]]
		if geom.Orient2D(a, b, c) <= 0 {
			t.Fatalf("triangle %v not CCW", tr)
		}
		if len(tr.Conf) != 0 {
			t.Fatalf("alive triangle %v has conflicts", tr)
		}
		for p := range pts {
			if geom.InCircle(a, b, c, pts[p]) > 0 {
				t.Fatalf("point %d strictly inside circumcircle of %v", p, tr)
			}
		}
	}
}

func TestEdgeAdjacency(t *testing.T) {
	pts := pointgen.InCube(pointgen.NewRNG(2), 200, 2)
	res, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	count := map[[2]int32]int{}
	for _, tr := range res.Triangles {
		for e := 0; e < 3; e++ {
			a, b := tr.Verts[e], tr.Verts[(e+1)%3]
			if a > b {
				a, b = b, a
			}
			count[[2]int32{a, b}]++
		}
	}
	for e, c := range count {
		if c > 2 {
			t.Fatalf("edge %v shared by %d triangles", e, c)
		}
	}
	// Triangle count sanity: a triangulation of n points has ~2n triangles;
	// the bounding-triangle artifact only trims near the hull.
	if len(res.Triangles) < len(pts) {
		t.Fatalf("only %d triangles for %d points", len(res.Triangles), len(pts))
	}
}

// TestAgainstBruteForce: the engine output equals the set of non-synthetic
// triangles of the exact Delaunay triangulation of input + bounding points.
func TestAgainstBruteForce(t *testing.T) {
	pts := pointgen.UniformBall(pointgen.NewRNG(3), 25, 2)
	res, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the synthetic points exactly as Triangulate does.
	r := 1.0
	for _, p := range pts {
		r = math.Max(r, math.Max(math.Abs(p[0]), math.Abs(p[1])))
	}
	r *= 1 << 12
	all := append(append([]geom.Point{}, pts...),
		geom.Point{0, 3 * r}, geom.Point{-3 * r, -2 * r}, geom.Point{3 * r, -2 * r})
	want := map[[3]int32]bool{}
	n := len(pts)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				empty := true
				for p := range all {
					if p == i || p == j || p == k {
						continue
					}
					s := geom.InCircle(all[i], all[j], all[k], all[p])
					if geom.Orient2D(all[i], all[j], all[k]) < 0 {
						s = -s
					}
					if s > 0 {
						empty = false
						break
					}
				}
				if empty {
					want[[3]int32{int32(i), int32(j), int32(k)}] = true
				}
			}
		}
	}
	if len(res.Triangles) != len(want) {
		t.Fatalf("engine %d triangles, brute force %d", len(res.Triangles), len(want))
	}
	for _, tr := range res.Triangles {
		v := tr.Verts
		key := [3]int32{v[0], v[1], v[2]}
		sort3(&key)
		if !want[key] {
			t.Fatalf("engine triangle %v not Delaunay by brute force", v)
		}
	}
}

func sort3(a *[3]int32) {
	if a[0] > a[1] {
		a[0], a[1] = a[1], a[0]
	}
	if a[1] > a[2] {
		a[1], a[2] = a[2], a[1]
	}
	if a[0] > a[1] {
		a[0], a[1] = a[1], a[0]
	}
}

func TestDepthLogarithmic(t *testing.T) {
	rng := pointgen.NewRNG(4)
	sigma := stats.Theorem42MinSigma(3, 2)
	for _, n := range []int{100, 1000, 5000} {
		pts := pointgen.Shuffled(rng, pointgen.UniformBall(rng, n, 2))
		res, err := Triangulate(pts)
		if err != nil {
			t.Fatal(err)
		}
		if bound := sigma * stats.Harmonic(n); float64(res.Stats.MaxDepth) >= bound {
			t.Fatalf("n=%d: depth %d >= bound %.1f", n, res.Stats.MaxDepth, bound)
		}
	}
}

func TestTwoSupportDelaunay(t *testing.T) {
	// 2-support of the Delaunay space (with a bounding triangle present so
	// cavities are always interior), verified exhaustively.
	inner := pointgen.UniformBall(pointgen.NewRNG(5), 6, 2)
	pts := append([]geom.Point{{0, 8}, {-8, -6}, {8, -6}}, inner...)
	sp, err := NewSpace(pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.CheckDegree(sp); err != nil {
		t.Fatal(err)
	}
	if _, err := core.CheckMultiplicity(sp); err != nil {
		t.Fatal(err)
	}
	y := make([]int, len(pts))
	for i := range y {
		y[i] = i
	}
	// 2-support holds for every (pi, x) with x an input point; removing a
	// bounding vertex itself exposes the triangulation boundary, which the
	// paper's cited prior work handles with dedicated boundary
	// configurations (we pin the bounding triangle in the base prefix
	// instead, so the incremental process never needs those supports).
	act := core.Active(sp, y)
	for _, pi := range act {
		for _, x := range sp.Defining(pi) {
			if x < 3 {
				continue // bounding vertex
			}
			rest := make([]int, 0, len(y)-1)
			for _, o := range y {
				if o != x {
					rest = append(rest, o)
				}
			}
			prev := core.Active(sp, rest)
			phi, ok := core.FindSupport(sp, pi, x, prev)
			if !ok {
				t.Fatalf("no support for config %d, input point %d", pi, x)
			}
			if len(phi) > 2 {
				t.Fatalf("support size %d > 2", len(phi))
			}
		}
	}
	g, err := core.Simulate(sp, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if k := core.MaxSupportUsed(g); k > 2 {
		t.Fatalf("support size %d > 2", k)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Triangulate(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Triangulate([]geom.Point{{0, 0}, {0, 0}}); err == nil {
		t.Error("duplicates accepted")
	}
	if _, err := Triangulate([]geom.Point{{math.NaN(), 0}}); err == nil {
		t.Error("NaN accepted")
	}
	// A single point triangulates trivially (no output triangles).
	res, err := Triangulate([]geom.Point{{0.25, 0.5}})
	if err != nil || len(res.Triangles) != 0 {
		t.Errorf("single point: %v, %d triangles", err, len(res.Triangles))
	}
}

func TestDeterminism(t *testing.T) {
	pts := pointgen.UniformBall(pointgen.NewRNG(6), 500, 2)
	a, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.FacetsCreated != b.Stats.FacetsCreated || a.Stats.MaxDepth != b.Stats.MaxDepth ||
		len(a.Triangles) != len(b.Triangles) {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Stats, b.Stats)
	}
}
