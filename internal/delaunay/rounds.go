package delaunay

import (
	eng "parhull/internal/engine"
	"parhull/internal/geom"
)

// Rounds computes the Delaunay triangulation with Algorithm 3 under the
// round-synchronous schedule of Theorem 5.4 (engine.Rounds): each ready
// ProcessRidge call executes one step per round with a global barrier
// between rounds, so Stats.Rounds is the recursion depth of the dependence
// structure and Stats.RoundWidths the per-round ready frontier.
func Rounds(pts []geom.Point, opt *Options) (*Result, error) {
	e, err := newDEngine(pts, opt.counters(), opt.filterGrain(), parStripes(), opt.noPredCache(), opt.batchFilter())
	if err != nil {
		return nil, err
	}
	root, outers, edges, err := e.initial()
	if err != nil {
		return nil, err
	}
	initial := make([]eng.Task[Triangle, []int32], 0, 3)
	for k := 0; k < 3; k++ {
		initial = append(initial, eng.Task[Triangle, []int32]{T1: root, R: edges[k], T2: outers[k]})
	}
	rounds, widths, err := eng.Rounds(opt.config(e), initial, nil)
	if err != nil {
		return nil, err
	}
	res, err := e.collectResult(rounds)
	if err != nil {
		return nil, err
	}
	res.Stats.RoundWidths = widths
	return res, nil
}
