package delaunay

// This file implements the kernel's batch in-circle filter — the
// conflict.Filter side of the merge/filter pipeline, mirroring the hulld
// batch filter (DESIGN.md §4.3) over the flat lifted coordinates. The
// triangle's negated lifted plane sits in registers and each candidate
// costs one 3-term dot product; candidates the per-facet certificate cannot
// decide collect into a small stack sidecar and resolve through the exact
// geom.InCircle predicate after the loop, then merge back in position, so
// the survivor list is byte-identical to the pointwise path.

// uncertainCap is the stack capacity of the per-batch uncertain sidecar.
const uncertainCap = 24

// triFilter binds the engine and one triangle as the batch filter of that
// triangle's in-circle predicate. Passed by value through the generic
// merge-filter entry points, so the hot path performs no interface boxing.
type triFilter struct {
	e *dEngine
	t *Triangle
}

// Filter implements conflict.Filter.
func (tf triFilter) Filter(cands []int32, dst []int32) []int32 {
	return tf.e.filterConflict(tf.t, cands, dst)
}

// FilterRange implements conflict.Filter.
func (tf triFilter) FilterRange(from, to int32, dst []int32) []int32 {
	return tf.e.filterConflictRange(tf.t, from, to, dst)
}

// FilterMerge implements conflict.FusedFilter.
func (tf triFilter) FilterMerge(c1, c2 []int32, drop int32, dst []int32) []int32 {
	return tf.e.filterConflictMerge(tf.t, c1, c2, drop, dst)
}

// filterConflict appends to dst the candidates strictly inside t's
// circumcircle, in order — the batch equivalent of appending every v with
// conflict(v, t), with identical survivors and counter totals (tests
// counted per batch, fallbacks per sidecar entry).
func (e *dEngine) filterConflict(t *Triangle, cands []int32, dst []int32) []int32 {
	if len(cands) == 0 {
		return dst
	}
	e.rec.VTests.Add(uint64(cands[0]), int64(len(cands)))
	if !t.plane.Valid() {
		for _, v := range cands {
			if e.exactConflict(v, t) {
				dst = append(dst, v)
			}
		}
		return dst
	}
	base := len(dst)
	var ubuf [uncertainCap]int32
	uncertain := ubuf[:0]
	n0, n1, n2 := t.plane.N[0], t.plane.N[1], t.plane.N[2]
	off, eps := t.plane.Off, t.plane.Eps
	c := e.lift
	for _, v := range cands {
		o := int(v) * 3
		x := c[o : o+3 : o+3]
		s := n0*x[0] + n1*x[1] + n2*x[2] - off
		if s > eps {
			dst = append(dst, v)
		} else if s >= -eps {
			uncertain = append(uncertain, v)
		}
	}
	if len(uncertain) == 0 {
		return dst
	}
	return e.resolveUncertain(t, dst, base, uncertain)
}

// filterConflictRange is filterConflict over the contiguous candidates
// [from, to), streaming the lifted rows sequentially.
func (e *dEngine) filterConflictRange(t *Triangle, from, to int32, dst []int32) []int32 {
	if to <= from {
		return dst
	}
	e.rec.VTests.Add(uint64(from), int64(to-from))
	if !t.plane.Valid() {
		for v := from; v < to; v++ {
			if e.exactConflict(v, t) {
				dst = append(dst, v)
			}
		}
		return dst
	}
	base := len(dst)
	var ubuf [uncertainCap]int32
	uncertain := ubuf[:0]
	n0, n1, n2 := t.plane.N[0], t.plane.N[1], t.plane.N[2]
	off, eps := t.plane.Off, t.plane.Eps
	c := e.lift
	o := int(from) * 3
	for v := from; v < to; v++ {
		x := c[o : o+3 : o+3]
		o += 3
		s := n0*x[0] + n1*x[1] + n2*x[2] - off
		if s > eps {
			dst = append(dst, v)
		} else if s >= -eps {
			uncertain = append(uncertain, v)
		}
	}
	if len(uncertain) == 0 {
		return dst
	}
	return e.resolveUncertain(t, dst, base, uncertain)
}

// filterConflictMerge fuses the ascending merge of two conflict lists with
// the in-circle classification: each candidate is tested the moment the
// two-pointer merge produces it, so the merged run is never materialized.
func (e *dEngine) filterConflictMerge(t *Triangle, c1, c2 []int32, drop int32, dst []int32) []int32 {
	if len(c1)+len(c2) == 0 {
		return dst
	}
	// Any shard key works for the per-batch counter adds: the key only
	// selects a stripe and Load sums all stripes.
	var key uint64
	if len(c1) > 0 {
		key = uint64(c1[0])
	} else {
		key = uint64(c2[0])
	}
	var tested int64
	if !t.plane.Valid() {
		i, j := 0, 0
		for i < len(c1) && j < len(c2) {
			v := c1[i]
			if v < c2[j] {
				i++
			} else if v > c2[j] {
				v = c2[j]
				j++
			} else {
				i++
				j++
			}
			if v == drop {
				continue
			}
			tested++
			if e.exactConflict(v, t) {
				dst = append(dst, v)
			}
		}
		tail := c1[i:]
		if j < len(c2) {
			tail = c2[j:]
		}
		for _, v := range tail {
			if v == drop {
				continue
			}
			tested++
			if e.exactConflict(v, t) {
				dst = append(dst, v)
			}
		}
		if tested > 0 {
			e.rec.VTests.Add(key, tested)
		}
		return dst
	}
	base := len(dst)
	var ubuf [uncertainCap]int32
	uncertain := ubuf[:0]
	n0, n1, n2 := t.plane.N[0], t.plane.N[1], t.plane.N[2]
	off, eps := t.plane.Off, t.plane.Eps
	c := e.lift
	i, j := 0, 0
	for i < len(c1) && j < len(c2) {
		v := c1[i]
		if v < c2[j] {
			i++
		} else if v > c2[j] {
			v = c2[j]
			j++
		} else {
			i++
			j++
		}
		if v == drop {
			continue
		}
		tested++
		o := int(v) * 3
		x := c[o : o+3 : o+3]
		s := n0*x[0] + n1*x[1] + n2*x[2] - off
		if s > eps {
			dst = append(dst, v)
		} else if s >= -eps {
			uncertain = append(uncertain, v)
		}
	}
	tail := c1[i:]
	if j < len(c2) {
		tail = c2[j:]
	}
	for _, v := range tail {
		if v == drop {
			continue
		}
		tested++
		o := int(v) * 3
		x := c[o : o+3 : o+3]
		s := n0*x[0] + n1*x[1] + n2*x[2] - off
		if s > eps {
			dst = append(dst, v)
		} else if s >= -eps {
			uncertain = append(uncertain, v)
		}
	}
	if tested > 0 {
		e.rec.VTests.Add(key, tested)
	}
	if len(uncertain) == 0 {
		return dst
	}
	return e.resolveUncertain(t, dst, base, uncertain)
}

// resolveUncertain decides a batch's filter-uncertain candidates with the
// exact predicate and splices the survivors back into dst[base:]: the
// certain and uncertain survivors are disjoint ascending subsequences of
// one candidate run, so a backward merge by value restores order in place.
func (e *dEngine) resolveUncertain(t *Triangle, dst []int32, base int, uncertain []int32) []int32 {
	e.rec.Fallbacks.Add(uint64(uncertain[0]), int64(len(uncertain)))
	kept := uncertain[:0]
	for _, v := range uncertain {
		if e.exactConflict(v, t) {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		return dst
	}
	i := len(dst) - 1
	dst = append(dst, kept...)
	w := len(dst) - 1
	for j := len(kept) - 1; j >= 0; {
		if i >= base && dst[i] > kept[j] {
			dst[w] = dst[i]
			i--
		} else {
			dst[w] = kept[j]
			j--
		}
		w--
	}
	return dst
}
