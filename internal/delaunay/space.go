package delaunay

import (
	"sort"

	"parhull/internal/geom"
)

// Space is the Delaunay configuration space over a fixed point set (the
// classic example the paper gives when introducing configuration spaces in
// Section 3): configurations are triangles — non-collinear triples — whose
// defining set is the three corners and whose conflict set is the points
// strictly inside the circumcircle. T(Y) is then the Delaunay triangulation
// of Y. The space has multiplicity 1 and, as shown in the prior work the
// paper builds on, 2-support for every removal of a non-boundary object;
// removals that expose the triangulation boundary need the dedicated
// boundary configurations of that prior work, which this package sidesteps
// by pinning a bounding triangle in the base prefix. Both properties are
// verified by brute force in tests.
type Space struct {
	pts     []geom.Point
	triples [][3]int
}

// NewSpace enumerates the Delaunay configuration space of pts (collinear
// triples define no circumcircle and are excluded).
func NewSpace(pts []geom.Point) (*Space, error) {
	if err := geom.ValidateCloud(pts, 2); err != nil {
		return nil, err
	}
	s := &Space{pts: pts}
	n := len(pts)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				if geom.Orient2D(pts[i], pts[j], pts[k]) != 0 {
					s.triples = append(s.triples, [3]int{i, j, k})
				}
			}
		}
	}
	return s, nil
}

// NumObjects implements core.Space.
func (s *Space) NumObjects() int { return len(s.pts) }

// NumConfigs implements core.Space.
func (s *Space) NumConfigs() int { return len(s.triples) }

// Defining implements core.Space.
func (s *Space) Defining(c int) []int {
	t := s.triples[c]
	return t[:]
}

// InConflict implements core.Space: x conflicts with triangle c iff it lies
// strictly inside the circumcircle (exactly evaluated).
func (s *Space) InConflict(c, x int) bool {
	t := s.triples[c]
	if x == t[0] || x == t[1] || x == t[2] {
		return false
	}
	a, b, cc := s.pts[t[0]], s.pts[t[1]], s.pts[t[2]]
	// InCircle's sign convention assumes CCW order; flip if needed.
	sign := geom.InCircle(a, b, cc, s.pts[x])
	if geom.Orient2D(a, b, cc) < 0 {
		sign = -sign
	}
	return sign > 0
}

// FirstConflict implements engine.ConflictScanner: the triple decode, corner
// loads, and orientation flip are hoisted out of the per-object scan.
func (s *Space) FirstConflict(c int, order []int) int {
	t := s.triples[c]
	a, b, cc := s.pts[t[0]], s.pts[t[1]], s.pts[t[2]]
	flip := geom.Orient2D(a, b, cc) < 0
	for r, o := range order {
		if o == t[0] || o == t[1] || o == t[2] {
			continue
		}
		sign := geom.InCircle(a, b, cc, s.pts[o])
		if flip {
			sign = -sign
		}
		if sign > 0 {
			return r
		}
	}
	return len(order)
}

// EnumeratePeak implements engine.PeakEnumerator: enumerate the pairs of
// below-objects and binary-search each completed triple in the sorted triple
// list, skipping the O(n^3) eager bucketing.
func (s *Space) EnumeratePeak(x int, below func(o int) bool, emit func(c int)) {
	var bbuf [64]int
	b := bbuf[:0]
	for o := range s.pts { // ascending, so b is sorted
		if o != x && below(o) {
			b = append(b, o)
		}
	}
	for i := 0; i < len(b); i++ {
		for j := i + 1; j < len(b); j++ {
			if c, ok := s.findTriple(sorted3(b[i], b[j], x)); ok {
				emit(c)
			}
		}
	}
}

// findTriple binary-searches the lexicographically sorted triple list.
func (s *Space) findTriple(t [3]int) (int, bool) {
	i := sort.Search(len(s.triples), func(i int) bool {
		u := s.triples[i]
		if u[0] != t[0] {
			return u[0] >= t[0]
		}
		if u[1] != t[1] {
			return u[1] >= t[1]
		}
		return u[2] >= t[2]
	})
	if i < len(s.triples) && s.triples[i] == t {
		return i, true
	}
	return 0, false
}

// sorted3 returns {a, b, x} in ascending order, given a < b.
func sorted3(a, b, x int) [3]int {
	switch {
	case x < a:
		return [3]int{x, a, b}
	case x < b:
		return [3]int{a, x, b}
	default:
		return [3]int{a, b, x}
	}
}

// Degree implements core.Space: g = 3.
func (s *Space) Degree() int { return 3 }

// Multiplicity implements core.Space: one triangle per triple.
func (s *Space) Multiplicity() int { return 1 }

// BaseSize implements core.Space: the bounding triangle.
func (s *Space) BaseSize() int { return 3 }

// MaxSupport implements core.Space: k = 2.
func (s *Space) MaxSupport() int { return 2 }
