package delaunay

import (
	"context"

	"parhull/internal/conmap"
	eng "parhull/internal/engine"
	"parhull/internal/faultinject"
	"parhull/internal/geom"
	"parhull/internal/sched"
)

// Options configures the engine paths (Seq, Par, Rounds). The seed
// Triangulate takes no options and remains the checked reference.
type Options struct {
	// Map is the edge multimap M of Algorithm 3 (nil selects the growable
	// sharded map; install conmap.NewCASMap/NewTASMap for the paper's
	// Algorithm 4/5 tables).
	Map conmap.RidgeMap[*Triangle]
	// Sched selects the fork-join substrate of Par: the work-stealing
	// executor (sched.KindSteal, the default) or the goroutine-per-chain
	// Group. The triangle multiset is identical either way.
	Sched sched.Kind
	// GroupLimit caps concurrently spawned ridge chains (Group only).
	GroupLimit int
	// Workers pins the work-stealing executor's pool width (Steal only;
	// <= 0 selects GOMAXPROCS).
	Workers int
	// NoCounters disables visibility-test counting.
	NoCounters bool
	// FilterGrain sets the list size above which conflict filtering runs in
	// parallel chunks (0 = default; very large forces the serial path).
	FilterGrain int
	// NoPredCache disables the cached lifted-plane in-circle filter so
	// every conflict test runs the exact InCircle predicate (ablation; the
	// combinatorial output is identical either way).
	NoPredCache bool
	// NoBatchFilter routes conflict filtering through the pointwise closure
	// path instead of the batch filter pipeline (ablation; identical
	// survivor lists).
	NoBatchFilter bool
	// Ctx, when non-nil, cancels the construction cooperatively at
	// ridge-step (Par/Rounds) or insertion (Seq) granularity.
	Ctx context.Context
	// Inject arms deterministic fault injection (tests only).
	Inject *faultinject.Injector
}

func (o *Options) counters() bool { return o == nil || !o.NoCounters }

func (o *Options) filterGrain() int {
	if o == nil {
		return 0
	}
	return o.FilterGrain
}

func (o *Options) noPredCache() bool { return o != nil && o.NoPredCache }

func (o *Options) batchFilter() bool { return o == nil || !o.NoBatchFilter }

func (o *Options) ctx() context.Context {
	if o == nil {
		return nil
	}
	return o.Ctx
}

func (o *Options) inject() *faultinject.Injector {
	if o == nil {
		return nil
	}
	return o.Inject
}

func (o *Options) schedKind() sched.Kind {
	if o == nil {
		return sched.KindSteal
	}
	return o.Sched
}

func (o *Options) ridgeMap(n int) conmap.RidgeMap[*Triangle] {
	if o != nil && o.Map != nil {
		return o.Map
	}
	return conmap.NewShardedMap[*Triangle](eng.DefaultMapCapacity(n, 2))
}

// config assembles the driver configuration for this construction.
func (o *Options) config(e *dEngine) eng.Config[Triangle, []int32] {
	cfg := eng.Config[Triangle, []int32]{
		Kernel: kernel{e: e},
		Table:  eng.ConmapTable[Triangle]{M: o.ridgeMap(e.n)},
		Rec:    e.rec,
		Sched:  o.schedKind(),
	}
	if o != nil {
		cfg.GroupLimit = o.GroupLimit
		cfg.Workers = o.Workers
		cfg.Ctx = o.Ctx
		cfg.Inject = o.Inject
	}
	return cfg
}

// Par computes the Delaunay triangulation with the parallel incremental
// Algorithm 3 under the asynchronous fork-join schedule, run by the generic
// driver in internal/engine. Points are inserted in the order given
// (shuffle for the randomized depth bound); the triangle multiset matches
// the seed Triangulate on the same order.
func Par(pts []geom.Point, opt *Options) (*Result, error) {
	e, err := newDEngine(pts, opt.counters(), opt.filterGrain(), parStripes(), opt.noPredCache(), opt.batchFilter())
	if err != nil {
		return nil, err
	}
	root, outers, edges, err := e.initial()
	if err != nil {
		return nil, err
	}
	e.rec.SampleHeap()
	if err := eng.Par(opt.config(e), func(fork func(eng.Task[Triangle, []int32])) {
		for k := 0; k < 3; k++ {
			fork(eng.Task[Triangle, []int32]{T1: root, R: edges[k], T2: outers[k]})
		}
	}); err != nil {
		return nil, err
	}
	return e.collectResult(0)
}
