package delaunay

import (
	"fmt"

	eng "parhull/internal/engine"
	"parhull/internal/geom"
)

// seqGeom supplies the Delaunay geometry of the generic Algorithm 2 loop
// (engine.Seq): an edge-to-triangles adjacency map, pruned lazily, locates
// the live neighbor across each edge of a visible (conflicting) triangle.
// The three outer sentinels are registered up front so every bounding edge
// has a live neighbor too.
type seqGeom struct {
	adj map[[2]int32][]*Triangle
}

// Conf implements engine.SeqGeometry.
func (g *seqGeom) Conf(t *Triangle) []int32 { return t.Conf }

// MarkVisible implements engine.SeqGeometry. The stamp is i+1: unlike the
// hull kernels, the Delaunay loop has no base prefix (insertion starts at
// index 0), which would collide with the zero-initialized mark.
func (g *seqGeom) MarkVisible(t *Triangle, i int32) bool {
	if !t.Alive() || t.mark == i+1 {
		return false
	}
	t.mark = i + 1
	return true
}

// Boundary implements engine.SeqGeometry: a boundary edge of the cavity has
// one incident triangle conflicting and its live neighbor not (an interior
// edge has both stamped, and is skipped).
func (g *seqGeom) Boundary(vis []*Triangle, i int32, tasks []eng.Task[Triangle, []int32]) ([]eng.Task[Triangle, []int32], error) {
	for _, t := range vis {
		for k := 0; k < 3; k++ {
			a, b := t.Verts[k], t.Verts[(k+1)%3]
			key := edgeKey(a, b)
			var nb *Triangle
			list := g.adj[key]
			aliveList := list[:0]
			for _, h := range list {
				if h.Alive() {
					aliveList = append(aliveList, h)
					if h != t {
						nb = h
					}
				}
			}
			g.adj[key] = aliveList
			if nb == nil {
				return nil, fmt.Errorf("%w: edge (%d %d) of %v has no live neighbor", ErrDegenerate, a, b, t)
			}
			if nb.mark == i+1 {
				continue // interior cavity edge
			}
			edge := make([]int32, 2)
			fillEdge(edge, a, b)
			tasks = append(tasks, eng.Task[Triangle, []int32]{T1: t, R: edge, T2: nb})
		}
	}
	return tasks, nil
}

// Register implements engine.SeqGeometry, linking t's real edges (an outer
// sentinel's two edges through its -1 slot are skipped — only its bounding
// edge participates in adjacency).
func (g *seqGeom) Register(t *Triangle) {
	for k := 0; k < 3; k++ {
		a, b := t.Verts[k], t.Verts[(k+1)%3]
		if a < 0 || b < 0 {
			continue
		}
		key := edgeKey(a, b)
		g.adj[key] = append(g.adj[key], t)
	}
}

func edgeKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// Seq computes the Delaunay triangulation by the sequential randomized
// incremental method — Algorithm 2, run by the generic loop in
// internal/engine — inserting points in the order given. Its conflict tests
// are exactly the merge-filters of the parallel engines, so the created
// triangle multiset matches Par, Rounds, and the seed Triangulate.
func Seq(pts []geom.Point, opt *Options) (*Result, error) {
	e, err := newDEngine(pts, opt.counters(), opt.filterGrain(), 1, opt.noPredCache(), opt.batchFilter())
	if err != nil {
		return nil, err
	}
	root, outers, _, err := e.initial()
	if err != nil {
		return nil, err
	}
	g := &seqGeom{adj: map[[2]int32][]*Triangle{}}
	for _, o := range outers {
		g.Register(o)
	}
	if _, err := eng.Seq[Triangle, []int32](opt.ctx(), opt.inject(), kernel{e: e}, g, e.rec,
		[]*Triangle{root}, int32(e.n), nil); err != nil {
		return nil, err
	}
	return e.collectResult(0)
}
