// Package delaunay implements incremental 2D Delaunay triangulation with
// the same dependence-depth instrumentation as the hull engines. The paper
// builds on prior work showing that randomized incremental Delaunay
// triangulation has shallow dependence depth ([17, 18] in its references);
// this package reproduces that result inside the same framework: a new
// triangle created on cavity-boundary edge e depends only on the two
// triangles sharing e (2-support), so depth(t) = 1 + max over that pair —
// exactly the configuration dependence graph of Definition 4.1.
//
// The triangulation is seeded with a large bounding triangle (three
// synthetic points inserted first); output triangles touching synthetic
// points are dropped. Every surviving triangle satisfies the empty-
// circumcircle property with respect to all input points (asserted by
// tests); triangles near the input hull whose circumcircles reach a
// synthetic point are the usual finite-bounding-triangle artifact and are
// simply absent. All in-circle and orientation tests are exact.
package delaunay

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"parhull/internal/conflict"
	"parhull/internal/geom"
	"parhull/internal/hullstats"
)

// ErrDegenerate reports inputs the engine cannot triangulate (fewer than
// one point, NaN coordinates, or exact duplicates).
var ErrDegenerate = errors.New("delaunay: degenerate input")

// Triangle is one triangle of the (evolving) triangulation. Immutable after
// creation except for liveness, like the hull facets.
type Triangle struct {
	// Verts holds the three point indices in counterclockwise order.
	// Indices >= the input size refer to the synthetic bounding points.
	Verts [3]int32
	// Conf is the conflict set: input points strictly inside the
	// circumcircle, ascending.
	Conf []int32
	// Depth is the dependence depth (Definition 4.1).
	Depth int32
	// Round is the creation round (rounds engine only; 0 otherwise).
	Round int32

	// plane caches the negated lifted-paraboloid plane of the circumcircle
	// (engine fast path; the invalid zero Plane when the predicate cache is
	// off or the lift overflows).
	plane geom.Plane
	// mark is scratch for the sequential engine's per-insertion visible-set
	// stamp (insertion index + 1; never touched concurrently).
	mark int32
	dead atomic.Bool
}

// Alive reports whether the triangle is still part of the triangulation.
func (t *Triangle) Alive() bool { return !t.dead.Load() }

func (t *Triangle) kill() bool { return !t.dead.Swap(true) }

// Synthetic reports whether the triangle touches a bounding vertex, given
// the input size n.
func (t *Triangle) Synthetic(n int) bool {
	return int(t.Verts[0]) >= n || int(t.Verts[1]) >= n || int(t.Verts[2]) >= n
}

// String formats the triangle's vertices.
func (t *Triangle) String() string { return fmt.Sprint(t.Verts) }

// Stats aggregates instrumentation; see hullstats.Stats (HullSize is the
// number of output triangles).
type Stats = hullstats.Stats

// Result is the output of Triangulate.
type Result struct {
	// Triangles holds the surviving triangles not touching the bounding
	// points, i.e. the Delaunay triangles of the input.
	Triangles []*Triangle
	// Created holds every triangle ever created (including synthetic ones).
	Created []*Triangle
	Stats   Stats
}

// Triangulate computes the Delaunay triangulation of pts, inserting the
// points in the order given (shuffle for the randomized depth bound).
func Triangulate(pts []geom.Point) (*Result, error) {
	all, err := validateAndBound(pts)
	if err != nil {
		return nil, err
	}
	n := len(pts)
	b0, b1, b2 := int32(n), int32(n+1), int32(n+2)

	rec := hullstats.NewRecorder(true)
	var created []*Triangle
	record := func(t *Triangle) {
		rec.Created(t.Depth)
		created = append(created, t)
	}

	// inCircle counts a conflict test; triangle verts are CCW so InCircle
	// is +1 strictly inside.
	inCircle := func(t *Triangle, p int32) bool {
		rec.VTests.Inc(uint64(p))
		return geom.InCircle(all[t.Verts[0]], all[t.Verts[1]], all[t.Verts[2]], all[p]) > 0
	}

	root := &Triangle{Verts: [3]int32{b0, b1, b2}}
	if geom.Orient2D(all[b0], all[b1], all[b2]) <= 0 {
		root.Verts = [3]int32{b0, b2, b1}
	}
	for i := int32(0); i < int32(n); i++ {
		if inCircle(root, i) {
			root.Conf = append(root.Conf, i)
		} else {
			return nil, fmt.Errorf("delaunay: point %d escapes the bounding triangle", i)
		}
	}
	record(root)

	// Conflict graph and edge adjacency.
	pf := make([][]*Triangle, n)
	for _, v := range root.Conf {
		pf[v] = append(pf[v], root)
	}
	adj := map[[2]int32][]*Triangle{}
	edgeKey := func(a, b int32) [2]int32 {
		if a > b {
			a, b = b, a
		}
		return [2]int32{a, b}
	}
	register := func(t *Triangle) {
		for e := 0; e < 3; e++ {
			k := edgeKey(t.Verts[e], t.Verts[(e+1)%3])
			adj[k] = append(adj[k], t)
		}
	}
	register(root)

	for i := int32(0); i < int32(n); i++ {
		// Cavity R: alive triangles whose circumcircle contains p.
		var cavity []*Triangle
		inR := map[*Triangle]bool{}
		for _, t := range pf[i] {
			if t.Alive() && !inR[t] {
				cavity = append(cavity, t)
				inR[t] = true
			}
		}
		if len(cavity) == 0 {
			return nil, fmt.Errorf("delaunay: point %d has empty cavity (duplicate or degenerate input)", i)
		}
		// Boundary edges: edge of a cavity triangle whose neighbor is not
		// in the cavity (or absent, which cannot happen inside the
		// bounding triangle).
		var fresh []*Triangle
		for _, t := range cavity {
			for e := 0; e < 3; e++ {
				a, b := t.Verts[e], t.Verts[(e+1)%3]
				k := edgeKey(a, b)
				var nb *Triangle
				live := adj[k][:0]
				for _, u := range adj[k] {
					if u.Alive() {
						live = append(live, u)
						if u != t {
							nb = u
						}
					}
				}
				adj[k] = live
				if nb != nil && inR[nb] {
					continue // interior cavity edge
				}
				// New triangle (a, b, p); (a, b) is CCW in t, so appending
				// p keeps CCW orientation facing the cavity.
				nt := &Triangle{Verts: [3]int32{a, b, i}}
				nt.Depth = 1 + t.Depth
				if nb != nil && nb.Depth+1 > nt.Depth {
					nt.Depth = nb.Depth + 1
				}
				// C(nt) ⊆ C(t) ∪ C(nb): merge and filter, excluding p.
				nt.Conf = conflict.MergeFilter(t.Conf, confOf(nb), i, func(p int32) bool { return inCircle(nt, p) }, 0)
				record(nt)
				fresh = append(fresh, nt)
			}
		}
		for _, t := range cavity {
			t.dead.Store(true)
			rec.Replaced(true)
		}
		for _, t := range fresh {
			register(t)
			for _, v := range t.Conf {
				pf[v] = append(pf[v], t)
			}
		}
	}

	res := &Result{Created: created}
	for _, t := range created {
		if t.Alive() && !t.Synthetic(n) {
			res.Triangles = append(res.Triangles, t)
		}
	}
	sort.Slice(res.Triangles, func(i, j int) bool {
		a, b := res.Triangles[i].Verts, res.Triangles[j].Verts
		for k := 0; k < 3; k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	res.Stats = rec.Snapshot(0, len(res.Triangles))
	return res, nil
}

func confOf(t *Triangle) []int32 {
	if t == nil {
		return nil
	}
	return t.Conf
}

// validateAndBound checks the input (dimension and finiteness, at least one
// point, no exact duplicates) and returns the point slice extended with the
// three synthetic bounding vertices — indices n, n+1, n+2 — placed far
// enough out that every input point is strictly inside the bounding
// triangle. Shared by the seed Triangulate and the engine paths so both see
// byte-identical geometry (and therefore identical triangulations).
func validateAndBound(pts []geom.Point) ([]geom.Point, error) {
	if err := geom.ValidateCloud(pts, 2); err != nil {
		return nil, err
	}
	n := len(pts)
	if n < 1 {
		return nil, fmt.Errorf("%w: empty input", ErrDegenerate)
	}
	seen := make(map[[2]float64]int, n)
	for i, p := range pts {
		k := [2]float64{p[0], p[1]}
		if j, dup := seen[k]; dup {
			return nil, fmt.Errorf("%w: duplicate points %d and %d", ErrDegenerate, j, i)
		}
		seen[k] = i
	}
	all := make([]geom.Point, n, n+3)
	copy(all, pts)
	r := 1.0
	for _, p := range pts {
		r = math.Max(r, math.Max(math.Abs(p[0]), math.Abs(p[1])))
	}
	r *= 1 << 12
	all = append(all,
		geom.Point{0, 3 * r},
		geom.Point{-3 * r, -2 * r},
		geom.Point{3 * r, -2 * r},
	)
	return all, nil
}
