// Package facetlog provides a striped append-only log for the facet records
// the hull engines accumulate. The seed engines funneled every facet
// creation through one global mutex-guarded slice; under the parallel
// schedules that lock serializes the record path of every ridge chain. The
// log shards appends across cache-line-padded stripes selected by a cheap
// key hash, so concurrent creators almost never touch the same stripe.
//
// Determinism note: Snapshot concatenates stripes in index order, so with a
// single stripe (stripes <= 1) the log preserves exact append order — the
// sequential engines use that to keep Result.Created in creation order.
// With several stripes the global order is schedule-dependent, which is the
// same contract the parallel engines always had.
package facetlog

import "sync"

// Log is a striped append-only collection of T.
type Log[T any] struct {
	stripes []stripe[T]
	mask    uint32
}

type stripe[T any] struct {
	mu sync.Mutex
	xs []T
	// Pad to a cache line so neighboring stripes do not false-share.
	_ [32]byte
}

// New returns a Log with at least the requested number of stripes (rounded
// up to a power of two, minimum 1).
func New[T any](stripes int) *Log[T] {
	n := 1
	for n < stripes {
		n <<= 1
	}
	return &Log[T]{stripes: make([]stripe[T], n), mask: uint32(n - 1)}
}

// Append records x under the stripe selected by key. Keys need no quality:
// they are spread by a Fibonacci multiply before masking.
func (l *Log[T]) Append(key uint32, x T) {
	s := &l.stripes[(key*2654435761)&l.mask]
	s.mu.Lock()
	s.xs = append(s.xs, x)
	s.mu.Unlock()
}

// Len reports the total number of appended elements.
func (l *Log[T]) Len() int {
	n := 0
	for i := range l.stripes {
		s := &l.stripes[i]
		s.mu.Lock()
		n += len(s.xs)
		s.mu.Unlock()
	}
	return n
}

// Snapshot returns every appended element, stripes concatenated in index
// order. It must not race with Append (the engines call it after the
// construction joins).
func (l *Log[T]) Snapshot() []T {
	if len(l.stripes) == 1 {
		return l.stripes[0].xs
	}
	n := 0
	for i := range l.stripes {
		n += len(l.stripes[i].xs)
	}
	return l.appendAll(make([]T, 0, n))
}

// SnapshotInto is Snapshot appending into caller-owned buf (always a copy,
// even with one stripe), for pooled engines that reuse the result backing
// across constructions.
func (l *Log[T]) SnapshotInto(buf []T) []T {
	return l.appendAll(buf)
}

func (l *Log[T]) appendAll(out []T) []T {
	for i := range l.stripes {
		out = append(out, l.stripes[i].xs...)
	}
	return out
}

// Reset truncates every stripe, keeping the stripe backing arrays for
// reuse. Stored elements are zeroed so the log does not retain them. Must
// not race with Append.
func (l *Log[T]) Reset() {
	for i := range l.stripes {
		s := &l.stripes[i]
		clear(s.xs)
		s.xs = s.xs[:0]
	}
}
