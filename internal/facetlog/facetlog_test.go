package facetlog

import (
	"sync"
	"testing"
)

func TestSingleStripePreservesOrder(t *testing.T) {
	l := New[int](1)
	for i := 0; i < 1000; i++ {
		l.Append(uint32(i*7), i)
	}
	if l.Len() != 1000 {
		t.Fatalf("Len = %d", l.Len())
	}
	for i, v := range l.Snapshot() {
		if v != i {
			t.Fatalf("order broken at %d: got %d", i, v)
		}
	}
}

func TestStripedConcurrentAppends(t *testing.T) {
	l := New[int](8)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append(uint32(w*per+i), w*per+i)
			}
		}()
	}
	wg.Wait()
	if l.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", l.Len(), workers*per)
	}
	seen := make([]bool, workers*per)
	for _, v := range l.Snapshot() {
		if seen[v] {
			t.Fatalf("element %d appears twice", v)
		}
		seen[v] = true
	}
}

func TestStripeCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {3, 4}, {4, 4}, {5, 8}} {
		if l := New[int](tc.in); len(l.stripes) != tc.want {
			t.Errorf("New(%d): %d stripes, want %d", tc.in, len(l.stripes), tc.want)
		}
	}
}
