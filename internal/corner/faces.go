package corner

import (
	"fmt"
	"sort"

	"parhull/internal/geom"
)

// Face is one (possibly non-triangular) face of a degenerate 3D hull,
// reconstructed from the active corner configurations: its vertices in
// cyclic boundary order.
type Face struct {
	Vertices []int
}

// Faces assembles the faces of the hull from the active configurations of
// the corner space (Lemma 6.1: the active set is exactly the hull corners,
// and each corner's wings are its neighbors on the face boundary). Corners
// are grouped by oriented support plane, then each group's vertex cycle is
// threaded through the wing pointers. The whole input must not be coplanar.
func Faces(s *Space, active []int) ([]Face, error) {
	if len(active) == 0 {
		return nil, fmt.Errorf("corner: no active configurations: %w", ErrDegenerate)
	}
	corners := make([]Corner, len(active))
	for i, c := range active {
		corners[i] = s.At(c)
	}

	// Group corners into faces: same plane (every defining point of one on
	// the plane of the other) and same conflict side, tested against an
	// off-plane probe point.
	group := make([]int, len(corners))
	for i := range group {
		group[i] = -1
	}
	next := 0
	for i := range corners {
		if group[i] != -1 {
			continue
		}
		group[i] = next
		for j := i + 1; j < len(corners); j++ {
			if group[j] == -1 && sameFace(s, corners[i], active[i], corners[j], active[j]) {
				group[j] = next
			}
		}
		next++
	}

	faces := make([]Face, 0, next)
	for g := 0; g < next; g++ {
		var members []Corner
		for i, c := range corners {
			if group[i] == g {
				members = append(members, c)
			}
		}
		cycle, err := threadCycle(members)
		if err != nil {
			return nil, err
		}
		faces = append(faces, Face{Vertices: cycle})
	}
	sort.Slice(faces, func(i, j int) bool {
		return lessIntSlice(faces[i].Vertices, faces[j].Vertices)
	})
	return faces, nil
}

// sameFace reports whether two corners lie on the same oriented hull face.
func sameFace(s *Space, a Corner, ca int, b Corner, cb int) bool {
	pa := [3]geom.Point{s.pts[a.M], s.pts[a.L], s.pts[a.R]}
	for _, o := range []int{b.M, b.L, b.R} {
		if geom.Orient3D(pa[0], pa[1], pa[2], s.pts[o]) != 0 {
			return false
		}
	}
	// Same plane; compare conflict sides via an off-plane probe.
	for x := range s.pts {
		if geom.Orient3D(pa[0], pa[1], pa[2], s.pts[x]) != 0 {
			return s.InConflict(ca, x) == s.InConflict(cb, x)
		}
	}
	// The entire input is coplanar: cannot orient faces.
	return false
}

// threadCycle orders a face's corners into a vertex cycle using the wing
// pointers: the corner at vertex v has wings {prev, next} on the boundary.
func threadCycle(members []Corner) ([]int, error) {
	if len(members) < 3 {
		// Faces of fewer than three corners arise when the face grouping
		// cannot orient planes — a fully coplanar input (sameFace has no
		// off-plane probe point), which the corner space cannot represent.
		return nil, fmt.Errorf("corner: face with %d corners (coplanar input?): %w", len(members), ErrDegenerate)
	}
	wings := map[int][2]int{}
	for _, c := range members {
		if _, dup := wings[c.M]; dup {
			return nil, fmt.Errorf("corner: vertex %d has two corners on one face", c.M)
		}
		wings[c.M] = [2]int{c.L, c.R}
	}
	start := members[0].M
	for _, c := range members[1:] {
		if c.M < start {
			start = c.M
		}
	}
	cycle := []int{start}
	prev, cur := -1, start
	for {
		w, ok := wings[cur]
		if !ok {
			return nil, fmt.Errorf("corner: face boundary leaves the corner set at vertex %d", cur)
		}
		nxt := w[0]
		if nxt == prev {
			nxt = w[1]
		} else if prev == -1 {
			// First step: walk toward the smaller wing for determinism.
			if w[1] < nxt {
				nxt = w[1]
			}
		}
		if nxt == start {
			break
		}
		cycle = append(cycle, nxt)
		if len(cycle) > len(members) {
			return nil, fmt.Errorf("corner: face cycle does not close")
		}
		prev, cur = cur, nxt
	}
	if len(cycle) != len(members) {
		return nil, fmt.Errorf("corner: face cycle visits %d of %d corners", len(cycle), len(members))
	}
	return cycle, nil
}

// Skeleton summarizes the face structure: vertex, edge, and face counts
// (V - E + F = 2 for a convex 3-polytope).
type Skeleton struct {
	V, E, F int
}

// SkeletonOf computes the skeleton counts of a face set.
func SkeletonOf(faces []Face) Skeleton {
	verts := map[int]bool{}
	edges := map[[2]int]bool{}
	for _, f := range faces {
		k := len(f.Vertices)
		for i, v := range f.Vertices {
			verts[v] = true
			w := f.Vertices[(i+1)%k]
			a, b := v, w
			if a > b {
				a, b = b, a
			}
			edges[[2]int{a, b}] = true
		}
	}
	return Skeleton{V: len(verts), E: len(edges), F: len(faces)}
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
