// Package corner implements Section 6 of the paper: the corner
// configuration space that extends incremental 3D convex hull to degenerate
// inputs (four or more coplanar points, three or more collinear points).
//
// Objects are points in R^3. For every non-collinear triple there are six
// configurations: each of the three points can be the corner point p_m, and
// for each corner there is one configuration per side of the triple's plane.
// A configuration conflicts with (Figure 3):
//
//   - every point strictly on its side of the plane;
//   - every coplanar point strictly outside either of the lines p_m-p_l or
//     p_m-p_r (on the side away from the wedge);
//   - every point on those lines beyond p_l (resp. p_r), i.e. in the
//     direction away from p_m.
//
// Lemma 6.1 (active configurations = corners of the hull) and Lemma 6.2
// (4-support) are validated by brute force in the tests, and the space plugs
// into core.Simulate to measure dependence depth on degenerate inputs
// (experiment E8). All predicates are exact.
package corner

import (
	"errors"
	"fmt"
	"sort"

	"parhull/internal/geom"
)

// ErrDegenerate reports input too degenerate even for the corner space: all
// points collinear (no non-collinear triple exists, so the space has no
// configurations at all), fewer points than the base simplex, or a fully
// coplanar input whose faces cannot be oriented. Returned wrapped, with
// detail; the public layer maps it onto parhull.ErrDegenerate.
var ErrDegenerate = errors.New("corner: degenerate input beyond the corner space")

// Space is the corner configuration space over a fixed set of 3D points.
// It implements core.Space.
type Space struct {
	pts     []geom.Point
	triples [][3]int
}

// NewSpace enumerates the corner configuration space of pts (dimension 3,
// distinct points required — use Dedup first if unsure).
func NewSpace(pts []geom.Point) (*Space, error) {
	if err := geom.ValidateCloud(pts, 3); err != nil {
		return nil, err
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Equal(pts[j]) {
				return nil, fmt.Errorf("corner: duplicate points %d and %d (Dedup the input): %w", i, j, ErrDegenerate)
			}
		}
	}
	s := &Space{pts: pts}
	n := len(pts)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				if !collinear(pts[i], pts[j], pts[k]) {
					s.triples = append(s.triples, [3]int{i, j, k})
				}
			}
		}
	}
	if n >= 3 && len(s.triples) == 0 {
		// Every triple is collinear: the space is empty and downstream code
		// (projAxis, Faces) has nothing to stand on. Reject up front — this
		// is the input class that used to escape as a panic.
		return nil, fmt.Errorf("all %d points are collinear: %w", n, ErrDegenerate)
	}
	return s, nil
}

// Dedup returns pts with exact duplicates removed (keeping first
// occurrences).
func Dedup(pts []geom.Point) []geom.Point {
	var out []geom.Point
	for _, p := range pts {
		dup := false
		for _, q := range out {
			if p.Equal(q) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}

// collinear reports whether three 3D points are collinear, exactly: all
// three axis projections have zero 2D orientation.
func collinear(a, b, c geom.Point) bool {
	for ax := 0; ax < 3; ax++ {
		if geom.Orient2D(drop(a, ax), drop(b, ax), drop(c, ax)) != 0 {
			return false
		}
	}
	return true
}

// drop projects a 3D point to 2D by removing coordinate ax.
func drop(p geom.Point, ax int) geom.Point {
	switch ax {
	case 0:
		return geom.Point{p[1], p[2]}
	case 1:
		return geom.Point{p[0], p[2]}
	default:
		return geom.Point{p[0], p[1]}
	}
}

// projAxis returns an axis to drop such that the projected triple is
// non-degenerate (exists for any non-collinear triple).
func projAxis(pm, pl, pr geom.Point) int {
	for ax := 0; ax < 3; ax++ {
		if geom.Orient2D(drop(pm, ax), drop(pl, ax), drop(pr, ax)) != 0 {
			return ax
		}
	}
	panic("corner: collinear triple escaped the constructor")
}

// Corner describes one configuration in readable form.
type Corner struct {
	M, L, R int // corner point and its two neighbors (L < R)
	Side    int // +1 or -1: which side of the plane is the conflict side
}

// At decodes configuration index c.
func (s *Space) At(c int) Corner {
	t := s.triples[c/6]
	pos := (c % 6) / 2
	side := 1
	if c%2 == 1 {
		side = -1
	}
	m := t[pos]
	var rest []int
	for i := 0; i < 3; i++ {
		if i != pos {
			rest = append(rest, t[i])
		}
	}
	return Corner{M: m, L: rest[0], R: rest[1], Side: side}
}

// NumObjects implements core.Space.
func (s *Space) NumObjects() int { return len(s.pts) }

// NumConfigs implements core.Space: six per non-collinear triple.
func (s *Space) NumConfigs() int { return 6 * len(s.triples) }

// Defining implements core.Space: the sorted triple.
func (s *Space) Defining(c int) []int {
	t := s.triples[c/6]
	return t[:]
}

// Degree implements core.Space.
func (s *Space) Degree() int { return 3 }

// Multiplicity implements core.Space: 3 corners x 2 sides.
func (s *Space) Multiplicity() int { return 6 }

// BaseSize implements core.Space: as for 3D hulls, n_b = 4.
func (s *Space) BaseSize() int { return 4 }

// MaxSupport implements core.Space: k = 4 (Lemma 6.2).
func (s *Space) MaxSupport() int { return 4 }

// InConflict implements core.Space with the Figure 3 conflict rule.
func (s *Space) InConflict(c, x int) bool {
	cr := s.At(c)
	return s.conflictAt(cr, x)
}

// FirstConflict implements engine.ConflictScanner: the configuration decode
// (At and its corner-point loads) happens once, then order is scanned with
// the shared per-object rule.
func (s *Space) FirstConflict(c int, order []int) int {
	cr := s.At(c)
	for r, o := range order {
		if s.conflictAt(cr, o) {
			return r
		}
	}
	return len(order)
}

// EnumeratePeak implements engine.PeakEnumerator: the six configurations of
// a triple peak together, so enumerating the pairs of below-objects and
// binary-searching each completed triple visits exactly the configurations
// whose defining set completes at x — without ever touching the
// 6·C(n,3)-sized configuration universe.
func (s *Space) EnumeratePeak(x int, below func(o int) bool, emit func(c int)) {
	var bbuf [64]int
	b := bbuf[:0]
	for o := range s.pts { // ascending, so b is sorted
		if o != x && below(o) {
			b = append(b, o)
		}
	}
	for i := 0; i < len(b); i++ {
		for j := i + 1; j < len(b); j++ {
			if k, ok := s.findTriple(sorted3(b[i], b[j], x)); ok {
				for c := 6 * k; c < 6*k+6; c++ {
					emit(c)
				}
			}
		}
	}
}

// findTriple binary-searches the lexicographically sorted triple list.
func (s *Space) findTriple(t [3]int) (int, bool) {
	i := sort.Search(len(s.triples), func(i int) bool {
		u := s.triples[i]
		if u[0] != t[0] {
			return u[0] >= t[0]
		}
		if u[1] != t[1] {
			return u[1] >= t[1]
		}
		return u[2] >= t[2]
	})
	if i < len(s.triples) && s.triples[i] == t {
		return i, true
	}
	return 0, false
}

// sorted3 returns {a, b, x} in ascending order, given a < b.
func sorted3(a, b, x int) [3]int {
	switch {
	case x < a:
		return [3]int{x, a, b}
	case x < b:
		return [3]int{a, x, b}
	default:
		return [3]int{a, b, x}
	}
}

// conflictAt is the Figure 3 conflict rule against a decoded configuration.
func (s *Space) conflictAt(cr Corner, x int) bool {
	if x == cr.M || x == cr.L || x == cr.R {
		return false
	}
	pm, pl, pr := s.pts[cr.M], s.pts[cr.L], s.pts[cr.R]
	px := s.pts[x]

	// Side-of-plane test: Orient3D(pm, pl, pr, x) is the sign of
	// det[pm-x; pl-x; pr-x].
	switch o := geom.Orient3D(pm, pl, pr, px); {
	case o == cr.Side:
		return true
	case o != 0:
		return false
	}
	// Coplanar: exact in-plane wedge tests via a non-degenerate projection.
	ax := projAxis(pm, pl, pr)
	qm, ql, qr, qx := drop(pm, ax), drop(pl, ax), drop(pr, ax), drop(px, ax)
	sigma := geom.Orient2D(qm, ql, qr) // side of line pm-pl the wedge lies on
	tau := geom.Orient2D(qm, qr, ql)   // side of line pm-pr the wedge lies on
	a := geom.Orient2D(qm, ql, qx)
	b := geom.Orient2D(qm, qr, qx)
	if a != 0 && a != sigma {
		return true // strictly outside line pm-pl
	}
	if b != 0 && b != tau {
		return true // strictly outside line pm-pr
	}
	if a == 0 && beyond(pm, pl, px) {
		return true // on line pm-pl, past pl
	}
	if b == 0 && beyond(pm, pr, px) {
		return true // on line pm-pr, past pr
	}
	return false
}

// beyond reports whether x (known collinear with m and l) lies strictly past
// l in the direction away from m. Coordinate comparisons are exact.
func beyond(m, l, x geom.Point) bool {
	for k := 0; k < 3; k++ {
		if l[k] != m[k] {
			if l[k] > m[k] {
				return x[k] > l[k]
			}
			return x[k] < l[k]
		}
	}
	return false // l == m cannot happen for distinct points
}
