package corner

import (
	"testing"

	"parhull/internal/core"
	"parhull/internal/geom"
	"parhull/internal/hulld"
	"parhull/internal/pointgen"
)

func facesOf(t *testing.T, pts []geom.Point) []Face {
	t.Helper()
	s := mustSpace(t, pts)
	act := core.Active(s, allOf(len(pts)))
	faces, err := Faces(s, act)
	if err != nil {
		t.Fatal(err)
	}
	return faces
}

func TestFacesCube(t *testing.T) {
	faces := facesOf(t, pointgen.Grid3D(2))
	sk := SkeletonOf(faces)
	if sk.F != 6 || sk.V != 8 || sk.E != 12 {
		t.Fatalf("cube skeleton: %+v, want V=8 E=12 F=6", sk)
	}
	for _, f := range faces {
		if len(f.Vertices) != 4 {
			t.Fatalf("cube face with %d vertices: %v", len(f.Vertices), f.Vertices)
		}
	}
	if sk.V-sk.E+sk.F != 2 {
		t.Fatalf("Euler violated: %+v", sk)
	}
}

func TestFacesGridWithExtras(t *testing.T) {
	// 3x3x3 grid: interior, face-center, and edge-midpoint lattice points
	// must not appear in any face cycle.
	faces := facesOf(t, pointgen.Grid3D(3))
	sk := SkeletonOf(faces)
	if sk.F != 6 || sk.V != 8 || sk.E != 12 {
		t.Fatalf("grid skeleton: %+v", sk)
	}
	pts := pointgen.Grid3D(3)
	for _, f := range faces {
		for _, v := range f.Vertices {
			for _, c := range pts[v] {
				if c != 0 && c != 2 {
					t.Fatalf("non-extreme vertex %v on a face", pts[v])
				}
			}
		}
	}
}

func TestFacesCoplanarBox(t *testing.T) {
	// Cube corners plus random points on the faces: the face structure is
	// still the cube.
	pts := append(pointgen.Grid3D(2), pointgen.CoplanarBox3D(pointgen.NewRNG(9), 30)...)
	pts = Dedup(pts)
	faces := facesOf(t, pts)
	sk := SkeletonOf(faces)
	if sk.F != 6 || sk.V != 8 || sk.E != 12 {
		t.Fatalf("boxed skeleton: %+v", sk)
	}
}

func TestFacesGeneralPosition(t *testing.T) {
	// In general position every face is a triangle and the face set matches
	// the simplicial hull engine.
	pts := pointgen.OnSphere(pointgen.NewRNG(10), 14, 3)
	faces := facesOf(t, pts)
	res, err := hulld.Seq(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(faces) != len(res.Facets) {
		t.Fatalf("%d faces vs %d engine facets", len(faces), len(res.Facets))
	}
	want := res.FacetSet()
	for _, f := range faces {
		if len(f.Vertices) != 3 {
			t.Fatalf("non-triangle face in general position: %v", f.Vertices)
		}
		verts := []int32{int32(f.Vertices[0]), int32(f.Vertices[1]), int32(f.Vertices[2])}
		sortI32(verts)
		key := string(encode(verts))
		if want[key] == 0 {
			t.Fatalf("face %v is not an engine facet", f.Vertices)
		}
	}
	sk := SkeletonOf(faces)
	if sk.V-sk.E+sk.F != 2 {
		t.Fatalf("Euler violated: %+v", sk)
	}
}

func sortI32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// encode mirrors hulld's facet key encoding.
func encode(ids []int32) []byte {
	b := make([]byte, 4*len(ids))
	for i, v := range ids {
		u := uint32(v)
		b[4*i] = byte(u)
		b[4*i+1] = byte(u >> 8)
		b[4*i+2] = byte(u >> 16)
		b[4*i+3] = byte(u >> 24)
	}
	return b
}

func TestFacesErrors(t *testing.T) {
	s := mustSpace(t, pointgen.Grid3D(2))
	if _, err := Faces(s, nil); err == nil {
		t.Error("empty active set accepted")
	}
}

func TestSkeletonOf(t *testing.T) {
	sk := SkeletonOf([]Face{{Vertices: []int{0, 1, 2}}, {Vertices: []int{0, 2, 3}}})
	if sk.V != 4 || sk.E != 5 || sk.F != 2 {
		t.Fatalf("%+v", sk)
	}
}
