package corner

import (
	"testing"

	"parhull/internal/core"
	"parhull/internal/geom"
	"parhull/internal/hulld"
	"parhull/internal/pointgen"
	"parhull/internal/stats"
)

func allOf(n int) []int {
	y := make([]int, n)
	for i := range y {
		y[i] = i
	}
	return y
}

func mustSpace(t *testing.T, pts []geom.Point) *Space {
	t.Helper()
	s, err := NewSpace(pts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpaceChecks(t *testing.T) {
	s := mustSpace(t, pointgen.Grid3D(2))
	if _, err := core.CheckDegree(s); err != nil {
		t.Fatal(err)
	}
	if _, err := core.CheckMultiplicity(s); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateRejected(t *testing.T) {
	pts := []geom.Point{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 0}}
	if _, err := NewSpace(pts); err == nil {
		t.Fatal("duplicates accepted")
	}
	if d := Dedup(pts); len(d) != 3 {
		t.Fatalf("Dedup: %d", len(d))
	}
}

// TestLemma61Cube: the active configurations of a cube are its 24 corners
// (4 per face), Lemma 6.1 on the canonical degenerate input.
func TestLemma61Cube(t *testing.T) {
	pts := pointgen.Grid3D(2) // the 8 cube vertices
	s := mustSpace(t, pts)
	act := core.Active(s, allOf(len(pts)))
	if len(act) != 24 {
		t.Fatalf("|T(cube)| = %d, want 24", len(act))
	}
	// Every active corner must have an actual cube vertex as corner point
	// and axis-neighbors as wings.
	for _, c := range act {
		cr := s.At(c)
		pm, pl, pr := pts[cr.M], pts[cr.L], pts[cr.R]
		if collinear(pm, pl, pr) {
			t.Fatalf("active corner %v is collinear", cr)
		}
	}
}

// TestLemma61GridAndExtras: adding interior lattice points, edge midpoints,
// and face centers leaves the corner set unchanged.
func TestLemma61GridAndExtras(t *testing.T) {
	for _, k := range []int{2, 3} {
		pts := pointgen.Grid3D(k)
		s := mustSpace(t, pts)
		act := core.Active(s, allOf(len(pts)))
		if len(act) != 24 {
			t.Fatalf("k=%d: |T(grid)| = %d, want 24", k, len(act))
		}
		// The corner points of every active configuration must be cube
		// vertices (coordinates all 0 or k-1), and wings the outermost
		// neighbors along the face boundary.
		m := float64(k - 1)
		for _, c := range act {
			cr := s.At(c)
			pm := pts[cr.M]
			for _, coord := range pm {
				if coord != 0 && coord != m {
					t.Fatalf("k=%d: active corner point %v is not a cube vertex", k, pm)
				}
			}
		}
	}
}

// TestLemma61GeneralPosition: in general position the corners are exactly
// 3 per triangular facet of the hull.
func TestLemma61GeneralPosition(t *testing.T) {
	pts := pointgen.OnSphere(pointgen.NewRNG(1), 12, 3)
	s := mustSpace(t, pts)
	act := core.Active(s, allOf(len(pts)))
	res, err := hulld.Seq(pts)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(res.Facets); len(act) != want {
		t.Fatalf("|T| = %d, want 3*facets = %d", len(act), want)
	}
}

// TestLemma62Support: the corner configuration space has 4-support on
// degenerate inputs (cube plus coplanar extras) — verified exhaustively.
func TestLemma62Support(t *testing.T) {
	pts := pointgen.Grid3D(2)
	// Add two face centers and an edge midpoint (degenerate additions).
	pts = append(pts,
		geom.Point{0.5, 0.5, 0},
		geom.Point{0.5, 0.5, 1},
		geom.Point{0.5, 0, 0},
	)
	s := mustSpace(t, pts)
	if err := core.VerifySupport(s, allOf(len(pts))); err != nil {
		t.Fatal(err)
	}
}

// TestLemma62SupportGeneralPosition: 4-support also holds (trivially, the
// non-degenerate branch of the lemma) in general position.
func TestLemma62SupportGeneralPosition(t *testing.T) {
	pts := pointgen.OnSphere(pointgen.NewRNG(2), 9, 3)
	s := mustSpace(t, pts)
	if err := core.VerifySupport(s, allOf(len(pts))); err != nil {
		t.Fatal(err)
	}
}

// TestSimulateDegenerate runs the incremental process on a degenerate input
// and checks the dependence graph: supports of size <= 4 suffice and the
// depth sits below the Theorem 4.2 line with g=3, k=4.
func TestSimulateDegenerate(t *testing.T) {
	pts := pointgen.Grid3D(2)
	pts = append(pts, geom.Point{0.5, 0.5, 0}, geom.Point{0.5, 0, 0.5})
	s := mustSpace(t, pts)
	rng := pointgen.NewRNG(3)
	ok := false
	for try := 0; try < 8 && !ok; try++ {
		order := rng.Perm(len(pts))
		// Require a non-coplanar prefix of 4 so the base case is a true 3D
		// simplex (Definition 3.3 needs "sufficiently large" Y).
		p := pts
		if geom.Orient3D(p[order[0]], p[order[1]], p[order[2]], p[order[3]]) == 0 {
			continue
		}
		g, err := core.Simulate(s, order)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if k := core.MaxSupportUsed(g); k > 4 {
			t.Fatalf("support size %d > 4", k)
		}
		bound := stats.Theorem42MinSigma(3, 4) * stats.Harmonic(len(pts))
		if float64(g.MaxDepth) >= bound {
			t.Fatalf("depth %d >= bound %.1f", g.MaxDepth, bound)
		}
		ok = true
	}
	if !ok {
		t.Fatal("no order with a non-degenerate prefix found")
	}
}

// TestConflictRuleInPlane exercises the Figure 3 cases directly on a square
// face in the z=0 plane.
func TestConflictRuleInPlane(t *testing.T) {
	// Corner at origin, wings along +x and +y; conflict side +z or -z is
	// irrelevant for coplanar tests.
	pts := []geom.Point{
		{0, 0, 0},  // 0: pm
		{2, 0, 0},  // 1: pl
		{0, 2, 0},  // 2: pr
		{3, 0, 0},  // 3: on line pm-pl beyond pl -> conflict
		{1, 0, 0},  // 4: on segment pm-pl -> no conflict
		{-1, 0, 0}, // 5: on line behind pm -> outside line pm-pr -> conflict
		{1, -1, 0}, // 6: strictly outside line pm-pl -> conflict
		{-1, 1, 0}, // 7: strictly outside line pm-pr -> conflict
		{1, 1, 0},  // 8: inside the wedge -> no conflict
		{1, 1, 5},  // 9: off-plane, +z side
		{1, 1, -5}, // 10: off-plane, -z side
	}
	s := mustSpace(t, pts)
	// Find the two configurations with pm=0, wings {1,2}.
	var cfgs []int
	for c := 0; c < s.NumConfigs(); c++ {
		cr := s.At(c)
		if cr.M == 0 && ((cr.L == 1 && cr.R == 2) || (cr.L == 2 && cr.R == 1)) {
			cfgs = append(cfgs, c)
		}
	}
	if len(cfgs) != 2 {
		t.Fatalf("found %d configs for the corner, want 2", len(cfgs))
	}
	for _, c := range cfgs {
		wantCoplanar := map[int]bool{3: true, 4: false, 5: true, 6: true, 7: true, 8: false}
		for x, want := range wantCoplanar {
			if got := s.InConflict(c, x); got != want {
				t.Errorf("config %v, point %d: conflict=%v want %v", s.At(c), x, got, want)
			}
		}
	}
	// Exactly one of the two side configurations conflicts with each
	// off-plane point.
	for _, x := range []int{9, 10} {
		a := s.InConflict(cfgs[0], x)
		b := s.InConflict(cfgs[1], x)
		if a == b {
			t.Errorf("point %d: both sides report %v", x, a)
		}
	}
}
