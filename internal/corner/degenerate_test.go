package corner

import (
	"errors"
	"testing"

	"parhull/internal/geom"
)

// TestNewSpaceAllCollinear is the regression for the projAxis panic: an
// input whose every triple is collinear used to build an empty corner space
// and crash later when Faces projected a nonexistent plane. NewSpace now
// rejects it upfront with a typed ErrDegenerate.
func TestNewSpaceAllCollinear(t *testing.T) {
	fixtures := map[string][]geom.Point{
		"x-axis":   {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}},
		"diagonal": {{0, 0, 0}, {1, 2, 3}, {2, 4, 6}, {-1, -2, -3}, {5, 10, 15}},
		"offset":   {{1, 1, 1}, {2, 3, 1}, {3, 5, 1}, {4, 7, 1}},
	}
	for name, pts := range fixtures {
		_, err := NewSpace(pts)
		if err == nil {
			t.Errorf("%s: all-collinear input accepted", name)
			continue
		}
		if !errors.Is(err, ErrDegenerate) {
			t.Errorf("%s: err = %v, want ErrDegenerate", name, err)
		}
	}
}

// TestNewSpaceNearCollinearOK checks the rejection is not over-eager: one
// point off the line makes the space non-empty and construction proceeds.
func TestNewSpaceNearCollinearOK(t *testing.T) {
	pts := []geom.Point{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}, {1, 1, 0}, {1, 0, 1}}
	if _, err := NewSpace(pts); err != nil {
		t.Fatalf("near-collinear input rejected: %v", err)
	}
}
