// Package certify independently verifies engine outputs against the raw
// input cloud, trusting nothing the engine computed: supporting hyperplanes
// are rebuilt from the input coordinates, side tests run through a float
// screen with an exact big.Rat fallback (internal/geom), and the companion
// configuration spaces are checked against the brute-force T(X) oracle
// (internal/core). Violations carry a typed kind and the offending facet and
// point indices, so a soak failure pinpoints itself.
//
// # What is proven, what is trusted
//
// For hulls (Hull, Hull2D) the certificate is complete in general position:
// every facet is supported by d affinely independent input points, no input
// point lies strictly outside any facet, and every ridge is shared by
// exactly two facets. A supported facet is a face of conv(P); a nonempty
// ridge-closed facet family whose facets are faces of the (connected) hull
// boundary and which keeps all of P on one closed side is the whole
// boundary complex — any proper subfamily has an open ridge. Side tests are
// exact (float screen, big.Rat fallback), never the engine's cached planes.
//
// The halfspace checker re-solves every vertex exactly in rationals, checks
// feasibility against all halfspaces exactly, and cross-checks duality by
// certifying the defining sets as the facet complex of the hull of the
// normal vectors. The Delaunay checker is likewise exact (in-circle via
// geom.InCircle, exact partition area in big.Rat). The trapezoid and corner
// checkers compare against the brute-force T(X) oracle, so they prove
// equality with the reference semantics of the space, trusting the space's
// own cell geometry. The circles checker is a float screen only (arc
// endpoints and midpoints tested with a fixed tolerance) — documented here
// because circle intersections are irrational, so no exact certificate is
// available without algebraic numbers.
package certify

import "fmt"

// Kind classifies a certification violation.
type Kind int

const (
	// BadIndex: a vertex/object index is out of range or repeated.
	BadIndex Kind = iota
	// BadSupport: a facet's defining points are affinely dependent (no
	// supporting hyperplane separates anything), or a defining set is
	// singular/duplicated.
	BadSupport
	// Outside: an input point lies strictly outside a reported facet.
	Outside
	// RidgeOpen: a ridge is not shared by exactly two facets.
	RidgeOpen
	// NotConvex: consecutive 2D hull vertices are not strictly convex CCW.
	NotConvex
	// VertexSet: the reported vertex list does not match the facet union,
	// or a re-solved vertex location disagrees with the reported one.
	VertexSet
	// Incomplete: the result is structurally empty or too small to bound
	// anything.
	Incomplete
	// NotCCW: a Delaunay triangle is not strictly counterclockwise.
	NotCCW
	// CircleNotEmpty: an input point lies strictly inside a Delaunay
	// triangle's circumcircle.
	CircleNotEmpty
	// Infeasible: a halfspace-intersection vertex violates a halfspace.
	Infeasible
	// ArcBroken: a circle-intersection arc fails the boundary screen
	// (midpoint escapes a disk, or endpoints do not chain up).
	ArcBroken
	// CellMismatch: the trapezoid/corner result differs from the
	// brute-force T(X) oracle.
	CellMismatch
	// AreaMismatch: an exact partition-area identity fails.
	AreaMismatch
)

func (k Kind) String() string {
	switch k {
	case BadIndex:
		return "bad-index"
	case BadSupport:
		return "bad-support"
	case Outside:
		return "outside"
	case RidgeOpen:
		return "ridge-open"
	case NotConvex:
		return "not-convex"
	case VertexSet:
		return "vertex-set"
	case Incomplete:
		return "incomplete"
	case NotCCW:
		return "not-ccw"
	case CircleNotEmpty:
		return "circle-not-empty"
	case Infeasible:
		return "infeasible"
	case ArcBroken:
		return "arc-broken"
	case CellMismatch:
		return "cell-mismatch"
	case AreaMismatch:
		return "area-mismatch"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Error is a located certification violation. Facet indexes the offending
// facet / triangle / vertex / arc / cell of the checked result and Point the
// offending input point or object; either is -1 when not applicable.
type Error struct {
	Kind   Kind
	Facet  int
	Point  int
	Detail string
}

func (e *Error) Error() string {
	s := fmt.Sprintf("certify: %v", e.Kind)
	if e.Facet >= 0 {
		s += fmt.Sprintf(" at facet %d", e.Facet)
	}
	if e.Point >= 0 {
		s += fmt.Sprintf(" point %d", e.Point)
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

func violation(k Kind, facet, point int, format string, args ...any) *Error {
	return &Error{Kind: k, Facet: facet, Point: point, Detail: fmt.Sprintf(format, args...)}
}

// Stats instruments a certification pass: how many side tests ran and how
// many fell through the float screen to the exact predicate. The soak
// driver surfaces the fallback rate so a loosened filter shows up as drift
// even while answers stay right.
type Stats struct {
	SideTests      int
	ExactFallbacks int
}

func (s *Stats) add(o Stats) {
	s.SideTests += o.SideTests
	s.ExactFallbacks += o.ExactFallbacks
}
