package certify

import (
	"sort"

	"parhull/internal/geom"
)

// sideOracle runs facet-vs-point side tests from raw input coordinates: a
// freshly built supporting plane screens each test, and anything the static
// filter cannot certify falls back to the exact rational orientation
// predicate. Nothing engine-computed is consulted.
type sideOracle struct {
	eps   float64
	stats Stats
}

func newSideOracle(pts []geom.Point) *sideOracle {
	d := len(pts[0])
	maxAbs := make([]float64, d)
	for _, p := range pts {
		for j, v := range p {
			if v < 0 {
				v = -v
			}
			if v > maxAbs[j] {
				maxAbs[j] = v
			}
		}
	}
	return &sideOracle{eps: geom.StaticFilterEps(maxAbs)}
}

// side returns the exact sign of OrientSimplex(vp, p).
func (o *sideOracle) side(plane *geom.Plane, vp []geom.Point, p geom.Point) int {
	o.stats.SideTests++
	if plane.Valid() {
		if s, ok := plane.CertifiedSign(p); ok {
			return s
		}
	}
	o.stats.ExactFallbacks++
	return geom.OrientSimplex(vp, p)
}

// checkFacetVerts validates one facet's vertex list: length d, in-range,
// distinct. Returns the sorted copy for ridge keying.
func checkFacetVerts(fi int, verts []int, d, n int) ([]int, *Error) {
	if len(verts) != d {
		return nil, violation(BadSupport, fi, -1, "facet has %d vertices, want %d", len(verts), d)
	}
	s := append([]int(nil), verts...)
	sort.Ints(s)
	for j, v := range s {
		if v < 0 || v >= n {
			return nil, violation(BadIndex, fi, v, "vertex index out of range [0,%d)", n)
		}
		if j > 0 && s[j-1] == v {
			return nil, violation(BadIndex, fi, v, "repeated vertex index")
		}
	}
	return s, nil
}

// ridgeKey encodes a sorted (d-1)-subset as a map key.
func ridgeKey(sorted []int, skip int) string {
	b := make([]byte, 0, 4*(len(sorted)-1))
	for j, v := range sorted {
		if j == skip {
			continue
		}
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// Hull certifies a d-dimensional convex-hull facet list (d = len(pts[0])
// >= 2) against the input cloud: every facet is supported by d affinely
// independent input points with every input point on one closed side
// (exact), and every ridge is shared by exactly two facets. In general
// position this proves the facet set IS the boundary complex of conv(pts)
// — see the package comment for the argument. vertices, when non-nil, must
// equal the sorted union of facet vertices.
func Hull(pts []geom.Point, facets [][]int, vertices []int) (Stats, error) {
	var st Stats
	if len(pts) == 0 {
		return st, violation(Incomplete, -1, -1, "empty input cloud")
	}
	d := len(pts[0])
	if d < 2 {
		return st, violation(Incomplete, -1, -1, "dimension %d < 2", d)
	}
	if len(facets) < d+1 {
		return st, violation(Incomplete, -1, -1, "%d facets cannot bound a %d-polytope (need >= %d)", len(facets), d, d+1)
	}
	o := newSideOracle(pts)
	ridges := make(map[string]int, len(facets)*d)
	ridgeAt := make(map[string]int, len(facets)*d)
	onHull := make(map[int]bool, len(facets))
	vp := make([]geom.Point, d)
	for fi, fv := range facets {
		sorted, cerr := checkFacetVerts(fi, fv, d, len(pts))
		if cerr != nil {
			return o.stats, cerr
		}
		own := make(map[int]bool, d)
		for j, v := range fv {
			vp[j] = pts[v]
			onHull[v] = true
			own[v] = true
		}
		plane := geom.NewFacetPlane(vp, o.eps)
		pos, neg := -1, -1
		npos, nneg := 0, 0
		for pi, p := range pts {
			if own[pi] {
				// The facet's own vertices lie on the plane by construction;
				// testing them costs a guaranteed exact fallback each.
				continue
			}
			switch o.side(&plane, vp, p) {
			case 1:
				npos++
				if pos < 0 {
					pos = pi
				}
			case -1:
				nneg++
				if neg < 0 {
					neg = pi
				}
			}
		}
		if npos > 0 && nneg > 0 {
			// Some points are strictly on each side, so whichever way the
			// facet is oriented, the minority side is outside it.
			off := pos
			if npos > nneg {
				off = neg
			}
			return o.stats, violation(Outside, fi, off,
				"input point strictly outside facet (%d pos / %d neg side points)", npos, nneg)
		}
		if npos == 0 && nneg == 0 {
			return o.stats, violation(BadSupport, fi, -1,
				"facet vertices affinely dependent (every input point on its hyperplane)")
		}
		for j := range sorted {
			k := ridgeKey(sorted, j)
			ridges[k]++
			ridgeAt[k] = fi
		}
	}
	for k, c := range ridges {
		if c != 2 {
			return o.stats, violation(RidgeOpen, ridgeAt[k], -1, "ridge shared by %d facets, want 2", c)
		}
	}
	if vertices != nil {
		if len(vertices) != len(onHull) {
			return o.stats, violation(VertexSet, -1, -1,
				"vertex list has %d entries, facet union has %d", len(vertices), len(onHull))
		}
		for i, v := range vertices {
			if !onHull[v] {
				return o.stats, violation(VertexSet, -1, v, "listed vertex appears in no facet")
			}
			if i > 0 && vertices[i-1] >= v {
				return o.stats, violation(VertexSet, -1, v, "vertex list not sorted strictly ascending")
			}
		}
	}
	st.add(o.stats)
	return st, nil
}

// Hull2D certifies a 2D hull given as a CCW vertex cycle: indices valid and
// distinct, consecutive triples weakly counterclockwise with at least one
// strict turn, and no input point strictly right of any directed edge
// (exact). Together these prove the cycle is a counterclockwise walk of the
// boundary of conv(pts): every edge is a supporting line of the point set,
// so a skipped hull vertex or an interior vertex on the cycle always leaves
// some input point strictly right of some edge. Collinear triples are
// allowed because degenerate inputs (rounded cocircular clouds, duplicate
// points) legitimately place collinear points on the hull boundary.
func Hull2D(pts []geom.Point, vertices []int) (Stats, error) {
	var st Stats
	if len(vertices) < 3 {
		return st, violation(Incomplete, -1, -1, "%d hull vertices, need >= 3", len(vertices))
	}
	seen := make(map[int]bool, len(vertices))
	for _, v := range vertices {
		if v < 0 || v >= len(pts) {
			return st, violation(BadIndex, -1, v, "vertex index out of range [0,%d)", len(pts))
		}
		if seen[v] {
			return st, violation(BadIndex, -1, v, "repeated hull vertex")
		}
		seen[v] = true
	}
	h := len(vertices)
	strict := false
	for i := 0; i < h; i++ {
		a := pts[vertices[i]]
		b := pts[vertices[(i+1)%h]]
		c := pts[vertices[(i+2)%h]]
		switch s := geom.Orient2D(a, b, c); {
		case s < 0:
			return st, violation(NotConvex, i, vertices[(i+2)%h],
				"consecutive hull vertices turn clockwise")
		case s > 0:
			strict = true
		}
	}
	if !strict {
		return st, violation(NotConvex, -1, -1, "hull cycle is fully collinear")
	}
	o := newSideOracle(pts)
	vp := make([]geom.Point, 2)
	for i := 0; i < h; i++ {
		vp[0] = pts[vertices[i]]
		vp[1] = pts[vertices[(i+1)%h]]
		plane := geom.NewFacetPlane(vp, o.eps)
		for pi, p := range pts {
			// Orient2D(a, b, p) < 0 means p strictly right of the directed
			// edge a->b, i.e. outside a CCW polygon.
			if o.side(&plane, vp, p) < 0 {
				return o.stats, violation(Outside, i, pi, "input point strictly right of hull edge")
			}
		}
	}
	st.add(o.stats)
	return st, nil
}
