package certify_test

import (
	"errors"
	"testing"

	"parhull"
	"parhull/internal/certify"
	"parhull/internal/pointgen"
)

// goodHullD builds a known-good d-dimensional hull through the public API.
func goodHullD(t *testing.T, seed int64, n, d int) ([]parhull.Point, *parhull.HullDResult) {
	t.Helper()
	pts := pointgen.UniformBall(pointgen.NewRNG(seed), n, d)
	res, err := parhull.HullD(pts, nil)
	if err != nil {
		t.Fatalf("HullD(n=%d, d=%d): %v", n, d, err)
	}
	return pts, res
}

func facetsOf(res *parhull.HullDResult) [][]int {
	out := make([][]int, len(res.Facets))
	for i, f := range res.Facets {
		out[i] = append([]int(nil), f.Vertices...)
	}
	return out
}

func wantKind(t *testing.T, err error, kind certify.Kind) *certify.Error {
	t.Helper()
	var ce *certify.Error
	if !errors.As(err, &ce) {
		t.Fatalf("want *certify.Error, got %v", err)
	}
	if ce.Kind != kind {
		t.Fatalf("want kind %v, got %v (%v)", kind, ce.Kind, ce)
	}
	return ce
}

func TestHullCertifiesEngineOutput(t *testing.T) {
	for _, tc := range []struct{ n, d int }{
		{200, 2}, {200, 3}, {120, 4}, {60, 5}, {40, 6},
	} {
		pts, res := goodHullD(t, int64(100+tc.d), tc.n, tc.d)
		st, err := certify.Hull(pts, facetsOf(res), res.Vertices)
		if err != nil {
			t.Fatalf("d=%d: good hull rejected: %v", tc.d, err)
		}
		if st.SideTests == 0 {
			t.Fatalf("d=%d: certifier ran no side tests", tc.d)
		}
	}
}

func TestHull2DCertifiesEngineOutput(t *testing.T) {
	pts := pointgen.UniformBall(pointgen.NewRNG(7), 300, 2)
	res, err := parhull.Hull2D(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := certify.Hull2D(pts, res.Vertices); err != nil {
		t.Fatalf("good 2D hull rejected: %v", err)
	}
}

// interiorPoint returns an input index that is not a hull vertex.
func interiorPoint(t *testing.T, n int, res *parhull.HullDResult) int {
	t.Helper()
	on := map[int]bool{}
	for _, v := range res.Vertices {
		on[v] = true
	}
	for i := 0; i < n; i++ {
		if !on[i] {
			return i
		}
	}
	t.Fatal("no interior point available")
	return -1
}

func TestHullMutationDropFacet(t *testing.T) {
	pts, res := goodHullD(t, 1, 150, 3)
	facets := facetsOf(res)[1:]
	_, err := certify.Hull(pts, facets, nil)
	ce := wantKind(t, err, certify.RidgeOpen)
	if ce.Facet < 0 {
		t.Fatalf("ridge violation not located: %v", ce)
	}
}

func TestHullMutationPerturbVertexIndex(t *testing.T) {
	pts, res := goodHullD(t, 2, 150, 3)
	facets := facetsOf(res)
	facets[0][0] = interiorPoint(t, len(pts), res)
	_, err := certify.Hull(pts, facets, nil)
	ce := wantKind(t, err, certify.Outside)
	if ce.Facet != 0 || ce.Point < 0 {
		t.Fatalf("outside violation not located at facet 0: %v", ce)
	}
}

func TestHullMutationDuplicateRidge(t *testing.T) {
	pts, res := goodHullD(t, 3, 150, 3)
	facets := facetsOf(res)
	facets = append(facets, facets[0])
	_, err := certify.Hull(pts, facets, nil)
	wantKind(t, err, certify.RidgeOpen)
}

func TestHullMutationVertexList(t *testing.T) {
	pts, res := goodHullD(t, 4, 150, 3)
	verts := append([]int(nil), res.Vertices...)
	verts[0] = interiorPoint(t, len(pts), res)
	_, err := certify.Hull(pts, facetsOf(res), verts)
	wantKind(t, err, certify.VertexSet)
}

func TestHull2DMutationFlipOrientation(t *testing.T) {
	pts := pointgen.UniformBall(pointgen.NewRNG(9), 200, 2)
	res, err := parhull.Hull2D(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]int, len(res.Vertices))
	for i, v := range res.Vertices {
		rev[len(rev)-1-i] = v
	}
	_, err = certify.Hull2D(pts, rev)
	wantKind(t, err, certify.NotConvex)
}

func TestHull2DMutationDropVertex(t *testing.T) {
	pts := pointgen.UniformBall(pointgen.NewRNG(10), 200, 2)
	res, err := parhull.Hull2D(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) < 4 {
		t.Skip("hull too small to drop a vertex")
	}
	_, err = certify.Hull2D(pts, res.Vertices[1:])
	ce := wantKind(t, err, certify.Outside)
	if ce.Point != res.Vertices[0] {
		t.Fatalf("dropped vertex %d not reported as outside: %v", res.Vertices[0], ce)
	}
}

func TestDelaunayCertifiesAndRejects(t *testing.T) {
	pts := pointgen.UniformBall(pointgen.NewRNG(11), 120, 2)
	res, err := parhull.Delaunay(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := certify.Delaunay(pts, res.Triangles); err != nil {
		t.Fatalf("good triangulation rejected: %v", err)
	}

	flipped := append([][3]int(nil), res.Triangles...)
	flipped[0] = [3]int{flipped[0][1], flipped[0][0], flipped[0][2]}
	_, err = certify.Delaunay(pts, flipped)
	wantKind(t, err, certify.NotCCW)

	if _, err := certify.Delaunay(pts, res.Triangles[1:]); err == nil {
		t.Fatal("dropped triangle not detected")
	}
}

func TestHalfspaceCertifiesAndRejects(t *testing.T) {
	rng := pointgen.NewRNG(12)
	normals := append(parhull.HalfspaceBoundingSimplex(3), pointgen.OnSphere(rng, 40, 3)...)
	res, err := parhull.HalfspaceIntersection(normals, nil)
	if err != nil {
		t.Fatal(err)
	}
	verts := make([]certify.HSVertex, len(res.Vertices))
	for i, v := range res.Vertices {
		verts[i] = certify.HSVertex{Point: v.Point, Defining: v.Halfspaces}
	}
	if _, err := certify.Halfspace(normals, verts); err != nil {
		t.Fatalf("good halfspace intersection rejected: %v", err)
	}

	bad := append([]certify.HSVertex(nil), verts...)
	moved := append(parhull.Point(nil), bad[0].Point...)
	moved[0] += 0.5
	bad[0] = certify.HSVertex{Point: moved, Defining: bad[0].Defining}
	_, err = certify.Halfspace(normals, bad)
	wantKind(t, err, certify.VertexSet)

	if _, err := certify.Halfspace(normals, verts[1:]); err == nil {
		t.Fatal("dropped vertex not detected")
	}
}

func TestCirclesCertifiesAndRejects(t *testing.T) {
	centers := pointgen.UniformBall(pointgen.NewRNG(13), 12, 2)
	for i := range centers {
		centers[i][0] *= 0.4
		centers[i][1] *= 0.4
	}
	arcs, ok, err := parhull.UnitCircleIntersection(centers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected a non-empty intersection")
	}
	conv := make([]certify.CircleArc, len(arcs))
	for i, a := range arcs {
		conv[i] = certify.CircleArc{Circle: a.Circle, Lo: a.Lo, Length: a.Length}
	}
	if err := certify.Circles(centers, conv); err != nil {
		t.Fatalf("good arc set rejected: %v", err)
	}

	bad := append([]certify.CircleArc(nil), conv...)
	bad[0].Length *= 0.5
	if err := certify.Circles(centers, bad); err == nil {
		t.Fatal("shrunk arc not detected")
	} else {
		wantKind(t, err, certify.ArcBroken)
	}
}

func TestTrapezoidsCertifiesAndRejects(t *testing.T) {
	box := parhull.TrapezoidBox{XL: 0, XR: 10, YB: 0, YT: 10}
	segs := []parhull.TrapezoidSegment{
		{Y: 2, XL: 1, XR: 6}, {Y: 5, XL: 3, XR: 9}, {Y: 7, XL: 2, XR: 4}, {Y: 8.5, XL: 5, XR: 8},
	}
	cells, err := parhull.TrapezoidDecomposition(segs, box, nil)
	if err != nil {
		t.Fatal(err)
	}
	conv := make([]certify.TrapCell, len(cells))
	for i, c := range cells {
		conv[i] = certify.TrapCell{XL: c.XL, XR: c.XR, YB: c.YB, YT: c.YT, Segments: c.Segments}
	}
	if err := certify.Trapezoids(segs, box, conv); err != nil {
		t.Fatalf("good decomposition rejected: %v", err)
	}

	if err := certify.Trapezoids(segs, box, conv[1:]); err == nil {
		t.Fatal("dropped cell not detected")
	} else {
		var ce *certify.Error
		if !errors.As(err, &ce) || (ce.Kind != certify.CellMismatch && ce.Kind != certify.AreaMismatch) {
			t.Fatalf("want cell/area mismatch, got %v", err)
		}
	}
}

func TestCornerFacesCertifiesAndRejects(t *testing.T) {
	pts := pointgen.Grid3D(2) // the unit cube: square faces, fully degenerate
	faces, err := parhull.Hull3DDegenerate(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	conv := make([][]int, len(faces))
	for i, f := range faces {
		conv[i] = f.Vertices
	}
	if err := certify.CornerFaces(pts, conv); err != nil {
		t.Fatalf("good face set rejected: %v", err)
	}
	if err := certify.CornerFaces(pts, conv[1:]); err == nil {
		t.Fatal("dropped face not detected")
	}
}

func TestExactFallbacksCountedOnDegenerateCloud(t *testing.T) {
	pts := pointgen.Cospherical(pointgen.NewRNG(14), 150, 3, 0)
	res, err := parhull.HullD(pts, nil)
	if err != nil {
		t.Skipf("engine rejected cospherical cloud: %v", err)
	}
	st, err := certify.Hull(pts, facetsOf(res), res.Vertices)
	if err != nil {
		t.Fatalf("cospherical hull rejected: %v", err)
	}
	t.Logf("side tests %d, exact fallbacks %d", st.SideTests, st.ExactFallbacks)
}
