package certify

import (
	"math"

	"parhull/internal/geom"
)

// circleTol is the float tolerance of the circle-intersection screen. Arc
// endpoints are intersections of unit circles — irrational in general — so
// this checker is a documented float screen, not an exact certificate (see
// the package comment).
const circleTol = 1e-7

// CircleArc mirrors the public arc representation: the arc of unit circle
// Circle covering angles [Lo, Lo+Length].
type CircleArc struct {
	Circle     int
	Lo, Length float64
}

// Circles screens the boundary arcs of a unit-disk intersection: every
// arc's midpoint lies on its own circle and inside every other disk, every
// arc endpoint lies on some other circle (so it is a genuine boundary
// switch point), and the endpoints chain into closed loops covering each
// endpoint exactly twice. A single full-circle arc (one disk containing
// the intersection boundary) is accepted as its own loop.
func Circles(centers []geom.Point, arcs []CircleArc) error {
	if len(arcs) == 0 {
		return violation(Incomplete, -1, -1, "no arcs")
	}
	type pt struct{ x, y float64 }
	at := func(c int, ang float64) pt {
		return pt{centers[c][0] + math.Cos(ang), centers[c][1] + math.Sin(ang)}
	}
	var ends []pt
	for ai, a := range arcs {
		if a.Circle < 0 || a.Circle >= len(centers) {
			return violation(BadIndex, ai, a.Circle, "arc circle out of range [0,%d)", len(centers))
		}
		if !(a.Length > 0) || a.Length > 2*math.Pi+circleTol {
			return violation(ArcBroken, ai, -1, "arc length %v outside (0, 2pi]", a.Length)
		}
		mid := at(a.Circle, a.Lo+a.Length/2)
		for ci, c := range centers {
			dx, dy := mid.x-c[0], mid.y-c[1]
			if r := math.Hypot(dx, dy); r > 1+circleTol {
				return violation(ArcBroken, ai, ci,
					"arc midpoint at distance %v from center %d (escapes the disk)", r, ci)
			}
		}
		full := len(arcs) == 1 && a.Length > 2*math.Pi-circleTol
		if full {
			continue
		}
		for _, end := range []pt{at(a.Circle, a.Lo), at(a.Circle, a.Lo+a.Length)} {
			onOther := false
			for ci, c := range centers {
				if ci == a.Circle {
					continue
				}
				if math.Abs(math.Hypot(end.x-c[0], end.y-c[1])-1) <= circleTol {
					onOther = true
					break
				}
			}
			if !onOther {
				return violation(ArcBroken, ai, -1,
					"arc endpoint (%v, %v) lies on no other circle", end.x, end.y)
			}
			ends = append(ends, end)
		}
	}
	// Each endpoint of the boundary is where one arc hands off to another,
	// so the endpoint multiset must pair up within tolerance.
	used := make([]bool, len(ends))
	for i, e := range ends {
		if used[i] {
			continue
		}
		mate := -1
		for j := i + 1; j < len(ends); j++ {
			if used[j] {
				continue
			}
			if math.Hypot(e.x-ends[j].x, e.y-ends[j].y) <= circleTol {
				mate = j
				break
			}
		}
		if mate < 0 {
			return violation(ArcBroken, i/2, -1,
				"arc endpoint (%v, %v) is not shared with another arc", e.x, e.y)
		}
		used[i], used[mate] = true, true
	}
	return nil
}
