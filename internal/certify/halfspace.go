package certify

import (
	"math"
	"math/big"
	"sort"

	"parhull/internal/geom"
)

// HSVertex is one reported vertex of a halfspace intersection: its float
// location and the d halfspaces (indices into the normals slice) whose
// boundaries meet there.
type HSVertex struct {
	Point    geom.Point
	Defining []int
}

// hsVertexTol bounds the relative disagreement allowed between a reported
// vertex location and the exact rational re-solve of its defining system
// (the engine solves in float64, so bit equality is not expected).
const hsVertexTol = 1e-8

// Halfspace certifies the vertex set of the intersection of halfspaces
// {x : normals[i]·x <= 1}: every vertex's defining d x d system is
// re-solved exactly in rationals (singular systems and location
// disagreements are violations), the exact solution satisfies every
// halfspace (exact feasibility), and — the duality cross-check of
// Section 7 — the defining sets, read as facets over the normal points,
// must certify as the complete hull boundary of the normals, which in
// general position proves the vertex set is complete.
func Halfspace(normals []geom.Point, verts []HSVertex) (Stats, error) {
	var st Stats
	if len(normals) == 0 {
		return st, violation(Incomplete, -1, -1, "no halfspaces")
	}
	d := len(normals[0])
	if len(verts) < d+1 {
		return st, violation(Incomplete, -1, -1,
			"%d vertices cannot bound a %d-polytope (need >= %d)", len(verts), d, d+1)
	}
	one := new(big.Rat).SetInt64(1)
	seen := make(map[string]int, len(verts))
	facets := make([][]int, 0, len(verts))
	for vi, v := range verts {
		sorted, cerr := checkFacetVerts(vi, v.Defining, d, len(normals))
		if cerr != nil {
			return st, cerr
		}
		if prev, dup := seen[ridgeKey(sorted, -1)]; dup {
			return st, violation(BadSupport, vi, -1, "defining set repeats vertex %d", prev)
		}
		seen[ridgeKey(sorted, -1)] = vi
		x, ok := ratSolveOnes(normals, v.Defining)
		if !ok {
			return st, violation(BadSupport, vi, -1, "defining halfspace normals are singular")
		}
		if len(v.Point) != d {
			return st, violation(VertexSet, vi, -1, "vertex point has dimension %d, want %d", len(v.Point), d)
		}
		for j := range x {
			exact, _ := x[j].Float64()
			scale := math.Max(1, math.Abs(exact))
			if math.Abs(exact-v.Point[j]) > hsVertexTol*scale {
				return st, violation(VertexSet, vi, -1,
					"reported coordinate %d = %v, exact solve gives %v", j, v.Point[j], exact)
			}
		}
		// Exact feasibility of the exact vertex against every halfspace.
		dot := new(big.Rat)
		t := new(big.Rat)
		c := new(big.Rat)
		for ni, nrm := range normals {
			st.SideTests++
			dot.SetInt64(0)
			for j := range nrm {
				c.SetFloat64(nrm[j])
				dot.Add(dot, t.Mul(c, x[j]))
			}
			if dot.Cmp(one) > 0 {
				return st, violation(Infeasible, vi, ni, "vertex violates halfspace (n·x = %v > 1)", dot)
			}
		}
		facets = append(facets, sorted)
	}
	// Duality: the defining sets are exactly the facets of conv(normals).
	hullStats, err := Hull(normals, facets, nil)
	st.add(hullStats)
	if err != nil {
		return st, err
	}
	return st, nil
}

// ratSolveOnes solves normals[idx[i]]·x = 1 exactly by rational Gaussian
// elimination with partial (nonzero) pivoting; ok=false means singular.
func ratSolveOnes(normals []geom.Point, idx []int) ([]*big.Rat, bool) {
	d := len(idx)
	m := make([][]*big.Rat, d)
	for r, id := range idx {
		row := make([]*big.Rat, d+1)
		for j := 0; j < d; j++ {
			row[j] = new(big.Rat).SetFloat64(normals[id][j])
		}
		row[d] = new(big.Rat).SetInt64(1)
		m[r] = row
	}
	t := new(big.Rat)
	for col := 0; col < d; col++ {
		pivot := -1
		for r := col; r < d; r++ {
			if m[r][col].Sign() != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < d; r++ {
			if m[r][col].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Quo(m[r][col], m[col][col])
			for j := col; j <= d; j++ {
				m[r][j].Sub(m[r][j], t.Mul(f, m[col][j]))
			}
		}
	}
	x := make([]*big.Rat, d)
	for r := d - 1; r >= 0; r-- {
		acc := new(big.Rat).Set(m[r][d])
		for j := r + 1; j < d; j++ {
			acc.Sub(acc, t.Mul(m[r][j], x[j]))
		}
		x[r] = acc.Quo(acc, m[r][r])
	}
	return x, true
}

// sortedCopy returns a sorted copy of s (shared helper for oracle-diff
// reporting).
func sortedCopy(s []int) []int {
	c := append([]int(nil), s...)
	sort.Ints(c)
	return c
}
