package certify

import (
	"fmt"
	"math/big"

	"parhull/internal/core"
	"parhull/internal/corner"
	"parhull/internal/geom"
	"parhull/internal/trapezoid"
)

// TrapCell is one reported cell of a trapezoidal decomposition.
type TrapCell struct {
	XL, XR, YB, YT float64
	Segments       []int
}

// Trapezoids certifies a trapezoidal decomposition against the brute-force
// T(X) oracle: the cells alive on the full object set according to
// core.Active (evaluated on a freshly built space, independent of the
// engine run) must match the reported cells exactly — same rectangles,
// same defining segments, same multiplicity — and the exact rational cell
// areas must sum to the box area, so the cells partition the box. The
// oracle shares the space's cell geometry with the engine (that geometry
// is what is trusted here); what is proven is that the engine's concurrent
// insertion schedule produced exactly the reference set T(X).
func Trapezoids(segs []trapezoid.Segment, box trapezoid.Box, cells []TrapCell) error {
	if len(cells) == 0 {
		return violation(Incomplete, -1, -1, "no cells")
	}
	s, err := trapezoid.NewSpace(segs, box)
	if err != nil {
		return violation(CellMismatch, -1, -1, "oracle space construction failed: %v", err)
	}
	all := make([]int, len(segs))
	for i := range all {
		all[i] = i
	}
	want := make(map[string]int, len(segs)*4)
	for _, c := range core.Active(s, all) {
		xl, xr, yb, yt := s.CellRect(c)
		want[cellKey(xl, xr, yb, yt, sortedCopy(s.Defining(c)))]++
	}
	area := new(big.Rat)
	t := new(big.Rat)
	u := new(big.Rat)
	for ci, c := range cells {
		k := cellKey(c.XL, c.XR, c.YB, c.YT, sortedCopy(c.Segments))
		if want[k] == 0 {
			return violation(CellMismatch, ci, -1,
				"cell [%v,%v]x[%v,%v] (segments %v) not in the T(X) oracle set",
				c.XL, c.XR, c.YB, c.YT, c.Segments)
		}
		want[k]--
		t.SetFloat64(c.XR)
		u.SetFloat64(c.XL)
		t.Sub(t, u)
		u.SetFloat64(c.YT)
		w := new(big.Rat).SetFloat64(c.YB)
		u.Sub(u, w)
		area.Add(area, t.Mul(t, u))
	}
	for k, n := range want {
		if n != 0 {
			return violation(CellMismatch, -1, -1, "oracle cell missing from result (%d copies of %q)", n, k)
		}
	}
	t.SetFloat64(box.XR)
	u.SetFloat64(box.XL)
	t.Sub(t, u)
	u.SetFloat64(box.YT)
	w := new(big.Rat).SetFloat64(box.YB)
	u.Sub(u, w)
	if boxArea := t.Mul(t, u); area.Cmp(boxArea) != 0 {
		return violation(AreaMismatch, -1, -1,
			"cell areas sum to %v, box area is %v", area, boxArea)
	}
	return nil
}

func cellKey(xl, xr, yb, yt float64, def []int) string {
	return fmt.Sprintf("%x/%x/%x/%x/%v", xl, xr, yb, yt, def)
}

// CornerFaces certifies Hull3DDegenerate output against the brute-force
// oracle: the corner space's T(X) active set is recomputed with
// core.Active and re-threaded into faces, and the reported face cycles
// must match up to rotation (same vertex cycles, same multiplicity).
func CornerFaces(pts []geom.Point, faces [][]int) error {
	if len(faces) == 0 {
		return violation(Incomplete, -1, -1, "no faces")
	}
	s, err := corner.NewSpace(pts)
	if err != nil {
		return violation(CellMismatch, -1, -1, "oracle space construction failed: %v", err)
	}
	all := make([]int, len(pts))
	for i := range all {
		all[i] = i
	}
	oracle, err := corner.Faces(s, core.Active(s, all))
	if err != nil {
		return violation(CellMismatch, -1, -1, "oracle face threading failed: %v", err)
	}
	want := make(map[string]int, len(oracle))
	for _, f := range oracle {
		want[cycleKey(f.Vertices)]++
	}
	for fi, f := range faces {
		k := cycleKey(f)
		if want[k] == 0 {
			return violation(CellMismatch, fi, -1, "face cycle %v not in the T(X) oracle set", f)
		}
		want[k]--
	}
	for k, n := range want {
		if n != 0 {
			return violation(CellMismatch, -1, -1, "oracle face missing from result (%d copies of %q)", n, k)
		}
	}
	return nil
}

// cycleKey canonicalizes a vertex cycle up to rotation and reflection
// (face orientation is not part of the contract).
func cycleKey(cyc []int) string {
	if len(cyc) == 0 {
		return ""
	}
	best := ""
	for dir := 0; dir < 2; dir++ {
		c := append([]int(nil), cyc...)
		if dir == 1 {
			for i, j := 0, len(c)-1; i < j; i, j = i+1, j-1 {
				c[i], c[j] = c[j], c[i]
			}
		}
		for r := 0; r < len(c); r++ {
			k := fmt.Sprintf("%v", append(c[r:len(c):len(c)], c[:r]...))
			if best == "" || k < best {
				best = k
			}
		}
	}
	return best
}
