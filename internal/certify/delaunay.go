package certify

import (
	"math/big"

	"parhull/internal/geom"
)

// Delaunay certifies a Delaunay triangulation against the input cloud:
// every triangle is strictly CCW with an empty circumcircle (exact
// in-circle predicate over all input points), the triangles form an
// edge-closed complex (interior edges used once in each direction,
// boundary edges forming a single convex CCW cycle with no input point
// strictly outside), and the exact rational area of the triangles sums to
// the exact area of the boundary cycle — so the triangles tile conv(pts)
// with no overlap and no hole.
func Delaunay(pts []geom.Point, tris [][3]int) (Stats, error) {
	var st Stats
	if len(tris) == 0 {
		return st, violation(Incomplete, -1, -1, "no triangles")
	}
	type dirEdge struct{ a, b int }
	dir := make(map[dirEdge]int, 3*len(tris))
	triArea := new(big.Rat)
	for ti, t := range tris {
		for j, v := range t {
			if v < 0 || v >= len(pts) {
				return st, violation(BadIndex, ti, v, "triangle vertex out of range [0,%d)", len(pts))
			}
			if t[j] == t[(j+1)%3] {
				return st, violation(BadIndex, ti, v, "repeated triangle vertex")
			}
		}
		a, b, c := pts[t[0]], pts[t[1]], pts[t[2]]
		if geom.Orient2D(a, b, c) <= 0 {
			return st, violation(NotCCW, ti, -1, "triangle not strictly counterclockwise")
		}
		triArea.Add(triArea, shoelace2(pts, t[:]))
		for j := range t {
			e := dirEdge{t[j], t[(j+1)%3]}
			if prev, dup := dir[e]; dup {
				return st, violation(RidgeOpen, ti, e.a,
					"directed edge %d->%d already used by triangle %d", e.a, e.b, prev)
			}
			dir[e] = ti
		}
		for pi, p := range pts {
			st.SideTests++
			if pi == t[0] || pi == t[1] || pi == t[2] {
				continue
			}
			if geom.InCircle(a, b, c, p) > 0 {
				return st, violation(CircleNotEmpty, ti, pi,
					"input point strictly inside circumcircle")
			}
		}
	}
	// Boundary edges are those whose reverse is unused; they must chain
	// into one convex CCW cycle that contains every input point.
	next := make(map[int]int)
	var start int
	nb := 0
	for e, ti := range dir {
		if _, ok := dir[dirEdge{e.b, e.a}]; ok {
			continue
		}
		if _, ok := next[e.a]; ok {
			return st, violation(RidgeOpen, ti, e.a, "two boundary edges leave vertex %d", e.a)
		}
		next[e.a] = e.b
		start = e.a
		nb++
	}
	if nb < 3 {
		return st, violation(RidgeOpen, -1, -1, "boundary has %d edges, need >= 3", nb)
	}
	cycle := make([]int, 0, nb)
	for v, i := start, 0; ; i++ {
		if i > nb {
			return st, violation(RidgeOpen, -1, v, "boundary does not close into one cycle")
		}
		cycle = append(cycle, v)
		w, ok := next[v]
		if !ok {
			return st, violation(RidgeOpen, -1, v, "boundary dead-ends at vertex %d", v)
		}
		if w == start {
			break
		}
		v = w
	}
	if len(cycle) != nb {
		return st, violation(RidgeOpen, -1, -1,
			"boundary splits into multiple cycles (%d of %d edges reached)", len(cycle), nb)
	}
	// Unlike a hull, the boundary cycle may contain collinear vertices
	// (every input point is a triangulation vertex), so convexity is weak:
	// no right turn, and no input point strictly right of any edge.
	for i := 0; i < nb; i++ {
		a := pts[cycle[i]]
		b := pts[cycle[(i+1)%nb]]
		c := pts[cycle[(i+2)%nb]]
		if geom.Orient2D(a, b, c) < 0 {
			return st, violation(NotConvex, -1, cycle[(i+2)%nb], "boundary cycle turns right")
		}
	}
	o := newSideOracle(pts)
	vp := make([]geom.Point, 2)
	for i := 0; i < nb; i++ {
		vp[0] = pts[cycle[i]]
		vp[1] = pts[cycle[(i+1)%nb]]
		plane := geom.NewFacetPlane(vp, o.eps)
		for pi, p := range pts {
			if o.side(&plane, vp, p) < 0 {
				st.add(o.stats)
				return st, violation(Outside, -1, pi, "input point strictly outside boundary cycle")
			}
		}
	}
	st.add(o.stats)
	if hullArea := shoelace2(pts, cycle); triArea.Cmp(hullArea) != 0 {
		return st, violation(AreaMismatch, -1, -1,
			"triangle area sum %v != hull area %v (overlap or hole)", triArea, hullArea)
	}
	return st, nil
}

// shoelace2 returns twice the signed area of the polygon with the given
// vertex indices, exactly.
func shoelace2(pts []geom.Point, idx []int) *big.Rat {
	area := new(big.Rat)
	t := new(big.Rat)
	x := new(big.Rat)
	y := new(big.Rat)
	for i, vi := range idx {
		vj := idx[(i+1)%len(idx)]
		x.SetFloat64(pts[vi][0])
		y.SetFloat64(pts[vj][1])
		area.Add(area, t.Mul(x, y))
		x.SetFloat64(pts[vj][0])
		y.SetFloat64(pts[vi][1])
		area.Sub(area, t.Mul(x, y))
	}
	return area
}
