// Package leakcheck is a tiny goroutine-leak detector for tests. It
// snapshots the goroutine count when a test starts and fails the test at
// cleanup if the count has not returned to the baseline — the invariant the
// fault-containment layer promises: every Executor/Group pool quiesces on
// normal exit, on panic exit, and on cancellation.
//
// The check tolerates runtime-internal churn by retrying briefly: goroutines
// finishing concurrently with the test's return (worker shutdown, timer
// goroutines) are given a grace window before the count is declared leaked.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// retries x interval bounds the grace window (~100ms) a quitting goroutine
// gets to actually exit after the test body returns.
const (
	retries  = 50
	interval = 2 * time.Millisecond
)

// Check snapshots the current goroutine count and registers a cleanup that
// fails t if, after the grace window, more goroutines are running than at
// the snapshot. Call it first in any test that spins up a pool.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		var n int
		for i := 0; i < retries; i++ {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			time.Sleep(interval)
		}
		t.Errorf("leakcheck: %d goroutines leaked (%d at start, %d at end):\n%s",
			n-base, base, n, stacks())
	})
}

// Snapshot returns the current goroutine count — the baseline for a later
// Settle. The non-test half of the detector, for long-running drivers
// (cmd/hullsoak) that check for leaks between trials.
func Snapshot() int { return runtime.NumGoroutine() }

// Settle waits for the goroutine count to return to base (same grace window
// as Check) and reports how many goroutines remain above it, with their
// stacks. A zero leaked count means quiesced.
func Settle(base int) (leaked int, stackDump string) {
	var n int
	for i := 0; i < retries; i++ {
		n = runtime.NumGoroutine()
		if n <= base {
			return 0, ""
		}
		time.Sleep(interval)
	}
	return n - base, stacks()
}

// stacks returns all goroutine stacks, truncated to keep failure output
// readable.
func stacks() string {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	s := string(buf)
	if parts := strings.SplitN(s, "\n\n", 21); len(parts) > 20 {
		s = strings.Join(parts[:20], "\n\n") + "\n\n... (more goroutines elided)"
	}
	return s
}
