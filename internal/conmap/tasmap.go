package conmap

import (
	"fmt"
	"sync/atomic"

	"parhull/internal/faultinject"
	"parhull/internal/sched"
)

// TASMap is Algorithm 5 of the paper (Appendix A): the ridge multimap
// implemented with only the TestAndSet primitive, as required by the
// binary-forking model without CompareAndSwap. Each slot carries two flags:
// taken (slot reservation) and check (the consensus bit that elects the
// loser), plus the key-value data.
//
// Unlike CASMap, both facets insert their own entry; the second pass over
// the probe run performs TestAndSet on the check flag of every slot holding
// the ridge key, and the facet that loses a TestAndSet returns false
// (Theorem A.1 proves exactly one loses).
type TASMap[V comparable] struct {
	slots []tasSlot[V]
	mask  uint64
	inj   *faultinject.Injector
}

type tasSlot[V comparable] struct {
	taken atomic.Bool
	check atomic.Bool
	data  atomic.Pointer[casEntry[V]]
}

// NewTASMap returns a TASMap sized for the expected number of insertions
// (two per ridge). Capacity is fixed; exceeding it yields ErrCapacity.
func NewTASMap[V comparable](expected int) *TASMap[V] {
	c := roundCapacity(2 * expected)
	return &TASMap[V]{slots: make([]tasSlot[V], c), mask: uint64(c - 1)}
}

// Inject arms m with a fault-injection schedule (tests only; nil is the
// production default). Returns m for chaining.
func (m *TASMap[V]) Inject(in *faultinject.Injector) *TASMap[V] {
	m.inj = in
	return m
}

// testAndSet is the TAS primitive: atomically set b and report whether the
// set succeeded (b was previously false).
func testAndSet(b *atomic.Bool) bool { return !b.Swap(true) }

// InsertAndSet implements Algorithm 5: reserve a slot with TAS(taken), write
// the data, then re-scan the probe run from the home index performing
// TAS(check) on every slot whose key equals k; losing any of those
// TestAndSets means the other facet already passed here, so return false.
func (m *TASMap[V]) InsertAndSet(k Key, v V) (bool, error) {
	if m.inj.Fail(faultinject.SiteMapInsert) {
		return false, fmt.Errorf("conmap: TASMap injected failure for ridge %v: %w", k, ErrCapacity)
	}
	// First pass: reserve a slot (Lines 2-5 of Algorithm 5).
	i := k.hash & m.mask
	for probes := 0; ; probes++ {
		if probes > len(m.slots) {
			return false, fmt.Errorf("conmap: TASMap with %d slots: %w", len(m.slots), ErrCapacity)
		}
		if testAndSet(&m.slots[i].taken) {
			break
		}
		i = (i + 1) & m.mask
	}
	m.slots[i].data.Store(&casEntry[V]{key: k, val: v})

	// Second pass: walk the taken run from the home index (Lines 6-12).
	j := k.hash & m.mask
	for probes := 0; m.slots[j].taken.Load(); probes++ {
		if probes > len(m.slots) {
			return false, fmt.Errorf("conmap: TASMap probe run wrapped %d slots: %w", len(m.slots), ErrCapacity)
		}
		// A slot can be taken but not yet written by its owner; its key is
		// then unknown — but it cannot be one of k's two slots, both of
		// which are written before their owners reach this pass.
		if e := m.slots[j].data.Load(); e != nil && e.key.Equal(k) {
			if !testAndSet(&m.slots[j].check) {
				return false, nil
			}
		}
		j = (j + 1) & m.mask
	}
	return true, nil
}

// GetValue scans the probe run for the entry with key k whose value differs
// from not. Theorem A.2 guarantees both entries are written before the
// losing InsertAndSet returns, so in a correctly sized table this always
// finds the other facet. In an exhausted table the theorem's preconditions
// fail (probe runs wrap, partner insertions error out mid-protocol), so a
// missing partner is reported as capacity exhaustion: the panic value is an
// error wrapping ErrCapacity, which the scheduler's containment layer
// surfaces intact for the degradation ladder to retry on.
func (m *TASMap[V]) GetValue(k Key, not V) V {
	j := k.hash & m.mask
	for probes := 0; m.slots[j].taken.Load(); probes++ {
		if probes > len(m.slots) {
			break
		}
		if e := m.slots[j].data.Load(); e != nil && e.key.Equal(k) && e.val != not {
			return e.val
		}
		j = (j + 1) & m.mask
	}
	panic(fmt.Errorf("conmap: TASMap with %d slots lost the partner of ridge %v: %w",
		len(m.slots), k, ErrCapacity))
}

// Cap returns the slot count, so a pooled owner can tell whether a retained
// table satisfies a new capacity requirement.
func (m *TASMap[V]) Cap() int { return len(m.slots) }

// Reset re-zeroes every slot in parallel, keeping the table allocated for
// the next construction. Must not race with any other operation.
func (m *TASMap[V]) Reset() {
	sched.ParallelFor(len(m.slots), 1<<15, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := &m.slots[i]
			s.taken.Store(false)
			s.check.Store(false)
			s.data.Store(nil)
		}
	})
}

// Len reports the number of reserved slots (linear scan; for tests/stats).
func (m *TASMap[V]) Len() int {
	n := 0
	for i := range m.slots {
		if m.slots[i].taken.Load() {
			n++
		}
	}
	return n
}
