package conmap

import "sync/atomic"

// TASMap is Algorithm 5 of the paper (Appendix A): the ridge multimap
// implemented with only the TestAndSet primitive, as required by the
// binary-forking model without CompareAndSwap. Each slot carries two flags:
// taken (slot reservation) and check (the consensus bit that elects the
// loser), plus the key-value data.
//
// Unlike CASMap, both facets insert their own entry; the second pass over
// the probe run performs TestAndSet on the check flag of every slot holding
// the ridge key, and the facet that loses a TestAndSet returns false
// (Theorem A.1 proves exactly one loses).
type TASMap[V comparable] struct {
	slots []tasSlot[V]
	mask  uint64
}

type tasSlot[V comparable] struct {
	taken atomic.Bool
	check atomic.Bool
	data  atomic.Pointer[casEntry[V]]
}

// NewTASMap returns a TASMap sized for the expected number of insertions
// (two per ridge). Capacity is fixed; exceeding it panics.
func NewTASMap[V comparable](expected int) *TASMap[V] {
	c := roundCapacity(2 * expected)
	return &TASMap[V]{slots: make([]tasSlot[V], c), mask: uint64(c - 1)}
}

// testAndSet is the TAS primitive: atomically set b and report whether the
// set succeeded (b was previously false).
func testAndSet(b *atomic.Bool) bool { return !b.Swap(true) }

// InsertAndSet implements Algorithm 5: reserve a slot with TAS(taken), write
// the data, then re-scan the probe run from the home index performing
// TAS(check) on every slot whose key equals k; losing any of those
// TestAndSets means the other facet already passed here, so return false.
func (m *TASMap[V]) InsertAndSet(k Key, v V) bool {
	// First pass: reserve a slot (Lines 2-5 of Algorithm 5).
	i := k.hash & m.mask
	for probes := 0; ; probes++ {
		if probes > len(m.slots) {
			panic("conmap: TASMap capacity exhausted; size it for the expected ridge count")
		}
		if testAndSet(&m.slots[i].taken) {
			break
		}
		i = (i + 1) & m.mask
	}
	m.slots[i].data.Store(&casEntry[V]{key: k, val: v})

	// Second pass: walk the taken run from the home index (Lines 6-12).
	j := k.hash & m.mask
	for probes := 0; m.slots[j].taken.Load(); probes++ {
		if probes > len(m.slots) {
			panic("conmap: TASMap probe run wrapped the table; capacity exhausted")
		}
		// A slot can be taken but not yet written by its owner; its key is
		// then unknown — but it cannot be one of k's two slots, both of
		// which are written before their owners reach this pass.
		if e := m.slots[j].data.Load(); e != nil && e.key.Equal(k) {
			if !testAndSet(&m.slots[j].check) {
				return false
			}
		}
		j = (j + 1) & m.mask
	}
	return true
}

// GetValue scans the probe run for the entry with key k whose value differs
// from not. Theorem A.2 guarantees both entries are written before the
// losing InsertAndSet returns, so this always finds the other facet.
func (m *TASMap[V]) GetValue(k Key, not V) V {
	j := k.hash & m.mask
	for probes := 0; m.slots[j].taken.Load(); probes++ {
		if probes > len(m.slots) {
			break
		}
		if e := m.slots[j].data.Load(); e != nil && e.key.Equal(k) && e.val != not {
			return e.val
		}
		j = (j + 1) & m.mask
	}
	panic("conmap: TASMap.GetValue could not find the partner facet")
}

// Len reports the number of reserved slots (linear scan; for tests/stats).
func (m *TASMap[V]) Len() int {
	n := 0
	for i := range m.slots {
		if m.slots[i].taken.Load() {
			n++
		}
	}
	return n
}
