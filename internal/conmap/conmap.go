// Package conmap implements the concurrent ridge multimap M of the paper's
// Algorithm 3: a map from ridges to the (at most two) facets incident on
// them, with the InsertAndSet/GetValue protocol that decides which of a
// ridge's two facets is responsible for processing it.
//
// Three interchangeable implementations are provided:
//
//   - CASMap    — Algorithm 4: linear probing + CompareAndSwap (Sec 5.2).
//   - TASMap    — Algorithm 5: taken/check flags + TestAndSet (Appendix A),
//     a faithful port of the weaker-primitive protocol.
//   - ShardedMap — a growable mutex-sharded table, the production default
//     when the ridge count is not known in advance.
//
// All three satisfy the one-loser contract (Theorems A.1/A.2): of the two
// InsertAndSet calls on the same ridge, exactly one returns false, and by
// the time it returns false the other facet's value is visible to GetValue.
package conmap

import (
	"errors"
	"fmt"
)

// ErrCapacity reports that a fixed-capacity table (Algorithm 4/5) ran out of
// slots: the probe walked the whole table without finding a home for the
// key. It is the typed form of what used to be a panic — the engines abort
// the construction cleanly and the public layer climbs the degradation
// ladder (retry with a doubled table, then fall back to the sharded map).
var ErrCapacity = errors.New("conmap: fixed-capacity ridge table exhausted")

// Key identifies a ridge: a canonical (sorted ascending) tuple of point
// indices plus its precomputed hash. Keys are value types; the id slice must
// not be mutated after MakeKey.
type Key struct {
	hash uint64
	id   []int32
}

// MakeKey builds a Key from the canonical ridge id. ids must already be in
// canonical (sorted) order; the slice is retained, not copied.
func MakeKey(ids []int32) Key {
	// Word-at-a-time FNV-1a over the indices, followed by a splitmix64-style
	// finalizer so the low bits (used for power-of-two table masking) see the
	// whole word even though each step folds in 32 bits at once.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range ids {
		h ^= uint64(uint32(v))
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return Key{hash: h, id: ids}
}

// Key1 builds a Key for a single-index ridge (the 2D case, where a ridge is
// a hull vertex).
func Key1(id int32) Key { return MakeKey([]int32{id}) }

// Hash returns the precomputed hash of k.
func (k Key) Hash() uint64 { return k.hash }

// Equal reports whether k and o name the same ridge.
func (k Key) Equal(o Key) bool {
	if k.hash != o.hash || len(k.id) != len(o.id) {
		return false
	}
	for i := range k.id {
		if k.id[i] != o.id[i] {
			return false
		}
	}
	return true
}

// String formats the ridge id.
func (k Key) String() string { return fmt.Sprint(k.id) }

// RidgeMap is the multimap interface used by the parallel hull engines.
// V is the facet handle type (a pointer in practice).
type RidgeMap[V comparable] interface {
	// InsertAndSet registers v as a facet incident on ridge k. It returns
	// (true, nil) if v is the first facet to arrive; the caller then leaves
	// the ridge for the second facet. It returns (false, nil) if the other
	// facet already registered, in which case the caller is responsible for
	// processing the ridge and may call GetValue to retrieve the other
	// facet. A non-nil error (wrapping ErrCapacity for the fixed tables)
	// means the insertion could not be performed and the construction must
	// abort; the first result is then meaningless.
	InsertAndSet(k Key, v V) (bool, error)
	// GetValue returns the facet registered on ridge k other than not.
	// It must only be called after an InsertAndSet(k, ...) returned false.
	GetValue(k Key, not V) V
}

// roundCapacity returns the smallest power of two >= 2*expected (minimum 8),
// giving the fixed-capacity tables a load factor of at most 1/2.
func roundCapacity(expected int) int {
	n := 8
	for n < 2*expected {
		n <<= 1
	}
	return n
}
