package conmap

import (
	"fmt"
	"sync/atomic"

	"parhull/internal/faultinject"
	"parhull/internal/sched"
)

// CASMap is Algorithm 4 of the paper: a fixed-capacity linear-probing hash
// table whose slots are claimed with CompareAndSwap. The first facet to
// arrive on a ridge occupies a slot; the second facet's CAS fails on the
// duplicate key and InsertAndSet returns false.
type CASMap[V comparable] struct {
	slots []atomic.Pointer[casEntry[V]]
	mask  uint64
	inj   *faultinject.Injector
}

type casEntry[V comparable] struct {
	key Key
	val V
}

// NewCASMap returns a CASMap sized for the expected number of distinct
// ridges. The capacity is fixed; exceeding it yields ErrCapacity (size
// generously — the hull engines bound the live ridge count by d times the
// facets created).
func NewCASMap[V comparable](expected int) *CASMap[V] {
	c := roundCapacity(expected)
	return &CASMap[V]{slots: make([]atomic.Pointer[casEntry[V]], c), mask: uint64(c - 1)}
}

// Inject arms m with a fault-injection schedule (tests only; nil is the
// production default). Returns m for chaining.
func (m *CASMap[V]) Inject(in *faultinject.Injector) *CASMap[V] {
	m.inj = in
	return m
}

// InsertAndSet implements Algorithm 4's InsertAndSet: probe from the hash
// index; CAS the entry into the first empty slot (return true), unless a
// slot holding the same key is found first (return false).
func (m *CASMap[V]) InsertAndSet(k Key, v V) (bool, error) {
	if m.inj.Fail(faultinject.SiteMapInsert) {
		return false, fmt.Errorf("conmap: CASMap injected failure for ridge %v: %w", k, ErrCapacity)
	}
	e := &casEntry[V]{key: k, val: v}
	i := k.hash & m.mask
	for probes := 0; probes <= len(m.slots); probes++ {
		if m.slots[i].CompareAndSwap(nil, e) {
			return true, nil
		}
		// CAS failed: either a duplicate key (the other facet got here
		// first) or a hash collision; linear-probe past collisions.
		if cur := m.slots[i].Load(); cur != nil && cur.key.Equal(k) {
			return false, nil
		}
		i = (i + 1) & m.mask
	}
	return false, fmt.Errorf("conmap: CASMap with %d slots: %w", len(m.slots), ErrCapacity)
}

// GetValue returns the value stored for k. In Algorithm 4 each key occupies
// exactly one slot (the loser never inserts), so the stored value is the
// other facet; not is accepted for interface symmetry and validated against.
func (m *CASMap[V]) GetValue(k Key, not V) V {
	i := k.hash & m.mask
	for probes := 0; probes <= len(m.slots); probes++ {
		cur := m.slots[i].Load()
		if cur == nil {
			// An empty slot ends the probe run: the key was never inserted —
			// caller misuse, not a capacity condition.
			panic("conmap: GetValue on a ridge that was never inserted")
		}
		if cur.key.Equal(k) {
			return cur.val
		}
		i = (i + 1) & m.mask
	}
	// The probe run wrapped the whole table without an empty slot: the table
	// is exhausted and the one-loser protocol's guarantees no longer hold.
	// Report capacity so the degradation ladder retries with a bigger table.
	panic(fmt.Errorf("conmap: CASMap with %d slots wrapped probing ridge %v: %w",
		len(m.slots), k, ErrCapacity))
}

// Cap returns the slot count, so a pooled owner can tell whether a retained
// table satisfies a new capacity requirement.
func (m *CASMap[V]) Cap() int { return len(m.slots) }

// Reset re-zeroes every slot in parallel, keeping the table allocated for
// the next construction. Must not race with any other operation.
func (m *CASMap[V]) Reset() {
	sched.ParallelFor(len(m.slots), 1<<16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m.slots[i].Store(nil)
		}
	})
}

// Len reports the number of occupied slots (linear scan; for tests/stats).
func (m *CASMap[V]) Len() int {
	n := 0
	for i := range m.slots {
		if m.slots[i].Load() != nil {
			n++
		}
	}
	return n
}
