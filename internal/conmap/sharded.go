package conmap

import (
	"sync"

	"parhull/internal/sched"
)

// shardCount must be a power of two. 64 shards keep contention negligible at
// typical core counts while costing little memory.
const shardCount = 64

// ShardedMap is the production ridge multimap: a growable hash table split
// into mutex-guarded shards. It does not need a capacity estimate, unlike
// the fixed-size Algorithm 4/5 tables, and is the default used by the hull
// engines. Semantics match CASMap: the first facet to arrive stores its
// entry and InsertAndSet returns true; the second finds the entry and
// returns false.
//
// Within a shard, entries live in a map keyed by the ridge's 64-bit hash.
// Distinct ridges colliding on the full hash are vanishingly rare, so the
// primary map holds one entry per hash and an overflow map (allocated only
// on first collision) holds the rest — keeping the hot path free of the
// per-ridge slice allocations a map[hash][]entry layout would pay.
type ShardedMap[V comparable] struct {
	shards [shardCount]shard[V]
}

type shard[V comparable] struct {
	mu       sync.Mutex
	m        map[uint64]casEntry[V]
	overflow map[uint64][]casEntry[V] // nil until a full-hash collision
}

// NewShardedMap returns an empty ShardedMap. The expected size hint may be
// zero; shards grow as needed.
func NewShardedMap[V comparable](expected int) *ShardedMap[V] {
	s := &ShardedMap[V]{}
	per := expected / shardCount
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]casEntry[V], per)
	}
	return s
}

func (m *ShardedMap[V]) shardFor(k Key) *shard[V] {
	// Use high bits for the shard so the low bits (bucket selection inside
	// the Go map) stay independent.
	return &m.shards[(k.hash>>48)&(shardCount-1)]
}

// InsertAndSet registers v on ridge k, reporting whether v arrived first.
// The sharded map grows on demand, so its error is always nil — it is the
// terminal rung of the capacity degradation ladder.
func (m *ShardedMap[V]) InsertAndSet(k Key, v V) (bool, error) {
	sh := m.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[k.hash]
	if !ok {
		sh.m[k.hash] = casEntry[V]{key: k, val: v}
		return true, nil
	}
	if e.key.Equal(k) {
		return false, nil
	}
	for _, o := range sh.overflow[k.hash] {
		if o.key.Equal(k) {
			return false, nil
		}
	}
	if sh.overflow == nil {
		sh.overflow = map[uint64][]casEntry[V]{}
	}
	sh.overflow[k.hash] = append(sh.overflow[k.hash], casEntry[V]{key: k, val: v})
	return true, nil
}

// GetValue returns the facet registered on k (the one that arrived first).
func (m *ShardedMap[V]) GetValue(k Key, not V) V {
	sh := m.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.m[k.hash]; ok && e.key.Equal(k) {
		return e.val
	}
	for _, o := range sh.overflow[k.hash] {
		if o.key.Equal(k) {
			return o.val
		}
	}
	panic("conmap: ShardedMap.GetValue on a ridge that was never inserted")
}

// Reset empties the map for the next construction, shards cleared in
// parallel. clear() on a Go map keeps its buckets allocated, so a reset map
// re-fills to its previous size without rehashing or allocation — the
// pooled-Builder steady state. Must not race with any other operation.
func (m *ShardedMap[V]) Reset() {
	sched.ParallelFor(shardCount, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sh := &m.shards[i]
			clear(sh.m)
			if sh.overflow != nil {
				clear(sh.overflow)
			}
		}
	})
}

// Len reports the number of stored ridges.
func (m *ShardedMap[V]) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		for _, b := range sh.overflow {
			n += len(b)
		}
		sh.mu.Unlock()
	}
	return n
}

// Compile-time interface checks for all three implementations.
var (
	_ RidgeMap[*int] = (*CASMap[*int])(nil)
	_ RidgeMap[*int] = (*TASMap[*int])(nil)
	_ RidgeMap[*int] = (*ShardedMap[*int])(nil)
)
