package conmap

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"parhull/internal/faultinject"
)

// mustInsert is the test-side InsertAndSet wrapper: any error is a test
// failure (the tests below size their tables so capacity cannot run out).
func mustInsert(t testing.TB, m RidgeMap[*int], k Key, v *int) bool {
	t.Helper()
	first, err := m.InsertAndSet(k, v)
	if err != nil {
		t.Fatalf("InsertAndSet(%v): %v", k, err)
	}
	return first
}

func TestKey(t *testing.T) {
	a := MakeKey([]int32{1, 2, 3})
	b := MakeKey([]int32{1, 2, 3})
	c := MakeKey([]int32{1, 2, 4})
	d := MakeKey([]int32{1, 2})
	if !a.Equal(b) || a.Hash() != b.Hash() {
		t.Error("equal keys differ")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("distinct keys equal")
	}
	if Key1(7).Equal(Key1(8)) || !Key1(7).Equal(MakeKey([]int32{7})) {
		t.Error("Key1 misbehaves")
	}
	if a.String() != "[1 2 3]" {
		t.Errorf("String: %q", a.String())
	}
}

func TestKeyHashDistribution(t *testing.T) {
	// Property: differing ids give differing hashes with overwhelming
	// probability (here: no collision among a structured family).
	seen := map[uint64][]int32{}
	for i := int32(0); i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			k := MakeKey([]int32{i, j})
			if prev, ok := seen[k.Hash()]; ok {
				t.Fatalf("hash collision: %v vs [%d %d]", prev, i, j)
			}
			seen[k.Hash()] = []int32{i, j}
		}
	}
}

type mapMaker struct {
	name string
	make func(expected int) RidgeMap[*int]
}

func makers() []mapMaker {
	return []mapMaker{
		{"CAS", func(n int) RidgeMap[*int] { return NewCASMap[*int](n) }},
		{"TAS", func(n int) RidgeMap[*int] { return NewTASMap[*int](n) }},
		{"Sharded", func(n int) RidgeMap[*int] { return NewShardedMap[*int](n) }},
	}
}

// TestOneLoserSequential: two InsertAndSet calls on the same ridge — exactly
// one returns false, and the loser's GetValue sees the winner's value.
func TestOneLoserSequential(t *testing.T) {
	for _, mk := range makers() {
		t.Run(mk.name, func(t *testing.T) {
			m := mk.make(100)
			for i := int32(0); i < 100; i++ {
				k := MakeKey([]int32{i, i + 1})
				v1, v2 := new(int), new(int)
				*v1, *v2 = 1, 2
				first := mustInsert(t, m, k, v1)
				second := mustInsert(t, m, k, v2)
				if !first || second {
					t.Fatalf("ridge %d: first=%v second=%v", i, first, second)
				}
				if got := m.GetValue(k, v2); got != v1 {
					t.Fatalf("ridge %d: GetValue returned %v", i, got)
				}
			}
		})
	}
}

// TestOneLoserConcurrent hammers each map with pairs of goroutines racing on
// the same ridge, verifying Theorems A.1 (exactly one loser) and A.2 (the
// loser can read the winner's value).
func TestOneLoserConcurrent(t *testing.T) {
	const ridges = 2000
	for _, mk := range makers() {
		t.Run(mk.name, func(t *testing.T) {
			m := mk.make(ridges)
			vals := make([]*int, 2*ridges)
			for i := range vals {
				vals[i] = new(int)
				*vals[i] = i
			}
			losers := make([]int32, ridges) // count of false returns per ridge
			var wg sync.WaitGroup
			var mu sync.Mutex
			for r := 0; r < ridges; r++ {
				for side := 0; side < 2; side++ {
					wg.Add(1)
					go func(r, side int) {
						defer wg.Done()
						k := MakeKey([]int32{int32(r), int32(r + 1)})
						mine := vals[2*r+side]
						other := vals[2*r+1-side]
						first, err := m.InsertAndSet(k, mine)
						if err != nil {
							t.Errorf("%s ridge %d: %v", mk.name, r, err)
							return
						}
						if !first {
							got := m.GetValue(k, mine)
							if got != other {
								t.Errorf("%s ridge %d: GetValue=%v want %v", mk.name, r, got, other)
							}
							mu.Lock()
							losers[r]++
							mu.Unlock()
						}
					}(r, side)
				}
			}
			wg.Wait()
			for r, n := range losers {
				if n != 1 {
					t.Fatalf("%s ridge %d: %d losers, want exactly 1", mk.name, r, n)
				}
			}
		})
	}
}

// TestProbeCollisions forces many keys into a tiny table so linear probing
// paths are exercised heavily.
func TestProbeCollisions(t *testing.T) {
	for _, mk := range makers() {
		t.Run(mk.name, func(t *testing.T) {
			m := mk.make(64)
			vals := map[int32]*int{}
			for i := int32(0); i < 60; i++ {
				v := new(int)
				vals[i] = v
				if !mustInsert(t, m, Key1(i), v) {
					t.Fatalf("fresh key %d reported duplicate", i)
				}
			}
			for i := int32(0); i < 60; i++ {
				w := new(int)
				if mustInsert(t, m, Key1(i), w) {
					t.Fatalf("duplicate key %d reported fresh", i)
				}
				if got := m.GetValue(Key1(i), w); got != vals[i] {
					t.Fatalf("key %d: wrong partner", i)
				}
			}
		})
	}
}

// TestCapacityExhaustion: the fixed-capacity paper tables must fail with the
// typed ErrCapacity — never loop, corrupt, or panic — when overfilled. This
// is the bottom rung of the engine's degradation ladder.
func TestCapacityExhaustion(t *testing.T) {
	check := func(name string, m RidgeMap[*int], cap int) {
		for i := int32(0); ; i++ {
			_, err := m.InsertAndSet(Key1(i), new(int))
			if err != nil {
				if !errors.Is(err, ErrCapacity) {
					t.Errorf("%s: overfill error %v does not wrap ErrCapacity", name, err)
				}
				return
			}
			if int(i) > 10*cap {
				t.Fatalf("%s: inserted %d into capacity %d without error", name, i, cap)
			}
		}
	}
	check("CAS", NewCASMap[*int](4), 4)
	check("TAS", NewTASMap[*int](4), 4)
}

// TestInjectedCapacityFailure: an armed injector forces ErrCapacity on the
// named visit even though the table has room, and fires exactly once.
func TestInjectedCapacityFailure(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(in *faultinject.Injector) RidgeMap[*int]
	}{
		{"CAS", func(in *faultinject.Injector) RidgeMap[*int] { return NewCASMap[*int](64).Inject(in) }},
		{"TAS", func(in *faultinject.Injector) RidgeMap[*int] { return NewTASMap[*int](64).Inject(in) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := faultinject.New(1).FailAt(faultinject.SiteMapInsert, 3)
			m := tc.mk(in)
			var errs int
			for i := int32(0); i < 10; i++ {
				if _, err := m.InsertAndSet(Key1(i), new(int)); err != nil {
					if !errors.Is(err, ErrCapacity) {
						t.Fatalf("injected error %v does not wrap ErrCapacity", err)
					}
					if i != 2 {
						t.Fatalf("failure fired at visit %d, want 3", i+1)
					}
					errs++
				}
			}
			if errs != 1 {
				t.Fatalf("injected failure fired %d times, want exactly 1", errs)
			}
			if got := in.Fired(faultinject.SiteMapInsert); got != 1 {
				t.Fatalf("Fired = %d, want 1", got)
			}
		})
	}
}

func TestGetValueMissingPanics(t *testing.T) {
	for _, mk := range makers() {
		t.Run(mk.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("missing-key GetValue did not panic")
				}
			}()
			mk.make(8).GetValue(Key1(42), nil)
		})
	}
}

func TestLen(t *testing.T) {
	cas := NewCASMap[*int](10)
	tas := NewTASMap[*int](10)
	sh := NewShardedMap[*int](10)
	for i := int32(0); i < 5; i++ {
		mustInsert(t, cas, Key1(i), new(int))
		mustInsert(t, tas, Key1(i), new(int))
		mustInsert(t, sh, Key1(i), new(int))
	}
	if cas.Len() != 5 || sh.Len() != 5 {
		t.Fatalf("CAS len=%d sharded len=%d", cas.Len(), sh.Len())
	}
	if tas.Len() != 5 { // one reserved slot per insertion
		t.Fatalf("TAS len=%d", tas.Len())
	}
}

// TestSemanticsMatchQuick drives all three maps with the same random
// insertion schedule and requires identical winner/loser outcomes.
func TestSemanticsMatchQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(100)
		cas := NewCASMap[*int](2 * n)
		tas := NewTASMap[*int](2 * n)
		sh := NewShardedMap[*int](2 * n)
		// Each ridge id appears exactly twice in the schedule.
		sched := make([]int32, 0, 2*n)
		for i := int32(0); i < int32(n); i++ {
			sched = append(sched, i, i)
		}
		rng.Shuffle(len(sched), func(i, j int) { sched[i], sched[j] = sched[j], sched[i] })
		for _, id := range sched {
			v := new(int)
			a, errA := cas.InsertAndSet(Key1(id), v)
			b, errB := tas.InsertAndSet(Key1(id), v)
			c, errC := sh.InsertAndSet(Key1(id), v)
			if errA != nil || errB != nil || errC != nil {
				return false
			}
			if a != b || b != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRidgeMapInsert(b *testing.B) {
	for _, mk := range makers() {
		b.Run(mk.name, func(b *testing.B) {
			m := mk.make(b.N + 1)
			v := new(int)
			keys := make([]Key, b.N)
			for i := range keys {
				keys[i] = MakeKey([]int32{int32(i), int32(i + 1), int32(i + 2)})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.InsertAndSet(keys[i], v) //nolint:errcheck // sized for b.N
			}
		})
	}
}

func BenchmarkRidgeMapInsertParallel(b *testing.B) {
	for _, mk := range makers() {
		b.Run(mk.name, func(b *testing.B) {
			m := mk.make(b.N + 1)
			var ctr atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				v := new(int)
				// Give each goroutine a disjoint id range.
				base := ctr.Add(int64(b.N)+1) - int64(b.N) - 1
				i := int32(base)
				for pb.Next() {
					m.InsertAndSet(MakeKey([]int32{i, i + 1}), v) //nolint:errcheck // sized for b.N
					i++
				}
			})
		})
	}
}
