// Package pointgen generates the synthetic workloads used by the tests,
// examples, and experiment harness: points distributed uniformly in a ball
// (small hulls), on a sphere (every point on the hull — the adversarial case
// for incremental algorithms), in a cube, Gaussian clouds, and the
// degenerate configurations (grids, coplanar and collinear sets) used to
// exercise Section 6.
//
// All generators are deterministic given the caller-provided source, so
// every experiment in EXPERIMENTS.md is reproducible from its seed.
package pointgen

import (
	"math"
	"math/rand"

	"parhull/internal/geom"
)

// NewRNG returns a deterministic random source for the given seed.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// UniformBall returns n points uniformly distributed in the unit d-ball.
// The expected hull size is O(n^((d-1)/(d+1))), so most insertions fall
// inside the current hull — the "easy" regime of the analysis.
func UniformBall(rng *rand.Rand, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := gaussianDir(rng, d)
		r := math.Pow(rng.Float64(), 1/float64(d))
		for j := range p {
			p[j] *= r
		}
		pts[i] = p
	}
	return pts
}

// OnSphere returns n points uniformly distributed on the unit (d-1)-sphere.
// Every point is a hull vertex, maximizing hull size and conflict-set churn.
func OnSphere(rng *rand.Rand, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = gaussianDir(rng, d)
	}
	return pts
}

// InCube returns n points uniform in the cube [-1, 1]^d.
func InCube(rng *rand.Rand, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = 2*rng.Float64() - 1
		}
		pts[i] = p
	}
	return pts
}

// Gaussian returns n points from the standard d-dimensional normal.
func Gaussian(rng *rand.Rand, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

// Clustered returns n points in k tight Gaussian clusters whose centers are
// drawn uniformly from the unit ball. Most points are interior to the hull of
// their own cluster, but the clusters are unevenly sized and unevenly placed,
// so any fixed-size spatial partition sees blocks of wildly different hull
// density — the adversarial case for the pre-hull block reduction. spread is
// the cluster standard deviation (<= 0 selects 0.02).
func Clustered(rng *rand.Rand, n, d, k int, spread float64) []geom.Point {
	if k < 1 {
		k = 1
	}
	if spread <= 0 {
		spread = 0.02
	}
	centers := UniformBall(rng, k, d)
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(k)]
		p := make(geom.Point, d)
		for j := range p {
			p[j] = c[j] + spread*rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

// Anisotropic returns n points uniform in a ball squashed by a factor of
// ratio^j along dimension j (ratio in (0, 1); <= 0 selects 0.05): a needle in
// 2D, a flattened disc-like spindle in 3D. Near-degenerate aspect ratios
// stress the exact-predicate fallback (tiny determinants) and give spatial
// partitions long thin cells.
func Anisotropic(rng *rand.Rand, n, d int, ratio float64) []geom.Point {
	if ratio <= 0 {
		ratio = 0.05
	}
	pts := UniformBall(rng, n, d)
	scale := make([]float64, d)
	s := 1.0
	for j := range scale {
		scale[j] = s
		s *= ratio
	}
	for _, p := range pts {
		for j := range p {
			p[j] *= scale[j]
		}
	}
	return pts
}

// DuplicateHeavy returns n points in the unit d-ball in which roughly frac
// of the entries are exact bitwise copies of earlier points (frac outside
// (0, 1) selects 0.5). Exact duplicates stress the visibility paths: a copy
// of a hull vertex sits exactly on its facets' planes, inside the epsilon
// band of the static filter, so every such test must fall back to the exact
// predicate and every engine must agree on which copy (if any) becomes the
// vertex.
func DuplicateHeavy(rng *rand.Rand, n, d int, frac float64) []geom.Point {
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	pts := UniformBall(rng, n, d)
	for i := 1; i < len(pts); i++ {
		if rng.Float64() < frac {
			pts[i] = append(geom.Point(nil), pts[rng.Intn(i)]...)
		}
	}
	return pts
}

// NearDegenerate returns n points in the unit d-ball with every coordinate
// snapped to a multiple of quantum (<= 0 selects 2^-6). Snapping to a
// power-of-two grid is exact in binary floating point, so the cloud carries
// many exactly collinear and coplanar subsets and exact duplicates — dense
// exact-predicate fallback traffic for the plane-cache epsilon band, while
// staying inside the engines' documented accept-or-reject behavior.
func NearDegenerate(rng *rand.Rand, n, d int, quantum float64) []geom.Point {
	if quantum <= 0 {
		quantum = 0x1p-6
	}
	pts := UniformBall(rng, n, d)
	for _, p := range pts {
		for j := range p {
			p[j] = math.Round(p[j]/quantum) * quantum
		}
	}
	return pts
}

// Cospherical returns n points on the unit (d-1)-sphere with every
// coordinate snapped to a power-of-two grid (quantum <= 0 selects 2^-10).
// Unlike OnSphere — whose points are only cospherical up to normalization
// rounding — the snapped cloud carries many exactly equal coordinates,
// exactly antipodal and mirrored pairs, and near-ties on every facet plane,
// so the static filter's epsilon band fills up and the exact-fallback rate
// spikes. Every point is still (near) boundary, the adversarial regime for
// incremental insertion.
func Cospherical(rng *rand.Rand, n, d int, quantum float64) []geom.Point {
	if quantum <= 0 {
		quantum = 0x1p-10
	}
	pts := OnSphere(rng, n, d)
	for _, p := range pts {
		for j := range p {
			p[j] = math.Round(p[j]/quantum) * quantum
		}
	}
	return pts
}

// IntegerLattice returns n points with integer coordinates drawn uniformly
// from {0, ..., k-1}^d (k <= 0 selects the smallest k with at least n lattice
// points). Small-integer coordinates are exact in floating point, so the
// cloud is saturated with exact ties: duplicate points, collinear triples,
// coplanar quadruples on every axis-aligned and diagonal line — the
// everything-is-degenerate input the engines must reject or resolve exactly.
func IntegerLattice(rng *rand.Rand, n, d, k int) []geom.Point {
	if k <= 0 {
		// Smallest k with k^d >= n, so the lattice is dense with duplicates
		// without collapsing to a single cell.
		for k = 2; math.Pow(float64(k), float64(d)) < float64(n); k++ {
		}
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = float64(rng.Intn(k))
		}
		pts[i] = p
	}
	return pts
}

// CollinearHeavy returns n points of which roughly frac lie exactly on the
// line through two earlier points (frac outside (0, 1) selects 0.5): each
// such point is a + t*(b-a) with a dyadic t and integer-lattice base points,
// so the collinearity is exact in floating point, not approximate. The rest
// of the cloud is the integer lattice itself, so degenerate triples are the
// rule, not the exception.
func CollinearHeavy(rng *rand.Rand, n, d int, frac float64) []geom.Point {
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	pts := IntegerLattice(rng, n, d, 0)
	for i := 2; i < len(pts); i++ {
		if rng.Float64() >= frac {
			continue
		}
		a, b := pts[rng.Intn(i)], pts[rng.Intn(i)]
		t := dyadic(rng)
		p := make(geom.Point, d)
		for j := range p {
			p[j] = a[j] + t*(b[j]-a[j])
		}
		pts[i] = p
	}
	return pts
}

// CoplanarHeavy returns n points (d >= 3) of which roughly frac lie exactly
// on the plane of three earlier points: a + u*(b-a) + v*(c-a) with dyadic
// u, v over integer-lattice base points — exact coplanarity, the Section 6
// regime in arbitrary dimension. For d < 3 it degrades to CollinearHeavy.
func CoplanarHeavy(rng *rand.Rand, n, d int, frac float64) []geom.Point {
	if d < 3 {
		return CollinearHeavy(rng, n, d, frac)
	}
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	pts := IntegerLattice(rng, n, d, 0)
	for i := 3; i < len(pts); i++ {
		if rng.Float64() >= frac {
			continue
		}
		a, b, c := pts[rng.Intn(i)], pts[rng.Intn(i)], pts[rng.Intn(i)]
		u, v := dyadic(rng), dyadic(rng)
		p := make(geom.Point, d)
		for j := range p {
			p[j] = a[j] + u*(b[j]-a[j]) + v*(c[j]-a[j])
		}
		pts[i] = p
	}
	return pts
}

// dyadic returns a small random multiple of 2^-4 in (0, 2): affine weights
// that keep lattice-based combinations exact in floating point (integer
// differences scaled by dyadic rationals round nowhere).
func dyadic(rng *rand.Rand) float64 {
	return float64(1+rng.Intn(31)) * 0x1p-4
}

// gaussianDir returns a uniformly random unit vector in R^d.
func gaussianDir(rng *rand.Rand, d int) geom.Point {
	for {
		p := make(geom.Point, d)
		var n2 float64
		for j := range p {
			p[j] = rng.NormFloat64()
			n2 += p[j] * p[j]
		}
		if n2 > 1e-30 {
			inv := 1 / math.Sqrt(n2)
			for j := range p {
				p[j] *= inv
			}
			return p
		}
	}
}

// OnCircle returns n points on the unit circle at uniformly random angles
// (the 2D worst case: the hull contains all points).
func OnCircle(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		a := 2 * math.Pi * rng.Float64()
		pts[i] = geom.Point{math.Cos(a), math.Sin(a)}
	}
	return pts
}

// Grid3D returns the k x k x k integer lattice — the canonical degenerate
// 3D input for Section 6 (many coplanar and collinear point groups).
func Grid3D(k int) []geom.Point {
	pts := make([]geom.Point, 0, k*k*k)
	for x := 0; x < k; x++ {
		for y := 0; y < k; y++ {
			for z := 0; z < k; z++ {
				pts = append(pts, geom.Point{float64(x), float64(y), float64(z)})
			}
		}
	}
	return pts
}

// CoplanarBox3D returns n random points on the faces of the unit cube in 3D:
// a degenerate input in which each hull face carries many coplanar points.
func CoplanarBox3D(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		face := rng.Intn(6)
		u, v := rng.Float64(), rng.Float64()
		axis, side := face/2, float64(face%2)
		p := geom.Point{0, 0, 0}
		p[axis] = side
		p[(axis+1)%3] = u
		p[(axis+2)%3] = v
		pts[i] = p
	}
	return pts
}

// Collinear2D returns n points on the segment from a to b (inclusive of the
// endpoints), a degenerate input that the general-position engines must
// reject or handle via their documented error paths.
func Collinear2D(a, b geom.Point, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		t := float64(i) / float64(n-1)
		pts[i] = geom.Point{a[0] + t*(b[0]-a[0]), a[1] + t*(b[1]-a[1])}
	}
	return pts
}

// Perm returns a uniformly random permutation of {0, ..., n-1}. The
// randomized incremental algorithms insert points in this order; Theorem 4.2
// is a statement over this distribution.
func Perm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

// PermInto is Perm writing into buf (reused when its capacity allows). It
// replays rand.Perm's exact construction, so for the same rng state it
// produces the identical permutation — pooled callers (parhull.Builder) stay
// byte-compatible with the allocating path.
func PermInto(rng *rand.Rand, n int, buf []int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	m := buf[:n]
	// The i = 0 iteration only writes m[0] = 0, but its Intn(1) call advances
	// the rng state; skipping it would desync from rand.Perm's stream.
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	return m
}

// ApplyPerm returns pts reordered so result[i] = pts[perm[i]].
func ApplyPerm(pts []geom.Point, perm []int) []geom.Point {
	return ApplyPermInto(pts, perm, nil)
}

// ApplyPermInto is ApplyPerm writing into buf (reused when its capacity
// allows).
func ApplyPermInto(pts []geom.Point, perm []int, buf []geom.Point) []geom.Point {
	if cap(buf) < len(perm) {
		buf = make([]geom.Point, len(perm))
	}
	out := buf[:len(perm)]
	for i, p := range perm {
		out[i] = pts[p]
	}
	return out
}

// Shuffled returns a shuffled copy of pts.
func Shuffled(rng *rand.Rand, pts []geom.Point) []geom.Point {
	return ApplyPerm(pts, Perm(rng, len(pts)))
}

// Lift2D lifts 2D points onto the paraboloid z = x^2 + y^2. The lower hull
// of the lifted points is the Delaunay triangulation of the originals,
// connecting this package to the Delaunay extension.
func Lift2D(pts []geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Point{p[0], p[1], p[0]*p[0] + p[1]*p[1]}
	}
	return out
}

// RegularPolygon returns the vertices of a regular n-gon on the unit circle
// starting at angle phase — a deterministic all-on-hull 2D input.
func RegularPolygon(n int, phase float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		a := phase + 2*math.Pi*float64(i)/float64(n)
		pts[i] = geom.Point{math.Cos(a), math.Sin(a)}
	}
	return pts
}
