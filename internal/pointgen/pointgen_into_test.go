package pointgen

import (
	"reflect"
	"testing"

	"parhull/internal/geom"
)

// TestPermIntoMatchesPerm pins the byte-compatibility contract of PermInto:
// for the same rng state it must replay rand.Perm exactly, including into a
// dirty reused buffer.
func TestPermIntoMatchesPerm(t *testing.T) {
	var buf []int
	for _, n := range []int{0, 1, 2, 7, 100, 1000, 37} {
		want := Perm(NewRNG(int64(n)), n)
		buf = PermInto(NewRNG(int64(n)), n, buf)
		if len(buf) != len(want) {
			t.Fatalf("n=%d: length %d, want %d", n, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("n=%d: PermInto differs from Perm at %d", n, i)
			}
		}
		for i := range buf {
			buf[i] = -1 // dirty the buffer for the next round
		}
	}
}

func TestApplyPermInto(t *testing.T) {
	pts := UniformBall(NewRNG(1), 50, 3)
	perm := Perm(NewRNG(2), 50)
	want := ApplyPerm(pts, perm)
	var buf []geom.Point
	got := ApplyPermInto(pts, perm, buf)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("ApplyPermInto differs from ApplyPerm")
	}
}
