package pointgen

import (
	"math"
	"testing"

	"parhull/internal/geom"
)

func TestDeterminism(t *testing.T) {
	a := UniformBall(NewRNG(42), 50, 3)
	b := UniformBall(NewRNG(42), 50, 3)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := UniformBall(NewRNG(43), 50, 3)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestUniformBallInside(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		pts := UniformBall(NewRNG(1), 500, d)
		if err := geom.ValidateCloud(pts, d); err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			if p.Norm() > 1+1e-12 {
				t.Fatalf("d=%d point %d outside ball: |p|=%v", d, i, p.Norm())
			}
		}
	}
}

func TestOnSphereNorm(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		for i, p := range OnSphere(NewRNG(2), 300, d) {
			if math.Abs(p.Norm()-1) > 1e-9 {
				t.Fatalf("d=%d point %d off sphere: |p|=%v", d, i, p.Norm())
			}
		}
	}
}

func TestInCubeBounds(t *testing.T) {
	for _, p := range InCube(NewRNG(3), 300, 4) {
		for _, c := range p {
			if c < -1 || c > 1 {
				t.Fatalf("coordinate out of range: %v", p)
			}
		}
	}
}

func TestGaussianDims(t *testing.T) {
	pts := Gaussian(NewRNG(4), 100, 6)
	if err := geom.ValidateCloud(pts, 6); err != nil {
		t.Fatal(err)
	}
}

func TestOnCircle(t *testing.T) {
	for _, p := range OnCircle(NewRNG(5), 200) {
		if math.Abs(p.Norm()-1) > 1e-12 {
			t.Fatalf("off circle: %v", p)
		}
	}
}

func TestGrid3D(t *testing.T) {
	pts := Grid3D(3)
	if len(pts) != 27 {
		t.Fatalf("len = %d", len(pts))
	}
	seen := map[[3]float64]bool{}
	for _, p := range pts {
		seen[[3]float64{p[0], p[1], p[2]}] = true
	}
	if len(seen) != 27 {
		t.Fatal("duplicate grid points")
	}
}

func TestCoplanarBox3D(t *testing.T) {
	for _, p := range CoplanarBox3D(NewRNG(6), 300) {
		onFace := false
		for a := 0; a < 3; a++ {
			if p[a] == 0 || p[a] == 1 {
				onFace = true
			}
		}
		if !onFace {
			t.Fatalf("point not on a box face: %v", p)
		}
	}
}

func TestCollinear2D(t *testing.T) {
	pts := Collinear2D(geom.Point{0, 0}, geom.Point{2, 2}, 5)
	for _, p := range pts {
		if p[0] != p[1] {
			t.Fatalf("off line: %v", p)
		}
	}
	if !pts[0].Equal(geom.Point{0, 0}) || !pts[4].Equal(geom.Point{2, 2}) {
		t.Fatal("endpoints missing")
	}
}

func TestPermAndApply(t *testing.T) {
	rng := NewRNG(7)
	perm := Perm(rng, 100)
	seen := make([]bool, 100)
	for _, p := range perm {
		if p < 0 || p >= 100 || seen[p] {
			t.Fatal("not a permutation")
		}
		seen[p] = true
	}
	pts := Gaussian(NewRNG(8), 100, 2)
	re := ApplyPerm(pts, perm)
	for i := range perm {
		if !re[i].Equal(pts[perm[i]]) {
			t.Fatal("ApplyPerm misplaces")
		}
	}
	sh := Shuffled(NewRNG(9), pts)
	if len(sh) != len(pts) {
		t.Fatal("Shuffled length")
	}
}

func TestClustered(t *testing.T) {
	const n, d, k = 2000, 3, 8
	pts := Clustered(NewRNG(10), n, d, k, 0.02)
	if len(pts) != n {
		t.Fatalf("len = %d", len(pts))
	}
	if err := geom.ValidateCloud(pts, d); err != nil {
		t.Fatal(err)
	}
	// Determinism.
	again := Clustered(NewRNG(10), n, d, k, 0.02)
	for i := range pts {
		if !pts[i].Equal(again[i]) {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	// Clustering: the mean nearest-sample distance must be far below what a
	// uniform cloud of this size would show (points concentrate in k tiny
	// blobs of stddev 0.02).
	var total float64
	for i := 0; i < 200; i++ {
		best := math.Inf(1)
		for j := range pts {
			if j == i {
				continue
			}
			var d2 float64
			for c := range pts[i] {
				dx := pts[i][c] - pts[j][c]
				d2 += dx * dx
			}
			if d2 < best {
				best = d2
			}
		}
		total += math.Sqrt(best)
	}
	if avg := total / 200; avg > 0.02 {
		t.Fatalf("mean nearest-neighbor distance %.4f too large for clustered input", avg)
	}
	// Degenerate-parameter guards.
	if got := Clustered(NewRNG(11), 10, 2, 0, -1); len(got) != 10 {
		t.Fatal("k<1/spread<=0 defaults broken")
	}
}

func TestAnisotropic(t *testing.T) {
	const n, d = 1000, 3
	ratio := 0.05
	pts := Anisotropic(NewRNG(12), n, d, ratio)
	if err := geom.ValidateCloud(pts, d); err != nil {
		t.Fatal(err)
	}
	// Per-axis extent must shrink geometrically: axis j spans ~2*ratio^j.
	for j := 0; j < d; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range pts {
			lo = math.Min(lo, p[j])
			hi = math.Max(hi, p[j])
		}
		want := 2 * math.Pow(ratio, float64(j))
		if span := hi - lo; span > want*1.01 || span < want*0.2 {
			t.Fatalf("axis %d span %.4f, want ~%.4f", j, span, want)
		}
	}
	again := Anisotropic(NewRNG(12), n, d, ratio)
	for i := range pts {
		if !pts[i].Equal(again[i]) {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestLift2D(t *testing.T) {
	pts := []geom.Point{{1, 2}, {-3, 0.5}}
	l := Lift2D(pts)
	for i, p := range pts {
		if l[i][2] != p[0]*p[0]+p[1]*p[1] {
			t.Fatalf("bad lift for %v: %v", p, l[i])
		}
	}
}

func TestRegularPolygon(t *testing.T) {
	pts := RegularPolygon(6, 0)
	if len(pts) != 6 {
		t.Fatal("len")
	}
	for _, p := range pts {
		if math.Abs(p.Norm()-1) > 1e-12 {
			t.Fatalf("off circle: %v", p)
		}
	}
	if !pts[0].Equal(geom.Point{1, 0}) {
		t.Fatalf("phase 0 start: %v", pts[0])
	}
}
