package geom

import "math/big"

// orientExact computes the sign of the d x d determinant with rows
// verts[1]-verts[0], ..., verts[d-1]-verts[0], p-verts[0] using exact
// rational arithmetic. float64 coordinates convert to big.Rat losslessly, so
// the result is the true sign.
func orientExact(verts []Point, p Point) int {
	d := len(p)
	m := make([][]*big.Rat, d)
	base := verts[0]
	for i := 0; i < d; i++ {
		var src Point
		if i < d-1 {
			src = verts[i+1]
		} else {
			src = p
		}
		row := make([]*big.Rat, d)
		for j := 0; j < d; j++ {
			a := new(big.Rat).SetFloat64(src[j])
			b := new(big.Rat).SetFloat64(base[j])
			row[j] = a.Sub(a, b)
		}
		m[i] = row
	}
	return ratDetSign(m)
}

// ratDetSign returns the sign of the determinant of the square rational
// matrix m, destroying m in the process. It uses ordinary Gaussian
// elimination over Q; the dimensions here are tiny (d <= ~8), so the cost of
// rational arithmetic is acceptable on the rare filter failures.
func ratDetSign(m [][]*big.Rat) int {
	d := len(m)
	s := 1
	for col := 0; col < d; col++ {
		// Find a non-zero pivot.
		piv := -1
		for r := col; r < d; r++ {
			if m[r][col].Sign() != 0 {
				piv = r
				break
			}
		}
		if piv == -1 {
			return 0
		}
		if piv != col {
			m[piv], m[col] = m[col], m[piv]
			s = -s
		}
		pv := m[col][col]
		if pv.Sign() < 0 {
			s = -s
		}
		for r := col + 1; r < d; r++ {
			if m[r][col].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Quo(m[r][col], pv)
			for j := col + 1; j < d; j++ {
				t := new(big.Rat).Mul(f, m[col][j])
				m[r][j].Sub(m[r][j], t)
			}
			m[r][col].SetInt64(0)
		}
	}
	return s
}

// InCircle returns the sign of the standard 2D in-circle determinant:
// +1 if p lies strictly inside the circle through a, b, c (assumed in
// counterclockwise order), -1 if strictly outside, 0 if on the circle.
// If (a, b, c) are clockwise the sign is flipped, matching the usual
// convention sign = Orient2D(a,b,c) * inside. The result is exact.
func InCircle(a, b, c, p Point) int {
	adx, ady := a[0]-p[0], a[1]-p[1]
	bdx, bdy := b[0]-p[0], b[1]-p[1]
	cdx, cdy := c[0]-p[0], c[1]-p[1]

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	alift := adx*adx + ady*ady

	cdxady := cdx * ady
	adxcdy := adx * cdy
	blift := bdx*bdx + bdy*bdy

	adxbdy := adx * bdy
	bdxady := bdx * ady
	clift := cdx*cdx + cdy*cdy

	det := alift*(bdxcdy-cdxbdy) + blift*(cdxady-adxcdy) + clift*(adxbdy-bdxady)

	permanent := (abs(bdxcdy)+abs(cdxbdy))*alift +
		(abs(cdxady)+abs(adxcdy))*blift +
		(abs(adxbdy)+abs(bdxady))*clift
	errBound := iccErrBoundA * permanent
	if det > errBound || -det > errBound {
		return sign(det)
	}
	return inCircleExact(a, b, c, p)
}

var iccErrBoundA = (10 + 96*epsilon) * epsilon

func inCircleExact(a, b, c, p Point) int {
	rows := [3]Point{a, b, c}
	m := make([][]*big.Rat, 3)
	px := new(big.Rat).SetFloat64(p[0])
	py := new(big.Rat).SetFloat64(p[1])
	for i, q := range rows {
		dx := new(big.Rat).SetFloat64(q[0])
		dx.Sub(dx, px)
		dy := new(big.Rat).SetFloat64(q[1])
		dy.Sub(dy, py)
		lift := new(big.Rat).Mul(dx, dx)
		t := new(big.Rat).Mul(dy, dy)
		lift.Add(lift, t)
		m[i] = []*big.Rat{dx, dy, lift}
	}
	return ratDetSign(m)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
