package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func pt(cs ...float64) Point { return Point(cs) }

func TestOrient2DBasic(t *testing.T) {
	a, b := pt(0, 0), pt(1, 0)
	cases := []struct {
		c    Point
		want int
	}{
		{pt(0, 1), 1},
		{pt(0, -1), -1},
		{pt(2, 0), 0},
		{pt(-3, 0), 0},
		{pt(0.5, 1e-300), 1},
		{pt(0.5, -1e-300), -1},
	}
	for _, tc := range cases {
		if got := Orient2D(a, b, tc.c); got != tc.want {
			t.Errorf("Orient2D(%v,%v,%v) = %d, want %d", a, b, tc.c, got, tc.want)
		}
	}
}

func TestOrient2DAntisymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := pt(ax, ay), pt(bx, by), pt(cx, cy)
		return Orient2D(a, b, c) == -Orient2D(b, a, c) &&
			Orient2D(a, b, c) == Orient2D(b, c, a)
	}
	cfg := &quick.Config{MaxCount: 2000, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestOrient2DNearDegenerate uses points that are collinear up to tiny
// perturbations; the float filter must hand off to the exact path and report
// the true sign of the perturbation.
func TestOrient2DNearDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		x1, x2 := rng.Float64(), rng.Float64()
		a := pt(0.5, 0.5)
		b := pt(12, 12)
		c := pt(24, 24)
		// Move c off the line y=x by the smallest representable steps.
		steps := rng.Intn(5) - 2
		cy := c[1]
		for s := 0; s < steps; s++ {
			cy = math.Nextafter(cy, math.Inf(1))
		}
		for s := 0; s > steps; s-- {
			cy = math.Nextafter(cy, math.Inf(-1))
		}
		c[1] = cy
		want := 0
		if steps > 0 {
			want = 1
		} else if steps < 0 {
			want = -1
		}
		// Displacing c upward puts it left of the up-right line a->b,
		// so the expected orientation is positive.
		if got := Orient2D(a, b, c); got != want {
			t.Fatalf("iter %d (x1=%v,x2=%v): steps=%d got %d want %d", i, x1, x2, steps, got, want)
		}
	}
}

func TestOrient3DBasic(t *testing.T) {
	a, b, c := pt(0, 0, 0), pt(1, 0, 0), pt(0, 1, 0)
	// Orient3D = det[a-p; b-p; c-p]; p above the xy-plane gives -1.
	if got := Orient3D(a, b, c, pt(0, 0, 1)); got != -1 {
		t.Errorf("above: got %d want -1", got)
	}
	if got := Orient3D(a, b, c, pt(0, 0, -1)); got != 1 {
		t.Errorf("below: got %d want 1", got)
	}
	if got := Orient3D(a, b, c, pt(5, 7, 0)); got != 0 {
		t.Errorf("coplanar: got %d want 0", got)
	}
}

func TestOrientSimplexMatchesLowDim(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b, c := randPt(rng, 2), randPt(rng, 2), randPt(rng, 2)
		if OrientSimplex([]Point{a, b}, c) != Orient2D(a, b, c) {
			t.Fatalf("2d mismatch at %d", i)
		}
		p, q, r, s := randPt(rng, 3), randPt(rng, 3), randPt(rng, 3), randPt(rng, 3)
		if OrientSimplex([]Point{p, q, r}, s) != -Orient3D(p, q, r, s) {
			t.Fatalf("3d mismatch at %d", i)
		}
	}
}

// TestOrientSimplexAgainstExact drives the float-filtered general-d path and
// the exact rational path on the same random inputs.
func TestOrientSimplexAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for d := 2; d <= 6; d++ {
		for i := 0; i < 500; i++ {
			verts := make([]Point, d)
			for j := range verts {
				verts[j] = randPt(rng, d)
			}
			p := randPt(rng, d)
			got := OrientSimplex(verts, p)
			want := orientExact(verts, p)
			if got != want {
				t.Fatalf("d=%d iter=%d: OrientSimplex=%d exact=%d", d, i, got, want)
			}
		}
	}
}

func TestOrientSimplexDegenerateHighDim(t *testing.T) {
	// p inside the affine hull of the simplex base: determinant is exactly 0.
	d := 5
	verts := make([]Point, d)
	for i := range verts {
		verts[i] = make(Point, d)
		if i > 0 {
			verts[i][i-1] = 1 // e_{i-1}; base spans x_d = 0 minus one dim
		}
	}
	p := make(Point, d)
	p[0], p[1] = 0.25, 0.75 // inside span of rows -> det 0
	if got := OrientSimplex(verts, p); got != 0 {
		t.Fatalf("degenerate: got %d want 0", got)
	}
}

func TestInCircle(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0) in CCW order.
	a, b, c := pt(1, 0), pt(0, 1), pt(-1, 0)
	if got := InCircle(a, b, c, pt(0, 0)); got != 1 {
		t.Errorf("center: got %d want 1", got)
	}
	if got := InCircle(a, b, c, pt(2, 2)); got != -1 {
		t.Errorf("far outside: got %d want -1", got)
	}
	if got := InCircle(a, b, c, pt(0, -1)); got != 0 {
		t.Errorf("on circle: got %d want 0", got)
	}
}

func TestInCircleNearBoundary(t *testing.T) {
	a, b, c := pt(1, 0), pt(0, 1), pt(-1, 0)
	x := 0.6
	y := math.Sqrt(1 - x*x) // on unit circle up to rounding
	got := InCircle(a, b, c, pt(x, -y))
	// The exact answer depends on rounding of y; just require agreement with
	// the exact evaluator.
	want := inCircleExact(a, b, c, pt(x, -y))
	if got != want {
		t.Fatalf("filter/exact disagree: %d vs %d", got, want)
	}
}

func TestPointOps(t *testing.T) {
	p, q := pt(1, 2, 3), pt(4, 5, 6)
	if got := p.Add(q); !got.Equal(pt(5, 7, 9)) {
		t.Errorf("Add: %v", got)
	}
	if got := q.Sub(p); !got.Equal(pt(3, 3, 3)) {
		t.Errorf("Sub: %v", got)
	}
	if got := p.Dot(q); got != 32 {
		t.Errorf("Dot: %v", got)
	}
	if got := p.Scale(2); !got.Equal(pt(2, 4, 6)) {
		t.Errorf("Scale: %v", got)
	}
	if p.Norm2() != 14 {
		t.Errorf("Norm2: %v", p.Norm2())
	}
	if c := Centroid([]Point{pt(0, 0), pt(2, 4)}); !c.Equal(pt(1, 2)) {
		t.Errorf("Centroid: %v", c)
	}
	if !pt(1, 2).Finite() || pt(math.NaN(), 0).Finite() || pt(math.Inf(1), 0).Finite() {
		t.Error("Finite misclassifies")
	}
	if pt(1, 2).Equal(pt(1)) || !pt(1, 2).Equal(pt(1, 2)) {
		t.Error("Equal misclassifies")
	}
	if s := pt(1, 2.5).String(); s != "(1, 2.5)" {
		t.Errorf("String: %q", s)
	}
	cl := p.Clone()
	cl[0] = 99
	if p[0] != 1 {
		t.Error("Clone aliases")
	}
}

func TestValidateCloud(t *testing.T) {
	good := []Point{pt(0, 0), pt(1, 1)}
	if err := ValidateCloud(good, 2); err != nil {
		t.Fatalf("good cloud rejected: %v", err)
	}
	if err := ValidateCloud(good, 1); err == nil {
		t.Error("d=1 accepted")
	}
	if err := ValidateCloud([]Point{pt(0, 0, 0)}, 2); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := ValidateCloud([]Point{pt(math.NaN(), 0)}, 2); err == nil {
		t.Error("NaN accepted")
	}
}

func randPt(rng *rand.Rand, d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = rng.NormFloat64()
	}
	return p
}

func BenchmarkOrient2D(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = randPt(rng, 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % 100
		Orient2D(pts[j], pts[j+100], pts[j+200])
	}
}

func BenchmarkOrientSimplexD5(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	verts := make([]Point, 5)
	for i := range verts {
		verts[i] = randPt(rng, 5)
	}
	p := randPt(rng, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OrientSimplex(verts, p)
	}
}
