package geom

import (
	"math"
	"testing"
)

// TestZOrderPermIsPermutation checks the basic contract on a few clouds.
func TestZOrderPermIsPermutation(t *testing.T) {
	clouds := map[string][]Point{
		"empty":    {},
		"one":      {{1, 2}},
		"same":     {{3, 3}, {3, 3}, {3, 3}},
		"line":     {{0, 0}, {1, 0}, {2, 0}, {3, 0}},
		"nan":      {{math.NaN(), 1}, {0, math.Inf(1)}, {1, 1}},
		"grid3d":   grid3(4),
		"negative": {{-5, -5, -5}, {5, 5, 5}, {0, 0, 0}},
	}
	for name, pts := range clouds {
		perm := ZOrderPerm(pts)
		if len(perm) != len(pts) {
			t.Fatalf("%s: len %d != %d", name, len(perm), len(pts))
		}
		seen := make(map[int32]bool, len(perm))
		for _, v := range perm {
			if v < 0 || int(v) >= len(pts) || seen[v] {
				t.Fatalf("%s: not a permutation: %v", name, perm)
			}
			seen[v] = true
		}
	}
}

// TestZOrderQuadrants pins the curve's defining property in 2D: all points of
// one quadrant of the bounding square appear contiguously before any point of
// a later quadrant (the Z visits quadrants in a fixed order).
func TestZOrderQuadrants(t *testing.T) {
	// 8 points, two per quadrant of [0,1]^2, interleaved in input order.
	pts := []Point{
		{0.1, 0.1}, {0.9, 0.9}, {0.2, 0.2}, {0.8, 0.8},
		{0.9, 0.1}, {0.1, 0.9}, {0.8, 0.2}, {0.2, 0.9},
	}
	quad := func(p Point) int {
		q := 0
		if p[0] >= 0.5 {
			q |= 1
		}
		if p[1] >= 0.5 {
			q |= 2
		}
		return q
	}
	perm := ZOrderPerm(pts)
	seen := make(map[int]bool)
	last := -1
	for _, idx := range perm {
		q := quad(pts[idx])
		if q != last {
			if seen[q] {
				t.Fatalf("quadrant %d visited twice: order %v", q, perm)
			}
			seen[q] = true
			last = q
		}
	}
}

// TestZOrderDeterministic: same input, same permutation, and ties break by
// index (ascending).
func TestZOrderDeterministic(t *testing.T) {
	pts := grid3(5)
	a := ZOrderPerm(pts)
	b := ZOrderPerm(pts)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
	dup := []Point{{1, 1}, {1, 1}, {0, 0}, {1, 1}}
	perm := ZOrderPerm(dup)
	// The three identical points must appear in index order.
	var ones []int32
	for _, v := range perm {
		if dup[v][0] == 1 {
			ones = append(ones, v)
		}
	}
	for i := 1; i < len(ones); i++ {
		if ones[i] < ones[i-1] {
			t.Fatalf("tied points out of index order: %v", perm)
		}
	}
}

// TestZOrderLocality: on a k x k grid, consecutive points of the Z order are
// much closer on average than consecutive points of a shuffled order would be
// (the grid in natural row order already has locality; compare against the
// cloud diameter instead).
func TestZOrderLocality(t *testing.T) {
	const k = 16
	pts := make([]Point, 0, k*k)
	for x := 0; x < k; x++ {
		for y := 0; y < k; y++ {
			pts = append(pts, Point{float64(x), float64(y)})
		}
	}
	perm := ZOrderPerm(pts)
	var total float64
	for i := 1; i < len(perm); i++ {
		a, b := pts[perm[i-1]], pts[perm[i]]
		dx, dy := a[0]-b[0], a[1]-b[1]
		total += math.Sqrt(dx*dx + dy*dy)
	}
	avg := total / float64(len(perm)-1)
	// A random order averages ~0.52*k ≈ 8.3 for k=16; the Z curve stays
	// under 2 (mostly unit steps with occasional quadrant jumps).
	if avg > 3 {
		t.Fatalf("average Z-neighbor distance %.2f too large for a %dx%d grid", avg, k, k)
	}
}

func grid3(k int) []Point {
	pts := make([]Point, 0, k*k*k)
	for x := 0; x < k; x++ {
		for y := 0; y < k; y++ {
			for z := 0; z < k; z++ {
				pts = append(pts, Point{float64(x), float64(y), float64(z)})
			}
		}
	}
	return pts
}
