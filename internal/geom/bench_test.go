package geom

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the visibility-test hot path: the exact predicates
// (filtered determinant, rational fallback only when needed) against the
// cached-plane strided dot product the engines now use first.

func benchCloud(seed int64, n, d int) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = randPt(rng, d)
	}
	return pts
}

func BenchmarkOrient3D(b *testing.B) {
	pts := benchCloud(21, 400, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % 100
		Orient3D(pts[j], pts[j+100], pts[j+200], pts[j+300])
	}
}

func BenchmarkOrientSimplex(b *testing.B) {
	for _, d := range []int{2, 3, 5} {
		d := d
		b.Run(map[int]string{2: "d=2", 3: "d=3", 5: "d=5"}[d], func(b *testing.B) {
			pts := benchCloud(22, 100+d, d)
			verts := pts[100 : 100+d]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				OrientSimplex(verts, pts[i%100])
			}
		})
	}
}

// BenchmarkVisibleCachedPlane measures the engines' fast path: one strided
// row load, a d-term dot product, and the filter comparison.
func BenchmarkVisibleCachedPlane(b *testing.B) {
	for _, d := range []int{2, 3, 5} {
		d := d
		b.Run(map[int]string{2: "d=2", 3: "d=3", 5: "d=5"}[d], func(b *testing.B) {
			pts := benchCloud(23, 100+d, d)
			store := NewPointStore(pts)
			p := NewFacetPlane(pts[100:100+d], StaticFilterEps(store.MaxAbs()))
			if !p.Valid() {
				b.Fatal("NewFacetPlane failed")
			}
			sink := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s, cok := p.CertifiedSign(store.Row(int32(i % 100))); cok {
					sink += s
				}
			}
			_ = sink
		})
	}
}
