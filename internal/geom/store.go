package geom

// PointStore packs a point cloud into one flat coordinate array with stride
// d. The incremental engines build one per construction so the visibility
// hot path reads contiguous memory (a strided dot product against a cached
// facet hyperplane) instead of chasing a []Point header per test.
//
// The store also records the per-dimension maximum absolute coordinate,
// which StaticFilterEps folds into the static certification threshold valid
// for every point in the store (and for any point inside their bounding
// box, e.g. the interior reference point of the d-dimensional engine).
type PointStore struct {
	c      []float64
	d      int
	n      int
	maxAbs []float64
}

// NewPointStore copies pts (all of dimension d = len(pts[0])) into a flat
// store. The caller is responsible for validating the cloud first.
func NewPointStore(pts []Point) *PointStore {
	s := &PointStore{}
	s.Load(pts)
	return s
}

// Load refills the store from pts, growing the flat backing array only when
// the new cloud needs more room — the grow-only reuse a pooled Builder
// relies on. Every coordinate and the per-dimension maxima are rewritten,
// so no state from the previous cloud survives.
func (s *PointStore) Load(pts []Point) {
	d := 0
	if len(pts) > 0 {
		d = len(pts[0])
	}
	need := len(pts) * d
	if cap(s.c) < need {
		s.c = make([]float64, need)
	}
	s.c = s.c[:need]
	if cap(s.maxAbs) < d {
		s.maxAbs = make([]float64, d)
	}
	s.maxAbs = s.maxAbs[:d]
	clear(s.maxAbs)
	s.d = d
	s.n = len(pts)
	for i, p := range pts {
		row := s.c[i*d : i*d+d]
		copy(row, p)
		for j, v := range row {
			if v < 0 {
				v = -v
			}
			if v > s.maxAbs[j] {
				s.maxAbs[j] = v
			}
		}
	}
}

// Row returns the coordinates of point i as a slice view into the flat
// array. The view must not be mutated.
func (s *PointStore) Row(i int32) []float64 {
	o := int(i) * s.d
	return s.c[o : o+s.d : o+s.d]
}

// Coords returns the whole flat coordinate array (point i occupies
// [i*Dim(), (i+1)*Dim())). The batch visibility filters index it directly so
// one bounds check per point covers all of its coordinates. The slice is
// owned by the store and must not be mutated.
func (s *PointStore) Coords() []float64 { return s.c }

// At returns point i as a Point view (same backing memory as Row).
func (s *PointStore) At(i int32) Point { return Point(s.Row(i)) }

// Dim returns the dimension of the stored points.
func (s *PointStore) Dim() int { return s.d }

// Len returns the number of stored points.
func (s *PointStore) Len() int { return s.n }

// MaxAbs returns the per-dimension maximum absolute coordinate over the
// store. The slice is owned by the store and must not be mutated.
func (s *PointStore) MaxAbs() []float64 { return s.maxAbs }
