// Package geom provides the geometric primitives used by the convex hull,
// half-space intersection, and circle intersection engines: points in R^d,
// vector arithmetic, and exact sign-of-determinant orientation predicates.
//
// All branch decisions in the incremental algorithms go through the
// predicates in this package. Each predicate first evaluates a fast float64
// expression guarded by a forward error bound; if the sign cannot be
// certified, it falls back to exact rational arithmetic (math/big.Rat), so
// the combinatorial structure computed by the algorithms is identical to the
// ideal real-RAM algorithm on every float64 input.
package geom

import (
	"errors"
	"fmt"
	"math"
)

// Point is a point (or vector) in R^d, represented by its d Cartesian
// coordinates. The dimension is len(p).
type Point []float64

// ErrBadCoordinate is returned when an input point has a NaN or infinite
// coordinate, which the predicates cannot order consistently.
var ErrBadCoordinate = errors.New("geom: point has NaN or infinite coordinate")

// Dim returns the dimension of p.
func (p Point) Dim() int { return len(p) }

// Clone returns a copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Sub returns p - q as a new point.
func (p Point) Sub(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// Add returns p + q as a new point.
func (p Point) Add(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r
}

// Scale returns s*p as a new point.
func (p Point) Scale(s float64) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = s * p[i]
	}
	return r
}

// Dot returns the inner product of p and q.
func (p Point) Dot(q Point) float64 {
	var s float64
	for i := range p {
		s += p[i] * q[i]
	}
	return s
}

// Norm2 returns the squared Euclidean norm of p.
func (p Point) Norm2() float64 { return p.Dot(p) }

// Norm returns the Euclidean norm of p.
func (p Point) Norm() float64 { return math.Sqrt(p.Norm2()) }

// Finite reports whether every coordinate of p is a finite float64.
func (p Point) Finite() bool {
	for _, c := range p {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return false
		}
	}
	return true
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String formats p as "(x0, x1, ...)".
func (p Point) String() string {
	s := "("
	for i, c := range p {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%g", c)
	}
	return s + ")"
}

// Centroid returns the arithmetic mean of pts, which must be non-empty and
// share a dimension.
func Centroid(pts []Point) Point {
	d := len(pts[0])
	c := make(Point, d)
	for _, p := range pts {
		for i := 0; i < d; i++ {
			c[i] += p[i]
		}
	}
	inv := 1 / float64(len(pts))
	for i := range c {
		c[i] *= inv
	}
	return c
}

// ValidateCloud checks that pts is a non-empty set of finite points of the
// common dimension d. It is the shared input check used at API boundaries.
func ValidateCloud(pts []Point, d int) error {
	if d < 2 {
		return fmt.Errorf("geom: dimension %d not supported (need d >= 2)", d)
	}
	for i, p := range pts {
		if len(p) != d {
			return fmt.Errorf("geom: point %d has dimension %d, want %d", i, len(p), d)
		}
		if !p.Finite() {
			return fmt.Errorf("geom: point %d: %w", i, ErrBadCoordinate)
		}
	}
	return nil
}
