package geom

import (
	"math"
	"math/rand"
	"testing"
)

// cloudMaxAbs computes the per-dimension coordinate bound of a cloud, the
// way PointStore does.
func cloudMaxAbs(pts []Point, d int) []float64 {
	m := make([]float64, d)
	for _, p := range pts {
		for j := 0; j < d; j++ {
			if a := math.Abs(p[j]); a > m[j] {
				m[j] = a
			}
		}
	}
	return m
}

// TestFacetPlaneCertifiedMatchesOrientSimplex is the core soundness
// property of the cached-plane filter: whenever CertifiedSign certifies a
// sign, it equals the exact orientation predicate. On random inputs the
// filter must also decide nearly every test, otherwise it is useless.
func TestFacetPlaneCertifiedMatchesOrientSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for d := 2; d <= 6; d++ {
		cloud := make([]Point, 200)
		for i := range cloud {
			cloud[i] = randPt(rng, d)
		}
		eps := StaticFilterEps(cloudMaxAbs(cloud, d))
		if eps <= 0 {
			t.Fatalf("d=%d: StaticFilterEps disabled on a random cloud", d)
		}
		certified, total := 0, 0
		for trial := 0; trial < 50; trial++ {
			verts := make([]Point, d)
			for j := range verts {
				verts[j] = cloud[rng.Intn(len(cloud))]
			}
			p := NewFacetPlane(verts, eps)
			if !p.Valid() {
				t.Fatalf("d=%d: NewFacetPlane failed on random verts", d)
			}
			for _, q := range cloud {
				want := OrientSimplex(verts, q)
				got, cok := p.CertifiedSign(q)
				total++
				if cok {
					certified++
					if got != want {
						t.Fatalf("d=%d: certified sign %d, exact %d", d, got, want)
					}
				}
			}
		}
		// Duplicate vertices make some planes degenerate (N = 0, everything
		// uncertified); random distinct points certify essentially always.
		if certified == 0 {
			t.Fatalf("d=%d: filter certified nothing in %d tests", d, total)
		}
	}
}

// TestFacetPlaneVerticesUncertified: the defining vertices lie exactly on
// the plane, so the filter must never certify a sign for them.
func TestFacetPlaneVerticesUncertified(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for d := 2; d <= 6; d++ {
		verts := make([]Point, d)
		for j := range verts {
			verts[j] = randPt(rng, d)
		}
		p := NewFacetPlane(verts, StaticFilterEps(cloudMaxAbs(verts, d)))
		if !p.Valid() {
			t.Fatalf("d=%d: NewFacetPlane failed", d)
		}
		for j, v := range verts {
			if s, cok := p.CertifiedSign(v); cok {
				t.Fatalf("d=%d: vertex %d certified with sign %d (exactly on plane)", d, j, s)
			}
		}
	}
}

// TestFacetPlaneNearDegenerate: points collinear with the facet, or
// perturbed off it by far less than the certification threshold, must stay
// uncertified — and certification of clearly-off points must survive the
// tiny margin.
func TestFacetPlaneNearDegenerate(t *testing.T) {
	a, b := pt(0.1, 0.2), pt(0.9, 0.7)
	eps := StaticFilterEps([]float64{2, 2})
	p := NewFacetPlane([]Point{a, b}, eps)
	if !p.Valid() {
		t.Fatal("NewFacetPlane failed")
	}
	// Points on the segment's line (exact arithmetic would give 0 for the
	// first; the others differ from the line by ~1e-18, far below Eps).
	mid := pt((a[0]+b[0])/2, (a[1]+b[1])/2)
	for _, q := range []Point{mid, pt(mid[0]+1e-18, mid[1]), pt(mid[0], mid[1]-1e-18)} {
		if s, cok := p.CertifiedSign(q); cok {
			t.Fatalf("near-degenerate point %v certified with sign %d", q, s)
		}
	}
	// A point well off the line must certify and agree with Orient2D.
	for _, q := range []Point{pt(0, 1), pt(1, 0), pt(-1.5, 1.9)} {
		s, cok := p.CertifiedSign(q)
		if !cok {
			t.Fatalf("clear point %v not certified", q)
		}
		if want := Orient2D(a, b, q); s != want {
			t.Fatalf("point %v: certified %d, Orient2D %d", q, s, want)
		}
	}
}

// TestStaticFilterEps pins the closed form of the threshold and its gates.
func TestStaticFilterEps(t *testing.T) {
	// d=2: alpha_1 = 1, so Eps = 2*(2*1 + 3*2 + 2) * u * (2! * 2 * M0 * M1)
	// = 80*u*M0*M1.
	if got, want := StaticFilterEps([]float64{3, 5}), 80*epsilon*15; got != want {
		t.Errorf("d=2 threshold %g, want %g", got, want)
	}
	// Monotone in the coordinate bounds.
	if StaticFilterEps([]float64{1, 1, 1}) >= StaticFilterEps([]float64{2, 1, 1}) {
		t.Error("threshold not monotone in maxAbs")
	}
	for _, bad := range [][]float64{
		nil,
		{1},
		make([]float64, MaxPlaneDim+1),
		{0, 0}, // flat cloud: zero bound
		{math.MaxFloat64, math.MaxFloat64, math.MaxFloat64}, // overflow
	} {
		if eps := StaticFilterEps(bad); eps != 0 {
			t.Errorf("StaticFilterEps(%v) = %g, want 0 (disabled)", bad, eps)
		}
	}
}

// TestNewFacetPlaneRejects covers the gates: out-of-range dimension,
// disabled threshold, and mismatched inputs must disable the cache rather
// than mis-certify.
func TestNewFacetPlaneRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := MaxPlaneDim + 1
	verts := make([]Point, d)
	for j := range verts {
		verts[j] = randPt(rng, d)
	}
	if p := NewFacetPlane(verts, 1e-12); p.Valid() {
		t.Error("dimension above MaxPlaneDim accepted")
	}
	if p := NewFacetPlane([]Point{pt(1)}, 1e-12); p.Valid() {
		t.Error("1-point facet accepted")
	}
	if p := NewFacetPlane([]Point{pt(0, 0, 1), pt(1, 1, 0)}, 1e-12); p.Valid() {
		t.Error("vertex dimension mismatch accepted")
	}
	if p := NewFacetPlane([]Point{pt(0, 0), pt(1, 1)}, 0); p.Valid() {
		t.Error("zero threshold accepted")
	}
	var zero Plane
	if zero.Valid() {
		t.Error("zero Plane reports valid")
	}
	if s, ok := zero.CertifiedSign([]float64{1, 2}); ok {
		t.Errorf("zero Plane certified sign %d", s)
	}
}

// TestPointStore checks the flat-coordinate round trip and the per-
// dimension bound.
func TestPointStore(t *testing.T) {
	pts := []Point{pt(1, -2), pt(-3.5, 0.25), pt(0, 7)}
	s := NewPointStore(pts)
	if s.Len() != 3 || s.Dim() != 2 {
		t.Fatalf("Len/Dim = %d/%d", s.Len(), s.Dim())
	}
	for i, p := range pts {
		row := s.Row(int32(i))
		at := s.At(int32(i))
		for j := range p {
			if row[j] != p[j] || at[j] != p[j] {
				t.Fatalf("point %d coordinate %d: %g/%g vs %g", i, j, row[j], at[j], p[j])
			}
		}
	}
	if m := s.MaxAbs(); m[0] != 3.5 || m[1] != 7 {
		t.Fatalf("MaxAbs = %v, want [3.5 7]", m)
	}
	// The store copies: mutating the source must not leak in.
	pts[0][0] = 99
	if s.Row(0)[0] != 1 {
		t.Fatal("store aliases the input slice")
	}
}
