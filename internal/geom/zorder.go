package geom

import "sort"

// ZOrderPerm returns a permutation of {0, ..., len(pts)-1} that orders the
// points along the Morton (Z-order) curve of their bounding box: each
// coordinate is quantized to floor(63/d) bits over the cloud's per-dimension
// range and the bits are interleaved (highest first) into one sort key. Ties
// — points in the same Morton cell, or any points when a dimension's range
// collapses — break by index, so the permutation is deterministic.
//
// Consecutive positions of the returned order are spatially close, which is
// what the pre-hull pipeline exploits: contiguous blocks of a Z-ordered
// cloud are compact regions, so block sub-hulls stay small and their
// conflict scans touch coherent memory.
//
// Non-finite coordinates quantize to cell 0 instead of poisoning the
// comparison; callers that need a typed error for NaN/Inf validate the cloud
// first (the engines do).
func ZOrderPerm(pts []Point) []int32 {
	n := len(pts)
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	if n == 0 {
		return perm
	}
	d := len(pts[0])
	if d == 0 {
		return perm
	}
	bits := 63 / d
	if bits < 1 {
		bits = 1
	}
	lo, hi := bounds(pts, d)
	keys := make([]uint64, n)
	max := float64(uint64(1)<<uint(bits) - 1)
	q := make([]uint64, d)
	for i, p := range pts {
		for j := 0; j < d; j++ {
			q[j] = quantize(p[j], lo[j], hi[j], max)
		}
		keys[i] = interleave(q, bits)
	}
	sort.Slice(perm, func(a, b int) bool {
		ka, kb := keys[perm[a]], keys[perm[b]]
		if ka != kb {
			return ka < kb
		}
		return perm[a] < perm[b]
	})
	return perm
}

// bounds returns the per-dimension min and max over the cloud, ignoring
// non-finite coordinates (NaN comparisons are false, so they never move the
// running bounds off their finite seed).
func bounds(pts []Point, d int) (lo, hi []float64) {
	lo = make([]float64, d)
	hi = make([]float64, d)
	for j := 0; j < d; j++ {
		lo[j], hi[j] = pts[0][j], pts[0][j]
	}
	for _, p := range pts {
		for j := 0; j < d; j++ {
			if p[j] < lo[j] {
				lo[j] = p[j]
			}
			if p[j] > hi[j] {
				hi[j] = p[j]
			}
		}
	}
	return lo, hi
}

// quantize maps v in [lo, hi] onto an integer cell in [0, max]. A collapsed
// or non-finite range maps everything to cell 0.
func quantize(v, lo, hi, max float64) uint64 {
	span := hi - lo
	if !(span > 0) {
		return 0
	}
	t := (v - lo) / span * max
	if !(t > 0) { // NaN or <= 0
		return 0
	}
	if t > max {
		t = max
	}
	return uint64(t)
}

// interleave builds the Morton key: bit b of dimension j lands at position
// b*d + (d-1-j) from the low end, i.e. the key cycles through the dimensions
// from the highest quantized bit down.
func interleave(q []uint64, bits int) uint64 {
	var key uint64
	for b := bits - 1; b >= 0; b-- {
		for _, qj := range q {
			key = key<<1 | (qj>>uint(b))&1
		}
	}
	return key
}
