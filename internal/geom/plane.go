package geom

import "math"

// This file implements the cached facet hyperplane used by the hull engines'
// visibility fast path. The plane of a facet — normal N via cofactor
// expansion of the edge-vector matrix, offset Off = N·base — is computed
// once at facet creation in plain float64, and the per-point plane-side
// test reduces to a strided dot product plus one comparison against a
// static threshold Eps. The threshold is derived once per point cloud
// (StaticFilterEps) from worst-case forward-error analysis over all facets
// of that cloud: whenever |N·x - Off| > Eps the float sign provably equals
// the sign of the exact orientation determinant OrientSimplex computes;
// otherwise the caller falls back to the exact predicate, so the
// combinatorial output is unchanged.
//
// A per-facet running-error bound would be tighter, but computing it costs
// more than the determinant evaluation it replaces — the whole point of the
// cache is that facet creation stays a handful of flops. The price of the
// uniform threshold is pessimism on clouds mixing very different coordinate
// magnitudes (the bound scales with the product of per-dimension maxima),
// which only ever causes extra exact fallbacks, never wrong answers.

// MaxPlaneDim caps the dimension for which planes are cached: the cofactor
// expansion is O(d!), fine for the small constant dimensions the engines
// target and pointless beyond.
const MaxPlaneDim = 8

// Plane is a cached oriented hyperplane N·x = Off with certification
// threshold Eps. For any point x whose coordinates are bounded by the
// maxAbs vector Eps was derived from, |N·x - Off| > Eps implies
// sign(N·x - Off) equals the exact OrientSimplex(vp, x) sign of the
// defining facet. The zero Plane is invalid (no cache).
type Plane struct {
	N   [MaxPlaneDim]float64
	Off float64
	Eps float64
	d   uint8
}

// Valid reports whether the plane cache is populated.
func (p *Plane) Valid() bool { return p.d != 0 }

// Dim returns the dimension the plane was built in (0 if invalid).
func (p *Plane) Dim() int { return int(p.d) }

// Eval returns the float64 evaluation N·x - Off. x must have at least
// Dim() coordinates.
func (p *Plane) Eval(x []float64) float64 {
	if p.d == 3 {
		return p.N[0]*x[0] + p.N[1]*x[1] + p.N[2]*x[2] - p.Off
	}
	if p.d == 2 {
		return p.N[0]*x[0] + p.N[1]*x[1] - p.Off
	}
	n := p.N[:p.d]
	x = x[:len(n)]
	s := -p.Off
	for j, nj := range n {
		s += nj * x[j]
	}
	return s
}

// CertifiedSign returns the sign of the exact orientation determinant of
// the defining facet against x, when the static filter can certify it.
// ok=false means the caller must use the exact predicate.
func (p *Plane) CertifiedSign(x []float64) (s int, ok bool) {
	v := p.Eval(x)
	switch {
	case v > p.Eps:
		return 1, true
	case v < -p.Eps:
		return -1, true
	default:
		return 0, false
	}
}

// StaticFilterEps returns the certification threshold for a point cloud
// with per-dimension absolute coordinate bounds maxAbs (d = len(maxAbs)).
// It upper-bounds, over every facet of the cloud and every test point in
// it, the total rounding error of (a) the float edge-vector cofactor
// normal, (b) the float offset, and (c) the per-test float dot product.
//
// Derivation (u = 2^-53 unit roundoff, M_j = maxAbs[j]): edge-vector
// entries are bounded by 2M_j with absolute error <= 2uM_j; a k x k
// cofactor determinant over columns S is bounded by D = k! prod_{c in S}
// 2M_c with accumulated error alpha_k * u * D where alpha_1 = 1 and
// alpha_k = alpha_{k-1} + k + 1 (one product, one entry-error, one
// rounding term per expansion column, plus k-1 partial-sum roundings).
// With Q = d! 2^(d-1) prod_j M_j, the normal components satisfy
// |N_j| M_j <= Q/d and carry error alpha_{d-1} u Q / d each; the offset is
// bounded by Q with error (alpha_{d-1} + d) u Q; and the (d+1)-term test
// dot product adds gamma-style rounding (d+1) u * 2Q. Total:
// (2 alpha_{d-1} + 3d + 2) u Q, doubled here to absorb the (1+u)^k
// inflation of intermediate magnitudes the analysis treats as exact.
//
// A zero return disables the cache (d out of [2, MaxPlaneDim], a zero
// bound — degenerate flat cloud — or overflow).
func StaticFilterEps(maxAbs []float64) float64 {
	d := len(maxAbs)
	if d < 2 || d > MaxPlaneDim {
		return 0
	}
	alpha, fact := 1.0, 1.0
	for k := 2; k <= d-1; k++ {
		alpha += float64(k + 1)
	}
	for k := 2; k <= d; k++ {
		fact *= float64(k)
	}
	q := fact * math.Ldexp(1, d-1)
	for _, m := range maxAbs {
		q *= m
	}
	eps := 2 * (2*alpha + 3*float64(d) + 2) * epsilon * q
	if eps <= 0 || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return 0
	}
	return eps
}

// planeDet computes the determinant of the k x k matrix m (row-major,
// stride k) by cofactor expansion along the first row. k <= MaxPlaneDim-1,
// so the factorial cost is a small constant paid once per facet creation,
// and all scratch lives on the stack.
func planeDet(m []float64, k int) float64 {
	switch k {
	case 1:
		return m[0]
	case 2:
		return m[0]*m[3] - m[1]*m[2]
	}
	var minor [(MaxPlaneDim - 1) * (MaxPlaneDim - 1)]float64
	det := 0.0
	for j := 0; j < k; j++ {
		for r := 1; r < k; r++ {
			mi := (r - 1) * (k - 1)
			for c := 0; c < k; c++ {
				if c == j {
					continue
				}
				minor[mi] = m[r*k+c]
				mi++
			}
		}
		t := m[j] * planeDet(minor[:(k-1)*(k-1)], k-1)
		if j%2 == 0 {
			det += t
		} else {
			det -= t
		}
	}
	return det
}

// NewFacetPlane builds the cached hyperplane of the facet with vertices vp
// (d points of dimension d, base-first, the same convention OrientSimplex
// uses): N_j is the signed cofactor of the edge-vector matrix, Off = N·vp[0],
// and sign(N·x - Off) equals sign(OrientSimplex(vp, x)) whenever
// |N·x - Off| > eps. eps must come from StaticFilterEps over a maxAbs
// vector bounding every point the plane will be evaluated against; eps <= 0
// (cache disabled) or a dimension mismatch returns the invalid zero Plane.
// The constructor performs no heap allocation.
func NewFacetPlane(vp []Point, eps float64) Plane {
	d := len(vp)
	if eps <= 0 || d < 2 || d > MaxPlaneDim || len(vp[0]) != d {
		return Plane{}
	}
	var p Plane
	base := vp[0]
	switch d {
	case 2:
		// N = (a_y - b_y, b_x - a_x): the 2D cofactor specialization.
		p.N[0] = vp[0][1] - vp[1][1]
		p.N[1] = vp[1][0] - vp[0][0]
	case 3:
		// N = (v1-v0) x (v2-v0), which carries exactly the cofactor signs
		// (-1)^(2+j) of the 3x3 orientation determinant.
		v1, v2 := vp[1], vp[2]
		u0, u1, u2 := v1[0]-base[0], v1[1]-base[1], v1[2]-base[2]
		w0, w1, w2 := v2[0]-base[0], v2[1]-base[1], v2[2]-base[2]
		p.N[0] = u1*w2 - u2*w1
		p.N[1] = u2*w0 - u0*w2
		p.N[2] = u0*w1 - u1*w0
	default:
		// Edge-vector matrix: d-1 rows vp[i+1]-vp[0] of width d, then
		// N_j = (-1)^(d-1+j) det(rows without column j) — the cofactor of
		// the x_j entry in the last row of the OrientSimplex determinant.
		var rows [(MaxPlaneDim - 1) * MaxPlaneDim]float64
		for i := 1; i < d; i++ {
			for j := 0; j < d; j++ {
				rows[(i-1)*d+j] = vp[i][j] - base[j]
			}
		}
		var minor [(MaxPlaneDim - 1) * (MaxPlaneDim - 1)]float64
		for j := 0; j < d; j++ {
			for r := 0; r < d-1; r++ {
				mi := r * (d - 1)
				for c := 0; c < d; c++ {
					if c == j {
						continue
					}
					minor[mi] = rows[r*d+c]
					mi++
				}
			}
			det := planeDet(minor[:(d-1)*(d-1)], d-1)
			if (d-1+j)%2 == 1 {
				det = -det
			}
			p.N[j] = det
		}
	}
	off := p.N[0] * base[0]
	for j := 1; j < d; j++ {
		off += p.N[j] * base[j]
	}
	p.Off = off
	p.Eps = eps
	p.d = uint8(d)
	return p
}
