package geom

import "math"

// Machine epsilon for float64 (2^-53), the unit roundoff used by the static
// error filters below. The filter constants for Orient2D and Orient3D follow
// Shewchuk, "Adaptive Precision Floating-Point Arithmetic and Fast Robust
// Geometric Predicates" (1997); the general-dimension filter uses a
// deliberately conservative Hadamard-style bound (see orientDFloat).
const epsilon = 1.1102230246251565e-16 // 2^-53

var (
	ccwErrBoundA = (3 + 16*epsilon) * epsilon
	o3dErrBoundA = (7 + 56*epsilon) * epsilon
)

// Orient2D returns the sign (+1, 0, -1) of the signed area of triangle
// (a, b, c): +1 if c lies to the left of the directed line a->b, -1 if to
// the right, 0 if the three points are collinear. The result is exact.
func Orient2D(a, b, c Point) int {
	detl := (a[0] - c[0]) * (b[1] - c[1])
	detr := (a[1] - c[1]) * (b[0] - c[0])
	det := detl - detr
	if detl > 0 {
		if detr <= 0 {
			return sign(det)
		}
	} else if detl < 0 {
		if detr >= 0 {
			return sign(det)
		}
	} else {
		return sign(det)
	}
	detsum := math.Abs(detl) + math.Abs(detr)
	if math.Abs(det) >= ccwErrBoundA*detsum {
		return sign(det)
	}
	return orientExact([]Point{a, b}, c)
}

// Orient3D returns the sign of the determinant
//
//	| a-d |
//	| b-d |
//	| c-d |
//
// which is positive when d sees the triangle (a, b, c) in counterclockwise
// order (d is below the plane oriented by the right-hand rule on a, b, c).
// The result is exact.
func Orient3D(a, b, c, d Point) int {
	adx, ady, adz := a[0]-d[0], a[1]-d[1], a[2]-d[2]
	bdx, bdy, bdz := b[0]-d[0], b[1]-d[1], b[2]-d[2]
	cdx, cdy, cdz := c[0]-d[0], c[1]-d[1], c[2]-d[2]

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	cdxady := cdx * ady
	adxcdy := adx * cdy
	adxbdy := adx * bdy
	bdxady := bdx * ady

	det := adz*(bdxcdy-cdxbdy) + bdz*(cdxady-adxcdy) + cdz*(adxbdy-bdxady)

	permanent := (math.Abs(bdxcdy)+math.Abs(cdxbdy))*math.Abs(adz) +
		(math.Abs(cdxady)+math.Abs(adxcdy))*math.Abs(bdz) +
		(math.Abs(adxbdy)+math.Abs(bdxady))*math.Abs(cdz)
	if math.Abs(det) >= o3dErrBoundA*permanent {
		return sign(det)
	}
	return orientExact([]Point{a, b, c}, d)
}

// OrientSimplex returns the sign of the d x d determinant whose rows are
// verts[1]-verts[0], ..., verts[d-1]-verts[0], p-verts[0], where
// d = len(p) and len(verts) == d. For d == 2 it equals
// Orient2D(verts[0], verts[1], p); for d == 3 it equals
// -Orient3D(verts[0], verts[1], verts[2], p) up to the row-order convention
// documented below. The result is exact.
//
// Convention: the rows are listed base-first, so the sign is positive when p
// is on the positive side of the oriented hyperplane spanned (in order) by
// the edge vectors out of verts[0].
func OrientSimplex(verts []Point, p Point) int {
	d := len(p)
	switch d {
	case 2:
		return Orient2D(verts[0], verts[1], p)
	case 3:
		// Rows v1-v0, v2-v0, p-v0: this is the standard 3x3 orientation
		// determinant det[b-a; c-a; p-a].
		return orient3Rows(verts[0], verts[1], verts[2], p)
	default:
		s, ok := orientDFloat(verts, p)
		if ok {
			return s
		}
		return orientExact(verts, p)
	}
}

// orient3Rows computes sign det[b-a; c-a; p-a] exactly, reusing the Orient3D
// filter via the identity det[b-a; c-a; p-a] = -det[a-p; b-p; c-p].
func orient3Rows(a, b, c, p Point) int {
	return -Orient3D(a, b, c, p)
}

// orientDFloat evaluates the general-dimension orientation determinant in
// float64 using Gaussian elimination with partial pivoting, certifying the
// sign with a conservative Hadamard-style error bound. It reports ok=false
// when the sign cannot be certified.
func orientDFloat(verts []Point, p Point) (s int, ok bool) {
	d := len(p)
	// Build the matrix of difference rows.
	m := make([]float64, d*d)
	had := 1.0 // product of row 2-norms (Hadamard bound on |det|)
	for i := 0; i < d; i++ {
		var src Point
		if i < d-1 {
			src = verts[i+1]
		} else {
			src = p
		}
		var rn float64
		for j := 0; j < d; j++ {
			v := src[j] - verts[0][j]
			m[i*d+j] = v
			rn += v * v
		}
		had *= math.Sqrt(rn)
	}
	det, growth := detGEPP(m, d)
	// Conservative forward bound: c(d) * u * growth-adjusted Hadamard bound.
	// The constant d^3 dominates the O(d^2) elementary-op error accumulation
	// with a wide margin; growth tracks pivot amplification.
	bound := float64(d*d*d) * epsilon * math.Max(had, growth)
	if math.Abs(det) > bound {
		return sign(det), true
	}
	return 0, false
}

// detGEPP computes the determinant of the d x d row-major matrix m in place
// using Gaussian elimination with partial pivoting. It also returns a growth
// measure (the maximum absolute entry seen during elimination, raised to the
// power d) used by the caller's error bound.
func detGEPP(m []float64, d int) (det, growth float64) {
	det = 1
	maxEntry := 0.0
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if a := math.Abs(m[i*d+j]); a > maxEntry {
				maxEntry = a
			}
		}
	}
	for col := 0; col < d; col++ {
		// Partial pivot.
		piv, pivAbs := col, math.Abs(m[col*d+col])
		for r := col + 1; r < d; r++ {
			if a := math.Abs(m[r*d+col]); a > pivAbs {
				piv, pivAbs = r, a
			}
		}
		if pivAbs == 0 {
			return 0, math.Pow(maxEntry, float64(d))
		}
		if piv != col {
			for j := col; j < d; j++ {
				m[piv*d+j], m[col*d+j] = m[col*d+j], m[piv*d+j]
			}
			det = -det
		}
		pv := m[col*d+col]
		det *= pv
		for r := col + 1; r < d; r++ {
			f := m[r*d+col] / pv
			m[r*d+col] = 0
			for j := col + 1; j < d; j++ {
				m[r*d+j] -= f * m[col*d+j]
				if a := math.Abs(m[r*d+j]); a > maxEntry {
					maxEntry = a
				}
			}
		}
	}
	return det, math.Pow(maxEntry, float64(d))
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}
