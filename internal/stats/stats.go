// Package stats provides the small statistical toolkit used by the
// experiment harness: harmonic numbers (the H_n of Theorem 4.2), summary
// statistics, least-squares fits of measured depths against ln n, and
// low-overhead sharded counters for work accounting in the parallel engines.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Harmonic returns H_n = sum_{i=1..n} 1/i. H_0 = 0.
func Harmonic(n int) float64 {
	// Exact summation below a threshold; asymptotic expansion above it.
	if n <= 0 {
		return 0
	}
	if n < 1024 {
		var h float64
		for i := n; i >= 1; i-- { // small-to-large for accuracy
			h += 1 / float64(i)
		}
		return h
	}
	x := float64(n)
	return math.Log(x) + eulerMascheroni + 1/(2*x) - 1/(12*x*x)
}

const eulerMascheroni = 0.5772156649015328606

// Summary holds order statistics of a sample.
type Summary struct {
	N                 int
	Mean, Std         float64
	Min, Max          float64
	P50, P90, P99     float64
	SumOfSquaredDevia float64
}

// Summarize computes a Summary of xs. It copies xs before sorting.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	var sum float64
	for _, x := range cp {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	for _, x := range cp {
		d := x - s.Mean
		s.SumOfSquaredDevia += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(s.SumOfSquaredDevia / float64(s.N-1))
	}
	s.Min, s.Max = cp[0], cp[s.N-1]
	s.P50 = quantile(cp, 0.50)
	s.P90 = quantile(cp, 0.90)
	s.P99 = quantile(cp, 0.99)
	return s
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String formats a Summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%g p50=%g p90=%g p99=%g max=%g",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// FitLine fits y = a + b*x by ordinary least squares and returns (a, b, r2).
// It is used to fit measured dependence depth against ln n, reproducing the
// "depth is Theta(log n)" shape of Theorem 1.1.
func FitLine(xs, ys []float64) (a, b, r2 float64) {
	n := float64(len(xs))
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	var ssRes float64
	for i := range xs {
		e := ys[i] - (a + b*xs[i])
		ssRes += e * e
	}
	if ssTot == 0 {
		r2 = 1
	} else {
		r2 = 1 - ssRes/ssTot
	}
	return a, b, r2
}

// Theorem42Bound returns the failure-probability bound of Theorem 4.2,
// c * n^-(sigma-g), for a configuration space with multiplicity c and
// maximum degree g. It is only valid for sigma >= g*k*e^2.
func Theorem42Bound(n int, c, g int, sigma float64) float64 {
	return float64(c) * math.Pow(float64(n), -(sigma-float64(g)))
}

// Theorem42MinSigma returns the smallest sigma for which the Theorem 4.2 tail
// bound applies: g*k*e^2.
func Theorem42MinSigma(g, k int) float64 {
	return float64(g*k) * math.E * math.E
}

// Theorem31Bound evaluates the Clarkson–Shor bound of Theorem 3.1:
// n * g^2 * sum_i E[|T_i|]/i^2, where sizes[i-1] is (an estimate of)
// E[|T({x_1..x_i})|].
func Theorem31Bound(g int, sizes []float64) float64 {
	n := float64(len(sizes))
	var sum float64
	for i, t := range sizes {
		ii := float64(i + 1)
		sum += t / (ii * ii)
	}
	return n * float64(g*g) * sum
}

// Histogram counts observations into unit-width integer buckets. It is used
// for depth-distribution tails (experiment E2).
type Histogram struct {
	counts []int
	total  int
}

// Observe adds v (>= 0) to the histogram.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	for len(h.counts) <= v {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Count returns the number of observations equal to v.
func (h *Histogram) Count(v int) int {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// TailProb returns the empirical Pr[X >= v].
func (h *Histogram) TailProb(v int) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	var c int
	for i := v; i < len(h.counts); i++ {
		if i >= 0 {
			c += h.counts[i]
		}
	}
	if v < 0 {
		c = h.total
	}
	return float64(c) / float64(h.total)
}

// Max returns the largest observed value, or -1 if empty.
func (h *Histogram) Max() int {
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i] > 0 {
			return i
		}
	}
	return -1
}
