package stats

import (
	"math"
	"sync"
	"testing"
)

func TestHarmonic(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0}, {1, 1}, {2, 1.5}, {3, 1.5 + 1.0/3},
	}
	for _, c := range cases {
		if got := Harmonic(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Harmonic(%d) = %v, want %v", c.n, got, c.want)
		}
	}
	// Cross-check the asymptotic branch against direct summation.
	for _, n := range []int{1024, 5000, 100000} {
		var direct float64
		for i := n; i >= 1; i-- {
			direct += 1 / float64(i)
		}
		if got := Harmonic(n); math.Abs(got-direct) > 1e-9 {
			t.Errorf("Harmonic(%d) = %.12f, direct %.12f", n, got, direct)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.P50-2.5) > 1e-12 {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.Std <= 0 {
		t.Errorf("Std = %v", s.Std)
	}
	if e := Summarize(nil); e.N != 0 {
		t.Errorf("empty summary: %+v", e)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestFitLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	a, b, r2 := FitLine(xs, ys)
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Fatalf("fit: a=%v b=%v r2=%v", a, b, r2)
	}
	if a, _, _ := FitLine(xs[:1], ys[:1]); !math.IsNaN(a) {
		t.Error("underdetermined fit should be NaN")
	}
	if a, _, _ := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); !math.IsNaN(a) {
		t.Error("degenerate x fit should be NaN")
	}
}

func TestTheoremBounds(t *testing.T) {
	// Theorem 4.2: with c=2, g=2 (2D hull), sigma = g*k*e^2 ~ 29.6.
	sigma := Theorem42MinSigma(2, 2)
	if math.Abs(sigma-4*math.E*math.E) > 1e-12 {
		t.Fatalf("min sigma = %v", sigma)
	}
	p := Theorem42Bound(1000, 2, 2, sigma)
	want := 2 * math.Pow(1000, -(sigma-2))
	if math.Abs(p-want) > 1e-20*want {
		t.Fatalf("bound = %v want %v", p, want)
	}
	// Theorem 3.1: with |T_i| = i and g=1 the bound is n * H_n-ish.
	sizes := make([]float64, 100)
	for i := range sizes {
		sizes[i] = float64(i + 1)
	}
	got := Theorem31Bound(1, sizes)
	if math.Abs(got-100*Harmonic(100)) > 1e-9 {
		t.Fatalf("Theorem31Bound = %v want %v", got, 100*Harmonic(100))
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int{0, 1, 1, 3, -5} {
		h.Observe(v)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(1) != 2 || h.Count(2) != 0 || h.Count(0) != 2 || h.Count(99) != 0 {
		t.Fatal("bad counts")
	}
	if h.Max() != 3 {
		t.Fatalf("max = %d", h.Max())
	}
	if got := h.TailProb(1); math.Abs(got-3.0/5) > 1e-12 {
		t.Fatalf("TailProb(1) = %v", got)
	}
	if got := h.TailProb(-1); got != 1 {
		t.Fatalf("TailProb(-1) = %v", got)
	}
	var empty Histogram
	if !math.IsNaN(empty.TailProb(0)) || empty.Max() != -1 {
		t.Error("empty histogram misbehaves")
	}
}

func TestShardedCounter(t *testing.T) {
	c := NewShardedCounter(7) // rounds to 8
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc(id)
			}
		}(uint64(w))
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("Load = %d", got)
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("Reset failed")
	}
	var nilC *ShardedCounter
	nilC.Inc(0)
	nilC.Reset()
	if nilC.Load() != 0 {
		t.Fatal("nil counter")
	}
}

func TestMaxTracker(t *testing.T) {
	var m MaxTracker
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 100; i++ {
				m.Observe(base*100 + i)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := m.Load(); got != 799 {
		t.Fatalf("max = %d", got)
	}
	var nilM *MaxTracker
	nilM.Observe(5)
	if nilM.Load() != 0 {
		t.Fatal("nil tracker")
	}
}
