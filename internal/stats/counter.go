package stats

import "sync/atomic"

// cacheLine is the assumed cache-line size used to pad counter shards so
// concurrent increments from different workers do not false-share.
const cacheLine = 64

type paddedCounter struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// ShardedCounter is a low-contention counter for hot-path work accounting
// (e.g. counting visibility tests across goroutines). Increment pressure is
// spread across shards; Load sums them.
//
// A nil *ShardedCounter is valid and all operations on it are no-ops, so
// engines can make instrumentation strictly optional without branching.
type ShardedCounter struct {
	shards []paddedCounter
	mask   uint64
}

// NewShardedCounter returns a counter with the given number of shards,
// rounded up to a power of two (minimum 1).
func NewShardedCounter(shards int) *ShardedCounter {
	n := 1
	for n < shards {
		n <<= 1
	}
	return &ShardedCounter{shards: make([]paddedCounter, n), mask: uint64(n - 1)}
}

// Add adds delta to the shard selected by key (callers typically pass a
// worker id or a cheap hash).
func (c *ShardedCounter) Add(key uint64, delta int64) {
	if c == nil {
		return
	}
	c.shards[key&c.mask].v.Add(delta)
}

// Inc is Add(key, 1).
func (c *ShardedCounter) Inc(key uint64) { c.Add(key, 1) }

// Load returns the current total across all shards.
func (c *ShardedCounter) Load() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Reset zeroes all shards.
func (c *ShardedCounter) Reset() {
	if c == nil {
		return
	}
	for i := range c.shards {
		c.shards[i].v.Store(0)
	}
}

// MaxTracker tracks a maximum value concurrently (used for the running
// maximum dependence depth).
//
// A nil *MaxTracker is valid; operations are no-ops and Load returns 0.
type MaxTracker struct {
	v atomic.Int64
}

// Observe raises the tracked maximum to x if x is larger.
func (m *MaxTracker) Observe(x int64) {
	if m == nil {
		return
	}
	for {
		cur := m.v.Load()
		if x <= cur || m.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Load returns the tracked maximum.
func (m *MaxTracker) Load() int64 {
	if m == nil {
		return 0
	}
	return m.v.Load()
}

// Reset zeroes the tracked maximum.
func (m *MaxTracker) Reset() {
	if m == nil {
		return
	}
	m.v.Store(0)
}
