package sched

import (
	"os"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestMain raises GOMAXPROCS so the multi-worker paths run even on
// single-core machines.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 10000} {
		marks := make([]atomic.Int32, n)
		ParallelFor(n, 3, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				marks[i].Add(1)
			}
		})
		for i := range marks {
			if got := marks[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestParallelForDefaultGrain(t *testing.T) {
	var sum atomic.Int64
	ParallelFor(1000, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	})
	if got := sum.Load(); got != 999*1000/2 {
		t.Fatalf("sum = %d", got)
	}
}

func TestGroupRunsAll(t *testing.T) {
	g := NewGroup(4)
	var count atomic.Int64
	var spawnNested func(depth int)
	spawnNested = func(depth int) {
		count.Add(1)
		if depth < 3 {
			for i := 0; i < 3; i++ {
				g.Go(func() { spawnNested(depth + 1) })
			}
		}
	}
	for i := 0; i < 5; i++ {
		g.Go(func() { spawnNested(0) })
	}
	g.Wait()
	// 5 roots, each a ternary tree of depth 3: 5 * (1+3+9+27) = 200.
	if got := count.Load(); got != 200 {
		t.Fatalf("ran %d tasks, want 200", got)
	}
}

func TestGroupDefaultLimit(t *testing.T) {
	g := NewGroup(0)
	var n atomic.Int32
	for i := 0; i < 100; i++ {
		g.Go(func() { n.Add(1) })
	}
	g.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d", n.Load())
	}
}

// TestRunRounds checks both the results and the round count: a task chain of
// length k must take exactly k rounds regardless of how many chains run.
func TestRunRounds(t *testing.T) {
	type task struct{ remaining int }
	var processed atomic.Int64
	initial := make([]task, 50)
	for i := range initial {
		initial[i] = task{remaining: i % 7}
	}
	rounds := RunRounds(initial, func(tk task, emit func(task)) {
		processed.Add(1)
		if tk.remaining > 0 {
			emit(task{tk.remaining - 1})
		}
	})
	if rounds != 7 { // longest chain: remaining=6 -> 7 steps
		t.Fatalf("rounds = %d, want 7", rounds)
	}
	// Total tasks processed: sum over i of (i%7 + 1).
	want := int64(0)
	for i := 0; i < 50; i++ {
		want += int64(i%7 + 1)
	}
	if got := processed.Load(); got != want {
		t.Fatalf("processed %d, want %d", got, want)
	}
	if r := RunRounds(nil, func(tk task, emit func(task)) {}); r != 0 {
		t.Fatalf("empty frontier: rounds = %d", r)
	}
}

// TestRunRoundsFanout checks that a task may emit several successors.
func TestRunRoundsFanout(t *testing.T) {
	type task struct{ depth int }
	var leaves atomic.Int64
	rounds := RunRounds([]task{{0}}, func(tk task, emit func(task)) {
		if tk.depth == 4 {
			leaves.Add(1)
			return
		}
		emit(task{tk.depth + 1})
		emit(task{tk.depth + 1})
	})
	if rounds != 5 {
		t.Fatalf("rounds = %d, want 5", rounds)
	}
	if got := leaves.Load(); got != 16 {
		t.Fatalf("leaves = %d, want 16", got)
	}
}

func BenchmarkParallelFor(b *testing.B) {
	data := make([]float64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelFor(len(data), 1024, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j] = float64(j) * 1.5
			}
		})
	}
}

// TestGroupBoundsGoroutines pins the Group contract the engines rely on:
// the number of goroutines is bounded by the limit, not by the number or
// nesting depth of forks. A chain of 50k dependent forks under GroupLimit=1
// must complete (inline execution, no queueing) without the goroutine count
// growing with the chain length.
func TestGroupBoundsGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	g := NewGroup(1)
	var ran atomic.Int64
	var maxG atomic.Int64
	const depth = 50000
	var launch func(d int)
	launch = func(d int) {
		g.Go(func() {
			ran.Add(1)
			if n := int64(runtime.NumGoroutine()); n > maxG.Load() {
				maxG.Store(n)
			}
			if d > 0 {
				launch(d - 1)
			}
		})
	}
	launch(depth)
	g.Wait()
	if got := ran.Load(); got != depth+1 {
		t.Fatalf("ran %d forks, want %d", got, depth+1)
	}
	// With limit 1 at most one Group goroutine exists at a time; everything
	// else runs inline. Allow slack for unrelated runtime goroutines.
	if high := maxG.Load(); high > int64(base)+3 {
		t.Fatalf("goroutine high-water %d over base %d with limit 1", high, base)
	}
}

// TestGroupWideForkBounded checks the bound under a wide (non-nested) fork
// pattern: 10k independent forks against a small limit all run exactly once.
func TestGroupWideForkBounded(t *testing.T) {
	g := NewGroup(2)
	var live, high, ran atomic.Int64
	for i := 0; i < 10000; i++ {
		g.Go(func() {
			l := live.Add(1)
			for {
				h := high.Load()
				if l <= h || high.CompareAndSwap(h, l) {
					break
				}
			}
			ran.Add(1)
			live.Add(-1)
		})
	}
	g.Wait()
	if got := ran.Load(); got != 10000 {
		t.Fatalf("ran %d forks, want 10000", got)
	}
	// Non-nested forks: at most limit spawned + the forking goroutine inline.
	if h := high.Load(); h > 3 {
		t.Fatalf("concurrent executions high-water %d with limit 2", h)
	}
}
