package sched

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic contained by one of this package's execution
// substrates (Executor worker, Group function, ParallelFor body): the typed
// form the engines propagate instead of crashing the process. Worker is the
// pool worker id (-1 when the panic happened outside a fixed pool), Task a
// best-effort rendering of the task being executed (empty for closures), and
// Stack the goroutine stack captured at recovery.
type PanicError struct {
	Worker int
	Task   string
	Value  any
	Stack  []byte
}

// Error implements error. The stack is included: a contained panic is a bug
// report, and by the time it surfaces the goroutine that produced it is gone.
func (e *PanicError) Error() string {
	where := "worker"
	if e.Worker < 0 {
		where = "goroutine"
	}
	msg := fmt.Sprintf("sched: panic in %s %d: %v", where, e.Worker, e.Value)
	if e.Task != "" {
		msg += fmt.Sprintf(" (task %s)", e.Task)
	}
	if len(e.Stack) > 0 {
		msg += "\n" + string(e.Stack)
	}
	return msg
}

// Unwrap exposes a panic value that is itself an error, so errors.Is/As see
// through containment — e.g. a ridge-table exhaustion panic carrying
// conmap.ErrCapacity still matches the capacity sentinel after recovery,
// which is what lets the degradation ladder retry on it.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// asPanicError wraps a recovered value, passing through values that are
// already contained (a panic can cross substrate layers: a ParallelFor body
// inside an Executor task) so the innermost capture's context survives.
func asPanicError(worker int, task string, r any) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	return &PanicError{Worker: worker, Task: task, Value: r, Stack: debug.Stack()}
}

// AsError converts a value recovered by a caller's own recover() into the
// same *PanicError the substrates produce — the exported form of the
// containment conversion, used by the public API's top-level guards.
func AsError(r any) error { return asPanicError(-1, "", r) }

// Recovered runs fn, converting a panic into a *PanicError instead of
// unwinding further. It is the containment shim for code that runs schedule
// steps on the calling goroutine (the rounds engines, the sequential loop).
func Recovered(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = asPanicError(-1, "", r)
		}
	}()
	fn()
	return nil
}
