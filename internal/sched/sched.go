// Package sched provides the parallel execution substrate the hull engines
// run on. It stands in for the machine models of the paper: goroutines on
// Go's work-stealing runtime emulate the binary-forking model of Theorem 5.5
// (fork-join via Group), and a round-synchronous frontier executor emulates
// the CRCW PRAM execution of Theorem 5.4 (RunRounds), making the number of
// rounds — the recursion depth of Theorem 5.3 — directly observable.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the parallelism level used by this package: GOMAXPROCS.
func Workers() int { return runtime.GOMAXPROCS(0) }

// ParallelFor calls fn over disjoint subranges covering [0, n), in parallel.
// grain is the minimum chunk size (a value <= 0 selects a default). Chunks
// are handed out dynamically so irregular iterations load-balance.
//
// ParallelFor is panic-transparent: a panic in a chunk goroutine does not
// kill the process — the first one is captured (as a *PanicError), the
// remaining chunks are abandoned, and the panic is re-thrown on the calling
// goroutine after all bodies have returned, where the caller's containment
// layer (an Executor worker, a Group function, or a Recovered shim) turns it
// into a typed error.
func ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if grain <= 0 {
		grain = 1 + n/(8*w)
	}
	if w == 1 || n <= grain {
		fn(0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var fault atomic.Pointer[PanicError]
	body := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				fault.CompareAndSwap(nil, asPanicError(-1, "", r))
			}
		}()
		for {
			if fault.Load() != nil {
				return // a sibling chunk panicked; stop starting new work
			}
			lo := int(next.Add(int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	nw := w
	if maxChunks := (n + grain - 1) / grain; nw > maxChunks {
		nw = maxChunks
	}
	wg.Add(nw)
	for i := 0; i < nw; i++ {
		go body()
	}
	wg.Wait()
	if pe := fault.Load(); pe != nil {
		panic(pe)
	}
}

// Group is a bounded fork-join scope: Go either spawns fn on a fresh
// goroutine (if below the concurrency limit) or runs it inline, and Wait
// blocks until every spawned function has returned. It is the Fork/Join of
// the binary-forking model with a practical cap on live goroutines.
//
// The bound is on goroutines, not on pending work: at most limit functions
// ever run on Group-spawned goroutines at once, regardless of how many
// forks a computation issues or how deeply forks nest. Everything beyond
// the limit executes inline on the forking goroutine — a fork chain of
// depth k with limit 1 runs as ordinary nested calls on at most two
// goroutines (the caller plus one spawned), never k goroutines. This is
// what lets the hull engines fork one chain per ridge without tying memory
// to the ridge count (see TestGroupBoundsGoroutines for the contract).
//
// Panics are contained, never propagated: a panic in fn (spawned or inline)
// is converted to a *PanicError, the first one is retained for Err, and
// every subsequently forked function is dropped so the group drains and Wait
// returns promptly with no goroutine left behind.
type Group struct {
	wg  sync.WaitGroup
	sem chan struct{}

	failed  atomic.Bool
	errOnce sync.Once
	err     error
}

// NewGroup returns a Group allowing up to limit concurrently spawned
// functions (limit <= 0 selects 4*GOMAXPROCS). limit 1 still makes
// progress — excess forks run inline, they are never queued or dropped.
func NewGroup(limit int) *Group {
	if limit <= 0 {
		limit = 4 * Workers()
	}
	return &Group{sem: make(chan struct{}, limit)}
}

// fail records the first contained panic and flips the drain flag.
func (g *Group) fail(pe *PanicError) {
	g.errOnce.Do(func() { g.err = pe })
	g.failed.Store(true)
}

// protect runs fn with panic containment.
func (g *Group) protect(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			g.fail(asPanicError(-1, "", r))
		}
	}()
	fn()
}

// Go runs fn exactly once: concurrently when a slot is free and inline
// otherwise. Inline execution keeps the fork semantics (fn completes
// before some sibling forks proceed) without unbounded goroutine growth;
// the inline case returns only after fn returns, so callers may not assume
// Go is non-blocking. After a contained panic, fn is dropped (the group is
// draining toward Wait).
func (g *Group) Go(fn func()) {
	if g.failed.Load() {
		return
	}
	select {
	case g.sem <- struct{}{}:
		g.wg.Add(1)
		go func() {
			defer func() {
				<-g.sem
				g.wg.Done()
			}()
			g.protect(fn)
		}()
	default:
		g.protect(fn)
	}
}

// Wait blocks until all functions started with Go have completed, including
// functions they transitively spawned on g.
func (g *Group) Wait() { g.wg.Wait() }

// Failed cheaply reports whether a panic has been contained; chain loops
// poll it to stop doing real work while the group drains.
func (g *Group) Failed() bool { return g.failed.Load() }

// Err returns the first contained panic as a *PanicError, or nil. Call
// after Wait.
func (g *Group) Err() error { return g.err }

// RunRounds executes a frontier computation round-synchronously: every task
// in the current frontier runs (in parallel) exactly once per round, emitting
// tasks for the next round; a global barrier separates rounds. It returns
// the number of rounds executed. This mirrors the PRAM schedule in the proof
// of Theorem 5.4, so the return value is the empirical recursion depth of
// Algorithm 3 (Theorem 5.3).
func RunRounds[T any](initial []T, step func(task T, emitNext func(T))) int {
	rounds, _ := RunRoundsWidths(initial, step)
	return rounds
}

// RunRoundsWidths is RunRounds additionally reporting the frontier size of
// every round — the number of ProcessRidge calls that could run in parallel.
// The widths quantify the available parallelism (work/span) that Theorems
// 5.4/5.5 promise: total tasks spread over O(log n) rounds.
func RunRoundsWidths[T any](initial []T, step func(task T, emitNext func(T))) (int, []int) {
	frontier := initial
	rounds := 0
	var widths []int
	for len(frontier) > 0 {
		rounds++
		widths = append(widths, len(frontier))
		frontier = collectParallel(frontier, step)
	}
	return rounds, widths
}

// collectParallel runs step on every task, gathering emitted tasks into a
// per-task slot and concatenating the slots after the barrier. No shared
// mutex is involved — the seed version funneled every chunk's output through
// one global lock, serializing the wide early rounds — and the concatenation
// order is deterministic (task index), so the next frontier's order does not
// depend on chunk timing.
func collectParallel[T any](tasks []T, step func(task T, emitNext func(T))) []T {
	parts := make([][]T, len(tasks))
	ParallelFor(len(tasks), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var local []T
			step(tasks[i], func(t T) { local = append(local, t) })
			parts[i] = local
		}
	})
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if n == 0 {
		return nil
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
