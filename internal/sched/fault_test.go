package sched

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"parhull/internal/leakcheck"
)

// TestExecutorLeakNormalExit pins the baseline: a pool that runs its tasks
// to completion leaves no goroutine behind after Wait.
func TestExecutorLeakNormalExit(t *testing.T) {
	leakcheck.Check(t)
	var ran atomic.Int64
	var x *Executor[int]
	x = NewExecutor(4, func(w, task int) {
		ran.Add(1)
		if task > 0 {
			x.Fork(w, task-1)
		}
	})
	for i := 0; i < 32; i++ {
		x.Fork(External, 8)
	}
	x.Wait()
	if got, want := ran.Load(), int64(32*9); got != want {
		t.Fatalf("ran %d tasks, want %d", got, want)
	}
	if x.Err() != nil {
		t.Fatalf("clean run reported error: %v", x.Err())
	}
}

// TestExecutorPanicContainment pins the tentpole contract: a panicking task
// neither crashes the process nor deadlocks Wait; the pool drains, the first
// panic surfaces as a typed *PanicError with worker id, task rendering, and
// stack, and no goroutine leaks.
func TestExecutorPanicContainment(t *testing.T) {
	leakcheck.Check(t)
	var ran atomic.Int64
	var x *Executor[int]
	x = NewExecutor(4, func(w, task int) {
		if task == 13 {
			panic("boom at 13")
		}
		ran.Add(1)
		if task > 0 {
			x.Fork(w, task-1)
		}
	})
	for i := 0; i < 8; i++ {
		x.Fork(External, 20) // every chain walks through 13 unless drained first
	}
	x.Wait() // must return: every pending count is retired even on panic paths

	err := x.Err()
	if err == nil {
		t.Fatal("panic was not reported")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *PanicError", err)
	}
	if pe.Value != "boom at 13" {
		t.Errorf("panic value = %v, want boom at 13", pe.Value)
	}
	if pe.Worker < 0 || pe.Worker >= 4 {
		t.Errorf("worker id = %d, want 0..3", pe.Worker)
	}
	if pe.Task != "13" {
		t.Errorf("task rendering = %q, want \"13\"", pe.Task)
	}
	if len(pe.Stack) == 0 || !strings.Contains(err.Error(), "boom at 13") {
		t.Errorf("error lost the stack or the value: %v", err)
	}
	if !x.Failed() {
		t.Error("Failed() = false after contained panic")
	}
}

// TestExecutorDrainsAfterPanic checks graceful degradation, not just
// survival: after the first panic the pool stops running queued tasks (they
// are retired unrun) rather than plowing through a poisoned workload. A
// single worker is held inside the panicking task while the queue is loaded,
// so every queued task is deterministically behind the failure.
func TestExecutorDrainsAfterPanic(t *testing.T) {
	leakcheck.Check(t)
	started := make(chan struct{})
	release := make(chan struct{})
	var ran atomic.Int64
	x := NewExecutor(1, func(w, task int) {
		if task < 0 {
			close(started)
			<-release
			panic("boom")
		}
		ran.Add(1)
	})
	x.Fork(External, -1)
	<-started // the only worker is now inside the panicking task
	for i := 0; i < 64; i++ {
		x.Fork(External, i)
	}
	close(release)
	x.Wait()
	if x.Err() == nil {
		t.Fatal("panic was not reported")
	}
	if ran.Load() != 0 {
		t.Errorf("%d queued tasks ran after the panic — drain let work through", ran.Load())
	}
}

// TestExecutorFirstPanicWins submits many panicking tasks and checks exactly
// one is retained and the rest are contained silently.
func TestExecutorFirstPanicWins(t *testing.T) {
	leakcheck.Check(t)
	x := NewExecutor(8, func(w, task int) { panic(task) })
	for i := 0; i < 100; i++ {
		x.Fork(External, i)
	}
	x.Wait()
	var pe *PanicError
	if !errors.As(x.Err(), &pe) {
		t.Fatalf("error is %T, want *PanicError", x.Err())
	}
	if _, ok := pe.Value.(int); !ok {
		t.Errorf("panic value = %v (%T), want an int task id", pe.Value, pe.Value)
	}
}

// TestGroupPanicContainment is the Group-substrate version of the pool
// contract: spawned and inline panics both convert to *PanicError, Wait
// returns, later forks are dropped, and no goroutine leaks.
func TestGroupPanicContainment(t *testing.T) {
	leakcheck.Check(t)
	for _, limit := range []int{1, 4} { // limit 1 forces the inline path
		g := NewGroup(limit)
		var dropped atomic.Int64
		g.Go(func() { panic("group boom") })
		g.Wait() // the panic is contained by now (limit 1 ran it inline)
		for i := 0; i < 16; i++ {
			g.Go(func() { dropped.Add(1) }) // dropped: the group has failed
		}
		g.Wait()
		var pe *PanicError
		if !errors.As(g.Err(), &pe) {
			t.Fatalf("limit %d: error is %T, want *PanicError", limit, g.Err())
		}
		if pe.Value != "group boom" {
			t.Errorf("limit %d: panic value = %v", limit, pe.Value)
		}
		if !g.Failed() {
			t.Errorf("limit %d: Failed() = false", limit)
		}
		if dropped.Load() != 0 {
			t.Errorf("limit %d: %d functions ran after failure", limit, dropped.Load())
		}
	}
}

// TestGroupNestedPanic panics deep inside a fork chain; the contained error
// must surface at the root Wait with the group drained.
func TestGroupNestedPanic(t *testing.T) {
	leakcheck.Check(t)
	g := NewGroup(2)
	var fork func(depth int)
	fork = func(depth int) {
		if depth == 0 {
			panic("leaf")
		}
		g.Go(func() { fork(depth - 1) })
		g.Go(func() { fork(depth - 1) })
	}
	g.Go(func() { fork(6) })
	g.Wait()
	var pe *PanicError
	if !errors.As(g.Err(), &pe) || pe.Value != "leaf" {
		t.Fatalf("nested panic not contained: %v", g.Err())
	}
}

// TestParallelForPanicTransparent checks ParallelFor's contract: a panic in
// one chunk stops siblings from claiming new chunks, all bodies return, and
// the first panic re-throws on the caller as a *PanicError.
func TestParallelForPanicTransparent(t *testing.T) {
	leakcheck.Check(t)
	err := Recovered(func() {
		ParallelFor(10000, 1, func(lo, hi int) {
			if lo <= 5000 && 5000 < hi {
				panic("chunk boom")
			}
		})
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "chunk boom" {
		t.Fatalf("ParallelFor panic not contained: %v", err)
	}
}

// TestPanicErrorPassThrough pins the cross-layer invariant: a *PanicError
// crossing a second containment layer (ParallelFor inside an Executor task)
// is passed through, keeping the innermost capture, not re-wrapped.
func TestPanicErrorPassThrough(t *testing.T) {
	leakcheck.Check(t)
	x := NewExecutor[int](2, func(w, task int) {
		ParallelFor(100, 1, func(lo, hi int) {
			if lo == 0 {
				panic("inner")
			}
		})
	})
	x.Fork(External, 0)
	x.Wait()
	var pe *PanicError
	if !errors.As(x.Err(), &pe) {
		t.Fatalf("error is %T, want *PanicError", x.Err())
	}
	if pe.Value != "inner" {
		t.Errorf("outer layer re-wrapped the panic: value = %v", pe.Value)
	}
}

// TestRecoveredNil checks the no-panic path returns nil.
func TestRecoveredNil(t *testing.T) {
	if err := Recovered(func() {}); err != nil {
		t.Fatalf("Recovered of clean fn = %v", err)
	}
}

// TestAsError checks the exported conversion used by the public guards.
func TestAsError(t *testing.T) {
	err := AsError("caught")
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "caught" || pe.Worker != -1 {
		t.Fatalf("AsError = %#v", err)
	}
}
