package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind selects the fork-join substrate the asynchronous hull engines run
// on. The work-stealing executor is the default; the Group engine is kept
// as a selectable fallback (the A3 ablation in cmd/hullbench). Both
// substrates execute the same facet creations — only the schedule differs
// (Theorem 5.5's relaxed-order guarantee).
type Kind int

const (
	// KindSteal runs chains on a fixed pool of long-lived workers with
	// per-worker LIFO deques and steal-on-empty (Blumofe-Leiserson work
	// stealing, the scheduler the binary-forking model assumes).
	KindSteal Kind = iota
	// KindGroup spawns a bounded goroutine per forked chain (sched.Group).
	KindGroup
)

// External is the worker id to pass to Executor.Fork from outside the pool
// (root tasks submitted before Wait). External forks are spread round-robin
// across the deques.
const External = -1

// Executor is a work-stealing fork-join pool: a fixed set of long-lived
// worker goroutines, each owning a LIFO deque of pending tasks. A worker
// pushes its forks onto its own deque and pops from the same end (depth-
// first, cache-warm, the order a serial execution would use); a worker whose
// deque is empty steals from the opposite end of a sibling's deque (oldest
// task, most likely to fan out); a worker that finds nothing parks until new
// work arrives. This is the Fork of the binary-forking model (Theorem 5.5)
// run on the scheduler that model assumes, replacing Group's goroutine-per-
// fork: no channel-semaphore handshake and no goroutine spawn per forked
// ridge chain, and — because the pool is fixed — every task learns a stable
// worker id it can use to index per-worker state (the engines' arenas).
//
// The task type T is a value, not a closure: forks carry plain task structs
// through the deques, so the steady-state fork path performs no allocation
// (deque slabs amortize). The run callback receives the executing worker's
// id alongside the task — this is how spawned chains learn their worker.
//
// An Executor runs one or more cycles on the same worker pool. The simple
// one-shot shape is NewExecutor / Fork / Wait (quiesce + stop the workers).
// A long-lived owner instead calls Quiesce at the end of each cycle — the
// workers park but stay alive — then Restart to arm the next cycle before
// forking again, and Close once to retire the pool. Fork must not be called
// between entering Quiesce/Wait and the following Restart. Writes made by
// the owner between cycles are visible to the workers of the next cycle:
// every task is handed over through a deque mutex, and Quiesce returns only
// after every run call of the cycle has returned.
//
// Panics are contained, never propagated: a panic in run is converted to a
// *PanicError carrying the worker id, the task, and the stack; the first one
// is retained for Err, and every still-queued task is drained without
// running so Wait returns promptly with the pool quiesced and no goroutine
// leaked.
type Executor[T any] struct {
	run    func(worker int, task T)
	deques []deque[T]

	failed  atomic.Bool
	errOnce sync.Once
	err     error

	// pending counts unfinished tasks plus one submission token held by the
	// constructor and released by Wait, so the count cannot touch zero while
	// roots are still being forked. done closes on the unique 1 -> 0 step.
	pending atomic.Int64
	done    chan struct{}

	// idlers is read on every fork: only when a worker is parked does Fork
	// take the wake lock. In the facet-creation steady state every worker is
	// busy and a fork is a deque push plus two uncontended atomics.
	idlers atomic.Int32
	rr     atomic.Uint32 // round-robin target for external forks

	mu      sync.Mutex
	wake    sync.Cond
	seq     uint64 // bumped under mu by every wake, guards against lost signals
	stopped bool
	wg      sync.WaitGroup
}

// deque is one worker's task queue: owner pushes and pops at the tail
// (LIFO), thieves take from the head (FIFO). A plain mutex suffices — the
// owner's push/pop touch an uncontended lock in the steady state, and steals
// are rare by construction (they only happen when a deque runs dry).
type deque[T any] struct {
	mu   sync.Mutex
	head int
	buf  []T
	// Pad so neighboring deques do not false-share a cache line.
	_ [64]byte
}

func (d *deque[T]) push(t T) {
	d.mu.Lock()
	d.buf = append(d.buf, t)
	d.mu.Unlock()
}

// pop takes the newest task (owner side). Slots are zeroed on removal so
// the deque does not retain dead facets, and the buffer resets when drained.
func (d *deque[T]) pop() (T, bool) {
	var zero T
	d.mu.Lock()
	if d.head == len(d.buf) {
		d.head = 0
		d.buf = d.buf[:0]
		d.mu.Unlock()
		return zero, false
	}
	t := d.buf[len(d.buf)-1]
	d.buf[len(d.buf)-1] = zero
	d.buf = d.buf[:len(d.buf)-1]
	d.mu.Unlock()
	return t, true
}

// steal takes the oldest task (thief side).
func (d *deque[T]) steal() (T, bool) {
	var zero T
	d.mu.Lock()
	if d.head == len(d.buf) {
		d.mu.Unlock()
		return zero, false
	}
	t := d.buf[d.head]
	d.buf[d.head] = zero
	d.head++
	d.mu.Unlock()
	return t, true
}

// NewExecutor starts a pool of workers goroutines (workers <= 0 selects
// GOMAXPROCS) executing run(worker, task) for every forked task. Exactly
// workers goroutines exist for the lifetime of the pool, regardless of how
// many tasks are forked or how deeply forks nest — the goroutine-bound
// contract TestExecutorBoundsGoroutines pins, mirroring Group's.
func NewExecutor[T any](workers int, run func(worker int, task T)) *Executor[T] {
	if workers <= 0 {
		workers = Workers()
	}
	x := &Executor[T]{
		run:    run,
		deques: make([]deque[T], workers),
		done:   make(chan struct{}),
	}
	x.wake.L = &x.mu
	x.pending.Store(1) // the submission token; Wait releases it
	x.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go x.worker(i)
	}
	return x
}

// Fork enqueues a task. from is the worker id of the calling task (so the
// fork lands on the caller's own deque, preserving the LIFO depth-first
// order of the binary-forking model) or External from outside the pool.
func (x *Executor[T]) Fork(from int, task T) {
	x.pending.Add(1)
	w := from
	if w < 0 || w >= len(x.deques) {
		w = int(x.rr.Add(1)-1) % len(x.deques)
	}
	x.deques[w].push(task)
	if x.idlers.Load() > 0 {
		x.mu.Lock()
		x.seq++
		x.wake.Broadcast()
		x.mu.Unlock()
	}
}

// Wait blocks until every forked task (including tasks forked by tasks) has
// completed, then stops the workers and returns — the one-shot shape,
// equivalent to Quiesce followed by Close.
func (x *Executor[T]) Wait() {
	x.Quiesce()
	x.Close()
}

// Quiesce blocks until every forked task of the current cycle has completed.
// The workers stay alive and parked, ready for Restart; no run call is in
// flight once Quiesce returns (each task's completion is retired only after
// its run returns).
func (x *Executor[T]) Quiesce() {
	x.release() // drop the submission token
	<-x.done
}

// Restart arms the next cycle after a Quiesce: a fresh submission token, a
// fresh quiescence gate, and cleared failure state (a cycle that contained a
// panic does not poison the next one). Only the owner may call it, and only
// between Quiesce and the next cycle's first Fork. No worker touches the
// reset fields while parked — pending and done are reached only through
// exec, and no task exists between cycles — so the plain writes are safe;
// they become visible to workers through the deque mutex of the next Fork.
func (x *Executor[T]) Restart() {
	x.pending.Store(1)
	x.done = make(chan struct{})
	x.failed.Store(false)
	x.err = nil
	x.errOnce = sync.Once{}
}

// Close stops the workers and joins them. Call after Quiesce (or let Wait do
// both). Idempotent.
func (x *Executor[T]) Close() {
	x.mu.Lock()
	x.stopped = true
	x.wake.Broadcast()
	x.mu.Unlock()
	x.wg.Wait()
}

// release retires one pending count; the unique transition to zero opens
// the quiescence gate.
func (x *Executor[T]) release() {
	if x.pending.Add(-1) == 0 {
		close(x.done)
	}
}

// fail records the first contained panic and flips the drain flag.
func (x *Executor[T]) fail(pe *PanicError) {
	x.errOnce.Do(func() { x.err = pe })
	x.failed.Store(true)
}

// Failed cheaply reports whether a panic has been contained; the engines'
// chain loops poll it to stop mid-chain while the pool drains.
func (x *Executor[T]) Failed() bool { return x.failed.Load() }

// Err returns the first contained panic as a *PanicError, or nil. Call
// after Wait.
func (x *Executor[T]) Err() error { return x.err }

// exec runs one task with panic containment; release happens on every path,
// so the quiescence count cannot be lost to a panic (a lost release would
// deadlock Wait).
func (x *Executor[T]) exec(id int, t T) {
	defer x.release()
	defer func() {
		if r := recover(); r != nil {
			x.fail(asPanicError(id, fmt.Sprint(t), r))
		}
	}()
	x.run(id, t)
}

func (x *Executor[T]) worker(id int) {
	defer x.wg.Done()
	for {
		t, ok := x.find(id)
		if !ok {
			t, ok = x.park(id)
			if !ok {
				return
			}
		}
		if x.failed.Load() {
			x.release() // drain: retire the task without running it
			continue
		}
		x.exec(id, t)
	}
}

// find pops the worker's own deque, then tries to steal from each sibling
// in turn (starting just past its own index so thieves spread out).
func (x *Executor[T]) find(id int) (T, bool) {
	if t, ok := x.deques[id].pop(); ok {
		return t, true
	}
	n := len(x.deques)
	for k := 1; k < n; k++ {
		if t, ok := x.deques[(id+k)%n].steal(); ok {
			return t, true
		}
	}
	var zero T
	return zero, false
}

// park blocks until a task is available (returned) or the pool stops
// (ok=false). The idlers counter is raised before the final rescan, so a
// concurrent Fork either makes its push visible to that rescan or sees
// idlers > 0 and bumps seq under the lock — a lost wakeup is impossible.
func (x *Executor[T]) park(id int) (T, bool) {
	var zero T
	x.idlers.Add(1)
	defer x.idlers.Add(-1)
	for {
		x.mu.Lock()
		seq := x.seq
		stopped := x.stopped
		x.mu.Unlock()
		if stopped {
			return zero, false
		}
		if t, ok := x.find(id); ok {
			return t, true
		}
		x.mu.Lock()
		for x.seq == seq && !x.stopped {
			x.wake.Wait()
		}
		x.mu.Unlock()
	}
}
