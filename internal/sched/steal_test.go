package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestExecutorRunsAll checks that every forked task runs exactly once,
// including tasks forked by tasks (nested ternary fan-out).
func TestExecutorRunsAll(t *testing.T) {
	type job struct{ depth int }
	var count atomic.Int64
	var x *Executor[job]
	x = NewExecutor(4, func(w int, j job) {
		count.Add(1)
		if j.depth < 3 {
			for i := 0; i < 3; i++ {
				x.Fork(w, job{j.depth + 1})
			}
		}
	})
	for i := 0; i < 5; i++ {
		x.Fork(External, job{0})
	}
	x.Wait()
	// 5 roots, each a ternary tree of depth 3: 5 * (1+3+9+27) = 200.
	if got := count.Load(); got != 200 {
		t.Fatalf("ran %d tasks, want 200", got)
	}
}

// TestExecutorEmpty checks that Wait returns when nothing was forked.
func TestExecutorEmpty(t *testing.T) {
	x := NewExecutor(2, func(w int, _ struct{}) {})
	x.Wait()
}

// TestExecutorWorkerIDs checks that every task sees a worker id in range
// and that ids are stable enough to index per-worker state: concurrent
// increments of a plain (non-atomic) per-worker counter must not race,
// which the -race run of this test enforces.
func TestExecutorWorkerIDs(t *testing.T) {
	const workers = 4
	counts := make([]int64, workers*64) // spaced to avoid false sharing noise
	var bad atomic.Int64
	var x *Executor[int]
	x = NewExecutor(workers, func(w int, depth int) {
		if w < 0 || w >= workers {
			bad.Add(1)
			return
		}
		counts[w*64]++ // safe only if ids partition the tasks
		if depth > 0 {
			x.Fork(w, depth-1)
			x.Fork(w, depth-1)
		}
	})
	x.Fork(External, 10)
	x.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d tasks saw an out-of-range worker id", bad.Load())
	}
	total := int64(0)
	for w := 0; w < workers; w++ {
		total += counts[w*64]
	}
	if total != 2047 { // 2^11 - 1 nodes of the binary fork tree
		t.Fatalf("ran %d tasks, want 2047", total)
	}
}

// TestExecutorBoundsGoroutines mirrors TestGroupBoundsGoroutines: the pool
// runs exactly `workers` goroutines regardless of how many tasks are forked
// or how deeply forks nest. A chain of 50k dependent forks on a 2-worker
// pool must complete without the goroutine count growing with chain length.
func TestExecutorBoundsGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	const workers = 2
	const depth = 50000
	var ran atomic.Int64
	var maxG atomic.Int64
	var x *Executor[int]
	x = NewExecutor(workers, func(w int, d int) {
		ran.Add(1)
		if n := int64(runtime.NumGoroutine()); n > maxG.Load() {
			maxG.Store(n)
		}
		if d > 0 {
			x.Fork(w, d-1)
		}
	})
	x.Fork(External, depth)
	x.Wait()
	if got := ran.Load(); got != depth+1 {
		t.Fatalf("ran %d forks, want %d", got, depth+1)
	}
	if high := maxG.Load(); high > int64(base+workers+3) {
		t.Fatalf("goroutine high-water %d over base %d with %d workers", high, base, workers)
	}
	// After Wait the pool's goroutines are gone.
	if now := runtime.NumGoroutine(); now > base+3 {
		t.Fatalf("goroutines leaked: %d after Wait, base %d", now, base)
	}
}

// TestExecutorStealSkew stresses the steal path under deliberate skew: a
// single producer task forks every chain onto its own deque, so the other
// workers make progress only by stealing. Run under -race this exercises
// the pop/steal interleavings on a shared deque; chains then fork their
// continuations onto whichever deque they landed on, mixing owner pops
// with concurrent steals throughout.
func TestExecutorStealSkew(t *testing.T) {
	const workers = 4
	const chains = 64
	const length = 200
	type job struct{ remaining int }
	var ran atomic.Int64
	var x *Executor[job]
	x = NewExecutor(workers, func(w int, j job) {
		ran.Add(1)
		switch {
		case j.remaining > length:
			// Producer: fan every chain out onto this worker's own deque.
			for i := 0; i < chains; i++ {
				x.Fork(w, job{length})
			}
		case j.remaining > 0:
			x.Fork(w, job{j.remaining - 1})
		}
	})
	x.Fork(External, job{length + 1})
	x.Wait()
	want := int64(1 + chains*(length+1))
	if got := ran.Load(); got != want {
		t.Fatalf("ran %d tasks, want %d", got, want)
	}
}
