package core

import "fmt"

// Node is one vertex of the configuration dependence graph: a configuration
// that became active at some step of the incremental process.
type Node struct {
	Config  int   // configuration index in the Space
	Step    int   // 1-based step at which it became active (object count)
	Parents []int // node indices of its support set (empty for base nodes)
	Depth   int   // longest path from a base node; base nodes have depth 0
}

// Graph is the configuration dependence graph G(S) of Definition 4.1, built
// by Simulate for a concrete insertion order S.
type Graph struct {
	Nodes []Node
	// ByConfig maps a configuration index to its node index (configurations
	// activate at most once: conflicts never leave the prefix).
	ByConfig map[int]int
	// MaxDepth is D(G(S)).
	MaxDepth int
	// ActiveSizes[i] = |T({x_1..x_{i+1}})|, recorded for the Theorem 3.1
	// bound.
	ActiveSizes []int
}

// Simulate runs the incremental process of Section 4 over the given object
// order, building the configuration dependence graph. Each newly activated
// configuration is linked to a discovered support set (Definition 3.2) of
// size at most k within the previously active configurations; Simulate
// returns ErrNoSupport if none exists, i.e. if the space is not k-supported
// along this run.
func Simulate(s Space, order []int) (*Graph, error) {
	n := len(order)
	nb := s.BaseSize()
	if n < nb {
		return nil, fmt.Errorf("core: need at least base size %d objects, got %d", nb, n)
	}
	g := &Graph{ByConfig: map[int]int{}}

	// Incremental activity tracking.
	nC := s.NumConfigs()
	needDef := make([]int, nC) // # defining objects not yet inserted
	dead := make([]bool, nC)   // a conflicting object has been inserted
	activeAt := make([]bool, nC)
	byObject := make([][]int, s.NumObjects()) // object -> configs it defines
	for c := 0; c < nC; c++ {
		d := s.Defining(c)
		needDef[c] = len(d)
		for _, o := range d {
			byObject[o] = append(byObject[o], c)
		}
	}

	var activeList []int // maintained with lazy deletion
	prevActive := func() []int {
		out := make([]int, 0, len(activeList))
		for _, c := range activeList {
			if activeAt[c] {
				out = append(out, c)
			}
		}
		return out
	}

	for i := 0; i < n; i++ {
		x := order[i]
		snapshot := prevActive()

		// Kill configurations that conflict with x.
		for _, c := range snapshot {
			if s.InConflict(c, x) {
				activeAt[c] = false
				dead[c] = true
			}
		}
		// Mark conflicts for not-yet-active configurations too.
		for c := 0; c < nC; c++ {
			if !dead[c] && !activeAt[c] && s.InConflict(c, x) {
				dead[c] = true
			}
		}
		// Newly definable configurations.
		for _, c := range byObject[x] {
			needDef[c]--
		}
		for c := 0; c < nC; c++ {
			if needDef[c] == 0 && !dead[c] && !activeAt[c] {
				// c activates at this step.
				activeAt[c] = true
				activeList = append(activeList, c)
				node := Node{Config: c, Step: i + 1}
				if i+1 > nb {
					phi, ok := FindSupport(s, c, x, snapshot)
					if !ok {
						return nil, fmt.Errorf("%w: config %d at step %d (object %d)", ErrNoSupport, c, i+1, x)
					}
					for _, pc := range phi {
						pn := g.ByConfig[pc]
						node.Parents = append(node.Parents, pn)
						if d := g.Nodes[pn].Depth + 1; d > node.Depth {
							node.Depth = d
						}
					}
				}
				if node.Depth > g.MaxDepth {
					g.MaxDepth = node.Depth
				}
				g.ByConfig[c] = len(g.Nodes)
				g.Nodes = append(g.Nodes, node)
			}
		}
		g.ActiveSizes = append(g.ActiveSizes, len(prevActive()))
	}
	return g, nil
}

// TotalConflicts returns sum over created configurations of |C(pi)| taken
// over the full object universe — the quantity bounded by Theorem 3.1.
func TotalConflicts(s Space, g *Graph) int {
	total := 0
	for _, nd := range g.Nodes {
		for o := 0; o < s.NumObjects(); o++ {
			if s.InConflict(nd.Config, o) {
				total++
			}
		}
	}
	return total
}

// MaxSupportUsed returns the largest support-set size recorded in the graph
// (the empirical k).
func MaxSupportUsed(g *Graph) int {
	m := 0
	for _, nd := range g.Nodes {
		if len(nd.Parents) > m {
			m = len(nd.Parents)
		}
	}
	return m
}

// DepthHistogram returns counts of node depths.
func DepthHistogram(g *Graph) map[int]int {
	h := map[int]int{}
	for _, nd := range g.Nodes {
		h[nd.Depth]++
	}
	return h
}

// Validate checks structural invariants of the graph: parents precede
// children (in step order), depths are consistent, and base nodes have no
// parents. It is used by tests.
func (g *Graph) Validate() error {
	for i, nd := range g.Nodes {
		want := 0
		for _, p := range nd.Parents {
			if p < 0 || p >= len(g.Nodes) {
				return fmt.Errorf("node %d: parent index %d out of range", i, p)
			}
			if g.Nodes[p].Step >= nd.Step {
				return fmt.Errorf("node %d (step %d): parent %d not earlier (step %d)",
					i, nd.Step, p, g.Nodes[p].Step)
			}
			if d := g.Nodes[p].Depth + 1; d > want {
				want = d
			}
		}
		if nd.Depth != want {
			return fmt.Errorf("node %d: depth %d, want %d", i, nd.Depth, want)
		}
	}
	return nil
}
