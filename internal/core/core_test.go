package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"parhull/internal/stats"
)

// intervalSpace is the 1D analogue of convex hull used to exercise the
// framework: objects are points on a line, and each ordered pair (a, b) with
// value[a] < value[b] is a configuration whose defining set is {a, b} and
// whose conflict set is every point strictly outside the interval
// [value[a], value[b]]. T(Y) is then exactly {(min Y, max Y)}. The space has
// 1-support: (pi, x) is supported by the single interval that x extends.
type intervalSpace struct {
	vals []float64
	cfgs [][2]int
}

func newIntervalSpace(vals []float64) *intervalSpace {
	s := &intervalSpace{vals: vals}
	for a := range vals {
		for b := range vals {
			if vals[a] < vals[b] {
				s.cfgs = append(s.cfgs, [2]int{a, b})
			}
		}
	}
	return s
}

func (s *intervalSpace) NumObjects() int { return len(s.vals) }
func (s *intervalSpace) NumConfigs() int { return len(s.cfgs) }
func (s *intervalSpace) Defining(c int) []int {
	p := s.cfgs[c]
	if p[0] < p[1] {
		return []int{p[0], p[1]}
	}
	return []int{p[1], p[0]}
}
func (s *intervalSpace) InConflict(c, x int) bool {
	p := s.cfgs[c]
	if x == p[0] || x == p[1] {
		return false
	}
	v := s.vals[x]
	return v < s.vals[p[0]] || v > s.vals[p[1]]
}
func (s *intervalSpace) Degree() int       { return 2 }
func (s *intervalSpace) Multiplicity() int { return 1 }
func (s *intervalSpace) BaseSize() int     { return 2 }
func (s *intervalSpace) MaxSupport() int   { return 1 }

func distinctVals(rng *rand.Rand, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	return vals
}

func TestIntervalSpaceChecks(t *testing.T) {
	s := newIntervalSpace(distinctVals(rand.New(rand.NewSource(1)), 12))
	if deg, err := CheckDegree(s); err != nil || deg != 2 {
		t.Fatalf("degree=%d err=%v", deg, err)
	}
	if mult, err := CheckMultiplicity(s); err != nil || mult != 1 {
		t.Fatalf("mult=%d err=%v", mult, err)
	}
}

func TestActiveIsMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := newIntervalSpace(distinctVals(rng, 20))
	y := []int{3, 7, 11, 15, 19}
	act := Active(s, y)
	if len(act) != 1 {
		t.Fatalf("|T(Y)| = %d, want 1", len(act))
	}
	d := s.Defining(act[0])
	lo, hi := d[0], d[1]
	if s.vals[lo] > s.vals[hi] {
		lo, hi = hi, lo
	}
	for _, o := range y {
		if s.vals[o] < s.vals[lo] || s.vals[o] > s.vals[hi] {
			t.Fatalf("active config is not the min-max pair")
		}
	}
}

func TestVerifySupportInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := newIntervalSpace(distinctVals(rng, 14))
	y := rng.Perm(14)[:9]
	if err := VerifySupport(s, y); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateIntervalGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := newIntervalSpace(distinctVals(rng, 40))
	order := rng.Perm(40)
	g, err := Simulate(s, order)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if k := MaxSupportUsed(g); k > 1 {
		t.Fatalf("interval space used support size %d, want <= 1", k)
	}
	// |T(Y_i)| = 1 for every i >= 2.
	for i, sz := range g.ActiveSizes {
		if i >= 1 && sz != 1 {
			t.Fatalf("step %d: |T| = %d", i+1, sz)
		}
	}
	// Final active config must be the global min-max pair.
	final := Active(s, order)
	if len(final) != 1 {
		t.Fatalf("final |T| = %d", len(final))
	}
	if h := DepthHistogram(g); h[0] == 0 {
		t.Fatal("no base nodes in histogram")
	}
}

// TestSimulateDepthLogarithmic reproduces the Theorem 4.2 shape on the
// interval space: mean depth grows like Theta(log n) and stays far below the
// sigma*H_n bound line.
func TestSimulateDepthLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{16, 64, 256} {
		var maxDepth float64
		const trials = 10
		for trial := 0; trial < trials; trial++ {
			s := newIntervalSpace(distinctVals(rng, n))
			g, err := Simulate(s, rng.Perm(n))
			if err != nil {
				t.Fatal(err)
			}
			if d := float64(g.MaxDepth); d > maxDepth {
				maxDepth = d
			}
		}
		// g=2, k=1: the theorem bound kicks in at sigma = 2*e^2 ~ 14.8;
		// even the worst observed depth should sit well below sigma*H_n.
		sigma := stats.Theorem42MinSigma(s2g, 1)
		if bound := sigma * stats.Harmonic(n); maxDepth >= bound {
			t.Fatalf("n=%d: max depth %v >= theorem bound %v", n, maxDepth, bound)
		}
	}
}

const s2g = 2 // degree of the interval space

// unsupportedSpace violates Definition 3.3: its second configuration has no
// support set because nothing conflicts with the activating object.
type unsupportedSpace struct{}

func (unsupportedSpace) NumObjects() int { return 2 }
func (unsupportedSpace) NumConfigs() int { return 2 }
func (unsupportedSpace) Defining(c int) []int {
	if c == 0 {
		return []int{0}
	}
	return []int{0, 1}
}
func (unsupportedSpace) InConflict(c, x int) bool { return false }
func (unsupportedSpace) Degree() int              { return 2 }
func (unsupportedSpace) Multiplicity() int        { return 1 }
func (unsupportedSpace) BaseSize() int            { return 1 }
func (unsupportedSpace) MaxSupport() int          { return 2 }

func TestSimulateNoSupport(t *testing.T) {
	_, err := Simulate(unsupportedSpace{}, []int{0, 1})
	if !errors.Is(err, ErrNoSupport) {
		t.Fatalf("err = %v, want ErrNoSupport", err)
	}
}

func TestSimulateTooFewObjects(t *testing.T) {
	s := newIntervalSpace([]float64{0.1, 0.9})
	if _, err := Simulate(s, []int{0}); err == nil {
		t.Fatal("expected error for |S| < base size")
	}
}

func TestIsSupportConditions(t *testing.T) {
	vals := []float64{0.1, 0.5, 0.9}
	s := newIntervalSpace(vals)
	// Configs: find (0,1), (0,2), (1,2).
	idx := func(a, b int) int {
		for c := range s.cfgs {
			if s.cfgs[c] == [2]int{a, b} {
				return c
			}
		}
		t.Fatalf("config (%d,%d) missing", a, b)
		return -1
	}
	// (pi=(0,2), x=2) should be supported by {(0,1)}: 2 conflicts with (0,1).
	if !IsSupport(s, idx(0, 2), 2, []int{idx(0, 1)}) {
		t.Error("valid support rejected")
	}
	// (pi=(0,2), x=2) is NOT supported by {(1,2)}: object 0 in D(pi) is not
	// covered and 2 does not conflict with (1,2).
	if IsSupport(s, idx(0, 2), 2, []int{idx(1, 2)}) {
		t.Error("invalid support accepted")
	}
	// Condition (2) violation alone: phi = {(0,1)} for (pi=(0,1), x=1)?
	// x=1 does not conflict with (0,1) (it defines it) — must fail.
	if IsSupport(s, idx(0, 1), 1, []int{idx(0, 1)}) {
		t.Error("self-support accepted")
	}
}

func TestTotalConflictsAgainstTheorem31(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 60
	s := newIntervalSpace(distinctVals(rng, n))
	// Average measured conflicts over several random orders and compare with
	// the Theorem 3.1 bound computed from the measured |T_i| (== 1 here,
	// so bound = n * g^2 * sum 1/i^2 <= n * 4 * pi^2/6).
	var meas float64
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		g, err := Simulate(s, rng.Perm(n))
		if err != nil {
			t.Fatal(err)
		}
		meas += float64(TotalConflicts(s, g))
	}
	meas /= trials
	sizes := make([]float64, n)
	for i := range sizes {
		sizes[i] = 1
	}
	bound := stats.Theorem31Bound(2, sizes)
	if meas > bound {
		t.Fatalf("measured conflicts %v exceed Theorem 3.1 bound %v", meas, bound)
	}
}

func TestFindSupportFallback(t *testing.T) {
	// A space where the pruned candidate set (sharing a defining object)
	// is empty but an unpruned support exists: pi defined by {2}, supported
	// by a config defined by {0} that conflicts with everything else.
	s := &tableSpace{
		defs:      [][]int{{0}, {2}},
		conflicts: []map[int]bool{{1: true, 2: true}, {}},
		n:         3,
	}
	phi, ok := FindSupport(s, 1, 2, []int{0})
	if !ok || len(phi) != 1 || phi[0] != 0 {
		t.Fatalf("fallback search failed: %v %v", phi, ok)
	}
}

// tableSpace is a directly tabulated space for edge-case tests.
type tableSpace struct {
	defs      [][]int
	conflicts []map[int]bool
	n         int
}

func (s *tableSpace) NumObjects() int { return s.n }
func (s *tableSpace) NumConfigs() int { return len(s.defs) }
func (s *tableSpace) Defining(c int) []int {
	d := append([]int(nil), s.defs[c]...)
	sort.Ints(d)
	return d
}
func (s *tableSpace) InConflict(c, x int) bool { return s.conflicts[c][x] }
func (s *tableSpace) Degree() int              { return 2 }
func (s *tableSpace) Multiplicity() int        { return 2 }
func (s *tableSpace) BaseSize() int            { return 1 }
func (s *tableSpace) MaxSupport() int          { return 2 }

func TestGraphValidateCatchesCorruption(t *testing.T) {
	g := &Graph{Nodes: []Node{
		{Config: 0, Step: 1, Depth: 0},
		{Config: 1, Step: 2, Parents: []int{0}, Depth: 2}, // wrong depth
	}}
	if err := g.Validate(); err == nil {
		t.Fatal("corrupt depth accepted")
	}
	g2 := &Graph{Nodes: []Node{
		{Config: 0, Step: 2, Depth: 0},
		{Config: 1, Step: 1, Parents: []int{0}, Depth: 1}, // parent later
	}}
	if err := g2.Validate(); err == nil {
		t.Fatal("non-causal parent accepted")
	}
	g3 := &Graph{Nodes: []Node{{Config: 0, Step: 1, Parents: []int{5}, Depth: 1}}}
	if err := g3.Validate(); err == nil {
		t.Fatal("out-of-range parent accepted")
	}
}
