package core

import (
	"math/rand"
	"sort"
	"testing"
)

func sortedIntsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestRunGenericInterval: Algorithm 1 on the interval space computes the
// exact final active set T(X) and adds the same configurations as the
// step-by-step simulation (Definition 4.1).
func TestRunGenericInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(20)
		s := newIntervalSpace(distinctVals(rng, n))
		order := rng.Perm(n)
		gen, err := RunGeneric(s, order)
		if err != nil {
			t.Fatal(err)
		}
		if !sortedIntsEqual(gen.Alive, Active(s, order)) {
			t.Fatalf("trial %d: final set %v != T(X) %v", trial, gen.Alive, Active(s, order))
		}
		sim, err := Simulate(s, order)
		if err != nil {
			t.Fatal(err)
		}
		var simAdded []int
		for _, nd := range sim.Nodes {
			simAdded = append(simAdded, nd.Config)
		}
		if !sortedIntsEqual(gen.Added, simAdded) {
			t.Fatalf("trial %d: Algorithm 1 added %d configs, simulation %d",
				trial, len(gen.Added), len(simAdded))
		}
		// Theorem 4.3: recursion depth (rounds) tracks the dependence-graph
		// depth; our round count is depth+O(1) because base tasks occupy a
		// round even when they add nothing.
		if gen.Rounds > sim.MaxDepth+2 {
			t.Fatalf("trial %d: rounds %d >> graph depth %d", trial, gen.Rounds, sim.MaxDepth)
		}
	}
}

// TestRunGenericDepthsConsistent: depths recorded by Algorithm 1 stay within
// the k-support theory (every config's depth <= rounds).
func TestRunGenericDepths(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := newIntervalSpace(distinctVals(rng, 25))
	order := rng.Perm(25)
	gen, err := RunGeneric(s, order)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range gen.Depth {
		if d < 0 || d > gen.MaxDepth || gen.MaxDepth >= gen.Rounds+1 {
			t.Fatalf("config %d: depth %d, max %d, rounds %d", gen.Added[i], d, gen.MaxDepth, gen.Rounds)
		}
	}
}

func TestRunGenericErrors(t *testing.T) {
	s := newIntervalSpace([]float64{0.3, 0.7})
	if _, err := RunGeneric(s, []int{0}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := RunGeneric(s, []int{0, 0}); err == nil {
		t.Fatal("duplicate order accepted")
	}
}
