package core

import (
	"fmt"
	"sort"
)

// GenericResult is the outcome of RunGeneric (Algorithm 1).
type GenericResult struct {
	// Added lists every configuration ever activated, in activation order.
	// Because the brute-force search accepts *any* subset satisfying
	// Definition 3.2 as a support set (the paper notes Algorithm 1 is
	// under-specified on this point), Added is a superset of the canonical
	// process's configurations: it may include a few transient
	// configurations a specialized engine never builds. Alive is exact.
	Added []int
	// Alive reports the final active set; it equals T(X) exactly (every
	// configuration with conflicts is killed by its own pivot's tasks, and
	// k-support guarantees every member of T(X) is eventually added).
	Alive []int
	// Depth[i] is the dependence depth of Added[i].
	Depth []int
	// MaxDepth is the largest depth.
	MaxDepth int
	// Rounds is the number of synchronous rounds executed. Theorem 4.3
	// bounds the recursion depth of Algorithm 1 by D(G); each recursion
	// level is one round here.
	Rounds int
}

// RunGeneric executes the paper's Algorithm 1 — the generic parallel
// incremental algorithm — on configuration space s with object ordering
// order. It maintains the current configuration set T, and processes
// support sets: for each candidate support set Phi currently in T, it finds
// the earliest object x in C(Phi) (the conflict pivot); if Phi supports
// some configuration (pi, x), pi is added and everything conflicting with x
// removed. Newly possible support sets (those including a new
// configuration) are processed in the next round.
//
// This engine discovers support sets by brute force (IsSupport over subsets
// of size <= s.MaxSupport()), so it is for validation on small instances;
// the hull engines are the specialized, efficient instantiations. Rounds
// are executed sequentially — the schedule, not the wall-clock, is what is
// being modeled.
//
// Two readings of the pseudocode are resolved the way the hull engines do:
// candidate support sets range over every configuration ever added (a
// support member may die through another pivot before its set is processed,
// exactly as a hull facet can be buried while one of its ridges is still
// pending), and the line-10 removal runs for every processed pivot (each
// configuration's own tasks carry the pivot that kills it).
func RunGeneric(s Space, order []int) (*GenericResult, error) {
	nb := s.BaseSize()
	if len(order) < nb {
		return nil, fmt.Errorf("core: need at least base size %d objects, got %d", nb, len(order))
	}
	rank := make(map[int]int, len(order))
	for i, o := range order {
		rank[o] = i
	}
	if len(rank) != len(order) {
		return nil, fmt.Errorf("core: order contains duplicates")
	}

	res := &GenericResult{}
	k := s.MaxSupport()
	alive := map[int]bool{}
	depth := map[int]int{}
	added := map[int]bool{}

	add := func(c, d int) {
		if added[c] {
			return
		}
		added[c] = true
		alive[c] = true
		depth[c] = d
		res.Added = append(res.Added, c)
		res.Depth = append(res.Depth, d)
		if d > res.MaxDepth {
			res.MaxDepth = d
		}
	}

	// Line 2: T <- T({x_1..x_nb}).
	for _, c := range Active(s, order[:nb]) {
		add(c, 0)
	}

	// pivot returns the earliest object (by order) conflicting with any
	// member of phi, or -1 if none.
	pivot := func(phi []int) int {
		best, bestRank := -1, len(order)
		for _, o := range order {
			if conflictsAny(s, phi, o) && rank[o] < bestRank {
				best, bestRank = o, rank[o]
			}
		}
		return best
	}

	aliveList := func() []int {
		out := make([]int, 0, len(alive))
		for c := range alive {
			out = append(out, c)
		}
		sort.Ints(out)
		return out
	}
	canonical := func(phi []int) string { return fmt.Sprint(phi) }
	emitted := map[string]bool{}

	var frontier [][]int
	emit := func(phi []int) {
		cp := append([]int(nil), phi...)
		sort.Ints(cp)
		key := canonical(cp)
		if !emitted[key] {
			emitted[key] = true
			frontier = append(frontier, cp)
		}
	}
	// subsetsWith enumerates the subsets of the added configurations of size
	// <= k that contain the given configuration, emitting each once.
	subsetsWith := func(must int) {
		av := append([]int(nil), res.Added...)
		sort.Ints(av)
		pick := make([]int, 0, k)
		var rec func(start, size int)
		rec = func(start, size int) {
			if len(pick) == size {
				has := false
				for _, c := range pick {
					if c == must {
						has = true
					}
				}
				if has {
					emit(pick)
				}
				return
			}
			for i := start; i < len(av); i++ {
				pick = append(pick, av[i])
				rec(i+1, size)
				pick = pick[:len(pick)-1]
			}
		}
		for size := 1; size <= k; size++ {
			rec(0, size)
		}
	}

	// Lines 3-4: initial support-set candidates from the base T.
	for c := range alive {
		subsetsWith(c)
	}

	// Rounds: each round processes the current frontier of candidate
	// support sets (AddConfiguration bodies) and collects the next.
	guard := 0
	for len(frontier) > 0 {
		res.Rounds++
		if guard++; guard > 4*len(order)*s.NumConfigs() {
			return nil, fmt.Errorf("core: Algorithm 1 failed to terminate (space not k-supported?)")
		}
		tasks := frontier
		frontier = nil
		var newly []int
		for _, phi := range tasks {
			// Line 7: x <- min_S(C(Phi)).
			x := pivot(phi)
			if x < 0 {
				continue // no conflicts: nothing to support (final)
			}
			// Line 8: does Phi support some (pi, x)?
			for c := 0; c < s.NumConfigs(); c++ {
				if added[c] || !defIncludes(s, c, x) {
					continue
				}
				if IsSupport(s, c, x, phi) {
					d := 0
					for _, f := range phi {
						if depth[f]+1 > d {
							d = depth[f] + 1
						}
					}
					add(c, d)
					newly = append(newly, c)
				}
			}
			// Line 10: the pivot's insertion removes every configuration
			// conflicting with it.
			for a := range alive {
				if s.InConflict(a, x) {
					delete(alive, a)
				}
			}
		}
		// Lines 11-13: support sets involving the new configurations.
		for _, c := range newly {
			subsetsWith(c)
		}
	}

	res.Alive = aliveList()
	return res, nil
}

func defIncludes(s Space, c, x int) bool {
	for _, o := range s.Defining(c) {
		if o == x {
			return true
		}
	}
	return false
}
