// Package core implements the paper's analytical framework: configuration
// spaces (Section 3), support sets (Definition 3.2), the k-support property
// (Definition 3.3), and the configuration dependence graph (Definition 4.1).
//
// The package works by enumeration and is meant for validation at small
// scale: every concrete problem (convex hull, corner space, half-space
// intersection, circle intersection) exposes its configuration space through
// the Space interface, and the functions here simulate the incremental
// process, discover support sets by search, build the dependence graph, and
// check the theorems' hypotheses and conclusions directly. The fast engines
// in internal/hull2d and internal/hulld are instrumented to record the same
// graph implicitly; agreement between the two is covered by tests.
package core

import (
	"errors"
	"fmt"
	"sort"
)

// Space describes a finite configuration space (X, Pi) by enumeration.
// Objects and configurations are identified by dense indices.
type Space interface {
	// NumObjects returns |X|.
	NumObjects() int
	// NumConfigs returns |Pi|.
	NumConfigs() int
	// Defining returns the defining set D(pi) of configuration c, sorted
	// ascending. Callers must not mutate the result.
	Defining(c int) []int
	// InConflict reports whether object x is in the conflict set C(pi) of
	// configuration c. Implementations must guarantee D(pi) and C(pi) are
	// disjoint.
	InConflict(c, x int) bool
	// Degree returns the maximum degree g = max |D(pi)|.
	Degree() int
	// Multiplicity returns the maximum number of configurations sharing a
	// defining set (the constant c of the paper).
	Multiplicity() int
	// BaseSize returns n_b, the prefix treated as the base case.
	BaseSize() int
	// MaxSupport returns the k of the space's k-support property.
	MaxSupport() int
}

// ErrNoSupport is returned when no support set of size <= k exists for some
// newly activated configuration — i.e. the space violates Definition 3.3.
var ErrNoSupport = errors.New("core: no support set of size <= k found")

// Active returns T(Y): the configurations whose defining set is contained in
// y and whose conflict set avoids y. y is a set of object indices.
func Active(s Space, y []int) []int {
	in := make([]bool, s.NumObjects())
	for _, o := range y {
		in[o] = true
	}
	var out []int
	for c := 0; c < s.NumConfigs(); c++ {
		if activeIn(s, c, in, y) {
			out = append(out, c)
		}
	}
	return out
}

func activeIn(s Space, c int, in []bool, y []int) bool {
	for _, o := range s.Defining(c) {
		if !in[o] {
			return false
		}
	}
	for _, o := range y {
		if s.InConflict(c, o) {
			return false
		}
	}
	return true
}

// IsSupport checks Definition 3.2: phi (a set of configuration indices) is a
// support set for (pi, x) iff
//
//	(1) D(pi) ⊆ D(phi) ∪ {x}, and
//	(2) C(pi) ∪ {x} ⊆ C(phi),
//
// where the conflict containment is checked over the whole object universe.
func IsSupport(s Space, pi int, x int, phi []int) bool {
	// Condition (1).
	for _, o := range s.Defining(pi) {
		if o == x {
			continue
		}
		covered := false
		for _, f := range phi {
			for _, fo := range s.Defining(f) {
				if fo == o {
					covered = true
					break
				}
			}
			if covered {
				break
			}
		}
		if !covered {
			return false
		}
	}
	// Condition (2): x itself must conflict with phi...
	if !conflictsAny(s, phi, x) {
		return false
	}
	// ...and so must every object conflicting with pi.
	for o := 0; o < s.NumObjects(); o++ {
		if s.InConflict(pi, o) && !conflictsAny(s, phi, o) {
			return false
		}
	}
	return true
}

func conflictsAny(s Space, phi []int, o int) bool {
	for _, f := range phi {
		if s.InConflict(f, o) {
			return true
		}
	}
	return false
}

// FindSupport searches active (a set of configuration indices, normally
// T(Y\{x})) for a support set for (pi, x) of size at most s.MaxSupport().
// It first restricts candidates to configurations sharing a defining object
// with pi — true of every space in this repository (support facets share a
// ridge with the new facet, support corners share a corner point, etc.) —
// and falls back to the unpruned search if that fails.
func FindSupport(s Space, pi int, x int, active []int) ([]int, bool) {
	dp := s.Defining(pi)
	inD := map[int]bool{}
	for _, o := range dp {
		inD[o] = true
	}
	var cand []int
	for _, c := range active {
		for _, o := range s.Defining(c) {
			if inD[o] {
				cand = append(cand, c)
				break
			}
		}
	}
	if phi, ok := searchSubsets(s, pi, x, cand, s.MaxSupport()); ok {
		return phi, true
	}
	return searchSubsets(s, pi, x, active, s.MaxSupport())
}

// searchSubsets looks for a support subset of cand of size <= k, smallest
// sizes first (so the reported support is minimal).
func searchSubsets(s Space, pi, x int, cand []int, k int) ([]int, bool) {
	pick := make([]int, 0, k)
	var rec func(start, size int) bool
	var found []int
	rec = func(start, size int) bool {
		if len(pick) == size {
			if IsSupport(s, pi, x, pick) {
				found = append([]int(nil), pick...)
				return true
			}
			return false
		}
		for i := start; i < len(cand); i++ {
			pick = append(pick, cand[i])
			if rec(i+1, size) {
				return true
			}
			pick = pick[:len(pick)-1]
		}
		return false
	}
	for size := 1; size <= k; size++ {
		if rec(0, size) {
			return found, true
		}
	}
	return nil, false
}

// VerifySupport checks Definition 3.3 on the concrete set y: for every
// configuration pi in T(y) and every defining object x of pi, a support set
// of size at most k exists in T(y \ {x}). It returns a descriptive error on
// the first violation.
func VerifySupport(s Space, y []int) error {
	if len(y) <= s.BaseSize() {
		return nil
	}
	act := Active(s, y)
	for _, pi := range act {
		for _, x := range s.Defining(pi) {
			rest := make([]int, 0, len(y)-1)
			for _, o := range y {
				if o != x {
					rest = append(rest, o)
				}
			}
			prev := Active(s, rest)
			if _, ok := FindSupport(s, pi, x, prev); !ok {
				return fmt.Errorf("%w: config %d, object %d, |T(Y\\x)|=%d",
					ErrNoSupport, pi, x, len(prev))
			}
		}
	}
	return nil
}

// CheckMultiplicity verifies that no defining set is shared by more than
// s.Multiplicity() configurations (the "c" of Theorem 4.2), returning the
// observed maximum.
func CheckMultiplicity(s Space) (int, error) {
	byDef := map[string]int{}
	maxSeen := 0
	for c := 0; c < s.NumConfigs(); c++ {
		k := fmt.Sprint(s.Defining(c))
		byDef[k]++
		if byDef[k] > maxSeen {
			maxSeen = byDef[k]
		}
	}
	if maxSeen > s.Multiplicity() {
		return maxSeen, fmt.Errorf("core: multiplicity %d exceeds declared %d", maxSeen, s.Multiplicity())
	}
	return maxSeen, nil
}

// CheckDegree verifies |D(pi)| <= Degree() for all configurations and that
// defining and conflict sets are disjoint, returning the observed maximum
// degree.
func CheckDegree(s Space) (int, error) {
	maxDeg := 0
	for c := 0; c < s.NumConfigs(); c++ {
		d := s.Defining(c)
		if len(d) > maxDeg {
			maxDeg = len(d)
		}
		if len(d) > s.Degree() {
			return len(d), fmt.Errorf("core: config %d has degree %d > declared %d", c, len(d), s.Degree())
		}
		for _, o := range d {
			if s.InConflict(c, o) {
				return len(d), fmt.Errorf("core: config %d: defining object %d also in conflict set", c, o)
			}
		}
	}
	return maxDeg, nil
}

// SupportLowerBound computes a certified lower bound on the size of any
// support set for (pi, x) within the given active configurations: it greedily
// packs objects of C(pi) ∪ {x} whose coverer sets (active configurations
// conflicting with them) are pairwise disjoint — condition (2) of
// Definition 3.2 then forces at least one distinct member of the support set
// per packed object. It is used to demonstrate spaces WITHOUT constant
// support, such as trapezoidal decomposition (Section 4's counterexample).
func SupportLowerBound(s Space, pi int, x int, active []int) int {
	var objs []int
	for o := 0; o < s.NumObjects(); o++ {
		if o == x || s.InConflict(pi, o) {
			objs = append(objs, o)
		}
	}
	coverers := make([]map[int]bool, len(objs))
	for i, o := range objs {
		coverers[i] = map[int]bool{}
		for _, c := range active {
			if s.InConflict(c, o) {
				coverers[i][c] = true
			}
		}
	}
	// Greedy disjoint packing, smallest coverer sets first.
	order := make([]int, len(objs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(coverers[order[a]]) < len(coverers[order[b]]) })
	used := map[int]bool{}
	bound := 0
	for _, i := range order {
		if len(coverers[i]) == 0 {
			continue // no coverer at all: no support set exists, skip here
		}
		disjoint := true
		for c := range coverers[i] {
			if used[c] {
				disjoint = false
				break
			}
		}
		if disjoint {
			bound++
			for c := range coverers[i] {
				used[c] = true
			}
		}
	}
	return bound
}
