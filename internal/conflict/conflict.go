// Package conflict implements the conflict-list operations shared by the
// incremental engines: merging the two support facets' conflict sets and
// filtering by visibility (line 16 of Algorithm 3, line 9 of Algorithm 2).
//
// Lists are ascending slices of point indices. Filtering comes in two forms:
//
//   - The batched two-phase pipeline (the default hot path): phase 1 merges
//     the two lists into per-worker scratch with a predicate-free int32 loop
//     (MergeInto — the drop element is removed inline), and phase 2 hands the
//     whole candidate run to a kernel-supplied batch Filter in one call, so
//     the visibility test amortizes its bounds checks and dispatch over the
//     batch instead of paying an indirect call per candidate.
//   - The per-point closure form (MergeFilter with a keep predicate), kept as
//     the shim for callers without a batch filter and as the ablation
//     baseline (cmd/hullbench -exp filter).
//
// Both forms produce the identical ascending survivor list. Long lists split
// into value-aligned pieces processed in parallel — the role approximate
// compaction plays in the paper's CRCW analysis (Theorem 5.4): without it,
// the first rounds' O(n)-sized lists would serialize the span.
//
// Allocation discipline: filtering writes into pooled scratch buffers and
// only the surviving elements are copied into an exact-size result (nil for
// an empty one). In the steady state most new facets have empty or tiny
// conflict sets, so filtering allocates nothing — the seed code allocated a
// |C(t1)|+|C(t2)|-capacity slice per facet regardless of survivors, which
// dominated GC pressure in the construction hot path.
package conflict

import (
	"sort"
	"sync"

	"parhull/internal/sched"
)

// DefaultGrain is the list size above which MergeFilter parallelizes.
const DefaultGrain = 1 << 13

// Filter is the batch form of a visibility predicate — the kernel contract
// of the two-phase filtering pipeline. Both methods append the surviving
// candidates to dst in their input (ascending) order and return the extended
// slice; they must be safe for concurrent calls (the engines' filters are:
// they read immutable facet state and bump sharded counters) and must not
// retain cands or dst.
//
// The output must be identical to applying the pointwise predicate to each
// candidate in order — implementations that defer some decisions (e.g. the
// kernels' float-filter-uncertain sidecar resolved by the exact predicate
// after the main loop) must splice those survivors back in position.
type Filter interface {
	// Filter appends to dst the elements of cands that survive.
	Filter(cands []int32, dst []int32) []int32
	// FilterRange is Filter over the ascending candidates from, from+1, ...,
	// to-1 without materializing them (initial conflict lists over the
	// not-yet-inserted suffix).
	FilterRange(from, to int32, dst []int32) []int32
}

// FusedFilter extends Filter with a merge-fused form: the two-pointer
// ascending merge of phase 1 and the batch visibility classification of
// phase 2 run as ONE loop, so the candidate run is never materialized — no
// scratch write of the merged list and no second pass re-reading it. The
// hull kernels implement it with the cached plane held in registers
// (dimension-specialized for 3D), which is where the fused pipeline earns
// its keep: the merge logic is the same, but each candidate's coordinates
// are loaded while the merge cursors are still hot instead of a full list
// later.
//
// FilterMerge must be semantically identical to
// Filter(MergeInto(nil, c1, c2, drop), dst): same survivors, same order,
// same visibility-test counter totals.
type FusedFilter interface {
	Filter
	// FilterMerge appends to dst the elements of the ascending merge of c1
	// and c2 (excluding drop) that survive, and returns the extended slice.
	FilterMerge(c1, c2 []int32, drop int32, dst []int32) []int32
}

// FuncFilter adapts a per-point keep predicate to the Filter contract — the
// shim that lets closure-only callers (e.g. spaces without a batch filter)
// run on the batched pipeline.
type FuncFilter func(int32) bool

// Filter implements Filter.
func (k FuncFilter) Filter(cands []int32, dst []int32) []int32 {
	for _, v := range cands {
		if k(v) {
			dst = append(dst, v)
		}
	}
	return dst
}

// FilterRange implements Filter.
func (k FuncFilter) FilterRange(from, to int32, dst []int32) []int32 {
	for v := from; v < to; v++ {
		if k(v) {
			dst = append(dst, v)
		}
	}
	return dst
}

// MergeInto appends the ascending union of the ascending lists c1 and c2 to
// dst, excluding drop, and returns the extended slice — phase 1 of the
// batched pipeline: a pure int32 two-pointer loop with no predicate
// dispatch, followed by bulk tail copies once either list is exhausted.
func MergeInto(dst []int32, c1, c2 []int32, drop int32) []int32 {
	i, j := 0, 0
	for i < len(c1) && j < len(c2) {
		v := c1[i]
		switch {
		case v < c2[j]:
			i++
		case v > c2[j]:
			v = c2[j]
			j++
		default:
			i++
			j++
		}
		if v != drop {
			dst = append(dst, v)
		}
	}
	for _, v := range c1[i:] {
		if v != drop {
			dst = append(dst, v)
		}
	}
	for _, v := range c2[j:] {
		if v != drop {
			dst = append(dst, v)
		}
	}
	return dst
}

// scratchPool recycles the transient merge buffers. Buffers grow to the
// largest list a worker has filtered and are reused across facets, so
// steady-state filtering performs no transient allocation at all.
var scratchPool = sync.Pool{New: func() any { return new([]int32) }}

// getScratch returns an empty buffer with capacity at least need.
func getScratch(need int) *[]int32 {
	bp := scratchPool.Get().(*[]int32)
	if cap(*bp) < need {
		*bp = make([]int32, 0, need)
	}
	*bp = (*bp)[:0]
	return bp
}

func putScratch(bp *[]int32) { scratchPool.Put(bp) }

// compact returns an exact-size copy of buf, or nil when buf is empty.
func compact(buf []int32) []int32 {
	if len(buf) == 0 {
		return nil
	}
	out := make([]int32, len(buf))
	copy(out, buf)
	return out
}

// Scratch is a caller-owned pair of merge/filter buffers for the serial
// paths. The work-stealing engines keep one Scratch per worker (inside their
// arenas), so steady-state filtering touches no sync.Pool — no atomic pool
// round-trip per facet, and the buffers stay hot in the worker's cache. They
// grow to the largest list the worker has filtered and are reused forever;
// they never escape: only the compacted result (allocated via alloc) does.
type Scratch struct {
	buf  []int32 // phase-1 merge output (the candidate run)
	fbuf []int32 // phase-2 filter output (the survivors)
}

// MergeFilter is the serial closure-path equivalent of the package-level
// MergeFilter using s as scratch. The surviving elements are copied into a
// slice obtained from alloc(n) (which must return a length-n slice; nil
// selects plain make) — the engines pass their per-worker arena allocator,
// so a steady-state facet's conflict list costs zero individual allocations.
// Output is identical to MergeFilter.
func (s *Scratch) MergeFilter(c1, c2 []int32, drop int32, keep func(int32) bool, alloc func(int) []int32) []int32 {
	need := len(c1) + len(c2)
	if need == 0 {
		return nil
	}
	if cap(s.buf) < need {
		s.buf = make([]int32, 0, need)
	}
	buf := mergeFilterInto(s.buf[:0], c1, c2, drop, keep)
	s.buf = buf[:0]
	return compactInto(buf, alloc)
}

// MergeFilterScratch is the batched serial merge-filter over a caller-owned
// Scratch: phase 1 merges into the scratch merge buffer, phase 2 hands the
// whole candidate run to flt in a single call, and the survivors are
// compacted through alloc (nil selects plain make). flt is a type parameter
// so concrete kernel filters are passed without interface boxing — the hot
// path allocates nothing beyond the compacted result. Output is identical to
// Scratch.MergeFilter with the pointwise form of flt.
func MergeFilterScratch[F Filter](s *Scratch, c1, c2 []int32, drop int32, flt F, alloc func(int) []int32) []int32 {
	need := len(c1) + len(c2)
	if need == 0 {
		return nil
	}
	if cap(s.buf) < need {
		s.buf = make([]int32, 0, need)
	}
	cands := MergeInto(s.buf[:0], c1, c2, drop)
	s.buf = cands[:0]
	if len(cands) == 0 {
		return nil
	}
	if cap(s.fbuf) < len(cands) {
		s.fbuf = make([]int32, 0, need)
	}
	kept := flt.Filter(cands, s.fbuf[:0])
	s.fbuf = kept[:0]
	return compactInto(kept, alloc)
}

// MergeFilterFusedScratch is the fused serial merge-filter over a
// caller-owned Scratch: one FilterMerge call classifies the merge of the two
// lists directly into the scratch survivor buffer (the merge buffer is not
// touched — fused filtering never materializes the candidate run), and the
// survivors are compacted through alloc (nil selects plain make). Output is
// identical to MergeFilterScratch with the same filter.
func MergeFilterFusedScratch[F FusedFilter](s *Scratch, c1, c2 []int32, drop int32, flt F, alloc func(int) []int32) []int32 {
	need := len(c1) + len(c2)
	if need == 0 {
		return nil
	}
	if cap(s.fbuf) < need {
		s.fbuf = make([]int32, 0, need)
	}
	kept := flt.FilterMerge(c1, c2, drop, s.fbuf[:0])
	s.fbuf = kept[:0]
	return compactInto(kept, alloc)
}

// MergeFilterFused is the fused form of MergeFilterBatch: merge and
// visibility classification run as one loop (FilterMerge), parallelized over
// value-aligned pieces for lists of at least grain total length. Output is
// identical to MergeFilterBatch with the same filter. The survivor list is
// compacted through alloc (nil selects plain make); alloc is only ever called
// from the calling goroutine, so a per-worker arena is a valid source.
func MergeFilterFused[F FusedFilter](c1, c2 []int32, drop int32, flt F, grain int, alloc func(int) []int32) []int32 {
	if grain <= 0 {
		grain = DefaultGrain
	}
	if len(c1)+len(c2) < grain || sched.Workers() == 1 {
		return mergeFilterFusedSerial(c1, c2, drop, flt, alloc)
	}
	return mergeFilterFusedParallel(c1, c2, drop, flt, grain, alloc)
}

func mergeFilterFusedSerial[F FusedFilter](c1, c2 []int32, drop int32, flt F, alloc func(int) []int32) []int32 {
	if len(c1)+len(c2) == 0 {
		return nil
	}
	fp := getScratch(len(c1) + len(c2))
	*fp = flt.FilterMerge(c1, c2, drop, *fp)
	out := compactInto(*fp, alloc)
	putScratch(fp)
	return out
}

// mergeFilterFusedParallel splits both lists at common values so each piece
// runs one fused FilterMerge call, then concatenates the pieces in order.
func mergeFilterFusedParallel[F FusedFilter](c1, c2 []int32, drop int32, flt F, grain int, alloc func(int) []int32) []int32 {
	pieces := pieceCount(len(c1)+len(c2), grain)
	if pieces < 2 {
		return mergeFilterFusedSerial(c1, c2, drop, flt, alloc)
	}
	spans := splitSpans(c1, c2, pieces)
	if spans == nil {
		return mergeFilterFusedSerial(c1, c2, drop, flt, alloc)
	}
	parts := make([]*[]int32, len(spans))
	sched.ParallelFor(len(spans), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := spans[i]
			fp := getScratch((s.b1 - s.a1) + (s.b2 - s.a2))
			*fp = flt.FilterMerge(c1[s.a1:s.b1], c2[s.a2:s.b2], drop, *fp)
			parts[i] = fp
		}
	})
	return concatPartsInto(parts, alloc)
}

// compactInto copies buf into an exact-size slice from alloc (nil selects
// make), or returns nil for an empty buf.
func compactInto(buf []int32, alloc func(int) []int32) []int32 {
	if len(buf) == 0 {
		return nil
	}
	var out []int32
	if alloc != nil {
		out = alloc(len(buf))
	} else {
		out = make([]int32, len(buf))
	}
	copy(out, buf)
	return out
}

// MergeFilter returns the ascending union of the ascending lists c1 and c2,
// excluding drop and keeping only elements accepted by keep — the per-point
// closure path, kept as the shim for callers without a batch Filter and as
// the ablation baseline. keep must be safe for concurrent calls. grain <= 0
// selects DefaultGrain; pass a huge grain to force the serial path.
func MergeFilter(c1, c2 []int32, drop int32, keep func(int32) bool, grain int) []int32 {
	if grain <= 0 {
		grain = DefaultGrain
	}
	if len(c1)+len(c2) < grain || sched.Workers() == 1 {
		return mergeFilterSerial(c1, c2, drop, keep)
	}
	return mergeFilterParallel(c1, c2, drop, keep, grain)
}

// MergeFilterBatch is the batched form of MergeFilter: the two-phase
// pipeline over pooled scratch, parallelized over value-aligned pieces for
// lists of at least grain total length (each piece merges, then filters in
// one batch call). Output is identical to MergeFilter with the pointwise
// form of flt.
func MergeFilterBatch[F Filter](c1, c2 []int32, drop int32, flt F, grain int) []int32 {
	if grain <= 0 {
		grain = DefaultGrain
	}
	if len(c1)+len(c2) < grain || sched.Workers() == 1 {
		return mergeFilterBatchSerial(c1, c2, drop, flt)
	}
	return mergeFilterBatchParallel(c1, c2, drop, flt, grain)
}

func mergeFilterSerial(c1, c2 []int32, drop int32, keep func(int32) bool) []int32 {
	if len(c1)+len(c2) == 0 {
		return nil
	}
	bp := getScratch(len(c1) + len(c2))
	*bp = mergeFilterInto(*bp, c1, c2, drop, keep)
	out := compact(*bp)
	putScratch(bp)
	return out
}

func mergeFilterBatchSerial[F Filter](c1, c2 []int32, drop int32, flt F) []int32 {
	if len(c1)+len(c2) == 0 {
		return nil
	}
	mp := getScratch(len(c1) + len(c2))
	*mp = MergeInto(*mp, c1, c2, drop)
	fp := getScratch(len(*mp))
	*fp = flt.Filter(*mp, *fp)
	out := compact(*fp)
	putScratch(fp)
	putScratch(mp)
	return out
}

// mergeFilterInto appends the filtered merge of c1 and c2 to dst — the fused
// single-pass closure path (one keep dispatch per candidate).
func mergeFilterInto(dst []int32, c1, c2 []int32, drop int32, keep func(int32) bool) []int32 {
	i, j := 0, 0
	for i < len(c1) || j < len(c2) {
		var v int32
		switch {
		case i == len(c1):
			v = c2[j]
			j++
		case j == len(c2):
			v = c1[i]
			i++
		case c1[i] < c2[j]:
			v = c1[i]
			i++
		case c1[i] > c2[j]:
			v = c2[j]
			j++
		default:
			v = c1[i]
			i++
			j++
		}
		if v == drop {
			continue
		}
		if keep(v) {
			dst = append(dst, v)
		}
	}
	return dst
}

// span is one value-aligned piece of a parallel merge-filter: the half-open
// index ranges [a1, b1) of c1 and [a2, b2) of c2 holding the same value
// interval.
type span struct{ a1, b1, a2, b2 int }

// splitSpans cuts c1 and c2 at common split values sampled from the longer
// list at even intervals; binary search aligns both lists on the same value
// boundaries. When the sample stride collapses (pieces exceeding the longer
// list's length), the same value is sampled repeatedly; duplicate bounds are
// removed so no piece is empty on the longer list, and when fewer than 2
// distinct split values survive the split is pointless — splitSpans returns
// nil and the caller falls back to the serial path.
func splitSpans(c1, c2 []int32, pieces int) []span {
	long := c1
	if len(c2) > len(c1) {
		long = c2
	}
	bounds := make([]int32, 0, pieces-1)
	for i := 1; i < pieces; i++ {
		b := long[i*len(long)/pieces]
		if n := len(bounds); n == 0 || b > bounds[n-1] {
			bounds = append(bounds, b)
		}
	}
	if len(bounds) < 2 {
		return nil
	}
	spans := make([]span, 0, len(bounds)+1)
	p1, p2 := 0, 0
	for _, b := range bounds {
		q1 := p1 + sort.Search(len(c1)-p1, func(k int) bool { return c1[p1+k] >= b })
		q2 := p2 + sort.Search(len(c2)-p2, func(k int) bool { return c2[p2+k] >= b })
		spans = append(spans, span{p1, q1, p2, q2})
		p1, p2 = q1, q2
	}
	return append(spans, span{p1, len(c1), p2, len(c2)})
}

// pieceCount sizes a parallel split: one piece per grain of input, capped at
// 4x the worker count.
func pieceCount(total, grain int) int {
	pieces := total / grain
	if w := 4 * sched.Workers(); pieces > w {
		pieces = w
	}
	return pieces
}

// concatParts concatenates the per-piece scratch buffers in order and
// returns them to the pool.
func concatParts(parts []*[]int32) []int32 { return concatPartsInto(parts, nil) }

// concatPartsInto is concatParts with the result carved via alloc (nil
// selects plain make); the part scratch buffers return to the pool either way.
func concatPartsInto(parts []*[]int32, alloc func(int) []int32) []int32 {
	n := 0
	for _, p := range parts {
		n += len(*p)
	}
	var out []int32
	if n > 0 {
		if alloc != nil {
			out = alloc(n)[:0]
		} else {
			out = make([]int32, 0, n)
		}
		for _, p := range parts {
			out = append(out, *p...)
		}
	}
	for _, p := range parts {
		putScratch(p)
	}
	return out
}

// mergeFilterParallel splits both lists at common values so each piece can
// be merge-filtered independently, then concatenates the pieces in order.
func mergeFilterParallel(c1, c2 []int32, drop int32, keep func(int32) bool, grain int) []int32 {
	pieces := pieceCount(len(c1)+len(c2), grain)
	if pieces < 2 {
		return mergeFilterSerial(c1, c2, drop, keep)
	}
	spans := splitSpans(c1, c2, pieces)
	if spans == nil {
		return mergeFilterSerial(c1, c2, drop, keep)
	}
	parts := make([]*[]int32, len(spans))
	sched.ParallelFor(len(spans), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := spans[i]
			bp := getScratch((s.b1 - s.a1) + (s.b2 - s.a2))
			*bp = mergeFilterInto(*bp, c1[s.a1:s.b1], c2[s.a2:s.b2], drop, keep)
			parts[i] = bp
		}
	})
	return concatParts(parts)
}

// mergeFilterBatchParallel is mergeFilterParallel on the two-phase pipeline:
// each piece merges into pooled scratch, then filters in one batch call.
func mergeFilterBatchParallel[F Filter](c1, c2 []int32, drop int32, flt F, grain int) []int32 {
	pieces := pieceCount(len(c1)+len(c2), grain)
	if pieces < 2 {
		return mergeFilterBatchSerial(c1, c2, drop, flt)
	}
	spans := splitSpans(c1, c2, pieces)
	if spans == nil {
		return mergeFilterBatchSerial(c1, c2, drop, flt)
	}
	parts := make([]*[]int32, len(spans))
	sched.ParallelFor(len(spans), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := spans[i]
			mp := getScratch((s.b1 - s.a1) + (s.b2 - s.a2))
			*mp = MergeInto(*mp, c1[s.a1:s.b1], c2[s.a2:s.b2], drop)
			fp := getScratch(len(*mp))
			*fp = flt.Filter(*mp, *fp)
			putScratch(mp)
			parts[i] = fp
		}
	})
	return concatParts(parts)
}

// Build constructs a conflict list from scratch: the elements of [from, to)
// accepted by keep, ascending, computed in parallel chunks. It is used for
// the initial facets' lists over all remaining points (closure shim; the
// engines' batch path is BuildFilter).
func Build(from, to int32, keep func(int32) bool, grain int) []int32 {
	if to <= from {
		return nil
	}
	return BuildFilter(from, to, FuncFilter(keep), grain)
}

// BuildFilter is Build on a batch Filter: each chunk is one FilterRange call
// streaming the candidate range directly, with no per-point dispatch and no
// materialized candidate slice.
func BuildFilter[F Filter](from, to int32, flt F, grain int) []int32 {
	return BuildFilterInto(from, to, flt, grain, nil)
}

// BuildFilterInto is BuildFilter with the result carved via alloc (nil
// selects plain make) — the pooled engines pass an arena allocator so the
// initial conflict lists recycle across constructions. alloc is called only
// from the calling goroutine.
func BuildFilterInto[F Filter](from, to int32, flt F, grain int, alloc func(int) []int32) []int32 {
	n := int(to - from)
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if n < grain || sched.Workers() == 1 {
		bp := getScratch(n)
		*bp = flt.FilterRange(from, to, *bp)
		out := compactInto(*bp, alloc)
		putScratch(bp)
		return out
	}
	chunks := (n + grain - 1) / grain
	parts := make([]*[]int32, chunks)
	sched.ParallelFor(chunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			a := from + int32(c*grain)
			b := a + int32(grain)
			if b > to {
				b = to
			}
			bp := getScratch(int(b - a))
			*bp = flt.FilterRange(a, b, *bp)
			parts[c] = bp
		}
	})
	return concatPartsInto(parts, alloc)
}
