// Package conflict implements the conflict-list operations shared by the
// incremental engines: merging the two support facets' conflict sets and
// filtering by visibility (line 16 of Algorithm 3, line 9 of Algorithm 2).
//
// Lists are ascending slices of point indices. The filter runs serially for
// short lists and splits long ones into value-aligned pieces processed in
// parallel — the role approximate compaction plays in the paper's CRCW
// analysis (Theorem 5.4): without it, the first rounds' O(n)-sized lists
// would serialize the span. The output is identical either way.
//
// Allocation discipline: filtering writes into pooled scratch buffers and
// only the surviving elements are copied into an exact-size result (nil for
// an empty one). In the steady state most new facets have empty or tiny
// conflict sets, so filtering allocates nothing — the seed code allocated a
// |C(t1)|+|C(t2)|-capacity slice per facet regardless of survivors, which
// dominated GC pressure in the construction hot path.
package conflict

import (
	"sort"
	"sync"

	"parhull/internal/sched"
)

// DefaultGrain is the list size above which MergeFilter parallelizes.
const DefaultGrain = 1 << 13

// scratchPool recycles the transient merge buffers. Buffers grow to the
// largest list a worker has filtered and are reused across facets, so
// steady-state filtering performs no transient allocation at all.
var scratchPool = sync.Pool{New: func() any { return new([]int32) }}

// getScratch returns an empty buffer with capacity at least need.
func getScratch(need int) *[]int32 {
	bp := scratchPool.Get().(*[]int32)
	if cap(*bp) < need {
		*bp = make([]int32, 0, need)
	}
	*bp = (*bp)[:0]
	return bp
}

func putScratch(bp *[]int32) { scratchPool.Put(bp) }

// compact returns an exact-size copy of buf, or nil when buf is empty.
func compact(buf []int32) []int32 {
	if len(buf) == 0 {
		return nil
	}
	out := make([]int32, len(buf))
	copy(out, buf)
	return out
}

// Scratch is a caller-owned merge buffer for the serial filter path. The
// work-stealing engines keep one Scratch per worker (inside their arenas),
// so steady-state filtering touches no sync.Pool — no atomic pool round-trip
// per facet, and the buffer stays hot in the worker's cache. The buffer
// grows to the largest list the worker has filtered and is reused forever;
// it never escapes: only the compacted result (allocated via alloc) does.
type Scratch struct {
	buf []int32
}

// MergeFilter is the serial equivalent of the package-level MergeFilter
// using s as scratch. The surviving elements are copied into a slice
// obtained from alloc(n) (which must return a length-n slice; nil selects
// plain make) — the engines pass their per-worker arena allocator, so a
// steady-state facet's conflict list costs zero individual allocations.
// Output is identical to MergeFilter.
func (s *Scratch) MergeFilter(c1, c2 []int32, drop int32, keep func(int32) bool, alloc func(int) []int32) []int32 {
	need := len(c1) + len(c2)
	if need == 0 {
		return nil
	}
	if cap(s.buf) < need {
		s.buf = make([]int32, 0, need)
	}
	buf := mergeFilterInto(s.buf[:0], c1, c2, drop, keep)
	s.buf = buf[:0]
	if len(buf) == 0 {
		return nil
	}
	var out []int32
	if alloc != nil {
		out = alloc(len(buf))
	} else {
		out = make([]int32, len(buf))
	}
	copy(out, buf)
	return out
}

// MergeFilter returns the ascending union of the ascending lists c1 and c2,
// excluding drop and keeping only elements accepted by keep. keep must be
// safe for concurrent calls (the engines' visibility predicates are: they
// read immutable facet state and bump sharded counters). grain <= 0 selects
// DefaultGrain; pass a huge grain to force the serial path.
func MergeFilter(c1, c2 []int32, drop int32, keep func(int32) bool, grain int) []int32 {
	if grain <= 0 {
		grain = DefaultGrain
	}
	if len(c1)+len(c2) < grain || sched.Workers() == 1 {
		return mergeFilterSerial(c1, c2, drop, keep)
	}
	return mergeFilterParallel(c1, c2, drop, keep, grain)
}

func mergeFilterSerial(c1, c2 []int32, drop int32, keep func(int32) bool) []int32 {
	if len(c1)+len(c2) == 0 {
		return nil
	}
	bp := getScratch(len(c1) + len(c2))
	*bp = mergeFilterInto(*bp, c1, c2, drop, keep)
	out := compact(*bp)
	putScratch(bp)
	return out
}

// mergeFilterInto appends the filtered merge of c1 and c2 to dst.
func mergeFilterInto(dst []int32, c1, c2 []int32, drop int32, keep func(int32) bool) []int32 {
	i, j := 0, 0
	for i < len(c1) || j < len(c2) {
		var v int32
		switch {
		case i == len(c1):
			v = c2[j]
			j++
		case j == len(c2):
			v = c1[i]
			i++
		case c1[i] < c2[j]:
			v = c1[i]
			i++
		case c1[i] > c2[j]:
			v = c2[j]
			j++
		default:
			v = c1[i]
			i++
			j++
		}
		if v == drop {
			continue
		}
		if keep(v) {
			dst = append(dst, v)
		}
	}
	return dst
}

// mergeFilterParallel splits both lists at common values so each piece can
// be merge-filtered independently, then concatenates the pieces in order.
func mergeFilterParallel(c1, c2 []int32, drop int32, keep func(int32) bool, grain int) []int32 {
	total := len(c1) + len(c2)
	pieces := total / grain
	if w := 4 * sched.Workers(); pieces > w {
		pieces = w
	}
	if pieces < 2 {
		return mergeFilterSerial(c1, c2, drop, keep)
	}
	// Split values taken from the longer list at even intervals; binary
	// search aligns both lists on the same value boundaries.
	long := c1
	if len(c2) > len(c1) {
		long = c2
	}
	bounds := make([]int32, 0, pieces-1)
	for i := 1; i < pieces; i++ {
		bounds = append(bounds, long[i*len(long)/pieces])
	}
	type span struct{ a1, b1, a2, b2 int }
	spans := make([]span, 0, pieces)
	p1, p2 := 0, 0
	for _, b := range bounds {
		q1 := p1 + sort.Search(len(c1)-p1, func(k int) bool { return c1[p1+k] >= b })
		q2 := p2 + sort.Search(len(c2)-p2, func(k int) bool { return c2[p2+k] >= b })
		spans = append(spans, span{p1, q1, p2, q2})
		p1, p2 = q1, q2
	}
	spans = append(spans, span{p1, len(c1), p2, len(c2)})

	parts := make([]*[]int32, len(spans))
	sched.ParallelFor(len(spans), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := spans[i]
			bp := getScratch((s.b1 - s.a1) + (s.b2 - s.a2))
			*bp = mergeFilterInto(*bp, c1[s.a1:s.b1], c2[s.a2:s.b2], drop, keep)
			parts[i] = bp
		}
	})
	n := 0
	for _, p := range parts {
		n += len(*p)
	}
	var out []int32
	if n > 0 {
		out = make([]int32, 0, n)
		for _, p := range parts {
			out = append(out, *p...)
		}
	}
	for _, p := range parts {
		putScratch(p)
	}
	return out
}

// Build constructs a conflict list from scratch: the elements of [from, to)
// accepted by keep, ascending, computed in parallel chunks. It is used for
// the initial facets' lists over all remaining points.
func Build(from, to int32, keep func(int32) bool, grain int) []int32 {
	n := int(to - from)
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if n < grain || sched.Workers() == 1 {
		bp := getScratch(n)
		buf := *bp
		for v := from; v < to; v++ {
			if keep(v) {
				buf = append(buf, v)
			}
		}
		*bp = buf
		out := compact(buf)
		putScratch(bp)
		return out
	}
	chunks := (n + grain - 1) / grain
	parts := make([]*[]int32, chunks)
	sched.ParallelFor(chunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			a := from + int32(c*grain)
			b := a + int32(grain)
			if b > to {
				b = to
			}
			bp := getScratch(int(b - a))
			buf := *bp
			for v := a; v < b; v++ {
				if keep(v) {
					buf = append(buf, v)
				}
			}
			*bp = buf
			parts[c] = bp
		}
	})
	total := 0
	for _, p := range parts {
		total += len(*p)
	}
	var out []int32
	if total > 0 {
		out = make([]int32, 0, total)
		for _, p := range parts {
			out = append(out, *p...)
		}
	}
	for _, p := range parts {
		putScratch(p)
	}
	return out
}
