// Package conflict implements the conflict-list operations shared by the
// incremental engines: merging the two support facets' conflict sets and
// filtering by visibility (line 16 of Algorithm 3, line 9 of Algorithm 2).
//
// Lists are ascending slices of point indices. The filter runs serially for
// short lists and splits long ones into value-aligned pieces processed in
// parallel — the role approximate compaction plays in the paper's CRCW
// analysis (Theorem 5.4): without it, the first rounds' O(n)-sized lists
// would serialize the span. The output is identical either way.
package conflict

import (
	"sort"

	"parhull/internal/sched"
)

// DefaultGrain is the list size above which MergeFilter parallelizes.
const DefaultGrain = 1 << 13

// MergeFilter returns the ascending union of the ascending lists c1 and c2,
// excluding drop and keeping only elements accepted by keep. keep must be
// safe for concurrent calls (the engines' visibility predicates are: they
// read immutable facet state and bump sharded counters). grain <= 0 selects
// DefaultGrain; pass a huge grain to force the serial path.
func MergeFilter(c1, c2 []int32, drop int32, keep func(int32) bool, grain int) []int32 {
	if grain <= 0 {
		grain = DefaultGrain
	}
	if len(c1)+len(c2) < grain || sched.Workers() == 1 {
		return mergeFilterSerial(c1, c2, drop, keep)
	}
	return mergeFilterParallel(c1, c2, drop, keep, grain)
}

func mergeFilterSerial(c1, c2 []int32, drop int32, keep func(int32) bool) []int32 {
	out := make([]int32, 0, len(c1)+len(c2))
	i, j := 0, 0
	for i < len(c1) || j < len(c2) {
		var v int32
		switch {
		case i == len(c1):
			v = c2[j]
			j++
		case j == len(c2):
			v = c1[i]
			i++
		case c1[i] < c2[j]:
			v = c1[i]
			i++
		case c1[i] > c2[j]:
			v = c2[j]
			j++
		default:
			v = c1[i]
			i++
			j++
		}
		if v == drop {
			continue
		}
		if keep(v) {
			out = append(out, v)
		}
	}
	return out
}

// mergeFilterParallel splits both lists at common values so each piece can
// be merge-filtered independently, then concatenates the pieces in order.
func mergeFilterParallel(c1, c2 []int32, drop int32, keep func(int32) bool, grain int) []int32 {
	total := len(c1) + len(c2)
	pieces := total / grain
	if w := 4 * sched.Workers(); pieces > w {
		pieces = w
	}
	if pieces < 2 {
		return mergeFilterSerial(c1, c2, drop, keep)
	}
	// Split values taken from the longer list at even intervals; binary
	// search aligns both lists on the same value boundaries.
	long := c1
	if len(c2) > len(c1) {
		long = c2
	}
	bounds := make([]int32, 0, pieces-1)
	for i := 1; i < pieces; i++ {
		bounds = append(bounds, long[i*len(long)/pieces])
	}
	type span struct{ a1, b1, a2, b2 int }
	spans := make([]span, 0, pieces)
	p1, p2 := 0, 0
	for _, b := range bounds {
		q1 := p1 + sort.Search(len(c1)-p1, func(k int) bool { return c1[p1+k] >= b })
		q2 := p2 + sort.Search(len(c2)-p2, func(k int) bool { return c2[p2+k] >= b })
		spans = append(spans, span{p1, q1, p2, q2})
		p1, p2 = q1, q2
	}
	spans = append(spans, span{p1, len(c1), p2, len(c2)})

	parts := make([][]int32, len(spans))
	sched.ParallelFor(len(spans), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := spans[i]
			parts[i] = mergeFilterSerial(c1[s.a1:s.b1], c2[s.a2:s.b2], drop, keep)
		}
	})
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]int32, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Build constructs a conflict list from scratch: the elements of [from, to)
// accepted by keep, ascending, computed in parallel chunks. It is used for
// the initial facets' lists over all remaining points.
func Build(from, to int32, keep func(int32) bool, grain int) []int32 {
	n := int(to - from)
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if n < grain || sched.Workers() == 1 {
		out := make([]int32, 0, n/4+8)
		for v := from; v < to; v++ {
			if keep(v) {
				out = append(out, v)
			}
		}
		return out
	}
	chunks := (n + grain - 1) / grain
	parts := make([][]int32, chunks)
	sched.ParallelFor(chunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			a := from + int32(c*grain)
			b := a + int32(grain)
			if b > to {
				b = to
			}
			var part []int32
			for v := a; v < b; v++ {
				if keep(v) {
					part = append(part, v)
				}
			}
			parts[c] = part
		}
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
