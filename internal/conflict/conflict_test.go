package conflict

import (
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"testing/quick"
)

// TestMain raises GOMAXPROCS so the parallel filter path is exercised even
// on single-core machines (goroutines still interleave).
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

func sortedRandom(rng *rand.Rand, n, max int) []int32 {
	seen := map[int32]bool{}
	for len(seen) < n {
		seen[int32(rng.Intn(max))] = true
	}
	out := make([]int32, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestMergeFilterMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n1, n2 := rng.Intn(30000), rng.Intn(30000)
		c1 := sortedRandom(rng, n1, 100000)
		c2 := sortedRandom(rng, n2, 100000)
		var drop int32 = -1
		if len(c1) > 0 {
			drop = c1[rng.Intn(len(c1))]
		}
		keep := func(v int32) bool { return v%3 != 0 }
		serial := MergeFilter(c1, c2, drop, keep, 1<<30)
		par := MergeFilter(c1, c2, drop, keep, 64)
		if len(serial) != len(par) {
			t.Fatalf("trial %d: lengths %d vs %d", trial, len(serial), len(par))
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("trial %d: element %d differs", trial, i)
			}
		}
	}
}

// TestScratchMatchesMergeFilter pins the work-stealing engines' contract:
// the caller-owned Scratch path produces exactly the MergeFilter output —
// same elements, same order, nil for empty — with either allocator, and the
// scratch buffer is reusable across calls without cross-contamination.
func TestScratchMatchesMergeFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sc Scratch
	var allocCalls int
	alloc := func(n int) []int32 {
		allocCalls++
		return make([]int32, n)
	}
	for trial := 0; trial < 60; trial++ {
		n1, n2 := rng.Intn(2000), rng.Intn(2000)
		c1 := sortedRandom(rng, n1, 10000)
		c2 := sortedRandom(rng, n2, 10000)
		var drop int32 = -1
		if len(c1) > 0 {
			drop = c1[rng.Intn(len(c1))]
		}
		keep := func(v int32) bool { return v%3 != 0 }
		want := MergeFilter(c1, c2, drop, keep, 1<<30)
		for _, a := range []func(int) []int32{nil, alloc} {
			got := sc.MergeFilter(c1, c2, drop, keep, a)
			if len(got) != len(want) {
				t.Fatalf("trial %d: lengths %d vs %d", trial, len(got), len(want))
			}
			if want == nil && got != nil {
				t.Fatalf("trial %d: want nil for empty result", trial)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: element %d differs", trial, i)
				}
			}
		}
	}
	if allocCalls == 0 {
		t.Fatal("custom allocator was never exercised")
	}
}

func TestMergeFilterProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c1 := sortedRandom(rng, rng.Intn(200), 1000)
		c2 := sortedRandom(rng, rng.Intn(200), 1000)
		drop := int32(rng.Intn(1000))
		out := MergeFilter(c1, c2, drop, func(v int32) bool { return v%2 == 0 }, 32)
		// Ascending, no drop, all even, subset of union.
		union := map[int32]bool{}
		for _, v := range c1 {
			union[v] = true
		}
		for _, v := range c2 {
			union[v] = true
		}
		for i, v := range out {
			if i > 0 && out[i-1] >= v {
				return false
			}
			if v == drop || v%2 != 0 || !union[v] {
				return false
			}
		}
		// Completeness: every even union element other than drop appears.
		n := 0
		for v := range union {
			if v != drop && v%2 == 0 {
				n++
			}
		}
		return n == len(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeFilterEdgeCases(t *testing.T) {
	if out := MergeFilter(nil, nil, 0, func(int32) bool { return true }, 0); len(out) != 0 {
		t.Fatal("empty inputs")
	}
	one := []int32{5}
	if out := MergeFilter(one, nil, 5, func(int32) bool { return true }, 0); len(out) != 0 {
		t.Fatal("drop only element")
	}
	if out := MergeFilter(one, one, 0, func(int32) bool { return true }, 0); len(out) != 1 {
		t.Fatal("dedup failed")
	}
}

func TestBuild(t *testing.T) {
	keep := func(v int32) bool { return v%7 == 0 }
	for _, grain := range []int{0, 16, 1 << 30} {
		out := Build(3, 1000, keep, grain)
		var want []int32
		for v := int32(3); v < 1000; v++ {
			if keep(v) {
				want = append(want, v)
			}
		}
		if len(out) != len(want) {
			t.Fatalf("grain %d: %d vs %d", grain, len(out), len(want))
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("grain %d: element %d", grain, i)
			}
		}
	}
	if out := Build(10, 10, nil, 0); out != nil {
		t.Fatal("empty range")
	}
}

func BenchmarkMergeFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	c1 := sortedRandom(rng, 100000, 1<<22)
	c2 := sortedRandom(rng, 100000, 1<<22)
	keep := func(v int32) bool { return v%2 == 0 }
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MergeFilter(c1, c2, -1, keep, 1<<30)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MergeFilter(c1, c2, -1, keep, 1<<12)
		}
	})
}
