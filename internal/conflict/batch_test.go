package conflict

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// evenFilter is a concrete (non-closure) Filter used to exercise the generic
// batch entry points the way the kernels do: a struct passed by value.
type evenFilter struct{ mod int32 }

func (f evenFilter) Filter(cands []int32, dst []int32) []int32 {
	for _, v := range cands {
		if v%f.mod == 0 {
			dst = append(dst, v)
		}
	}
	return dst
}

func (f evenFilter) FilterRange(from, to int32, dst []int32) []int32 {
	for v := from; v < to; v++ {
		if v%f.mod == 0 {
			dst = append(dst, v)
		}
	}
	return dst
}

func equalLists(t *testing.T, label string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: lengths %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d: %d vs %d", label, i, got[i], want[i])
		}
	}
}

// TestMergeIntoMatchesMergeFilter pins phase 1 of the pipeline: MergeInto is
// exactly the keep-everything merge.
func TestMergeIntoMatchesMergeFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		c1 := sortedRandom(rng, rng.Intn(500), 2000)
		c2 := sortedRandom(rng, rng.Intn(500), 2000)
		drop := int32(rng.Intn(2000))
		got := MergeInto(nil, c1, c2, drop)
		want := MergeFilter(c1, c2, drop, func(int32) bool { return true }, 1<<30)
		equalLists(t, "MergeInto", got, want)
	}
}

// TestBatchMatchesClosure is the tentpole equivalence property: on every
// grain (serial, parallel, degenerate tiny splits), the batched pipeline
// produces the byte-identical survivor list of the closure path — for the
// generic concrete-filter form and for the FuncFilter shim.
func TestBatchMatchesClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n1, n2 := rng.Intn(20000), rng.Intn(20000)
		if trial < 10 {
			// Degenerate sizes: short lists with grain 1 force more pieces
			// than distinct split values (satellite fix for splitSpans).
			n1, n2 = rng.Intn(8), rng.Intn(8)
		}
		c1 := sortedRandom(rng, n1, 100000)
		c2 := sortedRandom(rng, n2, 100000)
		var drop int32 = -1
		if len(c1) > 0 {
			drop = c1[rng.Intn(len(c1))]
		}
		mod := int32(2 + rng.Intn(5))
		keep := func(v int32) bool { return v%mod == 0 }
		want := MergeFilter(c1, c2, drop, keep, 1<<30)
		for _, grain := range []int{1, 64, 1 << 30} {
			got := MergeFilterBatch(c1, c2, drop, evenFilter{mod: mod}, grain)
			equalLists(t, "MergeFilterBatch", got, want)
			got = MergeFilterBatch(c1, c2, drop, FuncFilter(keep), grain)
			equalLists(t, "MergeFilterBatch/FuncFilter", got, want)
			got = MergeFilter(c1, c2, drop, keep, grain)
			equalLists(t, "MergeFilter", got, want)
		}
	}
}

// TestMergeFilterScratchMatchesClosure pins the arena path: the batched
// scratch pipeline equals the closure scratch path under both allocators, and
// the scratch buffers survive reuse.
func TestMergeFilterScratchMatchesClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sc Scratch
	alloc := func(n int) []int32 { return make([]int32, n) }
	for trial := 0; trial < 60; trial++ {
		c1 := sortedRandom(rng, rng.Intn(2000), 10000)
		c2 := sortedRandom(rng, rng.Intn(2000), 10000)
		var drop int32 = -1
		if len(c1) > 0 {
			drop = c1[rng.Intn(len(c1))]
		}
		mod := int32(2 + rng.Intn(5))
		want := MergeFilter(c1, c2, drop, func(v int32) bool { return v%mod == 0 }, 1<<30)
		for _, a := range []func(int) []int32{nil, alloc} {
			got := MergeFilterScratch(&sc, c1, c2, drop, evenFilter{mod: mod}, a)
			if want == nil && got != nil {
				t.Fatalf("trial %d: want nil for empty result", trial)
			}
			equalLists(t, "MergeFilterScratch", got, want)
		}
	}
}

// TestBuildFilterMatchesBuild pins the initial-list path: FilterRange chunks
// equal the pointwise Build on every grain.
func TestBuildFilterMatchesBuild(t *testing.T) {
	for _, grain := range []int{0, 16, 1 << 30} {
		want := Build(3, 1000, func(v int32) bool { return v%7 == 0 }, grain)
		got := BuildFilter(3, 1000, evenFilter{mod: 7}, grain)
		equalLists(t, "BuildFilter", got, want)
	}
	if out := BuildFilter(10, 10, evenFilter{mod: 2}, 0); out != nil {
		t.Fatal("empty range")
	}
}

// TestSplitSpansDegenerate pins the satellite fix: when the requested piece
// count exceeds the longer list's length, the sampled bounds collapse onto
// repeated values; splitSpans must dedupe them (strictly increasing bounds,
// spans partitioning both lists) and return nil — serial fallback — when
// fewer than 2 distinct split values survive.
func TestSplitSpansDegenerate(t *testing.T) {
	// A single-element longer list collapses every sampled bound onto one
	// value: 1 distinct bound after dedupe, so serial fallback.
	if s := splitSpans([]int32{5}, nil, 4); s != nil {
		t.Fatalf("want nil for single-element list, got %d spans", len(s))
	}
	if s := splitSpans([]int32{7}, []int32{9}, 16); s != nil {
		t.Fatalf("want nil for collapsed bounds, got %d spans", len(s))
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c1 := sortedRandom(rng, rng.Intn(12), 40)
		c2 := sortedRandom(rng, rng.Intn(12), 40)
		if len(c1) == 0 && len(c2) == 0 {
			return true
		}
		pieces := 2 + rng.Intn(20) // often far beyond the list lengths
		spans := splitSpans(c1, c2, pieces)
		if spans == nil {
			return true
		}
		if len(spans) < 2 {
			return false
		}
		// Spans must partition both lists in order with no empty-on-both
		// interior degeneracy caused by duplicate bounds.
		p1, p2 := 0, 0
		for _, s := range spans {
			if s.a1 != p1 || s.a2 != p2 || s.b1 < s.a1 || s.b2 < s.a2 {
				return false
			}
			p1, p2 = s.b1, s.b2
		}
		return p1 == len(c1) && p2 == len(c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
