package conflict

// Dimension-specialized plane-evaluation kernels for the fused visibility
// filter. Each kernel evaluates one folded plane at ONE point and is small
// enough for the compiler to inline (verified by TestScanKernelBCE):
// the filters' hot loops unroll four calls per step, so after inlining the
// four signed-distance computations are independent instruction streams —
// four coordinate gathers in flight — with no call overhead at all. An
// earlier four-points-per-call form lost more to the (non-inlinable) call
// than the batching saved.
//
// The kernels are pure evaluation: they return signed distances by value
// and leave classification and list appends to the caller — returning an
// appended slice here would make the caller's stack-allocated sidecar
// buffers escape to the heap (one allocation per merge-filter call), which
// is exactly what the arena path exists to avoid.
//
// Bounds-check-elimination discipline (verified by TestScanKernelBCE, which
// recompiles this file with -gcflags=-d=ssa/check_bce and fails on new
// IsInBounds/IsSliceInBounds sites):
//   - point ids convert through uint32 before widening to int, proving the
//     offset non-negative to the prover;
//   - each point's coordinates are taken as a full-slice-expression window
//     c[o : o+3 : o+3], which costs exactly one IsSliceInBounds and makes
//     every element access within the window check-free.
//
// This file must stay free of imports: the BCE regression test compiles it
// as a standalone package in a throwaway module, which only works — and only
// stays fast under a cold GOCACHE — because there is nothing to resolve.
//
// Summation order is load-bearing: each kernel reproduces geom.Plane.Eval's
// branch for its dimension bit for bit (d=2,3: terms ascending, offset
// subtracted last; generic: offset first, then ascending terms), so the
// batch filters classify identically to the pointwise visible() closure.

// Eval3 evaluates one 3D plane (normal n0,n1,n2, offset off) at point v of
// the coordinate stream c (layout: point v at c[3v:3v+3]).
func Eval3(c []float64, v int32, n0, n1, n2, off float64) float64 {
	o := int(uint32(v)) * 3
	x := c[o : o+3 : o+3]
	return n0*x[0] + n1*x[1] + n2*x[2] - off
}

// Eval2 evaluates one 2D plane at point v (layout: point v at c[2v:2v+2]).
func Eval2(c []float64, v int32, n0, n1, off float64) float64 {
	o := int(uint32(v)) * 2
	x := c[o : o+2 : o+2]
	return n0*x[0] + n1*x[1] - off
}

// EvalD evaluates a d-dimensional plane (normal n, stride len(n)) at point
// v — the generic fallback that keeps d=4..6 working on the same fused
// path. The window trick still applies; the inner product loop ranges over
// the normal, so its accesses into the window are check-free after the
// single window construction.
func EvalD(c, n []float64, v int32, off float64) float64 {
	d := len(n)
	o := int(uint32(v)) * d
	x := c[o : o+d : o+d]
	s := -off
	for i, ni := range n {
		s += ni * x[i]
	}
	return s
}
