package conflict

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// scanBCEGolden is the expected number of bounds-check sites per kernel in
// scan.go, by check kind. Each kernel pays exactly one IsSliceInBounds for
// its point window and contains no IsInBounds at all: every element access
// goes through a full-slice-expression window whose construction is the
// only check. A count above golden means a kernel regressed to per-element
// checking (the compiler stopped proving an access in-bounds); a count
// below golden means the compiler improved and the golden values should be
// ratcheted down.
var scanBCEGolden = map[string]map[string]int{
	"Eval3": {"IsSliceInBounds": 1, "IsInBounds": 0},
	"Eval2": {"IsSliceInBounds": 1, "IsInBounds": 0},
	"EvalD": {"IsSliceInBounds": 1, "IsInBounds": 0},
}

// TestScanKernelBCE recompiles scan.go with -d=ssa/check_bce and -m in a
// throwaway single-file module and asserts two codegen contracts: no kernel
// gained a bounds-check site beyond the golden counts above, and every
// kernel is still inlinable — the filters' four-wide unrolled loops rely on
// the calls disappearing (a four-points-per-call variant measurably lost
// more to call overhead than its batching saved). The copy-to-temp-module
// dance (rather than rebuilding the real package) keeps the check hermetic:
// scan.go has no imports by design, so the cold-cache compile resolves
// nothing, and the diagnostics cover exactly the file under test.
func TestScanKernelBCE(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles scan.go; skipped in -short mode")
	}
	goTool := filepath.Join(os.Getenv("GOROOT"), "bin", "go")
	if _, err := os.Stat(goTool); err != nil {
		var lookErr error
		goTool, lookErr = exec.LookPath("go")
		if lookErr != nil {
			t.Skip("go tool not found in GOROOT or PATH")
		}
	}

	src, err := os.ReadFile("scan.go")
	if err != nil {
		t.Fatalf("reading scan.go: %v", err)
	}

	// Map each diagnostic line back to the kernel that owns it.
	fset := token.NewFileSet()
	parsed, err := parser.ParseFile(fset, "scan.go", src, 0)
	if err != nil {
		t.Fatalf("parsing scan.go: %v", err)
	}
	type span struct {
		name     string
		from, to int
	}
	var funcs []span
	for _, d := range parsed.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			funcs = append(funcs, span{
				name: fd.Name.Name,
				from: fset.Position(fd.Pos()).Line,
				to:   fset.Position(fd.End()).Line,
			})
		}
	}
	owner := func(line int) string {
		for _, f := range funcs {
			if line >= f.from && line <= f.to {
				return f.name
			}
		}
		return fmt.Sprintf("<line %d outside any func>", line)
	}

	mod := t.TempDir()
	if err := os.WriteFile(filepath.Join(mod, "scan.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module scanbce\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A warm build cache replays the cached compile without re-emitting
	// diagnostics, so each check runs against a cold cache of its own. The
	// two diagnostic flags need separate compiles: under -m an inlinable
	// function is compiled twice (inline body and standalone), duplicating
	// every check_bce line.
	compile := func(gcflags string) string {
		cmd := exec.Command(goTool, "build", "-gcflags="+gcflags, ".")
		cmd.Dir = mod
		cmd.Env = append(os.Environ(), "GOCACHE="+t.TempDir(), "GOFLAGS=")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("compiling scan.go with %s: %v\n%s", gcflags, err, out)
		}
		return string(out)
	}
	out := compile("-d=ssa/check_bce")
	inl := compile("-m")

	diag := regexp.MustCompile(`scan\.go:(\d+):\d+: Found (IsInBounds|IsSliceInBounds)`)
	got := map[string]map[string]int{}
	for _, m := range diag.FindAllStringSubmatch(out, -1) {
		line, _ := strconv.Atoi(m[1])
		fn := owner(line)
		if got[fn] == nil {
			got[fn] = map[string]int{}
		}
		got[fn][m[2]]++
	}

	for fn, kinds := range got {
		want, ok := scanBCEGolden[fn]
		if !ok {
			t.Errorf("%s: has bounds checks %v but no golden entry — add one (and justify the checks)", fn, kinds)
			continue
		}
		for kind, n := range kinds {
			if n > want[kind] {
				t.Errorf("%s: %d %s sites, golden %d — a kernel access lost its bounds-check elimination", fn, n, kind, want[kind])
			}
		}
	}
	for fn, want := range scanBCEGolden {
		for kind, n := range want {
			if g := got[fn][kind]; g < n {
				t.Logf("%s: %d %s sites, golden %d — compiler improved; ratchet the golden value down", fn, g, kind, n)
			}
		}
	}

	for fn := range scanBCEGolden {
		if !strings.Contains(inl, "can inline "+fn) {
			t.Errorf("%s is no longer inlinable — the four-wide unrolled filter loops degrade to real calls", fn)
		}
	}
}
