package parhull

import (
	"fmt"

	"parhull/internal/hull2d"
	"parhull/internal/hulld"
)

// Hull2DResult is the output of Hull2D.
type Hull2DResult struct {
	// Vertices lists the hull vertices in counterclockwise order, as
	// indices into the input slice.
	Vertices []int
	Stats    Stats
}

// Hull2D computes the convex hull of 2D points with the selected engine.
// Points are inserted in input order unless Options.Shuffle is set (which
// the Theorem 1.1 depth guarantee assumes). The input must contain at least
// 3 points in general position.
func Hull2D(pts []Point, opt *Options) (*Hull2DResult, error) {
	o := opt.or()
	order := o.perm(len(pts))
	work := applyShuffle(pts, order)

	var res *hull2d.Result
	var err error
	switch o.Engine {
	case EngineSequential:
		if o.NoPlaneCache {
			res, err = hull2d.SeqNoPlaneCache(work)
		} else {
			res, err = hull2d.Seq(work)
		}
	case EngineParallel:
		res, err = hull2d.Par(work, &hull2d.Options{
			Map:          o.ridgeMap2D(len(pts)),
			Sched:        o.schedKind(),
			GroupLimit:   o.GroupLimit,
			NoCounters:   o.NoCounters,
			FilterGrain:  o.FilterGrain,
			NoPlaneCache: o.NoPlaneCache,
		})
	case EngineRounds:
		res, _, err = hull2d.Rounds(work, &hull2d.Options{
			Map:          o.ridgeMap2D(len(pts)),
			NoCounters:   o.NoCounters,
			FilterGrain:  o.FilterGrain,
			NoPlaneCache: o.NoPlaneCache,
		})
	default:
		return nil, errBadEngine
	}
	if err != nil {
		return nil, err
	}
	out := &Hull2DResult{Stats: res.Stats}
	for _, v := range res.Vertices {
		out.Vertices = append(out.Vertices, mapBack(v, order))
	}
	return out, nil
}

// Facet is one facet of a d-dimensional hull: the indices of its d defining
// points in the input slice.
type Facet struct {
	Vertices []int
}

// HullDResult is the output of HullD / Hull3D.
type HullDResult struct {
	// Facets are the hull facets (oriented d-simplices).
	Facets []Facet
	// Vertices are the sorted indices of points on the hull.
	Vertices []int
	Stats    Stats
}

// HullD computes the convex hull in the dimension given by the points
// (d = len(pts[0]) >= 2). The input must contain at least d+1 points in
// general position. See Hull2D for ordering semantics.
func HullD(pts []Point, opt *Options) (*HullDResult, error) {
	o := opt.or()
	order := o.perm(len(pts))
	work := applyShuffle(pts, order)
	d := 0
	if len(pts) > 0 {
		d = len(pts[0])
	}

	var res *hulld.Result
	var err error
	switch o.Engine {
	case EngineSequential:
		if o.NoPlaneCache {
			res, err = hulld.SeqNoPlaneCache(work)
		} else {
			res, err = hulld.Seq(work)
		}
	case EngineParallel:
		res, err = hulld.Par(work, &hulld.Options{
			Map:          o.ridgeMapD(len(pts), d),
			Sched:        o.schedKind(),
			GroupLimit:   o.GroupLimit,
			NoCounters:   o.NoCounters,
			FilterGrain:  o.FilterGrain,
			NoPlaneCache: o.NoPlaneCache,
		})
	case EngineRounds:
		res, err = hulld.Rounds(work, &hulld.Options{
			Map:          o.ridgeMapD(len(pts), d),
			NoCounters:   o.NoCounters,
			FilterGrain:  o.FilterGrain,
			NoPlaneCache: o.NoPlaneCache,
		})
	default:
		return nil, errBadEngine
	}
	if err != nil {
		return nil, err
	}
	out := &HullDResult{Stats: res.Stats}
	for _, f := range res.Facets {
		ff := Facet{Vertices: make([]int, len(f.Verts))}
		for i, v := range f.Verts {
			ff.Vertices[i] = mapBack(v, order)
		}
		out.Facets = append(out.Facets, ff)
	}
	for _, v := range res.Vertices {
		out.Vertices = append(out.Vertices, mapBack(v, order))
	}
	return out, nil
}

// Hull3D computes the convex hull of 3D points (a convenience wrapper
// around HullD that validates the dimension).
func Hull3D(pts []Point, opt *Options) (*HullDResult, error) {
	if len(pts) > 0 && len(pts[0]) != 3 {
		return nil, fmt.Errorf("parhull: Hull3D needs 3D points, got dimension %d", len(pts[0]))
	}
	return HullD(pts, opt)
}
