package parhull

import "fmt"

// Hull2DResult is the output of Hull2D.
type Hull2DResult struct {
	// Vertices lists the hull vertices in counterclockwise order, as
	// indices into the input slice.
	Vertices []int
	Stats    Stats
}

// Hull2D computes the convex hull of 2D points with the selected engine.
// Points are inserted in input order unless Options.Shuffle is set (which
// the Theorem 1.1 depth guarantee assumes). The input must contain at least
// 3 points in general position.
//
// Errors are typed: see ErrDegenerate, ErrBadCoordinate, ErrCapacity,
// ErrCanceled, ErrBadOption. A fixed CAS/TAS ridge table that fills is
// handled by the degradation ladder (doubled-table retries, then a sharded-
// map fallback) unless Options.NoMapFallback is set; see
// Stats.CapacityRetries and Stats.MapFallback.
//
// Hull2D is the one-shot form of Builder.Build2D: it creates the pooled
// state, runs one construction, and retires it. Callers computing many hulls
// should hold a Builder instead and pay the setup once.
func Hull2D(pts []Point, opt *Options) (*Hull2DResult, error) {
	b := NewBuilder(opt)
	defer b.Close()
	return b.Build2D(pts)
}

// Facet is one facet of a d-dimensional hull: the indices of its d defining
// points in the input slice.
type Facet struct {
	Vertices []int
}

// HullDResult is the output of HullD / Hull3D.
type HullDResult struct {
	// Facets are the hull facets (oriented d-simplices).
	Facets []Facet
	// Vertices are the sorted indices of points on the hull.
	Vertices []int
	Stats    Stats
}

// HullD computes the convex hull in the dimension given by the points
// (d = len(pts[0]) >= 2). The input must contain at least d+1 points in
// general position. See Hull2D for ordering semantics and the typed error
// surface / degradation ladder.
//
// HullD is the one-shot form of Builder.Build: it creates the pooled state,
// runs one construction, and retires it. Callers computing many hulls should
// hold a Builder instead and pay the setup once.
func HullD(pts []Point, opt *Options) (*HullDResult, error) {
	b := NewBuilder(opt)
	defer b.Close()
	return b.Build(pts)
}

// Hull3D computes the convex hull of 3D points (a convenience wrapper
// around HullD that validates the dimension).
func Hull3D(pts []Point, opt *Options) (*HullDResult, error) {
	if len(pts) > 0 && len(pts[0]) != 3 {
		return nil, fmt.Errorf("%w: Hull3D needs 3D points, got dimension %d", ErrBadOption, len(pts[0]))
	}
	return HullD(pts, opt)
}
